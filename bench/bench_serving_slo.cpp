// Beyond the paper: request-level serving under SLOs. The paper's Fig-12
// study reports steady-state throughput/area; this bench layers the
// discrete-event request simulator (src/serving/request_sim.h) on the same
// cycle model to ask what users actually see — tail latency and SLO
// attainment under bursty Poisson load — and what the cheapest chip is that
// carries a target load within a deadline.
//
// Everything here is simulated cycles from seeded arrival processes: two runs
// with the same seed print byte-identical numbers at any VLACNN_THREADS.
#include <cinttypes>

#include "bench_common.h"
#include "serving/request_sim.h"

using namespace vlacnn;
using namespace vlacnn::bench;
using namespace vlacnn::serving;

namespace {

constexpr double kHz = 2.0e9;  // presentation clock, as everywhere else

void print_row(const char* label, const ServingStats& s) {
  std::printf("%-16s %8.0f %8.0f %8.0f %8.0f %7.2f %6.1f%% %9.2f %7.2f%%\n",
              label, ServingStats::ms(s.p50, kHz), ServingStats::ms(s.p95, kHz),
              ServingStats::ms(s.p99, kHz), ServingStats::ms(s.p999, kHz),
              s.mean_batch, s.utilization * 100.0, s.throughput_rps(kHz),
              s.slo_attainment * 100.0);
}

}  // namespace

int main() {
  banner("SLO serving: request-level latency, batching, capacity",
         "beyond ICPP'24 (workload models after Clipper NSDI'17, "
         "Clockwork OSDI'20)");
  Env env;

  // Fixed chip for the policy study: 16 cores x 2048-bit x 64MB shared L2,
  // one VGG-16 instance per core (4MB exclusive slice each) — a mid-grid
  // Pareto point of the Fig-12 study.
  const ServingPoint chip{16, 2048, 64ull << 20, 16};
  const BatchCostModel cost = batch_cost_model(
      *env.driver, env.vgg16, chip.vlen_bits, chip.l2_slice_bytes(),
      std::nullopt);
  const double cap_rps =
      static_cast<double>(chip.instances) / cost.first_image_cycles * kHz;
  std::printf("\nchip: %d cores x %u-bit x %s shared L2, %d instances\n",
              chip.cores, chip.vlen_bits, l2_str(chip.l2_total_bytes).c_str(),
              chip.instances);
  std::printf("cost model: first image %.0f cycles (%.2f ms), marginal %.0f "
              "cycles (%.2f ms)\n",
              cost.first_image_cycles,
              ServingStats::ms(cost.first_image_cycles, kHz),
              cost.marginal_image_cycles,
              ServingStats::ms(cost.marginal_image_cycles, kHz));
  std::printf("no-batch capacity %.1f req/s; offering 80%% of that\n", cap_rps);

  const double load_rps = 0.8 * cap_rps;
  const std::uint64_t kRequests = 4000;
  const std::uint64_t kSeed = 42;
  // The simulated VGG-16 runs at seconds-per-image on this grid (the cycle
  // model is compute-bound end to end), so SLOs live in that regime too.
  const double slo_ms = 4000.0;

  RequestSimConfig rc;
  rc.instances = chip.instances;
  rc.cost = cost;
  rc.slo_cycles = slo_ms * 1e-3 * kHz;

  ArrivalSpec as;
  as.kind = ArrivalSpec::Kind::kPoisson;
  as.mean_interarrival_cycles = kHz / load_rps;
  as.requests = kRequests;

  std::printf("\nPoisson load, %" PRIu64 " requests, %.0f ms SLO:\n",
              kRequests, slo_ms);
  std::printf("%-16s %8s %8s %8s %8s %7s %7s %9s %8s\n", "policy", "p50ms",
              "p95ms", "p99ms", "p999ms", "batch", "util", "req/s", "SLO");
  const BatchPolicySpec policies[] = {
      {BatchPolicySpec::Kind::kNoBatch, 1, 0},
      {BatchPolicySpec::Kind::kMaxBatch, 4, 0},
      {BatchPolicySpec::Kind::kAdaptive, 4, 2e8},   // 100 ms flush
      {BatchPolicySpec::Kind::kAdaptive, 4, 2e9},   // 1 s flush
  };
  for (const BatchPolicySpec& ps : policies) {
    const auto arrivals = make_arrivals(as, kSeed);
    const auto policy = make_policy(ps);
    const ServingStats s = simulate_requests(rc, *arrivals, *policy);
    print_row(policy->name().c_str(), s);
  }

  // Closed-loop saturation: 64 clients with zero think time track the service
  // rate instead of outrunning it — the sustained-throughput view.
  {
    ArrivalSpec cl;
    cl.kind = ArrivalSpec::Kind::kClosedLoop;
    cl.clients = 64;
    cl.think_cycles = 0;
    cl.requests = kRequests;
    const auto arrivals = make_arrivals(cl, kSeed);
    const auto policy =
        make_policy({BatchPolicySpec::Kind::kMaxBatch, 4, 0});
    const ServingStats s = simulate_requests(rc, *arrivals, *policy);
    std::printf("\nclosed loop, 64 clients, maxbatch4: %.2f req/s sustained "
                "at %.1f%% utilization (mean batch %.2f)\n",
                s.throughput_rps(kHz), s.utilization * 100.0, s.mean_batch);
  }

  // Capacity planning headline: cheapest Fig-12 configuration that carries
  // 20 req/s of Poisson VGG-16 traffic with 99% of requests inside 4 s.
  CapacityPlanner planner(env.driver.get());
  CapacityQuery q;
  q.load_rps = 20;
  q.slo_ms = 4000;
  q.attainment_target = 0.99;
  q.requests = 2000;
  q.seed = kSeed;
  q.policy = {BatchPolicySpec::Kind::kAdaptive, 8, 2e6};

  const auto candidates = planner.evaluate_grid(env.vgg16, q, std::nullopt);
  std::size_t feasible = 0;
  for (const auto& c : candidates) feasible += c.meets_slo ? 1 : 0;
  std::printf("\ncapacity plan: %.0f req/s, %.0f ms SLO at p%.1f\n",
              q.load_rps, q.slo_ms, q.attainment_target * 100.0);
  std::printf("%zu/%zu grid configurations meet the SLO\n", feasible,
              candidates.size());
  const auto best = CapacityPlanner::cheapest(candidates);
  if (best.has_value()) {
    const ServingEval& e = best->eval;
    std::printf("cheapest: %d cores x %u-bit x %s shared L2, %d instances "
                "= %.2f mm2\n",
                e.point.cores, e.point.vlen_bits,
                l2_str(e.point.l2_total_bytes).c_str(), e.point.instances,
                e.area_mm2);
    std::printf("  p50 %.2f ms, p99 %.2f ms, p99.9 %.2f ms, attainment "
                "%.2f%%, utilization %.1f%%\n",
                ServingStats::ms(best->stats.p50, kHz),
                ServingStats::ms(best->stats.p99, kHz),
                ServingStats::ms(best->stats.p999, kHz),
                best->stats.slo_attainment * 100.0,
                best->stats.utilization * 100.0);
  } else {
    std::printf("no grid configuration meets the SLO\n");
  }
  return 0;
}

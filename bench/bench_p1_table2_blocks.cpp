// Paper I Table II: relative execution time of the 6-loop (BLIS-like) GEMM vs
// the optimized 3-loop GEMM on the first 4 convolutional layers of YOLOv3,
// decoupled RVV @ 512-bit x 1MB, for the paper's candidate block sizes.
// Expected shape: ~parity (0.90-0.98), because the decoupled VPU bypasses L1
// and software prefetch is dropped by the RVV toolchain.
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Paper I Table II: 6-loop vs 3-loop GEMM block sizes, decoupled RVV",
         "IPDPS'23 Table II");
  Env env;
  const auto descs = env.yolo20.conv_descs();
  const std::vector<ConvLayerDesc> first4(descs.begin(), descs.begin() + 4);

  SimConfig base = make_sim_config(512, 1u << 20, 8, VpuAttach::kDecoupledL2);
  double c3 = 0;
  for (const auto& d : first4) c3 += conv_simulate(Algo::kGemm3, d, base).cycles;

  const Gemm6Blocks candidates[] = {
      {128, 1024, 256}, {16, 1024, 128}, {16, 512, 128},
      {16, 512, 256},   {32, 512, 128},  {64, 1024, 128}};
  std::printf("\n%-18s %22s\n", "block sizes MxNxK", "6-loop time / 3-loop time");
  for (const Gemm6Blocks& b : candidates) {
    SimConfig cfg = base;
    cfg.blocks = b;
    double c6 = 0;
    for (const auto& d : first4) {
      c6 += conv_simulate(Algo::kGemm6, d, cfg).cycles;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "%dx%dx%d", b.block_m, b.block_n,
                  b.block_k);
    std::printf("%-18s %20.2f\n", name, c6 / c3);
  }
  std::printf("\n(paper: best 16x512x128 at 0.98 -> no benefit from BLIS "
              "blocking on the decoupled VPU)\n");
  return 0;
}

// Calibrates DispatchConfig::dispatch_cycles_per_layer and proves the
// FlatForest lowering is a faithful, faster copy of the fitted forest.
//
// Two gates, both must hold (exit 1 otherwise):
//   1. Agreement: FlatForest::predict must equal RandomForest::predict on
//      every sample of the paper's selection dataset — the lowering is an
//      optimization, not an approximation.
//   2. Envelope: the measured FlatForest cost per prediction, converted to
//      cycles at the repo's 2 GHz presentation clock, must fit inside
//      kDefaultDispatchCyclesPerLayer. If this fails, either the forest got
//      bigger or the default is stale — recalibrate the constant and the
//      committed BENCH_dispatch_overhead.json together.
//
// Run from the build tree: ./bench_dispatch_overhead   (no arguments).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "dispatch/learned_dispatcher.h"
#include "ml/dataset.h"

using namespace vlacnn;
using namespace vlacnn::bench;

namespace {

constexpr double kClockGhz = 2.0;  ///< presentation clock (DESIGN.md §10)

/// Median ns/prediction of `fn` over `reps` full passes of the dataset.
template <typename Fn>
double median_ns_per_predict(const Dataset& ds, int reps, Fn&& fn) {
  long long sink = 0;
  for (const auto& x : ds.x) sink += fn(x);  // warm-up pass
  std::vector<double> per_rep;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& x : ds.x) sink += fn(x);
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    per_rep.push_back(ns / static_cast<double>(ds.size()));
  }
  if (sink == -1) std::printf("(unreachable)\n");  // defeat DCE
  std::sort(per_rep.begin(), per_rep.end());
  return per_rep[per_rep.size() / 2];
}

}  // namespace

int main() {
  banner("Dispatch selector overhead (FlatForest vs RandomForest)",
         "ICPP'24 Section 4.3 selector in the serving hot path");
  Env env;
  const std::vector<const Network*> nets{&env.vgg16, &env.yolo20};
  const Dataset ds = build_selection_dataset(*env.driver, nets, paper2_vlens(),
                                             paper2_l2_sizes());
  std::vector<std::size_t> all(ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  RandomForest forest;
  forest.fit(ds, all, ForestParams{});  // 100 trees, depth 10, bootstrap
  const dispatch::FlatForest flat(forest, ds.num_classes());
  std::printf("forest: %zu trees, %zu flattened nodes, %zu features, "
              "%zu-sample dataset\n",
              flat.tree_count(), flat.node_count(), flat.num_features(),
              ds.size());

  // Gate 1: exact agreement on every sample.
  std::size_t mismatches = 0;
  for (const auto& x : ds.x) {
    if (forest.predict(x) != flat.predict(x)) ++mismatches;
  }
  std::printf("agreement: %zu/%zu predictions identical\n",
              ds.size() - mismatches, ds.size());
  if (mismatches != 0) {
    std::printf("FAIL: FlatForest disagrees with RandomForest on %zu samples\n",
                mismatches);
    return 1;
  }

  // Timing: both paths over the same samples, median of alternating reps.
  constexpr int kReps = 25;
  const double rf_ns = median_ns_per_predict(
      ds, kReps, [&](const std::vector<float>& x) { return forest.predict(x); });
  const double flat_ns = median_ns_per_predict(
      ds, kReps, [&](const std::vector<float>& x) { return flat.predict(x); });
  const double rf_cycles = rf_ns * kClockGhz;
  const double flat_cycles = flat_ns * kClockGhz;
  std::printf("\nper-prediction cost (median of %d reps, %zu predictions "
              "each, %.0f GHz clock):\n",
              kReps, ds.size(), kClockGhz);
  std::printf("  RandomForest::predict  %8.1f ns  = %7.0f cycles\n", rf_ns,
              rf_cycles);
  std::printf("  FlatForest::predict    %8.1f ns  = %7.0f cycles   (%.1fx)\n",
              flat_ns, flat_cycles, rf_ns / flat_ns);

  // Gate 2: the default selector charge must cover the measured cost.
  const double budget = dispatch::kDefaultDispatchCyclesPerLayer;
  const bool fits = flat_cycles <= budget;
  std::printf("\ndefault dispatch_cycles_per_layer = %.0f cycles  ->  %s "
              "(measured %0.f, headroom %.1fx)\n",
              budget, fits ? "PASS" : "FAIL", flat_cycles,
              flat_cycles > 0 ? budget / flat_cycles : 0.0);
  return fits ? 0 : 1;
}

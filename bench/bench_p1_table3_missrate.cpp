// Paper I Table III: consumed average vector length and L2 miss rate vs the
// configured vector length, YOLOv3/20, decoupled RVV, 1 MB L2. Expected shape:
// near-full VL utilisation and a miss rate climbing from ~32% to ~79%.
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Paper I Table III: average vector length & L2 miss rate",
         "IPDPS'23 Table III");
  Env env;
  std::printf("\n%8s %14s %14s\n", "vlen", "avg VL (bits)", "L2 miss rate");
  for (std::uint32_t vlen : paper1_vlens()) {
    const auto rows = env.driver->network_rows(
        env.yolo20, Algo::kGemm3, vlen, 1u << 20, 8, VpuAttach::kDecoupledL2);
    // Cycle-weighted aggregates across layers.
    double vl_bits = 0, cyc = 0, mr = 0;
    for (const SweepRow& r : rows) {
      vl_bits += r.avg_vl * 32.0 * r.cycles;
      mr += r.l2_miss_rate * r.cycles;
      cyc += r.cycles;
    }
    std::printf("%8u %14.1f %13.1f%%\n", vlen, vl_bits / cyc, mr / cyc * 100);
  }
  std::printf("\n(paper: avg VL 512->15902 of 16384; miss rate 32%% -> 79%%)\n");
  return 0;
}

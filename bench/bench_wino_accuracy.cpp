// Winograd tile-size ablation (Paper I Section IV.B motivation): numerical
// error of F(m,3) tile convolution in fp32 grows with the tile size, which is
// why the implementation pins tiles at 8x8 (m=6) and scales to long vectors
// via inter-tile channel parallelism instead of larger tiles.
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "wino/transforms.h"

using namespace vlacnn;

int main() {
  std::printf("Winograd F(m,3) fp32 tile-convolution error vs tile size\n");
  std::printf("%6s %10s %12s %12s\n", "m", "tile", "mean err", "max err");
  for (int m : {2, 4, 6}) {
    const WinogradTransform& t = winograd_transform(m);
    const int n = t.n();
    Rng rng(77);
    double sum = 0, worst = 0;
    const int trials = 2000;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<float> d(static_cast<std::size_t>(n) * n);
      float g[9];
      for (auto& v : d) v = rng.uniform(-1, 1);
      for (auto& v : g) v = rng.uniform(-1, 1);
      std::vector<float> vt(d.size()), ut(d.size()), mt(d.size());
      wino_transform_input(t, d.data(), vt.data());
      wino_transform_weight(t, g, ut.data());
      for (int i = 0; i < n * n; ++i) mt[i] = ut[i] * vt[i];
      std::vector<float> y(static_cast<std::size_t>(m) * m);
      wino_transform_output(t, mt.data(), y.data());
      for (int oy = 0; oy < m; ++oy) {
        for (int ox = 0; ox < m; ++ox) {
          double expect = 0;
          for (int ky = 0; ky < 3; ++ky) {
            for (int kx = 0; kx < 3; ++kx) {
              expect += static_cast<double>(g[ky * 3 + kx]) *
                        d[static_cast<std::size_t>(oy + ky) * n + ox + kx];
            }
          }
          const double e = std::fabs(y[oy * m + ox] - expect);
          sum += e;
          worst = std::max(worst, e);
        }
      }
    }
    std::printf("%6d %7dx%-2d %12.3e %12.3e\n", m, n, n,
                sum / (trials * m * m), worst);
  }
  std::printf("\n(error grows with m: larger tiles are numerically unsafe in "
              "fp32, hence the fixed 8x8 tile + inter-tile parallelism)\n");
  return 0;
}

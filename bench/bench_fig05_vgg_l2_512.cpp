// Fig 5: L2 scaling (1 -> 64 MB) per layer and algorithm, VGG-16, 512-bit.
#include "bench_common.h"

int main() {
  using namespace vlacnn;
  using namespace vlacnn::bench;
  banner("Fig 5: L2 scaling per layer, VGG-16 @ 512-bit", "ICPP'24 Fig. 5");
  Env env;
  l2_scaling_figure(env, env.vgg16, 512, paper2_l2_sizes(),
                    VpuAttach::kIntegratedL1);
  return 0;
}

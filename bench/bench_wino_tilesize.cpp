// Winograd tile-size ablation at the *layer* level (the design decision behind
// Paper I Section IV.B): for F(2,3), F(4,3), F(6,3), simulate a representative
// 3x3 stride-1 layer across vector lengths and measure the fp32 output error —
// the arithmetic-reduction / numerical-accuracy trade that pins the papers'
// implementation to 8x8 tiles (m=6).
#include <cstdio>

#include "algos/reference.h"
#include "algos/winograd.h"
#include "common/rng.h"
#include "algos/registry.h"

using namespace vlacnn;

namespace {

double simulate_tile(const ConvLayerDesc& d, int m, std::uint32_t vlen) {
  SimConfig config = make_sim_config(vlen, 1u << 20);
  MemorySystem mem(config.mem);
  TimingModel timing(config.vpu, &mem, config.timing);
  TraceEngine eng(config.vpu, &timing);
  const int n = m + 2;
  const BufView in = eng.bind(nullptr, d.in_elems());
  const BufView u = eng.bind(
      nullptr, static_cast<std::uint64_t>(n) * n * d.oc * d.ic);
  const BufView out = eng.bind(nullptr, d.out_elems());
  conv_winograd(eng, d, in, u, out, config.sampler, m);
  return timing.stats().cycles;
}

float layer_error(const ConvLayerDesc& d, int m) {
  Rng rng(5);
  Tensor in(d.ic, d.ih, d.iw);
  in.fill_random(rng);
  std::vector<float> w(d.weight_elems());
  fill_uniform(rng, w.data(), w.size(), -1.0f, 1.0f);
  const Tensor ref = conv_reference(d, in, w);

  const int n = m + 2;
  std::vector<float> u(static_cast<std::size_t>(n) * n * d.oc * d.ic);
  winograd_prepare_weights(d, w.data(), u.data(), m);
  VpuConfig vpu{512, 8, VpuAttach::kIntegratedL1};
  FunctionalEngine eng(vpu);
  Tensor out(d.oc, d.oh(), d.ow());
  const BufView in_v = eng.bind(in.data(), in.size());
  const BufView u_v = eng.bind(u.data(), u.size());
  const BufView out_v = eng.bind(out.data(), out.size());
  conv_winograd(eng, d, in_v, u_v, out_v, Sampler{}, m);
  return max_abs_diff(ref, out) / (max_abs(ref) + 1e-9f);
}

}  // namespace

int main() {
  std::printf("Winograd tile-size ablation: F(m,3) on a 64x56x56->64 layer\n");
  std::printf("(cycles simulated at 1MB L2; error measured functionally on a "
              "16x20x20->8 layer)\n\n");
  const ConvLayerDesc d{64, 56, 56, 64, 3, 3, 1, 1};
  const ConvLayerDesc d_err{16, 20, 20, 8, 3, 3, 1, 1};
  std::printf("%4s %6s %14s %14s %14s %12s\n", "m", "tile", "cycles@512",
              "cycles@1024", "cycles@2048", "rel. error");
  for (int m : {2, 4, 6}) {
    std::printf("%4d %4dx%-2d %14.4g %14.4g %14.4g %12.2e\n", m, m + 2, m + 2,
                simulate_tile(d, m, 512), simulate_tile(d, m, 1024),
                simulate_tile(d, m, 2048), layer_error(d_err, m));
  }
  std::printf(
      "\n(m=6 minimises cycles — 5.06x fewer tuple multiplies than direct vs "
      "2.25x for m=2 — at the cost of ~100x the fp32 error of m=2; larger "
      "tiles would be numerically unsafe, so the papers scale Winograd to "
      "long vectors via inter-tile channel parallelism instead)\n");
  return 0;
}

// Fig 7: L2 scaling (1 -> 64 MB) per layer and algorithm, YOLOv3, 512-bit.
#include "bench_common.h"

int main() {
  using namespace vlacnn;
  using namespace vlacnn::bench;
  banner("Fig 7: L2 scaling per layer, YOLOv3 @ 512-bit", "ICPP'24 Fig. 7");
  Env env;
  l2_scaling_figure(env, env.yolo20, 512, paper2_l2_sizes(),
                    VpuAttach::kIntegratedL1);
  return 0;
}

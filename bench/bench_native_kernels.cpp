// Host-speed microbenchmarks (google-benchmark) of the functional kernels —
// not a paper figure, but the standard sanity harness for the library itself:
// relative host-side costs of the four algorithms and the scalar reference on
// a representative mid-size layer.
#include <benchmark/benchmark.h>

#include "algos/reference.h"
#include "algos/registry.h"
#include "common/rng.h"

namespace {

using namespace vlacnn;

const ConvLayerDesc kLayer{16, 32, 32, 16, 3, 3, 1, 1};

struct Fixture {
  Tensor in;
  std::vector<float> w;
  Fixture() : in(kLayer.ic, kLayer.ih, kLayer.iw), w(kLayer.weight_elems()) {
    Rng rng(1);
    in.fill_random(rng);
    fill_uniform(rng, w.data(), w.size(), -1.0f, 1.0f);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Reference(benchmark::State& state) {
  Fixture& f = fixture();
  Tensor out(kLayer.oc, kLayer.oh(), kLayer.ow());
  for (auto _ : state) {
    conv_reference(kLayer, f.in.data(), f.w.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kLayer.macs()));
}
BENCHMARK(BM_Reference);

void BM_Functional(benchmark::State& state, Algo algo, std::uint32_t vlen) {
  Fixture& f = fixture();
  VpuConfig vpu{vlen, 8, VpuAttach::kIntegratedL1};
  for (auto _ : state) {
    Tensor out = conv_functional(algo, kLayer, f.in, f.w, vpu);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kLayer.macs()));
}
BENCHMARK_CAPTURE(BM_Functional, direct_512, Algo::kDirect, 512u);
BENCHMARK_CAPTURE(BM_Functional, gemm3_512, Algo::kGemm3, 512u);
BENCHMARK_CAPTURE(BM_Functional, gemm6_512, Algo::kGemm6, 512u);
BENCHMARK_CAPTURE(BM_Functional, winograd_512, Algo::kWinograd, 512u);
BENCHMARK_CAPTURE(BM_Functional, gemm3_2048, Algo::kGemm3, 2048u);

void BM_TimingSimulation(benchmark::State& state, Algo algo) {
  SimConfig config = make_sim_config(512, 1u << 20);
  for (auto _ : state) {
    TimingStats s = conv_simulate(algo, kLayer, config);
    benchmark::DoNotOptimize(s.cycles);
  }
}
BENCHMARK_CAPTURE(BM_TimingSimulation, direct, Algo::kDirect);
BENCHMARK_CAPTURE(BM_TimingSimulation, gemm6, Algo::kGemm6);
BENCHMARK_CAPTURE(BM_TimingSimulation, winograd, Algo::kWinograd);

}  // namespace

BENCHMARK_MAIN();

// Paper I Section VI.B(c): impact of the number of vector lanes (2 -> 8) for
// different vector lengths, YOLOv3/20, decoupled RVV, 1 MB L2. Expected shape:
// ~1.25x for 8192-bit; 512-bit saturates beyond 4 lanes.
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Paper I: vector-lane scaling, YOLOv3/20, decoupled RVV",
         "IPDPS'23 Section VI.B(c)");
  Env env;
  std::printf("\n%8s %8s %12s %10s\n", "vlen", "lanes", "Gcycles",
              "vs 2 lanes");
  for (std::uint32_t vlen : {512u, 2048u, 8192u}) {
    double base = 0;
    for (std::uint32_t lanes : {2u, 4u, 8u}) {
      const double cycles = env.driver->network_cycles(
          env.yolo20, Algo::kGemm3, vlen, 1u << 20, lanes,
          VpuAttach::kDecoupledL2);
      if (base == 0) base = cycles;
      std::printf("%8u %8u %12.3f %9.2fx\n", vlen, lanes, cycles / 1e9,
                  base / cycles);
    }
  }
  std::printf("\n(paper: ~1.25x for 8192-bit from 2 to 8 lanes; 512-bit "
              "saturates beyond 4 lanes)\n");
  return 0;
}

// Fig 2: per-layer comparison of the four algorithms on the first 15 conv
// layers of YOLOv3 at 512-bit vectors and 1 MB L2.
#include "bench_common.h"

int main() {
  using namespace vlacnn::bench;
  banner("Fig 2: per-layer algorithm comparison, YOLOv3 (15 conv layers)",
         "ICPP'24 Fig. 2");
  Env env;
  perlayer_figure(env, env.yolo20, 512, 1u << 20);
  return 0;
}

// Paper I Table IV: arithmetic intensity of the 14 discrete convolutional
// layer shapes of full YOLOv3 (im2col+GEMM roofline view).
#include <map>

#include "bench_common.h"
#include "net/models.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Paper I Table IV: arithmetic intensity of YOLOv3 conv layers",
         "IPDPS'23 Table IV");
  const Network full = make_yolov3(-1, 608);
  // Discrete (M, N, K) combinations, keeping the first layer index for each.
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>, int> seen;
  int idx = 0;
  std::printf("\n%6s %6s %9s %6s %8s\n", "layer", "M", "N", "K", "AI");
  for (const ConvLayerDesc& d : full.conv_descs()) {
    ++idx;
    const auto key = std::make_tuple(d.gemm_m(), d.gemm_n(), d.gemm_k());
    if (seen.count(key)) continue;
    seen[key] = idx;
    std::printf("%6d %6llu %9llu %6llu %8.1f\n", idx,
                static_cast<unsigned long long>(d.gemm_m()),
                static_cast<unsigned long long>(d.gemm_n()),
                static_cast<unsigned long long>(d.gemm_k()),
                d.arithmetic_intensity());
  }
  std::printf("\n%zu discrete shapes (paper lists 14 for its 768x576 input; "
              "L44 M=1024 N=361 K=4608 -> AI 126)\n", seen.size());
  return 0;
}

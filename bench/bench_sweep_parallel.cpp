// Parallel sweep engine check: runs a Fig 5-8-style L2 sweep (every conv
// layer x all four algorithms x the Paper II L2 grid) twice on cold caches —
// once strictly serially through SweepDriver::get, once through the
// get_many fan-out — verifies the results are bit-identical, and reports the
// wall-clock speedup.
//
// Usage: bench_sweep_parallel [vgg_input_size]
//   default input size 64 keeps a cold serial baseline to seconds; pass 224
//   for the paper-scale sweep. Threads come from VLACNN_THREADS (default: all
//   hardware threads).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "net/models.h"

using namespace vlacnn;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<SweepRequest> fig5_requests(const Network& net) {
  std::vector<SweepRequest> reqs;
  const auto descs = net.conv_descs();
  for (std::uint64_t l2 : paper2_l2_sizes()) {
    for (Algo algo : kAllAlgos) {
      for (std::size_t i = 0; i < descs.size(); ++i) {
        const Algo a = algo_applicable(algo, descs[i]) ? algo : Algo::kGemm6;
        reqs.push_back({net.name(), static_cast<int>(i), descs[i], a, 512, l2,
                        8, VpuAttach::kIntegratedL1});
      }
    }
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  const int size = argc > 1 ? std::atoi(argv[1]) : 64;
  const Network net = make_vgg16(size);
  const auto reqs = fig5_requests(net);

  bench::banner("Parallel sweep engine: serial vs fan-out on a Fig 5-style "
                "L2 sweep",
                "engine check (not a paper figure)");
  std::printf("%zu grid points (vgg16@%d, VLEN=512, L2 in {1,4,16,64} MB), "
              "%u pool thread(s)\n",
              reqs.size(), size, ThreadPool::shared().size() + 1);

  const auto scratch = std::filesystem::temp_directory_path() /
                       "vlacnn_bench_sweep_parallel";
  std::filesystem::remove_all(scratch);

  // Parallel first: process warm-up (transform caches, allocator, frequency
  // ramp) then favours the serial baseline, making the reported speedup
  // conservative.
  ResultsDb par_db((scratch / "parallel.csv").string());
  SweepDriver parallel(&par_db);
  auto t0 = std::chrono::steady_clock::now();
  const std::vector<SweepRow> par_rows = parallel.get_many(reqs);
  const double t_parallel = seconds_since(t0);

  ResultsDb serial_db((scratch / "serial.csv").string());
  SweepDriver serial(&serial_db);
  t0 = std::chrono::steady_clock::now();
  std::vector<SweepRow> serial_rows;
  serial_rows.reserve(reqs.size());
  for (const SweepRequest& q : reqs) {
    serial_rows.push_back(serial.get(q.net, q.layer, q.desc, q.algo,
                                     q.vlen_bits, q.l2_bytes, q.lanes,
                                     q.attach));
  }
  const double t_serial = seconds_since(t0);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    mismatches +=
        std::memcmp(&serial_rows[i].cycles, &par_rows[i].cycles,
                    sizeof(double)) != 0 ||
        std::memcmp(&serial_rows[i].avg_vl, &par_rows[i].avg_vl,
                    sizeof(double)) != 0 ||
        std::memcmp(&serial_rows[i].l2_miss_rate, &par_rows[i].l2_miss_rate,
                    sizeof(double)) != 0;
  }
  std::filesystem::remove_all(scratch);

  std::printf("serial   %8.2f s\nparallel %8.2f s\nspeedup  %8.2fx\n",
              t_serial, t_parallel, t_serial / t_parallel);
  std::printf("bit-identical rows: %zu/%zu%s\n", reqs.size() - mismatches,
              reqs.size(), mismatches == 0 ? "" : "  <-- MISMATCH");
  return mismatches == 0 ? 0 : 1;
}

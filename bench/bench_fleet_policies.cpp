// Beyond the paper: front-end routing policy shoot-out for multi-chip fleet
// serving (src/serving/fleet.h, DESIGN.md §15). The ICPP'24 study sizes one
// chip; model serving deploys many. This bench fixes a four-chip fleet under
// the paper's VGG-16 + YOLOv3 traffic mix at ~0.8 utilization — where routing
// quality actually shows up in the tail — and compares round-robin,
// join-shortest-queue, and power-of-two-choices on p99/p99.9 latency and SLO
// attainment, all on the same seeded arrival stream. Small chips on purpose:
// with few servers per chip, one bad routing decision is a whole service
// time of queueing, which is where policies separate. A second table shows
// the batching interaction — load-aware routing concentrates arrivals into
// larger batches, which can invert the ranking.
//
// Everything is simulated cycles from seeded processes: two runs with the
// same seeds print byte-identical numbers at any VLACNN_THREADS.
#include <cinttypes>

#include "bench_common.h"
#include "serving/fleet.h"

using namespace vlacnn;
using namespace vlacnn::bench;
using namespace vlacnn::serving;

namespace {

constexpr double kHz = 2.0e9;  // presentation clock, as everywhere else

void print_row(const char* label, const FleetStats& s) {
  std::printf("%-6s %8.0f %8.0f %8.0f %8.0f %7.2f %6.1f%% %8.2f %7.2f%%\n",
              label, ServingStats::ms(s.fleet.p50, kHz),
              ServingStats::ms(s.fleet.p95, kHz),
              ServingStats::ms(s.fleet.p99, kHz),
              ServingStats::ms(s.fleet.p999, kHz), s.fleet.mean_batch,
              s.fleet.utilization * 100.0, s.fleet.throughput_rps(kHz),
              s.fleet.slo_attainment * 100.0);
}

}  // namespace

int main() {
  banner("Fleet routing: rr vs jsq vs p2c at 0.8 utilization",
         "beyond ICPP'24 (routing after Mitzenmacher '01, load balancing "
         "surveys)");
  Env env;

  // Four identical small chips (2 cores x 2048-bit x 8MB shared L2, one
  // instance per core), every chip hosting both models — the homogeneous
  // full-replication baseline, so latency differences are routing, not
  // placement. Eight servers fleet-wide keeps queueing real at 0.8
  // utilization; a 64-instance fleet at the same fraction almost never
  // queues and every policy ties.
  const ServingPoint point{2, 2048, 8ull << 20, 2};
  const int kChips = 4;
  const BatchCostModel vgg_cost = batch_cost_model(
      *env.driver, env.vgg16, point.vlen_bits, point.l2_slice_bytes(),
      std::nullopt);
  const BatchCostModel yolo_cost = batch_cost_model(
      *env.driver, env.yolo20, point.vlen_bits, point.l2_slice_bytes(),
      std::nullopt);

  FleetTrafficMix mix;
  mix.names = {"vgg16", "yolo20"};
  mix.shares = {0.7, 0.3};
  mix.seed = 42;

  // No-batch fleet capacity under the mix-weighted service time; offer 80%.
  const double weighted_first =
      0.7 * vgg_cost.first_image_cycles + 0.3 * yolo_cost.first_image_cycles;
  const double cap_rps =
      static_cast<double>(kChips * point.instances) / weighted_first * kHz;
  const double load_rps = 0.8 * cap_rps;
  const std::uint64_t kRequests = 4000;
  const std::uint64_t kSeed = 42;
  const double slo_ms = 15000.0;

  std::printf("\nfleet: %d x (%d cores x %u-bit x %s shared L2, %d "
              "instances), full replication\n",
              kChips, point.cores, point.vlen_bits,
              l2_str(point.l2_total_bytes).c_str(), point.instances);
  std::printf("mix %s; vgg16 first image %.2f ms, yolo20 %.2f ms\n",
              mix.to_string().c_str(),
              ServingStats::ms(vgg_cost.first_image_cycles, kHz),
              ServingStats::ms(yolo_cost.first_image_cycles, kHz));
  std::printf("no-batch fleet capacity %.1f req/s; offering 80%% = %.1f "
              "req/s, %" PRIu64 " requests, %.0f ms SLO\n",
              cap_rps, load_rps, kRequests, slo_ms);

  FleetConfig fc;
  for (int c = 0; c < kChips; ++c) {
    FleetChip chip;
    chip.spec.point = point;
    chip.costs = {vgg_cost, yolo_cost};
    fc.chips.push_back(chip);
  }
  fc.mix = mix;
  fc.policy = {BatchPolicySpec::Kind::kNoBatch, 1, 0};
  fc.slo_cycles = slo_ms * 1e-3 * kHz;
  fc.router_hop_cycles = 2e6;  // 1 ms front-end network hop

  ArrivalSpec as;
  as.kind = ArrivalSpec::Kind::kPoisson;
  as.mean_interarrival_cycles = kHz / load_rps;
  as.requests = kRequests;

  const RouterSpec routers[] = {
      {RouterSpec::Kind::kRoundRobin, 1},
      {RouterSpec::Kind::kJoinShortestQueue, 1},
      {RouterSpec::Kind::kPowerOfTwo, 1},
  };
  const char* names[] = {"rr", "jsq", "p2c"};

  std::printf("\nno batching (pure routing signal):\n");
  std::printf("%-6s %8s %8s %8s %8s %7s %7s %8s %8s\n", "router", "p50ms",
              "p95ms", "p99ms", "p999ms", "batch", "util", "req/s", "SLO");
  FleetStats jsq_stats, rr_stats;
  for (std::size_t i = 0; i < 3; ++i) {
    fc.router = routers[i];
    const auto arrivals = make_arrivals(as, kSeed);
    const FleetStats s = simulate_fleet(fc, *arrivals);
    print_row(names[i], s);
    if (i == 0) rr_stats = s;
    if (i == 1) jsq_stats = s;
  }
  if (jsq_stats.fleet.p99 > 0) {
    std::printf("rr p99 / jsq p99 = %.2fx\n",
                rr_stats.fleet.p99 / jsq_stats.fleet.p99);
  }

  // Tail sensitivity to load: the policy gap opens as utilization climbs.
  std::printf("\np99 (ms) vs offered load, no batching:\n");
  std::printf("%-6s", "router");
  const double fracs[] = {0.5, 0.7, 0.8, 0.9};
  for (double f : fracs) std::printf(" %7.0f%%", f * 100.0);
  std::printf("\n");
  for (std::size_t i = 0; i < 3; ++i) {
    fc.router = routers[i];
    std::printf("%-6s", names[i]);
    for (double f : fracs) {
      ArrivalSpec a2 = as;
      a2.mean_interarrival_cycles = kHz / (f * cap_rps);
      const auto arrivals = make_arrivals(a2, kSeed);
      const FleetStats s = simulate_fleet(fc, *arrivals);
      std::printf(" %8.0f", ServingStats::ms(s.fleet.p99, kHz));
    }
    std::printf("\n");
  }

  // The batching interaction: adaptive batching (max 4, 100 ms flush) turns
  // routing concentration into batch formation. Load-aware policies that
  // funnel consecutive arrivals to the same chip grow batches — good for
  // throughput, but every extra image adds its marginal cycles to the whole
  // batch's completion, so at sub-saturation load it is pure tail inflation.
  fc.policy = {BatchPolicySpec::Kind::kAdaptive, 4, 2e8};
  std::printf("\nadaptive batching, max 4, 100 ms flush (same load):\n");
  std::printf("%-6s %8s %8s %8s %8s %7s %7s %8s %8s\n", "router", "p50ms",
              "p95ms", "p99ms", "p999ms", "batch", "util", "req/s", "SLO");
  for (std::size_t i = 0; i < 3; ++i) {
    fc.router = routers[i];
    const auto arrivals = make_arrivals(as, kSeed);
    const FleetStats s = simulate_fleet(fc, *arrivals);
    print_row(names[i], s);
  }

  // Heterogeneous silicon — the fleet planner's actual output shape. Two
  // small chips plus one 16-instance chip: round-robin deals each chip an
  // equal share, so the small chips run far above their fair utilization
  // while the big one idles. Load-aware policies are what make mixed
  // compositions usable at all.
  {
    const ServingPoint big{16, 2048, 64ull << 20, 16};  // same 4MB L2 slice
    FleetConfig hc;
    for (int c = 0; c < 2; ++c) {
      FleetChip chip;
      chip.spec.point = point;
      chip.costs = {vgg_cost, yolo_cost};
      hc.chips.push_back(chip);
    }
    FleetChip big_chip;
    big_chip.spec.point = big;
    big_chip.costs = {vgg_cost, yolo_cost};
    hc.chips.push_back(big_chip);
    hc.mix = mix;
    hc.policy = {BatchPolicySpec::Kind::kNoBatch, 1, 0};
    hc.slo_cycles = fc.slo_cycles;
    hc.router_hop_cycles = fc.router_hop_cycles;

    const double het_cap =
        static_cast<double>(2 * point.instances + big.instances) /
        weighted_first * kHz;
    ArrivalSpec ha = as;
    ha.mean_interarrival_cycles = kHz / (0.8 * het_cap);
    std::printf("\nheterogeneous fleet (2 x %d-instance + 1 x %d-instance), "
                "no batching, 80%% of %.1f req/s:\n",
                point.instances, big.instances, het_cap);
    std::printf("%-6s %8s %8s %8s %8s %7s %7s %8s %8s\n", "router", "p50ms",
                "p95ms", "p99ms", "p999ms", "batch", "util", "req/s", "SLO");
    for (std::size_t i = 0; i < 3; ++i) {
      hc.router = routers[i];
      const auto arrivals = make_arrivals(ha, kSeed);
      const FleetStats s = simulate_fleet(hc, *arrivals);
      print_row(names[i], s);
    }
  }
  return 0;
}

// Paper I Fig 7: impact of L2 size (1 -> 256 MB) for each vector length on
// YOLOv3 (first 20 layers), decoupled RVV, 3-loop GEMM, 8 lanes. Expected
// shape: 1.5-1.9x from the L2 sweep, ~5x total vs 512-bit x 1MB, with the
// longest vectors benefiting most from large caches.
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Paper I Fig 7: L2 scaling x vector length, YOLOv3/20, decoupled RVV",
         "IPDPS'23 Fig. 7");
  Env env;
  std::printf("\n%8s", "vlen");
  for (std::uint64_t l2 : paper1_l2_sizes()) {
    std::printf(" %9s", l2_str(l2).c_str());
  }
  std::printf("   %s\n", "L2-gain   total-gain-vs-512x1MB");
  double base512 = 0;
  for (std::uint32_t vlen : paper1_vlens()) {
    std::printf("%8u", vlen);
    double first = 0, last = 0;
    for (std::uint64_t l2 : paper1_l2_sizes()) {
      const double cycles = env.driver->network_cycles(
          env.yolo20, Algo::kGemm3, vlen, l2, 8, VpuAttach::kDecoupledL2);
      if (first == 0) first = cycles;
      if (base512 == 0) base512 = cycles;
      last = cycles;
      std::printf(" %8.2fG", cycles / 1e9);
    }
    std::printf("   %5.2fx %9.2fx\n", first / last, base512 / last);
  }
  std::printf("\n(paper: larger L2 gives 1.5x-1.9x; best total ~5x; 16384-bit "
              "gains only ~5%% over 8192-bit at 256MB)\n");
  return 0;
}

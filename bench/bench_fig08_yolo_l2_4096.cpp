// Fig 8: L2 scaling (1 -> 64 MB) per layer and algorithm, YOLOv3, 4096-bit.
#include "bench_common.h"

int main() {
  using namespace vlacnn;
  using namespace vlacnn::bench;
  banner("Fig 8: L2 scaling per layer, YOLOv3 @ 4096-bit", "ICPP'24 Fig. 8");
  Env env;
  l2_scaling_figure(env, env.yolo20, 4096, paper2_l2_sizes(),
                    VpuAttach::kIntegratedL1);
  return 0;
}

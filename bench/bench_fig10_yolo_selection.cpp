// Fig 10: whole-network execution time of YOLOv3 (first 15 conv layers) per
// hardware configuration, single algorithms vs Optimal vs Predicted Optimal.
#include "bench_common.h"

int main() {
  using namespace vlacnn::bench;
  banner("Fig 10: algorithm selection on YOLOv3", "ICPP'24 Fig. 10");
  Env env;
  selection_figure(env, env.yolo20);
  return 0;
}

#include "bench_common.h"

#include "obs/metrics.h"
#include "report/collector.h"

namespace vlacnn::bench {

Env::Env()
    : db(std::make_unique<ResultsDb>(default_results_path())),
      driver(std::make_unique<SweepDriver>(db.get())),
      vgg16(make_vgg16(224)),
      yolo20(make_yolov3(20, 608)) {}

void banner(const std::string& title, const std::string& paper_ref) {
  // Every figure driver prints a banner first, so this is the one place that
  // arms the VLACNN_METRICS and VLACNN_REPORT exit reports for the whole
  // bench suite.
  obs::install_exit_report();
  report::arm_exit_report(title);
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

std::string l2_str(std::uint64_t bytes) {
  return std::to_string(bytes >> 20) + "MB";
}

std::string bar(double frac, int width) {
  if (frac < 0) frac = 0;
  if (frac > 1) frac = 1;
  const int n = static_cast<int>(frac * width + 0.5);
  std::string s(n, '#');
  s.append(width - n, ' ');
  return s;
}

std::string layer_tag(const ConvLayerDesc& d) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%4dx%3dx%3d->%4d k%d s%d", d.ic, d.ih, d.iw,
                d.oc, d.kh, d.stride);
  return buf;
}

namespace {

constexpr double kClockHz = 2.0e9;  // both papers simulate 2 GHz cores

const std::vector<Algo> kAlgoVec(kAllAlgos.begin(), kAllAlgos.end());

/// Per-layer rows for every algorithm (gemm6 fallback where inapplicable).
std::vector<std::vector<SweepRow>> all_algo_rows(Env& env, const Network& net,
                                                 std::uint32_t vlen,
                                                 std::uint64_t l2,
                                                 VpuAttach attach) {
  // One parallel fan-out over the full layer x algorithm block, then cheap
  // per-algorithm cache hits.
  env.driver->prefetch(net, kAlgoVec, {vlen}, {l2}, 8, attach);
  std::vector<std::vector<SweepRow>> per_algo;
  for (Algo a : kAllAlgos) {
    per_algo.push_back(env.driver->network_rows(net, a, vlen, l2, 8, attach));
  }
  return per_algo;
}

}  // namespace

void perlayer_figure(Env& env, const Network& net, std::uint32_t vlen,
                     std::uint64_t l2) {
  const auto rows = all_algo_rows(env, net, vlen, l2,
                                  VpuAttach::kIntegratedL1);
  const std::size_t layers = rows[0].size();
  std::printf("\n%s @ %u-bit x %s  (per-layer time in ms @ 2GHz; * = winner;\n"
              " w! = winograd inapplicable, gemm6 fallback shown)\n\n",
              net.name().c_str(), vlen, l2_str(l2).c_str());
  std::printf("%5s %-26s %11s %11s %11s %11s\n", "layer", "dimensions",
              "direct", "gemm3", "gemm6", "winograd");
  for (std::size_t i = 0; i < layers; ++i) {
    double best = 1e300;
    for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
      best = std::min(best, rows[a][i].cycles);
    }
    std::printf("%5zu %-26s", i + 1, layer_tag(rows[0][i].desc).c_str());
    for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
      const bool fallback = rows[a][i].key.algo != kAllAlgos[a];
      const double ms = rows[a][i].cycles / kClockHz * 1e3;
      std::printf(" %8.2f%s%s", ms,
                  rows[a][i].cycles <= best * 1.0000001 ? "*" : " ",
                  fallback ? "w!" : "  ");
    }
    std::printf("\n");
  }
}

void vlen_scaling_figure(Env& env, const Network& net,
                         const std::vector<std::uint32_t>& vlens,
                         std::uint64_t l2, VpuAttach attach) {
  std::printf("\n%s, L2=%s: per-layer speedup over the %u-bit baseline\n",
              net.name().c_str(), l2_str(l2).c_str(), vlens.front());
  env.driver->prefetch(net, kAlgoVec, vlens, {l2}, 8, attach);
  for (Algo a : kAllAlgos) {
    std::printf("\n-- %s --\n%5s %-26s", to_string(a), "layer", "dimensions");
    for (std::uint32_t v : vlens) std::printf(" %6u", v);
    std::printf("   (ms @ first vlen)\n");
    std::vector<std::vector<SweepRow>> per_vlen;
    for (std::uint32_t v : vlens) {
      per_vlen.push_back(env.driver->network_rows(net, a, v, l2, 8, attach));
    }
    for (std::size_t i = 0; i < per_vlen[0].size(); ++i) {
      const double base = per_vlen[0][i].cycles;
      std::printf("%5zu %-26s", i + 1,
                  layer_tag(per_vlen[0][i].desc).c_str());
      for (std::size_t vi = 0; vi < vlens.size(); ++vi) {
        std::printf(" %5.2fx", base / per_vlen[vi][i].cycles);
      }
      std::printf("   %8.2f%s\n", base / kClockHz * 1e3,
                  per_vlen[0][i].key.algo != a ? " (gemm6 fallback)" : "");
    }
  }
}

void l2_scaling_figure(Env& env, const Network& net, std::uint32_t vlen,
                       const std::vector<std::uint64_t>& l2_sizes,
                       VpuAttach attach) {
  std::printf("\n%s, VLEN=%u-bit: per-layer speedup over the %s baseline\n",
              net.name().c_str(), vlen, l2_str(l2_sizes.front()).c_str());
  env.driver->prefetch(net, kAlgoVec, {vlen}, l2_sizes, 8, attach);
  for (Algo a : kAllAlgos) {
    std::printf("\n-- %s --\n%5s %-26s", to_string(a), "layer", "dimensions");
    for (std::uint64_t l2 : l2_sizes) std::printf(" %6s", l2_str(l2).c_str());
    std::printf("   (ms @ first size)\n");
    std::vector<std::vector<SweepRow>> per_l2;
    for (std::uint64_t l2 : l2_sizes) {
      per_l2.push_back(env.driver->network_rows(net, a, vlen, l2, 8, attach));
    }
    for (std::size_t i = 0; i < per_l2[0].size(); ++i) {
      const double base = per_l2[0][i].cycles;
      std::printf("%5zu %-26s", i + 1, layer_tag(per_l2[0][i].desc).c_str());
      for (std::size_t li = 0; li < l2_sizes.size(); ++li) {
        std::printf(" %5.2fx", base / per_l2[li][i].cycles);
      }
      std::printf("   %8.2f%s\n", base / kClockHz * 1e3,
                  per_l2[0][i].key.algo != a ? " (gemm6 fallback)" : "");
    }
  }
}

void selection_figure(Env& env, const Network& net) {
  // Train/predict on the paper's 448-point dataset (both networks, 16 configs)
  // with held-out 5-fold predictions. build_selection_dataset prefetches the
  // whole grid in parallel; the per-config loops below run on cache hits.
  const std::vector<const Network*> nets{&env.vgg16, &env.yolo20};
  const Dataset ds = build_selection_dataset(*env.driver, nets, paper2_vlens(),
                                             paper2_l2_sizes());
  ForestParams params;
  const std::vector<int> pred = heldout_predictions(ds, params, 5, 2024);

  std::printf("\n%s: whole-network conv time (s @ 2GHz) per hardware config\n",
              net.name().c_str());
  std::printf("%-18s %8s %8s %8s %8s %9s %10s %9s\n", "config", "direct",
              "gemm3", "gemm6", "wino*", "Optimal", "Predicted", "best/opt");
  for (std::uint32_t vlen : paper2_vlens()) {
    for (std::uint64_t l2 : paper2_l2_sizes()) {
      double fixed[4];
      for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
        fixed[a] = env.driver->network_cycles(net, kAllAlgos[a], vlen, l2);
      }
      const auto opt = env.driver->network_optimal(net, vlen, l2);
      // Assemble the predicted plan for this (net, config) from the held-out
      // predictions.
      std::vector<Algo> plan(net.conv_descs().size(), Algo::kGemm6);
      for (std::size_t s = 0; s < ds.size(); ++s) {
        const SampleMeta& m = ds.meta[s];
        if (m.net == net.name() && m.vlen_bits == vlen && m.l2_bytes == l2) {
          plan[m.layer] = kAllAlgos[static_cast<std::size_t>(pred[s]) %
                                    kAllAlgos.size()];
        }
      }
      const double predicted =
          env.driver->network_plan_cycles(net, plan, vlen, l2);
      char cfg[32];
      std::snprintf(cfg, sizeof(cfg), "%u-bit x %s", vlen,
                    l2_str(l2).c_str());
      double best_fixed = 1e300;
      for (double f : fixed) best_fixed = std::min(best_fixed, f);
      std::printf("%-18s %8.3f %8.3f %8.3f %8.3f %9.3f %10.3f %8.2fx\n", cfg,
                  fixed[0] / kClockHz, fixed[1] / kClockHz,
                  fixed[2] / kClockHz, fixed[3] / kClockHz,
                  opt.cycles / kClockHz, predicted / kClockHz,
                  best_fixed / opt.cycles);
    }
  }
  std::printf("(wino* = Winograd with gemm6 fallback on inapplicable layers; "
              "best/opt = best single algorithm vs per-layer Optimal)\n");
}

}  // namespace vlacnn::bench

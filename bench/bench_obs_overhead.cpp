// Proves the observability layer's "near-zero cost when off" claim on both
// instrumented hot loops:
//
//  1. conv simulation: conv_simulate (instrumented, all obs knobs off) vs
//     conv_simulate_no_obs (the uninstrumented baseline).
//  2. serving event loop: simulate_requests (instrumented: metrics, trace
//     spans, timeline hooks — all off) vs simulate_requests_no_obs.
//
// Each side runs in alternating repetitions, and a section fails (exit 1) if
// the disabled-path overhead exceeds the 2% budget *by more than the
// measurement's own noise floor*: the median gap must also exceed the
// baseline side's min-to-max spread, so a quiet-machine run can't fail (or
// pass) on scheduler jitter alone. Both sides report min/median/max so the
// spread is visible in the output and in BENCH_obs.json. Informational
// passes repeat each measurement with the obs paths forced on (metrics +
// tracing for conv; a live TimelineRecorder and a live RequestTraceRecorder
// for serving) to show what the enabled paths cost.
//
// Run from the build tree: ./bench_obs_overhead  (no arguments; ignores
// VLACNN_METRICS/VLACNN_TRACE/VLACNN_TIMELINE/VLACNN_REQTRACE/VLACNN_KERNPROF
// so a CI environment can't skew the verdict).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <vector>

#include "algos/registry.h"
#include "net/models.h"
#include "obs/kernprof.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serving/arrivals.h"
#include "serving/batching.h"
#include "serving/request_sim.h"

namespace vlacnn {
namespace {

struct Point {
  ConvLayerDesc desc;
  Algo algo;
};

/// Small-image VGG-16 conv stack x every applicable algorithm: big enough that
/// a repetition takes O(seconds), small enough to repeat many times.
std::vector<Point> workload() {
  std::vector<Point> pts;
  const Network net = make_vgg16(32);
  for (const ConvLayerDesc& d : net.conv_descs()) {
    for (Algo a : kAllAlgos) {
      if (algo_applicable(a, d)) pts.push_back({d, a});
    }
  }
  return pts;
}

using SimFn = TimingStats (*)(Algo, const ConvLayerDesc&, const SimConfig&);

/// conv_simulate without its kernel-profile out-param, to match SimFn.
TimingStats conv_simulate_instrumented(Algo a, const ConvLayerDesc& d,
                                       const SimConfig& c) {
  return conv_simulate(a, d, c);
}

double time_once(SimFn fn, const std::vector<Point>& pts,
                 const SimConfig& config, double* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Point& p : pts) *sink += fn(p.algo, p.desc, config).cycles;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Spread {
  double min = 0;
  double med = 0;
  double max = 0;
};

Spread spread(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return {v.front(), v[v.size() / 2], v.back()};
}

struct Measurement {
  Spread base;  ///< conv_simulate_no_obs
  Spread obs;   ///< conv_simulate
};

/// Alternates baseline/instrumented repetitions so drift (thermal, other
/// processes) hits both sides equally.
Measurement measure(const std::vector<Point>& pts, const SimConfig& config,
                    int reps) {
  double sink = 0;
  // Warm-up: one untimed pass of each path.
  time_once(&conv_simulate_no_obs, pts, config, &sink);
  time_once(&conv_simulate_instrumented, pts, config, &sink);
  std::vector<double> base_ms, obs_ms;
  for (int r = 0; r < reps; ++r) {
    base_ms.push_back(time_once(&conv_simulate_no_obs, pts, config, &sink));
    obs_ms.push_back(
        time_once(&conv_simulate_instrumented, pts, config, &sink));
  }
  if (sink == 12345.0) std::printf("(unreachable)\n");  // defeat DCE
  return {spread(base_ms), spread(obs_ms)};
}

void print_spread(const char* label, const Spread& s, const char* suffix) {
  std::printf("%-20s min %8.2f  median %8.2f  max %8.2f ms%s\n", label, s.min,
              s.med, s.max, suffix);
}

// -- serving event loop -------------------------------------------------------

/// Poisson traffic at ~80% utilization of 4 adaptively-batched instances,
/// with a queue bound tight enough that bursts drop and an SLO tight enough
/// that some requests miss — every hook in the loop (arrival, drop, dispatch,
/// completion, batch-done) fires on a realistic mix.
constexpr std::uint64_t kServeRequests = 1'500'000;

serving::ServingStats serve_once_impl(bool instrumented,
                                      obs::TimelineRecorder* rec,
                                      obs::RequestTraceRecorder* rrec) {
  serving::RequestSimConfig rc;
  rc.instances = 4;
  rc.cost = {50000, 9000};
  rc.queue_capacity = 64;
  rc.slo_cycles = 200000;
  rc.timeline = rec;
  rc.reqtrace = rrec;
  serving::PoissonArrivals arrivals(4500.0, kServeRequests, 7);
  serving::AdaptiveBatchPolicy policy(8, 40000);
  return instrumented ? serving::simulate_requests(rc, arrivals, policy)
                      : serving::simulate_requests_no_obs(rc, arrivals, policy);
}

/// What the serving-side informational pass forces on, one at a time.
enum class ServeExtra { kNone, kTimeline, kReqTrace };

double serve_once(bool instrumented, ServeExtra extra, double* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  if (extra == ServeExtra::kTimeline) {
    obs::TimelineConfig tcfg;
    tcfg.interval_cycles = 1e6;
    tcfg.slo_cycles = 200000;
    tcfg.instances = 4;
    obs::TimelineRecorder rec(tcfg);
    *sink += serve_once_impl(instrumented, &rec, nullptr).mean_latency;
    *sink += static_cast<double>(rec.snapshots().size());
  } else if (extra == ServeExtra::kReqTrace) {
    obs::ReqTraceConfig rtc;
    rtc.top_k = 8;
    rtc.slo_cycles = 200000;
    rtc.service_layers = {{"conv1/direct", 1.0},
                          {"conv2/gemm6", 2.0},
                          {"conv3/winograd", 0.5}};
    obs::RequestTraceRecorder rec(rtc);
    *sink += serve_once_impl(instrumented, nullptr, &rec).mean_latency;
    *sink += static_cast<double>(rec.sampled().size());
  } else {
    *sink += serve_once_impl(instrumented, nullptr, nullptr).mean_latency;
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Measurement measure_serving(int reps, ServeExtra extra, double* sink) {
  serve_once(false, ServeExtra::kNone, sink);  // warm-up, one untimed pass each
  serve_once(true, extra, sink);
  std::vector<double> base_ms, obs_ms;
  for (int r = 0; r < reps; ++r) {
    base_ms.push_back(serve_once(false, ServeExtra::kNone, sink));
    obs_ms.push_back(serve_once(true, extra, sink));
  }
  return {spread(base_ms), spread(obs_ms)};
}

}  // namespace
}  // namespace vlacnn

int main(int argc, char** argv) {
  using namespace vlacnn;

  // --quick (CI): fewer reps and no informational enabled-path passes. The
  // verdict logic is identical — the noise floor scales with the shorter run.
  const bool quick =
      argc > 1 && std::string_view(argv[1]) == std::string_view("--quick");

  std::printf("\n================================================================\n");
  std::printf("bench_obs_overhead: cost of the vlacnn::obs layer%s\n",
              quick ? " (--quick)" : "");
  std::printf("================================================================\n");

  // The verdict must reflect the *disabled* path regardless of environment.
  obs::set_metrics_mode(obs::ReportMode::kOff);
  obs::set_timeline_path("");
  obs::set_reqtrace_path("");
  obs::set_kernprof_path("");

  const std::vector<Point> pts = workload();
  const SimConfig config = make_sim_config(512, 1u << 20);
  const int kReps = quick ? 5 : 15;      // gated measurement
  const int kInfoReps = quick ? 0 : 7;   // informational enabled-path pass
  std::printf("workload: %zu (layer, algo) points, VGG-16 @ 32x32, "
              "VLEN=512, L2=1MB, %d reps each side\n\n",
              pts.size(), kReps);

  const Measurement off = measure(pts, config, kReps);
  const double off_pct = (off.obs.med / off.base.med - 1.0) * 100.0;
  const double gap_ms = off.obs.med - off.base.med;
  const double noise_ms = off.base.max - off.base.min;
  print_spread("no-obs baseline", off.base, "");
  char tail[64];
  std::snprintf(tail, sizeof tail, "   overhead %+.2f%%", off_pct);
  print_spread("obs disabled", off.obs, tail);
  std::printf("median gap %+.2f ms vs baseline spread (noise floor) %.2f ms\n",
              gap_ms, noise_ms);

  // Informational: the same workload with metrics + tracing on.
  if (kInfoReps > 0) {
    const auto trace_path = std::filesystem::temp_directory_path() /
                            "bench_obs_overhead.trace.json";
    obs::set_metrics_mode(obs::ReportMode::kText);
    obs::Tracer::global().open(trace_path.string());
    const Measurement on = measure(pts, config, kInfoReps);
    obs::Tracer::global().close();
    obs::set_metrics_mode(obs::ReportMode::kOff);
    std::filesystem::remove(trace_path);
    std::snprintf(tail, sizeof tail, "   overhead %+.2f%%  (informational)",
                  (on.obs.med / on.base.med - 1.0) * 100.0);
    print_spread("obs enabled (m+t)", on.obs, tail);

    // Informational: the same workload with the simulated PMU attached
    // (VLACNN_KERNPROF — phase deltas, counter windows, sink recording).
    const auto kp_path = std::filesystem::temp_directory_path() /
                         "bench_obs_overhead.kernprof.jsonl";
    obs::set_kernprof_path(kp_path.string());
    const Measurement kp = measure(pts, config, kInfoReps);
    obs::set_kernprof_path("");
    obs::KernProfSink::global().reset();
    std::filesystem::remove(kp_path);
    std::snprintf(tail, sizeof tail, "   overhead %+.2f%%  (informational)",
                  (kp.obs.med / kp.base.med - 1.0) * 100.0);
    print_spread("kernprof enabled", kp.obs, tail);
  }

  // Two-condition verdict: the budget can only fail when the median gap is
  // both over 2% and larger than what the baseline side drifts on its own —
  // sub-noise percentages (like the −0.29% a previous baseline recorded) are
  // measurement artifacts either way.
  const bool conv_pass = !(off_pct >= 2.0 && gap_ms > noise_ms);
  std::printf("\nconv disabled-path budget: < 2%% (gap must also exceed the "
              "noise floor)  ->  %s\n",
              conv_pass ? "PASS" : "FAIL");

  // -- serving event loop -----------------------------------------------------
  std::printf("\nserving loop: %llu Poisson requests, 4 instances, "
              "adaptive(8) batching, %d reps each side\n\n",
              static_cast<unsigned long long>(kServeRequests), kReps);
  double sink = 0;
  const Measurement srv = measure_serving(kReps, ServeExtra::kNone, &sink);
  const double srv_pct = (srv.obs.med / srv.base.med - 1.0) * 100.0;
  const double srv_gap_ms = srv.obs.med - srv.base.med;
  const double srv_noise_ms = srv.base.max - srv.base.min;
  print_spread("no-obs loop", srv.base, "");
  std::snprintf(tail, sizeof tail, "   overhead %+.2f%%", srv_pct);
  print_spread("obs loop disabled", srv.obs, tail);
  std::printf("median gap %+.2f ms vs baseline spread (noise floor) %.2f ms\n",
              srv_gap_ms, srv_noise_ms);

  // Informational: the same loop feeding a live TimelineRecorder (1e6-cycle
  // snapshots, SLO burn tracking) — what VLACNN_TIMELINE actually costs —
  // and then a live RequestTraceRecorder (top-8 tail sampling, 3-layer span
  // splitting, latency exemplars) — what VLACNN_REQTRACE actually costs.
  if (kInfoReps > 0) {
    const Measurement srv_on =
        measure_serving(kInfoReps, ServeExtra::kTimeline, &sink);
    std::snprintf(tail, sizeof tail, "   overhead %+.2f%%  (informational)",
                  (srv_on.obs.med / srv_on.base.med - 1.0) * 100.0);
    print_spread("timeline enabled", srv_on.obs, tail);
    const Measurement srv_rt =
        measure_serving(kInfoReps, ServeExtra::kReqTrace, &sink);
    std::snprintf(tail, sizeof tail, "   overhead %+.2f%%  (informational)",
                  (srv_rt.obs.med / srv_rt.base.med - 1.0) * 100.0);
    print_spread("reqtrace enabled", srv_rt.obs, tail);
  }
  if (sink == 54321.0) std::printf("(unreachable)\n");  // defeat DCE

  const bool srv_pass = !(srv_pct >= 2.0 && srv_gap_ms > srv_noise_ms);
  std::printf("\nserving disabled-path budget: < 2%% (gap must also exceed "
              "the noise floor)  ->  %s\n",
              srv_pass ? "PASS" : "FAIL");

  const bool pass = conv_pass && srv_pass;
  std::printf("\noverall: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

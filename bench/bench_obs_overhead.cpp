// Proves the observability layer's "near-zero cost when off" claim: times the
// same fixed simulation workload through conv_simulate (instrumented, all obs
// knobs off) and conv_simulate_no_obs (the uninstrumented baseline) in
// alternating repetitions, and fails (exit 1) if the disabled-path overhead
// exceeds the 2% budget *by more than the measurement's own noise floor*: the
// median gap must also exceed the baseline side's min-to-max spread, so a
// quiet-machine run can't fail (or pass) on scheduler jitter alone. Both
// sides report min/median/max so the spread is visible in the output and in
// BENCH_obs.json. A second, informational pass repeats the measurement with
// metrics + tracing forced on to show what the enabled path costs.
//
// Run from the build tree: ./bench_obs_overhead  (no arguments; ignores
// VLACNN_METRICS/VLACNN_TRACE so a CI environment can't skew the verdict).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "algos/registry.h"
#include "net/models.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vlacnn {
namespace {

struct Point {
  ConvLayerDesc desc;
  Algo algo;
};

/// Small-image VGG-16 conv stack x every applicable algorithm: big enough that
/// a repetition takes O(seconds), small enough to repeat many times.
std::vector<Point> workload() {
  std::vector<Point> pts;
  const Network net = make_vgg16(32);
  for (const ConvLayerDesc& d : net.conv_descs()) {
    for (Algo a : kAllAlgos) {
      if (algo_applicable(a, d)) pts.push_back({d, a});
    }
  }
  return pts;
}

using SimFn = TimingStats (*)(Algo, const ConvLayerDesc&, const SimConfig&);

double time_once(SimFn fn, const std::vector<Point>& pts,
                 const SimConfig& config, double* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Point& p : pts) *sink += fn(p.algo, p.desc, config).cycles;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct Spread {
  double min = 0;
  double med = 0;
  double max = 0;
};

Spread spread(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return {v.front(), v[v.size() / 2], v.back()};
}

struct Measurement {
  Spread base;  ///< conv_simulate_no_obs
  Spread obs;   ///< conv_simulate
};

/// Alternates baseline/instrumented repetitions so drift (thermal, other
/// processes) hits both sides equally.
Measurement measure(const std::vector<Point>& pts, const SimConfig& config,
                    int reps) {
  double sink = 0;
  // Warm-up: one untimed pass of each path.
  time_once(&conv_simulate_no_obs, pts, config, &sink);
  time_once(&conv_simulate, pts, config, &sink);
  std::vector<double> base_ms, obs_ms;
  for (int r = 0; r < reps; ++r) {
    base_ms.push_back(time_once(&conv_simulate_no_obs, pts, config, &sink));
    obs_ms.push_back(time_once(&conv_simulate, pts, config, &sink));
  }
  if (sink == 12345.0) std::printf("(unreachable)\n");  // defeat DCE
  return {spread(base_ms), spread(obs_ms)};
}

void print_spread(const char* label, const Spread& s, const char* suffix) {
  std::printf("%-20s min %8.2f  median %8.2f  max %8.2f ms%s\n", label, s.min,
              s.med, s.max, suffix);
}

}  // namespace
}  // namespace vlacnn

int main() {
  using namespace vlacnn;

  std::printf("\n================================================================\n");
  std::printf("bench_obs_overhead: cost of the vlacnn::obs layer\n");
  std::printf("================================================================\n");

  // The verdict must reflect the *disabled* path regardless of environment.
  obs::set_metrics_mode(obs::ReportMode::kOff);

  const std::vector<Point> pts = workload();
  const SimConfig config = make_sim_config(512, 1u << 20);
  constexpr int kReps = 15;      // gated measurement
  constexpr int kInfoReps = 7;   // informational enabled-path pass
  std::printf("workload: %zu (layer, algo) points, VGG-16 @ 32x32, "
              "VLEN=512, L2=1MB, %d reps each side\n\n",
              pts.size(), kReps);

  const Measurement off = measure(pts, config, kReps);
  const double off_pct = (off.obs.med / off.base.med - 1.0) * 100.0;
  const double gap_ms = off.obs.med - off.base.med;
  const double noise_ms = off.base.max - off.base.min;
  print_spread("no-obs baseline", off.base, "");
  char tail[64];
  std::snprintf(tail, sizeof tail, "   overhead %+.2f%%", off_pct);
  print_spread("obs disabled", off.obs, tail);
  std::printf("median gap %+.2f ms vs baseline spread (noise floor) %.2f ms\n",
              gap_ms, noise_ms);

  // Informational: the same workload with metrics + tracing on.
  const auto trace_path =
      std::filesystem::temp_directory_path() / "bench_obs_overhead.trace.json";
  obs::set_metrics_mode(obs::ReportMode::kText);
  obs::Tracer::global().open(trace_path.string());
  const Measurement on = measure(pts, config, kInfoReps);
  obs::Tracer::global().close();
  obs::set_metrics_mode(obs::ReportMode::kOff);
  std::filesystem::remove(trace_path);
  std::snprintf(tail, sizeof tail, "   overhead %+.2f%%  (informational)",
                (on.obs.med / on.base.med - 1.0) * 100.0);
  print_spread("obs enabled (m+t)", on.obs, tail);

  // Two-condition verdict: the budget can only fail when the median gap is
  // both over 2% and larger than what the baseline side drifts on its own —
  // sub-noise percentages (like the −0.29% a previous baseline recorded) are
  // measurement artifacts either way.
  const bool over_budget = off_pct >= 2.0;
  const bool above_noise = gap_ms > noise_ms;
  const bool pass = !(over_budget && above_noise);
  std::printf("\ndisabled-path budget: < 2%% (gap must also exceed the noise "
              "floor)  ->  %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// Proves the observability layer's "near-zero cost when off" claim: times the
// same fixed simulation workload through conv_simulate (instrumented, all obs
// knobs off) and conv_simulate_no_obs (the uninstrumented baseline) in
// alternating repetitions, and fails (exit 1) if the median disabled-path
// overhead exceeds 2%. A second, informational pass repeats the measurement
// with metrics + tracing forced on to show what the enabled path costs.
//
// Run from the build tree: ./bench_obs_overhead  (no arguments; ignores
// VLACNN_METRICS/VLACNN_TRACE so a CI environment can't skew the verdict).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "algos/registry.h"
#include "net/models.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vlacnn {
namespace {

struct Point {
  ConvLayerDesc desc;
  Algo algo;
};

/// Small-image VGG-16 conv stack x every applicable algorithm: big enough that
/// a repetition takes O(100ms), small enough to repeat many times.
std::vector<Point> workload() {
  std::vector<Point> pts;
  const Network net = make_vgg16(32);
  for (const ConvLayerDesc& d : net.conv_descs()) {
    for (Algo a : kAllAlgos) {
      if (algo_applicable(a, d)) pts.push_back({d, a});
    }
  }
  return pts;
}

using SimFn = TimingStats (*)(Algo, const ConvLayerDesc&, const SimConfig&);

double time_once(SimFn fn, const std::vector<Point>& pts,
                 const SimConfig& config, double* sink) {
  const auto t0 = std::chrono::steady_clock::now();
  for (const Point& p : pts) *sink += fn(p.algo, p.desc, config).cycles;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Alternates baseline/instrumented repetitions so drift (thermal, other
/// processes) hits both sides equally; returns {median_base_ms, median_obs_ms}.
std::pair<double, double> measure(const std::vector<Point>& pts,
                                  const SimConfig& config, int reps) {
  double sink = 0;
  // Warm-up: one untimed pass of each path.
  time_once(&conv_simulate_no_obs, pts, config, &sink);
  time_once(&conv_simulate, pts, config, &sink);
  std::vector<double> base_ms, obs_ms;
  for (int r = 0; r < reps; ++r) {
    base_ms.push_back(time_once(&conv_simulate_no_obs, pts, config, &sink));
    obs_ms.push_back(time_once(&conv_simulate, pts, config, &sink));
  }
  if (sink == 12345.0) std::printf("(unreachable)\n");  // defeat DCE
  return {median(base_ms), median(obs_ms)};
}

}  // namespace
}  // namespace vlacnn

int main() {
  using namespace vlacnn;

  std::printf("\n================================================================\n");
  std::printf("bench_obs_overhead: cost of the vlacnn::obs layer\n");
  std::printf("================================================================\n");

  // The verdict must reflect the *disabled* path regardless of environment.
  obs::set_metrics_mode(obs::ReportMode::kOff);

  const std::vector<Point> pts = workload();
  const SimConfig config = make_sim_config(512, 1u << 20);
  constexpr int kReps = 9;
  std::printf("workload: %zu (layer, algo) points, VGG-16 @ 32x32, "
              "VLEN=512, L2=1MB, %d reps each side\n\n",
              pts.size(), kReps);

  const auto [base_ms, off_ms] = measure(pts, config, kReps);
  const double off_pct = (off_ms / base_ms - 1.0) * 100.0;
  std::printf("no-obs baseline      median %8.2f ms\n", base_ms);
  std::printf("obs disabled         median %8.2f ms   overhead %+.2f%%\n",
              off_ms, off_pct);

  // Informational: the same workload with metrics + tracing on.
  const auto trace_path =
      std::filesystem::temp_directory_path() / "bench_obs_overhead.trace.json";
  obs::set_metrics_mode(obs::ReportMode::kText);
  obs::Tracer::global().open(trace_path.string());
  const auto [base2_ms, on_ms] = measure(pts, config, kReps);
  obs::Tracer::global().close();
  obs::set_metrics_mode(obs::ReportMode::kOff);
  std::filesystem::remove(trace_path);
  std::printf("obs enabled (m+t)    median %8.2f ms   overhead %+.2f%%  "
              "(informational)\n",
              on_ms, (on_ms / base2_ms - 1.0) * 100.0);

  const bool pass = off_pct < 2.0;
  std::printf("\ndisabled-path budget: < 2%%  ->  %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

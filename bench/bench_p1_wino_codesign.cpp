// Paper I Figs 9-10: Winograd co-design — vector length (512 -> 2048 bits) and
// L2 size (1 -> 256 MB) on YOLOv3/20 and VGG-16, integrated (SVE-like) VPU,
// Winograd on 3x3 stride-1 layers with im2col+GEMM fallback elsewhere.
// Expected shape: ~1.4x from 2048-bit vectors; VGG-16 (all-Winograd) stops
// benefiting from caches beyond 64MB, YOLOv3 (with GEMM fallback layers)
// keeps benefiting.
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Paper I Figs 9-10: Winograd co-design (VLEN x L2)",
         "IPDPS'23 Figs. 9-10");
  Env env;
  for (const Network* net : {&env.yolo20, &env.vgg16}) {
    std::printf("\n%s (Winograd + gemm6 fallback):\n%8s", net->name().c_str(),
                "vlen");
    for (std::uint64_t l2 : paper1_l2_sizes()) {
      std::printf(" %9s", l2_str(l2).c_str());
    }
    std::printf("   gain(L2)  gain(vlen@1MB)\n");
    double base_vlen = 0;
    for (std::uint32_t vlen : {512u, 1024u, 2048u}) {
      std::printf("%8u", vlen);
      double first = 0, last = 0;
      for (std::uint64_t l2 : paper1_l2_sizes()) {
        const double cycles = env.driver->network_cycles(
            *net, Algo::kWinograd, vlen, l2, 8, VpuAttach::kIntegratedL1);
        if (first == 0) first = cycles;
        if (base_vlen == 0) base_vlen = cycles;
        last = cycles;
        std::printf(" %8.2fG", cycles / 1e9);
      }
      std::printf("   %6.2fx %9.2fx\n", first / last, base_vlen / first);
    }
  }
  std::printf("\n(paper: 1.4x from 512->2048-bit at 1MB; YOLOv3 1.75x and "
              "VGG16 1.4x from the L2 sweep, VGG16 flat beyond 64MB)\n");
  return 0;
}

// Fig 12: throughput/area trade-off for co-located VGG-16 instances on a
// multicore 7 nm RVV chip with static L2 partitioning, using the optimal
// algorithm per layer; plus the paper's headline comparison of Optimal vs the
// best single algorithm at the largest configuration.
#include "area/pareto.h"
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Fig 12: throughput-area Pareto, co-located VGG-16 serving",
         "ICPP'24 Fig. 12");
  Env env;
  ServingSimulator sim(env.driver.get());

  const auto evals = sim.grid(env.vgg16, std::nullopt);
  std::printf("\n%zu feasible configurations "
              "(cores x vlen x shared-L2 x instances)\n",
              evals.size());

  std::vector<ParetoPoint> pts;
  for (std::size_t i = 0; i < evals.size(); ++i) {
    pts.push_back({evals[i].area_mm2, -evals[i].images_per_cycle, i});
  }
  const auto frontier = pareto_frontier(pts);

  std::printf("\nPareto frontier (throughput in images per Mcycle):\n");
  std::printf("%6s %6s %9s %6s %9s %10s %11s %9s\n", "cores", "vlen", "L2",
              "inst", "L2/inst", "area mm2", "img/Mcycle", "img/s@2GHz");
  for (std::size_t i : frontier) {
    const ServingEval& e = evals[i];
    std::printf("%6d %6u %9s %6d %9s %10.2f %11.4f %9.1f\n", e.point.cores,
                e.point.vlen_bits, l2_str(e.point.l2_total_bytes).c_str(),
                e.point.instances, l2_str(e.point.l2_slice_bytes()).c_str(),
                e.area_mm2, e.images_per_cycle * 1e6,
                e.images_per_cycle * 2e9);
  }

  // Shape check: frontier points co-locate the maximum instances with the
  // smallest per-instance slice (the paper's observation).
  int max_inst_points = 0;
  for (std::size_t i : frontier) {
    if (evals[i].point.instances == evals[i].point.cores) ++max_inst_points;
  }
  std::printf("\n%d/%zu frontier points use one instance per core "
              "(paper: all frontier points co-locate maximally)\n",
              max_inst_points, frontier.size());

  // Headline: at 64 cores x 4096-bit x 256MB with 64 instances, Optimal vs the
  // best single algorithm.
  const ServingPoint big{64, 4096, 256ull << 20, 64};
  const double opt = sim.evaluate(env.vgg16, big, std::nullopt).images_per_cycle;
  double best_single = 0;
  Algo best_algo = Algo::kDirect;
  for (Algo a : kAllAlgos) {
    const double t = sim.evaluate(env.vgg16, big, a).images_per_cycle;
    if (t > best_single) {
      best_single = t;
      best_algo = a;
    }
  }
  std::printf("\n64 cores x 4096-bit x 256MB, 64 instances:\n"
              "  Optimal plan: %.4f img/Mcycle\n"
              "  best single algorithm (%s): %.4f img/Mcycle\n"
              "  improvement: %.2fx  (paper: 1.16x over Direct)\n",
              opt * 1e6, to_string(best_algo), best_single * 1e6,
              opt / best_single);
  return 0;
}

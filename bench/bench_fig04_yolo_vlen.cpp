// Fig 4: VLEN scaling (512 -> 4096 bits) per layer and algorithm, YOLOv3,
// 1 MB L2.
#include "bench_common.h"

int main() {
  using namespace vlacnn;
  using namespace vlacnn::bench;
  banner("Fig 4: vector-length scaling per layer, YOLOv3", "ICPP'24 Fig. 4");
  Env env;
  vlen_scaling_figure(env, env.yolo20, paper2_vlens(), 1u << 20,
                      VpuAttach::kIntegratedL1);
  return 0;
}

// Fig 11: performance/area trade-off and Pareto frontier for a single VGG-16
// instance on a 7 nm RVV chip — every (algorithm | Optimal) x vlen x L2
// configuration, frontier extraction, Pareto-optimal point, and the paper's
// headline cross-checks (2048-bit x 1MB knee; the area a single algorithm
// needs to match the knee's performance).
#include <optional>

#include "area/area_model.h"
#include "area/pareto.h"
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

namespace {

struct Candidate {
  std::optional<Algo> algo;  // nullopt = per-layer Optimal
  std::uint32_t vlen;
  std::uint64_t l2;
  double cycles;
  double area;
};

const char* algo_name(const std::optional<Algo>& a) {
  return a ? to_string(*a) : "Optimal";
}

}  // namespace

int main() {
  banner("Fig 11: performance-area Pareto, single VGG-16 instance",
         "ICPP'24 Fig. 11");
  Env env;
  const AreaModel area;

  std::printf("\narea model: VPU+VRF fraction of core tile = ");
  for (std::uint32_t v : paper2_vlens()) {
    std::printf("%u-bit:%.0f%% ", v, area.vpu_fraction(v) * 100);
  }
  std::printf(" (paper: 28/43/60/75%%)\n");

  std::vector<Candidate> cands;
  for (std::uint32_t vlen : paper2_vlens()) {
    for (std::uint64_t l2 : paper2_l2_sizes()) {
      const double chip = area.chip_mm2(vlen, l2);
      for (Algo a : kAllAlgos) {
        cands.push_back({a, vlen, l2,
                         env.driver->network_cycles(env.vgg16, a, vlen, l2),
                         chip});
      }
      cands.push_back({std::nullopt, vlen, l2,
                       env.driver->network_optimal(env.vgg16, vlen, l2).cycles,
                       chip});
    }
  }

  std::vector<ParetoPoint> pts;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    pts.push_back({cands[i].area, cands[i].cycles, i});
  }
  const auto frontier = pareto_frontier(pts);
  const std::size_t knee = pareto_knee(pts, frontier);

  std::printf("\nall Optimal-plan points (cycles in billions):\n");
  std::printf("%-18s %9s %10s\n", "config", "area mm2", "Gcycles");
  for (const Candidate& c : cands) {
    if (c.algo) continue;
    std::printf("%4u-bit x %-6s %9.2f %10.3f\n", c.vlen,
                l2_str(c.l2).c_str(), c.area, c.cycles / 1e9);
  }

  std::printf("\nPareto frontier (area-ascending):\n");
  std::printf("%-9s %-18s %9s %10s%s\n", "plan", "config", "area mm2",
              "Gcycles", "");
  for (std::size_t i : frontier) {
    const Candidate& c = cands[i];
    std::printf("%-9s %4u-bit x %-6s %9.2f %10.3f%s\n", algo_name(c.algo),
                c.vlen, l2_str(c.l2).c_str(), c.area, c.cycles / 1e9,
                i == knee ? "   <- Pareto-optimal" : "");
  }

  // Paper cross-checks.
  const Candidate& k = cands[knee];
  std::printf("\nPareto-optimal: %s @ %u-bit x %s, %.2f mm2 "
              "(paper: Optimal @ 2048-bit x 1MB, 2.35 mm2)\n",
              algo_name(k.algo), k.vlen, l2_str(k.l2).c_str(), k.area);

  // Minimum area at which each single algorithm matches the knee performance.
  for (Algo a : kAllAlgos) {
    double best_area = -1;
    for (const Candidate& c : cands) {
      if (!c.algo || *c.algo != a) continue;
      if (c.cycles <= k.cycles && (best_area < 0 || c.area < best_area)) {
        best_area = c.area;
      }
    }
    if (best_area > 0) {
      std::printf("  %-9s matches knee performance at >= %.2f mm2 (%.2fx)\n",
                  to_string(a), best_area, best_area / k.area);
    } else {
      std::printf("  %-9s cannot match knee performance on this grid\n",
                  to_string(a));
    }
  }
  return 0;
}

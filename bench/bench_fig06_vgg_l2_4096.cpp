// Fig 6: L2 scaling (1 -> 64 MB) per layer and algorithm, VGG-16, 4096-bit.
#include "bench_common.h"

int main() {
  using namespace vlacnn;
  using namespace vlacnn::bench;
  banner("Fig 6: L2 scaling per layer, VGG-16 @ 4096-bit", "ICPP'24 Fig. 6");
  Env env;
  l2_scaling_figure(env, env.vgg16, 4096, paper2_l2_sizes(),
                    VpuAttach::kIntegratedL1);
  return 0;
}

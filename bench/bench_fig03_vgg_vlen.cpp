// Fig 3: VLEN scaling (512 -> 4096 bits) per layer and algorithm, VGG-16,
// 1 MB L2.
#include "bench_common.h"

int main() {
  using namespace vlacnn;
  using namespace vlacnn::bench;
  banner("Fig 3: vector-length scaling per layer, VGG-16", "ICPP'24 Fig. 3");
  Env env;
  vlen_scaling_figure(env, env.vgg16, paper2_vlens(), 1u << 20,
                      VpuAttach::kIntegratedL1);
  return 0;
}

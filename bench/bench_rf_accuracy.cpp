// Random-forest algorithm-selection accuracy (ICPP'24 Section 4.3):
// 448 samples = 28 conv layers x 16 hardware configs, 12 features,
// 80/20 split + 5-fold cross-validation with shuffling, depth-10 bagged trees.
// Paper reports 92.8% mean accuracy (folds 91-96%) and <= 20.4% mean
// performance loss on the mispredicted minority.
#include "bench_common.h"
#include "ml/crossval.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Random-forest selection accuracy", "ICPP'24 Section 4.3");
  Env env;
  const std::vector<const Network*> nets{&env.vgg16, &env.yolo20};
  const Dataset ds = build_selection_dataset(*env.driver, nets, paper2_vlens(),
                                             paper2_l2_sizes());
  std::printf("dataset: %zu samples (%zu features)\n", ds.size(),
              ds.num_features());

  ForestParams params;  // 100 trees, depth 10, bootstrap
  const CrossValResult cv = cross_validate(ds, params, 5, 2024);
  std::printf("\n5-fold cross-validation (shuffled):\n");
  for (std::size_t f = 0; f < cv.fold_accuracy.size(); ++f) {
    std::printf("  fold %zu: %.1f%%\n", f + 1, cv.fold_accuracy[f] * 100);
  }
  std::printf("  mean: %.1f%%  (paper: 92.8%%, folds 91-96%%)\n",
              cv.mean_accuracy * 100);

  // 80/20 split accuracy.
  const SplitIndices split = train_test_split(ds.size(), 0.2, 7);
  RandomForest forest;
  forest.fit(ds, split.train, params);
  std::printf("\n80/20 split test accuracy: %.1f%%\n",
              forest.accuracy(ds, split.test) * 100);

  // Misprediction cost: mean relative slowdown of predicted vs optimal on the
  // mispredicted held-out samples.
  const std::vector<int> pred = heldout_predictions(ds, params, 5, 2024);
  double loss_sum = 0;
  int mispredicted = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (pred[i] == ds.y[i]) continue;
    const SampleMeta& m = ds.meta[i];
    const Network& net = m.net == "vgg16" ? env.vgg16 : env.yolo20;
    const ConvLayerDesc d = net.conv_descs()[m.layer];
    Algo pa = kAllAlgos[static_cast<std::size_t>(pred[i]) % kAllAlgos.size()];
    if (!algo_applicable(pa, d)) pa = Algo::kGemm6;
    const double predicted =
        env.driver->get(m.net, m.layer, d, pa, m.vlen_bits, m.l2_bytes).cycles;
    const double optimal =
        env.driver
            ->get(m.net, m.layer, d, kAllAlgos[ds.y[i]], m.vlen_bits,
                  m.l2_bytes)
            .cycles;
    loss_sum += predicted / optimal - 1.0;
    ++mispredicted;
  }
  std::printf("\nmispredicted: %d/%zu (%.1f%%), mean layer slowdown when "
              "mispredicted: %.1f%%  (paper: 20.4%%)\n",
              mispredicted, ds.size(),
              100.0 * mispredicted / static_cast<double>(ds.size()),
              mispredicted ? 100.0 * loss_sum / mispredicted : 0.0);

  // Feature importances of a forest trained on everything.
  std::vector<std::size_t> all(ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  RandomForest full;
  full.fit(ds, all, params);
  const auto imp = full.feature_importances();
  std::printf("\nfeature importances:\n");
  for (std::size_t f = 0; f < imp.size(); ++f) {
    std::printf("  %-8s %5.1f%% %s\n", ds.feature_names[f].c_str(),
                imp[f] * 100, bar(imp[f], 30).c_str());
  }
  return 0;
}

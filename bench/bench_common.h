// Shared infrastructure for the per-figure benchmark binaries: the sweep
// cache, the two evaluation networks at paper scale, and table/bar printing.
//
// All binaries share results/sweep_cache.csv (override with
// REPRO_RESULTS_DIR); the first binary to need a grid point simulates it, the
// rest read it back, so the whole bench suite costs one sweep.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "ml/crossval.h"
#include "net/models.h"
#include "serving/serving.h"
#include "sweep/sweep.h"

namespace vlacnn::bench {

struct Env {
  std::unique_ptr<ResultsDb> db;
  std::unique_ptr<SweepDriver> driver;
  Network vgg16;
  Network yolo20;

  Env();
};

/// Figure/table banner with the paper reference.
void banner(const std::string& title, const std::string& paper_ref);

/// "1MB", "64MB", ...
std::string l2_str(std::uint64_t bytes);

/// Horizontal ASCII bar scaled to `frac` in [0,1].
std::string bar(double frac, int width = 40);

/// Short per-layer tag like "3x608x608->32 k3 s1".
std::string layer_tag(const ConvLayerDesc& d);

/// Fig 1/2 body: per-layer execution time of all four algorithms at one
/// hardware point, with the per-layer winner marked.
void perlayer_figure(Env& env, const Network& net, std::uint32_t vlen,
                     std::uint64_t l2);

/// Fig 3/4 body: per-layer VLEN scaling for each algorithm at fixed L2.
void vlen_scaling_figure(Env& env, const Network& net,
                         const std::vector<std::uint32_t>& vlens,
                         std::uint64_t l2, VpuAttach attach);

/// Fig 5-8 body: per-layer L2 scaling for each algorithm at fixed VLEN.
void l2_scaling_figure(Env& env, const Network& net, std::uint32_t vlen,
                       const std::vector<std::uint64_t>& l2_sizes,
                       VpuAttach attach);

/// Fig 9/10 body: whole-network time for each single-algorithm plan vs the
/// per-layer Optimal and the random-forest Predicted Optimal, across the
/// 16-configuration grid.
void selection_figure(Env& env, const Network& net);

}  // namespace vlacnn::bench

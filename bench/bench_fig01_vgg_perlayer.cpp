// Fig 1: per-layer comparison of the four algorithms on VGG-16 at 512-bit
// vectors and 1 MB L2.
#include "bench_common.h"

int main() {
  using namespace vlacnn::bench;
  banner("Fig 1: per-layer algorithm comparison, VGG-16", "ICPP'24 Fig. 1");
  Env env;
  perlayer_figure(env, env.vgg16, 512, 1u << 20);
  return 0;
}

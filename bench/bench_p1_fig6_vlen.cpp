// Paper I Fig 6: impact of vector length (512 -> 16384 bits) on YOLOv3
// (first 20 layers) with the optimized 3-loop im2col+GEMM on the decoupled
// RISC-VV configuration, 1 MB L2, 8 lanes. Expected shape: ~2.5x total, with
// saturation beyond 8192-bit.
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("Paper I Fig 6: vector-length scaling, YOLOv3/20, decoupled RVV",
         "IPDPS'23 Fig. 6");
  Env env;
  std::printf("\n%8s %12s %9s %9s\n", "vlen", "Gcycles", "speedup", "");
  double base = 0, prev = 0;
  for (std::uint32_t vlen : paper1_vlens()) {
    const double cycles = env.driver->network_cycles(
        env.yolo20, Algo::kGemm3, vlen, 1u << 20, 8, VpuAttach::kDecoupledL2);
    if (base == 0) base = cycles;
    std::printf("%8u %12.3f %8.2fx %s\n", vlen, cycles / 1e9, base / cycles,
                bar(base / cycles / 3.0, 30).c_str());
    prev = cycles;
  }
  (void)prev;
  std::printf("\n(paper: 2.5x from 512 to 16384-bit, saturating beyond "
              "8192-bit at 1MB L2)\n");
  return 0;
}

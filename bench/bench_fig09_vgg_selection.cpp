// Fig 9: whole-network execution time of VGG-16 per hardware configuration,
// single algorithms vs Optimal vs random-forest Predicted Optimal.
#include "bench_common.h"

int main() {
  using namespace vlacnn::bench;
  banner("Fig 9: algorithm selection on VGG-16", "ICPP'24 Fig. 9");
  Env env;
  selection_figure(env, env.vgg16);
  return 0;
}

// ViT self-attention co-design exploration — the thesis's future-work
// direction made concrete: sweep vector length x L2 for a ViT-Base-shaped
// self-attention layer and compare its VLEN scaling against a CNN conv layer
// of similar FLOPs, quantifying the "skinny and irregular matrices" effect the
// thesis conclusion describes.
#include "attention/attention.h"
#include "bench_common.h"

using namespace vlacnn;
using namespace vlacnn::bench;

int main() {
  banner("ViT self-attention co-design (extension)",
         "thesis Ch. 3 future work: vision transformers");
  // ViT-Base at 224x224: 196 tokens, dim 768, 12 heads (head_dim 64).
  const AttentionDesc vit{196, 768, 12};
  std::printf("\nlayer: seq=%d dim=%d heads=%d (head_dim %d), %.2f GFLOP\n",
              vit.seq_len, vit.dim, vit.heads, vit.head_dim(),
              vit.flops() / 1e9);

  std::printf("\n%8s", "vlen");
  for (std::uint64_t l2 : paper2_l2_sizes()) {
    std::printf(" %9s", l2_str(l2).c_str());
  }
  std::printf("   speedup-vs-512 @1MB\n");
  double base = 0;
  for (std::uint32_t vlen : paper1_vlens()) {
    std::printf("%8u", vlen);
    double first = 0;
    for (std::uint64_t l2 : paper2_l2_sizes()) {
      SimConfig c = make_sim_config(vlen, l2);
      const double cycles = attention_simulate(vit, c).cycles;
      if (first == 0) first = cycles;
      if (base == 0) base = cycles;
      std::printf(" %8.2fM", cycles / 1e6);
    }
    std::printf("   %5.2fx\n", base / first);
  }

  // The headline comparison: attention's skinny matrices (196-token panels,
  // head_dim 64 inner dimension) stop filling very long registers, while a
  // conv layer's im2col GEMM with tens of thousands of columns keeps scaling.
  const ConvLayerDesc conv{256, 28, 28, 512, 3, 3, 1, 1};  // ~0.93 GMAC
  double conv512 = 0, conv16k = 0, att512 = 0, att16k = 0;
  {
    SimConfig c = make_sim_config(512, 4u << 20);
    conv512 = conv_simulate(Algo::kGemm6, conv, c).cycles;
    att512 = attention_simulate(vit, c).cycles;
  }
  {
    SimConfig c = make_sim_config(16384, 4u << 20);
    conv16k = conv_simulate(Algo::kGemm6, conv, c).cycles;
    att16k = attention_simulate(vit, c).cycles;
  }
  std::printf("\n512 -> 16384-bit scaling @4MB: attention %.2fx vs conv GEMM "
              "%.2fx\n",
              att512 / att16k, conv512 / conv16k);
  std::printf("(the thesis's motivation for data-reuse/fusion work on ViTs: "
              "beyond ~6144-bit registers the 196-token panels and 64-wide "
              "head matmuls leave lanes idle while dense conv GEMMs keep "
              "scaling)\n");
  return 0;
}

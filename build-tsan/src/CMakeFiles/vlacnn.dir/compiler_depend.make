# Empty compiler generated dependencies file for vlacnn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvlacnn.a"
)

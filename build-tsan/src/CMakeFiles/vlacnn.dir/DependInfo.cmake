
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/conv_args.cpp" "src/CMakeFiles/vlacnn.dir/algos/conv_args.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/algos/conv_args.cpp.o.d"
  "/root/repo/src/algos/direct.cpp" "src/CMakeFiles/vlacnn.dir/algos/direct.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/algos/direct.cpp.o.d"
  "/root/repo/src/algos/gemm3.cpp" "src/CMakeFiles/vlacnn.dir/algos/gemm3.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/algos/gemm3.cpp.o.d"
  "/root/repo/src/algos/gemm6.cpp" "src/CMakeFiles/vlacnn.dir/algos/gemm6.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/algos/gemm6.cpp.o.d"
  "/root/repo/src/algos/reference.cpp" "src/CMakeFiles/vlacnn.dir/algos/reference.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/algos/reference.cpp.o.d"
  "/root/repo/src/algos/registry.cpp" "src/CMakeFiles/vlacnn.dir/algos/registry.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/algos/registry.cpp.o.d"
  "/root/repo/src/algos/winograd.cpp" "src/CMakeFiles/vlacnn.dir/algos/winograd.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/algos/winograd.cpp.o.d"
  "/root/repo/src/area/area_model.cpp" "src/CMakeFiles/vlacnn.dir/area/area_model.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/area/area_model.cpp.o.d"
  "/root/repo/src/area/pareto.cpp" "src/CMakeFiles/vlacnn.dir/area/pareto.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/area/pareto.cpp.o.d"
  "/root/repo/src/attention/attention.cpp" "src/CMakeFiles/vlacnn.dir/attention/attention.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/attention/attention.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/vlacnn.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/linalg.cpp" "src/CMakeFiles/vlacnn.dir/common/linalg.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/common/linalg.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/vlacnn.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/vlacnn.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/conv_engine.cpp" "src/CMakeFiles/vlacnn.dir/core/conv_engine.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/core/conv_engine.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/CMakeFiles/vlacnn.dir/core/selector.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/core/selector.cpp.o.d"
  "/root/repo/src/memsim/cache.cpp" "src/CMakeFiles/vlacnn.dir/memsim/cache.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/memsim/cache.cpp.o.d"
  "/root/repo/src/memsim/memory_system.cpp" "src/CMakeFiles/vlacnn.dir/memsim/memory_system.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/memsim/memory_system.cpp.o.d"
  "/root/repo/src/ml/crossval.cpp" "src/CMakeFiles/vlacnn.dir/ml/crossval.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/ml/crossval.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/vlacnn.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/vlacnn.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/CMakeFiles/vlacnn.dir/ml/random_forest.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/ml/random_forest.cpp.o.d"
  "/root/repo/src/net/layer.cpp" "src/CMakeFiles/vlacnn.dir/net/layer.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/net/layer.cpp.o.d"
  "/root/repo/src/net/models.cpp" "src/CMakeFiles/vlacnn.dir/net/models.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/net/models.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/vlacnn.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/net/network.cpp.o.d"
  "/root/repo/src/net/runner.cpp" "src/CMakeFiles/vlacnn.dir/net/runner.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/net/runner.cpp.o.d"
  "/root/repo/src/serving/serving.cpp" "src/CMakeFiles/vlacnn.dir/serving/serving.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/serving/serving.cpp.o.d"
  "/root/repo/src/sweep/results_db.cpp" "src/CMakeFiles/vlacnn.dir/sweep/results_db.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/sweep/results_db.cpp.o.d"
  "/root/repo/src/sweep/sweep.cpp" "src/CMakeFiles/vlacnn.dir/sweep/sweep.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/sweep/sweep.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "src/CMakeFiles/vlacnn.dir/tensor/im2col.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/vlacnn.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/vpu/functional_engine.cpp" "src/CMakeFiles/vlacnn.dir/vpu/functional_engine.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/vpu/functional_engine.cpp.o.d"
  "/root/repo/src/vpu/timing_model.cpp" "src/CMakeFiles/vlacnn.dir/vpu/timing_model.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/vpu/timing_model.cpp.o.d"
  "/root/repo/src/vpu/trace_engine.cpp" "src/CMakeFiles/vlacnn.dir/vpu/trace_engine.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/vpu/trace_engine.cpp.o.d"
  "/root/repo/src/vpu/vpu_config.cpp" "src/CMakeFiles/vlacnn.dir/vpu/vpu_config.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/vpu/vpu_config.cpp.o.d"
  "/root/repo/src/wino/transforms.cpp" "src/CMakeFiles/vlacnn.dir/wino/transforms.cpp.o" "gcc" "src/CMakeFiles/vlacnn.dir/wino/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

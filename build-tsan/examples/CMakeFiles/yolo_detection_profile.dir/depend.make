# Empty dependencies file for yolo_detection_profile.
# This may be replaced when dependencies are built.

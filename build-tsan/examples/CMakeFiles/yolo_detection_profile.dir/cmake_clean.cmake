file(REMOVE_RECURSE
  "CMakeFiles/yolo_detection_profile.dir/yolo_detection_profile.cpp.o"
  "CMakeFiles/yolo_detection_profile.dir/yolo_detection_profile.cpp.o.d"
  "yolo_detection_profile"
  "yolo_detection_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yolo_detection_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vgg_serving_planner.dir/vgg_serving_planner.cpp.o"
  "CMakeFiles/vgg_serving_planner.dir/vgg_serving_planner.cpp.o.d"
  "vgg_serving_planner"
  "vgg_serving_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgg_serving_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

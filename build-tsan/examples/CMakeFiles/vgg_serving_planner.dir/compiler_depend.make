# Empty compiler generated dependencies file for vgg_serving_planner.
# This may be replaced when dependencies are built.

# Empty dependencies file for vlacnn_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vlacnn_tests.dir/test_algos.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_algos.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_attention.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_attention.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_codesign_shapes.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_codesign_shapes.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_common.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_memsim.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_memsim.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_ml.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_ml.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_net.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_net.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_results_db.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_results_db.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_sweep.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_sweep.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_tensor.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_tensor.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_vpu.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_vpu.cpp.o.d"
  "CMakeFiles/vlacnn_tests.dir/test_winograd.cpp.o"
  "CMakeFiles/vlacnn_tests.dir/test_winograd.cpp.o.d"
  "vlacnn_tests"
  "vlacnn_tests.pdb"
  "vlacnn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlacnn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

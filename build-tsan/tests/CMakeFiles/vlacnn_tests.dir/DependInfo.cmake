
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algos.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_algos.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_algos.cpp.o.d"
  "/root/repo/tests/test_attention.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_attention.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_attention.cpp.o.d"
  "/root/repo/tests/test_codesign_shapes.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_codesign_shapes.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_codesign_shapes.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_memsim.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_memsim.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_memsim.cpp.o.d"
  "/root/repo/tests/test_ml.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_ml.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_ml.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_results_db.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_results_db.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_results_db.cpp.o.d"
  "/root/repo/tests/test_sweep.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_sweep.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_vpu.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_vpu.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_vpu.cpp.o.d"
  "/root/repo/tests/test_winograd.cpp" "tests/CMakeFiles/vlacnn_tests.dir/test_winograd.cpp.o" "gcc" "tests/CMakeFiles/vlacnn_tests.dir/test_winograd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/vlacnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_p1_fig7_l2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_fig7_l2.dir/bench_p1_fig7_l2.cpp.o"
  "CMakeFiles/bench_p1_fig7_l2.dir/bench_p1_fig7_l2.cpp.o.d"
  "bench_p1_fig7_l2"
  "bench_p1_fig7_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_fig7_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_vgg_selection.dir/bench_fig09_vgg_selection.cpp.o"
  "CMakeFiles/bench_fig09_vgg_selection.dir/bench_fig09_vgg_selection.cpp.o.d"
  "bench_fig09_vgg_selection"
  "bench_fig09_vgg_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_vgg_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig09_vgg_selection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_vgg_perlayer.dir/bench_fig01_vgg_perlayer.cpp.o"
  "CMakeFiles/bench_fig01_vgg_perlayer.dir/bench_fig01_vgg_perlayer.cpp.o.d"
  "bench_fig01_vgg_perlayer"
  "bench_fig01_vgg_perlayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_vgg_perlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig01_vgg_perlayer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_layers.dir/bench_table1_layers.cpp.o"
  "CMakeFiles/bench_table1_layers.dir/bench_table1_layers.cpp.o.d"
  "bench_table1_layers"
  "bench_table1_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table1_layers.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_p1_table4_ai.
# This may be replaced when dependencies are built.

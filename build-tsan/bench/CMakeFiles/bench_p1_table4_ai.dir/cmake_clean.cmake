file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_table4_ai.dir/bench_p1_table4_ai.cpp.o"
  "CMakeFiles/bench_p1_table4_ai.dir/bench_p1_table4_ai.cpp.o.d"
  "bench_p1_table4_ai"
  "bench_p1_table4_ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_table4_ai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

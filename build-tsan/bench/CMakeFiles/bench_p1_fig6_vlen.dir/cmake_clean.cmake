file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_fig6_vlen.dir/bench_p1_fig6_vlen.cpp.o"
  "CMakeFiles/bench_p1_fig6_vlen.dir/bench_p1_fig6_vlen.cpp.o.d"
  "bench_p1_fig6_vlen"
  "bench_p1_fig6_vlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_fig6_vlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_p1_fig6_vlen.
# This may be replaced when dependencies are built.

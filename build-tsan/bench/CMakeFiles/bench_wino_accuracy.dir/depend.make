# Empty dependencies file for bench_wino_accuracy.
# This may be replaced when dependencies are built.

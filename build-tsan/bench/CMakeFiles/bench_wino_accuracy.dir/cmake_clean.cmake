file(REMOVE_RECURSE
  "CMakeFiles/bench_wino_accuracy.dir/bench_wino_accuracy.cpp.o"
  "CMakeFiles/bench_wino_accuracy.dir/bench_wino_accuracy.cpp.o.d"
  "bench_wino_accuracy"
  "bench_wino_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wino_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

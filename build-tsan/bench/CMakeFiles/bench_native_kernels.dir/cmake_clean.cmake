file(REMOVE_RECURSE
  "CMakeFiles/bench_native_kernels.dir/bench_native_kernels.cpp.o"
  "CMakeFiles/bench_native_kernels.dir/bench_native_kernels.cpp.o.d"
  "bench_native_kernels"
  "bench_native_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

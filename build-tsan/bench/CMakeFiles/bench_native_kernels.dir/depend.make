# Empty dependencies file for bench_native_kernels.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig05_vgg_l2_512.
# This may be replaced when dependencies are built.

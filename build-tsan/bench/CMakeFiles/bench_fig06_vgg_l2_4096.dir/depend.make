# Empty dependencies file for bench_fig06_vgg_l2_4096.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig08_yolo_l2_4096.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_yolo_l2_4096.dir/bench_fig08_yolo_l2_4096.cpp.o"
  "CMakeFiles/bench_fig08_yolo_l2_4096.dir/bench_fig08_yolo_l2_4096.cpp.o.d"
  "bench_fig08_yolo_l2_4096"
  "bench_fig08_yolo_l2_4096.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_yolo_l2_4096.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig03_vgg_vlen.
# This may be replaced when dependencies are built.

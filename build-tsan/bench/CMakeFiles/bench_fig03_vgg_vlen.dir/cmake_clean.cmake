file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_vgg_vlen.dir/bench_fig03_vgg_vlen.cpp.o"
  "CMakeFiles/bench_fig03_vgg_vlen.dir/bench_fig03_vgg_vlen.cpp.o.d"
  "bench_fig03_vgg_vlen"
  "bench_fig03_vgg_vlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_vgg_vlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_p1_table2_blocks.
# This may be replaced when dependencies are built.

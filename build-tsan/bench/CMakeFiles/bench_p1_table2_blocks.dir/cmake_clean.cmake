file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_table2_blocks.dir/bench_p1_table2_blocks.cpp.o"
  "CMakeFiles/bench_p1_table2_blocks.dir/bench_p1_table2_blocks.cpp.o.d"
  "bench_p1_table2_blocks"
  "bench_p1_table2_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_table2_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

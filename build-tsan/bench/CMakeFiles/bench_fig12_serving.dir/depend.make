# Empty dependencies file for bench_fig12_serving.
# This may be replaced when dependencies are built.

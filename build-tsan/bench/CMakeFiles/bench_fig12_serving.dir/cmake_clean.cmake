file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_serving.dir/bench_fig12_serving.cpp.o"
  "CMakeFiles/bench_fig12_serving.dir/bench_fig12_serving.cpp.o.d"
  "bench_fig12_serving"
  "bench_fig12_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

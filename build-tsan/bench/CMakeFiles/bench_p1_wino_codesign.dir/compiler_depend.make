# Empty compiler generated dependencies file for bench_p1_wino_codesign.
# This may be replaced when dependencies are built.

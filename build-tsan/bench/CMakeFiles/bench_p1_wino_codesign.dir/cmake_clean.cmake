file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_wino_codesign.dir/bench_p1_wino_codesign.cpp.o"
  "CMakeFiles/bench_p1_wino_codesign.dir/bench_p1_wino_codesign.cpp.o.d"
  "bench_p1_wino_codesign"
  "bench_p1_wino_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_wino_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

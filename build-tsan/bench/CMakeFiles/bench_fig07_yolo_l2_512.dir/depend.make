# Empty dependencies file for bench_fig07_yolo_l2_512.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_yolo_l2_512.dir/bench_fig07_yolo_l2_512.cpp.o"
  "CMakeFiles/bench_fig07_yolo_l2_512.dir/bench_fig07_yolo_l2_512.cpp.o.d"
  "bench_fig07_yolo_l2_512"
  "bench_fig07_yolo_l2_512.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_yolo_l2_512.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

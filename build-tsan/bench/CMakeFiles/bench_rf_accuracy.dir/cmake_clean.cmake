file(REMOVE_RECURSE
  "CMakeFiles/bench_rf_accuracy.dir/bench_rf_accuracy.cpp.o"
  "CMakeFiles/bench_rf_accuracy.dir/bench_rf_accuracy.cpp.o.d"
  "bench_rf_accuracy"
  "bench_rf_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rf_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_rf_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_lanes.dir/bench_p1_lanes.cpp.o"
  "CMakeFiles/bench_p1_lanes.dir/bench_p1_lanes.cpp.o.d"
  "bench_p1_lanes"
  "bench_p1_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

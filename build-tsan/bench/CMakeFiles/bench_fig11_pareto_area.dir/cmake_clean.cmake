file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_pareto_area.dir/bench_fig11_pareto_area.cpp.o"
  "CMakeFiles/bench_fig11_pareto_area.dir/bench_fig11_pareto_area.cpp.o.d"
  "bench_fig11_pareto_area"
  "bench_fig11_pareto_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_pareto_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

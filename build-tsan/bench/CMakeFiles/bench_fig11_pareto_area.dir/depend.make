# Empty dependencies file for bench_fig11_pareto_area.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_yolo_perlayer.dir/bench_fig02_yolo_perlayer.cpp.o"
  "CMakeFiles/bench_fig02_yolo_perlayer.dir/bench_fig02_yolo_perlayer.cpp.o.d"
  "bench_fig02_yolo_perlayer"
  "bench_fig02_yolo_perlayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_yolo_perlayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig02_yolo_perlayer.
# This may be replaced when dependencies are built.

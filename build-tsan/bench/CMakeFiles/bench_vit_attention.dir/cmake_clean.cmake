file(REMOVE_RECURSE
  "CMakeFiles/bench_vit_attention.dir/bench_vit_attention.cpp.o"
  "CMakeFiles/bench_vit_attention.dir/bench_vit_attention.cpp.o.d"
  "bench_vit_attention"
  "bench_vit_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vit_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

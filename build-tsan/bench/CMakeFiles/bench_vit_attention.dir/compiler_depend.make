# Empty compiler generated dependencies file for bench_vit_attention.
# This may be replaced when dependencies are built.

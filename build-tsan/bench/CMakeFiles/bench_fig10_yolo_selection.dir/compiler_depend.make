# Empty compiler generated dependencies file for bench_fig10_yolo_selection.
# This may be replaced when dependencies are built.

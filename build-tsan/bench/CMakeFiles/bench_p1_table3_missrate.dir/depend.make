# Empty dependencies file for bench_p1_table3_missrate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_p1_table3_missrate.dir/bench_p1_table3_missrate.cpp.o"
  "CMakeFiles/bench_p1_table3_missrate.dir/bench_p1_table3_missrate.cpp.o.d"
  "bench_p1_table3_missrate"
  "bench_p1_table3_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1_table3_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

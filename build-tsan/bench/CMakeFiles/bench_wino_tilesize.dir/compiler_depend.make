# Empty compiler generated dependencies file for bench_wino_tilesize.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_wino_tilesize.dir/bench_wino_tilesize.cpp.o"
  "CMakeFiles/bench_wino_tilesize.dir/bench_wino_tilesize.cpp.o.d"
  "bench_wino_tilesize"
  "bench_wino_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wino_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig04_yolo_vlen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_yolo_vlen.dir/bench_fig04_yolo_vlen.cpp.o"
  "CMakeFiles/bench_fig04_yolo_vlen.dir/bench_fig04_yolo_vlen.cpp.o.d"
  "bench_fig04_yolo_vlen"
  "bench_fig04_yolo_vlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_yolo_vlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "vpu/pmu.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace vlacnn::serving {
// Declared here instead of including serving/request_sim.h: the vpu layer
// sits below serving in the include order, and the PMU needs exactly one
// function from it — the Sterbenz-exact splitter the §13 span trees are built
// on (defined in serving/request_sim.cpp; same static library, so the
// reference always resolves). Using the same splitter keeps the phase
// partition under the same bit-exact fold discipline as request attribution.
std::pair<double, double> exact_split(double total, double head_approx);
}  // namespace vlacnn::serving

namespace vlacnn {

namespace {

/// b - a for every raw counter field, accumulated into a PmuPhaseStats.
void accumulate_delta(PmuPhaseStats& p, const TimingStats& a,
                      const TimingStats& b) {
  p.raw_cycles += b.cycles - a.cycles;
  p.compute_cycles += b.compute_cycles - a.compute_cycles;
  p.mem_issue_cycles += b.mem_issue_cycles - a.mem_issue_cycles;
  p.mem_stall_cycles += b.mem_stall_cycles - a.mem_stall_cycles;
  p.scalar_cycles += b.scalar_cycles - a.scalar_cycles;
  p.vec_instructions += b.vec_instructions - a.vec_instructions;
  p.vec_elems += b.vec_elems - a.vec_elems;
  p.flops += b.flops - a.flops;
  p.first_level_accesses += b.first_level_accesses - a.first_level_accesses;
  p.first_level_misses += b.first_level_misses - a.first_level_misses;
  p.l2_accesses += b.l2_accesses - a.l2_accesses;
  p.l2_misses += b.l2_misses - a.l2_misses;
  p.mem_bytes += b.mem_bytes - a.mem_bytes;
}

/// The counter delta [a, b) as a window.
PmuWindow window_delta(const TimingStats& a, const TimingStats& b) {
  PmuWindow w;
  w.t_start = a.cycles;
  w.t_end = b.cycles;
  w.compute_cycles = b.compute_cycles - a.compute_cycles;
  w.mem_issue_cycles = b.mem_issue_cycles - a.mem_issue_cycles;
  w.mem_stall_cycles = b.mem_stall_cycles - a.mem_stall_cycles;
  w.scalar_cycles = b.scalar_cycles - a.scalar_cycles;
  w.vec_instructions = b.vec_instructions - a.vec_instructions;
  w.vec_elems = b.vec_elems - a.vec_elems;
  w.first_level_accesses = b.first_level_accesses - a.first_level_accesses;
  w.first_level_misses = b.first_level_misses - a.first_level_misses;
  w.l2_accesses = b.l2_accesses - a.l2_accesses;
  w.l2_misses = b.l2_misses - a.l2_misses;
  w.mem_bytes = b.mem_bytes - a.mem_bytes;
  return w;
}

/// Merge window b into a (adjacent windows; a precedes b).
void merge_into(PmuWindow& a, const PmuWindow& b) {
  a.t_end = b.t_end;
  a.compute_cycles += b.compute_cycles;
  a.mem_issue_cycles += b.mem_issue_cycles;
  a.mem_stall_cycles += b.mem_stall_cycles;
  a.scalar_cycles += b.scalar_cycles;
  a.vec_instructions += b.vec_instructions;
  a.vec_elems += b.vec_elems;
  a.first_level_accesses += b.first_level_accesses;
  a.first_level_misses += b.first_level_misses;
  a.l2_accesses += b.l2_accesses;
  a.l2_misses += b.l2_misses;
  a.mem_bytes += b.mem_bytes;
}

}  // namespace

Pmu::Pmu(double interval_cycles, bool interval_locked, std::size_t max_windows)
    : interval_(interval_cycles),
      interval_locked_(interval_locked),
      max_windows_(max_windows),
      next_boundary_(interval_cycles) {
  if (!(interval_cycles > 0.0))
    throw std::invalid_argument("pmu: interval_cycles must be positive");
  if (max_windows < 2)
    throw std::invalid_argument("pmu: max_windows must be >= 2");
}

void Pmu::begin_phase(const char* name, const TimingStats& now) {
  if (finalized_) throw std::logic_error("pmu: begin_phase after finalize");
  if (in_phase_)
    throw std::logic_error("pmu: phases do not nest (begin inside begin)");
  std::size_t idx = phases_.size();
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) {
      idx = i;
      break;
    }
  }
  if (idx == phases_.size()) {
    PmuPhaseStats p;
    p.name = name;
    phases_.push_back(std::move(p));
  }
  open_index_ = idx;
  phase_start_ = now;
  in_phase_ = true;
}

void Pmu::end_phase(const TimingStats& now) {
  if (!in_phase_) throw std::logic_error("pmu: end_phase with no open phase");
  accumulate_delta(phases_[open_index_], phase_start_, now);
  in_phase_ = false;
}

void Pmu::on_event(const TimingStats& now) {
  if (finalized_ || now.cycles < next_boundary_) return;
  close_window(now);
}

void Pmu::close_window(const TimingStats& now) {
  windows_.push_back(window_delta(window_start_, now));
  window_start_ = now;
  next_boundary_ = now.cycles + interval_;
  if (interval_locked_ || windows_.size() < max_windows_) return;
  // Auto-coarsen: merge adjacent pairs and double the cadence so long runs
  // keep a bounded trajectory instead of an unbounded window list.
  std::size_t out = 0;
  std::size_t i = 0;
  for (; i + 1 < windows_.size(); i += 2) {
    PmuWindow m = windows_[i];
    merge_into(m, windows_[i + 1]);
    windows_[out++] = m;
  }
  if (i < windows_.size()) windows_[out++] = windows_[i];
  windows_.resize(out);
  interval_ *= 2.0;
}

void Pmu::finalize(const TimingStats& total) {
  if (finalized_) throw std::logic_error("pmu: finalize called twice");
  if (in_phase_)
    throw std::logic_error("pmu: finalize with a phase still open");
  finalized_ = true;

  // Trailing partial window (skipped when the last event landed exactly on a
  // boundary, or the run produced no cycles at all).
  if (total.cycles > window_start_.cycles)
    windows_.push_back(window_delta(window_start_, total));

  // "(other)" absorbs everything no annotated phase claimed: per-counter
  // residuals of total minus the sum of the raw phase deltas.
  PmuPhaseStats other;
  other.name = kOtherPhase;
  accumulate_delta(other, TimingStats{}, total);
  for (const PmuPhaseStats& p : phases_) {
    other.raw_cycles -= p.raw_cycles;
    other.compute_cycles -= p.compute_cycles;
    other.mem_issue_cycles -= p.mem_issue_cycles;
    other.mem_stall_cycles -= p.mem_stall_cycles;
    other.scalar_cycles -= p.scalar_cycles;
    other.vec_instructions -= p.vec_instructions;
    other.vec_elems -= p.vec_elems;
    other.flops -= p.flops;
    other.first_level_accesses -= p.first_level_accesses;
    other.first_level_misses -= p.first_level_misses;
    other.l2_accesses -= p.l2_accesses;
    other.l2_misses -= p.l2_misses;
    other.mem_bytes -= p.mem_bytes;
  }
  phases_.push_back(std::move(other));

  // Exact cycle partition: chain exact_split over the raw-cycle weights (the
  // split_service_span discipline from §13 — each split is head+tail == span
  // bit-exact, the last phase absorbs the remainder), so a right-to-left fold
  // of phases[i].cycles telescopes back to total.cycles bit for bit.
  double weight_left = 0.0;
  for (const PmuPhaseStats& p : phases_)
    weight_left += std::max(p.raw_cycles, 0.0);
  double remaining = total.cycles;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i + 1 == phases_.size()) {
      phases_[i].cycles = remaining;
      break;
    }
    const double w = std::max(phases_[i].raw_cycles, 0.0);
    const double head = weight_left > 0.0 ? remaining * (w / weight_left) : 0.0;
    const auto [h, t] = serving::exact_split(remaining, head);
    phases_[i].cycles = h;
    remaining = t;
    weight_left -= w;
  }
}

}  // namespace vlacnn

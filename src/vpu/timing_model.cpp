#include "vpu/timing_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "vpu/pmu.h"

namespace vlacnn {

TimingModel::TimingModel(const VpuConfig& vpu, MemorySystem* mem,
                         const TimingConfig& config)
    : vpu_(vpu), mem_(mem), config_(config) {
  validate(vpu);
  // Every field checked here sits on the right of a division in the cycle
  // model; zero would silently propagate inf/NaN through the stats (the old
  // behaviour of `latency /= miss_overlap`).
  if (!(config.scalar_ipc > 0.0))
    throw std::invalid_argument("timing: scalar_ipc must be positive");
  if (!(config.strided_lane_divisor > 0.0))
    throw std::invalid_argument("timing: strided_lane_divisor must be positive");
  if (!(config.indexed_lane_divisor > 0.0))
    throw std::invalid_argument("timing: indexed_lane_divisor must be positive");
  if (!(config.miss_overlap > 0.0))
    throw std::invalid_argument("timing: miss_overlap must be positive");
  if (!(config.cache_bytes_per_cycle > 0.0))
    throw std::invalid_argument(
        "timing: cache_bytes_per_cycle must be positive");
}

void TimingModel::pmu_begin(const char* name) {
  if (pmu_ != nullptr) pmu_->begin_phase(name, stats_);
}

void TimingModel::pmu_end() {
  if (pmu_ != nullptr) pmu_->end_phase(stats_);
}

void TimingModel::push_scale(double s) {
  if (s <= 0.0) throw std::invalid_argument("timing: scale must be positive");
  scale_stack_.push_back(scale_);
  scale_ *= s;
}

void TimingModel::pop_scale() {
  if (scale_stack_.empty()) throw std::logic_error("timing: scale stack empty");
  scale_ = scale_stack_.back();
  scale_stack_.pop_back();
}

void TimingModel::vec_arith(std::uint64_t vl, std::uint32_t flops_per_elem) {
  if (vl == 0) return;
  const double chime =
      std::ceil(static_cast<double>(vl) / static_cast<double>(vpu_.lanes));
  const double c = config_.vec_startup_cycles + chime;
  stats_.cycles += scale_ * c;
  stats_.compute_cycles += scale_ * c;
  stats_.vec_instructions += scale_;
  stats_.vec_elems += scale_ * static_cast<double>(vl);
  stats_.flops += scale_ * static_cast<double>(vl) * flops_per_elem;
  if (pmu_ != nullptr) pmu_->on_event(stats_);
}

void TimingModel::vec_reduce(std::uint64_t vl) {
  if (vl == 0) return;
  const double steps = std::ceil(
      std::log2(static_cast<double>(std::max<std::uint64_t>(vl, 2))));
  const double c = config_.vec_startup_cycles + 2.0 * steps;
  stats_.cycles += scale_ * c;
  stats_.compute_cycles += scale_ * c;
  stats_.vec_instructions += scale_;
  stats_.vec_elems += scale_ * static_cast<double>(vl);
  stats_.flops += scale_ * static_cast<double>(vl);
  if (pmu_ != nullptr) pmu_->on_event(stats_);
}

void TimingModel::account_mem_result(const AccessResult& r, bool write,
                                     MemPattern pattern,
                                     std::uint64_t l2_acc_delta,
                                     std::uint64_t l2_miss_delta) {
  stats_.first_level_accesses += scale_ * r.lines;
  stats_.first_level_misses += scale_ * r.l1_misses;
  stats_.l2_accesses += scale_ * static_cast<double>(l2_acc_delta);
  stats_.l2_misses += scale_ * static_cast<double>(l2_miss_delta);
  stats_.mem_bytes += scale_ * static_cast<double>(r.mem_bytes);
  if (mem_ == nullptr) return;
  (void)pattern;
  const MemConfig& mc = mem_->config();
  // Latency term: first-level misses pay the next level's latency; memory
  // misses additionally pay DRAM latency. Overlapped by the MLP factor.
  // (A leading-miss-only "streamed fill" variant was evaluated and rejected:
  // it overshoots Paper I's measured long-vector scaling — see EXPERIMENTS.md.)
  double latency = r.l1_misses * static_cast<double>(mc.l2.latency_cycles) +
                   r.l2_misses * static_cast<double>(mc.mem_latency_cycles);
  latency /= config_.miss_overlap;
  if (write) latency *= config_.store_latency_factor;
  // Bandwidth term: DRAM traffic cannot exceed peak bandwidth.
  const double bw = static_cast<double>(r.mem_bytes) / mc.mem_bytes_per_cycle;
  const double stall = std::max(latency, bw);
  stats_.cycles += scale_ * stall;
  stats_.mem_stall_cycles += scale_ * stall;
}

void TimingModel::vec_mem(std::uint64_t addr, std::uint64_t vl,
                          std::int64_t stride_bytes, MemPattern pattern,
                          bool write) {
  if (vl == 0) return;
  stats_.vec_instructions += scale_;
  stats_.vec_elems += scale_ * static_cast<double>(vl);

  const std::uint64_t l2a0 = mem_ ? mem_->l2().accesses() : 0;
  const std::uint64_t l2m0 = mem_ ? mem_->l2().misses() : 0;

  AccessResult r;
  double issue = config_.vec_startup_cycles;
  if (pattern == MemPattern::kUnit) {
    const std::uint64_t bytes = vl * 4;
    if (mem_ != nullptr) r = mem_->vector_access(addr, bytes, write);
    const double lane_cycles =
        std::ceil(static_cast<double>(vl) / static_cast<double>(vpu_.lanes));
    const double line_cycles =
        static_cast<double>(bytes) / config_.cache_bytes_per_cycle;
    issue += std::max(lane_cycles, line_cycles);
  } else {
    // Strided / indexed: one address per element; elements may land anywhere.
    const double divisor = pattern == MemPattern::kStrided
                               ? config_.strided_lane_divisor
                               : config_.indexed_lane_divisor;
    const double tput = std::max(1.0, static_cast<double>(vpu_.lanes) / divisor);
    issue += std::ceil(static_cast<double>(vl) / tput);
    if (mem_ != nullptr) {
      for (std::uint64_t i = 0; i < vl; ++i) {
        const std::uint64_t a =
            addr + static_cast<std::uint64_t>(static_cast<std::int64_t>(i) *
                                              stride_bytes);
        AccessResult e = mem_->vector_access(a, 4, write);
        r.lines += e.lines;
        r.l1_misses += e.l1_misses;
        r.l2_misses += e.l2_misses;
        r.mem_bytes += e.mem_bytes;
      }
    }
  }
  stats_.cycles += scale_ * issue;
  stats_.mem_issue_cycles += scale_ * issue;

  const std::uint64_t l2a = mem_ ? mem_->l2().accesses() - l2a0 : 0;
  const std::uint64_t l2m = mem_ ? mem_->l2().misses() - l2m0 : 0;
  account_mem_result(r, write, pattern, l2a, l2m);
  if (pmu_ != nullptr) pmu_->on_event(stats_);
}

void TimingModel::prefetch(std::uint64_t addr, std::uint64_t bytes) {
  if (!config_.sw_prefetch_effective) return;  // toolchain drops the intrinsic
  if (mem_ != nullptr) mem_->prefetch(addr, bytes);
  // Non-blocking: only a one-cycle issue slot.
  stats_.cycles += scale_;
  stats_.scalar_cycles += scale_;
  if (pmu_ != nullptr) pmu_->on_event(stats_);
}

void TimingModel::scalar_ops(std::uint64_t n) {
  const double c = static_cast<double>(n) / config_.scalar_ipc;
  stats_.cycles += scale_ * c;
  stats_.scalar_cycles += scale_ * c;
  if (pmu_ != nullptr) pmu_->on_event(stats_);
}

void TimingModel::scalar_mem(std::uint64_t addr, std::uint64_t bytes,
                             bool write) {
  const std::uint64_t l2a0 = mem_ ? mem_->l2().accesses() : 0;
  const std::uint64_t l2m0 = mem_ ? mem_->l2().misses() : 0;
  AccessResult r;
  if (mem_ != nullptr) r = mem_->scalar_access(addr, bytes, write);
  stats_.cycles += scale_;  // issue slot
  stats_.scalar_cycles += scale_;
  const std::uint64_t l2a = mem_ ? mem_->l2().accesses() - l2a0 : 0;
  const std::uint64_t l2m = mem_ ? mem_->l2().misses() - l2m0 : 0;
  account_mem_result(r, write, MemPattern::kUnit, l2a, l2m);
  if (pmu_ != nullptr) pmu_->on_event(stats_);
}

}  // namespace vlacnn

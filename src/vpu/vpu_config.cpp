#include "vpu/vpu_config.h"

#include <stdexcept>

namespace vlacnn {

void validate(const VpuConfig& config) {
  const std::uint32_t v = config.vlen_bits;
  if (v < 128 || v > kMaxVlenBits || (v & (v - 1)) != 0) {
    throw std::invalid_argument("vpu: vlen must be a power of two in [128, 16384]");
  }
  if (config.lanes == 0 || config.lanes > 64) {
    throw std::invalid_argument("vpu: lanes must be in [1, 64]");
  }
}

}  // namespace vlacnn

#include "vpu/functional_engine.h"

namespace vlacnn {

static_assert(FunctionalEngine::computes() && sizeof(FunctionalEngine::Vec) ==
                  sizeof(std::uint32_t) + sizeof(float) * kMaxVlElems,
              "functional vectors carry the full architectural register");

}  // namespace vlacnn

// Simulated performance-monitoring unit for the timing model (DESIGN.md §14).
//
// Two views of one kernel run, both derived from the TimingModel's event
// stream (TimingModel calls Pmu::on_event after every accounted event when a
// Pmu is attached):
//
//   * Phases: the algorithms annotate their structural phases (pack-A,
//     pack-B, macro-kernel, input-transform, ...) with pmu_begin/pmu_end (or
//     the PmuPhase RAII guard). Each phase accumulates the raw TimingStats
//     deltas of every visit. finalize() then publishes an *exact* cycle
//     partition: raw deltas are used as weights in a chain of Sterbenz
//     exact_split()s (the same discipline as the §13 request-span trees), plus
//     a trailing "(other)" phase absorbing un-annotated cycles and rounding
//     dust — so folding the published per-phase cycles back-to-front
//     (right-to-left) reconstitutes the aggregate TimingStats.cycles bit for
//     bit, at sampled and unsampled scales alike (EXPECT_EQ-testable; the raw
//     deltas themselves only sum to the total approximately, since each
//     snapshot subtraction rounds independently).
//
//   * Counter windows: every `interval` simulated cycles the PMU closes a
//     window holding the counter deltas since the previous boundary —
//     occupancy split (compute / mem_issue / mem_stall / scalar), avg VL,
//     vector elements (lane utilization), L1/L2 accesses & misses (miss-rate
//     trajectory), and DRAM bytes. Window ends are event-aligned: the event
//     that crosses a boundary closes the window at its own end time, so
//     windows partition the run with no gaps or overlaps. When the window
//     count would exceed `max_windows` and the interval was not explicitly
//     pinned, adjacent windows merge pairwise and the interval doubles
//     (mirrors the timeline recorder's auto-coarsening).
//
// The PMU is pure accounting — attaching one never changes the simulated
// cycle counts, and the disabled path is a single null-pointer check per
// event (inside the <2% bench_obs_overhead budget).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vpu/timing_model.h"

namespace vlacnn {

/// One annotated phase's accumulated counters. `cycles` is the exact
/// partition share (valid after Pmu::finalize()); every other field is the
/// raw delta summed over the phase's visits.
struct PmuPhaseStats {
  std::string name;
  double cycles = 0;      ///< exact partition share of the kernel total
  double raw_cycles = 0;  ///< accumulated raw snapshot delta (the weight)
  double compute_cycles = 0;
  double mem_issue_cycles = 0;
  double mem_stall_cycles = 0;
  double scalar_cycles = 0;
  double vec_instructions = 0;
  double vec_elems = 0;
  double flops = 0;
  double first_level_accesses = 0;
  double first_level_misses = 0;
  double l2_accesses = 0;
  double l2_misses = 0;
  double mem_bytes = 0;

  double avg_vl() const {
    return vec_instructions > 0 ? vec_elems / vec_instructions : 0.0;
  }
  double l1_miss_rate() const {
    return first_level_accesses > 0 ? first_level_misses / first_level_accesses
                                    : 0.0;
  }
  double l2_miss_rate() const {
    return l2_accesses > 0 ? l2_misses / l2_accesses : 0.0;
  }
};

/// One counter window: deltas over [t_start, t_end) simulated cycles.
struct PmuWindow {
  double t_start = 0;
  double t_end = 0;
  double compute_cycles = 0;
  double mem_issue_cycles = 0;
  double mem_stall_cycles = 0;
  double scalar_cycles = 0;
  double vec_instructions = 0;
  double vec_elems = 0;
  double first_level_accesses = 0;
  double first_level_misses = 0;
  double l2_accesses = 0;
  double l2_misses = 0;
  double mem_bytes = 0;

  double duration() const { return t_end - t_start; }
  double avg_vl() const {
    return vec_instructions > 0 ? vec_elems / vec_instructions : 0.0;
  }
  double l1_miss_rate() const {
    return first_level_accesses > 0 ? first_level_misses / first_level_accesses
                                    : 0.0;
  }
  double l2_miss_rate() const {
    return l2_accesses > 0 ? l2_misses / l2_accesses : 0.0;
  }
  double dram_bytes_per_cycle() const {
    return duration() > 0 ? mem_bytes / duration() : 0.0;
  }
  /// Lane utilization given the machine's lane count: elements retired per
  /// lane-cycle of the window.
  double lane_utilization(std::uint32_t lanes) const {
    const double d = duration();
    return d > 0 && lanes > 0 ? vec_elems / (static_cast<double>(lanes) * d)
                              : 0.0;
  }
};

/// The PMU. One instance per simulation; attach with TimingModel::set_pmu().
/// Not thread-safe (a simulation point is single-threaded).
class Pmu {
 public:
  /// Name of the synthetic phase finalize() appends for cycles not covered by
  /// any annotated phase (plus the partition's rounding dust).
  static constexpr const char* kOtherPhase = "(other)";

  /// `interval_cycles` is the window cadence (> 0). When `interval_locked`,
  /// auto-coarsening is disabled (the caller pinned the cadence explicitly)
  /// and the window count is unbounded. `max_windows` caps the window vector
  /// when coarsening is allowed.
  explicit Pmu(double interval_cycles, bool interval_locked = false,
               std::size_t max_windows = 256);

  // -- phase API (normally driven via TimingModel::pmu_begin/pmu_end) --------
  /// Open phase `name` at the counter state `now`. Phases do not nest; a
  /// begin inside an open phase throws std::logic_error. Multiple begin/end
  /// visits of the same name accumulate into one PmuPhaseStats.
  void begin_phase(const char* name, const TimingStats& now);
  /// Close the open phase at `now`; throws std::logic_error when none is open.
  void end_phase(const TimingStats& now);
  bool in_phase() const { return in_phase_; }

  // -- event hook -------------------------------------------------------------
  /// Called by the TimingModel after every accounted event with the updated
  /// aggregate stats. Closes counter windows as boundaries are crossed.
  void on_event(const TimingStats& now);

  /// Seal the run at the final aggregate stats: closes the trailing partial
  /// window, appends the "(other)" phase, and computes the exact per-phase
  /// cycle partition. Must be called exactly once, with no phase open.
  void finalize(const TimingStats& total);
  bool finalized() const { return finalized_; }

  /// Phases in first-annotation order, "(other)" last (valid after
  /// finalize(); `cycles` fields fold back-to-front to the kernel total).
  const std::vector<PmuPhaseStats>& phases() const { return phases_; }
  const std::vector<PmuWindow>& windows() const { return windows_; }
  /// The effective window cadence (>= the constructed one after coarsening).
  double interval_cycles() const { return interval_; }

 private:
  void close_window(const TimingStats& now);

  double interval_;
  bool interval_locked_;
  std::size_t max_windows_;
  double next_boundary_;
  TimingStats window_start_{};

  bool in_phase_ = false;
  std::size_t open_index_ = 0;
  TimingStats phase_start_{};
  std::vector<PmuPhaseStats> phases_;

  std::vector<PmuWindow> windows_;
  bool finalized_ = false;
};

/// RAII phase guard for kernel code: opens `name` on the timing model's PMU
/// when one is attached, closes it on scope exit. Inert when `tm` is null
/// (FunctionalEngine without timing) or no PMU is attached, so kernels
/// annotate unconditionally.
class PmuPhase {
 public:
  PmuPhase(TimingModel* tm, const char* name)
      : tm_(tm != nullptr && tm->pmu() != nullptr ? tm : nullptr) {
    if (tm_ != nullptr) tm_->pmu_begin(name);
  }
  ~PmuPhase() {
    if (tm_ != nullptr) tm_->pmu_end();
  }
  PmuPhase(const PmuPhase&) = delete;
  PmuPhase& operator=(const PmuPhase&) = delete;

 private:
  TimingModel* tm_;
};

}  // namespace vlacnn

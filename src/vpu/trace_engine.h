// TraceEngine: executes a kernel's vector program for *timing only*.
//
// Vector values are opaque tokens carrying just their length; every operation is
// forwarded to the TimingModel (and through it, the cache simulator). This is
// the engine the co-design sweeps run on: no arithmetic, no data, only the real
// instruction stream and the real memory trace of the kernel's loop nest.
#pragma once

#include <cstdint>
#include <vector>

#include "vpu/buffer.h"
#include "vpu/timing_model.h"
#include "vpu/vpu_config.h"

namespace vlacnn {

class TraceEngine {
 public:
  /// Opaque vector register token.
  struct Vec {
    std::uint32_t vl = 0;
  };

  TraceEngine(const VpuConfig& vpu, TimingModel* timing)
      : vpu_(vpu), timing_(timing) {}

  const VpuConfig& vpu() const { return vpu_; }
  TimingModel* timing() const { return timing_; }

  /// Whether this engine produces numeric results (used by kernels to skip
  /// value-only work such as zero-initialising scratch in trace mode).
  static constexpr bool computes() { return false; }

  std::uint64_t setvl(std::uint64_t requested) const {
    return vpu_.setvl(requested);
  }

  // -- memory -----------------------------------------------------------------
  BufView bind(const float* /*data*/, std::uint64_t elems) {
    return {arena_.allocate(elems * 4), nullptr};
  }
  Scratch alloc(std::uint64_t elems) {
    return {BufView{arena_.allocate(elems * 4), nullptr}, nullptr};
  }

  Vec vload(BufView src, std::uint64_t off, std::uint64_t vl) {
    timing_->vec_mem(src.addr + 4 * off, vl, 4, MemPattern::kUnit, false);
    return {static_cast<std::uint32_t>(vl)};
  }
  Vec vload_strided(BufView src, std::uint64_t off, std::int64_t stride_elems,
                    std::uint64_t vl) {
    timing_->vec_mem(src.addr + 4 * off, vl, stride_elems * 4,
                     MemPattern::kStrided, false);
    return {static_cast<std::uint32_t>(vl)};
  }
  Vec vgather(BufView src, std::uint64_t off, const std::uint32_t* /*idx*/,
              std::uint64_t vl) {
    timing_->vec_mem(src.addr + 4 * off, vl, 4, MemPattern::kIndexed, false);
    return {static_cast<std::uint32_t>(vl)};
  }
  void vstore(const Vec& v, BufView dst, std::uint64_t off) {
    timing_->vec_mem(dst.addr + 4 * off, v.vl, 4, MemPattern::kUnit, true);
  }
  void vstore_strided(const Vec& v, BufView dst, std::uint64_t off,
                      std::int64_t stride_elems) {
    timing_->vec_mem(dst.addr + 4 * off, v.vl, stride_elems * 4,
                     MemPattern::kStrided, true);
  }
  void prefetch(BufView b, std::uint64_t off, std::uint64_t bytes) {
    timing_->prefetch(b.addr + 4 * off, bytes);
  }

  float scalar_load(BufView b, std::uint64_t off) {
    timing_->scalar_mem(b.addr + 4 * off, 4, false);
    return 0.0f;
  }
  void scalar_store(BufView b, std::uint64_t off, float /*value*/) {
    timing_->scalar_mem(b.addr + 4 * off, 4, true);
  }

  // -- arithmetic ---------------------------------------------------------------
  Vec vbroadcast(float /*s*/, std::uint64_t vl) {
    timing_->vec_arith(vl, 0);
    return {static_cast<std::uint32_t>(vl)};
  }
  void vfma_vv(Vec& acc, const Vec& a, const Vec& /*b*/) {
    timing_->vec_arith(acc.vl, 2);
    (void)a;
  }
  void vfma_vs(Vec& acc, float /*s*/, const Vec& /*b*/) {
    timing_->vec_arith(acc.vl, 2);
  }
  void vadd_vv(Vec& acc, const Vec& /*b*/) { timing_->vec_arith(acc.vl, 1); }
  void vsub_vv(Vec& acc, const Vec& /*b*/) { timing_->vec_arith(acc.vl, 1); }
  void vmul_vv(Vec& acc, const Vec& /*b*/) { timing_->vec_arith(acc.vl, 1); }
  void vmul_vs(Vec& acc, float /*s*/) { timing_->vec_arith(acc.vl, 1); }
  void vadd_vs(Vec& acc, float /*s*/) { timing_->vec_arith(acc.vl, 1); }
  void vmax_vs(Vec& acc, float /*s*/) { timing_->vec_arith(acc.vl, 1); }
  /// Leaky-ReLU composite: compare + blend (two vector ops).
  void vleaky(Vec& acc, float /*slope*/) { timing_->vec_arith(acc.vl, 2); }
  float vredsum(const Vec& v) {
    timing_->vec_reduce(v.vl);
    return 0.0f;
  }
  float vredmax(const Vec& v) {
    timing_->vec_reduce(v.vl);
    return 0.0f;
  }
  /// Vectorised exponential (polynomial approximation on real hardware).
  void vexp(Vec& acc) { timing_->vec_arith(acc.vl, 4); }

  void scalar_ops(std::uint64_t n) { timing_->scalar_ops(n); }

 private:
  VpuConfig vpu_;
  TimingModel* timing_;
  VirtualArena arena_;
};

}  // namespace vlacnn

// TraceEngine is fully inline (hot path of the simulator); this translation unit
// exists to give the header a home in the library and to hold its static checks.
#include "vpu/trace_engine.h"

namespace vlacnn {

static_assert(sizeof(TraceEngine::Vec) == 4,
              "trace vectors must stay trivially cheap");

}  // namespace vlacnn

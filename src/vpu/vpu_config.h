// Vector processing unit parameters (the co-design knobs of the papers) and the
// vsetvl semantics of the RISC-V "V" extension, which is what makes the kernels
// vector-length agnostic.
#pragma once

#include <cstdint>

#include "memsim/memory_system.h"

namespace vlacnn {

/// Maximum architecturally supported vector length (RVV spec; Paper I sweeps to
/// 16384-bit vectors).
inline constexpr std::uint32_t kMaxVlenBits = 16384;
inline constexpr std::uint32_t kElemBits = 32;  // fp32 throughout the papers
inline constexpr std::uint32_t kMaxVlElems = kMaxVlenBits / kElemBits;

struct VpuConfig {
  std::uint32_t vlen_bits = 512;
  std::uint32_t lanes = 8;
  VpuAttach attach = VpuAttach::kIntegratedL1;

  /// Maximum vector length in fp32 elements for this implementation.
  std::uint32_t mvl() const { return vlen_bits / kElemBits; }

  /// RVV vsetvl: granted vector length for a requested element count.
  std::uint64_t setvl(std::uint64_t requested) const {
    const std::uint64_t m = mvl();
    return requested < m ? requested : m;
  }
};

/// Validate a config (power-of-two vlen within range, lanes sane). Throws on error.
void validate(const VpuConfig& config);

}  // namespace vlacnn

// Buffer views shared by the functional and trace engines.
//
// Every array a kernel touches is addressed through a BufView: a virtual address
// (for the cache simulator) plus an optional host pointer (for functional
// execution). Kernels never dereference raw pointers; all element access goes
// through engine operations, which is what lets one kernel template serve both
// numerically-correct execution and trace-driven timing simulation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace vlacnn {

struct BufView {
  std::uint64_t addr = 0;     ///< virtual byte address for the memory simulator
  float* data = nullptr;      ///< host backing store; null in trace-only mode

  /// View shifted by an element offset.
  BufView sub(std::uint64_t elem_off) const {
    return {addr + 4 * elem_off, data ? data + elem_off : nullptr};
  }
};

/// Engine-owned scratch allocation. The storage member is populated only by the
/// functional engine; the trace engine allocates address space alone.
struct Scratch {
  BufView view;
  std::shared_ptr<std::vector<float>> storage;
};

/// Bump allocator for virtual addresses. Page-aligns every allocation so
/// distinct buffers never share a cache line in the simulator.
class VirtualArena {
 public:
  std::uint64_t allocate(std::uint64_t bytes) {
    const std::uint64_t addr = next_;
    const std::uint64_t aligned = (bytes + kPage - 1) & ~(kPage - 1);
    next_ += aligned + kPage;  // guard page between buffers
    return addr;
  }

 private:
  static constexpr std::uint64_t kPage = 4096;
  std::uint64_t next_ = 1ull << 20;
};

}  // namespace vlacnn

// In-order vector pipeline timing model (the cycle-accounting half of the gem5
// substitute).
//
// Cycle model, per event:
//   vector arithmetic  : startup + ceil(vl / lanes)
//   vector unit-stride : startup + max(ceil(vl / lanes), lines) issue occupancy,
//                        plus a memory stall that is the max of a latency term
//                        (misses x level latency, divided by the MLP overlap
//                        factor) and a bandwidth term (DRAM bytes / peak BW).
//   strided / indexed  : element-at-a-time address generation throughput.
//   reduction          : log2(vl) tree steps.
//   scalar             : ops / issue width; scalar memory goes through L1.
//
// The three mechanisms the papers' co-design results hinge on all fall out of
// this model plus the trace-driven cache simulation:
//   1. per-instruction startup amortises with longer vectors (VLEN scaling),
//   2. longer vectors enlarge the reuse footprint, raising capacity misses when
//      L2 is small (the Table III miss-rate trend, the 4096-bit GEMM collapse),
//   3. lanes bound element throughput (lane-scaling study).
//
// Sampled simulation: every increment is multiplied by the current scale factor
// (see push_scale), so a kernel may simulate a deterministic fraction of its
// outer loop and report extrapolated totals.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/memory_system.h"
#include "vpu/vpu_config.h"

namespace vlacnn {

class Pmu;

/// Tunable cost parameters. Defaults are calibrated so absolute cycle counts for
/// the paper's workloads land in the same decade as the reported gem5 numbers.
/// The divisor-bearing fields (scalar_ipc, strided/indexed_lane_divisor,
/// miss_overlap, cache_bytes_per_cycle) must be positive — the TimingModel
/// constructor throws std::invalid_argument otherwise, since they all appear
/// on the right of a division in the cycle model.
struct TimingConfig {
  double vec_startup_cycles = 10.0;   ///< per-vector-instruction overhead
  double scalar_ipc = 2.0;            ///< in-order dual-issue scalar core
  double strided_lane_divisor = 4.0;  ///< strided tput = lanes/divisor elem/cyc
  double indexed_lane_divisor = 8.0;  ///< gather/scatter tput
  double miss_overlap = 4.0;          ///< outstanding-miss parallelism (MLP)
  double store_latency_factor = 0.25; ///< stores mostly retire via write buffer
  double cache_bytes_per_cycle = 64.0;///< cache-to-VPU line bandwidth
  bool sw_prefetch_effective = false; ///< RVV toolchain drops prefetches (Paper I)
};

enum class MemPattern { kUnit, kStrided, kIndexed };

/// Scaled statistics accumulated over a simulation.
///
/// Accounting invariant: the four cycle buckets exactly partition `cycles` —
/// every event that advances `cycles` charges the same amount to exactly one
/// bucket (compute for vector arithmetic/reductions, mem_issue for vector
/// memory occupancy, mem_stall for the stall the memory system adds on top,
/// scalar for scalar ops/memory and software prefetch overhead). So
/// bucket_sum() == cycles up to floating-point reassociation: the buckets sum
/// in a different order than `cycles` accumulates, so tests must compare with
/// a relative tolerance (~1e-9), not bitwise (see
/// TimingModel.BucketsReconcileWithTotalForEveryAlgorithm in
/// tests/test_vpu.cpp). The report layer relies on this to present the
/// split as percentages of the total.
struct TimingStats {
  double cycles = 0;
  double compute_cycles = 0;     // vector arithmetic occupancy
  double mem_issue_cycles = 0;   // vector memory occupancy
  double mem_stall_cycles = 0;   // miss latency / bandwidth stalls
  double scalar_cycles = 0;
  double vec_instructions = 0;
  double vec_elems = 0;          // total elements processed by vector insns
  double flops = 0;              // floating point ops (2 per FMA element)
  double first_level_accesses = 0;  // line probes at the VPU-facing level
  double first_level_misses = 0;
  double l2_accesses = 0;
  double l2_misses = 0;
  double mem_bytes = 0;

  double avg_vl() const {
    return vec_instructions > 0 ? vec_elems / vec_instructions : 0.0;
  }
  /// Sum of the four attribution buckets; equals `cycles` up to FP
  /// reassociation (see the invariant above).
  double bucket_sum() const {
    return compute_cycles + mem_issue_cycles + mem_stall_cycles +
           scalar_cycles;
  }
  double l2_miss_rate() const {
    return l2_accesses > 0 ? l2_misses / l2_accesses : 0.0;
  }
};

class TimingModel {
 public:
  TimingModel(const VpuConfig& vpu, MemorySystem* mem,
              const TimingConfig& config = {});

  // -- sampling ---------------------------------------------------------------
  void push_scale(double s);
  void pop_scale();
  double current_scale() const { return scale_; }

  // -- events -----------------------------------------------------------------
  void vec_arith(std::uint64_t vl, std::uint32_t flops_per_elem = 2);
  void vec_reduce(std::uint64_t vl);
  void vec_mem(std::uint64_t addr, std::uint64_t vl, std::int64_t stride_bytes,
               MemPattern pattern, bool write);
  void prefetch(std::uint64_t addr, std::uint64_t bytes);
  void scalar_ops(std::uint64_t n);
  void scalar_mem(std::uint64_t addr, std::uint64_t bytes, bool write);

  const TimingStats& stats() const { return stats_; }
  const VpuConfig& vpu() const { return vpu_; }
  MemorySystem* memory() const { return mem_; }
  const TimingConfig& config() const { return config_; }

  // -- profiling (DESIGN.md §14) ----------------------------------------------
  /// Attach a PMU: every event hands it the updated aggregate stats (counter
  /// windows), and pmu_begin/pmu_end delimit algorithm phases. Null detaches;
  /// the disabled path is one pointer check per event.
  void set_pmu(Pmu* pmu) { pmu_ = pmu; }
  Pmu* pmu() const { return pmu_; }
  /// Open/close an algorithm phase on the attached PMU; no-ops when detached.
  /// Kernels normally use the PmuPhase RAII guard (vpu/pmu.h) instead.
  void pmu_begin(const char* name);
  void pmu_end();

 private:
  void account_mem_result(const AccessResult& r, bool write, MemPattern pattern,
                          std::uint64_t l2_acc_delta,
                          std::uint64_t l2_miss_delta);

  VpuConfig vpu_;
  MemorySystem* mem_;  // may be null: pure op counting without cache behaviour
  TimingConfig config_;
  TimingStats stats_;
  double scale_ = 1.0;
  std::vector<double> scale_stack_;
  Pmu* pmu_ = nullptr;  // not owned; null when profiling is off
};

/// RAII sampling-scale guard: push_scale on entry, pop_scale on exit — also
/// on exceptional exit, which the manual push/pop pairs it replaced did not
/// guarantee. Inert when constructed with a null model (the FunctionalEngine
/// may run without timing) so kernels can scope it unconditionally:
///
///   ScaledRegion scaled(sample && run < total ? eng.timing() : nullptr,
///                       static_cast<double>(total) / run);
class ScaledRegion {
 public:
  ScaledRegion(TimingModel* tm, double scale) : tm_(tm) {
    if (tm_ != nullptr) tm_->push_scale(scale);
  }
  ~ScaledRegion() {
    if (tm_ != nullptr) tm_->pop_scale();
  }
  ScaledRegion(const ScaledRegion&) = delete;
  ScaledRegion& operator=(const ScaledRegion&) = delete;

 private:
  TimingModel* tm_;
};

}  // namespace vlacnn

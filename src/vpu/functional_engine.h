// FunctionalEngine: executes a kernel's vector program *numerically*, with the
// exact vsetvl/predication semantics of the trace engine. Used by correctness
// tests, the example applications, and hybrid runs that validate that the trace
// engine sees the same instruction stream (attach a TimingModel to get timing
// alongside the numbers).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vpu/buffer.h"
#include "vpu/timing_model.h"
#include "vpu/vpu_config.h"

namespace vlacnn {

class FunctionalEngine {
 public:
  /// A real vector register: up to the architectural maximum of 512 fp32 lanes.
  /// Only the first `vl` elements are meaningful (tail-undisturbed semantics are
  /// not needed by the kernels, which always operate under setvl).
  struct Vec {
    std::uint32_t vl = 0;
    std::array<float, kMaxVlElems> v{};
  };

  /// timing may be null for fast numeric-only execution.
  explicit FunctionalEngine(const VpuConfig& vpu, TimingModel* timing = nullptr)
      : vpu_(vpu), timing_(timing) {}

  const VpuConfig& vpu() const { return vpu_; }
  TimingModel* timing() const { return timing_; }
  static constexpr bool computes() { return true; }

  std::uint64_t setvl(std::uint64_t requested) const {
    return vpu_.setvl(requested);
  }

  // -- memory -----------------------------------------------------------------
  /// Register an external array. The const_cast is internal plumbing: kernels
  /// never write through views of their inputs.
  BufView bind(const float* data, std::uint64_t elems) {
    return {arena_.allocate(elems * 4), const_cast<float*>(data)};
  }
  Scratch alloc(std::uint64_t elems) {
    auto storage = std::make_shared<std::vector<float>>(elems, 0.0f);
    return {BufView{arena_.allocate(elems * 4), storage->data()}, storage};
  }

  Vec vload(BufView src, std::uint64_t off, std::uint64_t vl) {
    if (timing_) timing_->vec_mem(src.addr + 4 * off, vl, 4, MemPattern::kUnit, false);
    Vec r;
    r.vl = static_cast<std::uint32_t>(vl);
    std::copy_n(src.data + off, vl, r.v.begin());
    return r;
  }
  Vec vload_strided(BufView src, std::uint64_t off, std::int64_t stride_elems,
                    std::uint64_t vl) {
    if (timing_) {
      timing_->vec_mem(src.addr + 4 * off, vl, stride_elems * 4,
                       MemPattern::kStrided, false);
    }
    Vec r;
    r.vl = static_cast<std::uint32_t>(vl);
    for (std::uint64_t i = 0; i < vl; ++i) {
      r.v[i] = src.data[off + static_cast<std::int64_t>(i) * stride_elems];
    }
    return r;
  }
  Vec vgather(BufView src, std::uint64_t off, const std::uint32_t* idx,
              std::uint64_t vl) {
    if (timing_) {
      timing_->vec_mem(src.addr + 4 * off, vl, 4, MemPattern::kIndexed, false);
    }
    Vec r;
    r.vl = static_cast<std::uint32_t>(vl);
    for (std::uint64_t i = 0; i < vl; ++i) r.v[i] = src.data[off + idx[i]];
    return r;
  }
  void vstore(const Vec& v, BufView dst, std::uint64_t off) {
    if (timing_) timing_->vec_mem(dst.addr + 4 * off, v.vl, 4, MemPattern::kUnit, true);
    std::copy_n(v.v.begin(), v.vl, dst.data + off);
  }
  void vstore_strided(const Vec& v, BufView dst, std::uint64_t off,
                      std::int64_t stride_elems) {
    if (timing_) {
      timing_->vec_mem(dst.addr + 4 * off, v.vl, stride_elems * 4,
                       MemPattern::kStrided, true);
    }
    for (std::uint32_t i = 0; i < v.vl; ++i) {
      dst.data[off + static_cast<std::int64_t>(i) * stride_elems] = v.v[i];
    }
  }
  void prefetch(BufView b, std::uint64_t off, std::uint64_t bytes) {
    if (timing_) timing_->prefetch(b.addr + 4 * off, bytes);
  }

  float scalar_load(BufView b, std::uint64_t off) {
    if (timing_) timing_->scalar_mem(b.addr + 4 * off, 4, false);
    return b.data[off];
  }
  void scalar_store(BufView b, std::uint64_t off, float value) {
    if (timing_) timing_->scalar_mem(b.addr + 4 * off, 4, true);
    b.data[off] = value;
  }

  // -- arithmetic ---------------------------------------------------------------
  Vec vbroadcast(float s, std::uint64_t vl) {
    if (timing_) timing_->vec_arith(vl, 0);
    Vec r;
    r.vl = static_cast<std::uint32_t>(vl);
    std::fill_n(r.v.begin(), vl, s);
    return r;
  }
  void vfma_vv(Vec& acc, const Vec& a, const Vec& b) {
    assert(acc.vl == a.vl && acc.vl == b.vl);
    if (timing_) timing_->vec_arith(acc.vl, 2);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] += a.v[i] * b.v[i];
  }
  void vfma_vs(Vec& acc, float s, const Vec& b) {
    assert(acc.vl == b.vl);
    if (timing_) timing_->vec_arith(acc.vl, 2);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] += s * b.v[i];
  }
  void vadd_vv(Vec& acc, const Vec& b) {
    assert(acc.vl == b.vl);
    if (timing_) timing_->vec_arith(acc.vl, 1);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] += b.v[i];
  }
  void vsub_vv(Vec& acc, const Vec& b) {
    assert(acc.vl == b.vl);
    if (timing_) timing_->vec_arith(acc.vl, 1);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] -= b.v[i];
  }
  void vmul_vv(Vec& acc, const Vec& b) {
    assert(acc.vl == b.vl);
    if (timing_) timing_->vec_arith(acc.vl, 1);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] *= b.v[i];
  }
  void vmul_vs(Vec& acc, float s) {
    if (timing_) timing_->vec_arith(acc.vl, 1);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] *= s;
  }
  void vadd_vs(Vec& acc, float s) {
    if (timing_) timing_->vec_arith(acc.vl, 1);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] += s;
  }
  void vmax_vs(Vec& acc, float s) {
    if (timing_) timing_->vec_arith(acc.vl, 1);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] = std::max(acc.v[i], s);
  }
  void vleaky(Vec& acc, float slope) {
    if (timing_) timing_->vec_arith(acc.vl, 2);
    for (std::uint32_t i = 0; i < acc.vl; ++i) {
      if (acc.v[i] < 0.0f) acc.v[i] *= slope;
    }
  }
  float vredsum(const Vec& v) {
    if (timing_) timing_->vec_reduce(v.vl);
    float s = 0.0f;
    for (std::uint32_t i = 0; i < v.vl; ++i) s += v.v[i];
    return s;
  }
  float vredmax(const Vec& v) {
    if (timing_) timing_->vec_reduce(v.vl);
    float s = -3.4e38f;
    for (std::uint32_t i = 0; i < v.vl; ++i) s = std::max(s, v.v[i]);
    return s;
  }
  /// Vectorised exponential (polynomial approximation on real hardware).
  void vexp(Vec& acc) {
    if (timing_) timing_->vec_arith(acc.vl, 4);
    for (std::uint32_t i = 0; i < acc.vl; ++i) acc.v[i] = std::exp(acc.v[i]);
  }

  void scalar_ops(std::uint64_t n) {
    if (timing_) timing_->scalar_ops(n);
  }

 private:
  VpuConfig vpu_;
  TimingModel* timing_;
  VirtualArena arena_;
};

}  // namespace vlacnn

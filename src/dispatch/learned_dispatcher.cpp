#include "dispatch/learned_dispatcher.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "algos/conv_args.h"
#include "ml/dataset.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "report/collector.h"

namespace vlacnn::dispatch {

double default_dispatch_cycles() {
  const char* v = std::getenv("VLACNN_DISPATCH_CYCLES");
  if (v == nullptr) return kDefaultDispatchCyclesPerLayer;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(parsed > 0) || !std::isfinite(parsed)) {
    throw std::runtime_error(
        "VLACNN_DISPATCH_CYCLES: expected a positive number of cycles, got '" +
        std::string(v) + "'");
  }
  return parsed;
}

namespace {

/// Index of the forest's fallback algorithm when its prediction is not
/// applicable to a layer: gemm6, the repo-wide universal fallback (see
/// SweepDriver::network_rows), by kAllAlgos position.
std::size_t gemm6_index() {
  for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
    if (kAllAlgos[a] == Algo::kGemm6) return a;
  }
  return 0;  // unreachable with the current registry
}

}  // namespace

LearnedDispatcher::LearnedDispatcher(const FlatForest* forest,
                                     LayerCycleTable table,
                                     std::vector<std::vector<float>> features,
                                     double weight_bytes,
                                     const DispatchConfig& cfg)
    : forest_(forest),
      table_(std::move(table)),
      cfg_(cfg),
      rng_(cfg.seed) {
  if (forest_ == nullptr) {
    throw std::invalid_argument("dispatch: null forest");
  }
  if (table_.empty() || features.size() != table_.size()) {
    throw std::invalid_argument(
        "dispatch: cycle table and feature vectors must cover the same "
        "non-empty layer set");
  }
  if (!(cfg_.dispatch_cycles_per_layer > 0)) {
    throw std::invalid_argument(
        "dispatch: dispatch_cycles_per_layer must be positive");
  }
  if (!(cfg_.epsilon >= 0) || cfg_.epsilon > 1) {
    throw std::invalid_argument("dispatch: epsilon must be in [0, 1]");
  }
  if (!(cfg_.mem_bytes_per_cycle > 0)) {
    throw std::invalid_argument(
        "dispatch: mem_bytes_per_cycle must be positive");
  }
  weight_cycles_ = weight_bytes / cfg_.mem_bytes_per_cycle;

  const std::size_t layers = table_.size();
  stats_.layers = static_cast<int>(layers);
  plan_.resize(layers);
  untried_.resize(layers);

  const std::size_t fallback = gemm6_index();
  for (std::size_t l = 0; l < layers; ++l) {
    // Oracle argmin over applicable algorithms (lowest index wins ties, the
    // same order network_optimal reduces in).
    std::size_t oracle = kAllAlgos.size();
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
      const double c = table_[l][a];
      if (std::isnan(c)) continue;
      if (!(c > 0)) {
        throw std::invalid_argument("dispatch: non-positive cycles at layer " +
                                    std::to_string(l));
      }
      if (c < best) {
        best = c;
        oracle = a;
      }
    }
    if (oracle == kAllAlgos.size()) {
      throw std::invalid_argument("dispatch: layer " + std::to_string(l) +
                                  " has no applicable algorithm");
    }
    oracle_per_image_ += best;

    int predicted = forest_->predict(features[l]);
    if (predicted < 0 || static_cast<std::size_t>(predicted) >= kAllAlgos.size() ||
        std::isnan(table_[l][static_cast<std::size_t>(predicted)])) {
      predicted = static_cast<int>(
          std::isnan(table_[l][fallback]) ? oracle : fallback);
    }
    plan_[l] = predicted;

    if (static_cast<std::size_t>(predicted) != oracle) {
      ++stats_.mispredicted_layers;
      // Everything applicable except the (already observed) prediction is
      // fair game for exploration; a correctly-predicted layer is converged
      // from the start and never pays exploration cost.
      for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
        if (a == static_cast<std::size_t>(predicted)) continue;
        if (!std::isnan(table_[l][a])) {
          untried_[l].push_back(static_cast<int>(a));
        }
      }
    }
  }
}

bool LearnedDispatcher::converged() const {
  for (const auto& u : untried_) {
    if (!u.empty()) return false;
  }
  return true;
}

double LearnedDispatcher::service_cycles(int batch) {
  if (batch < 1) {
    throw std::invalid_argument("dispatch: batch must be >= 1");
  }
  ++stats_.batches;
  stats_.images += static_cast<std::uint64_t>(batch);
  last_explored_.clear();

  double per_image = 0;
  for (std::size_t l = 0; l < plan_.size(); ++l) {
    std::size_t choice = static_cast<std::size_t>(plan_[l]);
    auto& untried = untried_[l];
    if (!untried.empty() && rng_.next_float() < cfg_.epsilon) {
      // Explore one untried applicable algorithm; the whole batch pays its
      // (possibly worse) cycles — the honest cost of learning online.
      const std::size_t pick = untried.size() == 1
                                   ? 0
                                   : static_cast<std::size_t>(rng_.next_below(
                                         untried.size()));
      choice = static_cast<std::size_t>(untried[pick]);
      untried.erase(untried.begin() + static_cast<std::ptrdiff_t>(pick));
      ++stats_.explorations;
      last_explored_.emplace_back(l, choice);
      // Greedy adoption: keep the best algorithm observed so far. Ties keep
      // the incumbent, matching the oracle's lowest-index reduction only
      // once the true argmin has been observed — which is the point.
      if (table_[l][choice] < table_[l][static_cast<std::size_t>(plan_[l])]) {
        plan_[l] = static_cast<int>(choice);
      }
    }
    per_image += table_[l][choice];
  }

  const double b = static_cast<double>(batch);
  stats_.learned_conv_cycles += b * per_image;
  stats_.oracle_conv_cycles += b * oracle_per_image_;
  const double selector =
      b * static_cast<double>(stats_.layers) * cfg_.dispatch_cycles_per_layer;
  stats_.selector_cycles += selector;

  // Same batching economics as serving::batch_cost_model: the first image of
  // a batch streams the conv weights from DRAM, later images reuse them, and
  // the amortizable share is clamped to half the per-image cost.
  last_per_image_ = per_image;
  const double amortizable = std::min(weight_cycles_, 0.5 * per_image);
  return per_image + (b - 1.0) * (per_image - amortizable) + selector;
}

void LearnedDispatcher::trace_annotations(std::vector<obs::TraceNote>& out) {
  const auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  out.push_back({"dispatch", "learned"});
  std::string plan;
  for (std::size_t l = 0; l < plan_.size(); ++l) {
    if (!plan.empty()) plan += ',';
    plan += to_string(kAllAlgos[static_cast<std::size_t>(plan_[l])]);
  }
  out.push_back({"plan", std::move(plan)});
  std::string explored;
  for (const auto& [l, a] : last_explored_) {
    if (!explored.empty()) explored += ',';
    explored += "conv" + std::to_string(l + 1) + ':' + to_string(kAllAlgos[a]);
  }
  out.push_back({"explore", explored.empty() ? "none" : std::move(explored)});
  out.push_back({"converged", converged() ? "true" : "false"});
  out.push_back({"conv_cycles_per_image", num(last_per_image_)});
  out.push_back({"oracle_cycles_per_image", num(oracle_per_image_)});
  out.push_back(
      {"selector_cycles_per_image",
       num(static_cast<double>(stats_.layers) * cfg_.dispatch_cycles_per_layer)});
}

namespace {

/// Factory-built wrapper: forwards service_cycles to the dispatcher and, on
/// destruction (the planner destroys it right after the point's simulation
/// completes), publishes the final stats to obs metrics and the report
/// collector. Destruction order inside the planner guarantees the stats are
/// final; the collector/metrics sinks are thread-safe and keyed/commutative,
/// so concurrent grid points publish safely.
class ReportingLearnedModel final : public serving::ServiceModel {
 public:
  ReportingLearnedModel(std::unique_ptr<LearnedDispatcher> d,
                        std::shared_ptr<const FlatForest> forest,
                        report::DispatchCell cell)
      : d_(std::move(d)), forest_(std::move(forest)), cell_(std::move(cell)) {}

  double service_cycles(int batch) override {
    return d_->service_cycles(batch);
  }

  void trace_annotations(std::vector<obs::TraceNote>& out) override {
    d_->trace_annotations(out);
  }

  ~ReportingLearnedModel() override {
    const DispatchStats& s = d_->stats();
    if (obs::metrics_enabled()) {
      auto& reg = obs::Registry::global();
      reg.counter("dispatch.batches").add(s.batches);
      reg.counter("dispatch.images").add(s.images);
      reg.counter("dispatch.explorations").add(s.explorations);
      reg.counter("dispatch.mispredicted_layers")
          .add(static_cast<std::uint64_t>(s.mispredicted_layers));
      // Distribution of per-point gaps in basis points: bucket counts are
      // order-independent, so the histogram is deterministic across thread
      // counts; the float gauge keeps the last finished point's exact gap.
      reg.histogram("dispatch.oracle_gap_bp")
          .observe(static_cast<std::uint64_t>(
              std::llround(std::max(s.oracle_gap(), 0.0) * 1e4)));
      reg.float_gauge("dispatch.last_oracle_gap").set(s.oracle_gap());
    }
    if (report::enabled()) {
      cell_.layers = s.layers;
      cell_.mispredicted_layers = s.mispredicted_layers;
      cell_.batches = s.batches;
      cell_.images = s.images;
      cell_.explorations = s.explorations;
      cell_.learned_conv_cycles = s.learned_conv_cycles;
      cell_.oracle_conv_cycles = s.oracle_conv_cycles;
      cell_.selector_cycles = s.selector_cycles;
      cell_.oracle_gap = s.oracle_gap();
      report::Collector::global().record_dispatch(cell_);
    }
  }

 private:
  std::unique_ptr<LearnedDispatcher> d_;
  std::shared_ptr<const FlatForest> forest_;  ///< keeps d_'s forest alive
  report::DispatchCell cell_;
};

}  // namespace

serving::ServiceModelFactory learned_service_factory(
    std::shared_ptr<const FlatForest> forest, SweepDriver* driver,
    const Network& net, const DispatchConfig& cfg) {
  if (forest == nullptr || driver == nullptr) {
    throw std::invalid_argument(
        "dispatch: factory needs a forest and a driver");
  }
  const double weight_bytes = serving::conv_weight_bytes(net);
  // The Network is copied into the closure: grid evaluation outlives many a
  // caller-scope Network, and the copy is a handful of layer descriptors.
  return [forest = std::move(forest), driver, net, weight_bytes,
          cfg](const ServingPoint& point)
             -> std::unique_ptr<serving::ServiceModel> {
    const std::uint64_t l2_slice = point.l2_slice_bytes();
    LayerCycleTable table =
        driver->layer_algo_cycles(net, point.vlen_bits, l2_slice);
    const auto descs = net.conv_descs();
    std::vector<std::vector<float>> features;
    features.reserve(descs.size());
    for (const ConvLayerDesc& d : descs) {
      features.push_back(selection_features(point.vlen_bits, l2_slice, d));
    }
    auto dispatcher = std::make_unique<LearnedDispatcher>(
        forest.get(), std::move(table), std::move(features), weight_bytes,
        cfg);
    report::DispatchCell cell;
    cell.net = net.name();
    cell.cores = point.cores;
    cell.vlen_bits = point.vlen_bits;
    cell.l2_total_bytes = point.l2_total_bytes;
    cell.instances = point.instances;
    return std::make_unique<ReportingLearnedModel>(std::move(dispatcher),
                                                   forest, std::move(cell));
  };
}

}  // namespace vlacnn::dispatch

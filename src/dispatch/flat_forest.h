// Compiled form of the fitted random forest for the serving hot path.
//
// RandomForest::predict walks each tree's private node vector through a
// virtual-free but pointer-heavy loop and tallies votes into a heap-allocated
// vector per call. That is fine offline (bench_rf_accuracy) but not in a
// dispatcher consulted per request per layer. FlatForest lowers a fitted
// forest once into one contiguous node array (all trees concatenated,
// child links rebased to absolute indices) and predicts with a stack vote
// array — no allocation, no per-tree indirection, nanoseconds per call
// (bench_dispatch_overhead measures it against the pointer-walk baseline).
//
// Lowering is also where tree integrity is enforced: every leaf label must
// lie in [0, num_labels) and every link must stay inside its own tree, so a
// corrupt tree fails loudly at compile time instead of voting out of bounds
// at dispatch time. Prediction ties resolve to the lowest label, matching
// RandomForest::predict exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/random_forest.h"

namespace vlacnn::dispatch {

class FlatForest {
 public:
  /// Vote tally lives on the stack, which bounds the label space; 16 covers
  /// kAllAlgos (4) with room for any future algorithm registry.
  static constexpr int kMaxLabels = 16;

  /// Lower `forest` (which must be fitted). `num_labels` is the size of the
  /// label space (Dataset::num_classes()); throws std::invalid_argument on an
  /// unfitted forest, num_labels outside [1, kMaxLabels], or any tree whose
  /// labels/links fail validation.
  FlatForest(const RandomForest& forest, int num_labels);

  /// Majority vote over all trees; ties resolve to the lowest label. `x` must
  /// have exactly num_features() elements (throws std::invalid_argument).
  int predict(const float* x, std::size_t n) const;
  int predict(const std::vector<float>& x) const {
    return predict(x.data(), x.size());
  }

  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return nodes_.size(); }
  int num_labels() const { return num_labels_; }
  std::size_t num_features() const { return num_features_; }

 private:
  /// One lowered node. Interior: feature >= 0, children are absolute indices
  /// into nodes_. Leaf: feature == -1, left holds the label, right unused.
  struct Node {
    std::int32_t feature;
    float threshold;
    std::int32_t left;
    std::int32_t right;
  };

  std::vector<Node> nodes_;         ///< all trees, concatenated
  std::vector<std::int32_t> roots_; ///< root node index per tree
  int num_labels_ = 0;
  std::size_t num_features_ = 0;
};

}  // namespace vlacnn::dispatch

#include "dispatch/flat_forest.h"

#include <stdexcept>
#include <string>

namespace vlacnn::dispatch {

FlatForest::FlatForest(const RandomForest& forest, int num_labels) {
  if (forest.tree_count() == 0) {
    throw std::invalid_argument("flat_forest: forest is not fitted");
  }
  if (num_labels < 1 || num_labels > kMaxLabels) {
    throw std::invalid_argument("flat_forest: num_labels " +
                                std::to_string(num_labels) +
                                " outside [1, " + std::to_string(kMaxLabels) +
                                "]");
  }
  num_labels_ = num_labels;
  num_features_ = forest.num_features();

  std::size_t total = 0;
  for (const DecisionTree& t : forest.trees()) total += t.node_count();
  nodes_.reserve(total);
  roots_.reserve(forest.tree_count());

  for (std::size_t ti = 0; ti < forest.trees().size(); ++ti) {
    const auto& src = forest.trees()[ti].nodes();
    if (src.empty()) {
      throw std::invalid_argument("flat_forest: tree " + std::to_string(ti) +
                                  " has no nodes");
    }
    const std::int32_t base = static_cast<std::int32_t>(nodes_.size());
    roots_.push_back(base);  // DecisionTree roots its node vector at index 0
    const std::int32_t n = static_cast<std::int32_t>(src.size());
    for (std::int32_t i = 0; i < n; ++i) {
      const DecisionTree::Node& s = src[static_cast<std::size_t>(i)];
      Node d;
      if (s.feature < 0) {
        if (s.label < 0 || s.label >= num_labels) {
          throw std::invalid_argument(
              "flat_forest: tree " + std::to_string(ti) + " leaf label " +
              std::to_string(s.label) + " outside [0, " +
              std::to_string(num_labels) + ")");
        }
        d = Node{-1, 0.0f, s.label, -1};
      } else {
        if (static_cast<std::size_t>(s.feature) >= num_features_) {
          throw std::invalid_argument(
              "flat_forest: tree " + std::to_string(ti) + " splits on feature " +
              std::to_string(s.feature) + " but the forest has " +
              std::to_string(num_features_) + " features");
        }
        if (s.left < 0 || s.left >= n || s.right < 0 || s.right >= n) {
          throw std::invalid_argument(
              "flat_forest: tree " + std::to_string(ti) +
              " has a child link outside the tree");
        }
        d = Node{s.feature, s.threshold, base + s.left, base + s.right};
      }
      nodes_.push_back(d);
    }
  }
}

int FlatForest::predict(const float* x, std::size_t n) const {
  if (n != num_features_) {
    throw std::invalid_argument("flat_forest: expected " +
                                std::to_string(num_features_) +
                                " features, got " + std::to_string(n));
  }
  int votes[kMaxLabels] = {0};
  for (const std::int32_t root : roots_) {
    std::int32_t i = root;
    while (nodes_[static_cast<std::size_t>(i)].feature >= 0) {
      const Node& nd = nodes_[static_cast<std::size_t>(i)];
      i = x[nd.feature] <= nd.threshold ? nd.left : nd.right;
    }
    ++votes[nodes_[static_cast<std::size_t>(i)].left];
  }
  int best = 0;
  for (int l = 1; l < num_labels_; ++l) {
    if (votes[l] > votes[best]) best = l;  // strict: ties keep the lowest label
  }
  return best;
}

}  // namespace vlacnn::dispatch

// Learned per-layer algorithm dispatch for the request-level serving
// simulator (ROADMAP item 2, DESIGN.md §11).
//
// The paper's random forest picks the fastest convolution algorithm per layer
// with ~92.8% accuracy; this module puts that selector in the serving hot
// path with its inference cost charged to the request, instead of assuming
// the precomputed `network_optimal` oracle. A LearnedDispatcher is a
// serving::ServiceModel: on every dispatched batch it prices the current
// per-layer plan from the sweep-cache ground truth (layer_algo_cycles),
// charges dispatch_cycles_per_layer of selector overhead per image per layer,
// and epsilon-greedily re-explores the layers the forest got wrong until it
// has observed every applicable algorithm there — converging to the oracle
// plan while paying, honestly, for every exploration batch along the way.
//
// Determinism: the dispatcher draws only from its own seeded Rng and the
// deterministic cycle table, so a (table, forest, config) triple replays the
// same plan sequence on every run and thread count — the capacity planner's
// byte-identical-JSON guarantee extends to learned dispatch.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dispatch/flat_forest.h"
#include "net/network.h"
#include "serving/request_sim.h"
#include "sweep/sweep.h"

namespace vlacnn::dispatch {

/// The calibrated default of DispatchConfig::dispatch_cycles_per_layer:
/// bench_dispatch_overhead measures the flattened 100-tree depth-10 forest at
/// ~1.4 µs per prediction, i.e. ~2.9k cycles at the repo's 2 GHz presentation
/// clock (BENCH_dispatch_overhead.json); the default rounds that up to 4000
/// for headroom. Recalibrate the constant and the baseline JSON together.
inline constexpr double kDefaultDispatchCyclesPerLayer = 4000.0;

/// kDefaultDispatchCyclesPerLayer, overridable via the VLACNN_DISPATCH_CYCLES
/// env knob (a positive number of cycles). Parsed once per call — callers
/// resolve it when building a DispatchConfig. Throws std::runtime_error on a
/// malformed or non-positive value: a typo must not silently zero the
/// selector's cost.
double default_dispatch_cycles();

/// Tunables of the learned dispatch path.
struct DispatchConfig {
  /// Selector cycles charged per image per conv layer. Must be positive.
  double dispatch_cycles_per_layer = kDefaultDispatchCyclesPerLayer;
  /// Per-batch probability that an unconverged (mispredicted) layer tries one
  /// of its untried applicable algorithms. In [0, 1].
  double epsilon = 0.2;
  /// Seed of the dispatcher's private exploration Rng.
  std::uint64_t seed = 0x1dea;
  /// DRAM stream rate used to amortize weight traffic across a batch, as in
  /// serving::batch_cost_model. Must be positive.
  double mem_bytes_per_cycle = 6.4;
};

/// Running totals of one dispatcher's life. Conv cycle fields are summed over
/// every simulated image, so learned/oracle are directly comparable.
struct DispatchStats {
  int layers = 0;               ///< conv layers dispatched per image
  int mispredicted_layers = 0;  ///< initial forest picks != oracle argmin
  std::uint64_t batches = 0;
  std::uint64_t images = 0;
  std::uint64_t explorations = 0;  ///< exploration dispatches taken
  double learned_conv_cycles = 0;  ///< conv cycles actually paid
  double oracle_conv_cycles = 0;   ///< conv cycles the oracle would have paid
  double selector_cycles = 0;      ///< forest-inference cycles charged

  /// (learned + selector) / oracle - 1; 0 before any batch.
  double oracle_gap() const {
    return oracle_conv_cycles > 0
               ? (learned_conv_cycles + selector_cycles) / oracle_conv_cycles -
                     1.0
               : 0.0;
  }
};

/// Per-(layer, algorithm) ground truth for one hardware point, in the shape
/// SweepDriver::layer_algo_cycles returns (NaN = not applicable).
using LayerCycleTable = std::vector<std::array<double, kAllAlgos.size()>>;

class LearnedDispatcher final : public serving::ServiceModel {
 public:
  /// `table[l][a]` prices kAllAlgos[a] on layer l; `features[l]` is layer l's
  /// selector feature vector (selection_features at this hardware point);
  /// `weight_bytes` is the network's conv-weight footprint
  /// (serving::conv_weight_bytes) — the per-batch amortizable share is
  /// weight_bytes / cfg.mem_bytes_per_cycle, clamped to half the per-image
  /// cost exactly like serving::batch_cost_model. Throws
  /// std::invalid_argument on size mismatches, a layer with no applicable
  /// algorithm, or an invalid config.
  LearnedDispatcher(const FlatForest* forest, LayerCycleTable table,
                    std::vector<std::vector<float>> features,
                    double weight_bytes, const DispatchConfig& cfg);

  /// Price one batch: current plan's conv cycles (with the batch's weight
  /// traffic amortized exactly as serving::batch_cost_model does) plus the
  /// selector's per-image, per-layer overhead. Advances the bandit state.
  double service_cycles(int batch) override;

  /// Request-trace notes for the most recent service_cycles() call: the plan
  /// served (comma-joined algos), which layers this batch explored (the
  /// exploration flag), convergence state, and the predicted-vs-oracle
  /// per-image conv cycles plus the selector charge — everything a trace
  /// needs to blame a slow request on a dispatch decision.
  void trace_annotations(std::vector<obs::TraceNote>& out) override;

  const DispatchStats& stats() const { return stats_; }

  /// Current plan as indices into kAllAlgos.
  const std::vector<int>& plan() const { return plan_; }

  /// True once every initially-mispredicted layer has observed all of its
  /// applicable algorithms (the plan is then the oracle plan).
  bool converged() const;

 private:
  const FlatForest* forest_;
  LayerCycleTable table_;
  DispatchConfig cfg_;
  Rng rng_;
  double weight_cycles_ = 0;        ///< amortizable DRAM cycles per batch
  double oracle_per_image_ = 0;     ///< sum of per-layer minima
  std::vector<int> plan_;           ///< best algo observed so far, per layer
  std::vector<std::vector<int>> untried_;  ///< applicable-but-unobserved algos
  DispatchStats stats_;
  /// Most recent batch, for trace_annotations: per-image conv cycles of the
  /// choices actually served, and the (layer, algo) exploration picks.
  double last_per_image_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> last_explored_;
};

/// A ServiceModelFactory for CapacityPlanner::evaluate_grid: each grid point
/// gets its own LearnedDispatcher over that point's (vlen, L2-slice) cycle
/// table and feature vectors, sharing one immutable compiled forest. The
/// factory is thread-safe (SweepDriver is; the forest is read-only); each
/// returned model also publishes its end-of-simulation DispatchStats to
/// obs metrics and the report::Collector (as a DispatchCell) on destruction,
/// which the planner arranges to happen right after its simulation finishes.
serving::ServiceModelFactory learned_service_factory(
    std::shared_ptr<const FlatForest> forest, SweepDriver* driver,
    const Network& net, const DispatchConfig& cfg);

}  // namespace vlacnn::dispatch

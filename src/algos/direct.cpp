#include "algos/direct.h"

#include <algorithm>

#include "vpu/pmu.h"

namespace vlacnn {

bool direct_uses_wide(const ConvLayerDesc& d, std::uint64_t mvl) {
  return static_cast<std::uint64_t>(d.oc) >= mvl;
}

namespace {

/// Channel-wide strategy (NHWC in/out, HWIO [kh][kw][ic][oc] weights): lanes
/// span output channels — the oneDNN-style NHWC direct form. For each kernel
/// tap (ky, kx, ic), one weight-vector load is shared by a group of up to four
/// output columns whose input samples are broadcast scalars; accumulators stay
/// in registers across the whole tap loop and store unit-stride into NHWC.
template <class E>
void direct_wide(E& eng, const ConvLayerDesc& d, BufView in, BufView w,
                 BufView out, const Sampler& sampler) {
  using Vec = typename E::Vec;
  constexpr int kGroup = 4;
  const int oh = d.oh();
  const int ow = d.ow();
  const bool sample = !E::computes();

  const double work_per_row = static_cast<double>(ow) * d.oc * d.kh * d.kw * d.ic;
  const std::uint64_t rows =
      sample ? sampler.choose(oh, work_per_row) : static_cast<std::uint64_t>(oh);
  PmuPhase phase(eng.timing(), "direct-wide");
  const ScaledRegion scaled(
      sample && rows < static_cast<std::uint64_t>(oh) ? eng.timing() : nullptr,
      static_cast<double>(oh) / static_cast<double>(rows));

  for (std::uint64_t y = 0; y < rows; ++y) {
    // Valid kernel rows for this output row.
    int ky0 = 0, ky1 = d.kh;
    while (ky0 < ky1 && static_cast<int>(y) * d.stride + ky0 - d.pad < 0) ++ky0;
    while (ky1 > ky0 && static_cast<int>(y) * d.stride + ky1 - 1 - d.pad >= d.ih)
      --ky1;

    // The OC-segment loop sits above the column loop so that one weight
    // working set stays cache-resident across the row; the input-channel
    // dimension is additionally blocked so that the per-segment slab
    // (kh*kw*icb*gvl floats) never overflows a small L2 even at very long
    // vector lengths. Partial sums spill to the output row between IC blocks
    // (vector load/store, unit-stride in NHWC).
    const std::uint64_t gvl_max = eng.setvl(d.oc);
    const std::uint64_t slab_budget = (512u << 10) / 4;  // floats
    const int icb = static_cast<int>(std::max<std::uint64_t>(
        1, slab_budget / (static_cast<std::uint64_t>(d.kh) * d.kw * gvl_max)));

    for (std::uint64_t oc0 = 0; oc0 < static_cast<std::uint64_t>(d.oc);) {
      const std::uint64_t gvl = eng.setvl(d.oc - oc0);
      for (int ic0 = 0; ic0 < d.ic; ic0 += icb) {
        const int ic1 = std::min(d.ic, ic0 + icb);
        int x = 0;
        while (x < ow) {
        // Column group: up to kGroup columns with the same kx clipping.
        const int ix0 = x * d.stride - d.pad;
        const int kx0 = std::max(0, -ix0);
        const int kx1 = std::min(d.kw, d.iw - ix0);
        int group = 1;
        if (ix0 >= 0 && ix0 + d.kw <= d.iw) {
          while (group < kGroup && x + group < ow &&
                 (x + group) * d.stride - d.pad + d.kw <= d.iw) {
            ++group;
          }
        }

          Vec acc[kGroup];
          for (int t = 0; t < group; ++t) {
            acc[t] =
                ic0 == 0
                    ? eng.vbroadcast(0.0f, gvl)
                    : eng.vload(out,
                                (y * static_cast<std::uint64_t>(ow) + x + t) *
                                        d.oc +
                                    oc0,
                                gvl);
          }
          // Blocked weights: block base is contiguous at ic*kh*kw*oc0; taps
          // are unit-stride segments of gvl within the block.
          const std::uint64_t w_block =
              static_cast<std::uint64_t>(d.ic) * d.kh * d.kw * oc0;
          for (int ky = ky0; ky < ky1; ++ky) {
            const int iy = static_cast<int>(y) * d.stride + ky - d.pad;
            for (int kx = kx0; kx < kx1; ++kx) {
              for (int c = ic0; c < ic1; ++c) {
                Vec wv = eng.vload(
                    w,
                    w_block +
                        ((static_cast<std::uint64_t>(ky) * d.kw + kx) * d.ic +
                         c) *
                            gvl,
                    gvl);
                for (int t = 0; t < group; ++t) {
                  const int ix = (x + t) * d.stride + kx - d.pad;
                  const float s = eng.scalar_load(
                      in,
                      (static_cast<std::uint64_t>(iy) * d.iw + ix) * d.ic + c);
                  eng.vfma_vs(acc[t], s, wv);
                }
              }
            }
          }
          for (int t = 0; t < group; ++t) {
            eng.vstore(
                acc[t], out,
                (y * static_cast<std::uint64_t>(ow) + x + t) * d.oc + oc0);
          }
          eng.scalar_ops(2 * (ky1 - ky0) * (kx1 - kx0) * (ic1 - ic0));
          x += group;
        }
      }
      oc0 += gvl;
    }
  }
}

/// Width-vectorized strategy (NCHW in/out, OIHW weights — Darknet's native
/// layout): lanes span consecutive output columns, unit-stride row loads for
/// stride 1, broadcast weights, register-blocked over 8 output channels that
/// share each input load.
template <class E>
void direct_width(E& eng, const ConvLayerDesc& d, BufView in, BufView w,
                  BufView out, const Sampler& sampler) {
  using Vec = typename E::Vec;
  constexpr int kOcUnroll = 8;
  const int oh = d.oh();
  const int ow = d.ow();
  const bool sample = !E::computes();

  // Interior output-column range where no kx tap is clipped.
  int xa = (d.pad + d.stride - 1) / d.stride;
  int xb = (d.iw + d.pad - d.kw) / d.stride + 1;
  xa = std::clamp(xa, 0, ow);
  xb = std::clamp(xb, xa, ow);

  const double work_per_row =
      static_cast<double>(ow) * d.oc * d.ic * d.kh * d.kw;
  const std::uint64_t rows =
      sample ? sampler.choose(oh, work_per_row) : static_cast<std::uint64_t>(oh);
  const ScaledRegion scaled(
      sample && rows < static_cast<std::uint64_t>(oh) ? eng.timing() : nullptr,
      static_cast<double>(oh) / static_cast<double>(rows));

  auto w_at = [&](int oc, int c, int ky, int kx) {
    return ((static_cast<std::uint64_t>(oc) * d.ic + c) * d.kh + ky) * d.kw +
           kx;
  };
  auto in_at = [&](int c, int iy, int ix) {
    return (static_cast<std::uint64_t>(c) * d.ih + iy) * d.iw + ix;
  };

  for (std::uint64_t yu = 0; yu < rows; ++yu) {
    const int y = static_cast<int>(yu);
    int ky0 = 0, ky1 = d.kh;
    while (ky0 < ky1 && y * d.stride + ky0 - d.pad < 0) ++ky0;
    while (ky1 > ky0 && y * d.stride + ky1 - 1 - d.pad >= d.ih) --ky1;

    // Border columns: exact scalar taps (a handful per row).
    auto scalar_pixel = [&](int x, int oc) {
      float sum = 0.0f;
      for (int ky = ky0; ky < ky1; ++ky) {
        const int iy = y * d.stride + ky - d.pad;
        for (int kx = 0; kx < d.kw; ++kx) {
          const int ix = x * d.stride + kx - d.pad;
          if (ix < 0 || ix >= d.iw) continue;
          for (int c = 0; c < d.ic; ++c) {
            sum += eng.scalar_load(w, w_at(oc, c, ky, kx)) *
                   eng.scalar_load(in, in_at(c, iy, ix));
            eng.scalar_ops(2);
          }
        }
      }
      eng.scalar_store(
          out, (static_cast<std::uint64_t>(oc) * oh + y) * ow + x, sum);
    };

    for (int ocb = 0; ocb < d.oc; ocb += kOcUnroll) {
      const int ocs = std::min(kOcUnroll, d.oc - ocb);
      {
        PmuPhase phase(eng.timing(), "border");
        for (int x = 0; x < xa; ++x) {
          for (int u = 0; u < ocs; ++u) scalar_pixel(x, ocb + u);
        }
        for (int x = xb; x < ow; ++x) {
          for (int u = 0; u < ocs; ++u) scalar_pixel(x, ocb + u);
        }
      }
      PmuPhase phase(eng.timing(), "interior");
      for (int x0 = xa; x0 < xb;) {
        const std::uint64_t gvl = eng.setvl(static_cast<std::uint64_t>(xb - x0));
        Vec acc[kOcUnroll];
        for (int u = 0; u < ocs; ++u) acc[u] = eng.vbroadcast(0.0f, gvl);
        for (int c = 0; c < d.ic; ++c) {
          for (int ky = ky0; ky < ky1; ++ky) {
            const int iy = y * d.stride + ky - d.pad;
            for (int kx = 0; kx < d.kw; ++kx) {
              const int ix = x0 * d.stride + kx - d.pad;
              Vec iv = d.stride == 1
                           ? eng.vload(in, in_at(c, iy, ix), gvl)
                           : eng.vload_strided(in, in_at(c, iy, ix), d.stride,
                                               gvl);
              for (int u = 0; u < ocs; ++u) {
                const float wv = eng.scalar_load(w, w_at(ocb + u, c, ky, kx));
                eng.vfma_vs(acc[u], wv, iv);
              }
            }
          }
        }
        for (int u = 0; u < ocs; ++u) {
          eng.vstore(acc[u], out,
                     (static_cast<std::uint64_t>(ocb + u) * oh + y) * ow + x0);
        }
        eng.scalar_ops(2 * d.ic * (ky1 - ky0) * d.kw);
        x0 += static_cast<int>(gvl);
      }
    }
  }
}

}  // namespace

template <class E>
void conv_direct(E& eng, const ConvLayerDesc& d, BufView in, BufView weights,
                 BufView out, const Sampler& sampler) {
  if (direct_uses_wide(d, eng.vpu().mvl())) {
    direct_wide(eng, d, in, weights, out, sampler);
  } else {
    direct_width(eng, d, in, weights, out, sampler);
  }
}

template void conv_direct<TraceEngine>(TraceEngine&, const ConvLayerDesc&,
                                       BufView, BufView, BufView,
                                       const Sampler&);
template void conv_direct<FunctionalEngine>(FunctionalEngine&,
                                            const ConvLayerDesc&, BufView,
                                            BufView, BufView, const Sampler&);

}  // namespace vlacnn

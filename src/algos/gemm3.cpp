#include "algos/gemm3.h"

#include "algos/gemm_common.h"

namespace vlacnn {

template <class E>
void gemm3_kernel(E& eng, std::uint64_t m, std::uint64_t n, std::uint64_t k,
                  BufView a, BufView b, BufView c, const Sampler& sampler) {
  using Vec = typename E::Vec;
  const bool sample = !E::computes();

  // j-panels as sampling units; each panel does m*k*gvl MACs.
  const std::uint64_t mvl = eng.vpu().mvl();
  const std::uint64_t panels = (n + mvl - 1) / mvl;
  const double work_per_panel =
      static_cast<double>(m) * k * static_cast<double>(std::min(n, mvl));
  const std::uint64_t run_panels =
      sample ? sampler.choose(panels, work_per_panel) : panels;
  PmuPhase phase(eng.timing(), "macro-kernel");
  const ScaledRegion scaled(
      sample && run_panels < panels ? eng.timing() : nullptr,
      static_cast<double>(panels) / static_cast<double>(run_panels));

  for (std::uint64_t p = 0; p < run_panels; ++p) {
    const std::uint64_t j = p * mvl;
    const std::uint64_t gvl = eng.setvl(n - j);
    for (std::uint64_t i = 0; i < m; i += kGemmUnroll) {
      const std::uint64_t u_count = std::min<std::uint64_t>(kGemmUnroll, m - i);
      Vec vc[kGemmUnroll];
      for (std::uint64_t u = 0; u < u_count; ++u) {
        vc[u] = eng.vload(c, (i + u) * n + j, gvl);
      }
      for (std::uint64_t kk = 0; kk < k; ++kk) {
        Vec vb = eng.vload(b, kk * n + j, gvl);
        for (std::uint64_t u = 0; u < u_count; ++u) {
          const float s = eng.scalar_load(a, (i + u) * k + kk);
          eng.vfma_vs(vc[u], s, vb);
        }
      }
      for (std::uint64_t u = 0; u < u_count; ++u) {
        eng.vstore(vc[u], c, (i + u) * n + j);
      }
      eng.scalar_ops(2 * k);  // loop counter + address bookkeeping
    }
  }
}

template <class E>
void conv_gemm3(E& eng, const ConvLayerDesc& d, BufView in, BufView weights,
                BufView out, const Sampler& sampler) {
  Scratch col = eng.alloc(d.gemm_k() * d.gemm_n());
  im2col_engine(eng, d, in, col.view, sampler);
  gemm3_kernel(eng, d.gemm_m(), d.gemm_n(), d.gemm_k(), weights, col.view, out,
               sampler);
}

template void gemm3_kernel<TraceEngine>(TraceEngine&, std::uint64_t,
                                        std::uint64_t, std::uint64_t, BufView,
                                        BufView, BufView, const Sampler&);
template void gemm3_kernel<FunctionalEngine>(FunctionalEngine&, std::uint64_t,
                                             std::uint64_t, std::uint64_t,
                                             BufView, BufView, BufView,
                                             const Sampler&);
template void conv_gemm3<TraceEngine>(TraceEngine&, const ConvLayerDesc&,
                                      BufView, BufView, BufView, const Sampler&);
template void conv_gemm3<FunctionalEngine>(FunctionalEngine&,
                                           const ConvLayerDesc&, BufView,
                                           BufView, BufView, const Sampler&);

}  // namespace vlacnn

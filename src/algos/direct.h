// Direct convolution on the NHWC layout (Paper II Section 3.2, following
// Santana et al. for long SIMD).
//
// Two vectorization strategies, chosen by shape (direct_uses_wide):
//  * channel-wide (NHWC in/out, HWIO weights): lanes span output channels —
//    the oneDNN-style NHWC direct form, with weight-vector loads shared by a
//    group of output columns and broadcast input scalars. Used when OC fills
//    the vector register.
//  * width-vectorized (NCHW in/out, OIHW weights — Darknet's native layout):
//    lanes span consecutive output columns with unit-stride row loads and
//    broadcast weights, register-blocked over 8 output channels — the
//    long-vector-friendly form that keeps high-resolution low-channel layers
//    (e.g. layer 1) scaling with VLEN.
//
// Weight reformatting and activation-layout residency are treated as offline,
// matching how the papers charge only the convolution kernel itself to the
// Direct algorithm.
#pragma once

#include "algos/conv_args.h"
#include "tensor/conv_desc.h"
#include "vpu/buffer.h"
#include "vpu/functional_engine.h"
#include "vpu/trace_engine.h"

namespace vlacnn {

/// True when the channel-wide strategy is selected for this shape/VPU.
bool direct_uses_wide(const ConvLayerDesc& d, std::uint64_t mvl);

/// in: NHWC, weights: [oc][kh][kw][ic], out: NHWC.
template <class E>
void conv_direct(E& eng, const ConvLayerDesc& d, BufView in, BufView weights,
                 BufView out, const Sampler& sampler);

extern template void conv_direct<TraceEngine>(TraceEngine&,
                                              const ConvLayerDesc&, BufView,
                                              BufView, BufView, const Sampler&);
extern template void conv_direct<FunctionalEngine>(FunctionalEngine&,
                                                   const ConvLayerDesc&,
                                                   BufView, BufView, BufView,
                                                   const Sampler&);

}  // namespace vlacnn

// im2col + 3-loop GEMM (Paper I Fig. 2): jik loop order, vector length agnostic
// j loop, 16-way register-blocked i loop, fused multiply-add inner kernel.
#pragma once

#include "algos/conv_args.h"
#include "tensor/conv_desc.h"
#include "vpu/buffer.h"
#include "vpu/functional_engine.h"
#include "vpu/trace_engine.h"

namespace vlacnn {

/// C(M x N) += A(M x K) * B(K x N); C must be zero-initialised by the caller in
/// functional mode. Sampling unit: one j-panel of `gvl` columns.
template <class E>
void gemm3_kernel(E& eng, std::uint64_t m, std::uint64_t n, std::uint64_t k,
                  BufView a, BufView b, BufView c, const Sampler& sampler);

/// Full convolution: im2col into engine scratch, then 3-loop GEMM.
/// in: NCHW, weights: OIHW (= M x K row-major), out: NCHW (= M x N row-major).
template <class E>
void conv_gemm3(E& eng, const ConvLayerDesc& d, BufView in, BufView weights,
                BufView out, const Sampler& sampler);

extern template void gemm3_kernel<TraceEngine>(TraceEngine&, std::uint64_t,
                                               std::uint64_t, std::uint64_t,
                                               BufView, BufView, BufView,
                                               const Sampler&);
extern template void gemm3_kernel<FunctionalEngine>(FunctionalEngine&,
                                                    std::uint64_t, std::uint64_t,
                                                    std::uint64_t, BufView,
                                                    BufView, BufView,
                                                    const Sampler&);
extern template void conv_gemm3<TraceEngine>(TraceEngine&, const ConvLayerDesc&,
                                             BufView, BufView, BufView,
                                             const Sampler&);
extern template void conv_gemm3<FunctionalEngine>(FunctionalEngine&,
                                                  const ConvLayerDesc&, BufView,
                                                  BufView, BufView,
                                                  const Sampler&);

}  // namespace vlacnn

// Engine-templated im2col: the data-side transformation of the im2col+GEMM
// algorithms, vectorized like the Darknet kernels of the papers (contiguous row
// copies for stride 1, strided element loads otherwise, explicit zero fill for
// padding). Charged to the kernel's timing, unlike the weight-side preparation
// which is offline.
#pragma once

#include "algos/conv_args.h"
#include "tensor/conv_desc.h"
#include "vpu/buffer.h"
#include "vpu/pmu.h"

namespace vlacnn {

/// Expand NCHW input `in` into the K x N column matrix `col`
/// (K = ic*kh*kw, N = oh*ow). In trace mode a sampled prefix of the K rows is
/// simulated and extrapolated.
template <class E>
void im2col_engine(E& eng, const ConvLayerDesc& d, BufView in, BufView col,
                   const Sampler& sampler) {
  const int oh = d.oh();
  const int ow = d.ow();
  const std::uint64_t n = d.gemm_n();
  const std::uint64_t k_rows = d.gemm_k();

  const bool sample = !E::computes();
  const std::uint64_t rows_to_run =
      sample ? sampler.choose(k_rows, static_cast<double>(oh) * ow) : k_rows;
  PmuPhase phase(eng.timing(), "im2col");
  const ScaledRegion scaled(
      sample && rows_to_run < k_rows ? eng.timing() : nullptr,
      static_cast<double>(k_rows) / static_cast<double>(rows_to_run));

  for (std::uint64_t row = 0; row < rows_to_run; ++row) {
    const int c = static_cast<int>(row / (d.kh * d.kw));
    const int ky = static_cast<int>((row / d.kw) % d.kh);
    const int kx = static_cast<int>(row % d.kw);
    const std::uint64_t in_chan = static_cast<std::uint64_t>(c) * d.ih * d.iw;

    for (int y = 0; y < oh; ++y) {
      const int iy = y * d.stride + ky - d.pad;
      const std::uint64_t dst_row = row * n + static_cast<std::uint64_t>(y) * ow;
      if (iy < 0 || iy >= d.ih) {
        // Whole output row maps to padding: vector zero fill.
        for (std::uint64_t x = 0; x < static_cast<std::uint64_t>(ow);) {
          const std::uint64_t vl = eng.setvl(ow - x);
          auto z = eng.vbroadcast(0.0f, vl);
          eng.vstore(z, col, dst_row + x);
          x += vl;
        }
        continue;
      }
      // Valid x range: 0 <= x*stride + kx - pad < iw.
      int x0 = 0;
      while (x0 < ow && x0 * d.stride + kx - d.pad < 0) ++x0;
      int x1 = ow;
      while (x1 > x0 && (x1 - 1) * d.stride + kx - d.pad >= d.iw) --x1;

      for (int x = 0; x < x0; ++x) eng.scalar_store(col, dst_row + x, 0.0f);
      const std::uint64_t src =
          in_chan + static_cast<std::uint64_t>(iy) * d.iw +
          (static_cast<std::int64_t>(x0) * d.stride + kx - d.pad);
      for (std::uint64_t x = static_cast<std::uint64_t>(x0);
           x < static_cast<std::uint64_t>(x1);) {
        const std::uint64_t vl = eng.setvl(static_cast<std::uint64_t>(x1) - x);
        auto v = d.stride == 1
                     ? eng.vload(in, src + (x - x0), vl)
                     : eng.vload_strided(in, src + (x - x0) * d.stride,
                                         d.stride, vl);
        eng.vstore(v, col, dst_row + x);
        x += vl;
      }
      for (int x = x1; x < ow; ++x) eng.scalar_store(col, dst_row + x, 0.0f);
      eng.scalar_ops(4);  // row bookkeeping
    }
  }
}

}  // namespace vlacnn

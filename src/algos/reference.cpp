#include "algos/reference.h"

#include <stdexcept>

namespace vlacnn {

void conv_reference(const ConvLayerDesc& d, const float* input,
                    const float* weights, float* out) {
  const int oh = d.oh();
  const int ow = d.ow();
  for (int oc = 0; oc < d.oc; ++oc) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        double acc = 0.0;
        for (int ic = 0; ic < d.ic; ++ic) {
          for (int ky = 0; ky < d.kh; ++ky) {
            const int iy = y * d.stride + ky - d.pad;
            if (iy < 0 || iy >= d.ih) continue;
            for (int kx = 0; kx < d.kw; ++kx) {
              const int ix = x * d.stride + kx - d.pad;
              if (ix < 0 || ix >= d.iw) continue;
              const float in_v =
                  input[(static_cast<std::size_t>(ic) * d.ih + iy) * d.iw + ix];
              const float w_v =
                  weights[((static_cast<std::size_t>(oc) * d.ic + ic) * d.kh +
                           ky) * d.kw + kx];
              acc += static_cast<double>(in_v) * w_v;
            }
          }
        }
        out[(static_cast<std::size_t>(oc) * oh + y) * ow + x] =
            static_cast<float>(acc);
      }
    }
  }
}

Tensor conv_reference(const ConvLayerDesc& d, const Tensor& input,
                      const std::vector<float>& weights) {
  if (input.layout() != Layout::kNCHW) {
    throw std::invalid_argument("conv_reference: input must be NCHW");
  }
  if (weights.size() != d.weight_elems()) {
    throw std::invalid_argument("conv_reference: weight size mismatch");
  }
  Tensor out(d.oc, d.oh(), d.ow(), Layout::kNCHW);
  conv_reference(d, input.data(), weights.data(), out.data());
  return out;
}

}  // namespace vlacnn

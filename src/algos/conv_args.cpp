#include "algos/conv_args.h"

#include <stdexcept>

namespace vlacnn {

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kDirect: return "direct";
    case Algo::kGemm3: return "gemm3";
    case Algo::kGemm6: return "gemm6";
    case Algo::kWinograd: return "winograd";
  }
  return "?";
}

Algo algo_from_string(const std::string& s) {
  for (Algo a : kAllAlgos) {
    if (s == to_string(a)) return a;
  }
  throw std::invalid_argument("unknown algorithm: " + s);
}

bool algo_applicable(Algo a, const ConvLayerDesc& d) {
  if (a == Algo::kWinograd) {
    return d.kh == 3 && d.kw == 3 && d.stride == 1 && d.oh() >= 1 &&
           d.ow() >= 1;
  }
  return true;
}

}  // namespace vlacnn

#include "algos/winograd.h"

#include <stdexcept>

#include "vpu/pmu.h"
#include "wino/transforms.h"

namespace vlacnn {

// Orientation bookkeeping (verified by tests/test_winograd.cpp):
//   * the input transform computes Z = (B^T d B^T')' tile-transposed, i.e. the
//     V scratch holds V_true^T per (channel, tile),
//   * U tiles are therefore stored transposed by winograd_prepare_weights so the
//     per-slot Hadamard pairs matching coefficients,
//   * the output transform's two A^T stages plus the intermediate transpose
//     then yield Y in natural row-major orientation.

std::uint64_t winograd_tile_count(const ConvLayerDesc& d, int m) {
  const std::uint64_t th = (d.oh() + m - 1) / m;
  const std::uint64_t tw = (d.ow() + m - 1) / m;
  return th * tw;
}

void winograd_prepare_weights(const ConvLayerDesc& d, const float* weights_oihw,
                              float* u, int m) {
  if (!algo_applicable(Algo::kWinograd, d)) {
    throw std::invalid_argument("winograd: layer not applicable");
  }
  const WinogradTransform& t = winograd_transform(m);
  const int n = t.n();
  std::vector<float> tile(static_cast<std::size_t>(n) * n);
  const std::uint64_t plane = static_cast<std::uint64_t>(d.oc) * d.ic;
  for (int oc = 0; oc < d.oc; ++oc) {
    for (int ic = 0; ic < d.ic; ++ic) {
      const float* g =
          weights_oihw + (static_cast<std::uint64_t>(oc) * d.ic + ic) * 9;
      wino_transform_weight(t, g, tile.data());
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          // Slot (i, j) holds the transposed tile entry.
          u[(static_cast<std::uint64_t>(i) * n + j) * plane +
            static_cast<std::uint64_t>(oc) * d.ic + ic] =
              tile[static_cast<std::uint64_t>(j) * n + i];
        }
      }
    }
  }
}

namespace {

/// Dense-ish linear combination stage: out_rows x vl <- coeff * in_rows x vl.
/// Skips zero coefficients (the transform matrices are sparse).
template <class E>
void transform_stage(E& eng, const double* coeff, int out_rows, int in_rows,
                     BufView src, BufView dst, std::uint64_t vl) {
  using Vec = typename E::Vec;
  for (int i = 0; i < out_rows; ++i) {
    Vec acc = eng.vbroadcast(0.0f, vl);
    for (int j = 0; j < in_rows; ++j) {
      const double c = coeff[static_cast<std::uint64_t>(i) * in_rows + j];
      if (c == 0.0) continue;
      Vec vj = eng.vload(src, static_cast<std::uint64_t>(j) * vl, vl);
      eng.vfma_vs(acc, static_cast<float>(c), vj);
    }
    eng.vstore(acc, dst, static_cast<std::uint64_t>(i) * vl);
  }
}

/// Per-channel transpose through scratch: dst[j][c][i] = src[i][c][j].
/// src has `rows` rows of width `src_w` per channel; dst gets src_w rows of
/// width `rows` per channel (dst per-channel width == rows).
template <class E>
void transpose_stage(E& eng, BufView src, BufView dst, int cn, int rows,
                     std::uint64_t src_vl, std::uint64_t dst_vl, int src_w) {
  for (int c = 0; c < cn; ++c) {
    for (int i = 0; i < rows; ++i) {
      auto v = eng.vload(src, static_cast<std::uint64_t>(i) * src_vl +
                                  static_cast<std::uint64_t>(c) * src_w,
                         src_w);
      eng.vstore_strided(v, dst,
                         static_cast<std::uint64_t>(c) * rows + i,
                         static_cast<std::int64_t>(dst_vl));
    }
  }
}

}  // namespace

template <class E>
void conv_winograd(E& eng, const ConvLayerDesc& d, BufView in, BufView u,
                   BufView out, const Sampler& sampler, int m) {
  using Vec = typename E::Vec;
  if (!algo_applicable(Algo::kWinograd, d)) {
    throw std::invalid_argument("winograd: layer not applicable");
  }
  const WinogradTransform& wt = winograd_transform(m);
  const int kM = m;
  const int kN = wt.n();
  const int kSlots = kN * kN;
  const int oh = d.oh();
  const int ow = d.ow();
  const std::uint64_t tw = (static_cast<std::uint64_t>(ow) + kM - 1) / kM;
  const std::uint64_t tiles = winograd_tile_count(d, m);
  const std::uint64_t p = tiles;
  const bool sample = !E::computes();

  // Channel block: vector spans cb channels x 8 tile columns, capped at the
  // 2048-bit tuple block size.
  const std::uint64_t vl_cap = std::min<std::uint64_t>(eng.vpu().mvl(),
                                                       kWinoVlCapElems);
  const int cb_max = static_cast<int>(std::max<std::uint64_t>(1, vl_cap / kN));

  Scratch v_buf = eng.alloc(static_cast<std::uint64_t>(kSlots) * d.ic * p);
  Scratch m_buf = eng.alloc(static_cast<std::uint64_t>(kSlots) * d.oc * p);
  Scratch t0 = eng.alloc(static_cast<std::uint64_t>(cb_max) * kN * kN);
  Scratch t1 = eng.alloc(static_cast<std::uint64_t>(cb_max) * kN * kN);
  Scratch t2 = eng.alloc(static_cast<std::uint64_t>(cb_max) * kN * kN);
  Scratch t3 = eng.alloc(static_cast<std::uint64_t>(cb_max) * kN * kN);

  // ---- Phase A: input transform ---------------------------------------------
  {
    const double work = static_cast<double>(d.ic) * kSlots * 8;
    const std::uint64_t run = sample ? sampler.choose(tiles, work) : tiles;
    PmuPhase phase(eng.timing(), "input-transform");
    const ScaledRegion scaled(
        sample && run < tiles ? eng.timing() : nullptr,
        static_cast<double>(tiles) / static_cast<double>(run));
    for (std::uint64_t t = 0; t < run; ++t) {
      const int ty = static_cast<int>(t / tw);
      const int tx = static_cast<int>(t % tw);
      const int y0 = ty * kM - d.pad;
      const int x0 = tx * kM - d.pad;
      for (int cb = 0; cb < d.ic; cb += cb_max) {
        const int cn = std::min(cb_max, d.ic - cb);
        const std::uint64_t vl = static_cast<std::uint64_t>(cn) * kN;
        // Pack the 8x8 patches of cn channels: t0[row][c][col].
        for (int c = 0; c < cn; ++c) {
          const std::uint64_t chan =
              static_cast<std::uint64_t>(cb + c) * d.ih * d.iw;
          for (int r = 0; r < kN; ++r) {
            const int iy = y0 + r;
            const std::uint64_t dst =
                static_cast<std::uint64_t>(r) * vl + static_cast<std::uint64_t>(c) * kN;
            if (iy < 0 || iy >= d.ih) {
              auto z = eng.vbroadcast(0.0f, kN);
              eng.vstore(z, t0.view, dst);
              continue;
            }
            if (x0 >= 0 && x0 + kN <= d.iw) {
              auto v = eng.vload(in, chan + static_cast<std::uint64_t>(iy) * d.iw + x0, kN);
              eng.vstore(v, t0.view, dst);
            } else {
              for (int col = 0; col < kN; ++col) {
                const int ix = x0 + col;
                const float val =
                    (ix >= 0 && ix < d.iw)
                        ? eng.scalar_load(in, chan + static_cast<std::uint64_t>(iy) * d.iw + ix)
                        : 0.0f;
                eng.scalar_store(t0.view, dst + col, val);
              }
            }
          }
        }
        transform_stage(eng, wt.bt.data(), kN, kN, t0.view, t1.view, vl);
        transpose_stage(eng, t1.view, t2.view, cn, kN, vl, vl, kN);
        transform_stage(eng, wt.bt.data(), kN, kN, t2.view, t3.view, vl);
        // Scatter to V[slot][channel][tile].
        for (int i = 0; i < kN; ++i) {
          for (int c = 0; c < cn; ++c) {
            auto v = eng.vload(t3.view, static_cast<std::uint64_t>(i) * vl +
                                            static_cast<std::uint64_t>(c) * kN,
                               kN);
            const std::uint64_t base =
                (static_cast<std::uint64_t>(i) * kN) * d.ic * p +
                static_cast<std::uint64_t>(cb + c) * p + t;
            eng.vstore_strided(v, v_buf.view, base,
                               static_cast<std::int64_t>(static_cast<std::uint64_t>(d.ic) * p));
          }
        }
        eng.scalar_ops(16);
      }
    }
  }

  // ---- Phase B: tuple multiplication (64 independent GEMMs) -----------------
  {
    constexpr int kUnrollB = 8;
    const double work = static_cast<double>(d.oc) * d.ic * static_cast<double>(p);
    const std::uint64_t run =
        sample ? sampler.choose(kSlots, work) : static_cast<std::uint64_t>(kSlots);
    PmuPhase phase(eng.timing(), "tuple-gemm");
    const ScaledRegion scaled(
        sample && run < static_cast<std::uint64_t>(kSlots) ? eng.timing()
                                                           : nullptr,
        static_cast<double>(kSlots) / static_cast<double>(run));
    for (std::uint64_t s = 0; s < run; ++s) {
      const std::uint64_t v_base = s * static_cast<std::uint64_t>(d.ic) * p;
      const std::uint64_t m_base = s * static_cast<std::uint64_t>(d.oc) * p;
      const std::uint64_t u_base = s * static_cast<std::uint64_t>(d.oc) * d.ic;
      for (std::uint64_t j = 0; j < p;) {
        const std::uint64_t gvl = std::min<std::uint64_t>(eng.setvl(p - j), vl_cap);
        for (int i = 0; i < d.oc; i += kUnrollB) {
          const int uc = std::min(kUnrollB, d.oc - i);
          Vec vc[kUnrollB];
          for (int uu = 0; uu < uc; ++uu) vc[uu] = eng.vbroadcast(0.0f, gvl);
          for (int k = 0; k < d.ic; ++k) {
            Vec vb = eng.vload(v_buf.view,
                               v_base + static_cast<std::uint64_t>(k) * p + j, gvl);
            for (int uu = 0; uu < uc; ++uu) {
              const float w = eng.scalar_load(
                  u, u_base + static_cast<std::uint64_t>(i + uu) * d.ic + k);
              eng.vfma_vs(vc[uu], w, vb);
            }
          }
          for (int uu = 0; uu < uc; ++uu) {
            eng.vstore(vc[uu], m_buf.view,
                       m_base + static_cast<std::uint64_t>(i + uu) * p + j);
          }
          eng.scalar_ops(2 * d.ic);
        }
        j += gvl;
      }
    }
  }

  // ---- Phase C: output transform ---------------------------------------------
  {
    const double work = static_cast<double>(d.oc) * kSlots * 6;
    const std::uint64_t run = sample ? sampler.choose(tiles, work) : tiles;
    PmuPhase phase(eng.timing(), "output-transform");
    const ScaledRegion scaled(
        sample && run < tiles ? eng.timing() : nullptr,
        static_cast<double>(tiles) / static_cast<double>(run));
    for (std::uint64_t t = 0; t < run; ++t) {
      const int ty = static_cast<int>(t / tw);
      const int tx = static_cast<int>(t % tw);
      const int rows_valid = std::min(kM, oh - ty * kM);
      const int cols_valid = std::min(kM, ow - tx * kM);
      for (int cb = 0; cb < d.oc; cb += cb_max) {
        const int cn = std::min(cb_max, d.oc - cb);
        const std::uint64_t vl8 = static_cast<std::uint64_t>(cn) * kN;
        const std::uint64_t vl6 = static_cast<std::uint64_t>(cn) * kM;
        // Gather M tiles: t0[r][c][col] = M[(r*8+col)][cb+c][t].
        for (int r = 0; r < kN; ++r) {
          for (int c = 0; c < cn; ++c) {
            auto v = eng.vload_strided(
                m_buf.view,
                (static_cast<std::uint64_t>(r) * kN) * d.oc * p +
                    static_cast<std::uint64_t>(cb + c) * p + t,
                static_cast<std::int64_t>(static_cast<std::uint64_t>(d.oc) * p),
                kN);
            eng.vstore(v, t0.view, static_cast<std::uint64_t>(r) * vl8 +
                                       static_cast<std::uint64_t>(c) * kN);
          }
        }
        transform_stage(eng, wt.at.data(), kM, kN, t0.view, t1.view, vl8);
        // t2[j][c][i] = t1[i][c][j]: 6 rows of width 8 -> 8 rows of width 6.
        for (int c = 0; c < cn; ++c) {
          for (int i = 0; i < kM; ++i) {
            auto v = eng.vload(t1.view, static_cast<std::uint64_t>(i) * vl8 +
                                            static_cast<std::uint64_t>(c) * kN,
                               kN);
            eng.vstore_strided(v, t2.view,
                               static_cast<std::uint64_t>(c) * kM + i,
                               static_cast<std::int64_t>(vl6));
          }
        }
        transform_stage(eng, wt.at.data(), kM, kN, t2.view, t3.view, vl6);
        // Store valid rows/cols to NCHW output.
        for (int c = 0; c < cn; ++c) {
          for (int i = 0; i < rows_valid; ++i) {
            auto v = eng.vload(t3.view, static_cast<std::uint64_t>(i) * vl6 +
                                            static_cast<std::uint64_t>(c) * kM,
                               cols_valid);
            eng.vstore(v, out,
                       (static_cast<std::uint64_t>(cb + c) * oh + ty * kM + i) *
                               ow +
                           tx * kM);
          }
        }
        eng.scalar_ops(16);
      }
    }
  }
}

template void conv_winograd<TraceEngine>(TraceEngine&, const ConvLayerDesc&,
                                         BufView, BufView, BufView,
                                         const Sampler&, int);
template void conv_winograd<FunctionalEngine>(FunctionalEngine&,
                                              const ConvLayerDesc&, BufView,
                                              BufView, BufView, const Sampler&,
                                              int);

}  // namespace vlacnn

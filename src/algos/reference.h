// Scalar reference convolution — the ground truth every vectorized algorithm is
// validated against.
#pragma once

#include "tensor/conv_desc.h"
#include "tensor/tensor.h"

namespace vlacnn {

/// Plain direct convolution, NCHW input/output, OIHW weights, zero padding.
/// out has oc x oh x ow elements.
void conv_reference(const ConvLayerDesc& desc, const float* input,
                    const float* weights, float* out);

/// Tensor convenience wrapper (input NCHW; returns NCHW output).
Tensor conv_reference(const ConvLayerDesc& desc, const Tensor& input,
                      const std::vector<float>& weights);

}  // namespace vlacnn

// im2col + 6-loop BLIS-like GEMM (Paper I Fig. 3): cache blocking, A/B panel
// packing, register blocking, software prefetch, VLA vectorized inner kernel.
#pragma once

#include "algos/conv_args.h"
#include "tensor/conv_desc.h"
#include "vpu/buffer.h"
#include "vpu/functional_engine.h"
#include "vpu/trace_engine.h"

namespace vlacnn {

/// C(M x N) += A(M x K) * B(K x N) with blocking `blocks`. C must be
/// zero-initialised by the caller in functional mode.
/// Sampling unit: one (jj, kk) cache-block pair, including its packing.
template <class E>
void gemm6_kernel(E& eng, std::uint64_t m, std::uint64_t n, std::uint64_t k,
                  BufView a, BufView b, BufView c, const Gemm6Blocks& blocks,
                  const Sampler& sampler);

/// Full convolution: im2col + 6-loop GEMM. Layouts as conv_gemm3.
template <class E>
void conv_gemm6(E& eng, const ConvLayerDesc& d, BufView in, BufView weights,
                BufView out, const Gemm6Blocks& blocks, const Sampler& sampler);

extern template void gemm6_kernel<TraceEngine>(TraceEngine&, std::uint64_t,
                                               std::uint64_t, std::uint64_t,
                                               BufView, BufView, BufView,
                                               const Gemm6Blocks&,
                                               const Sampler&);
extern template void gemm6_kernel<FunctionalEngine>(
    FunctionalEngine&, std::uint64_t, std::uint64_t, std::uint64_t, BufView,
    BufView, BufView, const Gemm6Blocks&, const Sampler&);
extern template void conv_gemm6<TraceEngine>(TraceEngine&, const ConvLayerDesc&,
                                             BufView, BufView, BufView,
                                             const Gemm6Blocks&, const Sampler&);
extern template void conv_gemm6<FunctionalEngine>(FunctionalEngine&,
                                                  const ConvLayerDesc&, BufView,
                                                  BufView, BufView,
                                                  const Gemm6Blocks&,
                                                  const Sampler&);

}  // namespace vlacnn

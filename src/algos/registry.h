// Entry points tying the four kernels to the two execution modes:
//   * conv_simulate  — trace-driven timing on a fresh cache hierarchy (the
//     per-layer data point of every co-design figure),
//   * conv_functional — numeric execution validated against conv_reference,
//     optionally with timing attached (hybrid mode used by tests).
//
// Weight-side preparation (OIHW -> algorithm layout, Winograd U tiles) is
// offline for inference and excluded from timing; data-side transformations
// (im2col, Winograd input/output transforms) are charged. See DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "algos/conv_args.h"
#include "memsim/memory_system.h"
#include "tensor/conv_desc.h"
#include "tensor/tensor.h"
#include "vpu/timing_model.h"
#include "vpu/vpu_config.h"

namespace vlacnn::obs {
struct KernProfRun;
}  // namespace vlacnn::obs

namespace vlacnn {

/// Everything a timing simulation needs.
struct SimConfig {
  VpuConfig vpu{};
  MemConfig mem{};
  TimingConfig timing{};
  Sampler sampler{};
  Gemm6Blocks blocks{};
  /// Grid-point identity for kernel-profile labeling (DESIGN.md §14). Empty
  /// net means "not part of a network sweep"; the profile label then falls
  /// back to the layer's shape string. Purely observational — no effect on
  /// simulated cycles.
  std::string net;
  int layer = -1;
};

/// Convenience constructor for the sweep grid: vector length (bits), L2 size
/// (bytes), lanes, attachment. L2 associativity is fixed at 16 ways.
SimConfig make_sim_config(std::uint32_t vlen_bits, std::uint64_t l2_bytes,
                          std::uint32_t lanes = 8,
                          VpuAttach attach = VpuAttach::kIntegratedL1);

/// Simulate one layer with one algorithm. The layer runs on a cold hierarchy
/// (every figure in the papers reports per-layer numbers). Throws if the
/// algorithm is not applicable to the layer. Emits a "conv_simulate" obs span
/// and per-point cycle/host-time histograms when observability is on.
/// When VLACNN_KERNPROF is set, a simulated PMU rides along (vpu/pmu.h): the
/// per-phase attribution and counter windows are recorded to the process-wide
/// KernProfSink under the grid-point label, and copied to `profile` when the
/// caller passes one (the PMU never changes the returned stats).
TimingStats conv_simulate(Algo algo, const ConvLayerDesc& desc,
                          const SimConfig& config,
                          obs::KernProfRun* profile = nullptr);

/// conv_simulate minus the observability hooks: the no-obs baseline that
/// bench_obs_overhead measures the disabled-path cost against. Numerically
/// identical to conv_simulate; not useful elsewhere.
TimingStats conv_simulate_no_obs(Algo algo, const ConvLayerDesc& desc,
                                 const SimConfig& config);

/// Numerically execute one layer with one algorithm.
/// in: NCHW tensor matching desc; weights: OIHW. Returns NCHW output.
/// If `timing` is non-null, a hybrid run attaches a TimingModel (with the
/// MemConfig from `config`, or defaults) and writes the stats there.
Tensor conv_functional(Algo algo, const ConvLayerDesc& desc, const Tensor& in,
                       const std::vector<float>& weights_oihw,
                       const VpuConfig& vpu, TimingStats* timing = nullptr,
                       const SimConfig* config = nullptr);

/// Reformat OIHW weights into the channel-wide Direct kernel's blocked layout
/// [oc/mvl][kh][kw][ic][mvl] (output channels innermost within a block of the
/// vector length, so weight-vector loads are unit-stride and the per-segment
/// working set is contiguous — oneDNN-style OIhwXo blocking).
std::vector<float> reformat_weights_direct(const ConvLayerDesc& desc,
                                           const std::vector<float>& w_oihw,
                                           std::uint64_t mvl);

}  // namespace vlacnn

#include "algos/registry.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "algos/direct.h"
#include "algos/gemm3.h"
#include "algos/gemm6.h"
#include "algos/winograd.h"
#include "obs/kernprof.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vpu/functional_engine.h"
#include "vpu/pmu.h"
#include "vpu/trace_engine.h"

namespace vlacnn {

SimConfig make_sim_config(std::uint32_t vlen_bits, std::uint64_t l2_bytes,
                          std::uint32_t lanes, VpuAttach attach) {
  SimConfig c;
  c.vpu.vlen_bits = vlen_bits;
  c.vpu.lanes = lanes;
  c.vpu.attach = attach;
  c.mem.l2.size_bytes = l2_bytes;
  c.mem.l2.ways = 16;
  c.mem.attach = attach;
  return c;
}

namespace {

std::vector<float> flatten_nhwc(const Tensor& in) {
  Tensor t = in.to_layout(Layout::kNHWC);
  return std::vector<float>(t.data(), t.data() + t.size());
}

}  // namespace

std::vector<float> reformat_weights_direct(const ConvLayerDesc& d,
                                           const std::vector<float>& w,
                                           std::uint64_t mvl) {
  // OIHW -> [oc/mvl][kh][kw][ic][block]: unit-stride weight-vector loads with
  // a contiguous per-segment working set (avoids the power-of-two set-aliasing
  // a plain HWIO layout suffers in the L2).
  std::vector<float> out(d.weight_elems());
  const std::uint64_t block = std::min<std::uint64_t>(mvl, d.oc);
  std::size_t base = 0;
  for (int ob = 0; ob < d.oc; ob += static_cast<int>(block)) {
    const std::uint64_t cur =
        std::min<std::uint64_t>(block, d.oc - static_cast<std::uint64_t>(ob));
    for (int ky = 0; ky < d.kh; ++ky) {
      for (int kx = 0; kx < d.kw; ++kx) {
        for (int ic = 0; ic < d.ic; ++ic) {
          for (std::uint64_t b = 0; b < cur; ++b) {
            const std::size_t oc = static_cast<std::size_t>(ob) + b;
            out[base + ((static_cast<std::size_t>(ky) * d.kw + kx) * d.ic +
                        ic) * cur + b] =
                w[((oc * d.ic + ic) * d.kh + ky) * d.kw + kx];
          }
        }
      }
    }
    base += static_cast<std::size_t>(d.kh) * d.kw * d.ic * cur;
  }
  return out;
}

namespace {

/// The shared timing-simulation body. `pmu`, when non-null, is attached to
/// the TimingModel for the duration of the run (phase annotations + counter
/// windows); it is pure accounting and never changes the returned stats.
TimingStats simulate_impl(Algo algo, const ConvLayerDesc& d,
                          const SimConfig& config_in, Pmu* pmu) {
  if (!algo_applicable(algo, d)) {
    throw std::invalid_argument("conv_simulate: " + std::string(to_string(algo)) +
                                " not applicable to " + d.to_string());
  }
  SimConfig config = config_in;
  config.mem.attach = config.vpu.attach;
  MemorySystem mem(config.mem);
  TimingModel timing(config.vpu, &mem, config.timing);
  timing.set_pmu(pmu);
  TraceEngine eng(config.vpu, &timing);

  // Bind order matches conv_functional's per-algorithm order exactly, so a
  // hybrid functional+timing run sees identical virtual addresses (checked by
  // Simulation.HybridFunctionalTimingMatchesTrace).
  const BufView in = eng.bind(nullptr, d.in_elems());

  switch (algo) {
    case Algo::kDirect: {
      const BufView w = eng.bind(nullptr, d.weight_elems());
      const BufView out = direct_uses_wide(d, config.vpu.mvl())
                              ? eng.alloc(d.out_elems()).view
                              : eng.bind(nullptr, d.out_elems());
      conv_direct(eng, d, in, w, out, config.sampler);
      break;
    }
    case Algo::kGemm3: {
      const BufView w = eng.bind(nullptr, d.weight_elems());
      const BufView out = eng.bind(nullptr, d.out_elems());
      conv_gemm3(eng, d, in, w, out, config.sampler);
      break;
    }
    case Algo::kGemm6: {
      const BufView w = eng.bind(nullptr, d.weight_elems());
      const BufView out = eng.bind(nullptr, d.out_elems());
      conv_gemm6(eng, d, in, w, out, config.blocks, config.sampler);
      break;
    }
    case Algo::kWinograd: {
      const BufView u = eng.bind(
          nullptr, 64ull * static_cast<std::uint64_t>(d.oc) * d.ic);
      const BufView out = eng.bind(nullptr, d.out_elems());
      conv_winograd(eng, d, in, u, out, config.sampler);
      break;
    }
  }
  return timing.stats();
}

/// Grid-point label for the kernel-profile sink, matching report::entry_key
/// when the point carries a (net, layer) identity; shape-string fallback
/// otherwise. Built here rather than via src/report — the algos layer sits
/// below report in the include order.
std::string kernprof_label(Algo algo, const ConvLayerDesc& d,
                           const SimConfig& c) {
  std::string head;
  if (!c.net.empty()) {
    char layer[8];
    std::snprintf(layer, sizeof layer, "L%02d", c.layer);
    head = c.net + "/" + layer;
  } else {
    head = d.to_string();
  }
  return head + "/" + to_string(algo) + "/vlen" +
         std::to_string(c.vpu.vlen_bits) + "/l2:" +
         std::to_string(c.mem.l2.size_bytes) + "/lanes" +
         std::to_string(c.vpu.lanes) + "/" +
         (c.vpu.attach == VpuAttach::kIntegratedL1 ? "int" : "dec");
}

/// Convert a finalized PMU into the obs-layer profile record.
obs::KernProfRun kernprof_run_from_pmu(const Pmu& pmu, Algo algo,
                                       const ConvLayerDesc& d,
                                       const SimConfig& c,
                                       const TimingStats& stats) {
  obs::KernProfRun run;
  run.label = kernprof_label(algo, d, c);
  run.net = c.net;
  run.layer = c.layer;
  run.algo = to_string(algo);
  run.vlen_bits = c.vpu.vlen_bits;
  run.l2_bytes = c.mem.l2.size_bytes;
  run.lanes = c.vpu.lanes;
  run.attach = c.vpu.attach == VpuAttach::kIntegratedL1 ? "int" : "dec";
  run.interval_cycles = pmu.interval_cycles();
  run.cycles = stats.cycles;
  run.compute_cycles = stats.compute_cycles;
  run.mem_issue_cycles = stats.mem_issue_cycles;
  run.mem_stall_cycles = stats.mem_stall_cycles;
  run.scalar_cycles = stats.scalar_cycles;
  for (const PmuPhaseStats& p : pmu.phases()) {
    obs::KernProfPhase out;
    out.name = p.name;
    out.cycles = p.cycles;
    out.raw_cycles = p.raw_cycles;
    out.compute_cycles = p.compute_cycles;
    out.mem_issue_cycles = p.mem_issue_cycles;
    out.mem_stall_cycles = p.mem_stall_cycles;
    out.scalar_cycles = p.scalar_cycles;
    out.vec_instructions = p.vec_instructions;
    out.vec_elems = p.vec_elems;
    out.avg_vl = p.avg_vl();
    out.flops = p.flops;
    out.l1_accesses = p.first_level_accesses;
    out.l1_misses = p.first_level_misses;
    out.l2_accesses = p.l2_accesses;
    out.l2_misses = p.l2_misses;
    out.mem_bytes = p.mem_bytes;
    run.phases.push_back(std::move(out));
  }
  for (const PmuWindow& w : pmu.windows()) {
    obs::KernProfWindow out;
    out.t_start = w.t_start;
    out.t_end = w.t_end;
    out.compute_cycles = w.compute_cycles;
    out.mem_issue_cycles = w.mem_issue_cycles;
    out.mem_stall_cycles = w.mem_stall_cycles;
    out.scalar_cycles = w.scalar_cycles;
    out.avg_vl = w.avg_vl();
    out.lane_utilization = w.lane_utilization(c.vpu.lanes);
    out.l1_miss_rate = w.l1_miss_rate();
    out.l2_miss_rate = w.l2_miss_rate();
    out.dram_bytes_per_cycle = w.dram_bytes_per_cycle();
    out.mem_bytes = w.mem_bytes;
    run.windows.push_back(out);
  }
  return run;
}

}  // namespace

TimingStats conv_simulate_no_obs(Algo algo, const ConvLayerDesc& d,
                                 const SimConfig& config) {
  return simulate_impl(algo, d, config, nullptr);
}

TimingStats conv_simulate(Algo algo, const ConvLayerDesc& d,
                          const SimConfig& config, obs::KernProfRun* profile) {
  obs::Span span("conv_simulate");
  if (span.active()) {
    span.arg("algo", to_string(algo));
    span.arg("layer", d.to_string());
    span.arg("vlen", std::to_string(config.vpu.vlen_bits));
  }
  TimingStats stats;
  if (obs::kernprof_enabled()) {
    Pmu pmu(obs::kernprof_interval_cycles(),
            obs::kernprof_interval_overridden());
    stats = simulate_impl(algo, d, config, &pmu);
    pmu.finalize(stats);
    obs::KernProfRun run = kernprof_run_from_pmu(pmu, algo, d, config, stats);
    obs::KernProfSink::global().record(run.label, run.to_jsonl());
    if (profile != nullptr) *profile = std::move(run);
  } else {
    stats = simulate_impl(algo, d, config, nullptr);
  }
  if (obs::metrics_enabled()) {
    // Simulated cycles per point; the matching host cost lands in the
    // span.conv_simulate.us histogram, so the report shows both sides of the
    // simulated-cycles vs host-time ratio.
    static obs::Histogram& cycles =
        obs::Registry::global().histogram("conv_simulate.cycles");
    cycles.observe(static_cast<std::uint64_t>(stats.cycles));
  }
  return stats;
}

Tensor conv_functional(Algo algo, const ConvLayerDesc& d, const Tensor& in,
                       const std::vector<float>& weights_oihw,
                       const VpuConfig& vpu, TimingStats* timing_out,
                       const SimConfig* config_in) {
  if (!algo_applicable(algo, d)) {
    throw std::invalid_argument("conv_functional: algorithm not applicable");
  }
  if (in.layout() != Layout::kNCHW || in.c() != d.ic || in.h() != d.ih ||
      in.w() != d.iw) {
    throw std::invalid_argument("conv_functional: input shape/layout mismatch");
  }
  if (weights_oihw.size() != d.weight_elems()) {
    throw std::invalid_argument("conv_functional: weight size mismatch");
  }

  SimConfig config = config_in ? *config_in : SimConfig{};
  config.vpu = vpu;
  config.mem.attach = vpu.attach;
  MemorySystem mem(config.mem);
  TimingModel timing(vpu, &mem, config.timing);
  FunctionalEngine eng(vpu, timing_out ? &timing : nullptr);

  Tensor out(d.oc, d.oh(), d.ow(), Layout::kNCHW);

  switch (algo) {
    case Algo::kDirect: {
      if (direct_uses_wide(d, vpu.mvl())) {
        const std::vector<float> in_nhwc = flatten_nhwc(in);
        const std::vector<float> w =
            reformat_weights_direct(d, weights_oihw, vpu.mvl());
        const BufView in_v = eng.bind(in_nhwc.data(), in_nhwc.size());
        const BufView w_v = eng.bind(w.data(), w.size());
        Scratch out_nhwc = eng.alloc(d.out_elems());
        conv_direct(eng, d, in_v, w_v, out_nhwc.view, config.sampler);
        // Host-side layout restore (uncharged, like the forward conversion).
        const int oh = d.oh();
        const int ow = d.ow();
        for (int c = 0; c < d.oc; ++c) {
          for (int y = 0; y < oh; ++y) {
            for (int x = 0; x < ow; ++x) {
              out.at(c, y, x) =
                  (*out_nhwc.storage)[(static_cast<std::size_t>(y) * ow + x) *
                                          d.oc +
                                      c];
            }
          }
        }
      } else {
        // Binds hoisted into statements: argument evaluation order is
        // unspecified, and the arena addresses must match conv_simulate's.
        const BufView in_v = eng.bind(in.data(), in.size());
        const BufView w_v = eng.bind(weights_oihw.data(), weights_oihw.size());
        const BufView out_v = eng.bind(out.data(), out.size());
        conv_direct(eng, d, in_v, w_v, out_v, config.sampler);
      }
      break;
    }
    case Algo::kGemm3: {
      const BufView in_v = eng.bind(in.data(), in.size());
      const BufView w_v = eng.bind(weights_oihw.data(), weights_oihw.size());
      const BufView out_v = eng.bind(out.data(), out.size());
      conv_gemm3(eng, d, in_v, w_v, out_v, config.sampler);
      break;
    }
    case Algo::kGemm6: {
      const BufView in_v = eng.bind(in.data(), in.size());
      const BufView w_v = eng.bind(weights_oihw.data(), weights_oihw.size());
      const BufView out_v = eng.bind(out.data(), out.size());
      conv_gemm6(eng, d, in_v, w_v, out_v, config.blocks, config.sampler);
      break;
    }
    case Algo::kWinograd: {
      std::vector<float> u(64ull * static_cast<std::uint64_t>(d.oc) * d.ic);
      winograd_prepare_weights(d, weights_oihw.data(), u.data());
      const BufView in_v = eng.bind(in.data(), in.size());
      const BufView u_v = eng.bind(u.data(), u.size());
      const BufView out_v = eng.bind(out.data(), out.size());
      conv_winograd(eng, d, in_v, u_v, out_v, config.sampler);
      break;
    }
  }
  if (timing_out != nullptr) *timing_out = timing.stats();
  return out;
}

}  // namespace vlacnn

// Shared kernel-side types: algorithm identifiers, applicability rules, the
// sampled-simulation policy, and the 6-loop GEMM blocking parameters.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "tensor/conv_desc.h"

namespace vlacnn {

/// The four convolutional algorithms of Paper II.
enum class Algo { kDirect, kGemm3, kGemm6, kWinograd };

inline constexpr std::array<Algo, 4> kAllAlgos = {
    Algo::kDirect, Algo::kGemm3, Algo::kGemm6, Algo::kWinograd};

const char* to_string(Algo a);
Algo algo_from_string(const std::string& s);

/// Winograd F(6x6,3x3) only applies to 3x3 stride-1 layers (numerical stability
/// pins the tile to 8x8; strided variants were shown slower in Paper I). The
/// other algorithms are universal.
bool algo_applicable(Algo a, const ConvLayerDesc& d);

/// Sampled simulation policy: a kernel simulates a deterministic contiguous
/// prefix of its outer loop and extrapolates (TimingModel scaling). Exact mode
/// runs everything.
struct Sampler {
  /// Rough per-kernel budget in multiply-accumulate (or equivalent) element
  /// operations before extrapolation kicks in.
  std::uint64_t max_work = 60'000'000;
  bool exact = false;

  /// Units of `total` to simulate given per-unit work.
  std::uint64_t choose(std::uint64_t total, double work_per_unit) const {
    if (exact || total <= 2) return total;
    const double budget =
        static_cast<double>(max_work) / std::max(1.0, work_per_unit);
    auto units = static_cast<std::uint64_t>(std::ceil(budget));
    // At least four units: the first unit carries the cold-cache compulsory
    // misses, and scaling it alone would overweight them.
    units = std::max<std::uint64_t>(units, 4);
    return std::min(units, total);
  }
};

/// Blocking of the 6-loop (BLIS-like) GEMM. Defaults are the optimum found in
/// Paper I Table II (16 x 512 x 128).
struct Gemm6Blocks {
  int block_m = 16;
  int block_n = 512;
  int block_k = 128;
};

/// Register-blocking (unroll) factor shared by the GEMM kernels: Paper I tuned
/// this to 16 vector registers.
inline constexpr int kGemmUnroll = 16;

}  // namespace vlacnn

#include "algos/gemm6.h"

#include "algos/gemm_common.h"

namespace vlacnn {

namespace {

/// Vector copy of `len` contiguous elements (pack helper).
template <class E>
void copy_row(E& eng, BufView src, std::uint64_t src_off, BufView dst,
              std::uint64_t dst_off, std::uint64_t len) {
  for (std::uint64_t x = 0; x < len;) {
    const std::uint64_t vl = eng.setvl(len - x);
    auto v = eng.vload(src, src_off + x, vl);
    eng.vstore(v, dst, dst_off + x);
    x += vl;
  }
}

}  // namespace

template <class E>
void gemm6_kernel(E& eng, std::uint64_t m, std::uint64_t n, std::uint64_t k,
                  BufView a, BufView b, BufView c, const Gemm6Blocks& blocks,
                  const Sampler& sampler) {
  using Vec = typename E::Vec;
  const bool sample = !E::computes();
  const std::uint64_t bm = blocks.block_m;
  const std::uint64_t bn = blocks.block_n;
  const std::uint64_t bk = blocks.block_k;

  Scratch pack_b = eng.alloc(bk * bn);
  Scratch pack_a = eng.alloc(bm * bk);

  const std::uint64_t jj_blocks = (n + bn - 1) / bn;
  const std::uint64_t kk_blocks = (k + bk - 1) / bk;
  const std::uint64_t units = jj_blocks * kk_blocks;
  // Cache-block units are heterogeneous (edge blocks are smaller), so the
  // extrapolation is work-weighted: simulate the shortest prefix covering the
  // sampling budget and scale by total work / sampled work.
  double total_work = 0;
  for (std::uint64_t u = 0; u < units; ++u) {
    const std::uint64_t nb = std::min(bn, n - (u / kk_blocks) * bn);
    const std::uint64_t kb = std::min(bk, k - (u % kk_blocks) * bk);
    total_work += static_cast<double>(m) * nb * kb;
  }
  std::uint64_t run_units = units;
  double sampled_work = total_work;
  if (sample && !sampler.exact) {
    const double budget = static_cast<double>(sampler.max_work);
    sampled_work = 0;
    run_units = 0;
    while (run_units < units &&
           (sampled_work < budget || run_units < std::min<std::uint64_t>(units, 4))) {
      const std::uint64_t nb = std::min(bn, n - (run_units / kk_blocks) * bn);
      const std::uint64_t kb = std::min(bk, k - (run_units % kk_blocks) * bk);
      sampled_work += static_cast<double>(m) * nb * kb;
      ++run_units;
    }
  }
  const ScaledRegion scaled(
      sample && run_units < units ? eng.timing() : nullptr,
      total_work / sampled_work);

  for (std::uint64_t unit = 0; unit < run_units; ++unit) {
    const std::uint64_t jj = (unit / kk_blocks) * bn;
    const std::uint64_t kk = (unit % kk_blocks) * bk;
    const std::uint64_t nb = std::min(bn, n - jj);
    const std::uint64_t kb = std::min(bk, k - kk);

    // Pack the B block (kb x nb) into contiguous storage.
    {
      PmuPhase phase(eng.timing(), "pack-b");
      for (std::uint64_t kr = 0; kr < kb; ++kr) {
        copy_row(eng, b, (kk + kr) * n + jj, pack_b.view, kr * nb, nb);
      }
    }

    for (std::uint64_t ii = 0; ii < m; ii += bm) {
      const std::uint64_t mb = std::min(bm, m - ii);
      // Pack the A block (mb x kb).
      {
        PmuPhase phase(eng.timing(), "pack-a");
        for (std::uint64_t ir = 0; ir < mb; ++ir) {
          copy_row(eng, a, (ii + ir) * k + kk, pack_a.view, ir * kb, kb);
        }
      }

      PmuPhase phase(eng.timing(), "macro-kernel");
      for (std::uint64_t j = 0; j < nb;) {
        const std::uint64_t gvl = eng.setvl(nb - j);
        for (std::uint64_t i = 0; i < mb; i += kGemmUnroll) {
          const std::uint64_t u_count =
              std::min<std::uint64_t>(kGemmUnroll, mb - i);
          // Prefetch the C sub-block and the packed panels (no-ops when the
          // toolchain drops prefetches; effective on hardware — Paper I).
          eng.prefetch(c, (ii + i) * n + jj + j, u_count * gvl * 4);
          eng.prefetch(pack_a.view, i * kb, u_count * kb * 4);
          eng.prefetch(pack_b.view, j, kb * gvl * 4);
          Vec vc[kGemmUnroll];
          for (std::uint64_t u = 0; u < u_count; ++u) {
            vc[u] = eng.vload(c, (ii + i + u) * n + jj + j, gvl);
          }
          for (std::uint64_t kr = 0; kr < kb; ++kr) {
            Vec vb = eng.vload(pack_b.view, kr * nb + j, gvl);
            for (std::uint64_t u = 0; u < u_count; ++u) {
              const float s = eng.scalar_load(pack_a.view, (i + u) * kb + kr);
              eng.vfma_vs(vc[u], s, vb);
            }
          }
          for (std::uint64_t u = 0; u < u_count; ++u) {
            eng.vstore(vc[u], c, (ii + i + u) * n + jj + j);
          }
          eng.scalar_ops(2 * kb);
        }
        j += gvl;
      }
    }
  }
}

template <class E>
void conv_gemm6(E& eng, const ConvLayerDesc& d, BufView in, BufView weights,
                BufView out, const Gemm6Blocks& blocks, const Sampler& sampler) {
  Scratch col = eng.alloc(d.gemm_k() * d.gemm_n());
  im2col_engine(eng, d, in, col.view, sampler);
  gemm6_kernel(eng, d.gemm_m(), d.gemm_n(), d.gemm_k(), weights, col.view, out,
               blocks, sampler);
}

template void gemm6_kernel<TraceEngine>(TraceEngine&, std::uint64_t,
                                        std::uint64_t, std::uint64_t, BufView,
                                        BufView, BufView, const Gemm6Blocks&,
                                        const Sampler&);
template void gemm6_kernel<FunctionalEngine>(FunctionalEngine&, std::uint64_t,
                                             std::uint64_t, std::uint64_t,
                                             BufView, BufView, BufView,
                                             const Gemm6Blocks&, const Sampler&);
template void conv_gemm6<TraceEngine>(TraceEngine&, const ConvLayerDesc&,
                                      BufView, BufView, BufView,
                                      const Gemm6Blocks&, const Sampler&);
template void conv_gemm6<FunctionalEngine>(FunctionalEngine&,
                                           const ConvLayerDesc&, BufView,
                                           BufView, BufView, const Gemm6Blocks&,
                                           const Sampler&);

}  // namespace vlacnn

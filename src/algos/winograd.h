// Winograd F(6x6,3x3) convolution with inter-tile parallelism across channels
// (Paper I Section IV.B / Fig. 4-5; used on RVV in Paper II).
//
// Pipeline per layer:
//   1. input transform  V[64][ic][P]  = B^T d B per 8x8 tile, vectorized across
//      a block of channels (vector = channel-block x 8 tile columns, capped at
//      2048 bits — the implementation property that saturates Winograd's VLEN
//      scaling beyond 2048-bit vectors),
//   2. tuple multiplication: 64 independent (oc x ic x P) GEMMs, vectorized
//      over tiles with the same 2048-bit block cap,
//   3. output transform Y = A^T M A, symmetric to step 1.
// Transposes between transform stages go through scratch buffers with strided
// stores (RVV lacks the tuple/transpose intrinsics ARM-SVE has — Paper I
// Section VII), which is part of the algorithm's modelled cost.
//
// The weight transform (U = G g G^T) is offline for inference and excluded from
// timing, exactly as in Paper I's evaluation.
#pragma once

#include "algos/conv_args.h"
#include "tensor/conv_desc.h"
#include "vpu/buffer.h"
#include "vpu/functional_engine.h"
#include "vpu/trace_engine.h"

namespace vlacnn {

/// Tuple-multiplication / transform vector-length cap in elements (2048 bits of
/// fp32 — Paper I: "16 blocks with 4 elements in each block").
inline constexpr std::uint64_t kWinoVlCapElems = 64;

/// Output-tile edge used throughout the papers (8x8 input tiles).
inline constexpr int kWinoDefaultM = 6;

/// Number of m x m output tiles for a layer.
std::uint64_t winograd_tile_count(const ConvLayerDesc& d,
                                  int m = kWinoDefaultM);

/// Host-side weight transform: OIHW 3x3 weights -> U[(m+2)^2][oc][ic]
/// (tiles stored transposed; see the orientation notes in winograd.cpp).
void winograd_prepare_weights(const ConvLayerDesc& d, const float* weights_oihw,
                              float* u, int m = kWinoDefaultM);

/// in: NCHW, u: transformed weights [(m+2)^2][oc][ic], out: NCHW.
/// Requires algo_applicable(kWinograd, d). `m` in {2, 4, 6} selects
/// F(mxm, 3x3); the papers use 6 (larger tiles are numerically unsafe,
/// smaller ones do more arithmetic — see bench_wino_tilesize).
template <class E>
void conv_winograd(E& eng, const ConvLayerDesc& d, BufView in, BufView u,
                   BufView out, const Sampler& sampler, int m = kWinoDefaultM);

extern template void conv_winograd<TraceEngine>(TraceEngine&,
                                                const ConvLayerDesc&, BufView,
                                                BufView, BufView,
                                                const Sampler&, int);
extern template void conv_winograd<FunctionalEngine>(FunctionalEngine&,
                                                     const ConvLayerDesc&,
                                                     BufView, BufView, BufView,
                                                     const Sampler&, int);

}  // namespace vlacnn

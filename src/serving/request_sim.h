// Request-level, discrete-event serving simulator and SLO capacity planner.
//
// Layers what users actually experience — queueing delay, tail latency, SLO
// attainment under bursty traffic — on top of the steady-state co-location
// simulator (serving.h). The event loop is fully deterministic: simulated
// time is a cycle counter (no wall clock), arrivals come from seeded
// processes (arrivals.h), batches are cut by pluggable policies (batching.h),
// and each instance's service time per image comes from the same SweepDriver
// per-layer cycle model every figure is built from. Same seed + same grid ⇒
// byte-identical stats, regardless of VLACNN_THREADS (the per-point sims are
// independent; the planner writes them into pre-sized slots, extending the
// repo's parallel-equals-serial guarantee to request-level results).
//
// Units: all latencies and timestamps are **cycles**; ServingStats converts
// to milliseconds only at a caller-supplied clock (2 GHz everywhere else in
// the repo). Percentiles are nearest-rank on the exact per-request cycle
// values — no interpolation, so a percentile is always a latency some
// simulated request actually saw (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serving/arrivals.h"
#include "serving/batching.h"
#include "serving/serving.h"

namespace vlacnn {
class ThreadPool;
}

namespace vlacnn::obs {
class TimelineRecorder;
class RequestTraceRecorder;
struct TraceNote;
}

namespace vlacnn::serving {

/// Deterministic service-time model for one model instance running a batch:
///   service_cycles(b) = first_image_cycles + (b - 1) * marginal_image_cycles.
/// first >= marginal encodes why batching helps at all in a deterministic
/// cost model: the first image of a batch streams the network's weights from
/// DRAM, later images in the same batch reuse them from cache.
struct BatchCostModel {
  double first_image_cycles = 0;     ///< cycles for a batch of one
  double marginal_image_cycles = 0;  ///< added cycles per extra image

  double service_cycles(int batch) const {
    return first_image_cycles +
           static_cast<double>(batch - 1) * marginal_image_cycles;
  }
};

/// Build the cost model for one hardware point from the sweep: per-image
/// cycles are `SweepDriver::network_optimal` (or network_cycles when `fixed`
/// pins an algorithm) at (vlen, L2 slice); the amortizable share is the
/// conv-weight footprint streamed at `mem_bytes_per_cycle` (the roofline's
/// 6.4 B/cycle DDR4 default), clamped to at most half of the per-image cost
/// so a pathological model never yields near-zero marginal cost. Throws
/// std::invalid_argument when mem_bytes_per_cycle is not positive (the
/// division would silently yield inf/NaN cycles).
/// Thread-safe (SweepDriver is; used concurrently by the capacity planner).
BatchCostModel batch_cost_model(SweepDriver& driver, const Network& net,
                                std::uint32_t vlen_bits,
                                std::uint64_t l2_slice_bytes,
                                std::optional<Algo> fixed,
                                double mem_bytes_per_cycle = 6.4);

/// Per-batch service-time source for the event loop. The fixed/oracle path
/// wraps a BatchCostModel; the learned dispatcher (src/dispatch) re-plans the
/// per-layer algorithm choice on every call. Models may be stateful — the
/// loop calls service_cycles() exactly once per dispatched batch, in the
/// deterministic event order — but are not thread-safe: one model per
/// simulation, like the arrival process.
class ServiceModel {
 public:
  virtual ~ServiceModel() = default;

  /// Cycles one instance needs to serve a batch of `batch` images (>= 1).
  /// Must return a positive, finite value.
  virtual double service_cycles(int batch) = 0;

  /// Append key=value notes describing the *most recent* service_cycles()
  /// decision (chosen plan, exploration state, selector charge...). The
  /// request tracer (obs/reqtrace.h) attaches them to every request of the
  /// batch; called at most once per dispatch, and only when a trace recorder
  /// is active — never on the no-obs path. Default: no notes.
  virtual void trace_annotations(std::vector<obs::TraceNote>& out);
};

/// ServiceModel over a fixed BatchCostModel — stateless, the pre-dispatch
/// behaviour of simulate_requests.
class FixedServiceModel final : public ServiceModel {
 public:
  explicit FixedServiceModel(const BatchCostModel& cost) : cost_(cost) {}
  double service_cycles(int batch) override {
    return cost_.service_cycles(batch);
  }

 private:
  BatchCostModel cost_;
};

/// Total fp32 conv-weight bytes of a network (the per-batch amortizable DRAM
/// traffic in the cost model above).
double conv_weight_bytes(const Network& net);

/// Nearest-rank percentile: the ceil(q * n)-th smallest sample (1-indexed) of
/// an ascending, non-empty vector; q in (0, 1]. Exact — the result is always
/// one of the samples, never an interpolation. Throws std::invalid_argument
/// on an empty vector or q outside (0, 1].
double nearest_rank(const std::vector<double>& sorted_ascending, double q);

/// The 0-based index nearest_rank() selects for a sample of size n, exposed
/// so rank arithmetic is testable at any n without materialising a vector.
/// Throws std::invalid_argument when n == 0 or q is outside (0, 1].
std::size_t nearest_rank_index(std::size_t n, double q);

/// Split `total` (>= 0) into {head, tail} such that head + tail == total
/// **exactly in floating point**, with head within one rounding of
/// `head_approx` (clamped to [0, total]). Naive subtraction cannot promise
/// that: fl(total - head) + head can miss total by an ulp. This uses the
/// Sterbenz lemma — whichever of the two parts lands in [total/2, total],
/// subtracting it from total is exact — so the returned pair always
/// reconstitutes total. Zero/negative/NaN total yields {0, 0}. The latency
/// attribution below leans on this: components must sum to the latency a
/// request actually saw, byte for byte.
std::pair<double, double> exact_split(double total, double head_approx);

/// Per-request latency attribution, appended to RequestSimConfig::request_log
/// in completion order (batch members in FIFO order within a batch). The
/// decomposition is exact by construction:
///   (queue_wait + formation_wait) + service == completion - arrival
/// evaluated left-to-right in floating point (see exact_split). queue_wait is
/// the share of the pre-dispatch wait during which *all* instances were busy
/// (true capacity queueing); formation_wait is the share with an instance
/// idle — time the batching policy chose to hold the request back.
struct RequestRecord {
  double arrival = 0;         ///< cycles: joined the queue
  double dispatch = 0;        ///< cycles: batch started
  double completion = 0;      ///< cycles: batch finished
  double queue_wait = 0;      ///< all-instances-busy share of the wait
  double formation_wait = 0;  ///< instance-idle (policy) share of the wait
  double service = 0;         ///< in-service cycles
  bool within_slo = true;     ///< latency <= slo_cycles (true when no SLO)
};

/// One simulation's request-level results. All latency fields are in cycles;
/// use ms() to render at a clock. Counts: offered = completed + dropped once
/// the loop drains (open-loop processes always drain; closed-loop by
/// construction).
struct ServingStats {
  std::uint64_t offered = 0;    ///< arrivals reaching the queue (or dropped)
  std::uint64_t completed = 0;  ///< requests served to completion
  std::uint64_t dropped = 0;    ///< rejected: queue at capacity on arrival
  std::uint64_t batches = 0;    ///< dispatches executed
  double mean_batch = 0;        ///< completed / batches

  double p50 = 0, p95 = 0, p99 = 0, p999 = 0;  ///< latency, cycles
  double mean_latency = 0, max_latency = 0;    ///< latency, cycles
  double mean_wait = 0;                        ///< queueing delay, cycles

  /// Mean latency attribution (cycles): where a request's time actually went.
  /// Per request the three components sum exactly to its latency (see
  /// RequestRecord); the means are each component's sum / completed.
  double mean_queue_wait = 0;      ///< all-instances-busy wait
  double mean_formation_wait = 0;  ///< batching-policy (instance-idle) wait
  double mean_service = 0;         ///< in-service time
  double makespan = 0;          ///< last completion (or arrival), cycles
  double mean_queue = 0;        ///< time-weighted queue depth
  double max_queue = 0;         ///< peak queue depth
  double utilization = 0;       ///< busy instance-cycles / (instances*makespan)

  double slo = 0;               ///< deadline in cycles (0 = none given)
  double slo_attainment = 1;    ///< completed within slo / offered; drops miss

  /// cycles -> milliseconds at `clock_hz`.
  static double ms(double cycles, double clock_hz) {
    return cycles / clock_hz * 1e3;
  }
  /// Served requests per second at `clock_hz` over the makespan.
  double throughput_rps(double clock_hz) const;

  /// Canonical byte-stable rendering (%.17g doubles, fixed key order, no
  /// wall-clock fields) — what the determinism guarantee is stated over.
  std::string to_json() const;
};

/// Static configuration of one request-level simulation.
struct RequestSimConfig {
  int instances = 1;              ///< parallel model instances (servers)
  BatchCostModel cost;            ///< per-instance batch service time
  /// When set, overrides `cost` as the per-batch service-time source (not
  /// owned; must outlive the simulation). The fixed-cost validation is the
  /// model's own responsibility in that case.
  ServiceModel* service = nullptr;
  std::size_t queue_capacity = 0; ///< waiting-room bound; 0 = unbounded
  double slo_cycles = 0;          ///< latency deadline for attainment; 0 = off

  /// Timeline hook (obs/timeline.h). When set, the event loop drives this
  /// caller-owned recorder (finish() is called with the final makespan) and
  /// nothing is sunk globally. When null and the VLACNN_TIMELINE knob is on,
  /// the loop creates its own recorder and records the finished block in
  /// TimelineSink::global() under `timeline_label` (auto-sequenced when
  /// empty — parallel drivers must label; the capacity planner does).
  obs::TimelineRecorder* timeline = nullptr;
  std::string timeline_label;

  /// Request-trace hook (obs/reqtrace.h), same ownership contract as
  /// `timeline`: a caller-owned recorder is driven by the loop (finish() is
  /// called; nothing is sunk globally — the capacity planner uses this to
  /// label blocks by grid point). When null and the VLACNN_REQTRACE knob is
  /// on, the loop creates its own recorder (default config, no per-layer
  /// segments) and records the block in ReqTraceSink::global() under
  /// `reqtrace_label` (auto-sequenced when empty).
  obs::RequestTraceRecorder* reqtrace = nullptr;
  std::string reqtrace_label;

  /// When set, the loop appends one RequestRecord per *completed* request
  /// (drops produce no record). Not an obs hook: the log is product output
  /// and is filled by simulate_requests_no_obs too.
  std::vector<RequestRecord>* request_log = nullptr;
};

/// Run the discrete-event loop to exhaustion: every arrival the process
/// produces is either served or dropped, and all in-flight batches complete.
/// Deterministic: event order is (time, completions < arrivals < flushes,
/// FIFO seq). Single-threaded and allocation-light — callers parallelize
/// across *simulations*, never within one. ~O(requests * log instances).
ServingStats simulate_requests(const RequestSimConfig& cfg,
                               ArrivalProcess& arrivals,
                               BatchingPolicy& policy);

/// The same loop compiled with every observability hook (metrics, trace,
/// timeline) removed — the baseline side of bench_obs_overhead's serving
/// gate. Produces identical ServingStats and request_log; cfg.timeline is
/// ignored.
ServingStats simulate_requests_no_obs(const RequestSimConfig& cfg,
                                      ArrivalProcess& arrivals,
                                      BatchingPolicy& policy);

/// A capacity-planning question: can a configuration carry `load_rps` of
/// Poisson traffic while `attainment_target` of requests finish within
/// `slo_ms`? Cycle budget = slo_ms at clock_hz.
struct CapacityQuery {
  double load_rps = 1000;
  double slo_ms = 50;
  double attainment_target = 0.99;
  std::uint64_t requests = 2000;  ///< simulated request count per point
  std::uint64_t seed = 42;        ///< arrival-process seed (shared per point)
  double clock_hz = 2e9;
  double area_budget_mm2 = 0;     ///< 0 = unbounded
  BatchPolicySpec policy{BatchPolicySpec::Kind::kAdaptive, 8, 0};
  std::size_t queue_capacity = 0;
};

/// One grid point's verdict: the steady-state evaluation (area, per-image
/// cycles) plus the request-level stats under the query's load.
struct CapacityCandidate {
  ServingEval eval;
  ServingStats stats;
  bool meets_slo = false;  ///< attainment >= target (and under budget, if set)
};

/// Builds one fresh ServiceModel per simulated grid point. The planner calls
/// it from pool workers, so the factory must be thread-safe (the models it
/// returns need not be — each is used by exactly one simulation). Keeps the
/// serving layer ignorant of how service times are produced: the learned
/// dispatcher plugs in here without request_sim depending on src/dispatch.
using ServiceModelFactory =
    std::function<std::unique_ptr<ServiceModel>(const ServingPoint&)>;

/// Searches the Fig-12 co-location grid for configurations that meet a
/// latency SLO at a target load, and picks the cheapest (area mm²) one.
/// Thread-safe const API; grid evaluation fans out per point.
class CapacityPlanner {
 public:
  explicit CapacityPlanner(SweepDriver* driver, AreaModel area = {})
      : sim_(driver, area), driver_(driver) {}

  /// Simulate every feasible Fig-12 grid point under the query's Poisson
  /// load. Results are in the deterministic grid enumeration order and each
  /// point's stats depend only on (point, query) — byte-identical across
  /// thread counts. `pool` overrides the shared pool (tests pin sizes 1 vs 8);
  /// nullptr uses ThreadPool::shared().
  std::vector<CapacityCandidate> evaluate_grid(const Network& net,
                                               const CapacityQuery& q,
                                               std::optional<Algo> fixed,
                                               ThreadPool* pool = nullptr) const;

  /// Same grid search, with per-batch service times from `factory` instead of
  /// the fixed oracle cost model (the learned-dispatch path). The steady-state
  /// eval side (area, cycles_per_image) still reports the per-layer-optimal
  /// oracle, so a candidate's stats can be read against the oracle baseline.
  std::vector<CapacityCandidate> evaluate_grid(const Network& net,
                                               const CapacityQuery& q,
                                               const ServiceModelFactory& factory,
                                               ThreadPool* pool = nullptr) const;

  /// Evaluate one explicit configuration under the query's load.
  CapacityCandidate evaluate(const Network& net, const ServingPoint& point,
                             const CapacityQuery& q,
                             std::optional<Algo> fixed) const;

  /// Evaluate one configuration with a factory-built service model.
  CapacityCandidate evaluate(const Network& net, const ServingPoint& point,
                             const CapacityQuery& q,
                             const ServiceModelFactory& factory) const;

  /// The cheapest (smallest area, ties by enumeration order) candidate with
  /// meets_slo; nullopt when none qualifies.
  static std::optional<CapacityCandidate> cheapest(
      const std::vector<CapacityCandidate>& candidates);

 private:
  /// Shared tail of both evaluate() flavours: run the request-level sim for a
  /// fully-populated RequestSimConfig and fill in stats/meets_slo/report cell.
  CapacityCandidate simulate_point(const Network& net, const ServingPoint& point,
                                   const CapacityQuery& q,
                                   std::optional<Algo> eval_fixed,
                                   RequestSimConfig rc) const;

  ServingSimulator sim_;
  SweepDriver* driver_;
};

}  // namespace vlacnn::serving

// Multi-chip fleet serving simulator (DESIGN.md §15).
//
// Composes N single-chip request simulators — each chip a ServingPoint with
// its own instances, per-(chip,model) FIFO queues, and batching policies —
// behind a front-end router (fleet_router.h) into ONE deterministic
// discrete-event loop on the same simulated cycle clock as
// serving/request_sim. Traffic is a seeded mix over several models (YOLOv3 +
// VGG-16 in the paper's co-location study); per-model placement restricts
// which chips host which model, and the router picks among the hosts.
//
// Determinism contract (the §10 guarantee, extended fleet-wide): simulated
// time is a cycle counter, arrivals/mix/router draw only from seeded
// splitmix64 Rngs, and the event tie order at equal timestamps is fixed —
//   completions < queue-joins (router-hop delivery) < arrivals < flushes,
// with completions popping (chip, instance) ascending and dispatch scanning
// (chip, model) ascending. Same seeds ⇒ byte-identical FleetStats JSON,
// regardless of VLACNN_THREADS (the loop itself is single-threaded; the fleet
// planner parallelizes across *fleets*, never within one).
//
// Latency attribution extends the Sterbenz-exact single-chip fold with a
// router-hop span. For every completed request, evaluated left-to-right in
// floating point:
//   (router_hop + (queue_wait + formation_wait)) + service
//     == completion - arrival
// bit-exactly — a chain of exact_split()s, so the existing identity is the
// hop == 0 special case (0.0 + x == x in IEEE 754). The hop lands in
// per-request traces as its own span (obs/reqtrace.h router_hop/chip fields).
//
// Units: all latencies and timestamps are **cycles**; conversions to
// milliseconds happen only at the CLI edge (2 GHz presentation clock).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serving/fleet_router.h"
#include "serving/request_sim.h"

namespace vlacnn::serving {

/// One chip of the fleet: a single-chip hardware point plus the subset of
/// models it hosts (placement). Chips are heterogeneous — the planner draws
/// them from different points of the area/throughput Pareto frontier.
struct ChipSpec {
  ServingPoint point;
  /// Model ids this chip serves, ascending. Empty = hosts every model
  /// (full replication, the planner's default placement).
  std::vector<int> hosted_models;

  /// True when this chip serves `model`.
  bool hosts(int model) const;

  /// Compact stable label, e.g. "c4v2048l16i4" (cores, vlen bits, shared L2
  /// MB, instances) — keys per-chip JSON and obs sink blocks.
  std::string short_label() const;
};

/// A chip with its per-model batch cost models resolved (one BatchCostModel
/// per model id, from batch_cost_model() at the chip's vlen/L2 slice) and its
/// silicon area. The event loop never touches the sweep driver: callers
/// resolve costs up front, so simulate_fleet() is a pure function of its
/// inputs.
struct FleetChip {
  ChipSpec spec;
  /// Indexed by model id; size = number of models in the mix. Entries for
  /// models the chip does not host are never read.
  std::vector<BatchCostModel> costs;
  double area_mm2 = 0;  ///< AreaModel::chip_mm2 of spec.point
};

/// Seeded multi-model traffic mix: request `seq` (1-based fleet arrival
/// order) is model pick(seq). The draw is a pure function of (seed, seq) —
/// independent of thread count and of every other request — so the per-model
/// request stream is reproducible and stable under fleet recomposition.
struct FleetTrafficMix {
  std::vector<std::string> names;  ///< model names ("vgg16", "yolo20", ...)
  std::vector<double> shares;      ///< positive weights, same size as names
  std::uint64_t seed = 1;          ///< mix draw seed

  /// The model id serving request `seq` (1-based). Throws
  /// std::invalid_argument on an empty or inconsistent mix.
  int pick(std::uint64_t seq) const;

  /// Normalized stable rendering, e.g. "vgg16=0.70,yolo20=0.30".
  std::string to_string() const;
};

/// Per-request fleet attribution, appended to FleetConfig::request_log in
/// completion order. `rec.arrival` is the *fleet* arrival (before the router
/// hop), so the extended identity holds:
///   (router_hop + (rec.queue_wait + rec.formation_wait)) + rec.service
///     == rec.completion - rec.arrival, left-to-right, bit-exactly.
struct FleetRequestRecord {
  int model = 0;          ///< mix model id
  int chip = 0;           ///< serving chip index
  double router_hop = 0;  ///< front-end hop span, cycles (exact-split share)
  RequestRecord rec;      ///< single-chip-shaped attribution (fleet arrival)
};

/// Per-model slice of a fleet run: the latency/SLO experience one traffic
/// class saw across every chip that served it. Latencies are fleet latencies
/// (completion - fleet arrival, hop included).
struct FleetModelStats {
  std::string name;
  std::uint64_t offered = 0, completed = 0, dropped = 0;
  double p50 = 0, p99 = 0, p999 = 0;  ///< cycles
  double mean_latency = 0;            ///< cycles
  double slo_attainment = 1;          ///< within-SLO completions / offered
};

/// One fleet simulation's results. `fleet` aggregates every request at the
/// fleet level (latency = completion - fleet arrival; mean_wait includes the
/// router hop; utilization and mean_queue are normalized over all instances
/// and the fleet makespan). `per_chip[i]` is the same ServingStats shape
/// scoped to chip i's requests — its makespan is the *fleet* makespan so
/// utilizations compare across chips, and its mean_queue_wait /
/// mean_formation_wait / mean_service cover only the on-chip spans (the hop
/// is a fleet-level span, reported via mean_router_hop).
struct FleetStats {
  ServingStats fleet;
  double mean_router_hop = 0;          ///< mean hop span, cycles
  double total_area_mm2 = 0;           ///< sum of chip areas
  std::vector<ServingStats> per_chip;  ///< chip order = FleetConfig::chips
  std::vector<FleetModelStats> per_model;  ///< mix model order
  std::vector<std::string> chip_labels;    ///< ChipSpec::short_label per chip

  /// Canonical byte-stable rendering (%.17g doubles, fixed key order, no
  /// wall-clock fields) — what the fleet determinism guarantee is stated
  /// over; the vlacnn.fleet.v1 payload embeds it verbatim.
  std::string to_json() const;
};

/// Static configuration of one fleet simulation.
struct FleetConfig {
  std::vector<FleetChip> chips;  ///< at least one; every model needs a host
  FleetTrafficMix mix;
  RouterSpec router;
  BatchPolicySpec policy;          ///< one fresh policy per (chip, model)
  std::size_t queue_capacity = 0;  ///< per-chip waiting-room bound; 0 = none
  double slo_cycles = 0;           ///< latency deadline; 0 = off
  double router_hop_cycles = 0;    ///< constant front-end network hop, >= 0
  double attainment_target = 0.99; ///< SLO burn-rate budget (timeline only)

  /// When set, the loop appends one FleetRequestRecord per *completed*
  /// request (drops produce no record). Product output, always filled.
  std::vector<FleetRequestRecord>* request_log = nullptr;

  /// Label prefix for obs sink blocks (timeline blocks are recorded per chip
  /// as "<label>/chip<ii>", the request-trace block as "<label>"). Empty =
  /// sink auto-labels; parallel drivers (the fleet planner) must label.
  std::string label;

  /// Expected simulated horizon in cycles (requests * mean interarrival).
  /// When positive and VLACNN_TIMELINE_INTERVAL was not pinned, per-chip
  /// timeline cadence is coarsened to ~256 snapshots per chip, mirroring the
  /// capacity planner's bound. 0 = use the default cadence as-is.
  double expected_horizon_cycles = 0;
};

/// Run the fleet event loop to exhaustion: every arrival the process
/// produces is routed, then served or dropped, and all in-flight batches and
/// in-transit hops drain. Deterministic (see file header); single-threaded —
/// callers parallelize across *fleets*. Throws std::invalid_argument on an
/// inconsistent config (no chips, hostless model, bad mix/costs, negative
/// hop). ~O(requests * (chips * models + log instances)).
FleetStats simulate_fleet(const FleetConfig& cfg, ArrivalProcess& arrivals);

}  // namespace vlacnn::serving

#include "serving/fleet_planner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "area/pareto.h"
#include "common/thread_pool.h"
#include "obs/log.h"
#include "report/collector.h"

namespace vlacnn::serving {

namespace {

const char* router_kind_name(RouterSpec::Kind k) {
  switch (k) {
    case RouterSpec::Kind::kRoundRobin:
      return "rr";
    case RouterSpec::Kind::kJoinShortestQueue:
      return "jsq";
    case RouterSpec::Kind::kPowerOfTwo:
      return "p2c";
  }
  return "?";
}

/// Normalized mix fractions (shares validated positive by the mix itself).
std::vector<double> mix_fractions(const FleetTrafficMix& mix) {
  double total = 0;
  for (double s : mix.shares) total += s;
  std::vector<double> frac;
  frac.reserve(mix.shares.size());
  for (double s : mix.shares) frac.push_back(s / total);
  return frac;
}

void validate_inputs(const std::vector<Network>& nets,
                     const FleetTrafficMix& mix, const FleetQuery& q) {
  if (mix.names.empty() || mix.names.size() != mix.shares.size()) {
    throw std::invalid_argument("FleetPlanner: inconsistent traffic mix");
  }
  if (nets.size() != mix.names.size()) {
    throw std::invalid_argument(
        "FleetPlanner: need one Network per mix model, in mix order");
  }
  if (!(q.load_rps > 0) || !(q.slo_ms > 0) || !(q.clock_hz > 0)) {
    throw std::invalid_argument(
        "FleetPlanner: load, SLO, and clock must be positive");
  }
  if (q.max_chips < 1 || q.max_chip_types < 1) {
    throw std::invalid_argument(
        "FleetPlanner: max_chips and max_chip_types must be >= 1");
  }
  mix.pick(1);  // validates shares (positive, finite)
}

/// All count vectors over `types` with sum in [1, max_chips], lexicographic
/// by (counts[0], counts[1], ...) — the deterministic enumeration order every
/// plan consumer shares.
std::vector<std::vector<int>> enumerate_compositions(std::size_t types,
                                                     int max_chips) {
  std::vector<std::vector<int>> out;
  std::vector<int> counts(types, 0);
  const auto recurse = [&](auto&& self, std::size_t t, int used) -> void {
    if (t == types) {
      if (used >= 1) out.push_back(counts);
      return;
    }
    for (int n = 0; used + n <= max_chips; ++n) {
      counts[t] = n;
      self(self, t + 1, used + n);
    }
    counts[t] = 0;
  };
  recurse(recurse, 0, 0);
  return out;
}

}  // namespace

std::string composition_label(const std::vector<ServingPoint>& types,
                              const std::vector<int>& counts) {
  std::string out;
  for (std::size_t t = 0; t < types.size() && t < counts.size(); ++t) {
    if (counts[t] <= 0) continue;
    if (!out.empty()) out += '+';
    ChipSpec spec;
    spec.point = types[t];
    out += std::to_string(counts[t]) + "x" + spec.short_label();
  }
  return out;
}

std::vector<ServingPoint> FleetPlanner::chip_type_menu(
    const std::vector<Network>& nets, const FleetTrafficMix& mix,
    const FleetQuery& q) const {
  validate_inputs(nets, mix, q);
  const std::vector<double> frac = mix_fractions(mix);
  const std::vector<ServingPoint> points = ServingSimulator::grid_points();

  // Two objectives to minimise per grid point: chip area, and the
  // mix-weighted per-image service time the whole chip delivers
  // (weighted per-instance cycles / instances).
  std::vector<ParetoPoint> objs;
  objs.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ServingPoint& p = points[i];
    double weighted = 0;
    for (std::size_t m = 0; m < nets.size(); ++m) {
      weighted +=
          frac[m] *
          driver_->network_optimal(nets[m], p.vlen_bits, p.l2_slice_bytes())
              .cycles;
    }
    objs.push_back(
        {area_.chip_mm2(p.vlen_bits, p.l2_total_bytes, p.cores),
         weighted / static_cast<double>(p.instances), i});
  }
  const std::vector<std::size_t> frontier = pareto_frontier(objs);

  // Thin the frontier (area-ascending) to the menu size, always keeping both
  // endpoints — the cheapest chip and the fastest one — with the rest spread
  // evenly. Pure index arithmetic, so the menu is deterministic.
  std::vector<ServingPoint> menu;
  const std::size_t want =
      std::min<std::size_t>(frontier.size(),
                            static_cast<std::size_t>(q.max_chip_types));
  if (want == 0) return menu;
  for (std::size_t j = 0; j < want; ++j) {
    const std::size_t fi =
        want == 1 ? 0 : j * (frontier.size() - 1) / (want - 1);
    const ServingPoint& p = points[objs[frontier[fi]].tag];
    if (menu.empty() || menu.back().cores != p.cores ||
        menu.back().vlen_bits != p.vlen_bits ||
        menu.back().l2_total_bytes != p.l2_total_bytes ||
        menu.back().instances != p.instances) {
      menu.push_back(p);
    }
  }
  return menu;
}

FleetCandidate FleetPlanner::evaluate_composition(
    const std::vector<Network>& nets, const FleetTrafficMix& mix,
    const FleetQuery& q, const std::vector<ServingPoint>& types,
    const std::vector<int>& counts) const {
  validate_inputs(nets, mix, q);
  if (counts.size() != types.size()) {
    throw std::invalid_argument(
        "FleetPlanner: counts must match the type list");
  }
  FleetCandidate cand;
  cand.counts = counts;
  cand.label = composition_label(types, counts);

  FleetConfig fc;
  fc.mix = mix;
  fc.router = q.router;
  fc.policy = q.policy;
  fc.queue_capacity = q.queue_capacity;
  fc.slo_cycles = q.slo_ms * 1e-3 * q.clock_hz;
  fc.router_hop_cycles = q.router_hop_cycles;
  fc.attainment_target = q.attainment_target;
  fc.expected_horizon_cycles =
      static_cast<double>(q.requests) * (q.clock_hz / q.load_rps);
  for (std::size_t t = 0; t < types.size(); ++t) {
    if (counts[t] <= 0) continue;
    FleetChip chip;
    chip.spec.point = types[t];  // hosted_models empty = full replication
    for (const Network& net : nets) {
      chip.costs.push_back(batch_cost_model(*driver_, net,
                                            types[t].vlen_bits,
                                            types[t].l2_slice_bytes(),
                                            std::nullopt));
    }
    chip.area_mm2 = area_.chip_mm2(types[t].vlen_bits,
                                   types[t].l2_total_bytes, types[t].cores);
    for (int n = 0; n < counts[t]; ++n) fc.chips.push_back(chip);
  }
  if (fc.chips.empty()) {
    throw std::invalid_argument("FleetPlanner: empty composition");
  }
  char label[256];
  std::snprintf(label, sizeof label, "fleet/%s/%s/poisson",
                cand.label.c_str(), router_kind_name(q.router.kind));
  fc.label = label;

  ArrivalSpec as;
  as.kind = ArrivalSpec::Kind::kPoisson;
  as.mean_interarrival_cycles = q.clock_hz / q.load_rps;
  as.requests = q.requests;
  const auto arrivals = make_arrivals(as, q.seed);

  cand.stats = simulate_fleet(fc, *arrivals);
  cand.total_area_mm2 = cand.stats.total_area_mm2;
  cand.simulated = true;
  cand.meets_slo =
      cand.stats.fleet.slo_attainment >= q.attainment_target &&
      (q.area_budget_mm2 <= 0 || cand.total_area_mm2 <= q.area_budget_mm2);

  if (report::enabled()) {
    report::FleetCell cell;
    cell.label = cand.label;
    cell.router = router_kind_name(q.router.kind);
    cell.mix = mix.to_string();
    cell.chips = static_cast<int>(fc.chips.size());
    cell.total_area_mm2 = cand.total_area_mm2;
    cell.load_rps = q.load_rps;
    cell.slo_cycles = fc.slo_cycles;
    cell.offered = cand.stats.fleet.offered;
    cell.completed = cand.stats.fleet.completed;
    cell.dropped = cand.stats.fleet.dropped;
    cell.p50 = cand.stats.fleet.p50;
    cell.p99 = cand.stats.fleet.p99;
    cell.p999 = cand.stats.fleet.p999;
    cell.mean_latency = cand.stats.fleet.mean_latency;
    cell.utilization = cand.stats.fleet.utilization;
    cell.slo_attainment = cand.stats.fleet.slo_attainment;
    cell.mean_router_hop = cand.stats.mean_router_hop;
    cell.meets_slo = cand.meets_slo;
    report::Collector::global().record_fleet(cell);
  }
  return cand;
}

FleetPlan FleetPlanner::plan(const std::vector<Network>& nets,
                             const FleetTrafficMix& mix, const FleetQuery& q,
                             ThreadPool* pool) const {
  validate_inputs(nets, mix, q);
  FleetPlan plan;
  plan.chip_types = chip_type_menu(nets, mix, q);
  const std::vector<double> frac = mix_fractions(mix);

  // Per-type optimistic capacity (requests per cycle, perfect batching):
  // every image costs only the mix-weighted *marginal* cycles. No simulated
  // fleet can beat it, so compositions under the load are pruned unsimulated.
  std::vector<double> type_cap(plan.chip_types.size(), 0);
  std::vector<double> type_area(plan.chip_types.size(), 0);
  for (std::size_t t = 0; t < plan.chip_types.size(); ++t) {
    const ServingPoint& p = plan.chip_types[t];
    double marginal = 0;
    for (std::size_t m = 0; m < nets.size(); ++m) {
      marginal += frac[m] * batch_cost_model(*driver_, nets[m], p.vlen_bits,
                                             p.l2_slice_bytes(), std::nullopt)
                                .marginal_image_cycles;
    }
    type_cap[t] = static_cast<double>(p.instances) / marginal;
    type_area[t] =
        area_.chip_mm2(p.vlen_bits, p.l2_total_bytes, p.cores);
  }

  const std::vector<std::vector<int>> compositions =
      enumerate_compositions(plan.chip_types.size(), q.max_chips);
  obs::log(obs::LogLevel::kInfo, "serving", "fleet_plan",
           {{"types", std::to_string(plan.chip_types.size())},
            {"compositions", std::to_string(compositions.size())},
            {"load_rps", std::to_string(q.load_rps)}});

  // One task per composition into its pre-sized slot: each simulation depends
  // only on (nets, mix, query, composition), so the candidate list is
  // byte-identical whether the pool has 1 worker or 64.
  plan.candidates.resize(compositions.size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(compositions.size(), [&](std::size_t i) {
    const std::vector<int>& counts = compositions[i];
    double cap = 0, area = 0;
    for (std::size_t t = 0; t < counts.size(); ++t) {
      cap += counts[t] * type_cap[t];
      area += counts[t] * type_area[t];
    }
    const double need = q.load_rps / q.clock_hz;  // requests per cycle
    const bool over_budget =
        q.area_budget_mm2 > 0 && area > q.area_budget_mm2;
    if (cap < need || over_budget) {
      FleetCandidate& cand = plan.candidates[i];
      cand.counts = counts;
      cand.label = composition_label(plan.chip_types, counts);
      cand.total_area_mm2 = area;
      cand.simulated = false;
      cand.meets_slo = false;
      return;
    }
    plan.candidates[i] =
        evaluate_composition(nets, mix, q, plan.chip_types, counts);
  });

  for (const FleetCandidate& cand : plan.candidates) {
    if (!cand.simulated || !cand.meets_slo) continue;
    if (!plan.best.has_value() ||
        cand.total_area_mm2 < plan.best->total_area_mm2) {
      plan.best = cand;
    }
    int nonzero_types = 0;
    for (int n : cand.counts) nonzero_types += n > 0 ? 1 : 0;
    if (nonzero_types == 1 &&
        (!plan.best_homogeneous.has_value() ||
         cand.total_area_mm2 < plan.best_homogeneous->total_area_mm2)) {
      plan.best_homogeneous = cand;
    }
  }
  return plan;
}

}  // namespace vlacnn::serving

// Fleet capacity planner (DESIGN.md §15): the cheapest total silicon that
// carries a mixed-model load inside a latency SLO.
//
// Extends CapacityPlanner (one chip, one model) to N heterogeneous chips and
// routed multi-model traffic. The search space is deliberately two-level:
//   1. chip *types* — the Pareto frontier of (chip area, mix-weighted
//      per-image service time per instance) over the single-chip Fig-12 grid,
//      thinned to a small menu;
//   2. fleet *compositions* — every multiset of up to max_chips chips over
//      that menu, enumerated in a deterministic lexicographic order.
// Compositions that cannot possibly carry the load (an optimistic bound that
// assumes perfect batching on every chip) are pruned without simulation; the
// rest run through simulate_fleet under the query's Poisson mix. The
// heterogeneity headline — cheapest fleet vs cheapest *homogeneous* fleet —
// falls out of the same candidate list.
//
// Determinism: the menu, the enumeration order, the prune bound, and each
// candidate's simulation are pure functions of (nets, mix, query), and the
// pool writes candidates into pre-sized slots — byte-identical plans at any
// VLACNN_THREADS.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "serving/fleet.h"

namespace vlacnn::serving {

/// A fleet-planning question: the cheapest total silicon (sum of
/// AreaModel::chip_mm2 over the fleet) that carries `load_rps` of the mixed
/// Poisson traffic with `attainment_target` of requests inside `slo_ms`.
struct FleetQuery {
  double load_rps = 1000;
  double slo_ms = 50;
  double attainment_target = 0.99;
  std::uint64_t requests = 2000;  ///< simulated request count per candidate
  std::uint64_t seed = 42;        ///< arrival-process seed (shared)
  double clock_hz = 2e9;
  double area_budget_mm2 = 0;     ///< 0 = unbounded
  BatchPolicySpec policy{BatchPolicySpec::Kind::kAdaptive, 8, 0};
  std::size_t queue_capacity = 0;
  RouterSpec router;              ///< routing policy + seed for every fleet
  double router_hop_cycles = 0;   ///< constant front-end hop, cycles
  int max_chips = 4;       ///< largest fleet size searched (>= 1)
  int max_chip_types = 5;  ///< Pareto-frontier points kept as chip types
};

/// One searched fleet composition: `counts[t]` chips of the plan's
/// chip_types[t]. Pruned compositions carry simulated == false and default
/// stats.
struct FleetCandidate {
  std::vector<int> counts;  ///< per-type chip counts (sum in [1, max_chips])
  std::string label;        ///< composition_label() of (types, counts)
  double total_area_mm2 = 0;
  bool simulated = false;   ///< false = pruned by the optimistic bound
  FleetStats stats;         ///< valid when simulated
  bool meets_slo = false;   ///< attainment >= target (and under budget)
};

/// A fleet search result: the chip-type menu, every candidate in
/// deterministic enumeration order, and the two headline answers — the
/// cheapest feasible fleet overall and the cheapest *homogeneous* one (a
/// single chip type). Their area gap is the measured value of heterogeneity.
struct FleetPlan {
  std::vector<ServingPoint> chip_types;  ///< area-ascending frontier menu
  std::vector<FleetCandidate> candidates;
  std::optional<FleetCandidate> best;
  std::optional<FleetCandidate> best_homogeneous;
};

/// Stable composition label: "<count>x<chip-label>" terms joined with '+',
/// in type order, zero-count types omitted —
/// e.g. "2xc4v2048l16i4+1xc1v512l1i1".
std::string composition_label(const std::vector<ServingPoint>& types,
                              const std::vector<int>& counts);

/// Searches fleet compositions for the cheapest total silicon meeting a
/// target load + SLO over a multi-model traffic mix. Thread-safe const API
/// (state is a SweepDriver — internally synchronized — and a value-type
/// AreaModel); plan() fans candidate simulations out on the pool.
class FleetPlanner : public CapacityPlanner {
 public:
  explicit FleetPlanner(SweepDriver* driver, AreaModel area = {})
      : CapacityPlanner(driver, area), driver_(driver), area_(area) {}

  /// Search fleet compositions for `mix` over `nets` (one Network per mix
  /// model, same order as mix.names). `pool` overrides the shared pool
  /// (tests pin sizes 1 vs 8); nullptr uses ThreadPool::shared(). Throws
  /// std::invalid_argument on an inconsistent mix/nets pairing or a
  /// non-positive query.
  FleetPlan plan(const std::vector<Network>& nets, const FleetTrafficMix& mix,
                 const FleetQuery& q, ThreadPool* pool = nullptr) const;

  /// The chip-type menu plan() searches: the Pareto frontier of (chip area,
  /// mix-weighted per-image cycles / instances) over the single-chip grid,
  /// thinned to at most q.max_chip_types points keeping both endpoints.
  /// Area-ascending, deterministic. Warm sweep cache ⇒ pure lookups.
  std::vector<ServingPoint> chip_type_menu(const std::vector<Network>& nets,
                                           const FleetTrafficMix& mix,
                                           const FleetQuery& q) const;

  /// Evaluate one explicit composition (counts over `types`) under the
  /// query's mixed load: resolves per-(type, model) cost models, builds the
  /// FleetConfig (full replication — every chip hosts every model), and runs
  /// simulate_fleet. Records a report::FleetCell when collection is armed.
  FleetCandidate evaluate_composition(const std::vector<Network>& nets,
                                      const FleetTrafficMix& mix,
                                      const FleetQuery& q,
                                      const std::vector<ServingPoint>& types,
                                      const std::vector<int>& counts) const;

 private:
  // CapacityPlanner keeps its driver/area private; the fleet search needs
  // both directly, so it carries its own copies of the same pointers/values.
  SweepDriver* driver_;
  AreaModel area_;
};

}  // namespace vlacnn::serving

#include "serving/fleet_router.h"

#include <cstdlib>
#include <stdexcept>

namespace vlacnn::serving {

RouterSpec::Kind router_kind_from_string(const std::string& s) {
  if (s == "rr") return RouterSpec::Kind::kRoundRobin;
  if (s == "jsq") return RouterSpec::Kind::kJoinShortestQueue;
  if (s == "p2c") return RouterSpec::Kind::kPowerOfTwo;
  throw std::invalid_argument("unknown router policy '" + s +
                              "' (expected rr, jsq, or p2c)");
}

std::uint64_t default_fleet_seed() {
  const char* env = std::getenv("VLACNN_FLEET_SEED");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') {
    throw std::runtime_error(std::string("VLACNN_FLEET_SEED: not a number: ") +
                             env);
  }
  return static_cast<std::uint64_t>(v);
}

RoundRobinRouter::RoundRobinRouter(std::size_t num_models)
    : next_(num_models, 0) {}

int RoundRobinRouter::route(int model, const std::vector<int>& hosts,
                            const std::vector<std::uint64_t>&) {
  const std::uint64_t k = next_[static_cast<std::size_t>(model)]++;
  return hosts[static_cast<std::size_t>(k % hosts.size())];
}

int JoinShortestQueueRouter::route(int, const std::vector<int>& hosts,
                                   const std::vector<std::uint64_t>& out) {
  int best = hosts[0];
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    const int c = hosts[i];
    if (out[static_cast<std::size_t>(c)] <
        out[static_cast<std::size_t>(best)]) {
      best = c;  // hosts is ascending, so ties keep the lowest chip index
    }
  }
  return best;
}

PowerOfTwoRouter::PowerOfTwoRouter(std::uint64_t seed) : rng_(seed) {}

int PowerOfTwoRouter::route(int, const std::vector<int>& hosts,
                            const std::vector<std::uint64_t>& out) {
  const std::size_t n = hosts.size();
  if (n == 1) return hosts[0];
  // Two distinct draws: the second samples from the n-1 remaining slots.
  const std::size_t a = static_cast<std::size_t>(rng_.next_below(n));
  std::size_t b = static_cast<std::size_t>(rng_.next_below(n - 1));
  if (b >= a) ++b;
  const std::uint64_t la = out[static_cast<std::size_t>(hosts[a])];
  const std::uint64_t lb = out[static_cast<std::size_t>(hosts[b])];
  if (la < lb) return hosts[a];
  if (lb < la) return hosts[b];
  return (rng_.next_u64() & 1) ? hosts[b] : hosts[a];  // seeded coin on ties
}

std::unique_ptr<FleetRouter> make_router(const RouterSpec& spec,
                                         std::size_t num_models) {
  switch (spec.kind) {
    case RouterSpec::Kind::kRoundRobin:
      return std::make_unique<RoundRobinRouter>(num_models);
    case RouterSpec::Kind::kJoinShortestQueue:
      return std::make_unique<JoinShortestQueueRouter>();
    case RouterSpec::Kind::kPowerOfTwo:
      return std::make_unique<PowerOfTwoRouter>(spec.seed);
  }
  throw std::logic_error("unreachable router kind");
}

}  // namespace vlacnn::serving

// Arrival processes for the request-level serving simulator (request_sim.h).
//
// An ArrivalProcess produces the cycle timestamps at which inference requests
// reach the chip. All processes are deterministic: the stochastic ones draw
// from the repo's seeded splitmix64 Rng (src/common/rng), never from wall
// clock or std:: distributions, so a (process, seed) pair replays the exact
// same workload on every run, platform, and thread count.
//
// All times are in **cycles** of the simulated 2 GHz clock (the simulator
// itself is clock-agnostic; conversions to seconds happen only at the edges).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/rng.h"

namespace vlacnn::serving {

/// Source of request arrival times. Not thread-safe: each simulation owns its
/// own process instance (the capacity planner builds one per grid point).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The next arrival timestamp in cycles (nondecreasing across calls).
  /// nullopt means no arrival is schedulable *right now*: either the process
  /// is exhausted() for good, or (closed-loop) every client is waiting for a
  /// response — in which case on_completion() will make arrivals available
  /// again.
  virtual std::optional<double> next_arrival() = 0;

  /// True when the process will never produce another arrival.
  virtual bool exhausted() const = 0;

  /// Closed-loop hook: a request finished (served or dropped) at `now_cycles`.
  /// Open-loop processes ignore it.
  virtual void on_completion(double now_cycles) { (void)now_cycles; }

  /// Stable label for reports ("poisson", "closed_loop", "trace").
  virtual const char* name() const = 0;
};

/// Open-loop Poisson process: i.i.d. exponential interarrival gaps with the
/// given mean, `count` requests total. The textbook bursty-traffic model —
/// the M in the M/D/1 sanity check.
class PoissonArrivals : public ArrivalProcess {
 public:
  /// `mean_interarrival_cycles` = clock_hz / load_rps. Must be > 0.
  PoissonArrivals(double mean_interarrival_cycles, std::uint64_t count,
                  std::uint64_t seed);

  std::optional<double> next_arrival() override;
  bool exhausted() const override { return issued_ >= count_; }
  const char* name() const override { return "poisson"; }

 private:
  double mean_;
  std::uint64_t count_;
  std::uint64_t issued_ = 0;
  double t_ = 0;
  Rng rng_;
};

/// Closed-loop process: `clients` concurrent users, each issuing one request,
/// waiting for its response, thinking for `think_cycles`, then issuing the
/// next — the load never outruns the service rate, it tracks it (Clockwork's
/// workload model for latency-bound serving). All clients issue their first
/// request at cycle 0; `total` bounds the request count across clients.
class ClosedLoopArrivals : public ArrivalProcess {
 public:
  ClosedLoopArrivals(int clients, double think_cycles, std::uint64_t total);

  std::optional<double> next_arrival() override;
  bool exhausted() const override { return issued_ >= total_; }
  void on_completion(double now_cycles) override;
  const char* name() const override { return "closed_loop"; }

 private:
  double think_;
  std::uint64_t total_;
  std::uint64_t issued_ = 0;
  /// Pending client wake-up times, earliest first.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      ready_;
};

/// Trace replay: an explicit, nondecreasing list of arrival cycles (recorded
/// production traffic, or synthetic bursts built by helpers/tests). Throws
/// std::invalid_argument if the trace is not sorted.
class TraceArrivals : public ArrivalProcess {
 public:
  explicit TraceArrivals(std::vector<double> arrival_cycles);

  std::optional<double> next_arrival() override;
  bool exhausted() const override { return next_ >= trace_.size(); }
  const char* name() const override { return "trace"; }

 private:
  std::vector<double> trace_;
  std::size_t next_ = 0;
};

/// Value-type description of an arrival process, used by the capacity planner
/// and the CLI to build one fresh process per simulated grid point.
struct ArrivalSpec {
  enum class Kind { kPoisson, kClosedLoop, kTrace };
  Kind kind = Kind::kPoisson;
  double mean_interarrival_cycles = 1e6;  ///< Poisson: 2e9/rps at 2 GHz
  std::uint64_t requests = 2000;          ///< Poisson/closed-loop bound
  int clients = 16;                       ///< closed-loop
  double think_cycles = 0;                ///< closed-loop
  std::vector<double> trace_cycles;       ///< trace replay
};

/// Instantiate the process an ArrivalSpec describes. `seed` feeds the
/// stochastic kinds; deterministic kinds ignore it.
std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec,
                                              std::uint64_t seed);

}  // namespace vlacnn::serving

// Model-serving co-location simulator (Paper II Section 4.4, Fig 12).
//
// A multicore RVV chip hosts N identical model instances, one per core, with
// static L2 way-partitioning (Intel-CAT-like, as the paper assumes): each
// instance sees an exclusive slice of the shared L2, so its per-image latency
// is the single-core co-design result at (vlen, slice). External memory
// bandwidth is assumed sufficient (the paper's HBM assumption). Aggregate
// throughput is instances / latency; area comes from the 7 nm model.
#pragma once

#include <optional>
#include <vector>

#include "area/area_model.h"
#include "net/network.h"
#include "sweep/sweep.h"

namespace vlacnn {

/// One hardware/co-location configuration of the Fig-12 study: a multicore
/// chip hosting `instances` copies of the model, one per core, each owning an
/// exclusive slice of the shared L2.
struct ServingPoint {
  int cores = 1;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_total_bytes = 1u << 20;  ///< shared L2 capacity, bytes
  int instances = 1;                        ///< co-located model copies

  /// Exclusive L2 capacity per instance, bytes.
  std::uint64_t l2_slice_bytes() const {
    return l2_total_bytes / static_cast<std::uint64_t>(instances);
  }
  /// One instance per core, an at-least-1MB power-of-two slice each.
  bool feasible() const;
};

/// Steady-state result for one ServingPoint. Cycles are simulated-core
/// cycles (2 GHz in the paper); seconds appear only in presentation code.
struct ServingEval {
  ServingPoint point;
  double cycles_per_image = 0;  ///< per-instance latency (conv layers), cycles
  double images_per_cycle = 0;  ///< aggregate throughput, images per cycle
  double area_mm2 = 0;          ///< 7 nm chip area
};

/// Steady-state co-location simulator (the paper's Fig-12 analysis). All
/// const methods are thread-safe: state is a SweepDriver (internally
/// synchronized) and a value-type AreaModel, so evaluate() may be called
/// concurrently from pool tasks — grid() and the request-level capacity
/// planner (request_sim.h) do exactly that.
class ServingSimulator {
 public:
  ServingSimulator(SweepDriver* driver, AreaModel area = {})
      : driver_(driver), area_(area) {}

  /// Evaluate one configuration. `fixed` pins a single algorithm for all
  /// layers (with gemm6 fallback); nullopt selects the optimal per layer.
  ServingEval evaluate(const Network& net, const ServingPoint& point,
                       std::optional<Algo> fixed) const;

  /// The feasible points of the paper's grid — cores/instances in
  /// {1,4,16,64}, vlen 512..4096, shared L2 in {1,4,16,64,256} MB — in the
  /// deterministic nested-loop enumeration order every grid consumer shares.
  static std::vector<ServingPoint> grid_points();

  /// evaluate() over grid_points(), fanned out on the shared pool; output
  /// order (and every number) is bit-identical to a serial run.
  std::vector<ServingEval> grid(const Network& net,
                                std::optional<Algo> fixed) const;

  const AreaModel& area_model() const { return area_; }

 private:
  SweepDriver* driver_;
  AreaModel area_;
};

}  // namespace vlacnn

#include "serving/request_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "common/thread_pool.h"
#include "algos/conv_args.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "report/collector.h"
#include "report/json.h"

namespace vlacnn::serving {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Trace events per simulation are capped so a planner run over hundreds of
/// grid points cannot balloon the in-memory trace buffer; the cap is logged
/// when hit.
constexpr std::uint64_t kMaxBatchTraceEvents = 4096;

/// Simulated cycles -> trace microseconds at the repo's 2 GHz presentation
/// clock, so a Perfetto timeline of batches reads in real service time.
constexpr double kTraceCyclesPerUs = 2000.0;

/// Per-conv-layer (label, cycles-per-image) weights for the request tracer's
/// service-span segmentation at one grid point: the per-layer cycles of the
/// plan this point actually serves (the fixed algorithm with the gemm6
/// fallback, or the per-layer-optimal plan). Labels are "conv<1-based>/<algo>"
/// so a waterfall names both the layer and the algorithm that ran it. Warm
/// sweep cache ⇒ pure lookups.
std::vector<std::pair<std::string, double>> reqtrace_service_layers(
    SweepDriver& driver, const Network& net, std::uint32_t vlen_bits,
    std::uint64_t l2_slice_bytes, std::optional<Algo> fixed) {
  const auto table = driver.layer_algo_cycles(net, vlen_bits, l2_slice_bytes);
  std::vector<Algo> plan;
  if (fixed.has_value()) {
    plan.assign(table.size(), *fixed);
  } else {
    plan = driver.network_optimal(net, vlen_bits, l2_slice_bytes).plan;
  }
  const auto algo_index = [](Algo a) {
    for (std::size_t i = 0; i < kAllAlgos.size(); ++i) {
      if (kAllAlgos[i] == a) return i;
    }
    return std::size_t{0};
  };
  std::vector<std::pair<std::string, double>> out;
  out.reserve(table.size());
  for (std::size_t l = 0; l < table.size(); ++l) {
    Algo a = l < plan.size() ? plan[l] : Algo::kGemm6;
    double c = table[l][algo_index(a)];
    if (std::isnan(c)) {  // fixed algo inapplicable here: the gemm6 fallback
      a = Algo::kGemm6;
      c = table[l][algo_index(a)];
    }
    char name[32];
    std::snprintf(name, sizeof name, "conv%zu/%s", l + 1, to_string(a));
    out.emplace_back(name, std::isnan(c) ? 0.0 : c);
  }
  return out;
}

}  // namespace

BatchCostModel batch_cost_model(SweepDriver& driver, const Network& net,
                                std::uint32_t vlen_bits,
                                std::uint64_t l2_slice_bytes,
                                std::optional<Algo> fixed,
                                double mem_bytes_per_cycle) {
  // The negated comparison also rejects NaN, which `<= 0` would let through.
  if (!(mem_bytes_per_cycle > 0)) {
    throw std::invalid_argument(
        "batch_cost_model: mem_bytes_per_cycle must be positive");
  }
  double per_image = 0;
  if (fixed.has_value()) {
    per_image = driver.network_cycles(net, *fixed, vlen_bits, l2_slice_bytes);
  } else {
    per_image = driver.network_optimal(net, vlen_bits, l2_slice_bytes).cycles;
  }
  const double weight_cycles = conv_weight_bytes(net) / mem_bytes_per_cycle;
  const double amortizable = std::min(weight_cycles, 0.5 * per_image);
  return BatchCostModel{per_image, per_image - amortizable};
}

void ServiceModel::trace_annotations(std::vector<obs::TraceNote>&) {}

double conv_weight_bytes(const Network& net) {
  double bytes = 0;
  for (const ConvLayerDesc& d : net.conv_descs()) {
    bytes += 4.0 * d.oc * d.ic * d.kh * d.kw;
  }
  return bytes;
}

std::size_t nearest_rank_index(std::size_t n, double q) {
  if (n == 0) {
    throw std::invalid_argument("nearest_rank: empty sample");
  }
  if (!(q > 0.0) || q > 1.0) {
    throw std::invalid_argument("nearest_rank: q must be in (0, 1]");
  }
  // ceil(q*n) with a *relative* epsilon guard so q values that are exact in
  // decimal but not in binary (0.2 * 10 etc.) cannot round one rank up. The
  // guard must scale with q*n: an absolute one (the old `- 1e-9`) is smaller
  // than one ulp of q*n once n exceeds ~1e7, and stops guarding anything.
  // 1e-12 is ~4 decimal orders above the relative rounding error of the
  // multiply (~1e-16) and well below the 1/n gap between adjacent ranks for
  // any sample a simulation can hold.
  const double scaled = q * static_cast<double>(n);
  std::size_t rank = static_cast<std::size_t>(std::ceil(scaled * (1.0 - 1e-12)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return rank - 1;
}

double nearest_rank(const std::vector<double>& sorted_ascending, double q) {
  return sorted_ascending[nearest_rank_index(sorted_ascending.size(), q)];
}

std::pair<double, double> exact_split(double total, double head_approx) {
  if (!(total > 0)) return {0.0, 0.0};
  double head = head_approx;
  if (!(head > 0)) head = 0;
  if (head > total) head = total;
  // Sterbenz: for x in [total/2, total], total - x is computed exactly. Put
  // whichever part is the larger one through that subtraction and the pair
  // reconstitutes total with no rounding at all.
  if (head >= 0.5 * total) {
    return {head, total - head};
  }
  const double tail = total - head;  // rounded, but lands in [total/2, total]
  return {total - tail, tail};
}

double ServingStats::throughput_rps(double clock_hz) const {
  if (!(makespan > 0)) return 0;
  return static_cast<double>(completed) / makespan * clock_hz;
}

std::string ServingStats::to_json() const {
  using report::json_number;
  std::string out = "{";
  out += "\"offered\": " + std::to_string(offered);
  out += ", \"completed\": " + std::to_string(completed);
  out += ", \"dropped\": " + std::to_string(dropped);
  out += ", \"batches\": " + std::to_string(batches);
  out += ", \"mean_batch\": " + json_number(mean_batch);
  out += ", \"p50\": " + json_number(p50);
  out += ", \"p95\": " + json_number(p95);
  out += ", \"p99\": " + json_number(p99);
  out += ", \"p999\": " + json_number(p999);
  out += ", \"mean_latency\": " + json_number(mean_latency);
  out += ", \"max_latency\": " + json_number(max_latency);
  out += ", \"mean_wait\": " + json_number(mean_wait);
  out += ", \"mean_queue_wait\": " + json_number(mean_queue_wait);
  out += ", \"mean_formation_wait\": " + json_number(mean_formation_wait);
  out += ", \"mean_service\": " + json_number(mean_service);
  out += ", \"makespan\": " + json_number(makespan);
  out += ", \"mean_queue\": " + json_number(mean_queue);
  out += ", \"max_queue\": " + json_number(max_queue);
  out += ", \"utilization\": " + json_number(utilization);
  out += ", \"slo\": " + json_number(slo);
  out += ", \"slo_attainment\": " + json_number(slo_attainment);
  out += "}";
  return out;
}

namespace {

/// The event loop proper. kObs compiles the observability hooks (metrics,
/// trace, timeline) in or out via if constexpr — the no-obs twin is the
/// baseline side of bench_obs_overhead's serving gate, so its hot path must
/// not even test the knobs. Latency attribution and request_log are product
/// output and exist in both instantiations.
template <bool kObs>
ServingStats run_request_loop(const RequestSimConfig& cfg,
                              ArrivalProcess& arrivals,
                              BatchingPolicy& policy) {
  if (cfg.instances < 1) {
    throw std::invalid_argument("simulate_requests: need >= 1 instance");
  }
  if (cfg.service == nullptr &&
      (!(cfg.cost.first_image_cycles > 0) ||
       !(cfg.cost.marginal_image_cycles >= 0))) {
    throw std::invalid_argument(
        "simulate_requests: batch cost model must have positive first-image "
        "and non-negative marginal cycles");
  }

  // One in-flight batch per instance, ordered by completion time; ties pop
  // the lowest instance id first (std::greater on the pair).
  struct InFlight {
    double completion;
    int instance;
    bool operator>(const InFlight& o) const {
      return completion != o.completion ? completion > o.completion
                                        : instance > o.instance;
    }
  };
  // A queued request carries the value of the instance-idle time integral at
  // its arrival; the delta to dispatch time is its formation wait (time it
  // waited while capacity sat idle, i.e. the batching policy's choice).
  struct Queued {
    double arrival;
    double idle_at_arrival;
    std::uint64_t seq;  ///< 1-based offered-arrival order = trace id
  };
  struct Member {
    double arrival;
    double formation_wait;  ///< measured at dispatch, clamped to [0, wait]
    std::uint64_t seq;
  };
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<InFlight>>
      busy;
  std::vector<std::vector<Member>> batch_members(
      static_cast<std::size_t>(cfg.instances));
  std::vector<double> batch_dispatch(static_cast<std::size_t>(cfg.instances),
                                     0.0);
  std::set<int> idle;
  for (int i = 0; i < cfg.instances; ++i) idle.insert(i);

  std::deque<Queued> queue;  // FIFO
  ServingStats s;
  s.slo = cfg.slo_cycles;
  std::vector<double> latencies;
  double wait_sum = 0, queue_area = 0, busy_cycles = 0, batch_images = 0;
  double queue_wait_sum = 0, formation_sum = 0, service_sum = 0;
  double idle_time = 0;  ///< integral of [some instance idle] over sim time
  double now = 0;
  std::optional<double> pending;
  if (cfg.request_log != nullptr) cfg.request_log->clear();

  bool metrics = false;
  obs::Histogram* lat_hist = nullptr;
  obs::Counter* completed_ctr = nullptr;
  obs::Counter* dropped_ctr = nullptr;
  obs::Counter* batches_ctr = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::TimelineRecorder* rec = nullptr;
  std::unique_ptr<obs::TimelineRecorder> owned_rec;
  obs::RequestTraceRecorder* rrec = nullptr;
  std::unique_ptr<obs::RequestTraceRecorder> owned_rrec;
  // Dispatch annotations captured per instance at dispatch time, attached to
  // every member of the batch at completion. Sized only when tracing.
  std::vector<std::vector<obs::TraceNote>> batch_notes;
  if constexpr (kObs) {
    metrics = obs::metrics_enabled();
    if (metrics) {
      auto& reg = obs::Registry::global();
      lat_hist = &reg.histogram("serving.request_latency_cycles");
      completed_ctr = &reg.counter("serving.requests_completed");
      dropped_ctr = &reg.counter("serving.requests_dropped");
      batches_ctr = &reg.counter("serving.batches_dispatched");
    }
    tracer = &obs::Tracer::global();
    rec = cfg.timeline;
    if (rec == nullptr && obs::timeline_enabled()) {
      owned_rec = std::make_unique<obs::TimelineRecorder>(
          obs::default_timeline_config(cfg.instances, cfg.slo_cycles));
      rec = owned_rec.get();
    }
    rrec = cfg.reqtrace;
    if (rrec == nullptr && obs::reqtrace_enabled()) {
      owned_rrec = std::make_unique<obs::RequestTraceRecorder>(
          obs::default_reqtrace_config(cfg.slo_cycles));
      rrec = owned_rrec.get();
    }
    if (rrec != nullptr) {
      batch_notes.resize(static_cast<std::size_t>(cfg.instances));
    }
  }
  std::uint64_t traced_batches = 0;

  auto poll = [&] {
    if (!pending.has_value()) pending = arrivals.next_arrival();
  };
  auto advance = [&](double t_new) {
    const double dt = t_new - now;
    queue_area += static_cast<double>(queue.size()) * dt;
    if (!idle.empty()) idle_time += dt;
    now = t_new;
  };
  auto try_dispatch = [&]() -> bool {
    bool dispatched = false;
    while (!queue.empty() && !idle.empty()) {
      int n = policy.dispatch_size(queue.size(), queue.front().arrival, now);
      if (n <= 0) break;
      if (static_cast<std::size_t>(n) > queue.size()) {
        n = static_cast<int>(queue.size());
      }
      const int inst = *idle.begin();
      idle.erase(idle.begin());
      auto& members = batch_members[static_cast<std::size_t>(inst)];
      members.clear();
      for (int i = 0; i < n; ++i) {
        const Queued& q = queue.front();
        const double wait = now - q.arrival;
        wait_sum += wait;
        double fw = idle_time - q.idle_at_arrival;
        if (fw < 0) fw = 0;
        if (fw > wait) fw = wait;
        members.push_back({q.arrival, fw, q.seq});
        queue.pop_front();
      }
      batch_dispatch[static_cast<std::size_t>(inst)] = now;
      const double service = cfg.service != nullptr
                                 ? cfg.service->service_cycles(n)
                                 : cfg.cost.service_cycles(n);
      if (!(service > 0) || !std::isfinite(service)) {
        throw std::logic_error(
            "simulate_requests: service model returned a non-positive or "
            "non-finite batch time");
      }
      busy.push({now + service, inst});
      busy_cycles += service;
      ++s.batches;
      batch_images += n;
      dispatched = true;
      if constexpr (kObs) {
        if (rec != nullptr) rec->on_dispatch(now, n);
        if (rrec != nullptr) {
          // Ask the service model for this batch's decision notes now, while
          // its "most recent call" state is this dispatch.
          auto& notes = batch_notes[static_cast<std::size_t>(inst)];
          notes.clear();
          if (cfg.service != nullptr) cfg.service->trace_annotations(notes);
        }
        if (tracer->enabled() && traced_batches < kMaxBatchTraceEvents) {
          // Trace timestamps are *simulated* time, so the file renders the
          // serving schedule itself, not the wall clock of the simulator.
          tracer->emit("serving.batch", now / kTraceCyclesPerUs,
                       service / kTraceCyclesPerUs,
                       {{"instance", std::to_string(inst)},
                        {"batch", std::to_string(n)},
                        {"service_cycles", std::to_string(service)}});
          if (++traced_batches == kMaxBatchTraceEvents) {
            obs::log(obs::LogLevel::kInfo, "serving", "batch_trace_capped",
                     {{"cap", std::to_string(kMaxBatchTraceEvents)}});
          }
        }
      }
    }
    return dispatched;
  };

  poll();
  while (true) {
    const double tc = busy.empty() ? kInf : busy.top().completion;
    const double ta = pending.has_value() ? *pending : kInf;
    double td = kInf;
    if (!queue.empty() && !idle.empty()) {
      td = std::max(policy.flush_deadline(queue.size(), queue.front().arrival),
                    now);
    }
    const double t_next = std::min({tc, ta, td});
    if (t_next == kInf) break;
    advance(t_next);

    // Tie order at equal timestamps: completions free instances first,
    // arrivals join the queue second, policy flushes run last — fixed, so
    // the event sequence (and every stat) is reproducible.
    if (tc <= t_next) {
      const InFlight f = busy.top();
      busy.pop();
      const std::size_t fi = static_cast<std::size_t>(f.instance);
      const double dispatched_at = batch_dispatch[fi];
      for (const Member& m : batch_members[fi]) {
        const double lat = now - m.arrival;
        latencies.push_back(lat);
        // Exact attribution: split latency into wait vs service around the
        // dispatch timestamp, then the wait into queue vs formation around
        // the measured formation share. Both splits are exact (exact_split),
        // so (queue_wait + formation_wait) + service == lat in FP.
        const auto [wait_c, service_c] =
            exact_split(lat, dispatched_at - m.arrival);
        const auto [qw, fw] =
            exact_split(wait_c, (dispatched_at - m.arrival) - m.formation_wait);
        queue_wait_sum += qw;
        formation_sum += fw;
        service_sum += service_c;
        const bool within = cfg.slo_cycles <= 0 || lat <= cfg.slo_cycles;
        if (cfg.request_log != nullptr) {
          cfg.request_log->push_back(
              {m.arrival, dispatched_at, now, qw, fw, service_c, within});
        }
        if constexpr (kObs) {
          if (rec != nullptr) rec->on_completion(now, lat, within);
          if (rrec != nullptr) {
            rrec->on_completion(m.seq, m.arrival, dispatched_at, now, qw, fw,
                                service_c, within,
                                static_cast<int>(batch_members[fi].size()),
                                f.instance, batch_notes[fi]);
          }
          if (metrics) {
            lat_hist->observe(
                static_cast<std::uint64_t>(std::llround(std::max(lat, 0.0))));
          }
        }
        arrivals.on_completion(now);
      }
      idle.insert(f.instance);
      if constexpr (kObs) {
        if (rec != nullptr) rec->on_batch_done(now);
      }
      try_dispatch();
      poll();
      continue;
    }
    if (ta <= t_next) {
      ++s.offered;
      if (cfg.queue_capacity > 0 && queue.size() >= cfg.queue_capacity) {
        ++s.dropped;
        if constexpr (kObs) {
          if (rec != nullptr) rec->on_drop(now);
          if (rrec != nullptr) rrec->on_drop(s.offered, now);
        }
        arrivals.on_completion(now);  // a rejection is still a response
      } else {
        queue.push_back({ta, idle_time, s.offered});
        if constexpr (kObs) {
          if (rec != nullptr) rec->on_arrival(now);
        }
        if (static_cast<double>(queue.size()) > s.max_queue) {
          s.max_queue = static_cast<double>(queue.size());
        }
      }
      pending.reset();
      poll();
      try_dispatch();
      continue;
    }
    // Flush deadline: the policy named this cycle, so it must dispatch now.
    if (!try_dispatch()) {
      throw std::logic_error(
          "simulate_requests: batching policy refused to dispatch at its own "
          "flush deadline");
    }
  }
  if (!queue.empty()) {
    throw std::logic_error(
        "simulate_requests: batching policy left requests queued forever "
        "(flush_deadline returned +inf with idle instances)");
  }

  s.completed = latencies.size();
  s.makespan = now;
  if (s.batches > 0) s.mean_batch = batch_images / static_cast<double>(s.batches);
  if (!latencies.empty()) {
    double sum = 0;
    for (double l : latencies) sum += l;
    const double n = static_cast<double>(latencies.size());
    s.mean_latency = sum / n;
    s.mean_wait = wait_sum / n;
    s.mean_queue_wait = queue_wait_sum / n;
    s.mean_formation_wait = formation_sum / n;
    s.mean_service = service_sum / n;
    std::sort(latencies.begin(), latencies.end());
    s.p50 = nearest_rank(latencies, 0.50);
    s.p95 = nearest_rank(latencies, 0.95);
    s.p99 = nearest_rank(latencies, 0.99);
    s.p999 = nearest_rank(latencies, 0.999);
    s.max_latency = latencies.back();
  }
  if (s.makespan > 0) {
    s.mean_queue = queue_area / s.makespan;
    s.utilization =
        busy_cycles / (static_cast<double>(cfg.instances) * s.makespan);
  }
  if (cfg.slo_cycles > 0 && s.offered > 0) {
    // Nearest-rank semantics again: count exact per-request cycle values.
    const auto within =
        std::upper_bound(latencies.begin(), latencies.end(), cfg.slo_cycles) -
        latencies.begin();
    s.slo_attainment =
        static_cast<double>(within) / static_cast<double>(s.offered);
  }
  if constexpr (kObs) {
    if (metrics) {
      completed_ctr->add(s.completed);
      dropped_ctr->add(s.dropped);
      batches_ctr->add(s.batches);
    }
    if (rec != nullptr) rec->finish(s.makespan);
    if (owned_rec != nullptr) {
      obs::TimelineSink& sink = obs::TimelineSink::global();
      const std::string label = cfg.timeline_label.empty()
                                    ? sink.next_auto_label()
                                    : cfg.timeline_label;
      sink.record(label, owned_rec->to_jsonl());
    }
    if (rrec != nullptr) rrec->finish();
    if (owned_rrec != nullptr) {
      obs::ReqTraceSink& rsink = obs::ReqTraceSink::global();
      const std::string rlabel = cfg.reqtrace_label.empty()
                                     ? rsink.next_auto_label()
                                     : cfg.reqtrace_label;
      rsink.record(rlabel, owned_rrec->to_jsonl());
    }
  }
  return s;
}

}  // namespace

ServingStats simulate_requests(const RequestSimConfig& cfg,
                               ArrivalProcess& arrivals,
                               BatchingPolicy& policy) {
  return run_request_loop<true>(cfg, arrivals, policy);
}

ServingStats simulate_requests_no_obs(const RequestSimConfig& cfg,
                                      ArrivalProcess& arrivals,
                                      BatchingPolicy& policy) {
  return run_request_loop<false>(cfg, arrivals, policy);
}

CapacityCandidate CapacityPlanner::simulate_point(const Network& net,
                                                  const ServingPoint& point,
                                                  const CapacityQuery& q,
                                                  std::optional<Algo> eval_fixed,
                                                  RequestSimConfig rc) const {
  CapacityCandidate c;
  c.eval = sim_.evaluate(net, point, eval_fixed);

  rc.instances = point.instances;
  rc.queue_capacity = q.queue_capacity;
  rc.slo_cycles = q.slo_ms * 1e-3 * q.clock_hz;

  ArrivalSpec as;
  as.kind = ArrivalSpec::Kind::kPoisson;
  as.mean_interarrival_cycles = q.clock_hz / q.load_rps;
  as.requests = q.requests;
  const auto arrivals = make_arrivals(as, q.seed);
  const auto policy = make_policy(q.policy);

  // The planner owns its timeline recorder so the sink block gets a
  // grid-point-derived label: the sink's sorted-by-label write is what makes
  // the JSONL byte-identical across VLACNN_THREADS even though pool workers
  // finish points in arbitrary order.
  std::unique_ptr<obs::TimelineRecorder> rec;
  if (obs::timeline_enabled()) {
    obs::TimelineConfig tcfg =
        obs::default_timeline_config(point.instances, rc.slo_cycles);
    tcfg.attainment_target = q.attainment_target;
    // Unless the user pinned a cadence, bound the snapshot count per grid
    // point: a low-rate run's makespan can span tens of billions of cycles,
    // and the sink buffers every point's block until exit. ~256 snapshots per
    // point keeps that bounded; the coarsening is a pure function of the
    // query, so it stays byte-identical across VLACNN_THREADS.
    if (!obs::timeline_interval_overridden()) {
      const double expected = q.requests * (q.clock_hz / q.load_rps);
      tcfg.interval_cycles = std::max(tcfg.interval_cycles, expected / 256.0);
    }
    rec = std::make_unique<obs::TimelineRecorder>(tcfg);
    rc.timeline = rec.get();
  }

  // Same ownership story for the request tracer: the planner's recorder gets
  // the point's per-layer service weights so every sampled trace carries a
  // per-layer waterfall, and its sink block gets the grid-point label below.
  std::unique_ptr<obs::RequestTraceRecorder> rtrec;
  if (obs::reqtrace_enabled()) {
    obs::ReqTraceConfig rtc = obs::default_reqtrace_config(rc.slo_cycles);
    rtc.service_layers = reqtrace_service_layers(
        *driver_, net, point.vlen_bits, point.l2_slice_bytes(), eval_fixed);
    rtrec = std::make_unique<obs::RequestTraceRecorder>(rtc);
    rc.reqtrace = rtrec.get();
  }

  c.stats = simulate_requests(rc, *arrivals, *policy);
  c.meets_slo =
      c.stats.slo_attainment >= q.attainment_target &&
      (q.area_budget_mm2 <= 0 || c.eval.area_mm2 <= q.area_budget_mm2);

  char label[160];
  std::snprintf(label, sizeof label, "cores%d/vlen%u/l2:%llu/inst%d/%s/%s",
                point.cores, point.vlen_bits,
                static_cast<unsigned long long>(point.l2_total_bytes),
                point.instances, policy->name().c_str(), arrivals->name());
  if (rtrec != nullptr) {
    // The loop already called finish(); the same grid-point label keys both
    // sinks, so the two JSONL files cross-reference by label.
    obs::ReqTraceSink::global().record(label, rtrec->to_jsonl());
  }
  if (rec != nullptr) {
    obs::TimelineSink::global().record(label, rec->to_jsonl());
    if (report::enabled()) {
      const obs::TimelineAnalysis ta =
          obs::analyze_timeline(rec->snapshots(), rec->alerts());
      report::TimelineCell tc;
      tc.cores = point.cores;
      tc.vlen_bits = point.vlen_bits;
      tc.l2_total_bytes = point.l2_total_bytes;
      tc.instances = point.instances;
      tc.policy = policy->name();
      tc.arrivals = arrivals->name();
      tc.snapshots = rec->snapshots().size();
      tc.interval_cycles = rec->config().interval_cycles;
      tc.alerts = ta.alert_count;
      tc.warmup_cycles = ta.warmup_end_cycles;
      tc.steady_p99 = ta.final_rolling_p99;
      tc.max_burn_rate = ta.max_burn_rate;
      tc.time_in_alert_cycles = ta.time_in_alert_cycles;
      report::Collector::global().record_timeline(tc);
    }
  }

  if (report::enabled()) {
    report::RequestSimCell cell;
    cell.cores = point.cores;
    cell.vlen_bits = point.vlen_bits;
    cell.l2_total_bytes = point.l2_total_bytes;
    cell.instances = point.instances;
    cell.policy = policy->name();
    cell.arrivals = arrivals->name();
    cell.load_rps = q.load_rps;
    cell.slo_cycles = rc.slo_cycles;
    cell.offered = c.stats.offered;
    cell.completed = c.stats.completed;
    cell.dropped = c.stats.dropped;
    cell.p50 = c.stats.p50;
    cell.p95 = c.stats.p95;
    cell.p99 = c.stats.p99;
    cell.p999 = c.stats.p999;
    cell.mean_latency = c.stats.mean_latency;
    cell.utilization = c.stats.utilization;
    cell.mean_queue = c.stats.mean_queue;
    cell.slo_attainment = c.stats.slo_attainment;
    cell.mean_queue_wait = c.stats.mean_queue_wait;
    cell.mean_formation_wait = c.stats.mean_formation_wait;
    cell.mean_service = c.stats.mean_service;
    report::Collector::global().record_request_sim(cell);
  }
  return c;
}

CapacityCandidate CapacityPlanner::evaluate(const Network& net,
                                            const ServingPoint& point,
                                            const CapacityQuery& q,
                                            std::optional<Algo> fixed) const {
  if (!(q.load_rps > 0) || !(q.slo_ms > 0) || !(q.clock_hz > 0)) {
    throw std::invalid_argument(
        "CapacityPlanner: load, SLO, and clock must be positive");
  }
  RequestSimConfig rc;
  rc.cost = batch_cost_model(*driver_, net, point.vlen_bits,
                             point.l2_slice_bytes(), fixed);
  return simulate_point(net, point, q, fixed, rc);
}

CapacityCandidate CapacityPlanner::evaluate(
    const Network& net, const ServingPoint& point, const CapacityQuery& q,
    const ServiceModelFactory& factory) const {
  if (!(q.load_rps > 0) || !(q.slo_ms > 0) || !(q.clock_hz > 0)) {
    throw std::invalid_argument(
        "CapacityPlanner: load, SLO, and clock must be positive");
  }
  if (!factory) {
    throw std::invalid_argument("CapacityPlanner: empty service factory");
  }
  // The model lives exactly as long as the simulation; a model with an
  // end-of-run side effect (the learned dispatcher records its dispatch cell
  // on destruction) fires it here, after the stats are final.
  std::unique_ptr<ServiceModel> model = factory(point);
  if (model == nullptr) {
    throw std::invalid_argument("CapacityPlanner: factory returned null");
  }
  RequestSimConfig rc;
  rc.service = model.get();
  // eval_fixed = nullopt: the steady-state side reports the oracle per-image
  // cycles, the natural baseline to read a learned candidate's stats against.
  return simulate_point(net, point, q, std::nullopt, rc);
}

std::vector<CapacityCandidate> CapacityPlanner::evaluate_grid(
    const Network& net, const CapacityQuery& q, std::optional<Algo> fixed,
    ThreadPool* pool) const {
  const std::vector<ServingPoint> points = ServingSimulator::grid_points();
  obs::Span span("serving.capacity_grid");
  if (span.active()) {
    span.arg("net", net.name());
    span.arg("points", std::to_string(points.size()));
    span.arg("load_rps", std::to_string(q.load_rps));
    span.arg("requests", std::to_string(q.requests));
  }
  obs::log(obs::LogLevel::kInfo, "serving", "capacity_grid",
           {{"net", net.name()},
            {"points", std::to_string(points.size())},
            {"load_rps", std::to_string(q.load_rps)}});
  // One task per point into its pre-sized slot: each simulation depends only
  // on (point, query), so the result vector is byte-identical whether the
  // pool has 1 worker or 64 (§7's guarantee, extended to request-level stats).
  std::vector<CapacityCandidate> out(points.size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(points.size(), [&](std::size_t i) {
    out[i] = evaluate(net, points[i], q, fixed);
  });
  return out;
}

std::vector<CapacityCandidate> CapacityPlanner::evaluate_grid(
    const Network& net, const CapacityQuery& q,
    const ServiceModelFactory& factory, ThreadPool* pool) const {
  const std::vector<ServingPoint> points = ServingSimulator::grid_points();
  obs::Span span("serving.capacity_grid");
  if (span.active()) {
    span.arg("net", net.name());
    span.arg("points", std::to_string(points.size()));
    span.arg("dispatch", "factory");
  }
  obs::log(obs::LogLevel::kInfo, "serving", "capacity_grid",
           {{"net", net.name()},
            {"points", std::to_string(points.size())},
            {"dispatch", "factory"}});
  // Same pre-sized-slot discipline as the fixed-cost grid: each point's model
  // comes from the (thread-safe) factory and depends only on the point, so
  // the result vector is byte-identical across pool sizes.
  std::vector<CapacityCandidate> out(points.size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(points.size(), [&](std::size_t i) {
    out[i] = evaluate(net, points[i], q, factory);
  });
  return out;
}

std::optional<CapacityCandidate> CapacityPlanner::cheapest(
    const std::vector<CapacityCandidate>& candidates) {
  std::optional<CapacityCandidate> best;
  for (const CapacityCandidate& c : candidates) {
    if (!c.meets_slo) continue;
    if (!best.has_value() || c.eval.area_mm2 < best->eval.area_mm2) best = c;
  }
  return best;
}

}  // namespace vlacnn::serving

#include "serving/request_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/collector.h"
#include "report/json.h"

namespace vlacnn::serving {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Trace events per simulation are capped so a planner run over hundreds of
/// grid points cannot balloon the in-memory trace buffer; the cap is logged
/// when hit.
constexpr std::uint64_t kMaxBatchTraceEvents = 4096;

/// Simulated cycles -> trace microseconds at the repo's 2 GHz presentation
/// clock, so a Perfetto timeline of batches reads in real service time.
constexpr double kTraceCyclesPerUs = 2000.0;

}  // namespace

BatchCostModel batch_cost_model(SweepDriver& driver, const Network& net,
                                std::uint32_t vlen_bits,
                                std::uint64_t l2_slice_bytes,
                                std::optional<Algo> fixed,
                                double mem_bytes_per_cycle) {
  // The negated comparison also rejects NaN, which `<= 0` would let through.
  if (!(mem_bytes_per_cycle > 0)) {
    throw std::invalid_argument(
        "batch_cost_model: mem_bytes_per_cycle must be positive");
  }
  double per_image = 0;
  if (fixed.has_value()) {
    per_image = driver.network_cycles(net, *fixed, vlen_bits, l2_slice_bytes);
  } else {
    per_image = driver.network_optimal(net, vlen_bits, l2_slice_bytes).cycles;
  }
  const double weight_cycles = conv_weight_bytes(net) / mem_bytes_per_cycle;
  const double amortizable = std::min(weight_cycles, 0.5 * per_image);
  return BatchCostModel{per_image, per_image - amortizable};
}

double conv_weight_bytes(const Network& net) {
  double bytes = 0;
  for (const ConvLayerDesc& d : net.conv_descs()) {
    bytes += 4.0 * d.oc * d.ic * d.kh * d.kw;
  }
  return bytes;
}

std::size_t nearest_rank_index(std::size_t n, double q) {
  if (n == 0) {
    throw std::invalid_argument("nearest_rank: empty sample");
  }
  if (!(q > 0.0) || q > 1.0) {
    throw std::invalid_argument("nearest_rank: q must be in (0, 1]");
  }
  // ceil(q*n) with a *relative* epsilon guard so q values that are exact in
  // decimal but not in binary (0.2 * 10 etc.) cannot round one rank up. The
  // guard must scale with q*n: an absolute one (the old `- 1e-9`) is smaller
  // than one ulp of q*n once n exceeds ~1e7, and stops guarding anything.
  // 1e-12 is ~4 decimal orders above the relative rounding error of the
  // multiply (~1e-16) and well below the 1/n gap between adjacent ranks for
  // any sample a simulation can hold.
  const double scaled = q * static_cast<double>(n);
  std::size_t rank = static_cast<std::size_t>(std::ceil(scaled * (1.0 - 1e-12)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return rank - 1;
}

double nearest_rank(const std::vector<double>& sorted_ascending, double q) {
  return sorted_ascending[nearest_rank_index(sorted_ascending.size(), q)];
}

double ServingStats::throughput_rps(double clock_hz) const {
  if (!(makespan > 0)) return 0;
  return static_cast<double>(completed) / makespan * clock_hz;
}

std::string ServingStats::to_json() const {
  using report::json_number;
  std::string out = "{";
  out += "\"offered\": " + std::to_string(offered);
  out += ", \"completed\": " + std::to_string(completed);
  out += ", \"dropped\": " + std::to_string(dropped);
  out += ", \"batches\": " + std::to_string(batches);
  out += ", \"mean_batch\": " + json_number(mean_batch);
  out += ", \"p50\": " + json_number(p50);
  out += ", \"p95\": " + json_number(p95);
  out += ", \"p99\": " + json_number(p99);
  out += ", \"p999\": " + json_number(p999);
  out += ", \"mean_latency\": " + json_number(mean_latency);
  out += ", \"max_latency\": " + json_number(max_latency);
  out += ", \"mean_wait\": " + json_number(mean_wait);
  out += ", \"makespan\": " + json_number(makespan);
  out += ", \"mean_queue\": " + json_number(mean_queue);
  out += ", \"max_queue\": " + json_number(max_queue);
  out += ", \"utilization\": " + json_number(utilization);
  out += ", \"slo\": " + json_number(slo);
  out += ", \"slo_attainment\": " + json_number(slo_attainment);
  out += "}";
  return out;
}

ServingStats simulate_requests(const RequestSimConfig& cfg,
                               ArrivalProcess& arrivals,
                               BatchingPolicy& policy) {
  if (cfg.instances < 1) {
    throw std::invalid_argument("simulate_requests: need >= 1 instance");
  }
  if (cfg.service == nullptr &&
      (!(cfg.cost.first_image_cycles > 0) ||
       !(cfg.cost.marginal_image_cycles >= 0))) {
    throw std::invalid_argument(
        "simulate_requests: batch cost model must have positive first-image "
        "and non-negative marginal cycles");
  }

  // One in-flight batch per instance, ordered by completion time; ties pop
  // the lowest instance id first (std::greater on the pair).
  struct InFlight {
    double completion;
    int instance;
    bool operator>(const InFlight& o) const {
      return completion != o.completion ? completion > o.completion
                                        : instance > o.instance;
    }
  };
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<InFlight>>
      busy;
  std::vector<std::vector<double>> batch_arrivals(
      static_cast<std::size_t>(cfg.instances));  // arrival times per instance
  std::set<int> idle;
  for (int i = 0; i < cfg.instances; ++i) idle.insert(i);

  std::deque<double> queue;  // FIFO of arrival timestamps
  ServingStats s;
  s.slo = cfg.slo_cycles;
  std::vector<double> latencies;
  double wait_sum = 0, queue_area = 0, busy_cycles = 0, batch_images = 0;
  double now = 0;
  std::optional<double> pending;

  const bool metrics = obs::metrics_enabled();
  obs::Histogram* lat_hist = nullptr;
  obs::Counter* completed_ctr = nullptr;
  obs::Counter* dropped_ctr = nullptr;
  obs::Counter* batches_ctr = nullptr;
  if (metrics) {
    auto& reg = obs::Registry::global();
    lat_hist = &reg.histogram("serving.request_latency_cycles");
    completed_ctr = &reg.counter("serving.requests_completed");
    dropped_ctr = &reg.counter("serving.requests_dropped");
    batches_ctr = &reg.counter("serving.batches_dispatched");
  }
  obs::Tracer& tracer = obs::Tracer::global();
  std::uint64_t traced_batches = 0;

  auto poll = [&] {
    if (!pending.has_value()) pending = arrivals.next_arrival();
  };
  auto advance = [&](double t_new) {
    queue_area += static_cast<double>(queue.size()) * (t_new - now);
    now = t_new;
  };
  auto try_dispatch = [&]() -> bool {
    bool dispatched = false;
    while (!queue.empty() && !idle.empty()) {
      int n = policy.dispatch_size(queue.size(), queue.front(), now);
      if (n <= 0) break;
      if (static_cast<std::size_t>(n) > queue.size()) {
        n = static_cast<int>(queue.size());
      }
      const int inst = *idle.begin();
      idle.erase(idle.begin());
      auto& members = batch_arrivals[static_cast<std::size_t>(inst)];
      members.clear();
      for (int i = 0; i < n; ++i) {
        wait_sum += now - queue.front();
        members.push_back(queue.front());
        queue.pop_front();
      }
      const double service = cfg.service != nullptr
                                 ? cfg.service->service_cycles(n)
                                 : cfg.cost.service_cycles(n);
      if (!(service > 0) || !std::isfinite(service)) {
        throw std::logic_error(
            "simulate_requests: service model returned a non-positive or "
            "non-finite batch time");
      }
      busy.push({now + service, inst});
      busy_cycles += service;
      ++s.batches;
      batch_images += n;
      dispatched = true;
      if (tracer.enabled() && traced_batches < kMaxBatchTraceEvents) {
        // Trace timestamps are *simulated* time, so the file renders the
        // serving schedule itself, not the wall clock of the simulator.
        tracer.emit("serving.batch", now / kTraceCyclesPerUs,
                    service / kTraceCyclesPerUs,
                    {{"instance", std::to_string(inst)},
                     {"batch", std::to_string(n)},
                     {"service_cycles", std::to_string(service)}});
        if (++traced_batches == kMaxBatchTraceEvents) {
          obs::log(obs::LogLevel::kInfo, "serving", "batch_trace_capped",
                   {{"cap", std::to_string(kMaxBatchTraceEvents)}});
        }
      }
    }
    return dispatched;
  };

  poll();
  while (true) {
    const double tc = busy.empty() ? kInf : busy.top().completion;
    const double ta = pending.has_value() ? *pending : kInf;
    double td = kInf;
    if (!queue.empty() && !idle.empty()) {
      td = std::max(policy.flush_deadline(queue.size(), queue.front()), now);
    }
    const double t_next = std::min({tc, ta, td});
    if (t_next == kInf) break;
    advance(t_next);

    // Tie order at equal timestamps: completions free instances first,
    // arrivals join the queue second, policy flushes run last — fixed, so
    // the event sequence (and every stat) is reproducible.
    if (tc <= t_next) {
      const InFlight f = busy.top();
      busy.pop();
      for (double arr : batch_arrivals[static_cast<std::size_t>(f.instance)]) {
        const double lat = now - arr;
        latencies.push_back(lat);
        if (metrics) {
          lat_hist->observe(
              static_cast<std::uint64_t>(std::llround(std::max(lat, 0.0))));
        }
        arrivals.on_completion(now);
      }
      idle.insert(f.instance);
      try_dispatch();
      poll();
      continue;
    }
    if (ta <= t_next) {
      ++s.offered;
      if (cfg.queue_capacity > 0 && queue.size() >= cfg.queue_capacity) {
        ++s.dropped;
        arrivals.on_completion(now);  // a rejection is still a response
      } else {
        queue.push_back(ta);
        if (static_cast<double>(queue.size()) > s.max_queue) {
          s.max_queue = static_cast<double>(queue.size());
        }
      }
      pending.reset();
      poll();
      try_dispatch();
      continue;
    }
    // Flush deadline: the policy named this cycle, so it must dispatch now.
    if (!try_dispatch()) {
      throw std::logic_error(
          "simulate_requests: batching policy refused to dispatch at its own "
          "flush deadline");
    }
  }
  if (!queue.empty()) {
    throw std::logic_error(
        "simulate_requests: batching policy left requests queued forever "
        "(flush_deadline returned +inf with idle instances)");
  }

  s.completed = latencies.size();
  s.makespan = now;
  if (s.batches > 0) s.mean_batch = batch_images / static_cast<double>(s.batches);
  if (!latencies.empty()) {
    double sum = 0;
    for (double l : latencies) sum += l;
    s.mean_latency = sum / static_cast<double>(latencies.size());
    s.mean_wait = wait_sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    s.p50 = nearest_rank(latencies, 0.50);
    s.p95 = nearest_rank(latencies, 0.95);
    s.p99 = nearest_rank(latencies, 0.99);
    s.p999 = nearest_rank(latencies, 0.999);
    s.max_latency = latencies.back();
  }
  if (s.makespan > 0) {
    s.mean_queue = queue_area / s.makespan;
    s.utilization =
        busy_cycles / (static_cast<double>(cfg.instances) * s.makespan);
  }
  if (cfg.slo_cycles > 0 && s.offered > 0) {
    // Nearest-rank semantics again: count exact per-request cycle values.
    const auto within =
        std::upper_bound(latencies.begin(), latencies.end(), cfg.slo_cycles) -
        latencies.begin();
    s.slo_attainment =
        static_cast<double>(within) / static_cast<double>(s.offered);
  }
  if (metrics) {
    completed_ctr->add(s.completed);
    dropped_ctr->add(s.dropped);
    batches_ctr->add(s.batches);
  }
  return s;
}

CapacityCandidate CapacityPlanner::simulate_point(const Network& net,
                                                  const ServingPoint& point,
                                                  const CapacityQuery& q,
                                                  std::optional<Algo> eval_fixed,
                                                  RequestSimConfig rc) const {
  CapacityCandidate c;
  c.eval = sim_.evaluate(net, point, eval_fixed);

  rc.instances = point.instances;
  rc.queue_capacity = q.queue_capacity;
  rc.slo_cycles = q.slo_ms * 1e-3 * q.clock_hz;

  ArrivalSpec as;
  as.kind = ArrivalSpec::Kind::kPoisson;
  as.mean_interarrival_cycles = q.clock_hz / q.load_rps;
  as.requests = q.requests;
  const auto arrivals = make_arrivals(as, q.seed);
  const auto policy = make_policy(q.policy);
  c.stats = simulate_requests(rc, *arrivals, *policy);
  c.meets_slo =
      c.stats.slo_attainment >= q.attainment_target &&
      (q.area_budget_mm2 <= 0 || c.eval.area_mm2 <= q.area_budget_mm2);

  if (report::enabled()) {
    report::RequestSimCell cell;
    cell.cores = point.cores;
    cell.vlen_bits = point.vlen_bits;
    cell.l2_total_bytes = point.l2_total_bytes;
    cell.instances = point.instances;
    cell.policy = policy->name();
    cell.arrivals = arrivals->name();
    cell.load_rps = q.load_rps;
    cell.slo_cycles = rc.slo_cycles;
    cell.offered = c.stats.offered;
    cell.completed = c.stats.completed;
    cell.dropped = c.stats.dropped;
    cell.p50 = c.stats.p50;
    cell.p95 = c.stats.p95;
    cell.p99 = c.stats.p99;
    cell.p999 = c.stats.p999;
    cell.mean_latency = c.stats.mean_latency;
    cell.utilization = c.stats.utilization;
    cell.mean_queue = c.stats.mean_queue;
    cell.slo_attainment = c.stats.slo_attainment;
    report::Collector::global().record_request_sim(cell);
  }
  return c;
}

CapacityCandidate CapacityPlanner::evaluate(const Network& net,
                                            const ServingPoint& point,
                                            const CapacityQuery& q,
                                            std::optional<Algo> fixed) const {
  if (!(q.load_rps > 0) || !(q.slo_ms > 0) || !(q.clock_hz > 0)) {
    throw std::invalid_argument(
        "CapacityPlanner: load, SLO, and clock must be positive");
  }
  RequestSimConfig rc;
  rc.cost = batch_cost_model(*driver_, net, point.vlen_bits,
                             point.l2_slice_bytes(), fixed);
  return simulate_point(net, point, q, fixed, rc);
}

CapacityCandidate CapacityPlanner::evaluate(
    const Network& net, const ServingPoint& point, const CapacityQuery& q,
    const ServiceModelFactory& factory) const {
  if (!(q.load_rps > 0) || !(q.slo_ms > 0) || !(q.clock_hz > 0)) {
    throw std::invalid_argument(
        "CapacityPlanner: load, SLO, and clock must be positive");
  }
  if (!factory) {
    throw std::invalid_argument("CapacityPlanner: empty service factory");
  }
  // The model lives exactly as long as the simulation; a model with an
  // end-of-run side effect (the learned dispatcher records its dispatch cell
  // on destruction) fires it here, after the stats are final.
  std::unique_ptr<ServiceModel> model = factory(point);
  if (model == nullptr) {
    throw std::invalid_argument("CapacityPlanner: factory returned null");
  }
  RequestSimConfig rc;
  rc.service = model.get();
  // eval_fixed = nullopt: the steady-state side reports the oracle per-image
  // cycles, the natural baseline to read a learned candidate's stats against.
  return simulate_point(net, point, q, std::nullopt, rc);
}

std::vector<CapacityCandidate> CapacityPlanner::evaluate_grid(
    const Network& net, const CapacityQuery& q, std::optional<Algo> fixed,
    ThreadPool* pool) const {
  const std::vector<ServingPoint> points = ServingSimulator::grid_points();
  obs::Span span("serving.capacity_grid");
  if (span.active()) {
    span.arg("net", net.name());
    span.arg("points", std::to_string(points.size()));
    span.arg("load_rps", std::to_string(q.load_rps));
    span.arg("requests", std::to_string(q.requests));
  }
  obs::log(obs::LogLevel::kInfo, "serving", "capacity_grid",
           {{"net", net.name()},
            {"points", std::to_string(points.size())},
            {"load_rps", std::to_string(q.load_rps)}});
  // One task per point into its pre-sized slot: each simulation depends only
  // on (point, query), so the result vector is byte-identical whether the
  // pool has 1 worker or 64 (§7's guarantee, extended to request-level stats).
  std::vector<CapacityCandidate> out(points.size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(points.size(), [&](std::size_t i) {
    out[i] = evaluate(net, points[i], q, fixed);
  });
  return out;
}

std::vector<CapacityCandidate> CapacityPlanner::evaluate_grid(
    const Network& net, const CapacityQuery& q,
    const ServiceModelFactory& factory, ThreadPool* pool) const {
  const std::vector<ServingPoint> points = ServingSimulator::grid_points();
  obs::Span span("serving.capacity_grid");
  if (span.active()) {
    span.arg("net", net.name());
    span.arg("points", std::to_string(points.size()));
    span.arg("dispatch", "factory");
  }
  obs::log(obs::LogLevel::kInfo, "serving", "capacity_grid",
           {{"net", net.name()},
            {"points", std::to_string(points.size())},
            {"dispatch", "factory"}});
  // Same pre-sized-slot discipline as the fixed-cost grid: each point's model
  // comes from the (thread-safe) factory and depends only on the point, so
  // the result vector is byte-identical across pool sizes.
  std::vector<CapacityCandidate> out(points.size());
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::shared();
  p.parallel_for(points.size(), [&](std::size_t i) {
    out[i] = evaluate(net, points[i], q, factory);
  });
  return out;
}

std::optional<CapacityCandidate> CapacityPlanner::cheapest(
    const std::vector<CapacityCandidate>& candidates) {
  std::optional<CapacityCandidate> best;
  for (const CapacityCandidate& c : candidates) {
    if (!c.meets_slo) continue;
    if (!best.has_value() || c.eval.area_mm2 < best->eval.area_mm2) best = c;
  }
  return best;
}

}  // namespace vlacnn::serving

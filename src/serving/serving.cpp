#include "serving/serving.h"

#include <stdexcept>

#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/collector.h"

namespace vlacnn {

namespace {

bool is_pow2_u64(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

bool ServingPoint::feasible() const {
  if (instances < 1 || instances > cores) return false;
  if (l2_total_bytes % static_cast<std::uint64_t>(instances) != 0) return false;
  const std::uint64_t slice = l2_slice_bytes();
  return slice >= (1u << 20) && is_pow2_u64(slice);
}

ServingEval ServingSimulator::evaluate(const Network& net,
                                       const ServingPoint& point,
                                       std::optional<Algo> fixed) const {
  if (!point.feasible()) {
    throw std::invalid_argument("serving: infeasible configuration");
  }
  obs::Span span("serving.evaluate");
  if (span.active()) {
    span.arg("cores", std::to_string(point.cores));
    span.arg("vlen", std::to_string(point.vlen_bits));
    span.arg("l2_total", std::to_string(point.l2_total_bytes));
    span.arg("instances", std::to_string(point.instances));
  }
  if (obs::metrics_enabled()) {
    static obs::Counter& points =
        obs::Registry::global().counter("serving.points_evaluated");
    points.add();
  }
  const std::uint64_t slice = point.l2_slice_bytes();
  double cycles = 0;
  if (fixed.has_value()) {
    cycles = driver_->network_cycles(net, *fixed, point.vlen_bits, slice);
  } else {
    cycles = driver_->network_optimal(net, point.vlen_bits, slice).cycles;
  }
  ServingEval e;
  e.point = point;
  e.cycles_per_image = cycles;
  e.images_per_cycle = static_cast<double>(point.instances) / cycles;
  e.area_mm2 =
      area_.chip_mm2(point.vlen_bits, point.l2_total_bytes, point.cores);
  if (report::enabled()) {
    report::Collector::global().record_serving(
        {point.cores, point.vlen_bits, point.l2_total_bytes, point.instances,
         e.cycles_per_image, e.images_per_cycle, e.area_mm2});
  }
  return e;
}

std::vector<ServingPoint> ServingSimulator::grid_points() {
  std::vector<ServingPoint> points;
  const int core_counts[] = {1, 4, 16, 64};
  const std::uint64_t l2_sizes[] = {1ull << 20, 4ull << 20, 16ull << 20,
                                    64ull << 20, 256ull << 20};
  for (int cores : core_counts) {
    for (std::uint32_t vlen : paper2_vlens()) {
      for (std::uint64_t l2 : l2_sizes) {
        for (int instances : core_counts) {
          ServingPoint p{cores, vlen, l2, instances};
          if (p.feasible()) points.push_back(p);
        }
      }
    }
  }
  return points;
}

std::vector<ServingEval> ServingSimulator::grid(const Network& net,
                                                std::optional<Algo> fixed) const {
  // Evaluate one pool task per feasible point. Each slot is written by
  // exactly one task, so the output order (and every number in it) matches
  // the serial nested-loop order bit for bit; the ResultsDb deduplicates the
  // many points that share (vlen, slice) sweeps.
  const std::vector<ServingPoint> points = grid_points();
  obs::Span span("serving.grid");
  if (span.active()) {
    span.arg("net", net.name());
    span.arg("points", std::to_string(points.size()));
  }
  obs::log(obs::LogLevel::kInfo, "serving", "grid",
           {{"net", net.name()}, {"points", std::to_string(points.size())}});
  std::vector<ServingEval> out(points.size());
  ThreadPool::shared().parallel_for(points.size(), [&](std::size_t i) {
    out[i] = evaluate(net, points[i], fixed);
  });
  return out;
}

}  // namespace vlacnn

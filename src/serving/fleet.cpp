#include "serving/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>

#include "obs/reqtrace.h"
#include "obs/timeline.h"
#include "report/json.h"

namespace vlacnn::serving {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

bool ChipSpec::hosts(int model) const {
  if (hosted_models.empty()) return true;
  return std::find(hosted_models.begin(), hosted_models.end(), model) !=
         hosted_models.end();
}

std::string ChipSpec::short_label() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "c%dv%ul%llui%d", point.cores,
                point.vlen_bits,
                static_cast<unsigned long long>(point.l2_total_bytes >> 20),
                point.instances);
  return buf;
}

int FleetTrafficMix::pick(std::uint64_t seq) const {
  if (names.empty() || names.size() != shares.size()) {
    throw std::invalid_argument(
        "FleetTrafficMix: names and shares must be non-empty and same-sized");
  }
  double total = 0;
  for (double s : shares) {
    if (!(s > 0) || !std::isfinite(s)) {
      throw std::invalid_argument(
          "FleetTrafficMix: shares must be positive and finite");
    }
    total += s;
  }
  // Pure function of (seed, seq): one splitmix64 stream keyed by the request
  // id, so the model of request k never depends on how many requests came
  // before it — recomposing the fleet cannot reshuffle the traffic.
  Rng rng(seed ^ (seq * 0x9e3779b97f4a7c15ull));
  const double u = static_cast<double>(rng.next_float()) * total;
  double acc = 0;
  for (std::size_t m = 0; m + 1 < shares.size(); ++m) {
    acc += shares[m];
    if (u < acc) return static_cast<int>(m);
  }
  return static_cast<int>(shares.size()) - 1;
}

std::string FleetTrafficMix::to_string() const {
  double total = 0;
  for (double s : shares) total += s;
  std::string out;
  for (std::size_t m = 0; m < names.size(); ++m) {
    if (!out.empty()) out += ',';
    char buf[32];
    std::snprintf(buf, sizeof buf, "=%.2f",
                  total > 0 ? shares[m] / total : 0.0);
    out += names[m];
    out += buf;
  }
  return out;
}

std::string FleetStats::to_json() const {
  using report::json_number;
  std::string out = "{\"fleet\": ";
  out += fleet.to_json();
  out += ", \"mean_router_hop\": " + json_number(mean_router_hop);
  out += ", \"total_area_mm2\": " + json_number(total_area_mm2);
  out += ", \"per_chip\": [";
  for (std::size_t c = 0; c < per_chip.size(); ++c) {
    if (c > 0) out += ", ";
    out += "{\"chip\": " + std::to_string(c);
    out += ", \"label\": \"";
    out += c < chip_labels.size() ? chip_labels[c] : "";
    out += "\", \"stats\": " + per_chip[c].to_json() + "}";
  }
  out += "], \"per_model\": [";
  for (std::size_t m = 0; m < per_model.size(); ++m) {
    const FleetModelStats& ms = per_model[m];
    if (m > 0) out += ", ";
    out += "{\"name\": \"" + ms.name + "\"";
    out += ", \"offered\": " + std::to_string(ms.offered);
    out += ", \"completed\": " + std::to_string(ms.completed);
    out += ", \"dropped\": " + std::to_string(ms.dropped);
    out += ", \"p50\": " + json_number(ms.p50);
    out += ", \"p99\": " + json_number(ms.p99);
    out += ", \"p999\": " + json_number(ms.p999);
    out += ", \"mean_latency\": " + json_number(ms.mean_latency);
    out += ", \"slo_attainment\": " + json_number(ms.slo_attainment);
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

/// Per-chip mutable simulation state. Stats accumulators mirror the
/// single-chip loop's locals, scoped to the requests this chip served.
struct ChipState {
  std::set<int> idle;  ///< idle instance ids
  struct Queued {
    double arrival;        ///< fleet arrival, cycles
    double idle_at_join;   ///< chip idle-time integral when it joined
    std::uint64_t seq;     ///< fleet trace id (1-based)
    int model;
  };
  struct Member {
    double arrival;
    double formation_wait;  ///< measured at dispatch, clamped
    std::uint64_t seq;
    int model;
  };
  std::vector<std::deque<Queued>> queues;        ///< per model, FIFO
  std::vector<std::vector<Member>> batch_members;  ///< per instance
  std::vector<double> batch_dispatch;              ///< per instance
  std::size_t queued_total = 0;

  double idle_time = 0;    ///< integral of [some instance idle]
  double queue_area = 0;   ///< integral of queued_total
  double busy_cycles = 0;
  double batch_images = 0;

  ServingStats s;
  std::vector<double> latencies;  ///< fleet latencies of this chip's requests
  double wait_sum = 0, queue_wait_sum = 0, formation_sum = 0, service_sum = 0;
};

void finalize_stats(ServingStats& s, std::vector<double>& latencies,
                    double wait_sum, double queue_wait_sum,
                    double formation_sum, double service_sum,
                    double batch_images, double makespan, double queue_area,
                    double busy_cycles, int instances, double slo_cycles) {
  s.completed = latencies.size();
  s.makespan = makespan;
  s.slo = slo_cycles;
  if (s.batches > 0) {
    s.mean_batch = batch_images / static_cast<double>(s.batches);
  }
  if (!latencies.empty()) {
    double sum = 0;
    for (double l : latencies) sum += l;
    const double n = static_cast<double>(latencies.size());
    s.mean_latency = sum / n;
    s.mean_wait = wait_sum / n;
    s.mean_queue_wait = queue_wait_sum / n;
    s.mean_formation_wait = formation_sum / n;
    s.mean_service = service_sum / n;
    std::sort(latencies.begin(), latencies.end());
    s.p50 = nearest_rank(latencies, 0.50);
    s.p95 = nearest_rank(latencies, 0.95);
    s.p99 = nearest_rank(latencies, 0.99);
    s.p999 = nearest_rank(latencies, 0.999);
    s.max_latency = latencies.back();
  }
  if (makespan > 0) {
    s.mean_queue = queue_area / makespan;
    s.utilization = busy_cycles / (static_cast<double>(instances) * makespan);
  }
  if (slo_cycles > 0 && s.offered > 0) {
    const auto within =
        std::upper_bound(latencies.begin(), latencies.end(), slo_cycles) -
        latencies.begin();
    s.slo_attainment =
        static_cast<double>(within) / static_cast<double>(s.offered);
  }
}

}  // namespace

FleetStats simulate_fleet(const FleetConfig& cfg, ArrivalProcess& arrivals) {
  const int C = static_cast<int>(cfg.chips.size());
  const int M = static_cast<int>(cfg.mix.names.size());
  if (C == 0) {
    throw std::invalid_argument("simulate_fleet: need at least one chip");
  }
  if (M == 0 || cfg.mix.names.size() != cfg.mix.shares.size()) {
    throw std::invalid_argument("simulate_fleet: inconsistent traffic mix");
  }
  if (!(cfg.router_hop_cycles >= 0) ||
      !std::isfinite(cfg.router_hop_cycles)) {
    throw std::invalid_argument(
        "simulate_fleet: router hop must be finite and >= 0");
  }
  const double hop = cfg.router_hop_cycles;

  // Placement: the ascending host list per model, validated up front so the
  // router never sees an empty candidate set.
  std::vector<std::vector<int>> hosts(static_cast<std::size_t>(M));
  for (int c = 0; c < C; ++c) {
    const FleetChip& chip = cfg.chips[static_cast<std::size_t>(c)];
    if (chip.spec.point.instances < 1) {
      throw std::invalid_argument("simulate_fleet: chip needs >= 1 instance");
    }
    if (chip.costs.size() != static_cast<std::size_t>(M)) {
      throw std::invalid_argument(
          "simulate_fleet: chip needs one cost model per mix model");
    }
    for (int m = 0; m < M; ++m) {
      if (!chip.spec.hosts(m)) continue;
      const BatchCostModel& bc = chip.costs[static_cast<std::size_t>(m)];
      if (!(bc.first_image_cycles > 0) || !(bc.marginal_image_cycles >= 0)) {
        throw std::invalid_argument(
            "simulate_fleet: hosted model needs positive first-image and "
            "non-negative marginal cycles");
      }
      hosts[static_cast<std::size_t>(m)].push_back(c);
    }
  }
  for (int m = 0; m < M; ++m) {
    if (hosts[static_cast<std::size_t>(m)].empty()) {
      throw std::invalid_argument("simulate_fleet: model '" +
                                  cfg.mix.names[static_cast<std::size_t>(m)] +
                                  "' has no hosting chip");
    }
  }

  // Per-(chip, model) batching policies: one fresh instance each, since
  // policies may keep state (batching.h's one-per-simulation contract,
  // applied per queue).
  std::vector<std::vector<std::unique_ptr<BatchingPolicy>>> policies(
      static_cast<std::size_t>(C));
  std::vector<ChipState> chips(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    auto& cs = chips[static_cast<std::size_t>(c)];
    const int inst = cfg.chips[static_cast<std::size_t>(c)].spec.point.instances;
    for (int i = 0; i < inst; ++i) cs.idle.insert(i);
    cs.queues.resize(static_cast<std::size_t>(M));
    cs.batch_members.resize(static_cast<std::size_t>(inst));
    cs.batch_dispatch.resize(static_cast<std::size_t>(inst), 0.0);
    for (int m = 0; m < M; ++m) {
      policies[static_cast<std::size_t>(c)].push_back(make_policy(cfg.policy));
    }
  }

  const std::unique_ptr<FleetRouter> router =
      make_router(cfg.router, static_cast<std::size_t>(M));
  std::vector<std::uint64_t> outstanding(static_cast<std::size_t>(C), 0);

  // One in-flight batch per busy (chip, instance), ordered by completion;
  // ties pop the lowest (chip, instance) first.
  struct InFlight {
    double completion;
    int chip;
    int instance;
    bool operator>(const InFlight& o) const {
      if (completion != o.completion) return completion > o.completion;
      if (chip != o.chip) return chip > o.chip;
      return instance > o.instance;
    }
  };
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<InFlight>>
      busy;

  // Routed-but-not-yet-delivered requests. The hop is one constant, so
  // delivery times are nondecreasing in routing order — a FIFO deque, no
  // priority queue needed.
  struct Transit {
    double deliver;  ///< arrival + hop
    double arrival;  ///< fleet arrival
    std::uint64_t seq;
    int model;
    int chip;
  };
  std::deque<Transit> transit;

  // Fleet-level accumulators.
  FleetStats out;
  ServingStats& fs = out.fleet;
  std::vector<double> latencies;
  double wait_sum = 0, queue_wait_sum = 0, formation_sum = 0, service_sum = 0;
  double hop_sum = 0, fleet_batch_images = 0;
  std::size_t total_queued = 0;
  // Per-model accumulators.
  std::vector<std::vector<double>> model_lat(static_cast<std::size_t>(M));
  std::vector<std::uint64_t> model_offered(static_cast<std::size_t>(M), 0);
  std::vector<std::uint64_t> model_dropped(static_cast<std::size_t>(M), 0);
  double now = 0;
  std::optional<double> pending;
  if (cfg.request_log != nullptr) cfg.request_log->clear();

  // Observability: one timeline recorder per chip (queue/utilization/SLO-burn
  // resolved per chip), one request-trace recorder for the whole fleet (trace
  // ids are fleet-wide). Sink labels derive from cfg.label below.
  std::vector<std::unique_ptr<obs::TimelineRecorder>> recs;
  if (obs::timeline_enabled()) {
    for (int c = 0; c < C; ++c) {
      obs::TimelineConfig tcfg = obs::default_timeline_config(
          cfg.chips[static_cast<std::size_t>(c)].spec.point.instances,
          cfg.slo_cycles);
      tcfg.attainment_target = cfg.attainment_target;
      if (cfg.expected_horizon_cycles > 0 &&
          !obs::timeline_interval_overridden()) {
        tcfg.interval_cycles = std::max(
            tcfg.interval_cycles, cfg.expected_horizon_cycles / 256.0);
      }
      recs.push_back(std::make_unique<obs::TimelineRecorder>(tcfg));
    }
  }
  std::unique_ptr<obs::RequestTraceRecorder> rrec;
  if (obs::reqtrace_enabled()) {
    rrec = std::make_unique<obs::RequestTraceRecorder>(
        obs::default_reqtrace_config(cfg.slo_cycles));
  }
  const std::vector<obs::TraceNote> no_notes;

  auto poll = [&] {
    if (!pending.has_value()) pending = arrivals.next_arrival();
  };
  auto advance = [&](double t_new) {
    const double dt = t_new - now;
    for (auto& cs : chips) {
      cs.queue_area += static_cast<double>(cs.queued_total) * dt;
      if (!cs.idle.empty()) cs.idle_time += dt;
    }
    now = t_new;
  };

  // A routed request reaches its chip's queue (the hop elapsed — or was zero).
  auto enqueue = [&](double arrival, std::uint64_t seq, int model, int chip) {
    ChipState& cs = chips[static_cast<std::size_t>(chip)];
    ++cs.s.offered;
    if (cfg.queue_capacity > 0 && cs.queued_total >= cfg.queue_capacity) {
      ++fs.dropped;
      ++cs.s.dropped;
      ++model_dropped[static_cast<std::size_t>(model)];
      --outstanding[static_cast<std::size_t>(chip)];
      if (!recs.empty()) recs[static_cast<std::size_t>(chip)]->on_drop(now);
      if (rrec != nullptr) rrec->on_drop(seq, now);
      arrivals.on_completion(now);  // a rejection is still a response
      return;
    }
    cs.queues[static_cast<std::size_t>(model)].push_back(
        {arrival, cs.idle_time, seq, model});
    ++cs.queued_total;
    ++total_queued;
    if (!recs.empty()) recs[static_cast<std::size_t>(chip)]->on_arrival(now);
    if (static_cast<double>(cs.queued_total) > cs.s.max_queue) {
      cs.s.max_queue = static_cast<double>(cs.queued_total);
    }
    if (static_cast<double>(total_queued) > fs.max_queue) {
      fs.max_queue = static_cast<double>(total_queued);
    }
  };

  auto try_dispatch = [&]() -> bool {
    bool dispatched = false;
    while (true) {
      // Among all (chip, model) queues the policy would dispatch from right
      // now, serve the one whose head joined earliest; ties go to the lowest
      // (chip, model) — the scan order below — so the pick is deterministic.
      int bc = -1, bm = -1, bn = 0;
      double best_join = kInf;
      for (int c = 0; c < C; ++c) {
        ChipState& cs = chips[static_cast<std::size_t>(c)];
        if (cs.idle.empty()) continue;
        for (int m = 0; m < M; ++m) {
          auto& q = cs.queues[static_cast<std::size_t>(m)];
          if (q.empty()) continue;
          const double join = q.front().arrival + hop;
          const int n = policies[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(m)]
                                ->dispatch_size(q.size(), join, now);
          if (n <= 0) continue;
          if (join < best_join) {
            best_join = join;
            bc = c;
            bm = m;
            bn = n;
          }
        }
      }
      if (bc < 0) break;
      ChipState& cs = chips[static_cast<std::size_t>(bc)];
      auto& q = cs.queues[static_cast<std::size_t>(bm)];
      int n = bn;
      if (static_cast<std::size_t>(n) > q.size()) {
        n = static_cast<int>(q.size());
      }
      const int inst = *cs.idle.begin();
      cs.idle.erase(cs.idle.begin());
      auto& members = cs.batch_members[static_cast<std::size_t>(inst)];
      members.clear();
      for (int i = 0; i < n; ++i) {
        const ChipState::Queued& qr = q.front();
        const double wait = now - qr.arrival;  // fleet wait, hop included
        wait_sum += wait;
        cs.wait_sum += wait;
        const double chip_wait = now - (qr.arrival + hop);
        double fw = cs.idle_time - qr.idle_at_join;
        if (fw < 0) fw = 0;
        if (fw > chip_wait) fw = chip_wait > 0 ? chip_wait : 0;
        members.push_back({qr.arrival, fw, qr.seq, qr.model});
        q.pop_front();
        --cs.queued_total;
        --total_queued;
      }
      cs.batch_dispatch[static_cast<std::size_t>(inst)] = now;
      const double service =
          cfg.chips[static_cast<std::size_t>(bc)]
              .costs[static_cast<std::size_t>(bm)]
              .service_cycles(n);
      if (!(service > 0) || !std::isfinite(service)) {
        throw std::logic_error(
            "simulate_fleet: cost model returned a non-positive or "
            "non-finite batch time");
      }
      busy.push({now + service, bc, inst});
      cs.busy_cycles += service;
      ++cs.s.batches;
      ++fs.batches;
      cs.batch_images += n;
      fleet_batch_images += n;
      dispatched = true;
      if (!recs.empty()) {
        recs[static_cast<std::size_t>(bc)]->on_dispatch(now, n);
      }
    }
    return dispatched;
  };

  poll();
  while (true) {
    const double tc = busy.empty() ? kInf : busy.top().completion;
    const double tq = transit.empty() ? kInf : transit.front().deliver;
    const double ta = pending.has_value() ? *pending : kInf;
    double td = kInf;
    for (int c = 0; c < C; ++c) {
      ChipState& cs = chips[static_cast<std::size_t>(c)];
      if (cs.idle.empty()) continue;
      for (int m = 0; m < M; ++m) {
        const auto& q = cs.queues[static_cast<std::size_t>(m)];
        if (q.empty()) continue;
        const double d = policies[static_cast<std::size_t>(c)]
                             [static_cast<std::size_t>(m)]
                                 ->flush_deadline(q.size(),
                                                  q.front().arrival + hop);
        td = std::min(td, std::max(d, now));
      }
    }
    const double t_next = std::min({tc, tq, ta, td});
    if (t_next == kInf) break;
    advance(t_next);

    // Tie order at equal timestamps: completions free instances first,
    // router-hop deliveries join queues second, new arrivals are routed
    // third, policy flushes run last — fixed, so the fleet-wide event
    // sequence (and every stat) is reproducible.
    if (tc <= t_next) {
      const InFlight f = busy.top();
      busy.pop();
      ChipState& cs = chips[static_cast<std::size_t>(f.chip)];
      const std::size_t fi = static_cast<std::size_t>(f.instance);
      const double dispatched_at = cs.batch_dispatch[fi];
      const auto& members = cs.batch_members[fi];
      for (const ChipState::Member& m : members) {
        const double lat = now - m.arrival;
        // Exact four-span attribution, a chain of Sterbenz splits: latency
        // into pre-dispatch vs service, pre-dispatch into hop vs on-chip
        // wait, the wait into queue vs formation. Left-to-right,
        //   (hop + (qw + fw)) + service == lat bit-exactly.
        const auto [pre, service_c] =
            exact_split(lat, dispatched_at - m.arrival);
        const auto [hop_c, wait_c] = exact_split(pre, hop);
        const auto [qw, fw] = exact_split(wait_c, wait_c - m.formation_wait);
        latencies.push_back(lat);
        cs.latencies.push_back(lat);
        model_lat[static_cast<std::size_t>(m.model)].push_back(lat);
        hop_sum += hop_c;
        queue_wait_sum += qw;
        formation_sum += fw;
        service_sum += service_c;
        cs.queue_wait_sum += qw;
        cs.formation_sum += fw;
        cs.service_sum += service_c;
        const bool within = cfg.slo_cycles <= 0 || lat <= cfg.slo_cycles;
        if (cfg.request_log != nullptr) {
          cfg.request_log->push_back(
              {m.model, f.chip, hop_c,
               {m.arrival, dispatched_at, now, qw, fw, service_c, within}});
        }
        if (!recs.empty()) {
          recs[static_cast<std::size_t>(f.chip)]->on_completion(now, lat,
                                                                within);
        }
        if (rrec != nullptr) {
          rrec->on_completion_routed(m.seq, m.arrival, dispatched_at, now,
                                     hop_c, qw, fw, service_c, within,
                                     static_cast<int>(members.size()), f.chip,
                                     f.instance, no_notes);
        }
        arrivals.on_completion(now);
      }
      outstanding[static_cast<std::size_t>(f.chip)] -= members.size();
      cs.idle.insert(f.instance);
      if (!recs.empty()) {
        recs[static_cast<std::size_t>(f.chip)]->on_batch_done(now);
      }
      try_dispatch();
      poll();
      continue;
    }
    if (tq <= t_next) {
      const Transit tr = transit.front();
      transit.pop_front();
      enqueue(tr.arrival, tr.seq, tr.model, tr.chip);
      try_dispatch();
      poll();
      continue;
    }
    if (ta <= t_next) {
      ++fs.offered;
      const std::uint64_t seq = fs.offered;
      const int model = cfg.mix.pick(seq);
      ++model_offered[static_cast<std::size_t>(model)];
      const int chip = router->route(
          model, hosts[static_cast<std::size_t>(model)], outstanding);
      ++outstanding[static_cast<std::size_t>(chip)];
      pending.reset();
      poll();
      if (hop == 0) {
        enqueue(now, seq, model, chip);
        try_dispatch();
      } else {
        transit.push_back({now + hop, now, seq, model, chip});
      }
      continue;
    }
    // Flush deadline: some policy named this cycle, so it must dispatch now.
    if (!try_dispatch()) {
      throw std::logic_error(
          "simulate_fleet: batching policy refused to dispatch at its own "
          "flush deadline");
    }
  }
  for (const ChipState& cs : chips) {
    if (cs.queued_total != 0) {
      throw std::logic_error(
          "simulate_fleet: batching policy left requests queued forever "
          "(flush_deadline returned +inf with idle instances)");
    }
  }

  // Finalize: fleet aggregate, then per-chip (fleet makespan, so chip
  // utilizations are comparable), then per-model slices.
  double queue_area = 0, busy_cycles = 0;
  int total_instances = 0;
  for (int c = 0; c < C; ++c) {
    const ChipState& cs = chips[static_cast<std::size_t>(c)];
    queue_area += cs.queue_area;
    busy_cycles += cs.busy_cycles;
    total_instances += cfg.chips[static_cast<std::size_t>(c)].spec.point.instances;
    out.total_area_mm2 += cfg.chips[static_cast<std::size_t>(c)].area_mm2;
  }
  if (!latencies.empty()) {
    out.mean_router_hop = hop_sum / static_cast<double>(latencies.size());
  }
  finalize_stats(fs, latencies, wait_sum, queue_wait_sum, formation_sum,
                 service_sum, fleet_batch_images, now, queue_area, busy_cycles,
                 total_instances, cfg.slo_cycles);
  out.per_chip.resize(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c) {
    ChipState& cs = chips[static_cast<std::size_t>(c)];
    finalize_stats(cs.s, cs.latencies, cs.wait_sum, cs.queue_wait_sum,
                   cs.formation_sum, cs.service_sum, cs.batch_images, now,
                   cs.queue_area, cs.busy_cycles,
                   cfg.chips[static_cast<std::size_t>(c)].spec.point.instances,
                   cfg.slo_cycles);
    out.per_chip[static_cast<std::size_t>(c)] = cs.s;
    out.chip_labels.push_back(
        cfg.chips[static_cast<std::size_t>(c)].spec.short_label());
  }
  for (int m = 0; m < M; ++m) {
    FleetModelStats ms;
    ms.name = cfg.mix.names[static_cast<std::size_t>(m)];
    ms.offered = model_offered[static_cast<std::size_t>(m)];
    ms.dropped = model_dropped[static_cast<std::size_t>(m)];
    auto& lat = model_lat[static_cast<std::size_t>(m)];
    ms.completed = lat.size();
    if (!lat.empty()) {
      double sum = 0;
      for (double l : lat) sum += l;
      ms.mean_latency = sum / static_cast<double>(lat.size());
      std::sort(lat.begin(), lat.end());
      ms.p50 = nearest_rank(lat, 0.50);
      ms.p99 = nearest_rank(lat, 0.99);
      ms.p999 = nearest_rank(lat, 0.999);
    }
    if (cfg.slo_cycles > 0 && ms.offered > 0) {
      const auto within =
          std::upper_bound(lat.begin(), lat.end(), cfg.slo_cycles) -
          lat.begin();
      ms.slo_attainment =
          static_cast<double>(within) / static_cast<double>(ms.offered);
    }
    out.per_model.push_back(std::move(ms));
  }

  if (rrec != nullptr) {
    rrec->finish();
    obs::ReqTraceSink& rsink = obs::ReqTraceSink::global();
    const std::string rlabel =
        cfg.label.empty() ? rsink.next_auto_label() : cfg.label;
    rsink.record(rlabel, rrec->to_jsonl());
  }
  if (!recs.empty()) {
    obs::TimelineSink& sink = obs::TimelineSink::global();
    const std::string base =
        cfg.label.empty() ? sink.next_auto_label() : cfg.label;
    for (int c = 0; c < C; ++c) {
      recs[static_cast<std::size_t>(c)]->finish(fs.makespan);
      char suffix[16];
      std::snprintf(suffix, sizeof suffix, "/chip%02d", c);
      sink.record(base + suffix,
                  recs[static_cast<std::size_t>(c)]->to_jsonl());
    }
  }
  return out;
}

}  // namespace vlacnn::serving

// Batching policies for the request-level serving simulator (request_sim.h).
//
// A policy decides, whenever a model instance is idle and the FIFO queue is
// non-empty, how many queued requests to dispatch as one batch — the knob
// Clipper (NSDI'17) showed trades tail latency against throughput. Policies
// are pure decision functions over (queue depth, oldest arrival, now); the
// event loop owns the queue and the clock. All times are in cycles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

namespace vlacnn::serving {

/// Batch-dispatch decision logic. Not thread-safe: one instance per
/// simulation (policies may keep state; the stock ones are stateless).
class BatchingPolicy {
 public:
  virtual ~BatchingPolicy() = default;

  /// Called whenever an instance is idle and `queued` > 0 requests wait, the
  /// oldest having arrived at `oldest_arrival_cycles`. Returns how many to
  /// dispatch now (the loop clamps to `queued`); 0 means keep waiting.
  virtual int dispatch_size(std::size_t queued, double oldest_arrival_cycles,
                            double now_cycles) = 0;

  /// When dispatch_size() returned 0: the future cycle at which the decision
  /// could flip with no new events (an adaptive policy's flush timeout).
  /// +infinity means "only re-poll on arrivals/completions". The event loop
  /// re-polls at this time, so a policy that waits must name its deadline.
  virtual double flush_deadline(std::size_t queued,
                                double oldest_arrival_cycles) const {
    (void)queued;
    (void)oldest_arrival_cycles;
    return std::numeric_limits<double>::infinity();
  }

  /// Stable label for reports ("nobatch", "maxbatch8", "adaptive8@2e6").
  virtual std::string name() const = 0;
};

/// One request per dispatch — the latency-optimal, throughput-naive baseline.
class NoBatchPolicy : public BatchingPolicy {
 public:
  int dispatch_size(std::size_t, double, double) override { return 1; }
  std::string name() const override { return "nobatch"; }
};

/// Work-conserving greedy batching: dispatch min(queued, max_batch)
/// immediately whenever an instance frees up. Never waits.
class MaxBatchPolicy : public BatchingPolicy {
 public:
  explicit MaxBatchPolicy(int max_batch);
  int dispatch_size(std::size_t queued, double, double) override;
  std::string name() const override;

 private:
  int max_;
};

/// Clipper-style adaptive batching: dispatch a full batch as soon as
/// `max_batch` requests wait, otherwise hold the queue until the oldest
/// request has waited `timeout_cycles`, then flush whatever is there.
/// timeout 0 degenerates to work-conserving MaxBatchPolicy behaviour.
class AdaptiveBatchPolicy : public BatchingPolicy {
 public:
  AdaptiveBatchPolicy(int max_batch, double timeout_cycles);
  int dispatch_size(std::size_t queued, double oldest_arrival_cycles,
                    double now_cycles) override;
  double flush_deadline(std::size_t queued,
                        double oldest_arrival_cycles) const override;
  std::string name() const override;

 private:
  int max_;
  double timeout_;
};

/// Value-type description of a policy, used by the capacity planner and the
/// CLI to build one fresh policy per simulated grid point.
struct BatchPolicySpec {
  enum class Kind { kNoBatch, kMaxBatch, kAdaptive };
  Kind kind = Kind::kNoBatch;
  int max_batch = 8;
  double timeout_cycles = 0;  ///< adaptive flush timeout
};

std::unique_ptr<BatchingPolicy> make_policy(const BatchPolicySpec& spec);

}  // namespace vlacnn::serving

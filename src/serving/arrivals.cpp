#include "serving/arrivals.h"

#include <cmath>
#include <stdexcept>

namespace vlacnn::serving {

namespace {

/// Uniform double in (0, 1] from the top 53 bits of the seeded generator.
/// (0 is excluded so -log(u) below is always finite; 1 maps to a gap of 0.)
double uniform_unit(Rng& rng) {
  const double u =
      static_cast<double>(rng.next_u64() >> 11) * 0x1.0p-53;  // [0, 1)
  return 1.0 - u;                                             // (0, 1]
}

}  // namespace

PoissonArrivals::PoissonArrivals(double mean_interarrival_cycles,
                                 std::uint64_t count, std::uint64_t seed)
    : mean_(mean_interarrival_cycles), count_(count), rng_(seed) {
  if (!(mean_ > 0)) {
    throw std::invalid_argument("PoissonArrivals: mean interarrival must be > 0");
  }
}

std::optional<double> PoissonArrivals::next_arrival() {
  if (issued_ >= count_) return std::nullopt;
  // Inverse-transform exponential gap; the first request also draws a gap so
  // the process has no deterministic arrival at cycle 0.
  t_ += -mean_ * std::log(uniform_unit(rng_));
  ++issued_;
  return t_;
}

ClosedLoopArrivals::ClosedLoopArrivals(int clients, double think_cycles,
                                       std::uint64_t total)
    : think_(think_cycles), total_(total) {
  if (clients < 1) {
    throw std::invalid_argument("ClosedLoopArrivals: need >= 1 client");
  }
  if (!(think_cycles >= 0)) {
    throw std::invalid_argument("ClosedLoopArrivals: think time must be >= 0");
  }
  for (int i = 0; i < clients; ++i) ready_.push(0.0);
}

std::optional<double> ClosedLoopArrivals::next_arrival() {
  if (issued_ >= total_ || ready_.empty()) return std::nullopt;
  const double t = ready_.top();
  ready_.pop();
  ++issued_;
  return t;
}

void ClosedLoopArrivals::on_completion(double now_cycles) {
  // The client behind the finished (or rejected) request thinks, then rejoins.
  if (issued_ < total_) ready_.push(now_cycles + think_);
}

TraceArrivals::TraceArrivals(std::vector<double> arrival_cycles)
    : trace_(std::move(arrival_cycles)) {
  for (std::size_t i = 1; i < trace_.size(); ++i) {
    if (trace_[i] < trace_[i - 1]) {
      throw std::invalid_argument("TraceArrivals: trace must be nondecreasing");
    }
  }
}

std::optional<double> TraceArrivals::next_arrival() {
  if (next_ >= trace_.size()) return std::nullopt;
  return trace_[next_++];
}

std::unique_ptr<ArrivalProcess> make_arrivals(const ArrivalSpec& spec,
                                              std::uint64_t seed) {
  switch (spec.kind) {
    case ArrivalSpec::Kind::kPoisson:
      return std::make_unique<PoissonArrivals>(spec.mean_interarrival_cycles,
                                               spec.requests, seed);
    case ArrivalSpec::Kind::kClosedLoop:
      return std::make_unique<ClosedLoopArrivals>(
          spec.clients, spec.think_cycles, spec.requests);
    case ArrivalSpec::Kind::kTrace:
      return std::make_unique<TraceArrivals>(spec.trace_cycles);
  }
  throw std::invalid_argument("make_arrivals: unknown kind");
}

}  // namespace vlacnn::serving

#include "serving/batching.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vlacnn::serving {

MaxBatchPolicy::MaxBatchPolicy(int max_batch) : max_(max_batch) {
  if (max_batch < 1) {
    throw std::invalid_argument("MaxBatchPolicy: max_batch must be >= 1");
  }
}

int MaxBatchPolicy::dispatch_size(std::size_t queued, double, double) {
  return static_cast<int>(
      std::min<std::size_t>(queued, static_cast<std::size_t>(max_)));
}

std::string MaxBatchPolicy::name() const {
  return "maxbatch" + std::to_string(max_);
}

AdaptiveBatchPolicy::AdaptiveBatchPolicy(int max_batch, double timeout_cycles)
    : max_(max_batch), timeout_(timeout_cycles) {
  if (max_batch < 1) {
    throw std::invalid_argument("AdaptiveBatchPolicy: max_batch must be >= 1");
  }
  if (!(timeout_cycles >= 0)) {
    throw std::invalid_argument("AdaptiveBatchPolicy: timeout must be >= 0");
  }
}

int AdaptiveBatchPolicy::dispatch_size(std::size_t queued,
                                       double oldest_arrival_cycles,
                                       double now_cycles) {
  if (queued >= static_cast<std::size_t>(max_)) return max_;
  // Same expression as flush_deadline(), so the comparison cannot round the
  // other way when the event loop advances exactly to the deadline it named.
  if (now_cycles >= oldest_arrival_cycles + timeout_) {
    return static_cast<int>(queued);  // flush a partial batch
  }
  return 0;
}

double AdaptiveBatchPolicy::flush_deadline(std::size_t,
                                           double oldest_arrival_cycles) const {
  return oldest_arrival_cycles + timeout_;
}

std::string AdaptiveBatchPolicy::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "adaptive%d@%g", max_, timeout_);
  return buf;
}

std::unique_ptr<BatchingPolicy> make_policy(const BatchPolicySpec& spec) {
  switch (spec.kind) {
    case BatchPolicySpec::Kind::kNoBatch:
      return std::make_unique<NoBatchPolicy>();
    case BatchPolicySpec::Kind::kMaxBatch:
      return std::make_unique<MaxBatchPolicy>(spec.max_batch);
    case BatchPolicySpec::Kind::kAdaptive:
      return std::make_unique<AdaptiveBatchPolicy>(spec.max_batch,
                                                   spec.timeout_cycles);
  }
  throw std::invalid_argument("make_policy: unknown kind");
}

}  // namespace vlacnn::serving

// Front-end load-balancing policies for the multi-chip fleet simulator
// (serving/fleet.h, DESIGN.md §15).
//
// A FleetRouter decides, for every request the fleet-level arrival process
// produces, which chip's queue the request joins — restricted to the chips
// that actually host the request's model (per-model placement). Policies are
// deterministic: the stochastic one (power-of-two-choices) draws from the
// repo's seeded splitmix64 Rng, never from wall clock or std:: distributions,
// so a (policy, seed) pair replays the exact same routing on every run,
// platform, and VLACNN_THREADS setting — the fleet loop itself is
// single-threaded, and parallel planners run one router per simulation.
//
// The load signal every policy sees is the per-chip *outstanding* count:
// requests routed to the chip and not yet completed or dropped (queued +
// in transit + in service). It is maintained by the event loop, so routing
// decisions are a pure function of the deterministic event history.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace vlacnn::serving {

/// Value-type description of a router policy, used by the fleet planner and
/// the CLI to build one fresh router per simulated fleet.
struct RouterSpec {
  enum class Kind {
    kRoundRobin,        ///< per-model rotation over the hosting chips
    kJoinShortestQueue, ///< fewest outstanding requests, ties to lowest chip
    kPowerOfTwo,        ///< two seeded draws, fewer outstanding wins
  };
  Kind kind = Kind::kJoinShortestQueue;
  std::uint64_t seed = 1;  ///< p2c draws and tie-breaks; rr/jsq ignore it
};

/// Parse "rr" | "jsq" | "p2c" (the CLI spelling). Throws
/// std::invalid_argument on anything else.
RouterSpec::Kind router_kind_from_string(const std::string& s);

/// The fleet-wide router seed: VLACNN_FLEET_SEED when set (throws
/// std::runtime_error on a malformed value — a typo must not silently change
/// a run's routing), else 1. CLI flags override this per run.
std::uint64_t default_fleet_seed();

/// Request-to-chip routing decision logic. Stateful (rotation counters, the
/// p2c Rng) but not thread-safe: one router per fleet simulation, like the
/// arrival process. route() is called once per offered request, in fleet
/// arrival order — the deterministic event order every stat depends on.
class FleetRouter {
 public:
  virtual ~FleetRouter() = default;

  /// Pick the chip for one request of `model`. `hosts` lists the chips that
  /// host the model (ascending chip indices, never empty — the fleet config
  /// validates placement up front); `outstanding[chip]` counts requests
  /// routed to that chip and not yet resolved. Returns an element of `hosts`.
  virtual int route(int model, const std::vector<int>& hosts,
                    const std::vector<std::uint64_t>& outstanding) = 0;

  /// Stable label for reports and JSON ("rr", "jsq", "p2c").
  virtual std::string name() const = 0;
};

/// Per-model rotation over the hosting chips: model m's k-th request goes to
/// hosts[k mod hosts.size()]. Ignores load entirely — the baseline every
/// load-aware policy is measured against.
class RoundRobinRouter final : public FleetRouter {
 public:
  explicit RoundRobinRouter(std::size_t num_models);
  int route(int model, const std::vector<int>& hosts,
            const std::vector<std::uint64_t>& outstanding) override;
  std::string name() const override { return "rr"; }

 private:
  std::vector<std::uint64_t> next_;  ///< per-model rotation counter
};

/// Join-shortest-queue: the hosting chip with the fewest outstanding
/// requests; ties go to the lowest chip index. The omniscient-load baseline —
/// real front-ends approximate it, the simulator can afford the exact signal.
class JoinShortestQueueRouter final : public FleetRouter {
 public:
  int route(int model, const std::vector<int>& hosts,
            const std::vector<std::uint64_t>& outstanding) override;
  std::string name() const override { return "jsq"; }
};

/// Power-of-two-choices (Mitzenmacher): draw two hosting chips with the
/// seeded Rng and route to the one with fewer outstanding requests; an exact
/// tie is broken by a seeded coin flip, not by chip index, so neither chip of
/// the pair is structurally favoured. With one host the draw degenerates to
/// that host. Same seed ⇒ identical draw sequence ⇒ byte-identical stats.
class PowerOfTwoRouter final : public FleetRouter {
 public:
  explicit PowerOfTwoRouter(std::uint64_t seed);
  int route(int model, const std::vector<int>& hosts,
            const std::vector<std::uint64_t>& outstanding) override;
  std::string name() const override { return "p2c"; }

 private:
  Rng rng_;
};

/// Instantiate the router a RouterSpec describes. `num_models` sizes the
/// round-robin rotation state; the other kinds ignore it.
std::unique_ptr<FleetRouter> make_router(const RouterSpec& spec,
                                         std::size_t num_models);

}  // namespace vlacnn::serving

#include "sweep/results_db.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/csv.h"

namespace vlacnn {

namespace {

const std::vector<std::string> kHeader = {
    "net",     "layer",  "algo",    "vlen",        "l2_bytes",
    "lanes",   "attach", "ic",      "ih",          "iw",
    "oc",      "kh",     "kw",      "stride",      "pad",
    "cycles",  "avg_vl", "l2_miss_rate", "mem_bytes", "flops"};

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9e", v);
  return buf;
}

std::vector<std::string> to_fields(const SweepRow& r) {
  return {r.key.net,
          std::to_string(r.key.layer),
          to_string(r.key.algo),
          std::to_string(r.key.vlen_bits),
          std::to_string(r.key.l2_bytes),
          std::to_string(r.key.lanes),
          r.key.attach == VpuAttach::kIntegratedL1 ? "int" : "dec",
          std::to_string(r.desc.ic),
          std::to_string(r.desc.ih),
          std::to_string(r.desc.iw),
          std::to_string(r.desc.oc),
          std::to_string(r.desc.kh),
          std::to_string(r.desc.kw),
          std::to_string(r.desc.stride),
          std::to_string(r.desc.pad),
          fmt(r.cycles),
          fmt(r.avg_vl),
          fmt(r.l2_miss_rate),
          fmt(r.mem_bytes),
          fmt(r.flops)};
}

}  // namespace

ResultsDb::ResultsDb(std::string path) : path_(std::move(path)) {
  CsvTable t = read_csv_file(path_);
  if (t.header.empty()) return;
  if (t.header != kHeader) {
    throw std::runtime_error("results_db: incompatible cache file " + path_ +
                             " (delete it to regenerate)");
  }
  for (const auto& f : t.rows) {
    SweepRow r;
    r.key.net = f[0];
    r.key.layer = std::stoi(f[1]);
    r.key.algo = algo_from_string(f[2]);
    r.key.vlen_bits = static_cast<std::uint32_t>(std::stoul(f[3]));
    r.key.l2_bytes = std::stoull(f[4]);
    r.key.lanes = static_cast<std::uint32_t>(std::stoul(f[5]));
    r.key.attach =
        f[6] == "int" ? VpuAttach::kIntegratedL1 : VpuAttach::kDecoupledL2;
    r.desc = ConvLayerDesc{std::stoi(f[7]),  std::stoi(f[8]),  std::stoi(f[9]),
                           std::stoi(f[10]), std::stoi(f[11]), std::stoi(f[12]),
                           std::stoi(f[13]), std::stoi(f[14])};
    r.cycles = std::stod(f[15]);
    r.avg_vl = std::stod(f[16]);
    r.l2_miss_rate = std::stod(f[17]);
    r.mem_bytes = std::stod(f[18]);
    r.flops = std::stod(f[19]);
    rows_[r.key] = r;
  }
}

std::optional<SweepRow> ResultsDb::find(const SweepKey& key) const {
  auto it = rows_.find(key);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

void ResultsDb::put(const SweepRow& row) {
  rows_[row.key] = row;
  append_csv_rows(path_, kHeader, {to_fields(row)});
}

std::string default_results_path() {
  const char* dir = std::getenv("REPRO_RESULTS_DIR");
  std::string base = dir != nullptr ? dir : "results";
  return base + "/sweep_cache.csv";
}

}  // namespace vlacnn

#include "sweep/results_db.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "common/csv.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace vlacnn {

namespace {

// Cache-engine instruments, resolved once. A "hit" is any request served from
// memory, a "miss" is a request that had to run the compute function, and a
// "singleflight_wait" is a request that blocked on another thread's compute.
struct DbMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& waits;
  obs::Counter& puts;
  obs::Counter& loaded_rows;
  obs::Counter& heals;

  static DbMetrics& get() {
    static DbMetrics m = [] {
      obs::Registry& reg = obs::Registry::global();
      return DbMetrics{reg.counter("results_db.hit"),
                       reg.counter("results_db.miss"),
                       reg.counter("results_db.singleflight_wait"),
                       reg.counter("results_db.put"),
                       reg.counter("results_db.loaded_rows"),
                       reg.counter("results_db.heal")};
    }();
    return m;
  }
};

// v1 schema: headline numbers only. Still loadable; the loader heals such
// files by rewriting them under the current header, with the breakdown
// columns left empty until a report-enabled run upgrades the row.
const std::vector<std::string> kHeaderV1 = {
    "net",     "layer",  "algo",    "vlen",        "l2_bytes",
    "lanes",   "attach", "ic",      "ih",          "iw",
    "oc",      "kh",     "kw",      "stride",      "pad",
    "cycles",  "avg_vl", "l2_miss_rate", "mem_bytes", "flops"};

// v2 schema: v1 plus the cycle-attribution breakdown. The ten breakdown
// columns are either all populated or all empty on a given row (empty =
// loaded from a v1 cache, breakdown unknown).
const std::vector<std::string> kHeader = [] {
  std::vector<std::string> h = kHeaderV1;
  const char* extra[] = {"compute_cycles", "mem_issue_cycles",
                         "mem_stall_cycles", "scalar_cycles",
                         "vec_instructions", "vec_elems",
                         "l1_accesses", "l1_misses",
                         "l2_accesses", "l2_misses"};
  h.insert(h.end(), std::begin(extra), std::end(extra));
  return h;
}();

std::string fmt(double v) {
  // %.17g round-trips every IEEE-754 double exactly: a reloaded cache is
  // bit-identical to the run that wrote it, so near-tie algorithm picks in
  // network_optimal cannot flip between cold and cached runs.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::vector<std::string> to_fields(const SweepRow& r) {
  std::vector<std::string> f = {
      r.key.net,
      std::to_string(r.key.layer),
      to_string(r.key.algo),
      std::to_string(r.key.vlen_bits),
      std::to_string(r.key.l2_bytes),
      std::to_string(r.key.lanes),
      r.key.attach == VpuAttach::kIntegratedL1 ? "int" : "dec",
      std::to_string(r.desc.ic),
      std::to_string(r.desc.ih),
      std::to_string(r.desc.iw),
      std::to_string(r.desc.oc),
      std::to_string(r.desc.kh),
      std::to_string(r.desc.kw),
      std::to_string(r.desc.stride),
      std::to_string(r.desc.pad),
      fmt(r.cycles),
      fmt(r.avg_vl),
      fmt(r.l2_miss_rate),
      fmt(r.mem_bytes),
      fmt(r.flops)};
  if (r.has_breakdown) {
    for (double v : {r.bd.compute_cycles, r.bd.mem_issue_cycles,
                     r.bd.mem_stall_cycles, r.bd.scalar_cycles,
                     r.bd.vec_instructions, r.bd.vec_elems, r.bd.l1_accesses,
                     r.bd.l1_misses, r.bd.l2_accesses, r.bd.l2_misses}) {
      f.push_back(fmt(v));
    }
  } else {
    f.insert(f.end(), kHeader.size() - kHeaderV1.size(), std::string());
  }
  return f;
}

std::string join_fields(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += fields[i];
  }
  line += '\n';
  return line;
}

// Strict numeric parsers: reject trailing junk, which plain std::stoi/stod
// silently accept ("1.2e" truncated from "1.2e+07" must not parse as 1.2).
int field_int(const std::string& s) {
  std::size_t pos = 0;
  const int v = std::stoi(s, &pos);
  if (pos != s.size()) {
    throw std::invalid_argument("trailing characters in integer '" + s + "'");
  }
  return v;
}

std::uint64_t field_u64(const std::string& s) {
  std::size_t pos = 0;
  const unsigned long long v = std::stoull(s, &pos);
  if (pos != s.size()) {
    throw std::invalid_argument("trailing characters in integer '" + s + "'");
  }
  return v;
}

double field_double(const std::string& s) {
  std::size_t pos = 0;
  const double v = std::stod(s, &pos);
  if (pos != s.size()) {
    throw std::invalid_argument("trailing characters in number '" + s + "'");
  }
  return v;
}

SweepRow row_from_fields(const std::vector<std::string>& f) {
  SweepRow r;
  r.key.net = f[0];
  r.key.layer = field_int(f[1]);
  r.key.algo = algo_from_string(f[2]);
  r.key.vlen_bits = static_cast<std::uint32_t>(field_u64(f[3]));
  r.key.l2_bytes = field_u64(f[4]);
  r.key.lanes = static_cast<std::uint32_t>(field_u64(f[5]));
  if (f[6] != "int" && f[6] != "dec") {
    throw std::invalid_argument("bad attach '" + f[6] + "'");
  }
  r.key.attach = f[6] == "int" ? VpuAttach::kIntegratedL1
                               : VpuAttach::kDecoupledL2;
  r.desc = ConvLayerDesc{field_int(f[7]),  field_int(f[8]),  field_int(f[9]),
                         field_int(f[10]), field_int(f[11]), field_int(f[12]),
                         field_int(f[13]), field_int(f[14])};
  r.cycles = field_double(f[15]);
  r.avg_vl = field_double(f[16]);
  r.l2_miss_rate = field_double(f[17]);
  r.mem_bytes = field_double(f[18]);
  r.flops = field_double(f[19]);
  if (f.size() == kHeaderV1.size()) return r;  // v1 row: no breakdown
  std::size_t empties = 0;
  for (std::size_t i = kHeaderV1.size(); i < f.size(); ++i) {
    if (f[i].empty()) ++empties;
  }
  if (empties == kHeader.size() - kHeaderV1.size()) return r;  // unknown
  if (empties != 0) {
    throw std::invalid_argument("breakdown columns must be all set or all empty");
  }
  r.has_breakdown = true;
  r.bd.compute_cycles = field_double(f[20]);
  r.bd.mem_issue_cycles = field_double(f[21]);
  r.bd.mem_stall_cycles = field_double(f[22]);
  r.bd.scalar_cycles = field_double(f[23]);
  r.bd.vec_instructions = field_double(f[24]);
  r.bd.vec_elems = field_double(f[25]);
  r.bd.l1_accesses = field_double(f[26]);
  r.bd.l1_misses = field_double(f[27]);
  r.bd.l2_accesses = field_double(f[28]);
  r.bd.l2_misses = field_double(f[29]);
  return r;
}

}  // namespace

ResultsDb::ResultsDb(std::string path) : path_(std::move(path)) {
  CsvReadOptions opts;
  opts.tolerate_partial_tail = true;
  CsvTable t = read_csv_file(path_, opts);
  if (t.header.empty()) return;
  // An old-schema (v1) cache loads fine — the headline numbers are unchanged
  // — but is healed onto the current schema so subsequent appends line up.
  const bool old_schema = t.header == kHeaderV1;
  if (!old_schema && t.header != kHeader) {
    throw std::runtime_error("results_db: incompatible cache file " + path_ +
                             " (delete it to regenerate)");
  }
  bool heal = t.dropped_partial_tail || old_schema;
  if (!t.complete_tail && !t.dropped_partial_tail && !t.rows.empty()) {
    // Right field count but no trailing newline: the final field may have been
    // cut mid-write (put() flushes whole lines, so only a crash produces
    // this). Drop the row; it will be recomputed on demand.
    t.rows.pop_back();
    t.row_lines.pop_back();
    heal = true;
  }
  for (std::size_t i = 0; i < t.rows.size(); ++i) {
    SweepRow r;
    try {
      r = row_from_fields(t.rows[i]);
    } catch (const std::exception& e) {
      if (i + 1 == t.rows.size()) {
        // A truncated final line can keep the right field count; treat an
        // unparseable last row like a partial tail and recompute it later.
        heal = true;
        break;
      }
      throw std::runtime_error("results_db: " + path_ + ":" +
                               std::to_string(t.row_lines[i]) + ": " +
                               e.what() + " (delete the file to regenerate)");
    }
    rows_[r.key] = r;
  }
  if (heal) {
    // Rewrite the file from the surviving rows so the partial tail does not
    // corrupt subsequent appends.
    CsvTable clean;
    clean.header = kHeader;
    for (const auto& [key, row] : rows_) clean.rows.push_back(to_fields(row));
    write_csv_file(path_, clean);
    healed_on_load_ = true;
  }
  if (obs::metrics_enabled()) {
    DbMetrics& m = DbMetrics::get();
    m.loaded_rows.add(rows_.size());
    if (healed_on_load_) m.heals.add();
  }
  obs::log(obs::LogLevel::kInfo, "results_db", "loaded",
           {{"path", path_},
            {"rows", std::to_string(rows_.size())},
            {"healed", healed_on_load_ ? "true" : "false"}});
}

std::optional<SweepRow> ResultsDb::find(const SweepKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = rows_.find(key);
  if (obs::metrics_enabled()) {
    (it != rows_.end() ? DbMetrics::get().hits : DbMetrics::get().misses).add();
  }
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

std::size_t ResultsDb::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rows_.size();
}

void ResultsDb::persist_locked(const SweepRow& row) {
  if (!out_.is_open()) {
    // Lazy open keeps a read-only ResultsDb from creating files. Header and
    // row boundaries were validated at load, so appending is safe.
    std::error_code ec;
    const auto existing_size = std::filesystem::file_size(path_, ec);
    const bool fresh = ec || existing_size == 0;
    if (fresh) {
      CsvTable empty;
      empty.header = kHeader;
      write_csv_file(path_, empty);  // creates parent dir + header
    }
    out_.open(path_, std::ios::app);
    if (!out_) {
      throw std::runtime_error("results_db: cannot append " + path_);
    }
  }
  // One complete line per write, flushed immediately: a crash can truncate at
  // most the final line, which the loader tolerates.
  const std::string line = join_fields(to_fields(row));
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  out_.flush();
}

void ResultsDb::put(const SweepRow& row) {
  if (obs::metrics_enabled()) DbMetrics::get().puts.add();
  std::lock_guard<std::mutex> lk(mu_);
  rows_[row.key] = row;
  persist_locked(row);
}

SweepRow ResultsDb::get_or_compute(const SweepKey& key,
                                   const std::function<SweepRow()>& compute) {
  const bool metered = obs::metrics_enabled();
  std::shared_ptr<InFlight> flight;
  {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (auto it = rows_.find(key); it != rows_.end()) {
        if (metered) DbMetrics::get().hits.add();
        return it->second;
      }
      auto fit = inflight_.find(key);
      if (fit == inflight_.end()) {
        flight = std::make_shared<InFlight>();
        inflight_.emplace(key, flight);
        if (metered) DbMetrics::get().misses.add();
        break;  // this thread is the leader
      }
      // Another thread is computing this key: wait for it, then re-check.
      if (metered) DbMetrics::get().waits.add();
      std::shared_ptr<InFlight> theirs = fit->second;
      lk.unlock();
      {
        std::unique_lock<std::mutex> flk(theirs->m);
        theirs->cv.wait(flk, [&] { return theirs->done; });
        if (theirs->err) std::rethrow_exception(theirs->err);
      }
      lk.lock();
    }
  }

  SweepRow row;
  std::exception_ptr err;
  try {
    row = compute();
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!err) {
      try {
        rows_[key] = row;
        persist_locked(row);
      } catch (...) {
        rows_.erase(key);
        err = std::current_exception();
      }
    }
    inflight_.erase(key);
  }
  {
    std::lock_guard<std::mutex> flk(flight->m);
    flight->err = err;
    flight->done = true;
    flight->cv.notify_all();
  }
  if (err) std::rethrow_exception(err);
  return row;
}

std::string default_results_path() {
  const char* dir = std::getenv("REPRO_RESULTS_DIR");
  std::string base = dir != nullptr ? dir : "results";
  return base + "/sweep_cache.csv";
}

}  // namespace vlacnn

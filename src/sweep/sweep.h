// Co-design sweep driver: computes (or retrieves) the per-layer simulation grid
// every figure is built from, and provides the standard grids of Paper II
// (vlen in {512..4096} x L2 in {1,4,16,64} MB) and Paper I (decoupled VPU,
// vlen to 16384, L2 to 256 MB).
//
// Independent grid points fan out across ThreadPool::shared(): get_many() (and
// everything built on it — network_rows, network_optimal, prefetch, the
// serving grid) simulates misses in parallel, deduplicated per key by the
// thread-safe ResultsDb, and assembles results in deterministic request order,
// so parallel output is bit-identical to a serial run.
#pragma once

#include <array>
#include <vector>

#include "algos/registry.h"
#include "net/network.h"
#include "sweep/results_db.h"

namespace vlacnn {

/// Paper II hardware grid.
std::vector<std::uint32_t> paper2_vlens();        // 512..4096
std::vector<std::uint64_t> paper2_l2_sizes();     // 1,4,16,64 MB
/// Paper I hardware grid (decoupled RVV).
std::vector<std::uint32_t> paper1_vlens();        // 512..16384
std::vector<std::uint64_t> paper1_l2_sizes();     // 1,8,64,256 MB

/// One (layer, algorithm, hardware) point of the sweep grid.
struct SweepRequest {
  std::string net;
  int layer = 0;
  ConvLayerDesc desc;
  Algo algo = Algo::kGemm6;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_bytes = 1u << 20;
  std::uint32_t lanes = 8;
  VpuAttach attach = VpuAttach::kIntegratedL1;
};

/// Front door to the per-layer simulation grid. All methods are thread-safe
/// (state is one pointer to the internally-synchronized ResultsDb), so a
/// driver may be shared by concurrent pool tasks — the serving simulators do
/// exactly that. All returned times are simulated core **cycles** (2 GHz in
/// the papers); conversion to seconds happens only in presentation code.
class SweepDriver {
 public:
  explicit SweepDriver(ResultsDb* db) : db_(db) {}

  /// Result for one (layer, algo, hardware) point; simulates on cache miss.
  /// The sampler honours REPRO_EXACT (see repro_exact_mode). Thread-safe:
  /// concurrent calls for the same key run exactly one simulation.
  SweepRow get(const std::string& net_name, int conv_ordinal,
               const ConvLayerDesc& desc, Algo algo, std::uint32_t vlen_bits,
               std::uint64_t l2_bytes, std::uint32_t lanes = 8,
               VpuAttach attach = VpuAttach::kIntegratedL1);

  /// Batch get(): simulates all misses in parallel on the shared pool and
  /// returns rows in request order (out[i] answers reqs[i]).
  std::vector<SweepRow> get_many(const std::vector<SweepRequest>& reqs);

  /// Warm the cache for every (conv layer x algo-with-fallback x vlen x L2)
  /// combination in one parallel fan-out. Figure drivers call this first so
  /// their serial formatting loops hit a fully populated cache.
  void prefetch(const Network& net, const std::vector<Algo>& algos,
                const std::vector<std::uint32_t>& vlens,
                const std::vector<std::uint64_t>& l2_sizes,
                std::uint32_t lanes = 8,
                VpuAttach attach = VpuAttach::kIntegratedL1);

  /// All per-layer rows of one network under one hardware point, one row per
  /// conv layer, using `algo` where applicable and gemm6 as fallback.
  std::vector<SweepRow> network_rows(const Network& net, Algo algo,
                                     std::uint32_t vlen_bits,
                                     std::uint64_t l2_bytes,
                                     std::uint32_t lanes = 8,
                                     VpuAttach attach = VpuAttach::kIntegratedL1);

  /// Sum of cycles over conv layers for a uniform-algorithm plan (cycles).
  double network_cycles(const Network& net, Algo algo, std::uint32_t vlen_bits,
                        std::uint64_t l2_bytes, std::uint32_t lanes = 8,
                        VpuAttach attach = VpuAttach::kIntegratedL1);

  /// Per-layer optimal plan (argmin over applicable algorithms) and its cycles.
  struct OptimalResult {
    std::vector<Algo> plan;  ///< winning algorithm per conv layer, in order
    double cycles = 0;       ///< whole-network conv time, simulated cycles
  };
  OptimalResult network_optimal(const Network& net, std::uint32_t vlen_bits,
                                std::uint64_t l2_bytes, std::uint32_t lanes = 8,
                                VpuAttach attach = VpuAttach::kIntegratedL1);

  /// Per-layer, per-algorithm cycle table: out[layer][i] is the simulated
  /// cycles of kAllAlgos[i] on conv layer `layer`, or NaN when that algorithm
  /// is not applicable to the layer. One parallel fan-out over the same
  /// (layer, algo) points network_optimal visits — on a warm cache this is
  /// pure lookup. The learned dispatcher (src/dispatch) consumes this as its
  /// per-point ground truth.
  std::vector<std::array<double, kAllAlgos.size()>> layer_algo_cycles(
      const Network& net, std::uint32_t vlen_bits, std::uint64_t l2_bytes,
      std::uint32_t lanes = 8, VpuAttach attach = VpuAttach::kIntegratedL1);

  /// Cycles of an explicit per-conv-layer plan (plan.size() must equal the
  /// network's conv-layer count).
  double network_plan_cycles(const Network& net, const std::vector<Algo>& plan,
                             std::uint32_t vlen_bits, std::uint64_t l2_bytes,
                             std::uint32_t lanes = 8,
                             VpuAttach attach = VpuAttach::kIntegratedL1);

  ResultsDb* db() const { return db_; }

 private:
  ResultsDb* db_;
};

/// True when REPRO_EXACT is set to 1/true/yes/on (disables sampled
/// simulation); false when unset or 0/false/no/off. Any other value throws —
/// a typo must not silently run the sampled mode.
bool repro_exact_mode();

}  // namespace vlacnn

// Persistent cache of per-layer simulation results, shared by all benchmark
// binaries. The co-design figures all draw from the same (network x layer x
// algorithm x vlen x L2) grid; the first bench to need a point computes and
// appends it, later ones read it back.
//
// The store is safe for concurrent use by the parallel sweep engine:
//  * every public method is internally synchronized;
//  * get_or_compute() deduplicates in-flight work per key (single-flight):
//    when several threads ask for the same uncomputed key, exactly one runs
//    the compute function and the rest block for its result;
//  * doubles are persisted with %.17g, so a reloaded cache is bit-identical
//    to the run that produced it;
//  * rows are appended to disk as complete single lines and flushed, so a
//    crash can lose at most one partial trailing line — which the loader
//    detects, drops, and heals by rewriting the file.
#pragma once

#include <condition_variable>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "algos/conv_args.h"
#include "memsim/memory_system.h"
#include "tensor/conv_desc.h"

namespace vlacnn {

struct SweepKey {
  std::string net;  ///< model name, e.g. "vgg16"
  int layer = 0;    ///< conv-layer ordinal within the model (0-based)
  Algo algo = Algo::kGemm6;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_bytes = 1u << 20;
  std::uint32_t lanes = 8;
  VpuAttach attach = VpuAttach::kIntegratedL1;

  auto tie() const {
    return std::tie(net, layer, algo, vlen_bits, l2_bytes, lanes, attach);
  }
  bool operator<(const SweepKey& o) const { return tie() < o.tie(); }
};

/// Cycle-attribution breakdown of one simulation point, mirroring the
/// TimingStats buckets. Carried by the v2 cache schema so the report layer
/// (src/report/) can attribute cycles without re-simulating.
struct SweepBreakdown {
  double compute_cycles = 0;
  double mem_issue_cycles = 0;
  double mem_stall_cycles = 0;
  double scalar_cycles = 0;
  double vec_instructions = 0;
  double vec_elems = 0;
  double l1_accesses = 0;  ///< line probes at the VPU-facing level
  double l1_misses = 0;
  double l2_accesses = 0;
  double l2_misses = 0;
};

struct SweepRow {
  SweepKey key;
  ConvLayerDesc desc;
  double cycles = 0;
  double avg_vl = 0;
  double l2_miss_rate = 0;
  double mem_bytes = 0;
  double flops = 0;
  /// False for rows loaded from a v1 (pre-breakdown) cache file: the headline
  /// numbers are valid but `bd` is all zeros. A report-enabled run upgrades
  /// such rows by re-simulating (see SweepDriver::get).
  bool has_breakdown = false;
  SweepBreakdown bd;
};

/// CSV-backed, thread-safe store. Loads existing rows at construction; put()
/// and get_or_compute() append both in memory and on disk.
class ResultsDb {
 public:
  explicit ResultsDb(std::string path);

  std::optional<SweepRow> find(const SweepKey& key) const;
  void put(const SweepRow& row);

  /// The cached row for `key`, computing (and persisting) it via `compute` on
  /// a miss. Concurrent callers with the same key trigger exactly one compute;
  /// the others wait and share the result. If the compute throws, the
  /// exception propagates to every caller waiting on that key.
  SweepRow get_or_compute(const SweepKey& key,
                          const std::function<SweepRow()>& compute);

  std::size_t size() const;
  const std::string& path() const { return path_; }

  /// True when construction found (and repaired) a truncated trailing row, a
  /// file that did not end in a newline, or an old-schema (v1, pre-breakdown)
  /// cache that was rewritten in the current schema.
  bool healed_on_load() const { return healed_on_load_; }

 private:
  void persist_locked(const SweepRow& row);

  struct InFlight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr err;
  };

  std::string path_;
  mutable std::mutex mu_;
  std::map<SweepKey, SweepRow> rows_;
  std::map<SweepKey, std::shared_ptr<InFlight>> inflight_;
  std::ofstream out_;  ///< lazily opened append writer (guarded by mu_)
  bool healed_on_load_ = false;
};

/// REPRO_RESULTS_DIR env var, defaulting to "results" under the current
/// working directory.
std::string default_results_path();

}  // namespace vlacnn

// Persistent cache of per-layer simulation results, shared by all benchmark
// binaries. The co-design figures all draw from the same (network x layer x
// algorithm x vlen x L2) grid; the first bench to need a point computes and
// appends it, later ones read it back.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "algos/conv_args.h"
#include "memsim/memory_system.h"
#include "tensor/conv_desc.h"

namespace vlacnn {

struct SweepKey {
  std::string net;  ///< model name, e.g. "vgg16"
  int layer = 0;    ///< conv-layer ordinal within the model (0-based)
  Algo algo = Algo::kGemm6;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_bytes = 1u << 20;
  std::uint32_t lanes = 8;
  VpuAttach attach = VpuAttach::kIntegratedL1;

  auto tie() const {
    return std::tie(net, layer, algo, vlen_bits, l2_bytes, lanes, attach);
  }
  bool operator<(const SweepKey& o) const { return tie() < o.tie(); }
};

struct SweepRow {
  SweepKey key;
  ConvLayerDesc desc;
  double cycles = 0;
  double avg_vl = 0;
  double l2_miss_rate = 0;
  double mem_bytes = 0;
  double flops = 0;
};

/// CSV-backed store. Loads existing rows at construction; put() appends both in
/// memory and on disk.
class ResultsDb {
 public:
  explicit ResultsDb(std::string path);

  std::optional<SweepRow> find(const SweepKey& key) const;
  void put(const SweepRow& row);
  std::size_t size() const { return rows_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::map<SweepKey, SweepRow> rows_;
};

/// REPRO_RESULTS_DIR env var, defaulting to "results" under the current
/// working directory.
std::string default_results_path();

}  // namespace vlacnn

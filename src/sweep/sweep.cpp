#include "sweep/sweep.h"

#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace vlacnn {

std::vector<std::uint32_t> paper2_vlens() { return {512, 1024, 2048, 4096}; }
std::vector<std::uint64_t> paper2_l2_sizes() {
  return {1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20};
}
std::vector<std::uint32_t> paper1_vlens() {
  return {512, 1024, 2048, 4096, 8192, 16384};
}
std::vector<std::uint64_t> paper1_l2_sizes() {
  return {1ull << 20, 8ull << 20, 64ull << 20, 256ull << 20};
}

bool repro_exact_mode() {
  const char* v = std::getenv("REPRO_EXACT");
  return v != nullptr && v[0] == '1';
}

SweepRow SweepDriver::get(const std::string& net_name, int conv_ordinal,
                          const ConvLayerDesc& desc, Algo algo,
                          std::uint32_t vlen_bits, std::uint64_t l2_bytes,
                          std::uint32_t lanes, VpuAttach attach) {
  SweepKey key{net_name, conv_ordinal, algo, vlen_bits, l2_bytes, lanes, attach};
  if (auto hit = db_->find(key)) {
    if (!(hit->desc == desc)) {
      throw std::runtime_error(
          "sweep: cached layer descriptor mismatch for " + net_name +
          " layer " + std::to_string(conv_ordinal) +
          " (stale cache? delete " + db_->path() + ")");
    }
    return *hit;
  }
  SimConfig config = make_sim_config(vlen_bits, l2_bytes, lanes, attach);
  config.sampler.exact = repro_exact_mode();
  const TimingStats stats = conv_simulate(algo, desc, config);
  SweepRow row;
  row.key = key;
  row.desc = desc;
  row.cycles = stats.cycles;
  row.avg_vl = stats.avg_vl();
  row.l2_miss_rate = stats.l2_miss_rate();
  row.mem_bytes = stats.mem_bytes;
  row.flops = stats.flops;
  db_->put(row);
  return row;
}

std::vector<SweepRow> SweepDriver::network_rows(const Network& net, Algo algo,
                                                std::uint32_t vlen_bits,
                                                std::uint64_t l2_bytes,
                                                std::uint32_t lanes,
                                                VpuAttach attach) {
  std::vector<SweepRow> rows;
  const auto descs = net.conv_descs();
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const Algo a = algo_applicable(algo, descs[i]) ? algo : Algo::kGemm6;
    rows.push_back(get(net.name(), static_cast<int>(i), descs[i], a, vlen_bits,
                       l2_bytes, lanes, attach));
  }
  return rows;
}

double SweepDriver::network_cycles(const Network& net, Algo algo,
                                   std::uint32_t vlen_bits,
                                   std::uint64_t l2_bytes, std::uint32_t lanes,
                                   VpuAttach attach) {
  double total = 0;
  for (const SweepRow& r :
       network_rows(net, algo, vlen_bits, l2_bytes, lanes, attach)) {
    total += r.cycles;
  }
  return total;
}

SweepDriver::OptimalResult SweepDriver::network_optimal(const Network& net,
                                                        std::uint32_t vlen_bits,
                                                        std::uint64_t l2_bytes,
                                                        std::uint32_t lanes,
                                                        VpuAttach attach) {
  OptimalResult out;
  const auto descs = net.conv_descs();
  for (std::size_t i = 0; i < descs.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    Algo best_algo = Algo::kGemm6;
    for (Algo a : kAllAlgos) {
      if (!algo_applicable(a, descs[i])) continue;
      const SweepRow r = get(net.name(), static_cast<int>(i), descs[i], a,
                             vlen_bits, l2_bytes, lanes, attach);
      if (r.cycles < best) {
        best = r.cycles;
        best_algo = a;
      }
    }
    out.plan.push_back(best_algo);
    out.cycles += best;
  }
  return out;
}

double SweepDriver::network_plan_cycles(const Network& net,
                                        const std::vector<Algo>& plan,
                                        std::uint32_t vlen_bits,
                                        std::uint64_t l2_bytes,
                                        std::uint32_t lanes, VpuAttach attach) {
  const auto descs = net.conv_descs();
  if (plan.size() != descs.size()) {
    throw std::invalid_argument("sweep: plan size mismatch");
  }
  double total = 0;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const Algo a =
        algo_applicable(plan[i], descs[i]) ? plan[i] : Algo::kGemm6;
    total += get(net.name(), static_cast<int>(i), descs[i], a, vlen_bits,
                 l2_bytes, lanes, attach)
                 .cycles;
  }
  return total;
}

}  // namespace vlacnn

#include "sweep/sweep.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "obs/kernprof.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/collector.h"

namespace vlacnn {

namespace {

/// A SweepRow, including the full cycle-attribution breakdown, from one
/// simulation's TimingStats.
SweepRow row_from_stats(const SweepKey& key, const ConvLayerDesc& desc,
                        const TimingStats& stats) {
  SweepRow r;
  r.key = key;
  r.desc = desc;
  r.cycles = stats.cycles;
  r.avg_vl = stats.avg_vl();
  r.l2_miss_rate = stats.l2_miss_rate();
  r.mem_bytes = stats.mem_bytes;
  r.flops = stats.flops;
  r.has_breakdown = true;
  r.bd.compute_cycles = stats.compute_cycles;
  r.bd.mem_issue_cycles = stats.mem_issue_cycles;
  r.bd.mem_stall_cycles = stats.mem_stall_cycles;
  r.bd.scalar_cycles = stats.scalar_cycles;
  r.bd.vec_instructions = stats.vec_instructions;
  r.bd.vec_elems = stats.vec_elems;
  r.bd.l1_accesses = stats.first_level_accesses;
  r.bd.l1_misses = stats.first_level_misses;
  r.bd.l2_accesses = stats.l2_accesses;
  r.bd.l2_misses = stats.l2_misses;
  return r;
}

/// report::PhaseCell rows from a kernel profile's phases, keyed by the
/// profile's grid-point label (which matches report::entry_key for sweep
/// points — the driver fills SimConfig.net/.layer below).
std::vector<report::PhaseCell> phase_cells(const obs::KernProfRun& prof) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<report::PhaseCell> cells;
  cells.reserve(prof.phases.size());
  for (const obs::KernProfPhase& p : prof.phases) {
    report::PhaseCell c;
    c.key = prof.label;
    c.phase = p.name;
    c.cycles = p.cycles;
    c.compute_cycles = p.compute_cycles;
    c.mem_issue_cycles = p.mem_issue_cycles;
    c.mem_stall_cycles = p.mem_stall_cycles;
    c.scalar_cycles = p.scalar_cycles;
    c.avg_vl = p.avg_vl;
    c.l1_miss_rate = p.l1_accesses > 0 ? p.l1_misses / p.l1_accesses : kNaN;
    c.l2_miss_rate = p.l2_accesses > 0 ? p.l2_misses / p.l2_accesses : kNaN;
    c.mem_bytes = p.mem_bytes;
    cells.push_back(std::move(c));
  }
  return cells;
}

}  // namespace

std::vector<std::uint32_t> paper2_vlens() { return {512, 1024, 2048, 4096}; }
std::vector<std::uint64_t> paper2_l2_sizes() {
  return {1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20};
}
std::vector<std::uint32_t> paper1_vlens() {
  return {512, 1024, 2048, 4096, 8192, 16384};
}
std::vector<std::uint64_t> paper1_l2_sizes() {
  return {1ull << 20, 8ull << 20, 64ull << 20, 256ull << 20};
}

bool repro_exact_mode() {
  const char* v = std::getenv("REPRO_EXACT");
  if (v == nullptr) return false;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s.empty() || s == "0" || s == "false" || s == "no" || s == "off") {
    return false;
  }
  throw std::runtime_error("REPRO_EXACT: unrecognized value '" +
                           std::string(v) +
                           "' (expected 1/true/yes/on or 0/false/no/off)");
}

SweepRow SweepDriver::get(const std::string& net_name, int conv_ordinal,
                          const ConvLayerDesc& desc, Algo algo,
                          std::uint32_t vlen_bits, std::uint64_t l2_bytes,
                          std::uint32_t lanes, VpuAttach attach) {
  SweepKey key{net_name, conv_ordinal, algo, vlen_bits, l2_bytes, lanes, attach};
  auto sim_config = [&] {
    SimConfig config = make_sim_config(vlen_bits, l2_bytes, lanes, attach);
    config.sampler.exact = repro_exact_mode();
    // Grid-point identity for kernprof labeling: with these set the profile
    // label equals report::entry_key(key), so profile blocks and report rows
    // join on the same string.
    config.net = net_name;
    config.layer = conv_ordinal;
    return config;
  };
  obs::KernProfRun prof;
  bool have_prof = false;
  SweepRow row = db_->get_or_compute(key, [&] {
    // Only cache misses reach this lambda, so the span/sim-point metrics
    // count actual simulations, tagged with the full grid coordinate.
    obs::Span span("sweep.sim");
    if (span.active()) {
      span.arg("net", net_name);
      span.arg("layer", std::to_string(conv_ordinal));
      span.arg("algo", to_string(algo));
      span.arg("vlen", std::to_string(vlen_bits));
      span.arg("l2", std::to_string(l2_bytes));
    }
    SimConfig config = sim_config();
    const TimingStats stats = conv_simulate(algo, desc, config, &prof);
    have_prof = obs::kernprof_enabled();
    if (obs::metrics_enabled()) {
      static obs::Counter& points =
          obs::Registry::global().counter("sweep.sim_points");
      points.add();
    }
    return row_from_stats(key, desc, stats);
  });
  if (!(row.desc == desc)) {
    throw std::runtime_error(
        "sweep: cached layer descriptor mismatch for " + net_name +
        " layer " + std::to_string(conv_ordinal) +
        " (stale cache? delete " + db_->path() + ")");
  }
  if (!row.has_breakdown && report::enabled()) {
    // Lazy upgrade of rows loaded from a v1 (pre-breakdown) cache: only
    // report-enabled runs pay the re-simulation, and only for the points they
    // actually touch. Concurrent upgraders of the same key waste a sim but
    // produce identical rows (the simulation is deterministic), so put() is
    // a benign overwrite.
    obs::Span span("sweep.upgrade");
    if (span.active()) span.arg("net", net_name);
    SimConfig config = sim_config();
    const TimingStats stats = conv_simulate(algo, desc, config, &prof);
    have_prof = obs::kernprof_enabled();
    row = row_from_stats(key, desc, stats);
    db_->put(row);
  }
  if (obs::kernprof_enabled() && !have_prof) {
    // The row came out of a warm ResultsDb, so no PMU rode along. Re-simulate
    // purely for the profile — same discipline as the v1 upgrade above: the
    // simulation is deterministic, so the recorded block is byte-identical to
    // a cold run's, and concurrent profilers of one key are benign.
    obs::Span span("sweep.kernprof");
    if (span.active()) span.arg("net", net_name);
    SimConfig config = sim_config();
    conv_simulate(algo, desc, config, &prof);
    have_prof = true;
  }
  if (report::enabled()) {
    report::Collector::global().record_row(row);
    if (have_prof) {
      report::Collector::global().record_phases(prof.label, phase_cells(prof));
    }
  }
  return row;
}

std::vector<SweepRow> SweepDriver::get_many(
    const std::vector<SweepRequest>& reqs) {
  obs::Span span("sweep.get_many");
  if (span.active()) span.arg("requests", std::to_string(reqs.size()));
  if (obs::metrics_enabled()) {
    static obs::Counter& requests =
        obs::Registry::global().counter("sweep.requests");
    requests.add(reqs.size());
  }
  std::vector<SweepRow> out(reqs.size());
  // One task per request; the ResultsDb deduplicates overlapping keys
  // (single-flight) and indexing by request order keeps the output
  // deterministic regardless of scheduling.
  ThreadPool::shared().parallel_for(reqs.size(), [&](std::size_t i) {
    const SweepRequest& q = reqs[i];
    out[i] = get(q.net, q.layer, q.desc, q.algo, q.vlen_bits, q.l2_bytes,
                 q.lanes, q.attach);
  });
  return out;
}

void SweepDriver::prefetch(const Network& net, const std::vector<Algo>& algos,
                           const std::vector<std::uint32_t>& vlens,
                           const std::vector<std::uint64_t>& l2_sizes,
                           std::uint32_t lanes, VpuAttach attach) {
  obs::Span span("sweep.prefetch");
  if (span.active()) span.arg("net", net.name());
  obs::log(obs::LogLevel::kDebug, "sweep", "prefetch",
           {{"net", net.name()},
            {"algos", std::to_string(algos.size())},
            {"vlens", std::to_string(vlens.size())},
            {"l2_sizes", std::to_string(l2_sizes.size())}});
  const auto descs = net.conv_descs();
  std::vector<SweepRequest> reqs;
  reqs.reserve(descs.size() * algos.size() * vlens.size() * l2_sizes.size());
  for (std::uint32_t vlen : vlens) {
    for (std::uint64_t l2 : l2_sizes) {
      for (Algo algo : algos) {
        for (std::size_t i = 0; i < descs.size(); ++i) {
          const Algo a = algo_applicable(algo, descs[i]) ? algo : Algo::kGemm6;
          reqs.push_back({net.name(), static_cast<int>(i), descs[i], a, vlen,
                          l2, lanes, attach});
        }
      }
    }
  }
  get_many(reqs);
}

std::vector<SweepRow> SweepDriver::network_rows(const Network& net, Algo algo,
                                                std::uint32_t vlen_bits,
                                                std::uint64_t l2_bytes,
                                                std::uint32_t lanes,
                                                VpuAttach attach) {
  const auto descs = net.conv_descs();
  std::vector<SweepRequest> reqs;
  reqs.reserve(descs.size());
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const Algo a = algo_applicable(algo, descs[i]) ? algo : Algo::kGemm6;
    reqs.push_back({net.name(), static_cast<int>(i), descs[i], a, vlen_bits,
                    l2_bytes, lanes, attach});
  }
  return get_many(reqs);
}

double SweepDriver::network_cycles(const Network& net, Algo algo,
                                   std::uint32_t vlen_bits,
                                   std::uint64_t l2_bytes, std::uint32_t lanes,
                                   VpuAttach attach) {
  double total = 0;
  for (const SweepRow& r :
       network_rows(net, algo, vlen_bits, l2_bytes, lanes, attach)) {
    total += r.cycles;
  }
  return total;
}

SweepDriver::OptimalResult SweepDriver::network_optimal(const Network& net,
                                                        std::uint32_t vlen_bits,
                                                        std::uint64_t l2_bytes,
                                                        std::uint32_t lanes,
                                                        VpuAttach attach) {
  obs::Span span("sweep.network_optimal");
  if (span.active()) {
    span.arg("net", net.name());
    span.arg("vlen", std::to_string(vlen_bits));
    span.arg("l2", std::to_string(l2_bytes));
  }
  const auto descs = net.conv_descs();
  // Fan out over every applicable (layer, algorithm) point, then reduce
  // serially in the same layer-major / kAllAlgos order as the serial loop:
  // identical iteration order means identical tie-breaking, so the parallel
  // plan is bit-for-bit the serial plan.
  std::vector<SweepRequest> reqs;
  std::vector<std::size_t> layer_of;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    for (Algo a : kAllAlgos) {
      if (!algo_applicable(a, descs[i])) continue;
      reqs.push_back({net.name(), static_cast<int>(i), descs[i], a, vlen_bits,
                      l2_bytes, lanes, attach});
      layer_of.push_back(i);
    }
  }
  const std::vector<SweepRow> rows = get_many(reqs);

  OptimalResult out;
  out.plan.assign(descs.size(), Algo::kGemm6);
  std::vector<double> best(descs.size(),
                           std::numeric_limits<double>::infinity());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const std::size_t i = layer_of[j];
    if (rows[j].cycles < best[i]) {
      best[i] = rows[j].cycles;
      out.plan[i] = reqs[j].algo;
    }
  }
  for (double b : best) out.cycles += b;
  return out;
}

std::vector<std::array<double, kAllAlgos.size()>>
SweepDriver::layer_algo_cycles(const Network& net, std::uint32_t vlen_bits,
                               std::uint64_t l2_bytes, std::uint32_t lanes,
                               VpuAttach attach) {
  const auto descs = net.conv_descs();
  // Same applicable (layer, algo) fan-out as network_optimal, but keeping the
  // full table instead of reducing to the argmin, so a consumer can price any
  // plan (including deliberately suboptimal exploration) without re-querying.
  std::vector<SweepRequest> reqs;
  std::vector<std::pair<std::size_t, std::size_t>> slot_of;  // (layer, algo)
  for (std::size_t i = 0; i < descs.size(); ++i) {
    for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
      if (!algo_applicable(kAllAlgos[a], descs[i])) continue;
      reqs.push_back({net.name(), static_cast<int>(i), descs[i], kAllAlgos[a],
                      vlen_bits, l2_bytes, lanes, attach});
      slot_of.push_back({i, a});
    }
  }
  const std::vector<SweepRow> rows = get_many(reqs);

  std::vector<std::array<double, kAllAlgos.size()>> table(descs.size());
  for (auto& row : table) {
    row.fill(std::numeric_limits<double>::quiet_NaN());
  }
  for (std::size_t j = 0; j < rows.size(); ++j) {
    table[slot_of[j].first][slot_of[j].second] = rows[j].cycles;
  }
  return table;
}

double SweepDriver::network_plan_cycles(const Network& net,
                                        const std::vector<Algo>& plan,
                                        std::uint32_t vlen_bits,
                                        std::uint64_t l2_bytes,
                                        std::uint32_t lanes, VpuAttach attach) {
  const auto descs = net.conv_descs();
  if (plan.size() != descs.size()) {
    throw std::invalid_argument("sweep: plan size mismatch");
  }
  std::vector<SweepRequest> reqs;
  reqs.reserve(descs.size());
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const Algo a = algo_applicable(plan[i], descs[i]) ? plan[i] : Algo::kGemm6;
    reqs.push_back({net.name(), static_cast<int>(i), descs[i], a, vlen_bits,
                    l2_bytes, lanes, attach});
  }
  double total = 0;
  for (const SweepRow& r : get_many(reqs)) total += r.cycles;
  return total;
}

}  // namespace vlacnn

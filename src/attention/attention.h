// Multi-head self-attention on the VLA vector engine — the thesis's named
// future-work direction ("optimizing ViTs on vector architectures ... many
// matrices are skinny and irregular ... each self-attention layer involves two
// matrix-matrix multiplications along with one softmax kernel").
//
// The layer reuses the 3-loop GEMM kernel for all projections and the
// attention matmuls, and adds a VLA-vectorized row softmax. Like the conv
// kernels it is written once over the engine, so the same code is numerically
// validated (FunctionalEngine vs a scalar reference) and timing-simulated
// (TraceEngine) — see bench_vit_attention for the resulting co-design view.
#pragma once

#include <vector>

#include "algos/conv_args.h"
#include "algos/registry.h"
#include "vpu/buffer.h"
#include "vpu/functional_engine.h"
#include "vpu/trace_engine.h"

namespace vlacnn {

/// Dimensions of one self-attention layer.
struct AttentionDesc {
  int seq_len = 196;  ///< tokens (ViT-Base on 224x224: 14x14 patches + cls)
  int dim = 768;      ///< embedding dimension
  int heads = 12;

  int head_dim() const { return dim / heads; }
  /// FLOPs of the four projections + two attention matmuls.
  std::uint64_t flops() const {
    const std::uint64_t s = seq_len, d = dim;
    return 2 * (4 * s * d * d + 2 * s * s * d);
  }
};

/// x: [seq][dim]; wq/wk/wv/wo: [dim][dim] row-major (output = x * W^T is not
/// used; projections compute X * W with W laid out [dim_in][dim_out]);
/// out: [seq][dim]. Scratch comes from the engine.
template <class E>
void self_attention(E& eng, const AttentionDesc& desc, BufView x, BufView wq,
                    BufView wk, BufView wv, BufView wo, BufView out,
                    const Sampler& sampler);

/// Scalar reference implementation for validation.
void self_attention_reference(const AttentionDesc& desc, const float* x,
                              const float* wq, const float* wk,
                              const float* wv, const float* wo, float* out);

/// Host convenience: numeric run via FunctionalEngine.
std::vector<float> self_attention_functional(const AttentionDesc& desc,
                                             const std::vector<float>& x,
                                             const std::vector<float>& wq,
                                             const std::vector<float>& wk,
                                             const std::vector<float>& wv,
                                             const std::vector<float>& wo,
                                             const VpuConfig& vpu);

/// Timing simulation on a cold hierarchy (same contract as conv_simulate).
TimingStats attention_simulate(const AttentionDesc& desc,
                               const SimConfig& config);

extern template void self_attention<TraceEngine>(TraceEngine&,
                                                 const AttentionDesc&, BufView,
                                                 BufView, BufView, BufView,
                                                 BufView, BufView,
                                                 const Sampler&);
extern template void self_attention<FunctionalEngine>(
    FunctionalEngine&, const AttentionDesc&, BufView, BufView, BufView,
    BufView, BufView, BufView, const Sampler&);

}  // namespace vlacnn

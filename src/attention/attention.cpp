#include "attention/attention.h"

#include <cmath>
#include <stdexcept>

#include "algos/gemm3.h"

namespace vlacnn {

namespace {

/// Row-major copy of `rows x cols` from src (row stride src_ld, starting at
/// src_off) into contiguous dst — packs a head's Q/V slice.
template <class E>
void pack_rows(E& eng, BufView src, std::uint64_t src_off,
               std::uint64_t src_ld, BufView dst, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(cols);) {
      const std::uint64_t vl = eng.setvl(cols - c);
      auto v = eng.vload(src, src_off + static_cast<std::uint64_t>(r) * src_ld + c, vl);
      eng.vstore(v, dst, static_cast<std::uint64_t>(r) * cols + c);
      c += vl;
    }
  }
}

/// Transposed pack: dst[t][s] = src[s][src_off + t] for t < cols, s < rows.
/// Strided loads gather a column of the source (the K^T layout the
/// score GEMM needs) — the "irregular data movement" cost the thesis calls out.
template <class E>
void pack_transposed(E& eng, BufView src, std::uint64_t src_off,
                     std::uint64_t src_ld, BufView dst, int rows, int cols) {
  for (int t = 0; t < cols; ++t) {
    for (std::uint64_t s = 0; s < static_cast<std::uint64_t>(rows);) {
      const std::uint64_t vl = eng.setvl(rows - s);
      auto v = eng.vload_strided(src, src_off + t + s * src_ld,
                                 static_cast<std::int64_t>(src_ld), vl);
      eng.vstore(v, dst, static_cast<std::uint64_t>(t) * rows + s);
      s += vl;
    }
  }
}

/// VLA row softmax over a contiguous [rows x cols] matrix, scaled by `scale`
/// before exponentiation (the 1/sqrt(dh) factor is fused here).
template <class E>
void softmax_rows(E& eng, BufView m, int rows, int cols, float scale) {
  for (int r = 0; r < rows; ++r) {
    const std::uint64_t base = static_cast<std::uint64_t>(r) * cols;
    // Pass 1: row maximum (for numerical stability), on scaled logits.
    float row_max = -3.4e38f;
    for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(cols);) {
      const std::uint64_t vl = eng.setvl(cols - c);
      auto v = eng.vload(m, base + c, vl);
      eng.vmul_vs(v, scale);
      const float seg = eng.vredmax(v);
      if constexpr (E::computes()) row_max = std::max(row_max, seg);
      c += vl;
    }
    eng.scalar_ops(2);
    // Pass 2: exp(scaled - max), accumulate the sum.
    float sum = 0.0f;
    for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(cols);) {
      const std::uint64_t vl = eng.setvl(cols - c);
      auto v = eng.vload(m, base + c, vl);
      eng.vmul_vs(v, scale);
      eng.vadd_vs(v, E::computes() ? -row_max : 0.0f);
      eng.vexp(v);
      eng.vstore(v, m, base + c);
      const float seg = eng.vredsum(v);
      if constexpr (E::computes()) sum += seg;
      c += vl;
    }
    eng.scalar_ops(2);
    // Pass 3: normalise.
    const float inv = E::computes() ? 1.0f / sum : 1.0f;
    for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(cols);) {
      const std::uint64_t vl = eng.setvl(cols - c);
      auto v = eng.vload(m, base + c, vl);
      eng.vmul_vs(v, inv);
      eng.vstore(v, m, base + c);
      c += vl;
    }
  }
}

}  // namespace

template <class E>
void self_attention(E& eng, const AttentionDesc& desc, BufView x, BufView wq,
                    BufView wk, BufView wv, BufView wo, BufView out,
                    const Sampler& sampler) {
  const int s = desc.seq_len;
  const int d = desc.dim;
  const int dh = desc.head_dim();
  if (dh * desc.heads != d) {
    throw std::invalid_argument("attention: dim must divide by heads");
  }
  const std::uint64_t sd = static_cast<std::uint64_t>(s) * d;

  Scratch q = eng.alloc(sd);
  Scratch k = eng.alloc(sd);
  Scratch v = eng.alloc(sd);
  Scratch ctx = eng.alloc(sd);
  Scratch qh = eng.alloc(static_cast<std::uint64_t>(s) * dh);
  Scratch kht = eng.alloc(static_cast<std::uint64_t>(s) * dh);
  Scratch vh = eng.alloc(static_cast<std::uint64_t>(s) * dh);
  Scratch scores = eng.alloc(static_cast<std::uint64_t>(s) * s);
  Scratch ctxh = eng.alloc(static_cast<std::uint64_t>(s) * dh);

  // Projections: Q/K/V = X * W (each an S x D = (S x D)(D x D) GEMM).
  gemm3_kernel(eng, s, d, d, x, wq, q.view, sampler);
  gemm3_kernel(eng, s, d, d, x, wk, k.view, sampler);
  gemm3_kernel(eng, s, d, d, x, wv, v.view, sampler);

  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (int h = 0; h < desc.heads; ++h) {
    const std::uint64_t off = static_cast<std::uint64_t>(h) * dh;
    pack_rows(eng, q.view, off, d, qh.view, s, dh);
    pack_transposed(eng, k.view, off, d, kht.view, s, dh);
    pack_rows(eng, v.view, off, d, vh.view, s, dh);

    // scores = Qh (S x dh) * Kh^T (dh x S); scratch must restart from zero for
    // each head in functional mode.
    if constexpr (E::computes()) {
      for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(s) * s; ++i) {
        (*scores.storage)[i] = 0.0f;
      }
    }
    gemm3_kernel(eng, s, s, dh, qh.view, kht.view, scores.view, sampler);
    softmax_rows(eng, scores.view, s, s, scale);

    // ctx_h = P (S x S) * Vh (S x dh), then scatter back to ctx[:, h*dh..).
    if constexpr (E::computes()) {
      for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(s) * dh; ++i) {
        (*ctxh.storage)[i] = 0.0f;
      }
    }
    gemm3_kernel(eng, s, dh, s, scores.view, vh.view, ctxh.view, sampler);
    for (int r = 0; r < s; ++r) {
      for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(dh);) {
        const std::uint64_t vl = eng.setvl(dh - c);
        auto vv = eng.vload(ctxh.view, static_cast<std::uint64_t>(r) * dh + c, vl);
        eng.vstore(vv, ctx.view, static_cast<std::uint64_t>(r) * d + off + c);
        c += vl;
      }
    }
  }

  // Output projection.
  gemm3_kernel(eng, s, d, d, ctx.view, wo, out, sampler);
}

void self_attention_reference(const AttentionDesc& desc, const float* x,
                              const float* wq, const float* wk,
                              const float* wv, const float* wo, float* out) {
  const int s = desc.seq_len;
  const int d = desc.dim;
  const int dh = desc.head_dim();
  auto matmul = [](const float* a, const float* b, int m, int k, int n,
                   std::vector<double>& c) {
    c.assign(static_cast<std::size_t>(m) * n, 0.0);
    for (int i = 0; i < m; ++i) {
      for (int t = 0; t < k; ++t) {
        const double av = a[static_cast<std::size_t>(i) * k + t];
        for (int j = 0; j < n; ++j) {
          c[static_cast<std::size_t>(i) * n + j] +=
              av * b[static_cast<std::size_t>(t) * n + j];
        }
      }
    }
  };
  std::vector<double> q, k, v;
  matmul(x, wq, s, d, d, q);
  matmul(x, wk, s, d, d, k);
  matmul(x, wv, s, d, d, v);
  std::vector<double> ctx(static_cast<std::size_t>(s) * d, 0.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dh));
  std::vector<double> row(s);
  for (int h = 0; h < desc.heads; ++h) {
    const int off = h * dh;
    for (int i = 0; i < s; ++i) {
      double mx = -1e300;
      for (int j = 0; j < s; ++j) {
        double dot = 0;
        for (int t = 0; t < dh; ++t) {
          dot += q[static_cast<std::size_t>(i) * d + off + t] *
                 k[static_cast<std::size_t>(j) * d + off + t];
        }
        row[j] = dot * scale;
        mx = std::max(mx, row[j]);
      }
      double sum = 0;
      for (int j = 0; j < s; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
      }
      for (int j = 0; j < s; ++j) row[j] /= sum;
      for (int t = 0; t < dh; ++t) {
        double acc = 0;
        for (int j = 0; j < s; ++j) {
          acc += row[j] * v[static_cast<std::size_t>(j) * d + off + t];
        }
        ctx[static_cast<std::size_t>(i) * d + off + t] = acc;
      }
    }
  }
  // out = ctx * Wo
  for (int i = 0; i < s; ++i) {
    for (int j = 0; j < d; ++j) {
      double acc = 0;
      for (int t = 0; t < d; ++t) {
        acc += ctx[static_cast<std::size_t>(i) * d + t] *
               wo[static_cast<std::size_t>(t) * d + j];
      }
      out[static_cast<std::size_t>(i) * d + j] = static_cast<float>(acc);
    }
  }
}

std::vector<float> self_attention_functional(const AttentionDesc& desc,
                                             const std::vector<float>& x,
                                             const std::vector<float>& wq,
                                             const std::vector<float>& wk,
                                             const std::vector<float>& wv,
                                             const std::vector<float>& wo,
                                             const VpuConfig& vpu) {
  const std::size_t sd = static_cast<std::size_t>(desc.seq_len) * desc.dim;
  const std::size_t dd = static_cast<std::size_t>(desc.dim) * desc.dim;
  if (x.size() != sd || wq.size() != dd || wk.size() != dd ||
      wv.size() != dd || wo.size() != dd) {
    throw std::invalid_argument("attention: operand size mismatch");
  }
  FunctionalEngine eng(vpu);
  std::vector<float> out(sd, 0.0f);
  const BufView x_v = eng.bind(x.data(), x.size());
  const BufView wq_v = eng.bind(wq.data(), wq.size());
  const BufView wk_v = eng.bind(wk.data(), wk.size());
  const BufView wv_v = eng.bind(wv.data(), wv.size());
  const BufView wo_v = eng.bind(wo.data(), wo.size());
  const BufView out_v = eng.bind(out.data(), out.size());
  self_attention(eng, desc, x_v, wq_v, wk_v, wv_v, wo_v, out_v, Sampler{});
  return out;
}

TimingStats attention_simulate(const AttentionDesc& desc,
                               const SimConfig& config_in) {
  SimConfig config = config_in;
  config.mem.attach = config.vpu.attach;
  MemorySystem mem(config.mem);
  TimingModel timing(config.vpu, &mem, config.timing);
  TraceEngine eng(config.vpu, &timing);
  const std::uint64_t sd =
      static_cast<std::uint64_t>(desc.seq_len) * desc.dim;
  const std::uint64_t dd = static_cast<std::uint64_t>(desc.dim) * desc.dim;
  const BufView x = eng.bind(nullptr, sd);
  const BufView wq = eng.bind(nullptr, dd);
  const BufView wk = eng.bind(nullptr, dd);
  const BufView wv = eng.bind(nullptr, dd);
  const BufView wo = eng.bind(nullptr, dd);
  const BufView out = eng.bind(nullptr, sd);
  self_attention(eng, desc, x, wq, wk, wv, wo, out, config.sampler);
  return timing.stats();
}

template void self_attention<TraceEngine>(TraceEngine&, const AttentionDesc&,
                                          BufView, BufView, BufView, BufView,
                                          BufView, BufView, const Sampler&);
template void self_attention<FunctionalEngine>(FunctionalEngine&,
                                               const AttentionDesc&, BufView,
                                               BufView, BufView, BufView,
                                               BufView, BufView,
                                               const Sampler&);

}  // namespace vlacnn

// Bagged random forest over CART trees — the algorithm-selection model of
// Paper II (max depth 10, bootstrap, sqrt-feature subsampling, majority vote).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.h"

namespace vlacnn {

struct ForestParams {
  int n_trees = 100;
  TreeParams tree{};       // tree.feature_subset filled from sqrt rule if 0
  bool bootstrap = true;
  std::uint64_t seed = 0x5eed;
};

class RandomForest {
 public:
  void fit(const Dataset& data, const std::vector<std::size_t>& train_idx,
           const ForestParams& params);

  int predict(const std::vector<float>& x) const;

  /// Per-label vote counts across all trees (index = label). Ties resolve to
  /// the lowest label in predict(); exposing the raw tally lets tests and the
  /// flattened evaluator verify that rule. Throws std::logic_error if any
  /// tree emits a negative label (a corrupt tree).
  std::vector<int> votes(const std::vector<float>& x) const;

  /// Fraction of correctly predicted samples among `idx`.
  double accuracy(const Dataset& data,
                  const std::vector<std::size_t>& idx) const;

  /// Mean normalised impurity decrease per feature across trees.
  std::vector<double> feature_importances() const;

  std::size_t tree_count() const { return trees_.size(); }
  std::size_t num_features() const { return num_features_; }

  /// The fitted trees, read-only — consumed by dispatch::FlatForest.
  const std::vector<DecisionTree>& trees() const { return trees_; }

 private:
  std::vector<DecisionTree> trees_;
  std::size_t num_features_ = 0;
};

}  // namespace vlacnn

// CART classification tree (Gini impurity, axis-aligned threshold splits) —
// the base learner of the random forest. Supports per-node random feature
// subsampling, which is what decorrelates forest members.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"

namespace vlacnn {

struct TreeParams {
  int max_depth = 10;          ///< Paper II's tuned depth
  int min_samples_leaf = 1;
  int min_samples_split = 2;
  /// Features considered per split; 0 = all (single tree), forests pass
  /// ceil(sqrt(num_features)).
  int feature_subset = 0;
};

class DecisionTree {
 public:
  /// One fitted tree node. Exposed read-only so downstream consumers (the
  /// flattened dispatch evaluator, src/dispatch/flat_forest) can lower the
  /// tree into contiguous arrays without re-walking pointers per prediction.
  struct Node {
    int feature = -1;    ///< -1 marks a leaf
    float threshold = 0;
    int left = -1;
    int right = -1;
    int label = 0;
  };

  /// Fit on the samples selected by `idx` (with multiplicity — bootstrap
  /// samples repeat indices). Throws std::invalid_argument when a selected
  /// sample's label is outside [0, data.num_classes()) — such a label would
  /// index the per-class count arrays out of bounds.
  void fit(const Dataset& data, const std::vector<std::size_t>& idx,
           const TreeParams& params, Rng& rng);

  int predict(const std::vector<float>& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

  /// The fitted nodes; index 0 is the root, children point into this vector.
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Total Gini-impurity decrease attributed to each feature (unnormalised).
  const std::vector<double>& impurity_decrease() const {
    return impurity_decrease_;
  }

 private:
  int build(const Dataset& data, std::vector<std::size_t>& idx, int depth,
            const TreeParams& params, Rng& rng);

  std::vector<Node> nodes_;
  std::vector<double> impurity_decrease_;
};

}  // namespace vlacnn

#include "ml/crossval.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace vlacnn {

SplitIndices train_test_split(std::size_t n, double test_fraction,
                              std::uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("split: fraction must be in (0,1)");
  }
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  Rng rng(seed);
  rng.shuffle(idx);
  const std::size_t n_test = std::max<std::size_t>(
      1, static_cast<std::size_t>(test_fraction * static_cast<double>(n)));
  SplitIndices out;
  out.test.assign(idx.begin(), idx.begin() + n_test);
  out.train.assign(idx.begin() + n_test, idx.end());
  return out;
}

std::vector<int> heldout_predictions(const Dataset& data,
                                     const ForestParams& params, int folds,
                                     std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("cv: need >= 2 folds");
  const std::size_t n = data.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  Rng rng(seed);
  rng.shuffle(idx);

  std::vector<int> predictions(n, -1);
  for (int f = 0; f < folds; ++f) {
    std::vector<std::size_t> train, test;
    for (std::size_t i = 0; i < n; ++i) {
      (static_cast<int>(i % folds) == f ? test : train).push_back(idx[i]);
    }
    ForestParams p = params;
    p.seed = params.seed + static_cast<std::uint64_t>(f) * 0x9e37;
    RandomForest forest;
    forest.fit(data, train, p);
    for (std::size_t i : test) predictions[i] = forest.predict(data.x[i]);
  }
  return predictions;
}

CrossValResult cross_validate(const Dataset& data, const ForestParams& params,
                              int folds, std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("cv: need >= 2 folds");
  const std::size_t n = data.size();
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  Rng rng(seed);
  rng.shuffle(idx);

  CrossValResult out;
  for (int f = 0; f < folds; ++f) {
    std::vector<std::size_t> train, test;
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i % folds) == f) {
        test.push_back(idx[i]);
      } else {
        train.push_back(idx[i]);
      }
    }
    ForestParams p = params;
    p.seed = params.seed + static_cast<std::uint64_t>(f) * 0x9e37;
    RandomForest forest;
    forest.fit(data, train, p);
    out.fold_accuracy.push_back(forest.accuracy(data, test));
  }
  out.min_accuracy = *std::min_element(out.fold_accuracy.begin(),
                                       out.fold_accuracy.end());
  out.max_accuracy = *std::max_element(out.fold_accuracy.begin(),
                                       out.fold_accuracy.end());
  double sum = 0;
  for (double a : out.fold_accuracy) sum += a;
  out.mean_accuracy = sum / static_cast<double>(folds);
  return out;
}

}  // namespace vlacnn

// 5-fold cross-validation with shuffling (Paper II Section 4.3 protocol) and
// the train/test split helper.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/random_forest.h"

namespace vlacnn {

struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Shuffled train/test split (test_fraction of samples held out).
SplitIndices train_test_split(std::size_t n, double test_fraction,
                              std::uint64_t seed);

struct CrossValResult {
  std::vector<double> fold_accuracy;
  double mean_accuracy = 0;
  double min_accuracy = 0;
  double max_accuracy = 0;
};

/// k-fold CV with shuffling: each fold trains a fresh forest on the remaining
/// folds and scores the held-out one (held-out points are unseen, as in the
/// paper).
CrossValResult cross_validate(const Dataset& data, const ForestParams& params,
                              int folds, std::uint64_t seed);

/// k-fold held-out predictions: every sample is predicted by the fold model
/// that did NOT train on it (the "Predicted Optimal" protocol of Figs 9/10).
std::vector<int> heldout_predictions(const Dataset& data,
                                     const ForestParams& params, int folds,
                                     std::uint64_t seed);

}  // namespace vlacnn

#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace vlacnn {

namespace {

double gini(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (int c : counts) {
    const double p = static_cast<double>(c) / total;
    g -= p * p;
  }
  return g;
}

int majority(const std::vector<int>& counts) {
  int best = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace

void DecisionTree::fit(const Dataset& data, const std::vector<std::size_t>& idx,
                       const TreeParams& params, Rng& rng) {
  // A label outside [0, num_classes) would index the per-class count arrays
  // below out of bounds (build_selection_dataset emits -1 for a layer with no
  // applicable algorithm); reject it up front instead of corrupting memory.
  for (std::size_t i : idx) {
    if (data.y[i] < 0 || data.y[i] >= data.num_classes()) {
      throw std::invalid_argument(
          "tree: label " + std::to_string(data.y[i]) + " at sample " +
          std::to_string(i) + " outside [0, " +
          std::to_string(data.num_classes()) + ")");
    }
  }
  nodes_.clear();
  impurity_decrease_.assign(data.num_features(), 0.0);
  std::vector<std::size_t> work = idx;
  build(data, work, 0, params, rng);
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& idx,
                        int depth, const TreeParams& params, Rng& rng) {
  const int n_classes = data.num_classes();
  std::vector<int> counts(n_classes, 0);
  for (std::size_t i : idx) ++counts[data.y[i]];
  const int total = static_cast<int>(idx.size());
  const double node_gini = gini(counts, total);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  nodes_[node_id].label = majority(counts);

  const bool pure = node_gini <= 1e-12;
  if (pure || depth >= params.max_depth ||
      total < params.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset.
  const int nf = static_cast<int>(data.num_features());
  std::vector<int> features(nf);
  for (int f = 0; f < nf; ++f) features[f] = f;
  int n_try = params.feature_subset > 0 ? std::min(params.feature_subset, nf)
                                        : nf;
  if (n_try < nf) {
    // Partial Fisher-Yates: first n_try entries become the random subset.
    for (int i = 0; i < n_try; ++i) {
      const int j = i + static_cast<int>(rng.next_below(nf - i));
      std::swap(features[i], features[j]);
    }
    features.resize(n_try);
  }

  double best_gain = 1e-12;
  int best_feature = -1;
  float best_threshold = 0;

  std::vector<std::pair<float, int>> vals(idx.size());
  std::vector<int> left_counts(n_classes);
  for (int f : features) {
    for (std::size_t i = 0; i < idx.size(); ++i) {
      vals[i] = {data.x[idx[i]][f], data.y[idx[i]]};
    }
    std::sort(vals.begin(), vals.end());
    std::fill(left_counts.begin(), left_counts.end(), 0);
    int n_left = 0;
    for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
      ++left_counts[vals[i].second];
      ++n_left;
      if (vals[i].first == vals[i + 1].first) continue;
      const int n_right = total - n_left;
      if (n_left < params.min_samples_leaf || n_right < params.min_samples_leaf)
        continue;
      // Gini gain of splitting here.
      double g_left = 1.0, g_right = 1.0;
      for (int c = 0; c < n_classes; ++c) {
        const double pl = static_cast<double>(left_counts[c]) / n_left;
        const double pr =
            static_cast<double>(counts[c] - left_counts[c]) / n_right;
        g_left -= pl * pl;
        g_right -= pr * pr;
      }
      const double gain =
          node_gini - (n_left * g_left + n_right * g_right) / total;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5f * (vals[i].first + vals[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_id;  // no useful split

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : idx) {
    (data.x[i][best_feature] <= best_threshold ? left_idx : right_idx)
        .push_back(i);
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  impurity_decrease_[best_feature] += best_gain * total;
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  idx.clear();
  idx.shrink_to_fit();
  const int left = build(data, left_idx, depth + 1, params, rng);
  nodes_[node_id].left = left;
  const int right = build(data, right_idx, depth + 1, params, rng);
  nodes_[node_id].right = right;
  return node_id;
}

int DecisionTree::predict(const std::vector<float>& x) const {
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].label;
}

int DecisionTree::depth() const {
  // Depth via iterative traversal (node 0 is the root; children were appended
  // after their parent, but not contiguously, so walk explicitly).
  if (nodes_.empty()) return 0;
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    if (nodes_[node].feature >= 0) {
      stack.push_back({nodes_[node].left, depth + 1});
      stack.push_back({nodes_[node].right, depth + 1});
    }
  }
  return max_depth;
}

}  // namespace vlacnn

#include "ml/dataset.h"

#include <limits>

namespace vlacnn {

std::vector<float> selection_features(std::uint32_t vlen_bits,
                                      std::uint64_t l2_bytes,
                                      const ConvLayerDesc& d) {
  return {static_cast<float>(vlen_bits),
          static_cast<float>(l2_bytes >> 20),  // MB
          static_cast<float>(d.ic),
          static_cast<float>(d.ih),
          static_cast<float>(d.iw),
          static_cast<float>(d.stride),
          static_cast<float>(d.pad),
          static_cast<float>(d.oc),
          static_cast<float>(d.oh()),
          static_cast<float>(d.ow()),
          static_cast<float>(d.kh),
          static_cast<float>(d.kw)};
}

Dataset build_selection_dataset(SweepDriver& driver,
                                const std::vector<const Network*>& nets,
                                const std::vector<std::uint32_t>& vlens,
                                const std::vector<std::uint64_t>& l2_sizes) {
  Dataset ds;
  ds.feature_names = {"vlen", "l2_mb", "ic", "ih", "iw", "stride",
                      "pad",  "oc",    "oh", "ow", "kh", "kw"};
  // Populate the cache for the whole grid in one parallel fan-out; the
  // labelling loops below then run on hits only.
  const std::vector<Algo> all(kAllAlgos.begin(), kAllAlgos.end());
  for (const Network* net : nets) driver.prefetch(*net, all, vlens, l2_sizes);
  for (const Network* net : nets) {
    const auto descs = net->conv_descs();
    for (std::uint32_t vlen : vlens) {
      for (std::uint64_t l2 : l2_sizes) {
        for (std::size_t i = 0; i < descs.size(); ++i) {
          double best = std::numeric_limits<double>::infinity();
          int label = -1;
          for (std::size_t a = 0; a < kAllAlgos.size(); ++a) {
            if (!algo_applicable(kAllAlgos[a], descs[i])) continue;
            const SweepRow r = driver.get(net->name(), static_cast<int>(i),
                                          descs[i], kAllAlgos[a], vlen, l2);
            if (r.cycles < best) {
              best = r.cycles;
              label = static_cast<int>(a);
            }
          }
          ds.x.push_back(selection_features(vlen, l2, descs[i]));
          ds.y.push_back(label);
          ds.meta.push_back({net->name(), static_cast<int>(i), vlen, l2});
        }
      }
    }
  }
  return ds;
}

}  // namespace vlacnn

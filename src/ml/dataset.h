// Training data for the algorithm-selection model (Paper II Section 4.3):
// 12 features — 2 hardware (vector length, L2 size) + 10 convolution dimensions
// (IC, IH, IW, stride, pad, OC, OH, OW, KH, KW) — labelled with the
// fastest applicable algorithm from the co-design sweep.
#pragma once

#include <string>
#include <vector>

#include "net/network.h"
#include "sweep/sweep.h"

namespace vlacnn {

/// Provenance of one sample (which network/layer/hardware point it came from),
/// used to map held-out predictions back onto figures.
struct SampleMeta {
  std::string net;
  int layer = 0;
  std::uint32_t vlen_bits = 0;
  std::uint64_t l2_bytes = 0;
};

struct Dataset {
  std::vector<std::string> feature_names;
  std::vector<std::vector<float>> x;
  std::vector<int> y;  ///< label: index into kAllAlgos
  std::vector<SampleMeta> meta;

  std::size_t size() const { return x.size(); }
  std::size_t num_features() const { return feature_names.size(); }
  int num_classes() const { return static_cast<int>(kAllAlgos.size()); }
};

/// Feature vector for one (hardware, layer) point, in dataset order.
std::vector<float> selection_features(std::uint32_t vlen_bits,
                                      std::uint64_t l2_bytes,
                                      const ConvLayerDesc& desc);

/// Build the 28-layers x 16-configs dataset of the paper (or any other
/// network/grid combination): one sample per (conv layer, vlen, l2), labelled
/// with the argmin algorithm.
Dataset build_selection_dataset(SweepDriver& driver,
                                const std::vector<const Network*>& nets,
                                const std::vector<std::uint32_t>& vlens,
                                const std::vector<std::uint64_t>& l2_sizes);

}  // namespace vlacnn

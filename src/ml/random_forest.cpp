#include "ml/random_forest.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace vlacnn {

void RandomForest::fit(const Dataset& data,
                       const std::vector<std::size_t>& train_idx,
                       const ForestParams& params) {
  if (train_idx.empty()) throw std::invalid_argument("forest: empty training set");
  trees_.clear();
  num_features_ = data.num_features();
  TreeParams tp = params.tree;
  if (tp.feature_subset == 0) {
    tp.feature_subset = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(data.num_features()))));
  }
  Rng rng(params.seed);
  const std::size_t n = train_idx.size();
  for (int t = 0; t < params.n_trees; ++t) {
    std::vector<std::size_t> sample;
    sample.reserve(n);
    if (params.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        sample.push_back(train_idx[rng.next_below(n)]);
      }
    } else {
      sample = train_idx;
    }
    DecisionTree tree;
    tree.fit(data, sample, tp, rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<int> RandomForest::votes(const std::vector<float>& x) const {
  if (trees_.empty()) throw std::logic_error("forest: not fitted");
  std::vector<int> tally(16, 0);
  for (const DecisionTree& t : trees_) {
    const int label = t.predict(x);
    // A negative label cannot come from a valid fit (fit() rejects negative
    // training labels); writing tally[label] with it would be an
    // out-of-bounds store, so fail loudly instead.
    if (label < 0) {
      throw std::logic_error("forest: corrupt tree produced negative label " +
                             std::to_string(label));
    }
    if (label >= static_cast<int>(tally.size())) {
      tally.resize(label + 1, 0);
    }
    ++tally[label];
  }
  return tally;
}

int RandomForest::predict(const std::vector<float>& x) const {
  const std::vector<int> tally = votes(x);
  int best = 0;
  for (std::size_t i = 1; i < tally.size(); ++i) {
    if (tally[i] > tally[best]) best = static_cast<int>(i);
  }
  return best;
}

double RandomForest::accuracy(const Dataset& data,
                              const std::vector<std::size_t>& idx) const {
  if (idx.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i : idx) {
    if (predict(data.x[i]) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(idx.size());
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> total(num_features_, 0.0);
  for (const DecisionTree& t : trees_) {
    const auto& dec = t.impurity_decrease();
    for (std::size_t f = 0; f < num_features_; ++f) total[f] += dec[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace vlacnn

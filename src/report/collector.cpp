#include "report/collector.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/log.h"

namespace vlacnn::report {

namespace {

std::mutex g_dir_mu;
std::string g_dir;               // guarded by g_dir_mu
std::atomic<int> g_enabled{-1};  // -1 unparsed, 0 off, 1 on

int load_enabled() {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    const char* v = std::getenv("VLACNN_REPORT");
    const bool on = v != nullptr && v[0] != '\0';
    {
      std::lock_guard<std::mutex> lk(g_dir_mu);
      if (on) g_dir = v;
    }
    int expected = -1;
    g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                      std::memory_order_relaxed);
    e = g_enabled.load(std::memory_order_relaxed);
  }
  return e;
}

std::chrono::steady_clock::time_point g_epoch;
std::mutex g_arm_mu;
std::string g_armed_title;  // guarded by g_arm_mu; "" = not armed

}  // namespace

bool enabled() { return load_enabled() != 0; }

std::string report_dir() {
  if (!enabled()) return "";
  std::lock_guard<std::mutex> lk(g_dir_mu);
  return g_dir;
}

void set_report_dir(const std::string& dir) {
  {
    std::lock_guard<std::mutex> lk(g_dir_mu);
    g_dir = dir;
  }
  g_enabled.store(dir.empty() ? 0 : 1, std::memory_order_relaxed);
}

std::string slugify(const std::string& title) {
  std::string out;
  bool pending_sep = false;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return out.empty() ? "report" : out;
}

Collector& Collector::global() {
  static Collector c;
  return c;
}

void Collector::record_row(const SweepRow& row) {
  std::lock_guard<std::mutex> lk(mu_);
  rows_[row.key] = row;
}

void Collector::record_serving(const ServingCell& cell) {
  std::lock_guard<std::mutex> lk(mu_);
  serving_[{cell.cores, cell.vlen_bits, cell.l2_total_bytes, cell.instances}] =
      cell;
}

void Collector::record_request_sim(const RequestSimCell& cell) {
  std::lock_guard<std::mutex> lk(mu_);
  request_sim_[{cell.cores, cell.vlen_bits, cell.l2_total_bytes,
                cell.instances, cell.policy, cell.arrivals}] = cell;
}

void Collector::record_dispatch(const DispatchCell& cell) {
  std::lock_guard<std::mutex> lk(mu_);
  dispatch_[{cell.net, cell.cores, cell.vlen_bits, cell.l2_total_bytes,
             cell.instances}] = cell;
}

void Collector::record_timeline(const TimelineCell& cell) {
  std::lock_guard<std::mutex> lk(mu_);
  timeline_[{cell.cores, cell.vlen_bits, cell.l2_total_bytes, cell.instances,
             cell.policy, cell.arrivals}] = cell;
}

void Collector::record_fleet(const FleetCell& cell) {
  std::lock_guard<std::mutex> lk(mu_);
  fleet_[{cell.label, cell.router, cell.mix}] = cell;
}

void Collector::record_phases(const std::string& key,
                              std::vector<PhaseCell> cells) {
  std::lock_guard<std::mutex> lk(mu_);
  phases_[key] = std::move(cells);
}

RunReport Collector::snapshot(const std::string& tool, double wall_ms,
                              const RooflineParams& p) const {
  RunReport r;
  r.tool = tool;
  r.wall_ms = wall_ms;
  r.roofline = p;
  std::lock_guard<std::mutex> lk(mu_);
  r.entries.reserve(rows_.size());
  for (const auto& [key, row] : rows_) {
    r.entries.push_back({row, attribute(row, p)});
  }
  r.serving.reserve(serving_.size());
  for (const auto& [key, cell] : serving_) r.serving.push_back(cell);
  r.request_sim.reserve(request_sim_.size());
  for (const auto& [key, cell] : request_sim_) r.request_sim.push_back(cell);
  r.dispatch.reserve(dispatch_.size());
  for (const auto& [key, cell] : dispatch_) r.dispatch.push_back(cell);
  r.timeline.reserve(timeline_.size());
  for (const auto& [key, cell] : timeline_) r.timeline.push_back(cell);
  r.fleet.reserve(fleet_.size());
  for (const auto& [key, cell] : fleet_) r.fleet.push_back(cell);
  for (const auto& [key, cells] : phases_) {
    r.phases.insert(r.phases.end(), cells.begin(), cells.end());
  }
  return r;
}

void Collector::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  rows_.clear();
  serving_.clear();
  request_sim_.clear();
  dispatch_.clear();
  timeline_.clear();
  fleet_.clear();
  phases_.clear();
}

std::size_t Collector::row_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rows_.size();
}

std::string write_report_files(const std::string& title, double wall_ms) {
  const std::string dir = report_dir();
  if (dir.empty()) {
    throw std::runtime_error("report: VLACNN_REPORT not set");
  }
  std::filesystem::create_directories(dir);
  const std::string slug = slugify(title);
  const RunReport r = Collector::global().snapshot(slug, wall_ms);
  const std::string json_path = dir + "/" + slug + ".report.json";
  const std::string csv_path = dir + "/" + slug + ".report.csv";
  {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) throw std::runtime_error("report: cannot write " + json_path);
    out << r.to_json();
  }
  {
    std::ofstream out(csv_path, std::ios::trunc);
    if (!out) throw std::runtime_error("report: cannot write " + csv_path);
    out << r.to_csv();
  }
  obs::log(obs::LogLevel::kInfo, "report", "written",
           {{"path", json_path},
            {"entries", std::to_string(r.entries.size())},
            {"serving_cells", std::to_string(r.serving.size())}});
  return json_path;
}

void arm_exit_report(const std::string& title) {
  if (!enabled()) return;
  // Touch the collector singleton before registering the hook: exit handlers
  // run in reverse registration order, so constructing it first (its
  // destructor registers with the same atexit machinery) guarantees it is
  // still alive when the hook below snapshots it.
  Collector::global();
  {
    std::lock_guard<std::mutex> lk(g_arm_mu);
    if (!g_armed_title.empty()) return;  // first title wins
    g_armed_title = title;
    g_epoch = std::chrono::steady_clock::now();
  }
  std::atexit([] {
    std::string title;
    {
      std::lock_guard<std::mutex> lk(g_arm_mu);
      title = g_armed_title;
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - g_epoch)
                               .count();
    try {
      write_report_files(title, wall_ms);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "vlacnn report: %s\n", e.what());
    }
  });
}

}  // namespace vlacnn::report

// Process-wide collection point for run reports, armed by the VLACNN_REPORT
// env knob (a directory path) via bench::banner(). When enabled, the sweep
// driver records every row it touches and ServingSimulator records every grid
// cell; at process exit the collector writes <dir>/<tool>.report.json and
// .csv. Rows live in a SweepKey-ordered map, so the emitted report is
// deterministic regardless of the parallel sweep's completion order — a
// parallel run's report is bit-identical to a serial run's.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "report/report.h"

namespace vlacnn::report {

/// True when report collection is on. Hot-path gate: after the first call
/// (which reads VLACNN_REPORT once) this is a single relaxed atomic load.
bool enabled();

/// The output directory ("" when disabled).
std::string report_dir();

/// Programmatic override of the env knob (tests). "" disables collection.
void set_report_dir(const std::string& dir);

/// Lowercased filesystem-safe slug of a bench banner title: runs of
/// non-alphanumerics collapse to single '_', trimmed at both ends.
/// "Fig 1: per-layer, VGG-16" -> "fig_1_per_layer_vgg_16".
std::string slugify(const std::string& title);

class Collector {
 public:
  static Collector& global();

  /// Record one sweep row (thread-safe; last write per key wins, but all
  /// writers for a key carry the same simulation result).
  void record_row(const SweepRow& row);

  /// Record one serving-grid cell (thread-safe, keyed dedup like rows).
  void record_serving(const ServingCell& cell);

  /// Record one request-level simulation's stats (thread-safe; keyed by
  /// configuration + policy + arrival labels, last write wins — concurrent
  /// writers for a key carry identical stats by the determinism guarantee).
  void record_request_sim(const RequestSimCell& cell);

  /// Record one learned-dispatch outcome (thread-safe; keyed by net + grid
  /// point, last write wins — the dispatcher is seeded per point, so
  /// concurrent writers for a key carry identical stats).
  void record_dispatch(const DispatchCell& cell);

  /// Record one timeline digest (thread-safe; same key as request_sim — one
  /// timeline per simulated grid point, last write wins).
  void record_timeline(const TimelineCell& cell);

  /// Record one fleet-composition outcome (thread-safe; keyed by composition
  /// label + router + mix, last write wins — fleet simulations are
  /// deterministic, so concurrent writers for a key carry identical stats).
  void record_fleet(const FleetCell& cell);

  /// Record one grid point's kernel-phase cells (thread-safe; keyed by the
  /// entry-key string, last write wins — the PMU is deterministic, so
  /// concurrent writers for a key carry identical cells). The vector keeps
  /// the kernel's first-seen phase order; cells across keys are emitted in
  /// key order.
  void record_phases(const std::string& key, std::vector<PhaseCell> cells);

  /// Assemble everything recorded so far into a report.
  RunReport snapshot(const std::string& tool, double wall_ms,
                     const RooflineParams& p = {}) const;

  /// Drop all recorded state (tests).
  void reset();

  std::size_t row_count() const;

 private:
  mutable std::mutex mu_;
  std::map<SweepKey, SweepRow> rows_;
  std::map<std::tuple<int, std::uint32_t, std::uint64_t, int>, ServingCell>
      serving_;
  std::map<std::tuple<int, std::uint32_t, std::uint64_t, int, std::string,
                      std::string>,
           RequestSimCell>
      request_sim_;
  std::map<std::tuple<std::string, int, std::uint32_t, std::uint64_t, int>,
           DispatchCell>
      dispatch_;
  std::map<std::tuple<int, std::uint32_t, std::uint64_t, int, std::string,
                      std::string>,
           TimelineCell>
      timeline_;
  std::map<std::tuple<std::string, std::string, std::string>, FleetCell>
      fleet_;
  std::map<std::string, std::vector<PhaseCell>> phases_;
};

/// Called by bench::banner(): when VLACNN_REPORT is set, remembers the run's
/// tool slug + start time and registers an atexit hook that writes
/// <dir>/<slug>.report.json and <dir>/<slug>.report.csv. Idempotent; the
/// first title wins. No-op when collection is disabled.
void arm_exit_report(const std::string& title);

/// The atexit hook's body, callable directly (tests): snapshot the global
/// collector and write both report files for `title` into report_dir().
/// Returns the JSON path. Throws on I/O failure.
std::string write_report_files(const std::string& title, double wall_ms);

}  // namespace vlacnn::report

#include "report/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>

#include "report/json.h"

namespace vlacnn::report {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

const char* attach_str(VpuAttach a) {
  return a == VpuAttach::kIntegratedL1 ? "int" : "dec";
}

VpuAttach attach_from(const std::string& s) {
  if (s == "int") return VpuAttach::kIntegratedL1;
  if (s == "dec") return VpuAttach::kDecoupledL2;
  throw std::runtime_error("report: bad attach '" + s + "'");
}

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

double num_at(const Json& obj, const std::string& key) {
  const Json& v = obj.at(key);
  if (v.type != Json::Type::kNumber) {
    throw std::runtime_error("report: key \"" + key + "\" is not a number");
  }
  return v.number;
}

int int_at(const Json& obj, const std::string& key) {
  return static_cast<int>(num_at(obj, key));
}

const std::string& str_at(const Json& obj, const std::string& key) {
  const Json& v = obj.at(key);
  if (v.type != Json::Type::kString) {
    throw std::runtime_error("report: key \"" + key + "\" is not a string");
  }
  return v.string;
}

}  // namespace

const char* to_string(Bound b) {
  switch (b) {
    case Bound::kCompute: return "compute";
    case Bound::kBandwidth: return "bandwidth";
    case Bound::kDegenerate: return "degenerate";
  }
  return "degenerate";
}

Bound bound_from_string(const std::string& s) {
  if (s == "compute") return Bound::kCompute;
  if (s == "bandwidth") return Bound::kBandwidth;
  if (s == "degenerate") return Bound::kDegenerate;
  throw std::runtime_error("report: bad bound '" + s + "'");
}

Attribution attribute(const SweepRow& row, const RooflineParams& p) {
  Attribution a;
  const double lanes = static_cast<double>(row.key.lanes);
  const double peak = p.peak_flops_per_cycle(row.key.lanes);
  const bool zero_cycles = !(row.cycles > 0);
  const bool zero_bytes = !(row.mem_bytes > 0);

  if (row.has_breakdown) {
    a.vec_utilization =
        zero_cycles ? 0.0 : row.bd.vec_elems / (lanes * row.cycles);
    a.l1_miss_rate =
        row.bd.l1_accesses > 0 ? row.bd.l1_misses / row.bd.l1_accesses : kNaN;
    a.l2_miss_rate =
        row.bd.l2_accesses > 0 ? row.bd.l2_misses / row.bd.l2_accesses : kNaN;
  } else {
    a.vec_utilization = kNaN;
    a.l1_miss_rate = kNaN;
    a.l2_miss_rate = kNaN;
  }

  // Degenerate inputs are clamped here, once, so every emitter downstream
  // sees either a finite number or a deliberate inf/NaN paired with a label.
  a.arith_intensity =
      zero_bytes ? (row.flops > 0 ? kInf : 0.0) : row.flops / row.mem_bytes;
  a.achieved_flops_per_cycle = zero_cycles ? 0.0 : row.flops / row.cycles;
  a.attainable_flops_per_cycle =
      std::isinf(a.arith_intensity)
          ? peak
          : std::min(peak, a.arith_intensity * p.mem_bytes_per_cycle);
  a.roofline_efficiency =
      a.attainable_flops_per_cycle > 0
          ? a.achieved_flops_per_cycle / a.attainable_flops_per_cycle
          : 0.0;

  if (zero_cycles) {
    a.bound = Bound::kDegenerate;
    a.degenerate = "zero_cycles";
  } else {
    a.bound = a.arith_intensity >= p.ridge(row.key.lanes) ? Bound::kCompute
                                                          : Bound::kBandwidth;
    if (zero_bytes) {
      a.degenerate = "zero_dram_bytes";
    } else if (!row.has_breakdown) {
      a.degenerate = "missing_breakdown";
    }
  }
  return a;
}

std::string entry_key(const SweepKey& k) {
  char layer[8];
  std::snprintf(layer, sizeof layer, "L%02d", k.layer);
  return k.net + "/" + layer + "/" + to_string(k.algo) + "/vlen" +
         std::to_string(k.vlen_bits) + "/l2:" + std::to_string(k.l2_bytes) +
         "/lanes" + std::to_string(k.lanes) + "/" + attach_str(k.attach);
}

double RunReport::total_cycles() const {
  double total = 0;
  for (const ReportEntry& e : entries) total += e.row.cycles;
  return total;
}

std::string RunReport::to_json() const {
  std::string out;
  out.reserve(4096 + entries.size() * 1024);
  out += "{\n";
  out += "  \"schema\": \"vlacnn.report.v1\",\n";
  out += "  \"tool\": " + json_quote(tool) + ",\n";
  out += "  \"wall_ms\": " + json_number(wall_ms) + ",\n";
  out += "  \"roofline\": {\"flops_per_lane_per_cycle\": " +
         json_number(roofline.flops_per_lane_per_cycle) +
         ", \"mem_bytes_per_cycle\": " +
         json_number(roofline.mem_bytes_per_cycle) + "},\n";
  out += "  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SweepRow& r = entries[i].row;
    const Attribution& a = entries[i].attr;
    out += i ? ",\n    {" : "\n    {";
    out += "\"key\": " + json_quote(entry_key(r.key));
    out += ", \"net\": " + json_quote(r.key.net);
    out += ", \"layer\": " + std::to_string(r.key.layer);
    out += ", \"algo\": " + json_quote(to_string(r.key.algo));
    out += ", \"vlen_bits\": " + std::to_string(r.key.vlen_bits);
    out += ", \"l2_bytes\": " + std::to_string(r.key.l2_bytes);
    out += ", \"lanes\": " + std::to_string(r.key.lanes);
    out += ", \"attach\": " + json_quote(attach_str(r.key.attach));
    out += ",\n     \"desc\": {\"ic\": " + std::to_string(r.desc.ic) +
           ", \"ih\": " + std::to_string(r.desc.ih) +
           ", \"iw\": " + std::to_string(r.desc.iw) +
           ", \"oc\": " + std::to_string(r.desc.oc) +
           ", \"kh\": " + std::to_string(r.desc.kh) +
           ", \"kw\": " + std::to_string(r.desc.kw) +
           ", \"stride\": " + std::to_string(r.desc.stride) +
           ", \"pad\": " + std::to_string(r.desc.pad) + "}";
    out += ",\n     \"cycles\": " + json_number(r.cycles);
    out += ", \"avg_vl\": " + json_number(r.avg_vl);
    out += ", \"l2_miss_rate\": " + json_number(r.l2_miss_rate);
    out += ", \"mem_bytes\": " + json_number(r.mem_bytes);
    out += ", \"flops\": " + json_number(r.flops);
    if (r.has_breakdown) {
      out += ",\n     \"breakdown\": {\"compute_cycles\": " +
             json_number(r.bd.compute_cycles) +
             ", \"mem_issue_cycles\": " + json_number(r.bd.mem_issue_cycles) +
             ", \"mem_stall_cycles\": " + json_number(r.bd.mem_stall_cycles) +
             ", \"scalar_cycles\": " + json_number(r.bd.scalar_cycles) +
             ", \"vec_instructions\": " + json_number(r.bd.vec_instructions) +
             ", \"vec_elems\": " + json_number(r.bd.vec_elems) +
             ", \"l1_accesses\": " + json_number(r.bd.l1_accesses) +
             ", \"l1_misses\": " + json_number(r.bd.l1_misses) +
             ", \"l2_accesses\": " + json_number(r.bd.l2_accesses) +
             ", \"l2_misses\": " + json_number(r.bd.l2_misses) + "}";
    } else {
      out += ",\n     \"breakdown\": null";
    }
    out += ",\n     \"attribution\": {\"vec_utilization\": " +
           json_number(a.vec_utilization) +
           ", \"arith_intensity\": " + json_number(a.arith_intensity) +
           ", \"achieved_flops_per_cycle\": " +
           json_number(a.achieved_flops_per_cycle) +
           ", \"attainable_flops_per_cycle\": " +
           json_number(a.attainable_flops_per_cycle) +
           ", \"roofline_efficiency\": " + json_number(a.roofline_efficiency) +
           ", \"l1_miss_rate\": " + json_number(a.l1_miss_rate) +
           ", \"l2_miss_rate\": " + json_number(a.l2_miss_rate) +
           ", \"bound\": " + json_quote(to_string(a.bound)) +
           ", \"degenerate\": " + json_quote(a.degenerate) + "}";
    out += "}";
  }
  out += entries.empty() ? "],\n" : "\n  ],\n";
  out += "  \"serving\": [";
  for (std::size_t i = 0; i < serving.size(); ++i) {
    const ServingCell& c = serving[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"cores\": " + std::to_string(c.cores);
    out += ", \"vlen_bits\": " + std::to_string(c.vlen_bits);
    out += ", \"l2_total_bytes\": " + std::to_string(c.l2_total_bytes);
    out += ", \"instances\": " + std::to_string(c.instances);
    out += ", \"cycles_per_image\": " + json_number(c.cycles_per_image);
    out += ", \"images_per_cycle\": " + json_number(c.images_per_cycle);
    out += ", \"area_mm2\": " + json_number(c.area_mm2) + "}";
  }
  out += serving.empty() ? "],\n" : "\n  ],\n";
  out += "  \"request_sim\": [";
  for (std::size_t i = 0; i < request_sim.size(); ++i) {
    const RequestSimCell& c = request_sim[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"cores\": " + std::to_string(c.cores);
    out += ", \"vlen_bits\": " + std::to_string(c.vlen_bits);
    out += ", \"l2_total_bytes\": " + std::to_string(c.l2_total_bytes);
    out += ", \"instances\": " + std::to_string(c.instances);
    out += ", \"policy\": " + json_quote(c.policy);
    out += ", \"arrivals\": " + json_quote(c.arrivals);
    out += ",\n     \"load_rps\": " + json_number(c.load_rps);
    out += ", \"slo_cycles\": " + json_number(c.slo_cycles);
    out += ", \"offered\": " + std::to_string(c.offered);
    out += ", \"completed\": " + std::to_string(c.completed);
    out += ", \"dropped\": " + std::to_string(c.dropped);
    out += ",\n     \"p50\": " + json_number(c.p50);
    out += ", \"p95\": " + json_number(c.p95);
    out += ", \"p99\": " + json_number(c.p99);
    out += ", \"p999\": " + json_number(c.p999);
    out += ", \"mean_latency\": " + json_number(c.mean_latency);
    out += ",\n     \"utilization\": " + json_number(c.utilization);
    out += ", \"mean_queue\": " + json_number(c.mean_queue);
    out += ", \"slo_attainment\": " + json_number(c.slo_attainment);
    out += ",\n     \"mean_queue_wait\": " + json_number(c.mean_queue_wait);
    out += ", \"mean_formation_wait\": " + json_number(c.mean_formation_wait);
    out += ", \"mean_service\": " + json_number(c.mean_service) + "}";
  }
  out += request_sim.empty() ? "],\n" : "\n  ],\n";
  out += "  \"dispatch\": [";
  for (std::size_t i = 0; i < dispatch.size(); ++i) {
    const DispatchCell& c = dispatch[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"net\": " + json_quote(c.net);
    out += ", \"cores\": " + std::to_string(c.cores);
    out += ", \"vlen_bits\": " + std::to_string(c.vlen_bits);
    out += ", \"l2_total_bytes\": " + std::to_string(c.l2_total_bytes);
    out += ", \"instances\": " + std::to_string(c.instances);
    out += ",\n     \"layers\": " + std::to_string(c.layers);
    out += ", \"mispredicted_layers\": " + std::to_string(c.mispredicted_layers);
    out += ", \"batches\": " + std::to_string(c.batches);
    out += ", \"images\": " + std::to_string(c.images);
    out += ", \"explorations\": " + std::to_string(c.explorations);
    out += ",\n     \"learned_conv_cycles\": " + json_number(c.learned_conv_cycles);
    out += ", \"oracle_conv_cycles\": " + json_number(c.oracle_conv_cycles);
    out += ", \"selector_cycles\": " + json_number(c.selector_cycles);
    out += ", \"oracle_gap\": " + json_number(c.oracle_gap) + "}";
  }
  out += dispatch.empty() ? "],\n" : "\n  ],\n";
  out += "  \"timeline\": [";
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const TimelineCell& c = timeline[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"cores\": " + std::to_string(c.cores);
    out += ", \"vlen_bits\": " + std::to_string(c.vlen_bits);
    out += ", \"l2_total_bytes\": " + std::to_string(c.l2_total_bytes);
    out += ", \"instances\": " + std::to_string(c.instances);
    out += ", \"policy\": " + json_quote(c.policy);
    out += ", \"arrivals\": " + json_quote(c.arrivals);
    out += ",\n     \"snapshots\": " + std::to_string(c.snapshots);
    out += ", \"interval_cycles\": " + json_number(c.interval_cycles);
    out += ", \"alerts\": " + std::to_string(c.alerts);
    out += ", \"warmup_cycles\": " + json_number(c.warmup_cycles);
    out += ",\n     \"steady_p99\": " + json_number(c.steady_p99);
    out += ", \"max_burn_rate\": " + json_number(c.max_burn_rate);
    out += ", \"time_in_alert_cycles\": " + json_number(c.time_in_alert_cycles) +
           "}";
  }
  out += timeline.empty() ? "],\n" : "\n  ],\n";
  out += "  \"fleet\": [";
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const FleetCell& c = fleet[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"label\": " + json_quote(c.label);
    out += ", \"router\": " + json_quote(c.router);
    out += ", \"mix\": " + json_quote(c.mix);
    out += ", \"chips\": " + std::to_string(c.chips);
    out += ",\n     \"total_area_mm2\": " + json_number(c.total_area_mm2);
    out += ", \"load_rps\": " + json_number(c.load_rps);
    out += ", \"slo_cycles\": " + json_number(c.slo_cycles);
    out += ",\n     \"offered\": " + std::to_string(c.offered);
    out += ", \"completed\": " + std::to_string(c.completed);
    out += ", \"dropped\": " + std::to_string(c.dropped);
    out += ",\n     \"p50\": " + json_number(c.p50);
    out += ", \"p99\": " + json_number(c.p99);
    out += ", \"p999\": " + json_number(c.p999);
    out += ", \"mean_latency\": " + json_number(c.mean_latency);
    out += ",\n     \"utilization\": " + json_number(c.utilization);
    out += ", \"slo_attainment\": " + json_number(c.slo_attainment);
    out += ", \"mean_router_hop\": " + json_number(c.mean_router_hop);
    out += ", \"meets_slo\": ";
    out += c.meets_slo ? "true" : "false";
    out += "}";
  }
  out += fleet.empty() ? "],\n" : "\n  ],\n";
  out += "  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseCell& c = phases[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"key\": " + json_quote(c.key);
    out += ", \"phase\": " + json_quote(c.phase);
    out += ", \"cycles\": " + json_number(c.cycles);
    out += ",\n     \"compute_cycles\": " + json_number(c.compute_cycles);
    out += ", \"mem_issue_cycles\": " + json_number(c.mem_issue_cycles);
    out += ", \"mem_stall_cycles\": " + json_number(c.mem_stall_cycles);
    out += ", \"scalar_cycles\": " + json_number(c.scalar_cycles);
    out += ",\n     \"avg_vl\": " + json_number(c.avg_vl);
    out += ", \"l1_miss_rate\": " + json_number(c.l1_miss_rate);
    out += ", \"l2_miss_rate\": " + json_number(c.l2_miss_rate);
    out += ", \"mem_bytes\": " + json_number(c.mem_bytes) + "}";
  }
  out += phases.empty() ? "],\n" : "\n  ],\n";
  out += "  \"totals\": {\"entries\": " + std::to_string(entries.size()) +
         ", \"serving_cells\": " + std::to_string(serving.size()) +
         ", \"request_sim_cells\": " + std::to_string(request_sim.size()) +
         ", \"dispatch_cells\": " + std::to_string(dispatch.size()) +
         ", \"timeline_cells\": " + std::to_string(timeline.size()) +
         ", \"fleet_cells\": " + std::to_string(fleet.size()) +
         ", \"phase_cells\": " + std::to_string(phases.size()) +
         ", \"cycles\": " + json_number(total_cycles()) + "}\n";
  out += "}\n";
  return out;
}

std::string RunReport::to_csv() const {
  std::string out =
      "net,layer,algo,vlen_bits,l2_bytes,lanes,attach,"
      "ic,ih,iw,oc,kh,kw,stride,pad,"
      "cycles,avg_vl,l2_miss_rate,mem_bytes,flops,has_breakdown,"
      "compute_cycles,mem_issue_cycles,mem_stall_cycles,scalar_cycles,"
      "vec_instructions,vec_elems,l1_accesses,l1_misses,l2_accesses,l2_misses,"
      "vec_utilization,arith_intensity,achieved_flops_per_cycle,"
      "attainable_flops_per_cycle,roofline_efficiency,bound,degenerate\n";
  for (const ReportEntry& e : entries) {
    const SweepRow& r = e.row;
    const Attribution& a = e.attr;
    // CSV is for spreadsheets, not round-tripping: %.17g here may print
    // inf/nan, which pairs with the bound/degenerate labels.
    out += r.key.net + "," + std::to_string(r.key.layer) + "," +
           to_string(r.key.algo) + "," + std::to_string(r.key.vlen_bits) +
           "," + std::to_string(r.key.l2_bytes) + "," +
           std::to_string(r.key.lanes) + "," + attach_str(r.key.attach) + "," +
           std::to_string(r.desc.ic) + "," + std::to_string(r.desc.ih) + "," +
           std::to_string(r.desc.iw) + "," + std::to_string(r.desc.oc) + "," +
           std::to_string(r.desc.kh) + "," + std::to_string(r.desc.kw) + "," +
           std::to_string(r.desc.stride) + "," + std::to_string(r.desc.pad) +
           "," + fmt("%.17g", r.cycles) + "," + fmt("%.17g", r.avg_vl) + "," +
           fmt("%.17g", r.l2_miss_rate) + "," + fmt("%.17g", r.mem_bytes) +
           "," + fmt("%.17g", r.flops) + "," +
           (r.has_breakdown ? "1" : "0") + ",";
    if (r.has_breakdown) {
      out += fmt("%.17g", r.bd.compute_cycles) + "," +
             fmt("%.17g", r.bd.mem_issue_cycles) + "," +
             fmt("%.17g", r.bd.mem_stall_cycles) + "," +
             fmt("%.17g", r.bd.scalar_cycles) + "," +
             fmt("%.17g", r.bd.vec_instructions) + "," +
             fmt("%.17g", r.bd.vec_elems) + "," +
             fmt("%.17g", r.bd.l1_accesses) + "," +
             fmt("%.17g", r.bd.l1_misses) + "," +
             fmt("%.17g", r.bd.l2_accesses) + "," +
             fmt("%.17g", r.bd.l2_misses) + ",";
    } else {
      out += ",,,,,,,,,,";
    }
    out += fmt("%.17g", a.vec_utilization) + "," +
           fmt("%.17g", a.arith_intensity) + "," +
           fmt("%.17g", a.achieved_flops_per_cycle) + "," +
           fmt("%.17g", a.attainable_flops_per_cycle) + "," +
           fmt("%.17g", a.roofline_efficiency) + "," + to_string(a.bound) +
           "," + a.degenerate + "\n";
  }
  // Per-phase cells get their own block below the entry table (a spreadsheet
  // splits on the blank line); absent entirely when kernprof was off.
  if (!phases.empty()) {
    out +=
        "\nkey,phase,cycles,compute_cycles,mem_issue_cycles,mem_stall_cycles,"
        "scalar_cycles,avg_vl,l1_miss_rate,l2_miss_rate,mem_bytes\n";
    for (const PhaseCell& c : phases) {
      out += c.key + "," + c.phase + "," + fmt("%.17g", c.cycles) + "," +
             fmt("%.17g", c.compute_cycles) + "," +
             fmt("%.17g", c.mem_issue_cycles) + "," +
             fmt("%.17g", c.mem_stall_cycles) + "," +
             fmt("%.17g", c.scalar_cycles) + "," + fmt("%.17g", c.avg_vl) +
             "," + fmt("%.17g", c.l1_miss_rate) + "," +
             fmt("%.17g", c.l2_miss_rate) + "," + fmt("%.17g", c.mem_bytes) +
             "\n";
    }
  }
  return out;
}

RunReport report_from_json(const std::string& text) {
  const Json doc = parse_json(text);
  const Json* schema = doc.find("schema");
  if (schema == nullptr || schema->string != "vlacnn.report.v1") {
    throw std::runtime_error(
        "report: not a vlacnn.report.v1 file (schema tag missing/unknown)");
  }
  RunReport r;
  r.tool = str_at(doc, "tool");
  r.wall_ms = num_at(doc, "wall_ms");
  const Json& roof = doc.at("roofline");
  r.roofline.flops_per_lane_per_cycle =
      num_at(roof, "flops_per_lane_per_cycle");
  r.roofline.mem_bytes_per_cycle = num_at(roof, "mem_bytes_per_cycle");

  for (const Json& e : doc.at("entries").array) {
    ReportEntry entry;
    SweepRow& row = entry.row;
    row.key.net = str_at(e, "net");
    row.key.layer = int_at(e, "layer");
    row.key.algo = algo_from_string(str_at(e, "algo"));
    row.key.vlen_bits = static_cast<std::uint32_t>(num_at(e, "vlen_bits"));
    row.key.l2_bytes = static_cast<std::uint64_t>(num_at(e, "l2_bytes"));
    row.key.lanes = static_cast<std::uint32_t>(num_at(e, "lanes"));
    row.key.attach = attach_from(str_at(e, "attach"));
    const Json& d = e.at("desc");
    row.desc = ConvLayerDesc{int_at(d, "ic"),     int_at(d, "ih"),
                             int_at(d, "iw"),     int_at(d, "oc"),
                             int_at(d, "kh"),     int_at(d, "kw"),
                             int_at(d, "stride"), int_at(d, "pad")};
    row.cycles = num_at(e, "cycles");
    row.avg_vl = num_at(e, "avg_vl");
    row.l2_miss_rate = num_at(e, "l2_miss_rate");
    row.mem_bytes = num_at(e, "mem_bytes");
    row.flops = num_at(e, "flops");
    const Json& bd = e.at("breakdown");
    if (!bd.is_null()) {
      row.has_breakdown = true;
      row.bd.compute_cycles = num_at(bd, "compute_cycles");
      row.bd.mem_issue_cycles = num_at(bd, "mem_issue_cycles");
      row.bd.mem_stall_cycles = num_at(bd, "mem_stall_cycles");
      row.bd.scalar_cycles = num_at(bd, "scalar_cycles");
      row.bd.vec_instructions = num_at(bd, "vec_instructions");
      row.bd.vec_elems = num_at(bd, "vec_elems");
      row.bd.l1_accesses = num_at(bd, "l1_accesses");
      row.bd.l1_misses = num_at(bd, "l1_misses");
      row.bd.l2_accesses = num_at(bd, "l2_accesses");
      row.bd.l2_misses = num_at(bd, "l2_misses");
    }
    // Derived fields in the file are informational; recompute so a stale or
    // hand-edited attribution block cannot skew a diff.
    entry.attr = attribute(row, r.roofline);
    r.entries.push_back(std::move(entry));
  }
  std::sort(r.entries.begin(), r.entries.end(),
            [](const ReportEntry& a, const ReportEntry& b) {
              return a.row.key < b.row.key;
            });

  for (const Json& s : doc.at("serving").array) {
    ServingCell c;
    c.cores = int_at(s, "cores");
    c.vlen_bits = static_cast<std::uint32_t>(num_at(s, "vlen_bits"));
    c.l2_total_bytes = static_cast<std::uint64_t>(num_at(s, "l2_total_bytes"));
    c.instances = int_at(s, "instances");
    c.cycles_per_image = num_at(s, "cycles_per_image");
    c.images_per_cycle = num_at(s, "images_per_cycle");
    c.area_mm2 = num_at(s, "area_mm2");
    r.serving.push_back(c);
  }

  // Optional section: reports written before the request-level simulator
  // existed simply lack it (the v1 schema grows additively).
  if (const Json* rs = doc.find("request_sim"); rs != nullptr) {
    for (const Json& s : rs->array) {
      RequestSimCell c;
      c.cores = int_at(s, "cores");
      c.vlen_bits = static_cast<std::uint32_t>(num_at(s, "vlen_bits"));
      c.l2_total_bytes =
          static_cast<std::uint64_t>(num_at(s, "l2_total_bytes"));
      c.instances = int_at(s, "instances");
      c.policy = str_at(s, "policy");
      c.arrivals = str_at(s, "arrivals");
      c.load_rps = num_at(s, "load_rps");
      c.slo_cycles = num_at(s, "slo_cycles");
      c.offered = static_cast<std::uint64_t>(num_at(s, "offered"));
      c.completed = static_cast<std::uint64_t>(num_at(s, "completed"));
      c.dropped = static_cast<std::uint64_t>(num_at(s, "dropped"));
      c.p50 = num_at(s, "p50");
      c.p95 = num_at(s, "p95");
      c.p99 = num_at(s, "p99");
      c.p999 = num_at(s, "p999");
      c.mean_latency = num_at(s, "mean_latency");
      c.utilization = num_at(s, "utilization");
      c.mean_queue = num_at(s, "mean_queue");
      c.slo_attainment = num_at(s, "slo_attainment");
      // Attribution columns arrived after the section did; old files lack
      // them and parse back as zeros.
      if (const Json* f = s.find("mean_queue_wait")) {
        c.mean_queue_wait = f->num_or(0);
      }
      if (const Json* f = s.find("mean_formation_wait")) {
        c.mean_formation_wait = f->num_or(0);
      }
      if (const Json* f = s.find("mean_service")) {
        c.mean_service = f->num_or(0);
      }
      r.request_sim.push_back(c);
    }
  }

  // Optional for the same reason: only learned-dispatch runs emit it.
  if (const Json* dp = doc.find("dispatch"); dp != nullptr) {
    for (const Json& s : dp->array) {
      DispatchCell c;
      c.net = str_at(s, "net");
      c.cores = int_at(s, "cores");
      c.vlen_bits = static_cast<std::uint32_t>(num_at(s, "vlen_bits"));
      c.l2_total_bytes =
          static_cast<std::uint64_t>(num_at(s, "l2_total_bytes"));
      c.instances = int_at(s, "instances");
      c.layers = int_at(s, "layers");
      c.mispredicted_layers = int_at(s, "mispredicted_layers");
      c.batches = static_cast<std::uint64_t>(num_at(s, "batches"));
      c.images = static_cast<std::uint64_t>(num_at(s, "images"));
      c.explorations = static_cast<std::uint64_t>(num_at(s, "explorations"));
      c.learned_conv_cycles = num_at(s, "learned_conv_cycles");
      c.oracle_conv_cycles = num_at(s, "oracle_conv_cycles");
      c.selector_cycles = num_at(s, "selector_cycles");
      c.oracle_gap = num_at(s, "oracle_gap");
      r.dispatch.push_back(c);
    }
  }

  // Optional: only timeline-enabled planner runs emit it.
  if (const Json* tl = doc.find("timeline"); tl != nullptr) {
    for (const Json& s : tl->array) {
      TimelineCell c;
      c.cores = int_at(s, "cores");
      c.vlen_bits = static_cast<std::uint32_t>(num_at(s, "vlen_bits"));
      c.l2_total_bytes =
          static_cast<std::uint64_t>(num_at(s, "l2_total_bytes"));
      c.instances = int_at(s, "instances");
      c.policy = str_at(s, "policy");
      c.arrivals = str_at(s, "arrivals");
      c.snapshots = static_cast<std::uint64_t>(num_at(s, "snapshots"));
      c.interval_cycles = num_at(s, "interval_cycles");
      c.alerts = static_cast<std::uint64_t>(num_at(s, "alerts"));
      c.warmup_cycles = num_at(s, "warmup_cycles");
      c.steady_p99 = num_at(s, "steady_p99");
      c.max_burn_rate = num_at(s, "max_burn_rate");
      c.time_in_alert_cycles = num_at(s, "time_in_alert_cycles");
      r.timeline.push_back(c);
    }
  }

  // Optional: only fleet-planner/fleet-CLI runs emit it.
  if (const Json* fl = doc.find("fleet"); fl != nullptr) {
    for (const Json& s : fl->array) {
      FleetCell c;
      c.label = str_at(s, "label");
      c.router = str_at(s, "router");
      c.mix = str_at(s, "mix");
      c.chips = int_at(s, "chips");
      c.total_area_mm2 = num_at(s, "total_area_mm2");
      c.load_rps = num_at(s, "load_rps");
      c.slo_cycles = num_at(s, "slo_cycles");
      c.offered = static_cast<std::uint64_t>(num_at(s, "offered"));
      c.completed = static_cast<std::uint64_t>(num_at(s, "completed"));
      c.dropped = static_cast<std::uint64_t>(num_at(s, "dropped"));
      c.p50 = num_at(s, "p50");
      c.p99 = num_at(s, "p99");
      c.p999 = num_at(s, "p999");
      c.mean_latency = num_at(s, "mean_latency");
      c.utilization = num_at(s, "utilization");
      c.slo_attainment = num_at(s, "slo_attainment");
      c.mean_router_hop = num_at(s, "mean_router_hop");
      c.meets_slo = s.at("meets_slo").boolean;
      r.fleet.push_back(std::move(c));
    }
  }

  // Optional: only kernprof-enabled runs emit it.
  if (const Json* ph = doc.find("phases"); ph != nullptr) {
    for (const Json& s : ph->array) {
      PhaseCell c;
      c.key = str_at(s, "key");
      c.phase = str_at(s, "phase");
      c.cycles = num_at(s, "cycles");
      c.compute_cycles = num_at(s, "compute_cycles");
      c.mem_issue_cycles = num_at(s, "mem_issue_cycles");
      c.mem_stall_cycles = num_at(s, "mem_stall_cycles");
      c.scalar_cycles = num_at(s, "scalar_cycles");
      c.avg_vl = num_at(s, "avg_vl");
      // Miss rates serialize as null (NaN) when the phase made no accesses.
      c.l1_miss_rate = s.at("l1_miss_rate").num_or(kNaN);
      c.l2_miss_rate = s.at("l2_miss_rate").num_or(kNaN);
      c.mem_bytes = num_at(s, "mem_bytes");
      r.phases.push_back(std::move(c));
    }
  }
  return r;
}

DiffResult diff_reports(const RunReport& base, const RunReport& cur,
                        const DiffOptions& opt) {
  DiffResult d;
  std::map<std::string, double> base_cycles;
  for (const ReportEntry& e : base.entries) {
    base_cycles[entry_key(e.row.key)] = e.row.cycles;
  }
  std::map<std::string, double> cur_cycles;
  for (const ReportEntry& e : cur.entries) {
    cur_cycles[entry_key(e.row.key)] = e.row.cycles;
  }

  auto delta_pct = [](double b, double c) {
    if (b > 0) return (c - b) / b * 100.0;
    return c > 0 ? std::numeric_limits<double>::infinity() : 0.0;
  };

  double base_sum = 0, cur_sum = 0;
  for (const auto& [key, b] : base_cycles) {
    auto it = cur_cycles.find(key);
    if (it == cur_cycles.end()) {
      d.only_base.push_back(key);
      continue;
    }
    ++d.compared;
    base_sum += b;
    cur_sum += it->second;
    const double pct = delta_pct(b, it->second);
    if (pct > opt.cycle_budget_pct) {
      d.regressions.push_back({key, b, it->second, pct});
    } else if (pct < -opt.cycle_budget_pct) {
      d.improvements.push_back({key, b, it->second, pct});
    }
  }
  for (const auto& [key, c] : cur_cycles) {
    if (base_cycles.find(key) == base_cycles.end()) d.only_cur.push_back(key);
  }
  auto by_severity = [](const DiffDelta& a, const DiffDelta& b) {
    return std::abs(a.delta_pct) > std::abs(b.delta_pct);
  };
  std::stable_sort(d.regressions.begin(), d.regressions.end(), by_severity);
  std::stable_sort(d.improvements.begin(), d.improvements.end(), by_severity);

  d.total = {"TOTAL(cycles)", base_sum, cur_sum, delta_pct(base_sum, cur_sum)};
  d.total_regressed = d.total.delta_pct > opt.cycle_budget_pct;

  d.wall = {"wall_ms", base.wall_ms, cur.wall_ms,
            delta_pct(base.wall_ms, cur.wall_ms)};
  d.wall_regressed =
      opt.wall_budget_pct >= 0 && d.wall.delta_pct > opt.wall_budget_pct;
  return d;
}

std::string summarize(const RunReport& r) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof line,
                "report tool=%s  entries=%zu  serving_cells=%zu  wall=%.1f ms\n"
                "roofline: %.3g flops/lane/cycle, %.3g DRAM B/cycle\n",
                r.tool.c_str(), r.entries.size(), r.serving.size(), r.wall_ms,
                r.roofline.flops_per_lane_per_cycle,
                r.roofline.mem_bytes_per_cycle);
  out += line;
  if (!r.entries.empty()) {
    std::snprintf(line, sizeof line,
                  "%-44s %12s %6s %6s %6s %6s %6s %8s %5s %-9s\n", "key",
                  "cycles", "comp%", "mem%", "stall%", "scal%", "util", "AI",
                  "eff", "bound");
    out += line;
    for (const ReportEntry& e : r.entries) {
      const SweepRow& row = e.row;
      const Attribution& a = e.attr;
      char comp[8] = "   -", mem[8] = "   -", stall[8] = "   -",
           scal[8] = "   -", util[8] = "   -";
      if (row.has_breakdown && row.cycles > 0) {
        std::snprintf(comp, sizeof comp, "%5.1f",
                      100.0 * row.bd.compute_cycles / row.cycles);
        std::snprintf(mem, sizeof mem, "%5.1f",
                      100.0 * row.bd.mem_issue_cycles / row.cycles);
        std::snprintf(stall, sizeof stall, "%5.1f",
                      100.0 * row.bd.mem_stall_cycles / row.cycles);
        std::snprintf(scal, sizeof scal, "%5.1f",
                      100.0 * row.bd.scalar_cycles / row.cycles);
        std::snprintf(util, sizeof util, "%5.2f", a.vec_utilization);
      }
      char ai[16];
      if (std::isinf(a.arith_intensity)) {
        std::snprintf(ai, sizeof ai, "inf");
      } else {
        std::snprintf(ai, sizeof ai, "%8.2f", a.arith_intensity);
      }
      std::string label = to_string(a.bound);
      if (!a.degenerate.empty()) label += "!" + a.degenerate;
      std::snprintf(line, sizeof line,
                    "%-44s %12.4g %6s %6s %6s %6s %6s %8s %5.2f %-9s\n",
                    entry_key(row.key).c_str(), row.cycles, comp, mem, stall,
                    scal, util, ai, a.roofline_efficiency, label.c_str());
      out += line;
    }
    std::snprintf(line, sizeof line, "%-44s %12.6g\n", "TOTAL",
                  r.total_cycles());
    out += line;
  }
  if (!r.serving.empty()) {
    std::snprintf(line, sizeof line, "\n%6s %6s %8s %5s %14s %14s %10s\n",
                  "cores", "vlen", "l2MB", "inst", "cyc/img", "img/Mcyc",
                  "area mm2");
    out += line;
    for (const ServingCell& c : r.serving) {
      std::snprintf(line, sizeof line,
                    "%6d %6u %8.1f %5d %14.4g %14.4g %10.2f\n", c.cores,
                    c.vlen_bits,
                    static_cast<double>(c.l2_total_bytes) / (1024.0 * 1024.0),
                    c.instances, c.cycles_per_image,
                    c.images_per_cycle * 1e6, c.area_mm2);
      out += line;
    }
  }
  if (!r.request_sim.empty()) {
    std::snprintf(line, sizeof line,
                  "\n%6s %6s %8s %5s %-16s %10s %10s %10s %6s %6s\n", "cores",
                  "vlen", "l2MB", "inst", "policy", "p50cyc", "p99cyc",
                  "p999cyc", "util", "slo%");
    out += line;
    for (const RequestSimCell& c : r.request_sim) {
      std::snprintf(line, sizeof line,
                    "%6d %6u %8.1f %5d %-16s %10.4g %10.4g %10.4g %6.2f %6.2f\n",
                    c.cores, c.vlen_bits,
                    static_cast<double>(c.l2_total_bytes) / (1024.0 * 1024.0),
                    c.instances, c.policy.c_str(), c.p50, c.p99, c.p999,
                    c.utilization, 100.0 * c.slo_attainment);
      out += line;
    }
  }
  if (!r.timeline.empty()) {
    std::snprintf(line, sizeof line,
                  "\n%6s %6s %8s %5s %-16s %6s %12s %10s %8s %6s\n", "cores",
                  "vlen", "l2MB", "inst", "policy", "snaps", "warmup_cyc",
                  "p99roll", "maxburn", "alerts");
    out += line;
    for (const TimelineCell& c : r.timeline) {
      std::snprintf(line, sizeof line,
                    "%6d %6u %8.1f %5d %-16s %6llu %12.4g %10.4g %8.3f %6llu\n",
                    c.cores, c.vlen_bits,
                    static_cast<double>(c.l2_total_bytes) / (1024.0 * 1024.0),
                    c.instances, c.policy.c_str(),
                    static_cast<unsigned long long>(c.snapshots),
                    c.warmup_cycles, c.steady_p99, c.max_burn_rate,
                    static_cast<unsigned long long>(c.alerts));
      out += line;
    }
  }
  if (!r.phases.empty()) {
    std::snprintf(line, sizeof line, "\n%-44s %-16s %12s %6s %6s %6s %6s %6s\n",
                  "key", "phase", "cycles", "comp%", "mem%", "stall%", "scal%",
                  "l2miss");
    out += line;
    // Per-key totals for the share columns: cells are key-grouped, and the
    // exact-partition invariant makes the per-key cycle sum the row total.
    std::map<std::string, double> key_cycles;
    for (const PhaseCell& c : r.phases) key_cycles[c.key] += c.cycles;
    for (const PhaseCell& c : r.phases) {
      const double raw = c.compute_cycles + c.mem_issue_cycles +
                         c.mem_stall_cycles + c.scalar_cycles;
      char comp[8] = "   -", mem[8] = "   -", stall[8] = "   -",
           scal[8] = "   -", l2m[8] = "   -";
      if (raw > 0) {
        std::snprintf(comp, sizeof comp, "%5.1f",
                      100.0 * c.compute_cycles / raw);
        std::snprintf(mem, sizeof mem, "%5.1f",
                      100.0 * c.mem_issue_cycles / raw);
        std::snprintf(stall, sizeof stall, "%5.1f",
                      100.0 * c.mem_stall_cycles / raw);
        std::snprintf(scal, sizeof scal, "%5.1f",
                      100.0 * c.scalar_cycles / raw);
      }
      if (std::isfinite(c.l2_miss_rate)) {
        std::snprintf(l2m, sizeof l2m, "%5.3f", c.l2_miss_rate);
      }
      const double total = key_cycles[c.key];
      char share[16] = "";
      if (total > 0) {
        std::snprintf(share, sizeof share, " (%4.1f%%)",
                      100.0 * c.cycles / total);
      }
      std::snprintf(line, sizeof line,
                    "%-44s %-16s %12.4g %6s %6s %6s %6s %6s%s\n",
                    c.key.c_str(), c.phase.c_str(), c.cycles, comp, mem, stall,
                    scal, l2m, share);
      out += line;
    }
  }
  if (!r.fleet.empty()) {
    std::snprintf(line, sizeof line,
                  "\n%-36s %-4s %5s %10s %10s %10s %6s %6s %4s\n", "fleet",
                  "rtr", "chips", "area mm2", "p50cyc", "p99cyc", "util",
                  "slo%", "ok");
    out += line;
    for (const FleetCell& c : r.fleet) {
      std::snprintf(line, sizeof line,
                    "%-36s %-4s %5d %10.1f %10.4g %10.4g %6.2f %6.2f %4s\n",
                    c.label.c_str(), c.router.c_str(), c.chips,
                    c.total_area_mm2, c.p50, c.p99, c.utilization,
                    100.0 * c.slo_attainment, c.meets_slo ? "yes" : "no");
      out += line;
    }
  }
  if (!r.dispatch.empty()) {
    std::snprintf(line, sizeof line,
                  "\n%-8s %6s %6s %8s %5s %6s %6s %10s %10s %8s\n", "net",
                  "cores", "vlen", "l2MB", "inst", "layers", "mispr",
                  "explored", "selector", "gap%");
    out += line;
    for (const DispatchCell& c : r.dispatch) {
      std::snprintf(line, sizeof line,
                    "%-8s %6d %6u %8.1f %5d %6d %6d %10llu %10.4g %8.3f\n",
                    c.net.c_str(), c.cores, c.vlen_bits,
                    static_cast<double>(c.l2_total_bytes) / (1024.0 * 1024.0),
                    c.instances, c.layers, c.mispredicted_layers,
                    static_cast<unsigned long long>(c.explorations),
                    c.selector_cycles, 100.0 * c.oracle_gap);
      out += line;
    }
  }
  return out;
}

std::string diff_to_string(const DiffResult& d, const DiffOptions& opt) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof line,
                "compared %zu grid points (cycle budget %.2f%%%s)\n",
                d.compared, opt.cycle_budget_pct,
                opt.wall_budget_pct >= 0 ? ", wall gated" : "");
  out += line;
  auto emit = [&](const char* tag, const DiffDelta& x) {
    std::snprintf(line, sizeof line, "  %-10s %-44s %14.6g -> %14.6g  %+.2f%%\n",
                  tag, x.key.c_str(), x.base, x.cur, x.delta_pct);
    out += line;
  };
  for (const DiffDelta& x : d.regressions) emit("REGRESSED", x);
  for (const DiffDelta& x : d.improvements) emit("improved", x);
  for (const std::string& k : d.only_base) {
    out += "  only-in-baseline " + k + "\n";
  }
  for (const std::string& k : d.only_cur) {
    out += "  only-in-current  " + k + "\n";
  }
  emit(d.total_regressed ? "REGRESSED" : "total", d.total);
  if (opt.wall_budget_pct >= 0) {
    emit(d.wall_regressed ? "REGRESSED" : "wall", d.wall);
  }
  out += d.ok() ? "OK: within budget\n" : "FAIL: regression over budget\n";
  return out;
}

}  // namespace vlacnn::report

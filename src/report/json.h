// Minimal JSON value + recursive-descent parser, just enough for the report
// tooling (vlacnn-report reads its own emitted files back; tests lock the
// schema down through it). Full syntax checking, no streaming: report files
// are a few hundred KB at most. Throws std::runtime_error on malformed input.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace vlacnn::report {

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  double number = 0;
  bool boolean = false;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  /// Member lookup on an object; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;

  /// Member that must exist; throws std::runtime_error naming `key` otherwise.
  const Json& at(const std::string& key) const;

  bool is_null() const { return type == Type::kNull; }
  double num_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
};

/// Parse a complete JSON document (trailing junk is an error).
Json parse_json(const std::string& text);

/// Serialize a string with JSON escaping, including the surrounding quotes.
std::string json_quote(const std::string& s);

/// Serialize a double as a JSON number (%.17g, exact round-trip). Non-finite
/// values are not representable in JSON and serialize as null — callers that
/// care label them separately (see report.cpp's degenerate handling).
std::string json_number(double v);

}  // namespace vlacnn::report

// Structured run reports: per-grid-point cycle attribution, roofline
// classification, serving-grid snapshots, JSON/CSV emitters, and the
// baseline-diff used by the perf-regression gate (tools/vlacnn-report,
// scripts/ci.sh). See DESIGN.md §9 for schema and methodology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/results_db.h"

namespace vlacnn::report {

/// Machine model behind the roofline classification. Defaults mirror the
/// simulator: each lane retires one FMA (2 flops) per cycle, and DRAM streams
/// MemConfig::mem_bytes_per_cycle (6.4 B/cycle at the paper's 2 GHz clock).
struct RooflineParams {
  double flops_per_lane_per_cycle = 2.0;
  double mem_bytes_per_cycle = 6.4;

  double peak_flops_per_cycle(std::uint32_t lanes) const {
    return flops_per_lane_per_cycle * static_cast<double>(lanes);
  }
  /// Arithmetic intensity at which the compute roof meets the bandwidth roof.
  double ridge(std::uint32_t lanes) const {
    return peak_flops_per_cycle(lanes) / mem_bytes_per_cycle;
  }
};

enum class Bound { kCompute, kBandwidth, kDegenerate };
const char* to_string(Bound b);
Bound bound_from_string(const std::string& s);

/// Derived attribution for one sweep row. Degenerate inputs are clamped and
/// labeled rather than leaking inf/NaN into emitters ("ai": inf is not valid
/// JSON): `degenerate` is "" for a healthy row, else one of "zero_cycles",
/// "zero_dram_bytes", "missing_breakdown". Non-finite fields serialize as
/// JSON null.
struct Attribution {
  double vec_utilization = 0;           ///< vec_elems / (lanes * cycles); NaN if unknown
  double arith_intensity = 0;           ///< flops / DRAM bytes; +inf when bytes==0
  double achieved_flops_per_cycle = 0;  ///< flops / cycles
  double attainable_flops_per_cycle = 0;  ///< min(peak, ai * bandwidth)
  double roofline_efficiency = 0;       ///< achieved / attainable, in [0,1]-ish
  double l1_miss_rate = 0;              ///< bd misses/accesses; NaN if unknown
  double l2_miss_rate = 0;              ///< bd misses/accesses; NaN if unknown
  Bound bound = Bound::kDegenerate;
  std::string degenerate;               ///< "" or the degeneracy label
};

Attribution attribute(const SweepRow& row, const RooflineParams& p);

/// One serving-grid cell (mirrors serving::ServingEval without depending on
/// src/serving/, which sits above the report layer in the link order).
struct ServingCell {
  int cores = 1;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_total_bytes = 0;
  int instances = 1;
  double cycles_per_image = 0;
  double images_per_cycle = 0;
  double area_mm2 = 0;
};

/// One request-level serving simulation's headline stats (mirrors
/// serving::ServingStats + the configuration it ran under, without depending
/// on src/serving/, which sits above the report layer in the link order).
/// Latency fields are in cycles — presentation layers convert to ms.
struct RequestSimCell {
  int cores = 1;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_total_bytes = 0;
  int instances = 1;
  std::string policy;    ///< batching policy label, e.g. "adaptive8@1e+06"
  std::string arrivals;  ///< arrival process label, e.g. "poisson"
  double load_rps = 0;
  double slo_cycles = 0;
  std::uint64_t offered = 0, completed = 0, dropped = 0;
  double p50 = 0, p95 = 0, p99 = 0, p999 = 0;  ///< latency, cycles
  double mean_latency = 0;
  double utilization = 0;
  double mean_queue = 0;
  double slo_attainment = 1;
  /// Mean latency attribution (cycles); optional in the schema — reports
  /// written before the attribution columns existed parse back as zeros.
  double mean_queue_wait = 0;
  double mean_formation_wait = 0;
  double mean_service = 0;
};

/// Summary of one grid point's serving timeline (mirrors the analysis in
/// obs/timeline.h without depending on it — obs sits *below* report in the
/// link order, but the mirrored struct keeps the schema self-contained).
/// The full per-interval timeline lives in the VLACNN_TIMELINE JSONL file;
/// this cell is the per-point digest the planner folds into the run report.
struct TimelineCell {
  int cores = 1;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_total_bytes = 0;
  int instances = 1;
  std::string policy;
  std::string arrivals;
  std::uint64_t snapshots = 0;       ///< intervals recorded
  double interval_cycles = 0;        ///< snapshot cadence
  std::uint64_t alerts = 0;          ///< burn-rate alerts raised
  double warmup_cycles = 0;          ///< detected warm-up transient length
  double steady_p99 = 0;             ///< final rolling p99 (cycles)
  double max_burn_rate = 0;          ///< worst burn rate seen in any window
  double time_in_alert_cycles = 0;   ///< total cycles spent in alert state
};

/// One learned-dispatch run's outcome at a grid point (mirrors
/// dispatch::DispatchStats without depending on src/dispatch/, which sits
/// above the report layer in the link order). Cycle fields are totals over
/// every simulated image; oracle_gap is (learned + selector) / oracle - 1.
struct DispatchCell {
  std::string net;
  int cores = 1;
  std::uint32_t vlen_bits = 512;
  std::uint64_t l2_total_bytes = 0;
  int instances = 1;
  int layers = 0;               ///< conv layers dispatched per image
  int mispredicted_layers = 0;  ///< forest picks != oracle argmin, pre-bandit
  std::uint64_t batches = 0, images = 0, explorations = 0;
  double learned_conv_cycles = 0;  ///< conv cycles under the learned plans
  double oracle_conv_cycles = 0;   ///< conv cycles under per-layer argmin
  double selector_cycles = 0;      ///< charged forest-inference cycles
  double oracle_gap = 0;
};

/// One kernel-phase slice of a sweep row's cycles, produced by the simulated
/// PMU (vpu/pmu.h, DESIGN.md §14) when VLACNN_KERNPROF is on. The `cycles`
/// of all cells sharing a key sum bit-exactly to the owning entry's total
/// (Sterbenz split discipline); the bucket columns are raw per-phase deltas.
/// Mirrors obs::KernProfPhase without depending on src/obs at schema level.
struct PhaseCell {
  std::string key;    ///< owning grid point, entry_key() format
  std::string phase;  ///< e.g. "pack-a", "macro-kernel", "(other)"
  double cycles = 0;  ///< exact slice of the row total
  double compute_cycles = 0;
  double mem_issue_cycles = 0;
  double mem_stall_cycles = 0;
  double scalar_cycles = 0;
  double avg_vl = 0;
  double l1_miss_rate = 0;  ///< NaN when the phase made no L1 accesses
  double l2_miss_rate = 0;  ///< NaN when the phase made no L2 accesses
  double mem_bytes = 0;
};

/// One fleet simulation's headline stats (mirrors serving::FleetStats'
/// fleet-level aggregate + the composition it ran, without depending on
/// src/serving/, which sits above the report layer in the link order).
/// Latency fields are in cycles — presentation layers convert to ms.
struct FleetCell {
  std::string label;   ///< composition, e.g. "2xc4v2048l16i4+1xc1v512l1i1"
  std::string router;  ///< routing policy label ("rr", "jsq", "p2c")
  std::string mix;     ///< normalized traffic mix, e.g. "vgg16=0.70,yolo20=0.30"
  int chips = 0;
  double total_area_mm2 = 0;
  double load_rps = 0;
  double slo_cycles = 0;
  std::uint64_t offered = 0, completed = 0, dropped = 0;
  double p50 = 0, p99 = 0, p999 = 0;  ///< fleet latency, cycles
  double mean_latency = 0;
  double utilization = 0;       ///< over all instances, fleet makespan
  double slo_attainment = 1;
  double mean_router_hop = 0;   ///< mean front-end hop span, cycles
  bool meets_slo = false;
};

struct ReportEntry {
  SweepRow row;
  Attribution attr;
};

/// A complete run report: every sweep row touched by the run (deterministic
/// key order) plus any serving cells, with attribution precomputed.
struct RunReport {
  std::string tool;       ///< slug naming the producing driver
  double wall_ms = 0;     ///< wall-clock of the producing run
  RooflineParams roofline;
  std::vector<ReportEntry> entries;  ///< sorted by SweepKey
  std::vector<ServingCell> serving;
  std::vector<RequestSimCell> request_sim;  ///< request-level serving stats
  std::vector<DispatchCell> dispatch;       ///< learned-dispatch outcomes
  std::vector<TimelineCell> timeline;       ///< per-point timeline digests
  std::vector<FleetCell> fleet;             ///< fleet-composition outcomes
  std::vector<PhaseCell> phases;  ///< kernprof per-phase cells, key-sorted

  double total_cycles() const;
  std::string to_json() const;
  std::string to_csv() const;
};

/// Stable human/diff key for one grid point, e.g.
/// "vgg16/L03/gemm6/vlen1024/l2:4194304/lanes8/int".
std::string entry_key(const SweepKey& k);

/// Parse a report emitted by to_json(). Attribution is recomputed from the
/// stored raw numbers and roofline params (the derived fields in the file are
/// for human consumption, not trusted). Throws std::runtime_error on
/// malformed or wrong-schema input.
RunReport report_from_json(const std::string& text);

struct DiffOptions {
  double cycle_budget_pct = 2.0;
  /// Wall-time gating is opt-in: wall clock is noisy across machines, so the
  /// gate only checks it when a non-negative budget is given explicitly.
  double wall_budget_pct = -1.0;
};

struct DiffDelta {
  std::string key;
  double base = 0;
  double cur = 0;
  double delta_pct = 0;  ///< +inf when base == 0 and cur > 0
};

struct DiffResult {
  std::vector<DiffDelta> regressions;   ///< per-key cycles over budget
  std::vector<DiffDelta> improvements;  ///< per-key cycles under -budget
  std::vector<std::string> only_base;   ///< keys missing from current
  std::vector<std::string> only_cur;    ///< keys missing from baseline
  DiffDelta total;                      ///< summed cycles over shared keys
  bool total_regressed = false;
  DiffDelta wall;                       ///< wall_ms (checked only if opted in)
  bool wall_regressed = false;
  std::size_t compared = 0;             ///< shared keys

  /// Gate verdict: no per-key, total, or (opted-in) wall regression.
  bool ok() const {
    return regressions.empty() && !total_regressed && !wall_regressed;
  }
};

DiffResult diff_reports(const RunReport& base, const RunReport& cur,
                        const DiffOptions& opt);

/// ASCII attribution/roofline table for `vlacnn-report summarize`.
std::string summarize(const RunReport& r);

/// Render a diff for humans (used by `vlacnn-report diff`).
std::string diff_to_string(const DiffResult& d, const DiffOptions& opt);

}  // namespace vlacnn::report

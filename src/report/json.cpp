#include "report/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace vlacnn::report {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Json v;
      v.type = Json::Type::kString;
      v.string = parse_string();
      return v;
    }
    if (c == 't') {
      if (!consume_word("true")) fail("bad literal");
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (c == 'f') {
      if (!consume_word("false")) fail("bad literal");
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (c == 'n') {
      if (!consume_word("null")) fail("bad literal");
      return Json{};
    }
    return parse_number();
  }

  Json parse_object() {
    Json v;
    v.type = Json::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    Json v;
    v.type = Json::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // Report emitters only escape control chars, so non-ASCII code
            // points pass through as raw UTF-8 and never hit this path; a
            // plain byte append keeps the parser self-contained.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else {
              out += '?';
            }
            break;
          }
          default: fail("bad escape");
        }
        continue;
      }
      out += c;
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    Json v;
    v.type = Json::Type::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing required key \"" + key + "\"");
  }
  return *v;
}

Json parse_json(const std::string& text) { return Parser(text).parse_document(); }

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace vlacnn::report

#include "wino/transforms.h"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/linalg.h"
#include "common/rng.h"

namespace vlacnn {

namespace {

// Canonical B^T / A^T matrices (interpolation points: F(2,3): {0,1,-1};
// F(4,3): {0,1,-1,2,-2}; F(6,3): {0,1,-1,2,-2,1/2,-1/2}).

const double kBt2[4 * 4] = {
    1, 0, -1, 0,   //
    0, 1, 1, 0,    //
    0, -1, 1, 0,   //
    0, 1, 0, -1,   //
};
const double kAt2[2 * 4] = {
    1, 1, 1, 0,    //
    0, 1, -1, -1,  //
};

const double kBt4[6 * 6] = {
    4, 0, -5, 0, 1, 0,    //
    0, -4, -4, 1, 1, 0,   //
    0, 4, -4, -1, 1, 0,   //
    0, -2, -1, 2, 1, 0,   //
    0, 2, -1, -2, 1, 0,   //
    0, 4, 0, -5, 0, 1,    //
};
const double kAt4[4 * 6] = {
    1, 1, 1, 1, 1, 0,    //
    0, 1, -1, 2, -2, 0,  //
    0, 1, 1, 4, 4, 0,    //
    0, 1, -1, 8, -8, 1,  //
};

const double kBt6[8 * 8] = {
    1, 0,    -21.0 / 4, 0,        21.0 / 4,  0,         -1, 0,  //
    0, 1,    1,         -17.0 / 4, -17.0 / 4, 1,         1,  0,  //
    0, -1,   1,         17.0 / 4,  -17.0 / 4, -1,        1,  0,  //
    0, 0.5,  0.25,      -2.5,      -1.25,     2,         1,  0,  //
    0, -0.5, 0.25,      2.5,       -1.25,     -2,        1,  0,  //
    0, 2,    4,         -2.5,      -5,        0.5,       1,  0,  //
    0, -2,   4,         2.5,       -5,        -0.5,      1,  0,  //
    0, -1,   0,         21.0 / 4,  0,         -21.0 / 4, 0,  1,  //
};
const double kAt6[6 * 8] = {
    1, 1, 1,  1, 1,   1,          1,           0,  //
    0, 1, -1, 2, -2,  1.0 / 2,    -1.0 / 2,    0,  //
    0, 1, 1,  4, 4,   1.0 / 4,    1.0 / 4,     0,  //
    0, 1, -1, 8, -8,  1.0 / 8,    -1.0 / 8,    0,  //
    0, 1, 1,  16, 16, 1.0 / 16,   1.0 / 16,    0,  //
    0, 1, -1, 32, -32, 1.0 / 32,  -1.0 / 32,   1,  //
};

/// Derive G from the identity A^T[(G g) .* (B^T d)] = corr(g, d).
/// For each filter basis vector e_k this is an overdetermined linear system in
/// the k-th column of G; any inconsistency shows up in the residual.
void derive_g(WinogradTransform& t) {
  const int m = t.m;
  const int r = t.r;
  const int n = t.n();

  t.g.assign(static_cast<std::size_t>(n) * r, 0.0);
  double worst = 0.0;

  for (int k = 0; k < r; ++k) {
    // Stack equations over all data basis vectors e_j: m rows each.
    Mat a(static_cast<std::size_t>(m) * n, n);
    std::vector<double> b(static_cast<std::size_t>(m) * n, 0.0);
    for (int j = 0; j < n; ++j) {
      // B^T e_j is column j of B^T.
      for (int i = 0; i < m; ++i) {
        const std::size_t row = static_cast<std::size_t>(j) * m + i;
        for (int s = 0; s < n; ++s) {
          a(row, s) = t.at[static_cast<std::size_t>(i) * n + s] *
                      t.bt[static_cast<std::size_t>(s) * n + j];
        }
        // Correlation: y_i(e_k, e_j) = 1 iff i + k == j.
        b[row] = (i + k == j) ? 1.0 : 0.0;
      }
    }
    std::vector<double> col = least_squares(a, b);
    worst = std::max(worst, residual_inf(a, col, b));
    for (int s = 0; s < n; ++s) {
      t.g[static_cast<std::size_t>(s) * r + k] = col[s];
    }
  }
  t.derivation_residual = worst;
}

WinogradTransform build(int m) {
  WinogradTransform t;
  t.m = m;
  t.r = 3;
  const int n = t.n();
  const double* bt = nullptr;
  const double* at = nullptr;
  switch (m) {
    case 2: bt = kBt2; at = kAt2; break;
    case 4: bt = kBt4; at = kAt4; break;
    case 6: bt = kBt6; at = kAt6; break;
    default:
      throw std::invalid_argument("winograd: only F(2,3), F(4,3), F(6,3)");
  }
  t.bt.assign(bt, bt + static_cast<std::size_t>(n) * n);
  t.at.assign(at, at + static_cast<std::size_t>(m) * n);
  derive_g(t);
  if (t.derivation_residual > 1e-8) {
    throw std::runtime_error("winograd: transform derivation inconsistent");
  }
  return t;
}

/// out(rows_a x cols_b) = A(rows_a x inner) * B(inner x cols_b), double accum.
void dgemm_small(const double* a, int rows_a, int inner, const float* b,
                 int cols_b, double* out) {
  for (int i = 0; i < rows_a; ++i) {
    for (int j = 0; j < cols_b; ++j) {
      double s = 0.0;
      for (int k = 0; k < inner; ++k) {
        s += a[i * inner + k] * static_cast<double>(b[k * cols_b + j]);
      }
      out[i * cols_b + j] = s;
    }
  }
}

void dgemm_small_dd(const double* a, int rows_a, int inner, const double* b,
                    int cols_b, double* out) {
  for (int i = 0; i < rows_a; ++i) {
    for (int j = 0; j < cols_b; ++j) {
      double s = 0.0;
      for (int k = 0; k < inner; ++k) s += a[i * inner + k] * b[k * cols_b + j];
      out[i * cols_b + j] = s;
    }
  }
}

/// out = T * X * T^T where T is rows x cols and X is cols x cols.
void sandwich(const double* t_mat, int rows, int cols, const float* x,
              float* out) {
  std::vector<double> tmp(static_cast<std::size_t>(rows) * cols);
  dgemm_small(t_mat, rows, cols, x, cols, tmp.data());
  // out = tmp * T^T  -> out[i][j] = sum_k tmp[i][k] * T[j][k]
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < rows; ++j) {
      double s = 0.0;
      for (int k = 0; k < cols; ++k) {
        s += tmp[static_cast<std::size_t>(i) * cols + k] * t_mat[j * cols + k];
      }
      out[static_cast<std::size_t>(i) * rows + j] = static_cast<float>(s);
    }
  }
}

}  // namespace

const WinogradTransform& winograd_transform(int m) {
  // Parallel sweep tasks build Winograd kernels concurrently; the map's node
  // stability keeps returned references valid across later insertions, the
  // mutex serializes the lookups themselves.
  static std::mutex mu;
  static std::map<int, WinogradTransform> cache;
  std::lock_guard<std::mutex> lk(mu);
  auto it = cache.find(m);
  if (it == cache.end()) it = cache.emplace(m, build(m)).first;
  return it->second;
}

void wino_transform_input(const WinogradTransform& t, const float* d, float* v) {
  sandwich(t.bt.data(), t.n(), t.n(), d, v);
}

void wino_transform_weight(const WinogradTransform& t, const float* g, float* u) {
  // U = G g G^T: G is n x r, g is r x r -> U is n x n.
  const int n = t.n();
  const int r = t.r;
  std::vector<double> tmp(static_cast<std::size_t>(n) * r);
  dgemm_small(t.g.data(), n, r, g, r, tmp.data());
  std::vector<double> gt(static_cast<std::size_t>(r) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < r; ++j) gt[static_cast<std::size_t>(j) * n + i] = t.g[static_cast<std::size_t>(i) * r + j];
  }
  std::vector<double> out(static_cast<std::size_t>(n) * n);
  dgemm_small_dd(tmp.data(), n, r, gt.data(), n, out.data());
  for (int i = 0; i < n * n; ++i) u[i] = static_cast<float>(out[i]);
}

void wino_transform_output(const WinogradTransform& t, const float* m_tile,
                           float* y) {
  sandwich(t.at.data(), t.m, t.n(), m_tile, y);
}

double wino_identity_error(const WinogradTransform& t, int trials,
                           std::uint64_t seed) {
  Rng rng(seed);
  const int n = t.n();
  const int m = t.m;
  const int r = t.r;
  double worst = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> g(r), d(n);
    for (auto& x : g) x = rng.uniform(-1.0f, 1.0f);
    for (auto& x : d) x = rng.uniform(-1.0f, 1.0f);
    // u = G g ; v = B^T d ; y = A^T (u .* v)
    std::vector<double> u(n, 0.0), v(n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < r; ++k) u[i] += t.g[static_cast<std::size_t>(i) * r + k] * g[k];
      for (int j = 0; j < n; ++j) v[i] += t.bt[static_cast<std::size_t>(i) * n + j] * d[j];
    }
    for (int i = 0; i < m; ++i) {
      double y = 0.0;
      for (int s = 0; s < n; ++s) {
        y += t.at[static_cast<std::size_t>(i) * n + s] * u[s] * v[s];
      }
      double expect = 0.0;
      for (int k = 0; k < r; ++k) expect += g[k] * d[i + k];
      worst = std::max(worst, std::fabs(y - expect));
    }
  }
  return worst;
}

}  // namespace vlacnn

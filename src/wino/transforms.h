// Winograd minimal-filtering transforms F(m, 3) for m in {2, 4, 6}.
//
// The 2-D algorithm computes, per 8x8 (n x n) input tile:
//     Y = A^T [ (G g G^T) .* (B^T d B) ] A
// where g is the 3x3 filter, d the input tile, Y the m x m output tile.
//
// B^T and A^T are the canonical matrices used by NNPACK/cuDNN-style
// implementations (interpolation points 0, +-1, +-2, +-1/2 for F(6,3)). Rather
// than also hardcoding G — where sign/scale conventions differ between
// codebases — G is *derived* at first use by solving the defining identity
//     A^T [ (G e_k) .* (B^T e_j) ] = y(e_k, e_j)   for all basis pairs (k, j)
// as a least-squares problem. The residual of that solve is stored and checked:
// if the hardcoded B^T/A^T were inconsistent, construction would throw instead
// of silently producing a wrong convolution.
//
// The paper's motivation for inter-tile parallelism (Paper I, Section IV.B) is
// that tiles larger than 8x8 (m > 6) are numerically inaccurate; the accuracy
// bench (bench_wino_accuracy) demonstrates the error growth across m.
#pragma once

#include <cstdint>
#include <vector>

namespace vlacnn {

struct WinogradTransform {
  int m = 0;                 ///< output tile edge
  int r = 0;                 ///< kernel edge (3)
  std::vector<double> at;    ///< A^T, m x n row-major
  std::vector<double> g;     ///< G,   n x r row-major
  std::vector<double> bt;    ///< B^T, n x n row-major
  double derivation_residual = 0.0;

  int n() const { return m + r - 1; }
};

/// Cached transform for F(m,3), m in {2,4,6}. Throws for other sizes or if the
/// derivation residual exceeds 1e-8.
const WinogradTransform& winograd_transform(int m);

/// V = B^T d B for an n x n tile (row-major float I/O, double accumulation).
void wino_transform_input(const WinogradTransform& t, const float* d, float* v);

/// U = G g G^T for an r x r kernel.
void wino_transform_weight(const WinogradTransform& t, const float* g, float* u);

/// Y = A^T M A for an n x n Hadamard-product tile.
void wino_transform_output(const WinogradTransform& t, const float* m_tile,
                           float* y);

/// Max |A^T((Gg) .* (B^T d)) - correlation(g, d)| over `trials` random (g, d)
/// pairs in 1-D — the identity the 2-D algorithm nests. Used by tests.
double wino_identity_error(const WinogradTransform& t, int trials,
                           std::uint64_t seed);

}  // namespace vlacnn

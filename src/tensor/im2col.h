// Scalar im2col transformation (Darknet-style), used by the reference GEMM path
// and by tests. The vectorized, engine-templated im2col that the simulated
// kernels use lives with the kernels in src/algos/gemm_common.h.
#pragma once

#include <vector>

#include "tensor/conv_desc.h"
#include "tensor/tensor.h"

namespace vlacnn {

/// Expand an NCHW input into the K x N column matrix (K = ic*kh*kw rows,
/// N = oh*ow columns), zero-padding out-of-bounds taps.
/// out must have room for gemm_k() * gemm_n() floats.
void im2col_nchw(const ConvLayerDesc& desc, const float* input, float* out);

/// Convenience overload allocating the output.
std::vector<float> im2col_nchw(const ConvLayerDesc& desc, const Tensor& input);

}  // namespace vlacnn

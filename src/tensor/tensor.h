// Minimal tensor container for batch-1 CNN inference (the papers evaluate with
// batch size 1, the common model-serving case).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace vlacnn {

class Rng;

enum class Layout { kNCHW, kNHWC };

/// A 3-D (channels x height x width) float tensor in one of the two layouts the
/// convolution algorithms use. Owns its storage.
class Tensor {
 public:
  Tensor() = default;
  Tensor(int c, int h, int w, Layout layout = Layout::kNCHW);

  int c() const { return c_; }
  int h() const { return h_; }
  int w() const { return w_; }
  Layout layout() const { return layout_; }
  std::size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::size_t index(int c, int y, int x) const {
    return layout_ == Layout::kNCHW
               ? (static_cast<std::size_t>(c) * h_ + y) * w_ + x
               : (static_cast<std::size_t>(y) * w_ + x) * c_ + c;
  }
  float& at(int c, int y, int x) { return data_[index(c, y, x)]; }
  float at(int c, int y, int x) const { return data_[index(c, y, x)]; }

  void fill(float v);
  void fill_random(Rng& rng, float lo = -1.0f, float hi = 1.0f);

  /// Copy into the other layout.
  Tensor to_layout(Layout target) const;

 private:
  int c_ = 0, h_ = 0, w_ = 0;
  Layout layout_ = Layout::kNCHW;
  std::vector<float> data_;
};

/// Max absolute difference between equally-shaped tensors (layout-independent).
float max_abs_diff(const Tensor& a, const Tensor& b);

/// Max absolute value, used for relative-error checks.
float max_abs(const Tensor& a);

}  // namespace vlacnn

#include "tensor/im2col.h"

#include <stdexcept>

namespace vlacnn {

void im2col_nchw(const ConvLayerDesc& d, const float* input, float* out) {
  const int oh = d.oh();
  const int ow = d.ow();
  std::size_t row = 0;
  for (int c = 0; c < d.ic; ++c) {
    for (int ky = 0; ky < d.kh; ++ky) {
      for (int kx = 0; kx < d.kw; ++kx, ++row) {
        float* dst = out + row * static_cast<std::size_t>(oh) * ow;
        for (int y = 0; y < oh; ++y) {
          const int iy = y * d.stride + ky - d.pad;
          for (int x = 0; x < ow; ++x) {
            const int ix = x * d.stride + kx - d.pad;
            const bool in_bounds =
                iy >= 0 && iy < d.ih && ix >= 0 && ix < d.iw;
            dst[static_cast<std::size_t>(y) * ow + x] =
                in_bounds
                    ? input[(static_cast<std::size_t>(c) * d.ih + iy) * d.iw + ix]
                    : 0.0f;
          }
        }
      }
    }
  }
}

std::vector<float> im2col_nchw(const ConvLayerDesc& d, const Tensor& input) {
  if (input.layout() != Layout::kNCHW) {
    throw std::invalid_argument("im2col_nchw: input must be NCHW");
  }
  if (input.c() != d.ic || input.h() != d.ih || input.w() != d.iw) {
    throw std::invalid_argument("im2col_nchw: input shape mismatch");
  }
  std::vector<float> out(d.gemm_k() * d.gemm_n());
  im2col_nchw(d, input.data(), out.data());
  return out;
}

}  // namespace vlacnn

#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace vlacnn {

Tensor::Tensor(int c, int h, int w, Layout layout)
    : c_(c), h_(h), w_(w), layout_(layout) {
  if (c <= 0 || h <= 0 || w <= 0) {
    throw std::invalid_argument("tensor: dimensions must be positive");
  }
  data_.assign(static_cast<std::size_t>(c) * h * w, 0.0f);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::fill_random(Rng& rng, float lo, float hi) {
  fill_uniform(rng, data_.data(), data_.size(), lo, hi);
}

Tensor Tensor::to_layout(Layout target) const {
  Tensor out(c_, h_, w_, target);
  if (target == layout_) {
    out.data_ = data_;
    return out;
  }
  for (int c = 0; c < c_; ++c) {
    for (int y = 0; y < h_; ++y) {
      for (int x = 0; x < w_; ++x) out.at(c, y, x) = at(c, y, x);
    }
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (a.c() != b.c() || a.h() != b.h() || a.w() != b.w()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  float worst = 0.0f;
  for (int c = 0; c < a.c(); ++c) {
    for (int y = 0; y < a.h(); ++y) {
      for (int x = 0; x < a.w(); ++x) {
        worst = std::max(worst, std::fabs(a.at(c, y, x) - b.at(c, y, x)));
      }
    }
  }
  return worst;
}

float max_abs(const Tensor& a) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a.data()[i]));
  }
  return worst;
}

}  // namespace vlacnn

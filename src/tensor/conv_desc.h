// Descriptor of a convolutional layer: the ten "software parameters" the paper
// feeds to its algorithm-selection model (input/output channels and dimensions,
// kernel size, stride, padding).
#pragma once

#include <cstdint>
#include <string>

namespace vlacnn {

struct ConvLayerDesc {
  int ic = 1;      ///< input channels
  int ih = 1;      ///< input height
  int iw = 1;      ///< input width
  int oc = 1;      ///< output channels (number of filters)
  int kh = 1;      ///< kernel height
  int kw = 1;      ///< kernel width
  int stride = 1;
  int pad = 0;

  int oh() const { return (ih + 2 * pad - kh) / stride + 1; }
  int ow() const { return (iw + 2 * pad - kw) / stride + 1; }

  std::uint64_t in_elems() const {
    return static_cast<std::uint64_t>(ic) * ih * iw;
  }
  std::uint64_t weight_elems() const {
    return static_cast<std::uint64_t>(oc) * ic * kh * kw;
  }
  std::uint64_t out_elems() const {
    return static_cast<std::uint64_t>(oc) * oh() * ow();
  }
  /// Multiply-accumulates of the direct formulation (im2col+GEMM does the same
  /// amount of arithmetic; Winograd does less).
  std::uint64_t macs() const {
    return static_cast<std::uint64_t>(oh()) * ow() * oc * ic * kh * kw;
  }

  /// GEMM dimensions after im2col: weights are M x K, input matrix K x N.
  std::uint64_t gemm_m() const { return oc; }
  std::uint64_t gemm_k() const {
    return static_cast<std::uint64_t>(ic) * kh * kw;
  }
  std::uint64_t gemm_n() const {
    return static_cast<std::uint64_t>(oh()) * ow();
  }

  /// Arithmetic intensity of im2col+GEMM per the roofline model used in
  /// Paper I Table IV: 2MNK / 4(MN + KN + MK).
  double arithmetic_intensity() const {
    const double m = static_cast<double>(gemm_m());
    const double k = static_cast<double>(gemm_k());
    const double n = static_cast<double>(gemm_n());
    return (2.0 * m * n * k) / (4.0 * (m * n + k * n + m * k));
  }

  bool operator==(const ConvLayerDesc&) const = default;

  std::string to_string() const {
    return "conv[ic=" + std::to_string(ic) + " ih=" + std::to_string(ih) +
           " iw=" + std::to_string(iw) + " oc=" + std::to_string(oc) +
           " k=" + std::to_string(kh) + "x" + std::to_string(kw) +
           " s=" + std::to_string(stride) + " p=" + std::to_string(pad) + "]";
  }
};

}  // namespace vlacnn

// Pareto-frontier extraction for the performance/area (Fig 11) and
// throughput/area (Fig 12) analyses.
#pragma once

#include <cstddef>
#include <vector>

namespace vlacnn {

/// A candidate design point: two objectives to minimise (convert a maximise
/// objective by negating it) and an opaque tag identifying the configuration.
struct ParetoPoint {
  double obj_a = 0;  ///< e.g. area (minimise)
  double obj_b = 0;  ///< e.g. cycles (minimise) or -throughput
  std::size_t tag = 0;
};

/// Indices (into `points`) of the non-dominated set, sorted by obj_a ascending.
/// A point dominates another if it is <= in both objectives and < in at least
/// one.
std::vector<std::size_t> pareto_frontier(const std::vector<ParetoPoint>& points);

/// The frontier point minimising the product obj_a*obj_b (the "knee" used as
/// Pareto-optimal in the papers, both objectives positive).
std::size_t pareto_knee(const std::vector<ParetoPoint>& points,
                        const std::vector<std::size_t>& frontier);

}  // namespace vlacnn

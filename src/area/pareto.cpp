#include "area/pareto.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace vlacnn {

std::vector<std::size_t> pareto_frontier(const std::vector<ParetoPoint>& points) {
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].obj_a != points[b].obj_a)
      return points[a].obj_a < points[b].obj_a;
    return points[a].obj_b < points[b].obj_b;
  });
  std::vector<std::size_t> frontier;
  double best_b = std::numeric_limits<double>::infinity();
  for (std::size_t i : order) {
    if (points[i].obj_b < best_b) {
      frontier.push_back(i);
      best_b = points[i].obj_b;
    }
  }
  return frontier;
}

std::size_t pareto_knee(const std::vector<ParetoPoint>& points,
                        const std::vector<std::size_t>& frontier) {
  if (frontier.empty()) throw std::invalid_argument("pareto: empty frontier");
  std::size_t best = frontier[0];
  double best_product = points[best].obj_a * points[best].obj_b;
  for (std::size_t i : frontier) {
    const double p = points[i].obj_a * points[i].obj_b;
    if (p < best_product) {
      best_product = p;
      best = i;
    }
  }
  return best;
}

}  // namespace vlacnn

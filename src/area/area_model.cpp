// AreaModel is fully inline; this TU anchors the header into the library and
// holds a compile-time sanity check of the calibration.
#include "area/area_model.h"

namespace vlacnn {

namespace {
constexpr AreaModel kDefault{};
// 512-bit fraction must sit at the paper's ~28%.
static_assert(kDefault.mm2_per_vlen_bit > 0, "area model must be positive");
}  // namespace

}  // namespace vlacnn

// 7 nm area model of the RISC-V core + vector unit + L2 (the PCacti/scaling
// substitute for Paper II Section 4.4 and Paper I Section VIII).
//
// Calibration: Paper II reports that VPU+VRF consume ~28/43/60/75% of the core
// tile at 512/1024/2048/4096-bit vector lengths — consistent with a fixed
// scalar-core area plus a VPU+VRF term linear in VLEN (ratios 0.28/0.43/0.60/
// 0.75 are reproduced exactly by core = 1316*k and vpu = vlen*k). The absolute
// scale is pinned by the paper's Pareto-optimal point (2048-bit + 1 MB L2 =
// 2.35 mm^2) and its L2 cost (im2col+GEMM at 64 MB ~ 13.6 mm^2), giving
// k = 6.48e-4 mm^2/bit and 0.17 mm^2/MB of L2 at 7 nm.
#pragma once

#include <cstdint>

namespace vlacnn {

struct AreaModel {
  double mm2_per_vlen_bit = 6.48e-4;  ///< VPU + VRF, linear in vector length
  double scalar_core_mm2 = 1316 * 6.48e-4;  ///< core + L1, VLEN-independent
  double l2_mm2_per_mb = 0.17;

  /// One core tile (scalar core + VPU + VRF), excluding L2.
  double core_tile_mm2(std::uint32_t vlen_bits) const {
    return scalar_core_mm2 + mm2_per_vlen_bit * vlen_bits;
  }

  /// Fraction of the core tile taken by VPU + VRF (Paper II: 28..75%).
  double vpu_fraction(std::uint32_t vlen_bits) const {
    return mm2_per_vlen_bit * vlen_bits / core_tile_mm2(vlen_bits);
  }

  double l2_mm2(std::uint64_t l2_bytes) const {
    return l2_mm2_per_mb * static_cast<double>(l2_bytes) / (1 << 20);
  }

  /// Full chip: `cores` identical tiles plus a shared L2.
  double chip_mm2(std::uint32_t vlen_bits, std::uint64_t l2_bytes,
                  int cores = 1) const {
    return cores * core_tile_mm2(vlen_bits) + l2_mm2(l2_bytes);
  }
};

}  // namespace vlacnn

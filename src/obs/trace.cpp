#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "obs/json_util.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace vlacnn::obs {

Tracer::Tracer(const std::string& path) {
  if (!path.empty()) open(path);
}

Tracer::~Tracer() {
  try {
    close();
  } catch (const std::exception& e) {
    // A destructor (possibly at process exit) must not throw; the failed
    // trace write is worth a line on stderr, not a terminate().
    std::fprintf(stderr, "vlacnn: trace write failed: %s\n", e.what());
  }
}

void Tracer::open(const std::string& path) {
  if (path.empty()) return;
  close();
  std::lock_guard<std::mutex> lk(mu_);
  path_ = path;
  events_.clear();
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
  log(LogLevel::kInfo, "trace", "collecting", {{"file", path}});
}

void Tracer::close() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  enabled_.store(false, std::memory_order_relaxed);
  write_file_locked();
  log(LogLevel::kInfo, "trace", "written",
      {{"file", path_}, {"events", std::to_string(events_.size())}});
  events_.clear();
  tids_.clear();
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

int Tracer::tid_locked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = static_cast<int>(tids_.size()) + 1;
  tids_.emplace(id, tid);
  return tid;
}

void Tracer::emit(const std::string& name, double ts_us, double dur_us,
                  const Args& args) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Event e;
  e.name = name;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = tid_locked(std::this_thread::get_id());
  e.args = args;
  events_.push_back(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

void Tracer::write_file_locked() {
  const std::filesystem::path p(path_);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trace: cannot write " + path_);
  }
  std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i) json += ',';
    json += "\n{\"name\":";
    json_append_escaped(json, e.name);
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%d",
                  e.ts_us, e.dur_us, e.tid);
    json += buf;
    if (!e.args.empty()) {
      json += ",\"args\":{";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a) json += ',';
        json_append_escaped(json, e.args[a].first);
        json += ':';
        json_append_escaped(json, e.args[a].second);
      }
      json += '}';
    }
    json += '}';
  }
  json += "\n]}\n";
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error("trace: short write to " + path_);
  }
}

Tracer& Tracer::global() {
  static Tracer tracer;
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* path = std::getenv("VLACNN_TRACE")) tracer.open(path);
  });
  return tracer;
}

// -- Span ---------------------------------------------------------------------

Span::Span(std::string name, Tracer* tracer)
    : name_(std::move(name)), tracer_(tracer ? tracer : &Tracer::global()) {
  trace_on_ = tracer_->enabled();
  metrics_on_ = metrics_enabled();
  if (trace_on_) t0_us_ = tracer_->now_us();
  if (active()) start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active()) return;
  const double dur_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
  if (trace_on_) tracer_->emit(name_, t0_us_, dur_us, args_);
  if (metrics_on_) {
    Registry::global()
        .histogram("span." + name_ + ".us")
        .observe(static_cast<std::uint64_t>(dur_us));
  }
}

void Span::arg(std::string key, std::string value) {
  if (!active()) return;
  args_.emplace_back(std::move(key), std::move(value));
}

}  // namespace vlacnn::obs

#include "obs/timeline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "obs/json_util.h"

namespace vlacnn::obs {

// -- env knobs ----------------------------------------------------------------

namespace {

std::mutex g_knob_mu;
bool g_path_parsed = false;
std::string g_path;
// -1 = not yet parsed; 0/1 mirror g_path.empty() for the lock-free gate.
std::atomic<int> g_enabled{-1};

bool g_interval_parsed = false;
double g_interval = 1e6;
bool g_interval_overridden = false;

double parse_interval_env() {
  const char* v = std::getenv("VLACNN_TIMELINE_INTERVAL");
  if (v == nullptr || *v == '\0') return 1e6;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0' || !std::isfinite(d) || !(d > 0)) {
    throw std::runtime_error("VLACNN_TIMELINE_INTERVAL: expected a positive "
                             "cycle count, got '" + std::string(v) + "'");
  }
  g_interval_overridden = true;
  return d;
}

}  // namespace

bool timeline_enabled() {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    std::lock_guard<std::mutex> lk(g_knob_mu);
    if (!g_path_parsed) {
      const char* v = std::getenv("VLACNN_TIMELINE");
      g_path = v == nullptr ? "" : v;
      g_path_parsed = true;
    }
    e = g_path.empty() ? 0 : 1;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e != 0;
}

std::string timeline_path() {
  timeline_enabled();  // force the one-time env parse
  std::lock_guard<std::mutex> lk(g_knob_mu);
  return g_path;
}

void set_timeline_path(const std::string& path) {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  g_path = path;
  g_path_parsed = true;
  g_enabled.store(path.empty() ? 0 : 1, std::memory_order_relaxed);
}

double timeline_interval_cycles() {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  if (!g_interval_parsed) {
    g_interval = parse_interval_env();
    g_interval_parsed = true;
  }
  return g_interval;
}

void set_timeline_interval_cycles(double cycles) {
  if (!std::isfinite(cycles) || !(cycles > 0)) {
    throw std::invalid_argument(
        "set_timeline_interval_cycles: interval must be positive");
  }
  std::lock_guard<std::mutex> lk(g_knob_mu);
  g_interval = cycles;
  g_interval_parsed = true;
  g_interval_overridden = true;
}

bool timeline_interval_overridden() {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  if (!g_interval_parsed) {
    g_interval = parse_interval_env();
    g_interval_parsed = true;
  }
  return g_interval_overridden;
}

// -- JSON lines ---------------------------------------------------------------

namespace {

void append_kv(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  json_append_number(out, v);
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, int v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

}  // namespace

std::string TimelineSnapshot::to_json() const {
  std::string out = "{\"type\":\"snapshot\"";
  append_kv(out, "t_start", t_start);
  append_kv(out, "t_end", t_end);
  append_kv(out, "arrivals", arrivals);
  append_kv(out, "drops", drops);
  append_kv(out, "dispatches", dispatches);
  append_kv(out, "completions", completions);
  append_kv(out, "queue_depth", queue_depth);
  append_kv(out, "in_flight", in_flight);
  append_kv(out, "mean_queue", mean_queue);
  append_kv(out, "utilization", utilization);
  append_kv(out, "arrival_rate", arrival_rate);
  append_kv(out, "completion_rate", completion_rate);
  append_kv(out, "rolling_p99", rolling_p99);
  append_kv(out, "rolling_count", rolling_count);
  append_kv(out, "burn_short", burn_short);
  append_kv(out, "burn_long", burn_long);
  append_kv(out, "alert", alert);
  append_kv(out, "cum_offered", cum_offered);
  append_kv(out, "cum_completed", cum_completed);
  append_kv(out, "cum_dropped", cum_dropped);
  out += '}';
  return out;
}

std::string TimelineAlert::to_json() const {
  std::string out = raised ? "{\"type\":\"alert\"" : "{\"type\":\"clear\"";
  append_kv(out, "t", t);
  append_kv(out, "burn_rate", burn_rate);
  out += '}';
  return out;
}

// -- recorder -----------------------------------------------------------------

TimelineRecorder::TimelineRecorder(const TimelineConfig& cfg)
    : cfg_(cfg), rolling_(std::max<std::size_t>(cfg.rolling_window, 1),
                          cfg.sketch_relative_error) {
  if (!std::isfinite(cfg.interval_cycles) || !(cfg.interval_cycles > 0)) {
    throw std::invalid_argument("TimelineRecorder: interval must be positive");
  }
  if (cfg.rolling_window == 0) {
    throw std::invalid_argument("TimelineRecorder: rolling_window must be >= 1");
  }
  if (cfg.instances < 1) {
    throw std::invalid_argument("TimelineRecorder: instances must be >= 1");
  }
}

void TimelineRecorder::integrate_to(double t) {
  const double dt = t - now_;
  if (dt > 0) {
    iv_queue_area_ += static_cast<double>(queue_depth_) * dt;
    iv_busy_area_ += static_cast<double>(in_flight_) * dt;
    now_ = t;
  }
}

void TimelineRecorder::advance(double t) {
  while (interval_start_ + cfg_.interval_cycles <= t) {
    const double boundary = interval_start_ + cfg_.interval_cycles;
    integrate_to(boundary);
    close_interval(boundary, /*final_flush=*/false);
  }
  integrate_to(t);
}

void TimelineRecorder::close_interval(double boundary, bool final_flush) {
  const double dt = boundary - interval_start_;
  // A run whose makespan lands exactly on a boundary leaves a zero-width
  // trailing interval. Skip it only when it is empty: boundary events are
  // applied *after* advance() closes the preceding interval, so e.g. a
  // completion exactly at the makespan lives here and must still be flushed
  // (as a zero-width snapshot) or the cumulative counts would undercount.
  const bool pending = iv_arrivals_ != 0 || iv_drops_ != 0 ||
                       iv_dispatches_ != 0 || iv_completions_ != 0 ||
                       iv_resolved_ != 0;
  if (final_flush && !(dt > 0) && !pending && !snapshots_.empty()) return;

  TimelineSnapshot s;
  s.t_start = interval_start_;
  s.t_end = boundary;
  s.arrivals = iv_arrivals_;
  s.drops = iv_drops_;
  s.dispatches = iv_dispatches_;
  s.completions = iv_completions_;
  s.queue_depth = queue_depth_;
  s.in_flight = in_flight_;
  if (dt > 0) {
    s.mean_queue = iv_queue_area_ / dt;
    s.utilization =
        iv_busy_area_ / (static_cast<double>(cfg_.instances) * dt);
    s.arrival_rate = static_cast<double>(iv_arrivals_) / dt;
    s.completion_rate = static_cast<double>(iv_completions_) / dt;
  }

  // Burn rates: this interval alone (short) and the rolling window (long).
  const double budget = 1.0 - cfg_.attainment_target;
  const bool burn_on = cfg_.slo_cycles > 0 && budget > 0;
  if (burn_on && iv_resolved_ > 0) {
    s.burn_short = (static_cast<double>(iv_missed_) /
                    static_cast<double>(iv_resolved_)) / budget;
  }
  burn_window_.emplace_back(iv_resolved_, iv_missed_);
  while (burn_window_.size() > cfg_.rolling_window) burn_window_.pop_front();
  std::uint64_t win_resolved = 0, win_missed = 0;
  for (const auto& [r, m] : burn_window_) {
    win_resolved += r;
    win_missed += m;
  }
  if (burn_on && win_resolved > 0) {
    s.burn_long = (static_cast<double>(win_missed) /
                   static_cast<double>(win_resolved)) / budget;
  }

  // Rolling p99 includes this interval's still-open sketch; roll after.
  s.rolling_p99 = rolling_.quantile(0.99);
  s.rolling_count = rolling_.count();
  rolling_.roll();

  const bool above = burn_on && s.burn_long >= cfg_.alert_threshold;
  if (above != alerting_) {
    alerting_ = above;
    TimelineAlert a;
    a.t = boundary;
    a.raised = above;
    a.burn_rate = s.burn_long;
    alerts_.push_back(a);
  }
  s.alert = alerting_;

  s.cum_offered = cum_offered_;
  s.cum_completed = cum_completed_;
  s.cum_dropped = cum_dropped_;
  snapshots_.push_back(s);

  iv_arrivals_ = iv_drops_ = iv_dispatches_ = iv_completions_ = 0;
  iv_resolved_ = iv_missed_ = 0;
  iv_queue_area_ = iv_busy_area_ = 0;
  interval_start_ = boundary;
}

void TimelineRecorder::on_arrival(double t) {
  advance(t);
  ++iv_arrivals_;
  ++cum_offered_;
  ++queue_depth_;
}

void TimelineRecorder::on_drop(double t) {
  advance(t);
  ++iv_drops_;
  ++cum_offered_;
  ++cum_dropped_;
  ++iv_resolved_;
  ++iv_missed_;  // a dropped request always misses its SLO
}

void TimelineRecorder::on_dispatch(double t, int batch) {
  advance(t);
  ++iv_dispatches_;
  const std::uint64_t b = batch > 0 ? static_cast<std::uint64_t>(batch) : 0;
  queue_depth_ = queue_depth_ >= b ? queue_depth_ - b : 0;
  ++in_flight_;
}

void TimelineRecorder::on_completion(double t, double latency_cycles,
                                     bool within_slo) {
  advance(t);
  ++iv_completions_;
  ++cum_completed_;
  ++iv_resolved_;
  if (!within_slo) ++iv_missed_;
  rolling_.observe(latency_cycles);
}

void TimelineRecorder::on_batch_done(double t) {
  advance(t);
  if (in_flight_ > 0) --in_flight_;
}

void TimelineRecorder::finish(double t) {
  if (finished_) return;
  finished_ = true;
  advance(t);
  close_interval(now_, /*final_flush=*/true);
}

std::string TimelineRecorder::to_jsonl() const {
  std::string out = "{\"type\":\"header\"";
  append_kv(out, "interval_cycles", cfg_.interval_cycles);
  append_kv(out, "rolling_window",
            static_cast<std::uint64_t>(cfg_.rolling_window));
  append_kv(out, "sketch_relative_error", cfg_.sketch_relative_error);
  append_kv(out, "slo_cycles", cfg_.slo_cycles);
  append_kv(out, "attainment_target", cfg_.attainment_target);
  append_kv(out, "alert_threshold", cfg_.alert_threshold);
  append_kv(out, "instances", cfg_.instances);
  out += "}\n";
  std::size_t ai = 0;
  for (const TimelineSnapshot& s : snapshots_) {
    out += s.to_json();
    out += '\n';
    // Alerts fire at interval boundaries, so each belongs right after the
    // snapshot whose close tripped it.
    while (ai < alerts_.size() && alerts_[ai].t <= s.t_end) {
      out += alerts_[ai].to_json();
      out += '\n';
      ++ai;
    }
  }
  for (; ai < alerts_.size(); ++ai) {
    out += alerts_[ai].to_json();
    out += '\n';
  }
  return out;
}

TimelineConfig default_timeline_config(int instances, double slo_cycles) {
  TimelineConfig cfg;
  cfg.interval_cycles = timeline_interval_cycles();
  cfg.instances = instances < 1 ? 1 : instances;
  cfg.slo_cycles = slo_cycles;
  return cfg;
}

// -- steady-state analysis ----------------------------------------------------

TimelineAnalysis analyze_timeline(const std::vector<TimelineSnapshot>& snaps,
                                  const std::vector<TimelineAlert>& alerts,
                                  double tolerance) {
  TimelineAnalysis a;
  if (snaps.empty()) return a;
  a.final_rolling_p99 = snaps.back().rolling_p99;

  // Warm-up: the rolling p99 is still filling in until it lands within
  // `tolerance` (relative) of its final value.
  std::size_t start = 0;
  if (a.final_rolling_p99 > 0) {
    while (start + 1 < snaps.size() &&
           std::fabs(snaps[start].rolling_p99 - a.final_rolling_p99) >
               tolerance * a.final_rolling_p99) {
      ++start;
    }
  }
  a.warmup_snapshots = start;
  a.warmup_end_cycles = start > 0 ? snaps[start - 1].t_end
                                  : snaps.front().t_start;

  double tw = 0, arr = 0, comp = 0, util = 0, mq = 0;
  for (std::size_t i = start; i < snaps.size(); ++i) {
    const TimelineSnapshot& s = snaps[i];
    const double dt = s.t_end - s.t_start;
    if (dt <= 0) continue;
    tw += dt;
    arr += s.arrival_rate * dt;
    comp += s.completion_rate * dt;
    util += s.utilization * dt;
    mq += s.mean_queue * dt;
  }
  if (tw > 0) {
    a.steady_arrival_rate = arr / tw;
    a.steady_completion_rate = comp / tw;
    a.steady_utilization = util / tw;
    a.steady_mean_queue = mq / tw;
  }

  for (const TimelineSnapshot& s : snaps) {
    a.max_burn_rate = std::max(a.max_burn_rate, s.burn_long);
    a.max_burn_rate = std::max(a.max_burn_rate, s.burn_short);
  }

  // Alert time: raise..clear spans; an unclosed raise runs to the last
  // snapshot boundary.
  double raised_at = 0;
  bool open = false;
  for (const TimelineAlert& al : alerts) {
    if (al.raised) {
      ++a.alert_count;
      if (!open) {
        open = true;
        raised_at = al.t;
      }
    } else if (open) {
      open = false;
      a.time_in_alert_cycles += al.t - raised_at;
    }
  }
  if (open) a.time_in_alert_cycles += snaps.back().t_end - raised_at;
  return a;
}

// -- sink ---------------------------------------------------------------------

TimelineSink& TimelineSink::global() {
  static TimelineSink sink;
  return sink;
}

void TimelineSink::record(const std::string& label, std::string jsonl) {
  arm_timeline_exit_write();
  std::lock_guard<std::mutex> lk(mu_);
  blocks_[label] = std::move(jsonl);
}

std::string TimelineSink::next_auto_label() {
  std::lock_guard<std::mutex> lk(mu_);
  char buf[24];
  std::snprintf(buf, sizeof buf, "run%06llu",
                static_cast<unsigned long long>(++auto_seq_));
  return buf;
}

std::string TimelineSink::write_file() {
  const std::string path = timeline_path();
  if (path.empty()) {
    throw std::runtime_error(
        "TimelineSink::write_file: no output path (set VLACNN_TIMELINE)");
  }
  std::string out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [label, block] : blocks_) {
      out += "{\"type\":\"run\",\"label\":";
      json_append_escaped(out, label);
      out += "}\n";
      out += block;
    }
  }
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("TimelineSink::write_file: cannot open " + path);
  }
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = written == out.size() && std::fclose(f) == 0;
  if (!ok) {
    throw std::runtime_error("TimelineSink::write_file: short write to " +
                             path);
  }
  return path;
}

std::size_t TimelineSink::block_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return blocks_.size();
}

void TimelineSink::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  blocks_.clear();
  auto_seq_ = 0;
}

void arm_timeline_exit_write() {
  static std::once_flag once;
  std::call_once(once, [] {
    TimelineSink::global();  // outlive any static that records during exit
    std::atexit([] {
      TimelineSink& sink = TimelineSink::global();
      if (sink.block_count() == 0 || !timeline_enabled()) return;
      try {
        sink.write_file();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "vlacnn: timeline write failed: %s\n", e.what());
      }
    });
  });
}

}  // namespace vlacnn::obs

#include "obs/sketch.h"

#include <cmath>
#include <stdexcept>

namespace vlacnn::obs {

QuantileSketch::QuantileSketch(double relative_error) : rel_err_(relative_error) {
  if (!(relative_error > 0) || !(relative_error < 1)) {
    throw std::invalid_argument(
        "QuantileSketch: relative_error must be in (0, 1)");
  }
  gamma_ = (1.0 + relative_error) / (1.0 - relative_error);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

int QuantileSketch::bucket_index(double v) const {
  // Callers clamp negatives/zero to the zero bucket before asking.
  return static_cast<int>(std::ceil(std::log(v) * inv_log_gamma_));
}

double QuantileSketch::bucket_upper(int index) const {
  return std::pow(gamma_, static_cast<double>(index));
}

void QuantileSketch::observe(double v) {
  if (!(v > 0)) {  // 0, negatives, and NaN all land in the exact-zero bucket
    ++zero_count_;
  } else {
    ++buckets_[bucket_index(v)];
  }
  ++count_;
}

void QuantileSketch::observe(double v, std::uint64_t exemplar_id) {
  observe(v);
  if (!(v > 0)) return;  // the exact-zero bucket carries no exemplar
  SketchExemplar& e = exemplars_[bucket_index(v)];
  // First write (value 0 < any v > 0), larger value, or equal value with a
  // lower id — one deterministic winner per bucket, insertion-order-free.
  if (v > e.value || (v == e.value && exemplar_id < e.id)) {
    e.value = v;
    e.id = exemplar_id;
  }
}

std::vector<std::pair<double, SketchExemplar>> QuantileSketch::tail_exemplars(
    double q) const {
  std::vector<std::pair<double, SketchExemplar>> out;
  if (count_ == 0 || exemplars_.empty()) return out;
  if (!(q > 0)) q = 1e-9;
  if (q > 1) q = 1;
  // Same nearest-rank arithmetic as quantile(): the tail starts at the bucket
  // holding the ceil(q * n)-th smallest observation.
  const double scaled = q * static_cast<double>(count_);
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(scaled * (1.0 - 1e-12)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  if (rank <= zero_count_) return out;  // tail starts at the exact-zero bucket
  std::uint64_t seen = zero_count_;
  int tail_from = 0;
  bool found = false;
  for (const auto& [idx, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      tail_from = idx;
      found = true;
      break;
    }
  }
  if (!found) return out;  // unreachable: counts agree
  for (auto it = exemplars_.lower_bound(tail_from); it != exemplars_.end();
       ++it) {
    out.emplace_back(bucket_upper(it->first), it->second);
  }
  return out;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0;
  if (!(q > 0)) q = 1e-9;
  if (q > 1) q = 1;
  // Nearest-rank: the ceil(q * n)-th smallest observation, matching the
  // simulator's exact-percentile convention (request_sim.h).
  const double scaled = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled * (1.0 - 1e-12)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  if (rank <= zero_count_) return 0;
  std::uint64_t seen = zero_count_;
  for (const auto& [idx, n] : buckets_) {
    seen += n;
    if (seen >= rank) return bucket_upper(idx);
  }
  return bucket_upper(buckets_.rbegin()->first);  // unreachable: counts agree
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.rel_err_ != rel_err_) {
    throw std::invalid_argument(
        "QuantileSketch::merge: mismatched relative_error");
  }
  zero_count_ += other.zero_count_;
  count_ += other.count_;
  for (const auto& [idx, n] : other.buckets_) buckets_[idx] += n;
  for (const auto& [idx, oe] : other.exemplars_) {
    SketchExemplar& e = exemplars_[idx];
    if (oe.value > e.value || (oe.value == e.value && oe.id < e.id)) e = oe;
  }
}

void QuantileSketch::clear() {
  zero_count_ = 0;
  count_ = 0;
  buckets_.clear();
  exemplars_.clear();
}

SlidingQuantile::SlidingQuantile(std::size_t window_intervals,
                                 double relative_error)
    : window_(window_intervals), rel_err_(relative_error) {
  if (window_ == 0) {
    throw std::invalid_argument("SlidingQuantile: window must be >= 1");
  }
  intervals_.emplace_back(rel_err_);
}

void SlidingQuantile::observe(double v) { intervals_.back().observe(v); }

void SlidingQuantile::roll() {
  intervals_.emplace_back(rel_err_);
  // The deque holds the open interval plus up to `window_` closed ones.
  while (intervals_.size() > window_ + 1) intervals_.pop_front();
}

double SlidingQuantile::quantile(double q) const {
  QuantileSketch merged(rel_err_);
  for (const QuantileSketch& s : intervals_) merged.merge(s);
  return merged.quantile(q);
}

std::uint64_t SlidingQuantile::count() const {
  std::uint64_t n = 0;
  for (const QuantileSketch& s : intervals_) n += s.count();
  return n;
}

void SlidingQuantile::clear() {
  intervals_.clear();
  intervals_.emplace_back(rel_err_);
}

}  // namespace vlacnn::obs

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <thread>

#include "obs/json_util.h"
#include "obs/trace.h"

namespace vlacnn::obs {

namespace {

ReportMode parse_metrics_env() {
  const char* v = std::getenv("VLACNN_METRICS");
  if (v == nullptr) return ReportMode::kOff;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s.empty() || s == "0" || s == "false" || s == "no" || s == "off") {
    return ReportMode::kOff;
  }
  if (s == "1" || s == "true" || s == "yes" || s == "on" || s == "text") {
    return ReportMode::kText;
  }
  if (s == "json") return ReportMode::kJson;
  throw std::runtime_error("VLACNN_METRICS: unrecognized value '" +
                           std::string(v) +
                           "' (expected 1/true/yes/on, json, or 0/off)");
}

// kOff/kText/kJson stored as int; -1 = not yet parsed from the environment.
std::atomic<int> g_mode{-1};

int load_mode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    m = static_cast<int>(parse_metrics_env());
    int expected = -1;
    g_mode.compare_exchange_strong(expected, m, std::memory_order_relaxed);
    m = g_mode.load(std::memory_order_relaxed);
  }
  return m;
}

std::size_t shard_index() {
  // One fixed shard per thread; collisions just share an atomic.
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>()(std::this_thread::get_id());
  return idx;
}

}  // namespace

ReportMode metrics_mode() { return static_cast<ReportMode>(load_mode()); }

bool metrics_enabled() { return load_mode() != static_cast<int>(ReportMode::kOff); }

void set_metrics_mode(ReportMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

// -- Counter ------------------------------------------------------------------

void Counter::add(std::uint64_t n) noexcept {
  shards_[shard_index() % kShards].v.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// -- Gauge --------------------------------------------------------------------

void Gauge::raise_max(std::int64_t v) noexcept {
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Gauge::set(std::int64_t v) noexcept {
  v_.store(v, std::memory_order_relaxed);
  raise_max(v);
}

void Gauge::add(std::int64_t d) noexcept {
  raise_max(v_.fetch_add(d, std::memory_order_relaxed) + d);
}

std::int64_t Gauge::value() const noexcept {
  return v_.load(std::memory_order_relaxed);
}

std::int64_t Gauge::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

void Gauge::reset() noexcept {
  v_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// -- FloatGauge ---------------------------------------------------------------

void FloatGauge::set(double v) noexcept {
  v_.store(v, std::memory_order_relaxed);
}

double FloatGauge::value() const noexcept {
  return v_.load(std::memory_order_relaxed);
}

void FloatGauge::reset() noexcept {
  v_.store(0.0, std::memory_order_relaxed);
}

// -- Histogram ----------------------------------------------------------------

void Histogram::observe(std::uint64_t v) noexcept {
  const std::size_t i = v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket(std::size_t i) const noexcept {
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_lo(std::size_t i) noexcept {
  return i == 0 ? 0 : 1ull << (i - 1);
}

std::uint64_t Histogram::bucket_hi(std::size_t i) noexcept {
  if (i == 0) return 1;
  if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
  return 1ull << i;
}

std::uint64_t Histogram::quantile_bound(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (static_cast<double>(seen) >= target && seen > 0) return bucket_hi(i);
  }
  return bucket_hi(kBuckets - 1);
}

// -- Registry -----------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

FloatGauge& Registry::float_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = float_gauges_[name];
  if (!slot) slot = std::make_unique<FloatGauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, g] : float_gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string Registry::report_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  out += "== vlacnn metrics "
         "=============================================================\n";
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter    %-42s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge      %-42s %20lld  (max %lld)\n",
                  name.c_str(), static_cast<long long>(g->value()),
                  static_cast<long long>(g->max()));
    out += buf;
  }
  for (const auto& [name, g] : float_gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge      %-42s %20.6g\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    const std::uint64_t n = h->count();
    const double mean =
        n > 0 ? static_cast<double>(h->sum()) / static_cast<double>(n) : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "histogram  %-42s count=%llu mean=%.1f p50<=%llu "
                  "p99<=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(n), mean,
                  static_cast<unsigned long long>(h->quantile_bound(0.50)),
                  static_cast<unsigned long long>(h->quantile_bound(0.99)));
    out += buf;
  }
  out += "=============================================================="
         "=================\n";
  return out;
}

std::string Registry::report_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    json_append_escaped(out, name);
    out += ':' + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    json_append_escaped(out, name);
    out += ":{\"value\":" + std::to_string(g->value()) +
           ",\"max\":" + std::to_string(g->max()) + '}';
  }
  out += "},\"float_gauges\":{";
  first = true;
  for (const auto& [name, g] : float_gauges_) {
    if (!first) out += ',';
    first = false;
    json_append_escaped(out, name);
    out += ':';
    json_append_number(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    json_append_escaped(out, name);
    out += ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + std::to_string(h->sum()) + ",\"buckets\":[";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t b = h->bucket(i);
      if (b == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += '[' + std::to_string(Histogram::bucket_lo(i)) + ',' +
             std::to_string(Histogram::bucket_hi(i)) + ',' +
             std::to_string(b) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Registry& Registry::global() {
  static Registry reg;
  return reg;
}

// -- exit report --------------------------------------------------------------

namespace {
std::chrono::steady_clock::time_point g_report_epoch;
bool g_report_epoch_set = false;
}

void write_exit_report(std::FILE* out) {
  ReportMode mode;
  try {
    mode = metrics_mode();
  } catch (const std::exception&) {
    return;  // bad env value already reported by the run itself
  }
  if (mode == ReportMode::kOff) return;
  Registry& reg = Registry::global();
  if (mode == ReportMode::kJson) {
    std::fprintf(out, "%s\n", reg.report_json().c_str());
    return;
  }
  std::fputs(reg.report_text().c_str(), out);
  // Pool utilization needs wall-clock context the registry doesn't have.
  if (!g_report_epoch_set) return;
  const double wall_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - g_report_epoch)
                             .count();
  const std::int64_t workers = reg.gauge("thread_pool.workers").value();
  const std::uint64_t busy_us = reg.counter("thread_pool.busy_us").value();
  if (workers > 0 && wall_us > 0) {
    std::fprintf(out,
                 "thread_pool utilization: %.1f%% (%.3f s busy across %lld "
                 "workers over %.3f s wall)\n",
                 100.0 * static_cast<double>(busy_us) /
                     (static_cast<double>(workers) * wall_us),
                 static_cast<double>(busy_us) * 1e-6,
                 static_cast<long long>(workers), wall_us * 1e-6);
  }
}

void install_exit_report() {
  static std::once_flag once;
  std::call_once(once, [] {
    // Touch the singletons now so they outlive any static that might emit
    // metrics during shutdown, then hook process exit. Arming the tracer here
    // also means a VLACNN_TRACE run that happens to simulate nothing still
    // writes a valid (empty) trace file instead of no file at all.
    Registry::global();
    Tracer::global();
    g_report_epoch = std::chrono::steady_clock::now();
    g_report_epoch_set = true;
    std::atexit([] { write_exit_report(stderr); });
  });
}

}  // namespace vlacnn::obs

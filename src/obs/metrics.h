// Metrics half of the observability layer (vlacnn::obs): named counters,
// gauges, and fixed-log2-bucket histograms behind a process-wide registry.
//
// Design constraints, in order:
//  * near-zero overhead when disabled — instrumentation sites gate on
//    metrics_enabled(), a single relaxed load of a cached flag, so a build
//    with the knobs unset runs the exact same simulation code plus one
//    predictable branch per event (bench_obs_overhead keeps this honest);
//  * safe under the parallel sweep engine — Counter is sharded across cache
//    lines and lock-free, Gauge/Histogram are plain relaxed atomics, and the
//    registry hands out references that stay valid for the process lifetime
//    (reset() zeroes instruments in place, it never invalidates them);
//  * everything lands in one report — Registry::report_text()/report_json()
//    dump every instrument, and install_exit_report() wires that dump to
//    process exit for the bench drivers (VLACNN_METRICS=1 for text,
//    VLACNN_METRICS=json for JSON, unset/0 for silence).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace vlacnn::obs {

/// What VLACNN_METRICS asked for: kOff (unset/0/false/no/off), kText
/// (1/true/yes/on), kJson ("json"). Any other value throws at first query —
/// a typo must not silently disable the metrics a run was meant to collect.
enum class ReportMode { kOff, kText, kJson };

/// Current mode; first call parses VLACNN_METRICS, later calls are one load.
ReportMode metrics_mode();

/// True when any metrics collection is on. This is the hot-path gate.
bool metrics_enabled();

/// Programmatic override of the env knob (tests, bench_obs_overhead).
void set_metrics_mode(ReportMode mode);

/// Monotonic counter, sharded across cache lines so concurrent sweep workers
/// do not serialize on one atomic. add() is wait-free; value() sums shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_{};
};

/// Last-written value plus a high-water mark (set() and add() both update the
/// max, which is what queue-depth style gauges actually get read for).
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  void add(std::int64_t d) noexcept;
  std::int64_t value() const noexcept;
  std::int64_t max() const noexcept;
  void reset() noexcept;

 private:
  void raise_max(std::int64_t v) noexcept;
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Gauge over a double — for ratios and fractions (oracle gap, hit rates)
/// that an integer gauge would truncate to zero. Same discipline as Gauge:
/// relaxed atomics, references stay valid forever, reset() zeroes in place.
/// No max tracking — fractional gauges get read for their latest value.
class FloatGauge {
 public:
  void set(double v) noexcept;
  double value() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over unsigned values with fixed log2 buckets: bucket 0 holds the
/// value 0, bucket i >= 1 holds [2^(i-1), 2^i). 65 buckets cover the full
/// uint64 range, so observe() is a bit_width plus two relaxed adds — no
/// configuration, no resizing, no locks.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void observe(std::uint64_t v) noexcept;
  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  std::uint64_t bucket(std::size_t i) const noexcept;
  void reset() noexcept;

  /// Inclusive lower / exclusive upper value bound of bucket i (the last
  /// bucket's upper bound saturates at UINT64_MAX).
  static std::uint64_t bucket_lo(std::size_t i) noexcept;
  static std::uint64_t bucket_hi(std::size_t i) noexcept;

  /// Smallest bucket upper bound covering at least fraction q of the
  /// observations (an upper bound on the q-quantile). 0 when empty.
  std::uint64_t quantile_bound(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name -> instrument map. Lookup takes a mutex, so hot paths cache the
/// returned reference (function-local static) and only pay the atomic ops.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  FloatGauge& float_gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Human-readable dump of every instrument, sorted by name.
  std::string report_text() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} with only the
  /// non-empty histogram buckets listed as [lo, hi, count] triples.
  std::string report_json() const;

  /// Zero every instrument in place. References stay valid.
  void reset();

  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FloatGauge>> float_gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Idempotent: registers an atexit hook that prints Registry::global()'s
/// report to stderr when VLACNN_METRICS asks for one (plus a thread-pool
/// utilization summary). Called by the bench drivers' banner().
void install_exit_report();

/// The body of the exit hook, callable directly (tests parse its JSON output
/// back): writes the mode-appropriate report for Registry::global() to `out`.
/// No-op when the mode is kOff or the env value is invalid. The thread-pool
/// utilization epilogue needs the wall-clock epoch install_exit_report()
/// records; before that it is skipped.
void write_exit_report(std::FILE* out);

}  // namespace vlacnn::obs

// Tiny JSON emission helpers shared by every obs-layer writer (metrics
// report, Chrome-trace file, timeline JSONL). The obs layer sits below
// src/report in the link order, so it cannot use report/json.h; these mirror
// that header's escaping/number contract and a test pins the two together.
#pragma once

#include <string>

namespace vlacnn::obs {

/// Append `s` to `out` as a quoted JSON string. Escapes '"', '\\', the
/// common control shorthands (\n, \r, \t) and every other byte < 0x20 as
/// \u00xx; bytes >= 0x20 (including UTF-8 multibyte sequences) pass through
/// unchanged. The result is always parseable JSON, whatever the input.
void json_append_escaped(std::string& out, const std::string& s);

/// `s` as a standalone quoted JSON string.
std::string json_escaped(const std::string& s);

/// Append `v` rendered %.17g (round-trip exact for doubles); non-finite
/// values become `null` — inf/NaN are not valid JSON literals.
void json_append_number(std::string& out, double v);

}  // namespace vlacnn::obs

// Tracing half of the observability layer: an RAII Span records one timed
// phase of work and a Tracer collects spans as Chrome trace_event "complete"
// events ("ph":"X"), written as one JSON file that chrome://tracing and
// Perfetto load directly.
//
// Knob: VLACNN_TRACE=<file.json> enables the global tracer; unset means no
// file is ever created and a Span costs one relaxed load plus a branch.
// Spans do double duty: whenever metrics are on (VLACNN_METRICS), every span
// also feeds a "span.<name>.us" histogram in the global Registry, so the exit
// report shows per-phase timings even without a trace file.
//
// Events are buffered in memory (the sweep engine emits spans at simulation
// -point granularity, thousands per run, not millions) and written on close()
// or at Tracer destruction.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vlacnn::obs {

class Tracer {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  Tracer() = default;                        ///< disabled until open()
  explicit Tracer(const std::string& path);  ///< open(path) unless empty
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Start collecting; events will be written to `path` on close(). An empty
  /// path is a no-op. Reopening first closes (flushes) the previous file.
  void open(const std::string& path);

  /// Write the buffered events as Chrome trace JSON and disable. No-op when
  /// not open. Throws if the file cannot be written.
  void close();

  /// Microseconds since this tracer was constructed (steady clock).
  double now_us() const;

  /// Record one complete event. Thread-safe; no-op when disabled.
  void emit(const std::string& name, double ts_us, double dur_us,
            const Args& args);

  std::size_t event_count() const;

  /// Process-wide tracer; first use opens $VLACNN_TRACE when set.
  static Tracer& global();

 private:
  struct Event {
    std::string name;
    double ts_us = 0;
    double dur_us = 0;
    int tid = 0;
    Args args;
  };

  int tid_locked(std::thread::id id);
  void write_file_locked();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::string path_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
  std::chrono::steady_clock::time_point t0_ = std::chrono::steady_clock::now();
};

/// RAII span: times its own scope. Construction snapshots the clock when the
/// tracer or metrics are active; destruction emits the trace event and/or
/// observes the "span.<name>.us" histogram. Tag args (net, layer, algo, ...)
/// are only stored when active(), so callers guard expensive formatting with
/// `if (span.active())`.
class Span {
 public:
  explicit Span(std::string name, Tracer* tracer = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const noexcept { return trace_on_ || metrics_on_; }
  void arg(std::string key, std::string value);

 private:
  std::string name_;
  Tracer* tracer_;
  bool trace_on_ = false;
  bool metrics_on_ = false;
  double t0_us_ = 0;
  std::chrono::steady_clock::time_point start_{};
  Tracer::Args args_;
};

}  // namespace vlacnn::obs

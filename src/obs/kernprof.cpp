#include "obs/kernprof.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "obs/json_util.h"

namespace vlacnn::obs {

// -- env knobs ----------------------------------------------------------------

namespace {

std::mutex g_knob_mu;
bool g_path_parsed = false;
std::string g_path;
// -1 = not yet parsed; 0/1 mirror g_path.empty() for the lock-free gate.
std::atomic<int> g_enabled{-1};

bool g_interval_parsed = false;
double g_interval = 1e6;
bool g_interval_overridden = false;

double parse_interval_env() {
  const char* v = std::getenv("VLACNN_KERNPROF_INTERVAL");
  if (v == nullptr || *v == '\0') return 1e6;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0' || !std::isfinite(d) || !(d > 0)) {
    throw std::runtime_error("VLACNN_KERNPROF_INTERVAL: expected a positive "
                             "cycle count, got '" + std::string(v) + "'");
  }
  g_interval_overridden = true;
  return d;
}

}  // namespace

bool kernprof_enabled() {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    std::lock_guard<std::mutex> lk(g_knob_mu);
    if (!g_path_parsed) {
      const char* v = std::getenv("VLACNN_KERNPROF");
      g_path = v == nullptr ? "" : v;
      g_path_parsed = true;
    }
    e = g_path.empty() ? 0 : 1;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e != 0;
}

std::string kernprof_path() {
  kernprof_enabled();  // force the one-time env parse
  std::lock_guard<std::mutex> lk(g_knob_mu);
  return g_path;
}

void set_kernprof_path(const std::string& path) {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  g_path = path;
  g_path_parsed = true;
  g_enabled.store(path.empty() ? 0 : 1, std::memory_order_relaxed);
}

double kernprof_interval_cycles() {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  if (!g_interval_parsed) {
    g_interval = parse_interval_env();
    g_interval_parsed = true;
  }
  return g_interval;
}

bool kernprof_interval_overridden() {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  if (!g_interval_parsed) {
    g_interval = parse_interval_env();
    g_interval_parsed = true;
  }
  return g_interval_overridden;
}

void set_kernprof_interval_cycles(double cycles) {
  if (!(cycles > 0.0)) {
    throw std::invalid_argument(
        "set_kernprof_interval_cycles: interval must be positive");
  }
  std::lock_guard<std::mutex> lk(g_knob_mu);
  g_interval = cycles;
  g_interval_parsed = true;
  g_interval_overridden = true;
}

// -- profile records ----------------------------------------------------------

namespace {

void append_kv(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  json_append_number(out, v);
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, int v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, const std::string& v) {
  out += ",\"";
  out += key;
  out += "\":";
  json_append_escaped(out, v);
}

}  // namespace

std::string KernProfRun::to_jsonl() const {
  std::string out;
  out += "{\"type\":\"kernel\"";
  append_kv(out, "net", net);
  append_kv(out, "layer", layer);
  append_kv(out, "algo", algo);
  append_kv(out, "vlen_bits", static_cast<std::uint64_t>(vlen_bits));
  append_kv(out, "l2_bytes", l2_bytes);
  append_kv(out, "lanes", static_cast<std::uint64_t>(lanes));
  append_kv(out, "attach", attach);
  append_kv(out, "interval_cycles", interval_cycles);
  append_kv(out, "cycles", cycles);
  append_kv(out, "compute_cycles", compute_cycles);
  append_kv(out, "mem_issue_cycles", mem_issue_cycles);
  append_kv(out, "mem_stall_cycles", mem_stall_cycles);
  append_kv(out, "scalar_cycles", scalar_cycles);
  append_kv(out, "phase_count", static_cast<std::uint64_t>(phases.size()));
  append_kv(out, "window_count", static_cast<std::uint64_t>(windows.size()));
  out += "}\n";
  for (const KernProfPhase& p : phases) {
    out += "{\"type\":\"phase\"";
    append_kv(out, "name", p.name);
    append_kv(out, "cycles", p.cycles);
    append_kv(out, "raw_cycles", p.raw_cycles);
    append_kv(out, "compute_cycles", p.compute_cycles);
    append_kv(out, "mem_issue_cycles", p.mem_issue_cycles);
    append_kv(out, "mem_stall_cycles", p.mem_stall_cycles);
    append_kv(out, "scalar_cycles", p.scalar_cycles);
    append_kv(out, "vec_instructions", p.vec_instructions);
    append_kv(out, "vec_elems", p.vec_elems);
    append_kv(out, "avg_vl", p.avg_vl);
    append_kv(out, "flops", p.flops);
    append_kv(out, "l1_accesses", p.l1_accesses);
    append_kv(out, "l1_misses", p.l1_misses);
    append_kv(out, "l2_accesses", p.l2_accesses);
    append_kv(out, "l2_misses", p.l2_misses);
    append_kv(out, "mem_bytes", p.mem_bytes);
    out += "}\n";
  }
  for (const KernProfWindow& w : windows) {
    out += "{\"type\":\"window\"";
    append_kv(out, "t_start", w.t_start);
    append_kv(out, "t_end", w.t_end);
    append_kv(out, "compute_cycles", w.compute_cycles);
    append_kv(out, "mem_issue_cycles", w.mem_issue_cycles);
    append_kv(out, "mem_stall_cycles", w.mem_stall_cycles);
    append_kv(out, "scalar_cycles", w.scalar_cycles);
    append_kv(out, "avg_vl", w.avg_vl);
    append_kv(out, "lane_utilization", w.lane_utilization);
    append_kv(out, "l1_miss_rate", w.l1_miss_rate);
    append_kv(out, "l2_miss_rate", w.l2_miss_rate);
    append_kv(out, "dram_bytes_per_cycle", w.dram_bytes_per_cycle);
    append_kv(out, "mem_bytes", w.mem_bytes);
    out += "}\n";
  }
  return out;
}

// -- sink ---------------------------------------------------------------------

KernProfSink& KernProfSink::global() {
  static KernProfSink sink;
  return sink;
}

void KernProfSink::record(const std::string& label, std::string jsonl) {
  arm_kernprof_exit_write();
  std::lock_guard<std::mutex> lk(mu_);
  blocks_[label] = std::move(jsonl);
}

std::string KernProfSink::next_auto_label() {
  std::lock_guard<std::mutex> lk(mu_);
  char buf[24];
  std::snprintf(buf, sizeof buf, "run%06llu",
                static_cast<unsigned long long>(++auto_seq_));
  return buf;
}

std::string KernProfSink::write_file() {
  const std::string path = kernprof_path();
  if (path.empty()) {
    throw std::runtime_error(
        "KernProfSink::write_file: no output path (set VLACNN_KERNPROF)");
  }
  std::string out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [label, block] : blocks_) {
      out += "{\"type\":\"run\",\"label\":";
      json_append_escaped(out, label);
      out += "}\n";
      out += block;
    }
  }
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("KernProfSink::write_file: cannot open " + path);
  }
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = written == out.size() && std::fclose(f) == 0;
  if (!ok) {
    throw std::runtime_error("KernProfSink::write_file: short write to " +
                             path);
  }
  return path;
}

std::size_t KernProfSink::block_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return blocks_.size();
}

void KernProfSink::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  blocks_.clear();
  auto_seq_ = 0;
}

void arm_kernprof_exit_write() {
  static std::once_flag once;
  std::call_once(once, [] {
    KernProfSink::global();  // outlive any static that records during exit
    std::atexit([] {
      KernProfSink& sink = KernProfSink::global();
      if (sink.block_count() == 0 || !kernprof_enabled()) return;
      try {
        sink.write_file();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "vlacnn: kernprof write failed: %s\n", e.what());
      }
    });
  });
}

}  // namespace vlacnn::obs

// Kernel-profile (simulated PMU) emission for the timing model (DESIGN.md
// §14): when VLACNN_KERNPROF names an output file, every simulated
// convolution point attaches a Pmu (vpu/pmu.h) and records one JSONL block
// here — a "kernel" header with the grid-point identity and aggregate cycle
// split, one "phase" line per annotated algorithm phase (exact Sterbenz cycle
// partition + raw counter deltas), and one "window" line per PMU counter
// window (occupancy split, avg VL, lane utilization, L1/L2 miss rates, DRAM
// bytes/cycle — the miss-rate *trajectory* over the kernel's lifetime).
//
// Knobs, gated like VLACNN_TIMELINE (lazy parse, then one relaxed load):
//   VLACNN_KERNPROF=<file.jsonl>      enable and name the output file
//   VLACNN_KERNPROF_INTERVAL=<cycles> window cadence (default 1e6; > 0;
//                                     malformed values throw). Pinning the
//                                     interval also disables the PMU's
//                                     window auto-coarsening.
//
// This header is deliberately vpu-agnostic (plain strings and doubles): the
// obs layer sits at the bottom of the include order, so the simulation driver
// (algos/registry) converts Pmu state into these records. The process-wide
// KernProfSink buffers one block per labeled grid point in a sorted map and
// writes them in label order at exit, so a parallel sweep emits the same
// bytes as a serial one at any VLACNN_THREADS.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vlacnn::obs {

// -- env knobs ----------------------------------------------------------------

/// True when VLACNN_KERNPROF names an output file (or a path was set
/// programmatically). Hot-path gate: one relaxed load after the first call.
bool kernprof_enabled();

/// The JSONL output path ("" when disabled).
std::string kernprof_path();

/// Programmatic override of VLACNN_KERNPROF (tests). "" disables collection.
void set_kernprof_path(const std::string& path);

/// Window cadence from VLACNN_KERNPROF_INTERVAL (default 1e6 simulated
/// cycles). Throws std::runtime_error on a malformed or non-positive value —
/// a typo must not silently change a run's trajectory resolution.
double kernprof_interval_cycles();

/// True when the interval came from the env or a programmatic set — the PMU
/// then keeps the cadence pinned instead of auto-coarsening.
bool kernprof_interval_overridden();

/// Programmatic override of the cadence (tests). Must be positive.
void set_kernprof_interval_cycles(double cycles);

// -- profile records ----------------------------------------------------------

/// One annotated phase of one kernel run. `cycles` is the phase's share of
/// the exact Sterbenz partition (the per-run phase cycles fold right-to-left
/// to the kernel's aggregate cycles bit for bit); the remaining fields are
/// raw counter deltas accumulated over the phase's visits.
struct KernProfPhase {
  std::string name;
  double cycles = 0;
  double raw_cycles = 0;
  double compute_cycles = 0;
  double mem_issue_cycles = 0;
  double mem_stall_cycles = 0;
  double scalar_cycles = 0;
  double vec_instructions = 0;
  double vec_elems = 0;
  double avg_vl = 0;
  double flops = 0;
  double l1_accesses = 0;
  double l1_misses = 0;
  double l2_accesses = 0;
  double l2_misses = 0;
  double mem_bytes = 0;
};

/// One counter window [t_start, t_end) of one kernel run. Derived rates are
/// precomputed by the driver so the record is renderer-ready.
struct KernProfWindow {
  double t_start = 0;
  double t_end = 0;
  double compute_cycles = 0;
  double mem_issue_cycles = 0;
  double mem_stall_cycles = 0;
  double scalar_cycles = 0;
  double avg_vl = 0;
  double lane_utilization = 0;
  double l1_miss_rate = 0;
  double l2_miss_rate = 0;
  double dram_bytes_per_cycle = 0;
  double mem_bytes = 0;
};

/// One simulated grid point's complete kernel profile.
struct KernProfRun {
  std::string label;   ///< sink key; the sweep's entry-key grid-point label
  std::string net;     ///< "" when the point was simulated outside a network
  int layer = -1;
  std::string algo;
  std::uint32_t vlen_bits = 0;
  std::uint64_t l2_bytes = 0;
  std::uint32_t lanes = 0;
  std::string attach;  ///< "int" or "dec"
  double interval_cycles = 0;  ///< effective window cadence (post-coarsening)
  double cycles = 0;
  double compute_cycles = 0;
  double mem_issue_cycles = 0;
  double mem_stall_cycles = 0;
  double scalar_cycles = 0;
  std::vector<KernProfPhase> phases;
  std::vector<KernProfWindow> windows;

  /// The JSONL block: one "kernel" line, then "phase" and "window" lines.
  /// Byte-stable: fixed key order, %.17g numbers.
  std::string to_jsonl() const;
};

// -- sink ---------------------------------------------------------------------

/// Process-wide collection point for kernel-profile blocks, keyed by a
/// deterministic grid-point label. write_file() emits blocks in sorted label
/// order — the source of the THREADS byte-identity guarantee.
class KernProfSink {
 public:
  static KernProfSink& global();

  /// Buffer one grid point's JSONL block under `label` (last write wins — a
  /// grid point re-simulated concurrently carries identical bytes by the
  /// determinism guarantee). Arms the exit write on first use.
  void record(const std::string& label, std::string jsonl);

  /// "run000001", "run000002", ... for callers without a natural label.
  /// Deterministic only for serial callers; parallel drivers must label.
  std::string next_auto_label();

  /// Write every block to kernprof_path() in sorted label order; returns the
  /// path. Throws when disabled or on I/O failure.
  std::string write_file();

  std::size_t block_count() const;
  void reset();  ///< drop all blocks and the auto-label counter (tests)

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> blocks_;
  std::uint64_t auto_seq_ = 0;
};

/// Idempotent: registers an atexit hook that writes the sink to
/// kernprof_path() when enabled and non-empty. Called by
/// KernProfSink::record(); safe to call directly.
void arm_kernprof_exit_write();

}  // namespace vlacnn::obs

#include "obs/reqtrace.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "common/rng.h"
#include "obs/json_util.h"

namespace vlacnn::serving {
// Declared here instead of including serving/request_sim.h: the obs layer
// sits below serving in the include order, and the recorder needs exactly one
// function from it — the Sterbenz-exact splitter the latency attribution is
// built on (defined in serving/request_sim.cpp; same static library, so the
// reference always resolves). A test pins reqtrace's segment sums against the
// serving-side attribution, so the two cannot drift apart silently.
std::pair<double, double> exact_split(double total, double head_approx);
}  // namespace vlacnn::serving

namespace vlacnn::obs {

// -- env knobs ----------------------------------------------------------------

namespace {

std::mutex g_knob_mu;
bool g_path_parsed = false;
std::string g_path;
// -1 = not yet parsed; 0/1 mirror g_path.empty() for the lock-free gate.
std::atomic<int> g_enabled{-1};

bool g_top_k_parsed = false;
std::size_t g_top_k = 8;
bool g_head_parsed = false;
std::uint64_t g_head_every = 0;

std::uint64_t parse_u64_env(const char* name, std::uint64_t fallback,
                            std::uint64_t min_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || n < min_value) {
    throw std::runtime_error(std::string(name) + ": expected an integer >= " +
                             std::to_string(min_value) + ", got '" +
                             std::string(v) + "'");
  }
  return static_cast<std::uint64_t>(n);
}

}  // namespace

bool reqtrace_enabled() {
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    std::lock_guard<std::mutex> lk(g_knob_mu);
    if (!g_path_parsed) {
      const char* v = std::getenv("VLACNN_REQTRACE");
      g_path = v == nullptr ? "" : v;
      g_path_parsed = true;
    }
    e = g_path.empty() ? 0 : 1;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e != 0;
}

std::string reqtrace_path() {
  reqtrace_enabled();  // force the one-time env parse
  std::lock_guard<std::mutex> lk(g_knob_mu);
  return g_path;
}

void set_reqtrace_path(const std::string& path) {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  g_path = path;
  g_path_parsed = true;
  g_enabled.store(path.empty() ? 0 : 1, std::memory_order_relaxed);
}

std::size_t reqtrace_top_k() {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  if (!g_top_k_parsed) {
    g_top_k = static_cast<std::size_t>(
        parse_u64_env("VLACNN_REQTRACE_TOPK", 8, 1));
    g_top_k_parsed = true;
  }
  return g_top_k;
}

std::uint64_t reqtrace_head_every() {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  if (!g_head_parsed) {
    g_head_every = parse_u64_env("VLACNN_REQTRACE_HEAD", 0, 0);
    g_head_parsed = true;
  }
  return g_head_every;
}

void set_reqtrace_top_k(std::size_t k) {
  if (k < 1) {
    throw std::invalid_argument("set_reqtrace_top_k: top_k must be >= 1");
  }
  std::lock_guard<std::mutex> lk(g_knob_mu);
  g_top_k = k;
  g_top_k_parsed = true;
}

void set_reqtrace_head_every(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(g_knob_mu);
  g_head_every = n;
  g_head_parsed = true;
}

// -- trace records ------------------------------------------------------------

namespace {

void append_kv(std::string& out, const char* key, double v) {
  out += ",\"";
  out += key;
  out += "\":";
  json_append_number(out, v);
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, int v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, bool v) {
  out += ",\"";
  out += key;
  out += "\":";
  out += v ? "true" : "false";
}

}  // namespace

std::string keep_reasons_string(unsigned reasons) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (reasons & kKeepSlowest) add("slowest");
  if (reasons & kKeepDrop) add("drop");
  if (reasons & kKeepViolation) add("violation");
  if (reasons & kKeepHead) add("head");
  return out;
}

std::string RequestTrace::to_json() const {
  std::string out = "{\"type\":\"request\",\"id\":";
  out += std::to_string(trace_id);
  append_kv(out, "arrival", arrival);
  append_kv(out, "dispatch", dispatch);
  append_kv(out, "completion", completion);
  append_kv(out, "latency", latency());
  append_kv(out, "queue_wait", queue_wait);
  append_kv(out, "formation_wait", formation_wait);
  append_kv(out, "service", service);
  // Fleet-only keys, emitted only for routed traces: single-chip trace files
  // keep their exact historical bytes (the v1 line schema grows additively).
  if (chip >= 0) {
    append_kv(out, "router_hop", router_hop);
    append_kv(out, "chip", chip);
  }
  append_kv(out, "batch", batch);
  append_kv(out, "instance", instance);
  append_kv(out, "dropped", dropped);
  append_kv(out, "within_slo", within_slo);
  out += ",\"keep\":";
  json_append_escaped(out, keep_reasons_string(keep));
  out += ",\"layers\":[";
  bool first = true;
  for (const TraceSegment& seg : layers) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json_append_escaped(out, seg.name);
    out += ",\"cycles\":";
    json_append_number(out, seg.duration);
    out += '}';
  }
  out += "],\"notes\":[";
  first = true;
  for (const TraceNote& note : notes) {
    if (!first) out += ',';
    first = false;
    out += "{\"k\":";
    json_append_escaped(out, note.key);
    out += ",\"v\":";
    json_append_escaped(out, note.value);
    out += '}';
  }
  out += "]}";
  return out;
}

bool head_sampled(std::uint64_t trace_id, std::uint64_t every,
                  std::uint64_t seed) {
  if (every == 0) return false;
  if (every == 1) return true;
  // One splitmix64 step over (seed xor id): uncorrelated with the arrival
  // process's own stream, and a pure function of the id — so the decision is
  // identical whatever order completions drain in.
  Rng rng(seed ^ trace_id);
  return rng.next_below(every) == 0;
}

// -- tail-based sampler -------------------------------------------------------

TailSampler::TailSampler(std::size_t top_k) : top_k_(top_k) {}

void TailSampler::offer(RequestTrace&& t) {
  if (!t.dropped && top_k_ > 0) {
    const SlowKey key{t.latency(), t.trace_id};
    if (slowest_.size() < top_k_) {
      t.keep |= kKeepSlowest;
      slowest_.emplace(key, t.trace_id);
    } else if (slowest_.begin()->first < key) {
      // The new trace is slower than the fastest of the current top-k (ties
      // resolved by SlowKey so the lower id wins retention): evict that one
      // and drop its record unless another reason still holds it.
      const std::uint64_t victim = slowest_.begin()->second;
      slowest_.erase(slowest_.begin());
      auto it = kept_.find(victim);
      if (it != kept_.end()) {
        it->second.keep &= ~kKeepSlowest;
        if (it->second.keep == 0) kept_.erase(it);
      }
      t.keep |= kKeepSlowest;
      slowest_.emplace(key, t.trace_id);
    }
  }
  if (t.keep != 0) kept_.insert_or_assign(t.trace_id, std::move(t));
}

std::vector<RequestTrace> TailSampler::take() {
  std::vector<RequestTrace> out;
  out.reserve(kept_.size());
  for (auto& [id, t] : kept_) out.push_back(std::move(t));
  kept_.clear();
  slowest_.clear();
  return out;
}

// -- recorder -----------------------------------------------------------------

ReqTraceConfig default_reqtrace_config(double slo_cycles) {
  ReqTraceConfig cfg;
  cfg.top_k = reqtrace_top_k();
  cfg.head_every = reqtrace_head_every();
  cfg.slo_cycles = slo_cycles;
  return cfg;
}

std::vector<TraceSegment> split_service_span(
    double total, const std::vector<std::pair<std::string, double>>& layers) {
  std::vector<TraceSegment> out;
  if (layers.empty()) return out;
  out.reserve(layers.size());
  // Chain exact_split over the not-yet-assigned remainder: each layer's share
  // is its weight over the *remaining* weights, so proportions are honoured,
  // and because every cut is Sterbenz-exact the right-to-left fold of the
  // durations telescopes back to `total` bit for bit. (A left fold of naive
  // per-layer products would not: each product rounds independently.)
  double remaining = total;
  double weight_left = 0;
  for (const auto& [name, w] : layers) weight_left += w > 0 ? w : 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const double w = layers[i].second > 0 ? layers[i].second : 0;
    TraceSegment seg;
    seg.name = layers[i].first;
    if (i + 1 == layers.size()) {
      seg.duration = remaining;  // the last segment absorbs the remainder
    } else {
      const double approx =
          weight_left > 0 && std::isfinite(weight_left)
              ? remaining * (w / weight_left)
              : 0;
      const auto [head, tail] = serving::exact_split(remaining, approx);
      seg.duration = head;
      remaining = tail;
      weight_left -= w;
    }
    out.push_back(std::move(seg));
  }
  return out;
}

RequestTraceRecorder::RequestTraceRecorder(const ReqTraceConfig& cfg)
    : cfg_(cfg), sampler_(cfg.top_k), sketch_(cfg.sketch_relative_error) {}

void RequestTraceRecorder::on_drop(std::uint64_t id, double t) {
  ++offered_;
  ++dropped_;
  RequestTrace tr;
  tr.trace_id = id;
  tr.arrival = t;
  tr.dispatch = t;
  tr.completion = t;
  tr.dropped = true;
  tr.within_slo = false;  // a dropped request always misses its SLO
  tr.keep = kKeepDrop;
  if (head_sampled(id, cfg_.head_every, cfg_.head_seed)) tr.keep |= kKeepHead;
  sampler_.offer(std::move(tr));
}

void RequestTraceRecorder::on_completion(std::uint64_t id, double arrival,
                                         double dispatch, double completion,
                                         double queue_wait,
                                         double formation_wait, double service,
                                         bool within_slo, int batch,
                                         int instance,
                                         const std::vector<TraceNote>& notes) {
  on_completion_routed(id, arrival, dispatch, completion, /*router_hop=*/0.0,
                       queue_wait, formation_wait, service, within_slo, batch,
                       /*chip=*/-1, instance, notes);
}

void RequestTraceRecorder::on_completion_routed(
    std::uint64_t id, double arrival, double dispatch, double completion,
    double router_hop, double queue_wait, double formation_wait,
    double service, bool within_slo, int batch, int chip, int instance,
    const std::vector<TraceNote>& notes) {
  ++offered_;
  ++completed_;
  if (!within_slo) ++violations_;
  RequestTrace tr;
  tr.trace_id = id;
  tr.arrival = arrival;
  tr.dispatch = dispatch;
  tr.completion = completion;
  tr.queue_wait = queue_wait;
  tr.formation_wait = formation_wait;
  tr.service = service;
  tr.router_hop = router_hop;
  tr.chip = chip;
  tr.batch = batch;
  tr.instance = instance;
  tr.within_slo = within_slo;
  tr.layers = split_service_span(service, cfg_.service_layers);
  tr.notes = notes;
  if (!within_slo) tr.keep |= kKeepViolation;
  if (head_sampled(id, cfg_.head_every, cfg_.head_seed)) tr.keep |= kKeepHead;
  sketch_.observe(tr.latency(), id);
  sampler_.offer(std::move(tr));
}

void RequestTraceRecorder::finish() {
  if (finished_) return;
  finished_ = true;
  sampled_ = sampler_.take();
}

std::string RequestTraceRecorder::to_jsonl() const {
  std::string out = "{\"type\":\"header\",\"top_k\":";
  out += std::to_string(static_cast<std::uint64_t>(cfg_.top_k));
  append_kv(out, "head_every", cfg_.head_every);
  append_kv(out, "head_seed", cfg_.head_seed);
  append_kv(out, "slo_cycles", cfg_.slo_cycles);
  append_kv(out, "sketch_relative_error", cfg_.sketch_relative_error);
  append_kv(out, "offered", offered_);
  append_kv(out, "completed", completed_);
  append_kv(out, "dropped", dropped_);
  append_kv(out, "violations", violations_);
  append_kv(out, "sampled", static_cast<std::uint64_t>(sampled_.size()));
  append_kv(out, "layers",
            static_cast<std::uint64_t>(cfg_.service_layers.size()));
  out += "}\n";
  // Aggregate-to-concrete bridge: every tail (>= p90) latency bucket names
  // the slowest request it holds, whether or not the sampler retained it.
  for (const auto& [upper, ex] : sketch_.tail_exemplars(0.90)) {
    out += "{\"type\":\"exemplar\",\"bucket_upper\":";
    json_append_number(out, upper);
    append_kv(out, "latency", ex.value);
    append_kv(out, "id", ex.id);
    out += "}\n";
  }
  for (const RequestTrace& tr : sampled_) {
    out += tr.to_json();
    out += '\n';
  }
  return out;
}

// -- sink ---------------------------------------------------------------------

ReqTraceSink& ReqTraceSink::global() {
  static ReqTraceSink sink;
  return sink;
}

void ReqTraceSink::record(const std::string& label, std::string jsonl) {
  arm_reqtrace_exit_write();
  std::lock_guard<std::mutex> lk(mu_);
  blocks_[label] = std::move(jsonl);
}

std::string ReqTraceSink::next_auto_label() {
  std::lock_guard<std::mutex> lk(mu_);
  char buf[24];
  std::snprintf(buf, sizeof buf, "run%06llu",
                static_cast<unsigned long long>(++auto_seq_));
  return buf;
}

std::string ReqTraceSink::write_file() {
  const std::string path = reqtrace_path();
  if (path.empty()) {
    throw std::runtime_error(
        "ReqTraceSink::write_file: no output path (set VLACNN_REQTRACE)");
  }
  std::string out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [label, block] : blocks_) {
      out += "{\"type\":\"run\",\"label\":";
      json_append_escaped(out, label);
      out += "}\n";
      out += block;
    }
  }
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("ReqTraceSink::write_file: cannot open " + path);
  }
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = written == out.size() && std::fclose(f) == 0;
  if (!ok) {
    throw std::runtime_error("ReqTraceSink::write_file: short write to " +
                             path);
  }
  return path;
}

std::size_t ReqTraceSink::block_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return blocks_.size();
}

void ReqTraceSink::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  blocks_.clear();
  auto_seq_ = 0;
}

void arm_reqtrace_exit_write() {
  static std::once_flag once;
  std::call_once(once, [] {
    ReqTraceSink::global();  // outlive any static that records during exit
    std::atexit([] {
      ReqTraceSink& sink = ReqTraceSink::global();
      if (sink.block_count() == 0 || !reqtrace_enabled()) return;
      try {
        sink.write_file();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "vlacnn: reqtrace write failed: %s\n", e.what());
      }
    });
  });
}

}  // namespace vlacnn::obs

#include "obs/json_util.h"

#include <cmath>
#include <cstdio>

namespace vlacnn::obs {

void json_append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_append_escaped(out, s);
  return out;
}

void json_append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace vlacnn::obs

// Deterministic streaming quantile sketches for the timeline recorder
// (obs/timeline.h): a DDSketch-style log-bucket sketch over nonnegative
// doubles, plus a sliding window of per-interval sketches for rolling
// percentiles.
//
// Everything here is exactly reproducible: bucket boundaries are a pure
// function of (value, relative_error), counts are integers, and quantile
// queries walk buckets in sorted order — two runs that observe the same
// values in any order produce bit-identical answers. No randomness, no wall
// clock, no platform-dependent state (libm's log/pow are deterministic for a
// given build, which is the repo's reproducibility scope).
//
// Units follow the serving simulator: values are cycles. quantile() returns
// an *upper bound* on the true quantile — the closing boundary of the bucket
// holding the nearest-rank sample — within the configured relative error,
// mirroring the contract of obs::Histogram::quantile_bound.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

namespace vlacnn::obs {

/// An exemplar: the concrete observation a bucket remembers so aggregate
/// quantiles can be traced back to an identifiable event (the request-trace
/// layer attaches trace ids to latency buckets this way). Deterministic: a
/// bucket keeps its largest value, ties keep the lowest id.
struct SketchExemplar {
  double value = 0;
  std::uint64_t id = 0;
};

/// Log-bucket quantile sketch: value v > 0 lands in bucket
/// ceil(log(v) / log(gamma)) with gamma = (1 + e) / (1 - e), so every bucket's
/// bounds are within relative error e of any value it holds. Zero (and
/// negative inputs, which are clamped) get a dedicated exact bucket.
/// Memory is O(distinct buckets) — tens of entries for latency distributions
/// spanning several decades at the default 1% error.
class QuantileSketch {
 public:
  explicit QuantileSketch(double relative_error = 0.01);

  void observe(double v);

  /// observe(v) plus exemplar tracking: the bucket v lands in remembers the
  /// (value, id) with the largest value (ties keep the lowest id), so a tail
  /// bucket can name the single slowest event it holds. Values clamped to the
  /// exact-zero bucket carry no exemplar.
  void observe(double v, std::uint64_t exemplar_id);
  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double relative_error() const { return rel_err_; }

  /// Nearest-rank upper bound: the closing boundary of the bucket holding the
  /// ceil(q * count)-th smallest observation (q in (0, 1], clamped). 0 when
  /// empty or when the selected observation is the exact-zero bucket.
  double quantile(double q) const;

  /// Fold another sketch (same relative_error) into this one. Counts add;
  /// exemplars keep the larger value per bucket (ties keep the lowest id), so
  /// a merge answers exactly what single-shot insertion of both streams would.
  void merge(const QuantileSketch& other);

  void clear();

  /// The bucket index observe(v) uses, and a bucket's closing boundary
  /// gamma^index — exposed so tests can hand-compute expected quantiles.
  int bucket_index(double v) const;
  double bucket_upper(int index) const;

  /// Every bucket's remembered exemplar (buckets observed without an id are
  /// absent), keyed by bucket index — ascending value order.
  const std::map<int, SketchExemplar>& exemplar_buckets() const {
    return exemplars_;
  }

  /// Exemplars of the tail: every remembered exemplar whose bucket holds
  /// observations at or above the nearest-rank q-quantile, as
  /// (bucket_upper, exemplar) pairs in ascending bucket order. Empty when the
  /// sketch is empty, q selects the exact-zero bucket, or no tail bucket was
  /// observed with an id.
  std::vector<std::pair<double, SketchExemplar>> tail_exemplars(double q) const;

 private:
  double rel_err_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t count_ = 0;
  std::map<int, std::uint64_t> buckets_;
  std::map<int, SketchExemplar> exemplars_;
};

/// Rolling quantiles over the last `window_intervals` timeline intervals: the
/// recorder observes into the current interval's sketch and calls roll() at
/// each interval boundary; quantile() answers over the merged window.
class SlidingQuantile {
 public:
  SlidingQuantile(std::size_t window_intervals, double relative_error = 0.01);

  void observe(double v);

  /// Close the current interval and start a new one; the oldest interval
  /// falls out of the window once it holds window_intervals closed intervals.
  void roll();

  /// Quantile over the window *including* the still-open current interval.
  double quantile(double q) const;
  std::uint64_t count() const;
  std::size_t window_intervals() const { return window_; }

  void clear();

 private:
  std::size_t window_;
  double rel_err_;
  std::deque<QuantileSketch> intervals_;  ///< oldest front, current back
};

}  // namespace vlacnn::obs

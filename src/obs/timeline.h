// Time-resolved serving telemetry (DESIGN.md §12): a simulated-clock timeline
// recorder that the request-level serving simulator drives, turning one run's
// end-of-run aggregates into periodic snapshots of queue depth, drops,
// in-flight batches, utilization, arrival/completion rates, a rolling p99
// from a deterministic quantile sketch (obs/sketch.h), and SLO burn-rate /
// error-budget tracking with threshold-crossing alert events.
//
// Knobs, gated like VLACNN_METRICS (lazy parse, then one relaxed load):
//   VLACNN_TIMELINE=<file.jsonl>     enable and name the output file
//   VLACNN_TIMELINE_INTERVAL=<cyc>   snapshot cadence in cycles (default 1e6;
//                                    a malformed or non-positive value throws)
//
// Units: everything is simulated **cycles** — the recorder never reads a wall
// clock, so a timeline is byte-identical across runs and VLACNN_THREADS. The
// process-wide TimelineSink buffers one JSONL block per labeled simulation in
// a sorted map and writes them in label order at exit, mirroring
// report::Collector's determinism strategy: a parallel capacity-planner run
// emits the same bytes as a serial one.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sketch.h"

namespace vlacnn::obs {

// -- env knobs ----------------------------------------------------------------

/// True when VLACNN_TIMELINE names an output file (or a path was set
/// programmatically). Hot-path gate: one relaxed load after the first call.
bool timeline_enabled();

/// The JSONL output path ("" when disabled).
std::string timeline_path();

/// Programmatic override of VLACNN_TIMELINE (tests, --timeline CLI flag).
/// "" disables collection.
void set_timeline_path(const std::string& path);

/// Snapshot cadence from VLACNN_TIMELINE_INTERVAL (default 1e6 cycles).
/// Throws std::runtime_error on a malformed or non-positive value — a typo
/// must not silently distort the timeline a run was meant to collect.
double timeline_interval_cycles();

/// Programmatic override of the interval knob (tests). Must be positive.
void set_timeline_interval_cycles(double cycles);

/// True when the cadence was chosen explicitly (VLACNN_TIMELINE_INTERVAL in
/// the environment, or set_timeline_interval_cycles()). When false, drivers
/// with long simulated horizons are free to coarsen the default cadence so a
/// low-rate run cannot buffer millions of snapshot lines (the capacity
/// planner targets a bounded snapshot count per grid point).
bool timeline_interval_overridden();

// -- recorder -----------------------------------------------------------------

struct TimelineConfig {
  double interval_cycles = 1e6;     ///< snapshot cadence
  std::size_t rolling_window = 8;   ///< intervals merged for rolling p99 / burn
  double sketch_relative_error = 0.01;
  double slo_cycles = 0;            ///< 0 disables burn-rate tracking
  double attainment_target = 0.99;  ///< error budget = 1 - target
  double alert_threshold = 1.0;     ///< long-window burn rate that trips alerts
  int instances = 1;                ///< for utilization normalization
};

/// One interval's snapshot. Counts are per interval; *_rate fields are
/// count / (t_end - t_start); depth/in_flight are instantaneous at t_end;
/// mean_queue and utilization are time-weighted over the interval.
struct TimelineSnapshot {
  double t_start = 0, t_end = 0;  ///< cycles; the last interval may be partial
  std::uint64_t arrivals = 0;     ///< accepted into the queue
  std::uint64_t drops = 0;        ///< rejected at the queue bound
  std::uint64_t dispatches = 0;   ///< batches started
  std::uint64_t completions = 0;  ///< requests finished
  std::uint64_t queue_depth = 0;  ///< at t_end
  int in_flight = 0;              ///< busy instances at t_end
  double mean_queue = 0;          ///< time-weighted depth over the interval
  double utilization = 0;         ///< busy instance-cycles / (instances * dt)
  double arrival_rate = 0;        ///< accepted arrivals per cycle
  double completion_rate = 0;     ///< completions per cycle
  double rolling_p99 = 0;         ///< sketch bound over the rolling window
  std::uint64_t rolling_count = 0;  ///< latencies inside that window
  double burn_short = 0;          ///< this interval's burn rate
  double burn_long = 0;           ///< rolling-window burn rate
  bool alert = false;             ///< alert state after this interval
  std::uint64_t cum_offered = 0, cum_completed = 0, cum_dropped = 0;

  std::string to_json() const;  ///< one JSONL line, fixed key order
};

/// A burn-rate threshold crossing. kind is "alert" (long-window burn rate
/// reached the threshold) or "clear" (it fell back below).
struct TimelineAlert {
  double t = 0;           ///< the interval boundary that crossed
  bool raised = false;    ///< true = alert, false = clear
  double burn_rate = 0;   ///< the long-window burn rate at the crossing

  std::string to_json() const;
};

/// Single-simulation recorder. The event loop calls the on_*() hooks in
/// simulated-time order; each hook first advances interval boundaries up to
/// its timestamp (emitting snapshots) and then applies the event, so an event
/// exactly on a boundary lands in the *next* interval. Not thread-safe: one
/// recorder per simulation, like the arrival process.
///
/// Burn-rate semantics: both offered and missed are counted when a request
/// *resolves* (completes or is dropped), so an interval's burn rate is
/// missed-over-resolved within that interval —
///   burn = (missed / resolved) / (1 - attainment_target),
/// 0 when nothing resolved. burn == 1 means the error budget is being spent
/// exactly at the sustainable rate; alert events fire when the rolling-window
/// burn crosses cfg.alert_threshold (drops always count as missed).
class TimelineRecorder {
 public:
  explicit TimelineRecorder(const TimelineConfig& cfg);

  void on_arrival(double t);                 ///< request accepted into queue
  void on_drop(double t);                    ///< request rejected (queue full)
  void on_dispatch(double t, int batch);     ///< batch started on an instance
  void on_completion(double t, double latency_cycles, bool within_slo);
  void on_batch_done(double t);              ///< the dispatching instance freed

  /// Flush the trailing (possibly partial) interval. Idempotent; must be the
  /// last call. `t` is the simulation's final timestamp (stats makespan).
  /// When `t` lands exactly on a boundary the zero-width trailing interval is
  /// skipped unless events landed exactly at `t` (those are applied after the
  /// boundary closes, so they flush as a zero-width snapshot).
  void finish(double t);

  const TimelineConfig& config() const { return cfg_; }
  const std::vector<TimelineSnapshot>& snapshots() const { return snapshots_; }
  const std::vector<TimelineAlert>& alerts() const { return alerts_; }

  /// The full JSONL block: one header line, then snapshot and alert lines
  /// merged in time order (alerts directly after the snapshot that tripped
  /// them). Byte-stable: fixed key order, %.17g numbers.
  std::string to_jsonl() const;

 private:
  void integrate_to(double t);
  void advance(double t);
  void close_interval(double boundary, bool final_flush);

  TimelineConfig cfg_;
  double now_ = 0;
  double interval_start_ = 0;
  bool finished_ = false;

  // live state
  std::uint64_t queue_depth_ = 0;
  int in_flight_ = 0;

  // current-interval accumulators
  std::uint64_t iv_arrivals_ = 0, iv_drops_ = 0, iv_dispatches_ = 0,
                iv_completions_ = 0;
  std::uint64_t iv_resolved_ = 0, iv_missed_ = 0;
  double iv_queue_area_ = 0, iv_busy_area_ = 0;

  // cumulative
  std::uint64_t cum_offered_ = 0, cum_completed_ = 0, cum_dropped_ = 0;

  SlidingQuantile rolling_;
  /// (resolved, missed) per closed interval, newest at back; bounded by the
  /// rolling window.
  std::deque<std::pair<std::uint64_t, std::uint64_t>> burn_window_;
  bool alerting_ = false;

  std::vector<TimelineSnapshot> snapshots_;
  std::vector<TimelineAlert> alerts_;
};

/// Build the default recorder config for a simulation: interval from the env
/// knob, SLO/attainment from the caller. instances normalizes utilization.
TimelineConfig default_timeline_config(int instances, double slo_cycles);

// -- steady-state analysis ----------------------------------------------------

/// Warm-up detection + steady-state windowing + burn summary over one
/// recorded timeline — shared by the planner's report cell and the
/// `vlacnn-report timeline` renderer.
struct TimelineAnalysis {
  std::size_t warmup_snapshots = 0;  ///< snapshots before steady state
  double warmup_end_cycles = 0;      ///< t_end of the last warm-up snapshot
  double steady_arrival_rate = 0;    ///< means over the steady-state window
  double steady_completion_rate = 0;
  double steady_utilization = 0;
  double steady_mean_queue = 0;
  double final_rolling_p99 = 0;
  double max_burn_rate = 0;          ///< max long-window burn anywhere
  std::uint64_t alert_count = 0;     ///< raised alerts (clears not counted)
  double time_in_alert_cycles = 0;
};

/// Steady state starts at the first snapshot whose rolling p99 is within
/// `tolerance` (relative) of the final snapshot's rolling p99 — before that
/// the latency distribution is still filling in. An empty timeline yields a
/// default-constructed analysis.
TimelineAnalysis analyze_timeline(const std::vector<TimelineSnapshot>& snaps,
                                  const std::vector<TimelineAlert>& alerts,
                                  double tolerance = 0.10);

// -- sink ---------------------------------------------------------------------

/// Process-wide collection point for finished timelines, keyed by a
/// deterministic label (the capacity planner labels blocks by grid point;
/// unlabeled serial callers get a sequence label). write_file() emits blocks
/// in sorted label order — the source of the THREADS byte-identity guarantee.
class TimelineSink {
 public:
  static TimelineSink& global();

  /// Buffer one simulation's JSONL block under `label` (last write wins —
  /// by the determinism guarantee concurrent writers for a label carry
  /// identical bytes). Arms the exit write on first use.
  void record(const std::string& label, std::string jsonl);

  /// "run000001", "run000002", ... for callers without a natural label.
  /// Deterministic only for serial callers; parallel drivers must label.
  std::string next_auto_label();

  /// Write every block to timeline_path() in sorted label order; returns the
  /// path. Throws when disabled or on I/O failure.
  std::string write_file();

  std::size_t block_count() const;
  void reset();  ///< drop all blocks and the auto-label counter (tests)

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> blocks_;
  std::uint64_t auto_seq_ = 0;
};

/// Idempotent: registers an atexit hook that writes the sink to
/// timeline_path() when enabled and non-empty. Called by
/// TimelineSink::record(); safe to call directly.
void arm_timeline_exit_write();

}  // namespace vlacnn::obs

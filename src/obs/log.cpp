#include "obs/log.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace vlacnn::obs {

namespace {

LogLevel parse_log_env() {
  const char* v = std::getenv("VLACNN_LOG");
  if (v == nullptr) return LogLevel::kOff;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s.empty() || s == "off" || s == "0" || s == "false" || s == "no") {
    return LogLevel::kOff;
  }
  if (s == "info" || s == "1") return LogLevel::kInfo;
  if (s == "debug" || s == "2") return LogLevel::kDebug;
  throw std::runtime_error("VLACNN_LOG: unrecognized value '" + std::string(v) +
                           "' (expected off, info, or debug)");
}

// -1 = not yet parsed from the environment.
std::atomic<int> g_level{-1};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kOff: break;
  }
  return "off";
}

}  // namespace

LogLevel log_level() {
  int l = g_level.load(std::memory_order_relaxed);
  if (l < 0) {
    l = static_cast<int>(parse_log_env());
    int expected = -1;
    g_level.compare_exchange_strong(expected, l, std::memory_order_relaxed);
    l = g_level.load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(l);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel at, const char* component, const std::string& message,
         std::initializer_list<std::pair<const char*, std::string>> fields) {
  if (at == LogLevel::kOff || !log_enabled(at)) return;
  std::string line = "[vlacnn:";
  line += level_name(at);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  for (const auto& [key, value] : fields) {
    line += ' ';
    line += key;
    line += '=';
    const bool quote = value.find(' ') != std::string::npos || value.empty();
    if (quote) line += '"';
    line += value;
    if (quote) line += '"';
  }
  line += '\n';
  // One fputs per line: stderr is unbuffered but fputs of a whole string is
  // atomic enough that concurrent workers do not interleave mid-line.
  std::fputs(line.c_str(), stderr);
}

}  // namespace vlacnn::obs

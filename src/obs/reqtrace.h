// Per-request distributed tracing for the serving simulator (DESIGN.md §13):
// every request gets a trace id and a span record — queue wait, batch
// formation, service, per-layer service segments, plus annotation notes from
// the dispatch layer — buffered until the request reaches a terminal state
// and then passed through a deterministic *tail-based* sampler that keeps the
// k slowest completions, every drop, every SLO violation, and a seeded 1-in-N
// head sample. A latency sketch with exemplars (obs/sketch.h) links aggregate
// tail buckets back to concrete trace ids, so `vlacnn-report requests` can
// jump from "p99 degraded" to the one request that caused it.
//
// Knobs, gated like VLACNN_TIMELINE (lazy parse, then one relaxed load):
//   VLACNN_REQTRACE=<file.jsonl>  enable and name the output file
//   VLACNN_REQTRACE_TOPK=<k>      slowest-k retention (default 8; >= 1;
//                                 malformed values throw)
//   VLACNN_REQTRACE_HEAD=<n>      seeded 1-in-n head sample (default 0 = off;
//                                 malformed values throw)
//
// Units are simulated **cycles** throughout; nothing reads a wall clock. The
// exactness contract mirrors the Sterbenz latency attribution in
// serving/request_sim.h: for every sampled request
//   (queue_wait + formation_wait) + service == completion - arrival
// bit-exactly (left-to-right), and the per-layer segments — produced by a
// chain of exact_split()s — reconstitute the service span bit-exactly when
// folded back-to-front (right-to-left). The process-wide ReqTraceSink buffers
// one JSONL block per labeled simulation in a sorted map and writes them in
// label order at exit, so a parallel capacity-planner run emits the same
// bytes as a serial one at any VLACNN_THREADS.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/sketch.h"

namespace vlacnn::obs {

// -- env knobs ----------------------------------------------------------------

/// True when VLACNN_REQTRACE names an output file (or a path was set
/// programmatically). Hot-path gate: one relaxed load after the first call.
bool reqtrace_enabled();

/// The JSONL output path ("" when disabled).
std::string reqtrace_path();

/// Programmatic override of VLACNN_REQTRACE (tests, --reqtrace CLI flag).
/// "" disables collection.
void set_reqtrace_path(const std::string& path);

/// Slowest-k retention from VLACNN_REQTRACE_TOPK (default 8). Throws
/// std::runtime_error on a malformed or zero value — a typo must not silently
/// change what a run was meant to sample.
std::size_t reqtrace_top_k();

/// Head-sample period from VLACNN_REQTRACE_HEAD (default 0 = no head sample;
/// n >= 1 keeps a seeded 1-in-n sample of all offered requests). Throws
/// std::runtime_error on a malformed value.
std::uint64_t reqtrace_head_every();

/// Programmatic overrides of the sampling knobs (tests). top_k must be >= 1.
void set_reqtrace_top_k(std::size_t k);
void set_reqtrace_head_every(std::uint64_t n);

// -- trace records ------------------------------------------------------------

/// One key=value annotation attached to a traced request by the service model
/// (the learned dispatcher notes its plan, mispredictions, exploration state,
/// and selector charge here).
struct TraceNote {
  std::string key;
  std::string value;
};

/// Why the sampler retained a trace (a request can qualify several ways).
enum : unsigned {
  kKeepSlowest = 1u << 0,    ///< among the k slowest completions
  kKeepDrop = 1u << 1,       ///< rejected at the queue bound
  kKeepViolation = 1u << 2,  ///< completed past the SLO deadline
  kKeepHead = 1u << 3,       ///< seeded 1-in-N head sample
};

/// "slowest,drop,violation,head" subset, in that fixed order ("" when 0).
std::string keep_reasons_string(unsigned reasons);

/// One per-layer service segment of a traced request. Durations come from a
/// chain of exact_split()s over the service span: folding them back-to-front
/// (right-to-left) reconstitutes the span bit-exactly.
struct TraceSegment {
  std::string name;     ///< "conv<ordinal>/<algo>"
  double duration = 0;  ///< cycles
};

/// One request's complete trace. For completions the top-level spans are the
/// exact Sterbenz attribution; drops carry only the arrival timestamp
/// (arrival == completion, all spans zero). Fleet-routed traces (chip >= 0)
/// carry one extra leading span, the router hop, and the identity extends to
///   (router_hop + (queue_wait + formation_wait)) + service
///     == completion - arrival
/// left-to-right — the single-chip identity is its hop == 0 special case.
struct RequestTrace {
  std::uint64_t trace_id = 0;  ///< 1-based offered-arrival sequence number
  double arrival = 0;          ///< cycles: joined (or was rejected at) the queue
  double dispatch = 0;         ///< cycles: batch started
  double completion = 0;       ///< cycles: batch finished
  double queue_wait = 0;       ///< all-instances-busy share of the wait
  double formation_wait = 0;   ///< batching-policy (instance-idle) share
  double service = 0;          ///< in-service cycles
  double router_hop = 0;       ///< fleet front-end hop span (0 off-fleet)
  int chip = -1;               ///< serving fleet chip (-1 = not a fleet run)
  int batch = 0;               ///< batch size the request was served in
  int instance = -1;           ///< serving instance (-1 for drops)
  bool dropped = false;
  bool within_slo = true;
  unsigned keep = 0;                   ///< kKeep* reason mask
  std::vector<TraceSegment> layers;    ///< per-layer service segments
  std::vector<TraceNote> notes;        ///< dispatch annotations

  double latency() const { return completion - arrival; }

  /// One JSONL line, fixed key order, %.17g numbers.
  std::string to_json() const;
};

/// The deterministic head-sample decision: true when `every` >= 1 and the
/// seeded hash of trace_id selects this request (every == 1 keeps all).
/// A pure function of (trace_id, every, seed) — independent of thread count,
/// arrival order, and every other request.
bool head_sampled(std::uint64_t trace_id, std::uint64_t every,
                  std::uint64_t seed);

// -- tail-based sampler -------------------------------------------------------

/// Keeps every trace offered with a pre-set keep reason (drops, SLO
/// violations, head samples) plus the k slowest *completed* traces seen so
/// far. Fully deterministic: the k-slowest comparison is (latency, then lower
/// trace_id wins ties), so the retained set is a pure function of the offered
/// sequence. Memory is O(k + always-kept traces).
class TailSampler {
 public:
  explicit TailSampler(std::size_t top_k);

  /// Offer one terminal trace (keep flags for drop/violation/head already
  /// set). The sampler adds/removes kKeepSlowest as the top-k evolves;
  /// a trace with no remaining reason is discarded.
  void offer(RequestTrace&& t);

  /// All retained traces in ascending trace_id order. Call once, at the end.
  std::vector<RequestTrace> take();

  std::size_t top_k() const { return top_k_; }
  std::size_t retained() const { return kept_.size(); }

 private:
  /// Slowness order for the top-k set: latency ascending, ties broken so the
  /// *later* (higher-id) trace is evicted first — begin() is always the next
  /// trace to fall out.
  struct SlowKey {
    double latency;
    std::uint64_t trace_id;
    bool operator<(const SlowKey& o) const {
      if (latency != o.latency) return latency < o.latency;
      return trace_id > o.trace_id;
    }
  };

  std::size_t top_k_;
  std::map<SlowKey, std::uint64_t> slowest_;       ///< key -> trace_id
  std::map<std::uint64_t, RequestTrace> kept_;     ///< by trace_id
};

// -- recorder -----------------------------------------------------------------

/// Static configuration of one simulation's request tracing.
struct ReqTraceConfig {
  std::size_t top_k = 8;          ///< slowest-k retention
  std::uint64_t head_every = 0;   ///< 1-in-N head sample (0 = off)
  std::uint64_t head_seed = 0x7e1e5c0;  ///< head-sample hash seed
  double slo_cycles = 0;          ///< deadline for violation retention (0=off)
  double sketch_relative_error = 0.01;
  /// Per-conv-layer (label, cycles-per-image) weights used to subdivide each
  /// traced request's service span into per-layer segments. Empty = no layer
  /// segments. The weights are proportions; segments always reconstitute the
  /// actual service span exactly (see exact_split chaining).
  std::vector<std::pair<std::string, double>> service_layers;
};

/// Build the default config from the env knobs; slo_cycles from the caller.
ReqTraceConfig default_reqtrace_config(double slo_cycles);

/// Single-simulation recorder driven by the serving event loop. Not
/// thread-safe: one recorder per simulation, like the arrival process.
/// finish() seals the sampler; to_jsonl()/sampled() are valid after that.
class RequestTraceRecorder {
 public:
  explicit RequestTraceRecorder(const ReqTraceConfig& cfg);

  /// A request rejected at the queue bound. `id` is its 1-based offered
  /// sequence number (ServingStats::offered at the drop).
  void on_drop(std::uint64_t id, double t);

  /// A request served to completion, with the event loop's exact Sterbenz
  /// attribution. `notes` are the dispatch annotations captured when this
  /// request's batch was dispatched.
  void on_completion(std::uint64_t id, double arrival, double dispatch,
                     double completion, double queue_wait,
                     double formation_wait, double service, bool within_slo,
                     int batch, int instance,
                     const std::vector<TraceNote>& notes);

  /// The fleet-routed variant: additionally records the exact-split router
  /// hop span and the serving chip (>= 0), so the trace line carries the
  /// extended four-span attribution (see RequestTrace).
  void on_completion_routed(std::uint64_t id, double arrival, double dispatch,
                            double completion, double router_hop,
                            double queue_wait, double formation_wait,
                            double service, bool within_slo, int batch,
                            int chip, int instance,
                            const std::vector<TraceNote>& notes);

  /// Seal the sampler. Idempotent; must be the last mutating call.
  void finish();

  const ReqTraceConfig& config() const { return cfg_; }

  /// Retained traces in ascending trace_id order (valid after finish()).
  const std::vector<RequestTrace>& sampled() const { return sampled_; }

  /// The completion-latency sketch with trace-id exemplars.
  const QuantileSketch& latency_sketch() const { return sketch_; }

  std::uint64_t offered() const { return offered_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t violations() const { return violations_; }

  /// The full JSONL block: one header line, exemplar lines for the tail
  /// (p90 and beyond) of the latency sketch, then one line per retained
  /// request in trace_id order. Byte-stable: fixed key order, %.17g numbers.
  std::string to_jsonl() const;

 private:
  ReqTraceConfig cfg_;
  TailSampler sampler_;
  QuantileSketch sketch_;
  std::uint64_t offered_ = 0, completed_ = 0, dropped_ = 0, violations_ = 0;
  bool finished_ = false;
  std::vector<RequestTrace> sampled_;
};

/// Subdivide a service span of `total` cycles across `layers` weights by a
/// chain of exact_split()s: returned segments are proportional to the weights
/// and reconstitute `total` bit-exactly when folded right-to-left
/// (d[0] + (d[1] + (... + d[n-1]))). Exposed for tests; the recorder applies
/// it to every completed trace. Empty `layers` yields no segments;
/// non-positive weights count as zero (zero-duration segments, with the last
/// segment absorbing whatever remains — the whole span when every weight is
/// zero).
std::vector<TraceSegment> split_service_span(
    double total, const std::vector<std::pair<std::string, double>>& layers);

// -- sink ---------------------------------------------------------------------

/// Process-wide collection point for finished request-trace blocks, keyed by
/// a deterministic label (the capacity planner labels blocks by grid point;
/// unlabeled serial callers get a sequence label). write_file() emits blocks
/// in sorted label order — the source of the THREADS byte-identity guarantee.
class ReqTraceSink {
 public:
  static ReqTraceSink& global();

  /// Buffer one simulation's JSONL block under `label` (last write wins — by
  /// the determinism guarantee concurrent writers for a label carry identical
  /// bytes). Arms the exit write on first use.
  void record(const std::string& label, std::string jsonl);

  /// "run000001", "run000002", ... for callers without a natural label.
  /// Deterministic only for serial callers; parallel drivers must label.
  std::string next_auto_label();

  /// Write every block to reqtrace_path() in sorted label order; returns the
  /// path. Throws when disabled or on I/O failure.
  std::string write_file();

  std::size_t block_count() const;
  void reset();  ///< drop all blocks and the auto-label counter (tests)

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> blocks_;
  std::uint64_t auto_seq_ = 0;
};

/// Idempotent: registers an atexit hook that writes the sink to
/// reqtrace_path() when enabled and non-empty. Called by
/// ReqTraceSink::record(); safe to call directly.
void arm_reqtrace_exit_write();

}  // namespace vlacnn::obs

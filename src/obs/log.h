// Leveled structured logger for the sweep/serving engine.
//
// Knob: VLACNN_LOG=off|info|debug (default off; an unrecognized value throws,
// matching the strict parsing of VLACNN_THREADS and REPRO_EXACT). Lines go to
// stderr as `[vlacnn:<level>] <component>: <message> key=value ...` — one
// write per line, so concurrent sweep workers never interleave mid-line.
//
// log_enabled() is the hot-path gate: a relaxed load of the cached level.
#pragma once

#include <initializer_list>
#include <string>
#include <utility>

namespace vlacnn::obs {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2 };

/// Current level; first call parses VLACNN_LOG, later calls are one load.
LogLevel log_level();

/// Programmatic override of the env knob (tests).
void set_log_level(LogLevel level);

inline bool log_enabled(LogLevel at) {
  return static_cast<int>(log_level()) >= static_cast<int>(at);
}

/// Emit one structured line when `at` is enabled. Values containing spaces
/// are quoted so the line stays machine-splittable.
void log(LogLevel at, const char* component, const std::string& message,
         std::initializer_list<std::pair<const char*, std::string>> fields = {});

}  // namespace vlacnn::obs

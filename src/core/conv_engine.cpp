#include "core/conv_engine.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace vlacnn {

ConvEngine::ConvEngine(VpuConfig vpu, std::uint64_t l2_bytes)
    : vpu_(vpu),
      l2_bytes_(l2_bytes),
      selector_(std::make_shared<HeuristicSelector>()) {
  validate(vpu_);
}

void ConvEngine::set_selector(
    std::shared_ptr<const AlgorithmSelector> selector) {
  if (!selector) throw std::invalid_argument("conv_engine: null selector");
  selector_ = std::move(selector);
}

Algo ConvEngine::choose(const ConvLayerDesc& desc) const {
  return selector_->select(desc, vpu_.vlen_bits, l2_bytes_);
}

Tensor ConvEngine::run(const ConvLayerDesc& desc, const Tensor& input,
                       const std::vector<float>& weights_oihw,
                       std::optional<Algo> algo) const {
  const Algo a = algo.value_or(choose(desc));
  obs::Span span("engine.run");
  if (span.active()) span.arg("algo", to_string(a));
  if (obs::metrics_enabled()) {
    static obs::Counter& runs = obs::Registry::global().counter("engine.runs");
    runs.add();
  }
  return conv_functional(a, desc, input, weights_oihw, vpu_);
}

TimingStats ConvEngine::estimate(const ConvLayerDesc& desc, Algo algo) const {
  obs::Span span("engine.estimate");
  if (span.active()) span.arg("algo", to_string(algo));
  if (obs::metrics_enabled()) {
    static obs::Counter& estimates =
        obs::Registry::global().counter("engine.estimates");
    estimates.add();
  }
  SimConfig config = make_sim_config(vpu_.vlen_bits, l2_bytes_, vpu_.lanes,
                                     vpu_.attach);
  return conv_simulate(algo, desc, config);
}

}  // namespace vlacnn

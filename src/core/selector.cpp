#include "core/selector.h"

#include "ml/dataset.h"

namespace vlacnn {

Algo HeuristicSelector::select(const ConvLayerDesc& d, std::uint32_t vlen_bits,
                               std::uint64_t l2_bytes) const {
  (void)l2_bytes;
  // High-resolution, few input channels: Direct (layer-1 shape).
  if (d.ih >= 128 && d.ic * d.kw < static_cast<int>(vlen_bits / 32)) {
    return Algo::kDirect;
  }
  // 3x3 stride-1: Winograd, unless channels are too few for inter-tile
  // parallelism or the matrices are extremely skinny with huge channel counts.
  if (algo_applicable(Algo::kWinograd, d) && d.ic >= 4) {
    return Algo::kWinograd;
  }
  // Skinny matrices with many channels: blocked GEMM; otherwise 3-loop GEMM.
  if (d.gemm_n() < 4096 || d.gemm_k() >= 256) return Algo::kGemm6;
  return Algo::kGemm3;
}

ForestSelector ForestSelector::train(SweepDriver& driver,
                                     const std::vector<const Network*>& nets,
                                     const std::vector<std::uint32_t>& vlens,
                                     const std::vector<std::uint64_t>& l2_sizes,
                                     const ForestParams& params) {
  const Dataset ds = build_selection_dataset(driver, nets, vlens, l2_sizes);
  std::vector<std::size_t> all(ds.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  RandomForest forest;
  forest.fit(ds, all, params);
  return ForestSelector(std::move(forest));
}

Algo ForestSelector::select(const ConvLayerDesc& d, std::uint32_t vlen_bits,
                            std::uint64_t l2_bytes) const {
  const int label =
      forest_.predict(selection_features(vlen_bits, l2_bytes, d));
  Algo a = kAllAlgos[static_cast<std::size_t>(label) % kAllAlgos.size()];
  if (!algo_applicable(a, d)) a = Algo::kGemm6;
  return a;
}

}  // namespace vlacnn

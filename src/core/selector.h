// Runtime algorithm selection — the paper's primary contribution for model
// serving: pick the fastest convolution algorithm per layer given the layer's
// dimensions and the hardware's (vector length, L2 size).
//
// Two selectors are provided:
//  * HeuristicSelector — the rule-of-thumb baseline from the papers' analysis
//    (Winograd for 3x3 stride-1, Direct for high-resolution/low-channel, GEMM
//    for skinny matrices),
//  * ForestSelector — the random-forest classifier of Paper II Section 4.3
//    (12 features, depth-10 bagged CART trees, ~92.8% accuracy), trained from
//    the co-design sweep.
#pragma once

#include <memory>
#include <vector>

#include "algos/conv_args.h"
#include "ml/random_forest.h"
#include "sweep/sweep.h"
#include "vpu/vpu_config.h"

namespace vlacnn {

class AlgorithmSelector {
 public:
  virtual ~AlgorithmSelector() = default;

  /// Pick an algorithm for the layer; the result is always applicable.
  virtual Algo select(const ConvLayerDesc& desc, std::uint32_t vlen_bits,
                      std::uint64_t l2_bytes) const = 0;
};

/// Rule-based baseline distilled from the papers' per-layer findings.
class HeuristicSelector final : public AlgorithmSelector {
 public:
  Algo select(const ConvLayerDesc& desc, std::uint32_t vlen_bits,
              std::uint64_t l2_bytes) const override;
};

/// Random-forest selector. Train once per deployment (or load a pre-built
/// forest); selection itself is microseconds.
class ForestSelector final : public AlgorithmSelector {
 public:
  ForestSelector(RandomForest forest) : forest_(std::move(forest)) {}

  /// Train on the co-design sweep of the given networks and hardware grid.
  static ForestSelector train(SweepDriver& driver,
                              const std::vector<const Network*>& nets,
                              const std::vector<std::uint32_t>& vlens,
                              const std::vector<std::uint64_t>& l2_sizes,
                              const ForestParams& params = {});

  Algo select(const ConvLayerDesc& desc, std::uint32_t vlen_bits,
              std::uint64_t l2_bytes) const override;

  const RandomForest& forest() const { return forest_; }

 private:
  RandomForest forest_;
};

}  // namespace vlacnn

// ConvEngine: the library's front door.
//
// Configure it with a target vector architecture (vector length, lanes, L2
// size); it executes convolutional layers numerically with any of the four
// algorithms, predicts per-layer cycle costs on that architecture, and — given
// a selector — picks the best algorithm per layer automatically.
//
//   ConvEngine engine({.vlen_bits = 1024, .lanes = 8}, 4 << 20);
//   Tensor out = engine.run(desc, input, weights);          // auto-selected
//   TimingStats t = engine.estimate(desc, Algo::kWinograd); // what-if
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "algos/registry.h"
#include "core/selector.h"
#include "tensor/tensor.h"

namespace vlacnn {

class ConvEngine {
 public:
  explicit ConvEngine(VpuConfig vpu = {}, std::uint64_t l2_bytes = 1u << 20);

  /// Replace the default HeuristicSelector (e.g. with a trained ForestSelector).
  void set_selector(std::shared_ptr<const AlgorithmSelector> selector);

  const VpuConfig& vpu() const { return vpu_; }
  std::uint64_t l2_bytes() const { return l2_bytes_; }

  /// Algorithm the current selector picks for this layer.
  Algo choose(const ConvLayerDesc& desc) const;

  /// Execute numerically (NCHW in, OIHW weights, NCHW out). With no explicit
  /// algorithm, the selector chooses.
  Tensor run(const ConvLayerDesc& desc, const Tensor& input,
             const std::vector<float>& weights_oihw,
             std::optional<Algo> algo = std::nullopt) const;

  /// Predicted cycle cost of running this layer with this algorithm on the
  /// configured architecture (trace-driven simulation).
  TimingStats estimate(const ConvLayerDesc& desc, Algo algo) const;

 private:
  VpuConfig vpu_;
  std::uint64_t l2_bytes_;
  std::shared_ptr<const AlgorithmSelector> selector_;
};

}  // namespace vlacnn

#include "common/linalg.h"

#include <cmath>
#include <stdexcept>

namespace vlacnn {

Mat matmul(const Mat& a, const Mat& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Mat c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Mat transpose(const Mat& a) {
  Mat t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

std::vector<double> solve(Mat a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::invalid_argument("solve: shape");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a(r, col)) > std::fabs(a(pivot, col))) pivot = r;
    }
    if (std::fabs(a(pivot, col)) < 1e-14) {
      throw std::runtime_error("solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) a(r, j) -= f * a(col, j);
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

std::vector<double> least_squares(const Mat& a, const std::vector<double>& b) {
  if (a.rows() < a.cols() || b.size() != a.rows()) {
    throw std::invalid_argument("least_squares: shape");
  }
  Mat at = transpose(a);
  Mat ata = matmul(at, a);
  std::vector<double> atb(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t r = 0; r < a.rows(); ++r) atb[i] += at(i, r) * b[r];
  }
  return solve(ata, atb);
}

double residual_inf(const Mat& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = -b[i];
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    worst = std::max(worst, std::fabs(s));
  }
  return worst;
}

}  // namespace vlacnn

#include "common/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vlacnn {

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

int CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

CsvTable parse_csv(const std::string& text, const CsvReadOptions& opts) {
  CsvTable table;
  table.complete_tail = text.empty() || text.back() == '\n';

  // Collect non-empty lines with their 1-based line numbers first, so the
  // ragged-row check below knows which line is last.
  std::vector<std::pair<std::string, int>> lines;
  {
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      lines.emplace_back(std::move(line), line_no);
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    auto fields = split_line(lines[i].first);
    if (i == 0) {
      table.header = std::move(fields);
      continue;
    }
    if (fields.size() != table.header.size()) {
      if (opts.tolerate_partial_tail && i + 1 == lines.size()) {
        table.dropped_partial_tail = true;
        break;
      }
      throw std::runtime_error("csv: ragged row ('" + lines[i].first + "')");
    }
    table.rows.push_back(std::move(fields));
    table.row_lines.push_back(lines[i].second);
  }
  return table;
}

CsvTable read_csv_file(const std::string& path, const CsvReadOptions& opts) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str(), opts);
}

namespace {

void ensure_parent_dir(const std::string& path) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
}

void write_fields(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out << ',';
    out << fields[i];
  }
  out << '\n';
}

}  // namespace

void write_csv_file(const std::string& path, const CsvTable& table) {
  ensure_parent_dir(path);
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("csv: cannot write " + path);
  write_fields(out, table.header);
  for (const auto& row : table.rows) write_fields(out, row);
}

void append_csv_rows(const std::string& path,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows) {
  ensure_parent_dir(path);
  bool exists = std::filesystem::exists(path) &&
                std::filesystem::file_size(path) > 0;
  if (exists) {
    // Validate header compatibility before appending.
    std::ifstream in(path);
    std::string first_line;
    std::getline(in, first_line);
    CsvTable probe = parse_csv(first_line + "\n");
    if (probe.header != header) {
      throw std::runtime_error("csv: header mismatch appending to " + path);
    }
  }
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("csv: cannot append " + path);
  if (!exists) write_fields(out, header);
  for (const auto& row : rows) write_fields(out, row);
}

}  // namespace vlacnn

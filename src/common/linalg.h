// Small dense linear algebra: just enough to derive and verify Winograd
// transform matrices (Gaussian elimination with partial pivoting, normal-equation
// least squares). Sizes are tiny (n <= 8), so clarity beats blocking.
#pragma once

#include <cstddef>
#include <vector>

namespace vlacnn {

/// Row-major dense matrix of doubles.
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Dimension mismatch throws.
Mat matmul(const Mat& a, const Mat& b);

/// Transpose.
Mat transpose(const Mat& a);

/// Solve A x = b with Gaussian elimination + partial pivoting.
/// A must be square and nonsingular (throws otherwise).
std::vector<double> solve(Mat a, std::vector<double> b);

/// Least-squares solution of A x = b via normal equations (A: m x n, m >= n).
std::vector<double> least_squares(const Mat& a, const std::vector<double>& b);

/// max |A x - b| residual, for verifying solutions.
double residual_inf(const Mat& a, const std::vector<double>& x,
                    const std::vector<double>& b);

}  // namespace vlacnn

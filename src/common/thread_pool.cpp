#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vlacnn {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  // The calling thread always participates in parallel_for, so a pool on an
  // N-way machine only needs N-1 helpers to saturate it.
  const unsigned helpers = threads > 0 ? threads - 1 : 0;
  // Resolve the obs singletons before any worker exists: workers emit metrics
  // and spans, and touching the singletons here fixes static-destruction
  // order so they outlive the shared pool.
  obs::Registry& reg = obs::Registry::global();
  obs::Tracer::global();
  tasks_submitted_ = &reg.counter("thread_pool.tasks_submitted");
  tasks_executed_ = &reg.counter("thread_pool.tasks_executed");
  busy_us_ = &reg.counter("thread_pool.busy_us");
  queue_depth_ = &reg.gauge("thread_pool.queue_depth");
  reg.gauge("thread_pool.workers").set(helpers);
  obs::log(obs::LogLevel::kDebug, "thread_pool", "started",
           {{"workers", std::to_string(helpers)}});
  workers_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (obs::metrics_enabled()) {
    tasks_submitted_->add();
    queue_depth_->set(static_cast<std::int64_t>(depth));
  }
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    if (obs::metrics_enabled()) {
      queue_depth_->set(static_cast<std::int64_t>(depth));
      const auto t0 = std::chrono::steady_clock::now();
      task();
      busy_us_->add(static_cast<std::uint64_t>(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count()));
      tasks_executed_->add();
    } else {
      task();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared loop state: indices are claimed exactly once from `next`; `done`
  // counts completed calls. State is shared_ptr-owned because helper tasks
  // claimed from the queue after the loop has drained must still be able to
  // observe `next >= n` and return without touching freed memory (`fn` is only
  // dereferenced for claimed indices, all of which complete before we return).
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n;
    const std::function<void(std::size_t)>* fn;
    std::mutex m;
    std::condition_variable cv;
    std::exception_ptr err;  // first failure, guarded by m
  };
  auto st = std::make_shared<State>();
  st->n = n;
  st->fn = &fn;

  auto drain = [st] {
    for (;;) {
      const std::size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= st->n) return;
      try {
        (*st->fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(st->m);
        if (!st->err) st->err = std::current_exception();
      }
      if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 == st->n) {
        std::lock_guard<std::mutex> lk(st->m);
        st->cv.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(workers_.size(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i) submit(drain);
  drain();  // the caller works too; nested calls therefore cannot deadlock

  std::unique_lock<std::mutex> lk(st->m);
  st->cv.wait(lk, [&] { return st->done.load(std::memory_order_acquire) >= n; });
  if (st->err) std::rethrow_exception(st->err);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::default_threads() {
  if (const char* v = std::getenv("VLACNN_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || parsed < 1) {
      throw std::runtime_error(
          "VLACNN_THREADS: expected a positive integer, got '" +
          std::string(v) + "'");
    }
    return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace vlacnn

// Fixed-size worker pool behind the parallel sweep/serving engine.
//
// Two properties matter more than raw queueing throughput here:
//
//  * parallel_for is *nesting-safe*: the calling thread participates in its
//    own loop, so a pool task that itself calls parallel_for (the serving grid
//    fans out over points, each point fans out over layer x algorithm sweep
//    requests) degrades to inline execution instead of deadlocking when every
//    worker is busy.
//  * Determinism is the caller's job and is easy: parallel_for hands out the
//    half-open index range [0, n) exactly once each, so writing results into a
//    pre-sized vector slot per index reproduces the serial order bit-for-bit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vlacnn {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

class ThreadPool {
 public:
  /// `threads` == 0 picks default_threads(). A pool of size 0 is legal: every
  /// parallel_for then runs inline on the calling thread.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Tasks submitted but not yet claimed by a worker. A point-in-time
  /// snapshot: by the time the caller looks at it the workers may already
  /// have drained more. The obs queue-depth gauge reads the same number.
  std::size_t pending() const;

  /// Fire-and-forget task. Must not throw (exceptions terminate).
  void submit(std::function<void()> task);

  /// Run fn(0) .. fn(n-1) across the pool and the calling thread; returns when
  /// all n calls finished. The first exception thrown by any call is rethrown
  /// on the caller after the loop drains. Safe to call from inside pool tasks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool used by the sweep and serving engines. Sized by
  /// default_threads() on first use.
  static ThreadPool& shared();

  /// VLACNN_THREADS env var if set (>= 1), else hardware_concurrency().
  static unsigned default_threads();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // Cached obs instruments (resolved once in the constructor, which also pins
  // the Registry's construction before any worker starts — so the registry
  // outlives the workers during static destruction).
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Counter* tasks_executed_ = nullptr;
  obs::Counter* busy_us_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace vlacnn

#include "common/rng.h"

#include <cmath>

namespace vlacnn {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection-free 128-bit multiply trick (Lemire); bias is negligible for the
  // sizes used here but we keep the multiply-shift for speed and determinism.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
}

float Rng::next_float() {
  // 24 high bits -> [0,1) with full float precision.
  return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

float Rng::normal() {
  float u1 = next_float();
  float u2 = next_float();
  if (u1 < 1e-12f) u1 = 1e-12f;
  return std::sqrt(-2.0f * std::log(u1)) *
         std::cos(6.283185307179586f * u2);
}

void Rng::shuffle(std::vector<std::size_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(next_below(i));
    std::swap(v[i - 1], v[j]);
  }
}

void fill_uniform(Rng& rng, float* data, std::size_t n, float lo, float hi) {
  for (std::size_t i = 0; i < n; ++i) data[i] = rng.uniform(lo, hi);
}

}  // namespace vlacnn

// Deterministic random number generation.
//
// All stochastic pieces of the library (synthetic weights/inputs, random-forest
// bootstrapping, cross-validation shuffles) draw from this splitmix64/xoshiro-style
// generator so that every experiment is reproducible bit-for-bit across runs and
// platforms, independent of the C++ standard library's distribution implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace vlacnn {

/// Small, fast, reproducible PRNG (splitmix64 core).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform float in [0, 1).
  float next_float();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal via Box-Muller (uses two uniforms; no cached spare to keep
  /// the state trivially serializable).
  float normal();

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

 private:
  std::uint64_t state_;
};

/// Fill a span of floats with uniform values in [lo, hi).
void fill_uniform(Rng& rng, float* data, std::size_t n, float lo, float hi);

}  // namespace vlacnn

// Minimal CSV reading/writing used by the sweep results cache and the ML dataset.
//
// The format is deliberately restricted: no quoting, no embedded commas in fields.
// Every producer in this library writes plain numeric/identifier fields, so the
// restriction is enforced rather than worked around.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vlacnn {

/// One parsed CSV table: a header row and string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a column by name; -1 if absent.
  int column(const std::string& name) const;
};

/// Parse CSV text. Throws std::runtime_error on ragged rows.
CsvTable parse_csv(const std::string& text);

/// Read a CSV file; returns empty table if the file does not exist.
CsvTable read_csv_file(const std::string& path);

/// Serialize and write a table. Creates parent directory if needed.
void write_csv_file(const std::string& path, const CsvTable& table);

/// Append rows to an existing CSV file (writing the header if the file is new).
/// Header mismatch with an existing file throws.
void append_csv_rows(const std::string& path,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows);

}  // namespace vlacnn

// Minimal CSV reading/writing used by the sweep results cache and the ML dataset.
//
// The format is deliberately restricted: no quoting, no embedded commas in fields.
// Every producer in this library writes plain numeric/identifier fields, so the
// restriction is enforced rather than worked around.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace vlacnn {

/// One parsed CSV table: a header row and string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// 1-based source line number of each entry in `rows` (header is line 1
  /// unless blank lines precede it). Parallel to `rows`.
  std::vector<int> row_lines;

  /// True when lenient parsing skipped a ragged final line (see
  /// CsvReadOptions::tolerate_partial_tail).
  bool dropped_partial_tail = false;

  /// True when the input ended with a newline (or was empty). A false value
  /// means the last line may have been cut mid-write; callers that append to
  /// the file should treat that final row as suspect.
  bool complete_tail = true;

  /// Index of a column by name; -1 if absent.
  int column(const std::string& name) const;
};

struct CsvReadOptions {
  /// A writer killed mid-append leaves a truncated final line. With this set,
  /// a final row whose field count does not match the header is dropped (and
  /// flagged via CsvTable::dropped_partial_tail) instead of throwing. Ragged
  /// rows anywhere else still throw: those indicate corruption, not a
  /// truncated append.
  bool tolerate_partial_tail = false;
};

/// Parse CSV text. Throws std::runtime_error on ragged rows (subject to
/// `opts.tolerate_partial_tail` for the final line).
CsvTable parse_csv(const std::string& text, const CsvReadOptions& opts = {});

/// Read a CSV file; returns empty table if the file does not exist.
CsvTable read_csv_file(const std::string& path, const CsvReadOptions& opts = {});

/// Serialize and write a table. Creates parent directory if needed.
void write_csv_file(const std::string& path, const CsvTable& table);

/// Append rows to an existing CSV file (writing the header if the file is new).
/// Header mismatch with an existing file throws.
void append_csv_rows(const std::string& path,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows);

}  // namespace vlacnn

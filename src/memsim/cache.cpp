#include "memsim/cache.h"

#include <stdexcept>

namespace vlacnn {

namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config), ways_(config.ways) {
  if (config.size_bytes % (static_cast<std::uint64_t>(config.line_bytes) * config.ways) != 0) {
    throw std::invalid_argument("cache: size must be a multiple of line*ways");
  }
  const std::uint64_t sets = config.num_sets();
  if (!is_pow2(sets)) throw std::invalid_argument("cache: num_sets must be pow2");
  set_mask_ = sets - 1;
  tags_.assign(sets * ways_, kInvalidTag);
  dirty_.assign(sets * ways_, 0);
}

ProbeResult Cache::probe(std::uint64_t line_addr, bool write) {
  ++accesses_;
  const std::uint64_t set = line_addr & set_mask_;
  std::uint64_t* tags = &tags_[set * ways_];
  std::uint8_t* dirty = &dirty_[set * ways_];

  // Search; slot 0 is most recently used.
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (tags[w] == line_addr) {
      // Move-to-front, carrying the dirty bit.
      std::uint8_t d = static_cast<std::uint8_t>(dirty[w] | (write ? 1 : 0));
      for (std::uint32_t k = w; k > 0; --k) {
        tags[k] = tags[k - 1];
        dirty[k] = dirty[k - 1];
      }
      tags[0] = line_addr;
      dirty[0] = d;
      return {true, false, 0};
    }
  }

  // Miss: evict LRU (last slot), shift, insert at front.
  ++misses_;
  const bool victim_valid = tags[ways_ - 1] != kInvalidTag;
  const bool writeback = victim_valid && dirty[ways_ - 1] != 0;
  const std::uint64_t victim = writeback ? tags[ways_ - 1] : 0;
  for (std::uint32_t k = ways_ - 1; k > 0; --k) {
    tags[k] = tags[k - 1];
    dirty[k] = dirty[k - 1];
  }
  tags[0] = line_addr;
  dirty[0] = write ? 1 : 0;
  return {false, writeback, victim};
}

void Cache::reset() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  accesses_ = 0;
  misses_ = 0;
}

}  // namespace vlacnn

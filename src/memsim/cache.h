// Set-associative cache model with LRU replacement.
//
// This is the capacity/conflict-behaviour half of the gem5 substitute: the VPU
// timing model (src/vpu/timing_model.h) turns the hit/miss outcomes produced here
// into stall cycles. The cache is a tag-only model (no data payloads) probed at
// cache-line granularity, which is what makes trace-driven simulation of full
// convolutional layers affordable.
#pragma once

#include <cstdint>
#include <vector>

namespace vlacnn {

/// Static parameters of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 1u << 20;
  std::uint32_t ways = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t latency_cycles = 20;  ///< access latency when this level hits

  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
  std::uint64_t num_sets() const { return num_lines() / ways; }
};

/// Outcome of a single line probe.
struct ProbeResult {
  bool hit = false;
  bool writeback = false;       ///< a dirty line was evicted by this fill
  std::uint64_t victim_line = 0;  ///< line address of the evicted dirty victim
};

/// One cache level. Tags only; LRU within each set via move-to-front.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Probe one line address (already shifted by line bits). On miss the line is
  /// filled, evicting the LRU way.
  ProbeResult probe(std::uint64_t line_addr, bool write);

  /// Invalidate all contents and zero statistics.
  void reset();

  const CacheConfig& config() const { return config_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const {
    return accesses_ ? static_cast<double>(misses_) / static_cast<double>(accesses_)
                     : 0.0;
  }

 private:
  CacheConfig config_;
  std::uint32_t set_shift_ = 0;   // log2(num_sets) not needed; we mask
  std::uint64_t set_mask_ = 0;
  std::uint32_t ways_ = 0;
  // Per set: `ways_` tag slots ordered most-recent-first, plus dirty bits.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> dirty_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;

  static constexpr std::uint64_t kInvalidTag = ~0ull;
};

}  // namespace vlacnn

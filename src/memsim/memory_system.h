// Two-level memory hierarchy seen by the (scalar core + vector unit).
//
// Two attachment styles are modelled, matching the two micro-architectures in the
// papers:
//   * kIntegratedL1 (Paper II's RVV fork, ARM-SVE): vector accesses go through
//     L1 -> L2 -> memory.
//   * kDecoupledL2 (Paper I's RVV@gem5): the VPU hangs off the L2 with a tiny
//     2 KB vector buffer in front of it; L1 is bypassed for vector traffic.
//
// The hierarchy is non-inclusive and tag-only; dirty evictions are propagated so
// write-back traffic shows up in the memory-bandwidth accounting.
#pragma once

#include <cstdint>

#include "memsim/cache.h"

namespace vlacnn {

/// Where vector memory operations enter the hierarchy.
enum class VpuAttach { kIntegratedL1, kDecoupledL2 };

/// Full hierarchy parameters.
struct MemConfig {
  CacheConfig l1{64u << 10, 4, 64, 4};
  CacheConfig l2{1u << 20, 8, 64, 20};
  /// 2 KB buffer between a decoupled VPU and L2 (Paper I, Section III.A).
  CacheConfig vbuf{2u << 10, 4, 64, 1};
  std::uint32_t mem_latency_cycles = 200;  ///< DRAM round-trip at 2 GHz
  double mem_bytes_per_cycle = 6.4;        ///< 12.8 GB/s at 2 GHz (Paper II)
  VpuAttach attach = VpuAttach::kIntegratedL1;
};

/// Aggregate outcome of one (possibly multi-line) access.
struct AccessResult {
  std::uint32_t lines = 0;
  std::uint32_t l1_misses = 0;  ///< misses at the first level probed (L1 or vbuf)
  std::uint32_t l2_misses = 0;  ///< misses that went to memory
  std::uint64_t mem_bytes = 0;  ///< bytes moved to/from DRAM (fills + writebacks)
};

/// The hierarchy itself. Probe-level statistics live in the member caches;
/// scaled, per-experiment statistics are kept by the TimingModel.
class MemorySystem {
 public:
  explicit MemorySystem(const MemConfig& config);

  /// Rolls the per-level probe statistics (accesses, misses, DRAM bytes) into
  /// the global obs counters when metrics are on. Every simulation point owns
  /// a fresh MemorySystem, so the roll-up happens exactly once per point.
  ~MemorySystem();

  /// Access [addr, addr+bytes) as vector traffic (enters at the configured
  /// attachment point).
  AccessResult vector_access(std::uint64_t addr, std::uint64_t bytes, bool write);

  /// Access as scalar-core traffic (always via L1).
  AccessResult scalar_access(std::uint64_t addr, std::uint64_t bytes, bool write);

  /// Touch a range for software prefetch: same path as a read but the caller's
  /// timing model treats it as non-blocking.
  AccessResult prefetch(std::uint64_t addr, std::uint64_t bytes);

  void reset();

  const MemConfig& config() const { return config_; }
  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  const Cache& vbuf() const { return vbuf_; }
  std::uint64_t mem_bytes_total() const { return mem_bytes_total_; }

 private:
  AccessResult access_via(Cache* first, std::uint64_t addr, std::uint64_t bytes,
                          bool write);

  MemConfig config_;
  Cache l1_;
  Cache l2_;
  Cache vbuf_;
  std::uint64_t mem_bytes_total_ = 0;
};

}  // namespace vlacnn

#include "memsim/memory_system.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace vlacnn {

MemorySystem::MemorySystem(const MemConfig& config)
    : config_(config), l1_(config.l1), l2_(config.l2), vbuf_(config.vbuf) {
  // The timing model divides DRAM traffic by this peak bandwidth; zero would
  // silently turn every bandwidth term into inf.
  if (!(config.mem_bytes_per_cycle > 0.0))
    throw std::invalid_argument("memsim: mem_bytes_per_cycle must be positive");
}

MemorySystem::~MemorySystem() {
  if (!obs::metrics_enabled()) return;
  // Unscaled probe-level truth (the TimingModel keeps the sampled-and-scaled
  // view); aggregated across every simulation point of the run.
  struct Roll {
    obs::Counter& l1_acc;
    obs::Counter& l1_miss;
    obs::Counter& l2_acc;
    obs::Counter& l2_miss;
    obs::Counter& vbuf_acc;
    obs::Counter& vbuf_miss;
    obs::Counter& mem_bytes;
  };
  static Roll roll = [] {
    obs::Registry& reg = obs::Registry::global();
    return Roll{reg.counter("memsim.l1_accesses"),
                reg.counter("memsim.l1_misses"),
                reg.counter("memsim.l2_accesses"),
                reg.counter("memsim.l2_misses"),
                reg.counter("memsim.vbuf_accesses"),
                reg.counter("memsim.vbuf_misses"),
                reg.counter("memsim.mem_bytes")};
  }();
  roll.l1_acc.add(l1_.accesses());
  roll.l1_miss.add(l1_.misses());
  roll.l2_acc.add(l2_.accesses());
  roll.l2_miss.add(l2_.misses());
  roll.vbuf_acc.add(vbuf_.accesses());
  roll.vbuf_miss.add(vbuf_.misses());
  roll.mem_bytes.add(mem_bytes_total_);
}

AccessResult MemorySystem::access_via(Cache* first, std::uint64_t addr,
                                      std::uint64_t bytes, bool write) {
  AccessResult out;
  if (bytes == 0) return out;
  const std::uint32_t line_bytes = config_.l2.line_bytes;
  const std::uint64_t first_line = addr / line_bytes;
  const std::uint64_t last_line = (addr + bytes - 1) / line_bytes;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    ++out.lines;
    bool to_l2 = true;
    ProbeResult p1;
    if (first != nullptr) {
      p1 = first->probe(line, write);
      if (p1.hit) {
        to_l2 = false;
      } else {
        ++out.l1_misses;
      }
    }
    if (to_l2) {
      ProbeResult p2 = l2_.probe(line, first == nullptr ? write : false);
      if (!p2.hit) {
        ++out.l2_misses;
        out.mem_bytes += line_bytes;  // fill from DRAM
      }
      if (p2.writeback) out.mem_bytes += line_bytes;  // dirty victim to DRAM
    }
    // A dirty victim evicted from the first level lands in L2 at the victim's
    // own address (whole-line dirty write: allocate without a DRAM fill).
    if (p1.writeback) {
      ProbeResult wb = l2_.probe(p1.victim_line, true);
      if (wb.writeback) out.mem_bytes += line_bytes;
    }
  }
  // When there is no first-level cache in the path, L2 misses are also the
  // "first level" misses from the VPU's point of view.
  if (first == nullptr) out.l1_misses = out.l2_misses;
  mem_bytes_total_ += out.mem_bytes;
  return out;
}

AccessResult MemorySystem::vector_access(std::uint64_t addr, std::uint64_t bytes,
                                         bool write) {
  if (config_.attach == VpuAttach::kIntegratedL1) {
    return access_via(&l1_, addr, bytes, write);
  }
  return access_via(&vbuf_, addr, bytes, write);
}

AccessResult MemorySystem::scalar_access(std::uint64_t addr, std::uint64_t bytes,
                                         bool write) {
  return access_via(&l1_, addr, bytes, write);
}

AccessResult MemorySystem::prefetch(std::uint64_t addr, std::uint64_t bytes) {
  // Prefetches warm the same path a demand read would take.
  return vector_access(addr, bytes, false);
}

void MemorySystem::reset() {
  l1_.reset();
  l2_.reset();
  vbuf_.reset();
  mem_bytes_total_ = 0;
}

}  // namespace vlacnn

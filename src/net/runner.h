// Network execution:
//   * functional inference (all layer types, synthetic weights) — used by the
//     example applications and end-to-end tests,
//   * timing profile — per-convolutional-layer simulation, the building block
//     of every whole-network figure (execution time of a network = sum of its
//     conv layers, which dominate inference: ~96% for YOLOv3, ~64% for VGG-16).
#pragma once

#include <vector>

#include "algos/registry.h"
#include "net/network.h"
#include "tensor/tensor.h"

namespace vlacnn {

/// Synthetic parameters for every parameterised layer.
struct NetWeights {
  // Per conv layer (indexed like Network::conv_layers()): OIHW weights + bias.
  std::vector<std::vector<float>> conv_weights;
  std::vector<std::vector<float>> conv_bias;
  // Per connected layer: out x in matrix + bias.
  std::vector<std::vector<float>> fc_weights;
  std::vector<std::vector<float>> fc_bias;
};

/// Seeded random weights with magnitudes ~ He initialisation (keeps
/// activations in a numerically healthy range through deep stacks).
NetWeights make_random_weights(const Network& net, std::uint64_t seed);

/// Per-conv-layer algorithm plan. `fixed` applies one algorithm everywhere,
/// falling back to gemm6 where it is inapplicable (the paper's "Winograd*").
std::vector<Algo> uniform_plan(const Network& net, Algo fixed);

/// Run inference numerically. `plan` has one entry per conv layer.
/// Returns the final layer's output tensor.
Tensor run_inference(const Network& net, const NetWeights& weights,
                     const Tensor& input, const std::vector<Algo>& plan,
                     const VpuConfig& vpu);

/// Timing of one conv layer within a network profile.
struct LayerTiming {
  int layer_index = 0;  ///< index into Network::layers()
  Algo algo = Algo::kGemm6;
  TimingStats stats;
};

struct NetworkTiming {
  std::vector<LayerTiming> conv_layers;
  double total_cycles = 0;
};

/// Simulate every conv layer under `config` with the given per-conv plan.
NetworkTiming profile_network(const Network& net, const SimConfig& config,
                              const std::vector<Algo>& plan);

}  // namespace vlacnn

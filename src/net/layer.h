// Network layer substrate (the Darknet substitute): the five layer types
// YOLOv3 uses (convolutional, shortcut, upsample, route, yolo-head — the last
// modelled as pass-through) plus VGG-16's maxpool / fully-connected / softmax.
#pragma once

#include <string>
#include <vector>

#include "tensor/conv_desc.h"

namespace vlacnn {

enum class LayerKind {
  kConv,
  kMaxPool,
  kAvgPool,   // global average pool
  kShortcut,  // residual add with an earlier layer's output
  kUpsample,
  kRoute,     // channel concatenation of earlier layers
  kConnected, // fully connected
  kSoftmax,
  kYolo,      // detection head: pass-through for performance purposes
};

enum class Activation { kLinear, kRelu, kLeaky };

struct Shape3 {
  int c = 0, h = 0, w = 0;
  std::uint64_t elems() const {
    return static_cast<std::uint64_t>(c) * h * w;
  }
};

struct Layer {
  LayerKind kind = LayerKind::kConv;
  Activation activation = Activation::kLinear;

  // kConv
  ConvLayerDesc conv{};
  bool batch_normalize = false;

  // kMaxPool (Darknet semantics: out = (h + pad - size)/stride + 1, padding
  // reads as -inf)
  int pool_size = 2;
  int pool_stride = 2;
  int pool_pad = 0;

  // kShortcut / kRoute: indices of source layers (absolute, into the network).
  std::vector<int> from;

  // kUpsample
  int upsample_factor = 2;

  // kConnected
  int out_features = 0;

  Shape3 in_shape{};
  Shape3 out_shape{};

  std::string describe() const;
};

const char* to_string(LayerKind k);

}  // namespace vlacnn

// Model definitions matching Paper II Table 1.
//
// Input sizes default to the paper's (a 768x576 image letterboxed/resized by
// Darknet to 608x608 for YOLOv3 and 224x224 for VGG-16); passing a smaller
// `size` scales the spatial dimensions for fast functional runs.
#pragma once

#include "net/network.h"

namespace vlacnn {

/// VGG-16: 13 convolutional + 5 maxpool + 3 fully-connected + softmax.
Network make_vgg16(int size = 224);

/// YOLOv3-tiny: 24 Darknet layers, 13 convolutional (the Paper I workload
/// where the 3-loop optimization yields 14x over naive Darknet).
Network make_yolov3_tiny(int size = 416);

/// YOLOv3 prefix: the first `layers` Darknet layers (default 20, containing the
/// 15 convolutional layers evaluated in Paper II Table 1 / Figs 2,4,7,8 and the
/// "first 20 layers" of Paper I). `layers` <= 0 builds the full 107-layer
/// backbone+heads.
///
/// Note: Table 1 prints conv #4 with IC=64; the surrounding rows (conv #3
/// outputs 32 channels) and the published Darknet yolov3.cfg give IC=32, so we
/// follow the consistent chaining (documented in EXPERIMENTS.md).
Network make_yolov3(int layers = 20, int size = 608);

}  // namespace vlacnn

// Network container and builder. Shapes are propagated at construction and
// validated (a route/shortcut with mismatched shapes throws), so the model
// definitions below are structurally checked against the paper's Table 1 by the
// test suite.
#pragma once

#include <string>
#include <vector>

#include "net/layer.h"

namespace vlacnn {

class Network {
 public:
  Network(std::string name, Shape3 input);

  const std::string& name() const { return name_; }
  Shape3 input() const { return input_; }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Indices of convolutional layers, in order.
  std::vector<int> conv_layers() const;
  /// Conv descriptors only (the per-layer workloads of the figures).
  std::vector<ConvLayerDesc> conv_descs() const;

  // Builder interface: each call appends a layer and infers its output shape.
  Network& conv(int filters, int ksize, int stride, int pad,
                Activation act = Activation::kLeaky, bool bn = true);
  Network& maxpool(int size, int stride, int pad = 0);
  Network& avgpool();
  /// Residual add with the layer `offset` entries back (Darknet "from=-3").
  Network& shortcut(int offset, Activation act = Activation::kLinear);
  Network& upsample(int factor = 2);
  /// Concatenate outputs of layers given as relative offsets (negative) or
  /// absolute indices (non-negative).
  Network& route(const std::vector<int>& sources);
  Network& connected(int out_features, Activation act = Activation::kRelu);
  Network& softmax();
  Network& yolo();

 private:
  Shape3 current() const;
  int resolve(int ref) const;

  std::string name_;
  Shape3 input_;
  std::vector<Layer> layers_;
};

}  // namespace vlacnn

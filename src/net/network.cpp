#include "net/network.h"

#include <stdexcept>

namespace vlacnn {

Network::Network(std::string name, Shape3 input)
    : name_(std::move(name)), input_(input) {
  if (input.c <= 0 || input.h <= 0 || input.w <= 0) {
    throw std::invalid_argument("network: bad input shape");
  }
}

Shape3 Network::current() const {
  return layers_.empty() ? input_ : layers_.back().out_shape;
}

int Network::resolve(int ref) const {
  const int idx = ref < 0 ? static_cast<int>(layers_.size()) + ref : ref;
  if (idx < 0 || idx >= static_cast<int>(layers_.size())) {
    throw std::invalid_argument("network: layer reference out of range");
  }
  return idx;
}

std::vector<int> Network::conv_layers() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(layers_.size()); ++i) {
    if (layers_[i].kind == LayerKind::kConv) out.push_back(i);
  }
  return out;
}

std::vector<ConvLayerDesc> Network::conv_descs() const {
  std::vector<ConvLayerDesc> out;
  for (const Layer& l : layers_) {
    if (l.kind == LayerKind::kConv) out.push_back(l.conv);
  }
  return out;
}

Network& Network::conv(int filters, int ksize, int stride, int pad,
                       Activation act, bool bn) {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kConv;
  l.activation = act;
  l.batch_normalize = bn;
  l.conv = ConvLayerDesc{in.c, in.h, in.w, filters, ksize, ksize, stride, pad};
  l.in_shape = in;
  l.out_shape = {filters, l.conv.oh(), l.conv.ow()};
  if (l.out_shape.h <= 0 || l.out_shape.w <= 0) {
    throw std::invalid_argument("network: conv output collapses");
  }
  layers_.push_back(l);
  return *this;
}

Network& Network::maxpool(int size, int stride, int pad) {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kMaxPool;
  l.pool_size = size;
  l.pool_stride = stride;
  l.pool_pad = pad;
  l.in_shape = in;
  l.out_shape = {in.c, (in.h + pad - size) / stride + 1,
                 (in.w + pad - size) / stride + 1};
  if (l.out_shape.h <= 0 || l.out_shape.w <= 0) {
    throw std::invalid_argument("network: maxpool output collapses");
  }
  layers_.push_back(l);
  return *this;
}

Network& Network::avgpool() {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kAvgPool;
  l.in_shape = in;
  l.out_shape = {in.c, 1, 1};
  layers_.push_back(l);
  return *this;
}

Network& Network::shortcut(int offset, Activation act) {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kShortcut;
  l.activation = act;
  l.from = {resolve(offset)};
  const Shape3 other = layers_[l.from[0]].out_shape;
  if (other.c != in.c || other.h != in.h || other.w != in.w) {
    throw std::invalid_argument("network: shortcut shape mismatch");
  }
  l.in_shape = in;
  l.out_shape = in;
  layers_.push_back(l);
  return *this;
}

Network& Network::upsample(int factor) {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kUpsample;
  l.upsample_factor = factor;
  l.in_shape = in;
  l.out_shape = {in.c, in.h * factor, in.w * factor};
  layers_.push_back(l);
  return *this;
}

Network& Network::route(const std::vector<int>& sources) {
  if (sources.empty()) throw std::invalid_argument("network: empty route");
  Layer l;
  l.kind = LayerKind::kRoute;
  int c = 0;
  Shape3 ref{};
  for (int s : sources) {
    const int idx = resolve(s);
    l.from.push_back(idx);
    const Shape3 sh = layers_[idx].out_shape;
    if (c == 0) {
      ref = sh;
    } else if (sh.h != ref.h || sh.w != ref.w) {
      throw std::invalid_argument("network: route spatial mismatch");
    }
    c += sh.c;
  }
  l.in_shape = ref;
  l.out_shape = {c, ref.h, ref.w};
  layers_.push_back(l);
  return *this;
}

Network& Network::connected(int out_features, Activation act) {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kConnected;
  l.activation = act;
  l.out_features = out_features;
  l.in_shape = in;
  l.out_shape = {out_features, 1, 1};
  layers_.push_back(l);
  return *this;
}

Network& Network::softmax() {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kSoftmax;
  l.in_shape = in;
  l.out_shape = in;
  layers_.push_back(l);
  return *this;
}

Network& Network::yolo() {
  const Shape3 in = current();
  Layer l;
  l.kind = LayerKind::kYolo;
  l.in_shape = in;
  l.out_shape = in;
  layers_.push_back(l);
  return *this;
}

}  // namespace vlacnn

#include "net/runner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace vlacnn {

NetWeights make_random_weights(const Network& net, std::uint64_t seed) {
  Rng rng(seed);
  NetWeights w;
  for (const Layer& l : net.layers()) {
    if (l.kind == LayerKind::kConv) {
      const std::size_t fan_in =
          static_cast<std::size_t>(l.conv.ic) * l.conv.kh * l.conv.kw;
      const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
      std::vector<float> weights(l.conv.weight_elems());
      for (auto& v : weights) v = rng.normal() * scale;
      std::vector<float> bias(l.conv.oc);
      for (auto& v : bias) v = rng.uniform(-0.1f, 0.1f);
      w.conv_weights.push_back(std::move(weights));
      w.conv_bias.push_back(std::move(bias));
    } else if (l.kind == LayerKind::kConnected) {
      const std::size_t fan_in = l.in_shape.elems();
      const float scale = std::sqrt(2.0f / static_cast<float>(fan_in));
      std::vector<float> weights(static_cast<std::size_t>(l.out_features) *
                                 fan_in);
      for (auto& v : weights) v = rng.normal() * scale;
      std::vector<float> bias(l.out_features);
      for (auto& v : bias) v = rng.uniform(-0.1f, 0.1f);
      w.fc_weights.push_back(std::move(weights));
      w.fc_bias.push_back(std::move(bias));
    }
  }
  return w;
}

std::vector<Algo> uniform_plan(const Network& net, Algo fixed) {
  std::vector<Algo> plan;
  for (const ConvLayerDesc& d : net.conv_descs()) {
    plan.push_back(algo_applicable(fixed, d) ? fixed : Algo::kGemm6);
  }
  return plan;
}

namespace {

void apply_activation(Tensor& t, Activation act) {
  if (act == Activation::kLinear) return;
  float* p = t.data();
  const std::size_t n = t.size();
  if (act == Activation::kRelu) {
    for (std::size_t i = 0; i < n; ++i) p[i] = std::max(p[i], 0.0f);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] < 0.0f) p[i] *= 0.1f;
    }
  }
}

Tensor run_maxpool(const Layer& l, const Tensor& in) {
  Tensor out(l.out_shape.c, l.out_shape.h, l.out_shape.w);
  for (int c = 0; c < out.c(); ++c) {
    for (int y = 0; y < out.h(); ++y) {
      for (int x = 0; x < out.w(); ++x) {
        float best = -1e30f;
        for (int dy = 0; dy < l.pool_size; ++dy) {
          for (int dx = 0; dx < l.pool_size; ++dx) {
            const int iy = y * l.pool_stride + dy;
            const int ix = x * l.pool_stride + dx;
            if (iy < in.h() && ix < in.w()) {
              best = std::max(best, in.at(c, iy, ix));
            }
          }
        }
        out.at(c, y, x) = best;
      }
    }
  }
  return out;
}

Tensor run_avgpool(const Layer& l, const Tensor& in) {
  Tensor out(l.out_shape.c, 1, 1);
  const float inv = 1.0f / static_cast<float>(in.h() * in.w());
  for (int c = 0; c < in.c(); ++c) {
    float s = 0.0f;
    for (int y = 0; y < in.h(); ++y) {
      for (int x = 0; x < in.w(); ++x) s += in.at(c, y, x);
    }
    out.at(c, 0, 0) = s * inv;
  }
  return out;
}

Tensor run_upsample(const Layer& l, const Tensor& in) {
  Tensor out(l.out_shape.c, l.out_shape.h, l.out_shape.w);
  const int f = l.upsample_factor;
  for (int c = 0; c < out.c(); ++c) {
    for (int y = 0; y < out.h(); ++y) {
      for (int x = 0; x < out.w(); ++x) {
        out.at(c, y, x) = in.at(c, y / f, x / f);
      }
    }
  }
  return out;
}

Tensor run_connected(const Layer& l, const Tensor& in,
                     const std::vector<float>& w, const std::vector<float>& b) {
  Tensor out(l.out_features, 1, 1);
  const std::size_t n = in.size();
  const float* x = in.data();
  for (int o = 0; o < l.out_features; ++o) {
    double acc = b[o];
    const float* row = w.data() + static_cast<std::size_t>(o) * n;
    for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(row[i]) * x[i];
    out.at(o, 0, 0) = static_cast<float>(acc);
  }
  return out;
}

void run_softmax(Tensor& t) {
  float mx = -1e30f;
  for (std::size_t i = 0; i < t.size(); ++i) mx = std::max(mx, t.data()[i]);
  double sum = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = std::exp(t.data()[i] - mx);
    sum += t.data()[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] *= inv;
}

}  // namespace

Tensor run_inference(const Network& net, const NetWeights& weights,
                     const Tensor& input, const std::vector<Algo>& plan,
                     const VpuConfig& vpu) {
  if (input.c() != net.input().c || input.h() != net.input().h ||
      input.w() != net.input().w) {
    throw std::invalid_argument("run_inference: input shape mismatch");
  }
  if (plan.size() != net.conv_descs().size()) {
    throw std::invalid_argument("run_inference: plan size mismatch");
  }
  std::vector<Tensor> outputs;
  outputs.reserve(net.layers().size());
  Tensor current = input.to_layout(Layout::kNCHW);
  std::size_t conv_i = 0;
  std::size_t fc_i = 0;

  for (const Layer& l : net.layers()) {
    Tensor out;
    switch (l.kind) {
      case LayerKind::kConv: {
        const Algo a = plan[conv_i];
        out = conv_functional(a, l.conv, current, weights.conv_weights[conv_i],
                              vpu);
        // Bias + activation epilogue (batchnorm folded into weights).
        const std::vector<float>& bias = weights.conv_bias[conv_i];
        for (int c = 0; c < out.c(); ++c) {
          for (int y = 0; y < out.h(); ++y) {
            for (int x = 0; x < out.w(); ++x) out.at(c, y, x) += bias[c];
          }
        }
        apply_activation(out, l.activation);
        ++conv_i;
        break;
      }
      case LayerKind::kMaxPool:
        out = run_maxpool(l, current);
        break;
      case LayerKind::kAvgPool:
        out = run_avgpool(l, current);
        break;
      case LayerKind::kShortcut: {
        out = current;
        const Tensor& other = outputs[l.from[0]];
        for (std::size_t i = 0; i < out.size(); ++i) {
          out.data()[i] += other.data()[i];
        }
        apply_activation(out, l.activation);
        break;
      }
      case LayerKind::kUpsample:
        out = run_upsample(l, current);
        break;
      case LayerKind::kRoute: {
        out = Tensor(l.out_shape.c, l.out_shape.h, l.out_shape.w);
        int c0 = 0;
        for (int src : l.from) {
          const Tensor& s = outputs[src];
          for (int c = 0; c < s.c(); ++c) {
            for (int y = 0; y < s.h(); ++y) {
              for (int x = 0; x < s.w(); ++x) {
                out.at(c0 + c, y, x) = s.at(c, y, x);
              }
            }
          }
          c0 += s.c();
        }
        break;
      }
      case LayerKind::kConnected:
        out = run_connected(l, current, weights.fc_weights[fc_i],
                            weights.fc_bias[fc_i]);
        apply_activation(out, l.activation);
        ++fc_i;
        break;
      case LayerKind::kSoftmax:
        out = current;
        run_softmax(out);
        break;
      case LayerKind::kYolo:
        out = current;
        break;
    }
    outputs.push_back(out);
    current = std::move(out);
  }
  return current;
}

NetworkTiming profile_network(const Network& net, const SimConfig& config,
                              const std::vector<Algo>& plan) {
  const std::vector<int> conv_idx = net.conv_layers();
  if (plan.size() != conv_idx.size()) {
    throw std::invalid_argument("profile_network: plan size mismatch");
  }
  NetworkTiming t;
  for (std::size_t i = 0; i < conv_idx.size(); ++i) {
    const Layer& l = net.layers()[conv_idx[i]];
    LayerTiming lt;
    lt.layer_index = conv_idx[i];
    lt.algo = plan[i];
    lt.stats = conv_simulate(plan[i], l.conv, config);
    t.total_cycles += lt.stats.cycles;
    t.conv_layers.push_back(lt);
  }
  return t;
}

}  // namespace vlacnn

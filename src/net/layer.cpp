#include "net/layer.h"

namespace vlacnn {

const char* to_string(LayerKind k) {
  switch (k) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kMaxPool: return "maxpool";
    case LayerKind::kAvgPool: return "avgpool";
    case LayerKind::kShortcut: return "shortcut";
    case LayerKind::kUpsample: return "upsample";
    case LayerKind::kRoute: return "route";
    case LayerKind::kConnected: return "connected";
    case LayerKind::kSoftmax: return "softmax";
    case LayerKind::kYolo: return "yolo";
  }
  return "?";
}

std::string Layer::describe() const {
  std::string s = to_string(kind);
  if (kind == LayerKind::kConv) s += " " + conv.to_string();
  s += " -> " + std::to_string(out_shape.c) + "x" +
       std::to_string(out_shape.h) + "x" + std::to_string(out_shape.w);
  return s;
}

}  // namespace vlacnn

#include "net/models.h"

#include <stdexcept>

namespace vlacnn {

Network make_vgg16(int size) {
  if (size % 32 != 0) {
    throw std::invalid_argument("vgg16: input size must be a multiple of 32");
  }
  Network net("vgg16", {3, size, size});
  auto block = [&](int filters, int convs) {
    for (int i = 0; i < convs; ++i) {
      net.conv(filters, 3, 1, 1, Activation::kRelu, false);
    }
    net.maxpool(2, 2);
  };
  block(64, 2);    // conv 1-2
  block(128, 2);   // conv 3-4
  block(256, 3);   // conv 5-7
  block(512, 3);   // conv 8-10
  block(512, 3);   // conv 11-13
  net.connected(4096).connected(4096).connected(1000, Activation::kLinear);
  net.softmax();
  return net;
}

Network make_yolov3_tiny(int size) {
  if (size % 32 != 0) {
    throw std::invalid_argument("yolov3-tiny: input size must be x32");
  }
  Network net("yolov3-tiny", {3, size, size});
  net.conv(16, 3, 1, 1);      // 0
  net.maxpool(2, 2);          // 1
  net.conv(32, 3, 1, 1);      // 2
  net.maxpool(2, 2);          // 3
  net.conv(64, 3, 1, 1);      // 4
  net.maxpool(2, 2);          // 5
  net.conv(128, 3, 1, 1);     // 6
  net.maxpool(2, 2);          // 7
  net.conv(256, 3, 1, 1);     // 8
  net.maxpool(2, 2);          // 9
  net.conv(512, 3, 1, 1);     // 10
  net.maxpool(2, 1, 1);       // 11: stride-1 'same' pool (Darknet pad)
  net.conv(1024, 3, 1, 1);    // 12
  net.conv(256, 1, 1, 0);     // 13
  net.conv(512, 3, 1, 1);     // 14
  net.conv(255, 1, 1, 0, Activation::kLinear, false);  // 15
  net.yolo();                 // 16
  net.route({13});            // 17
  net.conv(128, 1, 1, 0);     // 18
  net.upsample();             // 19
  net.route({-1, 8});         // 20
  net.conv(256, 3, 1, 1);     // 21
  net.conv(255, 1, 1, 0, Activation::kLinear, false);  // 22
  net.yolo();                 // 23
  return net;
}

namespace {

/// Darknet residual block: 1x1 squeeze, 3x3 expand, shortcut to the input.
void residual(Network& net, int squeeze, int expand) {
  net.conv(squeeze, 1, 1, 0);
  net.conv(expand, 3, 1, 1);
  net.shortcut(-3);
}

Network build_yolov3_full(int size) {
  Network net("yolov3", {3, size, size});
  // --- Darknet-53 backbone (layers 0-74) ---
  net.conv(32, 3, 1, 1);               // 0
  net.conv(64, 3, 2, 1);               // 1
  residual(net, 32, 64);               // 2-4
  net.conv(128, 3, 2, 1);              // 5
  for (int i = 0; i < 2; ++i) residual(net, 64, 128);    // 6-11
  net.conv(256, 3, 2, 1);              // 12
  for (int i = 0; i < 8; ++i) residual(net, 128, 256);   // 13-36
  net.conv(512, 3, 2, 1);              // 37
  for (int i = 0; i < 8; ++i) residual(net, 256, 512);   // 38-61
  net.conv(1024, 3, 2, 1);             // 62
  for (int i = 0; i < 4; ++i) residual(net, 512, 1024);  // 63-74
  // --- Detection head 1 (stride 32) ---
  net.conv(512, 1, 1, 0);              // 75
  net.conv(1024, 3, 1, 1);             // 76
  net.conv(512, 1, 1, 0);              // 77
  net.conv(1024, 3, 1, 1);             // 78
  net.conv(512, 1, 1, 0);              // 79
  net.conv(1024, 3, 1, 1);             // 80
  net.conv(255, 1, 1, 0, Activation::kLinear, false);  // 81
  net.yolo();                          // 82
  // --- Detection head 2 (stride 16) ---
  net.route({79});                     // 83
  net.conv(256, 1, 1, 0);              // 84
  net.upsample();                      // 85
  net.route({-1, 61});                 // 86
  net.conv(256, 1, 1, 0);              // 87
  net.conv(512, 3, 1, 1);              // 88
  net.conv(256, 1, 1, 0);              // 89
  net.conv(512, 3, 1, 1);              // 90
  net.conv(256, 1, 1, 0);              // 91
  net.conv(512, 3, 1, 1);              // 92
  net.conv(255, 1, 1, 0, Activation::kLinear, false);  // 93
  net.yolo();                          // 94
  // --- Detection head 3 (stride 8) ---
  net.route({91});                     // 95
  net.conv(128, 1, 1, 0);              // 96
  net.upsample();                      // 97
  net.route({-1, 36});                 // 98
  net.conv(128, 1, 1, 0);              // 99
  net.conv(256, 3, 1, 1);              // 100
  net.conv(128, 1, 1, 0);              // 101
  net.conv(256, 3, 1, 1);              // 102
  net.conv(128, 1, 1, 0);              // 103
  net.conv(256, 3, 1, 1);              // 104
  net.conv(255, 1, 1, 0, Activation::kLinear, false);  // 105
  net.yolo();                          // 106
  return net;
}

}  // namespace

Network make_yolov3(int layers, int size) {
  if (size % 32 != 0) {
    throw std::invalid_argument("yolov3: input size must be a multiple of 32");
  }
  Network full = build_yolov3_full(size);
  if (layers <= 0 || layers >= static_cast<int>(full.layers().size())) {
    return full;
  }
  // Rebuild the requested prefix (the builder validates shapes as it goes).
  Network net("yolov3-" + std::to_string(layers), {3, size, size});
  for (int i = 0; i < layers; ++i) {
    const Layer& l = full.layers()[i];
    switch (l.kind) {
      case LayerKind::kConv:
        net.conv(l.conv.oc, l.conv.kh, l.conv.stride, l.conv.pad, l.activation,
                 l.batch_normalize);
        break;
      case LayerKind::kShortcut:
        net.shortcut(l.from[0] - i);
        break;
      case LayerKind::kUpsample:
        net.upsample(l.upsample_factor);
        break;
      case LayerKind::kRoute:
        net.route(l.from);
        break;
      case LayerKind::kYolo:
        net.yolo();
        break;
      default:
        throw std::logic_error("yolov3 prefix: unexpected layer kind");
    }
  }
  return net;
}

}  // namespace vlacnn

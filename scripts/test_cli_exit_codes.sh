#!/usr/bin/env bash
# CLI exit-code contract gate for vlacnn-capacity and vlacnn-report:
#
#   0 = success
#   1 = semantic/runtime failure (infeasible SLO, failed regression gate,
#       unreadable input)
#   2 = usage error (unknown flag/subcommand, malformed value), with the
#       usage text on stderr — never stdout
#
#   scripts/test_cli_exit_codes.sh [build-dir]    # default build dir: build/
#
# The infeasible-capacity and failed-diff cases exercise real runs: the first
# rides the committed sweep cache (results/sweep_cache.csv) so it stays fast,
# the second diffs the committed report baseline against a copy with one
# cycles entry inflated ~10x, which must trip the 2% budget.
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CAP="$BUILD_DIR/tools/vlacnn-capacity"
REP="$BUILD_DIR/tools/vlacnn-report"
TMP="$BUILD_DIR/cli-exit-gate"
rm -rf "$TMP"; mkdir -p "$TMP"
fail=0

# expect <want-code> <check-usage:yes|no> <label> -- cmd args...
# check-usage=yes additionally asserts the usage text landed on stderr only.
expect() {
  local want="$1" usage="$2" label="$3"; shift 4
  local out="$TMP/out" err="$TMP/err" got=0
  "$@" >"$out" 2>"$err" || got=$?
  if [ "$got" != "$want" ]; then
    echo "FAIL: $label: exit $got, want $want" >&2
    sed 's/^/  stderr: /' "$err" >&2
    fail=1
    return
  fi
  if [ "$usage" = yes ]; then
    if ! grep -q '^usage:' "$err"; then
      echo "FAIL: $label: exit $want but no usage text on stderr" >&2
      fail=1
      return
    fi
    if grep -q '^usage:' "$out"; then
      echo "FAIL: $label: usage text leaked to stdout" >&2
      fail=1
      return
    fi
  fi
  echo "ok: $label (exit $got)"
}

# -- vlacnn-capacity: usage errors exit 2 with usage on stderr ---------------
expect 2 yes "capacity: unknown flag"        -- "$CAP" --bogus
expect 2 yes "capacity: malformed --load"    -- "$CAP" --load nope
expect 2 yes "capacity: unknown --net"       -- "$CAP" --net martian
expect 2 yes "capacity: unknown --dispatch"  -- "$CAP" --dispatch psychic
expect 2 yes "capacity: flag missing value"  -- "$CAP" --slo

# -- vlacnn-capacity fleet: usage errors exit 2 with usage on stderr ---------
expect 2 yes "fleet: unknown flag"           -- "$CAP" fleet --bogus
expect 2 yes "fleet: malformed --load"       -- "$CAP" fleet --load nope
expect 2 yes "fleet: malformed --mix"        -- "$CAP" fleet --mix "vgg16"
expect 2 yes "fleet: malformed --router"     -- "$CAP" fleet --router random
expect 2 yes "fleet: malformed --max-chips"  -- "$CAP" fleet --max-chips zero
expect 2 yes "fleet: flag missing value"     -- "$CAP" fleet --slo

# -- vlacnn-capacity fleet: infeasible query exits 1 (not 2) -----------------
# 1e6 req/s against a 1 ms deadline: no composition survives the optimistic
# prune, so the planner reports no feasible fleet. Warm cache keeps it fast.
expect 1 no "fleet: infeasible SLO" \
  -- "$CAP" fleet --load 1000000rps --slo 1ms --requests 100

# -- vlacnn-capacity: infeasible SLO exits 1 (not 2) -------------------------
# 1e6 req/s against a 1 ms deadline: no grid point survives. Warm cache makes
# this a real (sub-minute) run, and stderr must NOT carry the usage text.
expect 1 no "capacity: infeasible SLO" \
  -- "$CAP" --net vgg16 --load 1000000rps --slo 1ms --requests 100

# -- vlacnn-report: usage errors exit 2 with usage on stderr -----------------
expect 2 yes "report: no subcommand"         -- "$REP"
expect 2 yes "report: unknown subcommand"    -- "$REP" frobnicate x.json
expect 2 yes "report: unknown option"        -- "$REP" summarize a.json --huh
expect 2 yes "report: malformed --top"       -- "$REP" requests /dev/null --top bogus
expect 2 yes "report: malformed --budget"    -- "$REP" diff a.json b.json --budget-pct -5
expect 2 yes "report: profile missing file"  -- "$REP" profile
expect 2 yes "report: malformed --windows"   -- "$REP" profile x.jsonl --windows bogus
expect 2 yes "report: profile flag no value" -- "$REP" profile x.jsonl --point

# -- vlacnn-report: runtime failures exit 1 (not 2) --------------------------
expect 1 no "report: unreadable summarize input" -- "$REP" summarize "$TMP/nope.json"
expect 1 no "report: unreadable requests input"  -- "$REP" requests "$TMP/nope.jsonl"
expect 1 no "report: unreadable profile input"   -- "$REP" profile "$TMP/nope.jsonl"

# Broken phase partition: the phase cycles fold to 90, the kernel total says
# 100. The attribution cross-check must flag the block (exit 1, not 2).
printf '%s\n%s\n%s\n' \
  '{"type":"run","label":"bad/L00/gemm3/vlen512/l2:1048576/lanes8/int"}' \
  '{"type":"kernel","net":"bad","layer":0,"algo":"gemm3","vlen_bits":512,"l2_bytes":1048576,"lanes":8,"attach":"int","interval_cycles":1000000,"cycles":100,"compute_cycles":60,"mem_issue_cycles":20,"mem_stall_cycles":15,"scalar_cycles":5,"phase_count":1,"window_count":0}' \
  '{"type":"phase","name":"im2col","cycles":90,"raw_cycles":90,"compute_cycles":60,"mem_issue_cycles":20,"mem_stall_cycles":5,"scalar_cycles":5,"vec_instructions":10,"vec_elems":160,"avg_vl":16,"flops":320,"l1_accesses":4,"l1_misses":1,"l2_accesses":1,"l2_misses":0,"mem_bytes":64}' \
  > "$TMP/broken-fold.jsonl"
expect 1 no "report: profile fold mismatch" -- "$REP" profile "$TMP/broken-fold.jsonl"
expect 1 no "report: profile point no match" \
  -- "$REP" profile "$TMP/broken-fold.jsonl" --point nosuchlayer

# Failed regression gate: inflate the first per-entry cycles figure ~10x and
# diff against the pristine baseline with the ci.sh budget.
sed '0,/"cycles": /s//"cycles": 9/' BENCH_report_baseline.json \
  > "$TMP/regressed.json"
if cmp -s BENCH_report_baseline.json "$TMP/regressed.json"; then
  echo "FAIL: sed produced no regression to diff against" >&2
  fail=1
fi
expect 1 no "report: failed regression gate" \
  -- "$REP" diff BENCH_report_baseline.json "$TMP/regressed.json" --budget-pct 2
expect 0 no "report: clean diff passes" \
  -- "$REP" diff BENCH_report_baseline.json BENCH_report_baseline.json \
     --budget-pct 2

if [ "$fail" != 0 ]; then
  echo "test_cli_exit_codes: FAILED" >&2
  exit 1
fi
echo "test_cli_exit_codes: all exit-code contracts hold"

#!/usr/bin/env bash
# CLI exit-code contract gate for vlacnn-capacity and vlacnn-report:
#
#   0 = success
#   1 = semantic/runtime failure (infeasible SLO, failed regression gate,
#       unreadable input)
#   2 = usage error (unknown flag/subcommand, malformed value), with the
#       usage text on stderr — never stdout
#
#   scripts/test_cli_exit_codes.sh [build-dir]    # default build dir: build/
#
# The infeasible-capacity and failed-diff cases exercise real runs: the first
# rides the committed sweep cache (results/sweep_cache.csv) so it stays fast,
# the second diffs the committed report baseline against a copy with one
# cycles entry inflated ~10x, which must trip the 2% budget.
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
CAP="$BUILD_DIR/tools/vlacnn-capacity"
REP="$BUILD_DIR/tools/vlacnn-report"
TMP="$BUILD_DIR/cli-exit-gate"
rm -rf "$TMP"; mkdir -p "$TMP"
fail=0

# expect <want-code> <check-usage:yes|no> <label> -- cmd args...
# check-usage=yes additionally asserts the usage text landed on stderr only.
expect() {
  local want="$1" usage="$2" label="$3"; shift 4
  local out="$TMP/out" err="$TMP/err" got=0
  "$@" >"$out" 2>"$err" || got=$?
  if [ "$got" != "$want" ]; then
    echo "FAIL: $label: exit $got, want $want" >&2
    sed 's/^/  stderr: /' "$err" >&2
    fail=1
    return
  fi
  if [ "$usage" = yes ]; then
    if ! grep -q '^usage:' "$err"; then
      echo "FAIL: $label: exit $want but no usage text on stderr" >&2
      fail=1
      return
    fi
    if grep -q '^usage:' "$out"; then
      echo "FAIL: $label: usage text leaked to stdout" >&2
      fail=1
      return
    fi
  fi
  echo "ok: $label (exit $got)"
}

# -- vlacnn-capacity: usage errors exit 2 with usage on stderr ---------------
expect 2 yes "capacity: unknown flag"        -- "$CAP" --bogus
expect 2 yes "capacity: malformed --load"    -- "$CAP" --load nope
expect 2 yes "capacity: unknown --net"       -- "$CAP" --net martian
expect 2 yes "capacity: unknown --dispatch"  -- "$CAP" --dispatch psychic
expect 2 yes "capacity: flag missing value"  -- "$CAP" --slo

# -- vlacnn-capacity: infeasible SLO exits 1 (not 2) -------------------------
# 1e6 req/s against a 1 ms deadline: no grid point survives. Warm cache makes
# this a real (sub-minute) run, and stderr must NOT carry the usage text.
expect 1 no "capacity: infeasible SLO" \
  -- "$CAP" --net vgg16 --load 1000000rps --slo 1ms --requests 100

# -- vlacnn-report: usage errors exit 2 with usage on stderr -----------------
expect 2 yes "report: no subcommand"         -- "$REP"
expect 2 yes "report: unknown subcommand"    -- "$REP" frobnicate x.json
expect 2 yes "report: unknown option"        -- "$REP" summarize a.json --huh
expect 2 yes "report: malformed --top"       -- "$REP" requests /dev/null --top bogus
expect 2 yes "report: malformed --budget"    -- "$REP" diff a.json b.json --budget-pct -5

# -- vlacnn-report: runtime failures exit 1 (not 2) --------------------------
expect 1 no "report: unreadable summarize input" -- "$REP" summarize "$TMP/nope.json"
expect 1 no "report: unreadable requests input"  -- "$REP" requests "$TMP/nope.jsonl"

# Failed regression gate: inflate the first per-entry cycles figure ~10x and
# diff against the pristine baseline with the ci.sh budget.
sed '0,/"cycles": /s//"cycles": 9/' BENCH_report_baseline.json \
  > "$TMP/regressed.json"
if cmp -s BENCH_report_baseline.json "$TMP/regressed.json"; then
  echo "FAIL: sed produced no regression to diff against" >&2
  fail=1
fi
expect 1 no "report: failed regression gate" \
  -- "$REP" diff BENCH_report_baseline.json "$TMP/regressed.json" --budget-pct 2
expect 0 no "report: clean diff passes" \
  -- "$REP" diff BENCH_report_baseline.json BENCH_report_baseline.json \
     --budget-pct 2

if [ "$fail" != 0 ]; then
  echo "test_cli_exit_codes: FAILED" >&2
  exit 1
fi
echo "test_cli_exit_codes: all exit-code contracts hold"

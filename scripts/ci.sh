#!/usr/bin/env bash
# CI entry point: tier-1 verification plus a TSan pass over the concurrency
# tests (thread pool, results DB single-flight, parallel sweep, obs counters).
#
# Usage: scripts/ci.sh            # from the repo root
#   JOBS=8 scripts/ci.sh          # override parallelism (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build + full ctest =============================="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tsan: concurrency tests under VLACNN_SANITIZE=thread ================"
cmake -B build-tsan -S . -DVLACNN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target vlacnn_tests
# TSan is slow; run the suites that exercise shared state rather than the
# whole grid. VLACNN_THREADS forces real interleaving even on 1-core CI.
VLACNN_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ResultsDb|SingleFlight|Parallel|Concurrent|Obs'

echo "== ci.sh: all green ===================================================="

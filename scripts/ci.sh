#!/usr/bin/env bash
# CI entry point: tier-1 verification plus a TSan pass over the concurrency
# tests (thread pool, results DB single-flight, parallel sweep, obs counters).
#
# Usage: scripts/ci.sh            # from the repo root
#   JOBS=8 scripts/ci.sh          # override parallelism (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: configure + build + full ctest =============================="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== tsan: concurrency tests under VLACNN_SANITIZE=thread ================"
cmake -B build-tsan -S . -DVLACNN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target vlacnn_tests
# TSan is slow; run the suites that exercise shared state rather than the
# whole grid. VLACNN_THREADS forces real interleaving even on 1-core CI.
VLACNN_THREADS=4 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ResultsDb|SingleFlight|Parallel|Concurrent|Obs'

echo "== report: perf-regression gate vs BENCH_report_baseline.json =========="
# A warm run (the committed results/sweep_cache.csv covers the fig01 grid with
# breakdowns) that re-emits the attribution report; the diff exits nonzero if
# any grid point's cycles moved past the budget. Cycles are simulator output —
# deterministic — so the 2% budget only absorbs intentional model changes
# (re-run with VLACNN_REPORT and commit the new baseline to accept one).
REPORT_DIR=build/report-gate
rm -rf "$REPORT_DIR"
VLACNN_REPORT="$REPORT_DIR" ./build/bench/bench_fig01_vgg_perlayer >/dev/null
REPORT_JSON="$REPORT_DIR/fig_1_per_layer_algorithm_comparison_vgg_16.report.json"
./build/tools/vlacnn-report summarize "$REPORT_JSON"
./build/tools/vlacnn-report diff BENCH_report_baseline.json "$REPORT_JSON" \
  --budget-pct 2

echo "== docs: README/DESIGN drift gate ======================================"
scripts/check_docs.sh build

echo "== serving: capacity-planner determinism across thread counts =========="
# Same seed, same grid, different pool sizes: the stats JSON must be
# byte-identical (DESIGN.md §10). Warm cache makes this a sub-second step.
CAP_DIR=build/capacity-gate
rm -rf "$CAP_DIR"; mkdir -p "$CAP_DIR"
VLACNN_THREADS=1 ./build/tools/vlacnn-capacity --net vgg16 --load 20rps \
  --slo 4000ms --requests 500 --json "$CAP_DIR/t1.json" >/dev/null
VLACNN_THREADS=8 ./build/tools/vlacnn-capacity --net vgg16 --load 20rps \
  --slo 4000ms --requests 500 --json "$CAP_DIR/t8.json" >/dev/null
cmp "$CAP_DIR/t1.json" "$CAP_DIR/t8.json"
echo "capacity plan byte-identical at VLACNN_THREADS=1 and 8"

echo "== dispatch: learned-dispatch determinism + selector-cost envelope ====="
# The learned path adds a per-point bandit (forest training, epsilon-greedy
# exploration) on top of the capacity run above; its JSON must stay
# byte-identical across pool sizes too (DESIGN.md §11). Warm cache again.
VLACNN_THREADS=1 ./build/tools/vlacnn-capacity --net vgg16 --load 20rps \
  --slo 4000ms --requests 500 --dispatch learned \
  --json "$CAP_DIR/learned-t1.json" >/dev/null
VLACNN_THREADS=8 ./build/tools/vlacnn-capacity --net vgg16 --load 20rps \
  --slo 4000ms --requests 500 --dispatch learned \
  --json "$CAP_DIR/learned-t8.json" >/dev/null
cmp "$CAP_DIR/learned-t1.json" "$CAP_DIR/learned-t8.json"
echo "learned-dispatch capacity plan byte-identical at VLACNN_THREADS=1 and 8"

echo "== timeline: JSONL determinism across thread counts ===================="
# Same planner run with VLACNN_TIMELINE on: the sink writes blocks in sorted
# label order, so the JSONL must be byte-identical too (DESIGN.md §12). The
# interval is pinned coarse so 160 grid points stay a few MB of output.
VLACNN_THREADS=1 VLACNN_TIMELINE_INTERVAL=1e10 ./build/tools/vlacnn-capacity \
  --net vgg16 --load 20rps --slo 4000ms --requests 500 \
  --timeline "$CAP_DIR/tl-t1.jsonl" >/dev/null
VLACNN_THREADS=8 VLACNN_TIMELINE_INTERVAL=1e10 ./build/tools/vlacnn-capacity \
  --net vgg16 --load 20rps --slo 4000ms --requests 500 \
  --timeline "$CAP_DIR/tl-t8.jsonl" >/dev/null
cmp "$CAP_DIR/tl-t1.jsonl" "$CAP_DIR/tl-t8.jsonl"
./build/tools/vlacnn-report timeline "$CAP_DIR/tl-t1.jsonl" --snapshots 2 \
  >/dev/null
echo "timeline JSONL byte-identical at VLACNN_THREADS=1 and 8"

echo "== fleet: multi-chip plan determinism across thread counts ============="
# The fleet planner fans candidate fleets out on the pool; the vlacnn.fleet.v1
# JSON (chip-type menu, every composition's stats, both headline answers) must
# be byte-identical across pool sizes (DESIGN.md §15). Warm cache again: the
# committed sweep grid covers both mix models, so each candidate is a pure
# event-loop run.
FLEET_DIR=build/fleet-gate
rm -rf "$FLEET_DIR"; mkdir -p "$FLEET_DIR"
VLACNN_THREADS=1 ./build/tools/vlacnn-capacity fleet --load 45rps \
  --slo 12000ms --requests 800 --json "$FLEET_DIR/t1.json" >/dev/null
VLACNN_THREADS=8 ./build/tools/vlacnn-capacity fleet --load 45rps \
  --slo 12000ms --requests 800 --json "$FLEET_DIR/t8.json" >/dev/null
cmp "$FLEET_DIR/t1.json" "$FLEET_DIR/t8.json"
echo "fleet plan byte-identical at VLACNN_THREADS=1 and 8"
# Smoke the fleet reqtrace path end to end: the router hop must show up as its
# own span and the forensics attribution cross-check (four spans sum
# bit-exactly to each latency) must hold fleet-wide.
./build/tools/vlacnn-capacity fleet --load 45rps --slo 12000ms \
  --requests 800 --hop 1000 --reqtrace "$FLEET_DIR/rt.jsonl" >/dev/null
./build/tools/vlacnn-report requests "$FLEET_DIR/rt.jsonl" --top 3 \
  --waterfall 0 >/dev/null
echo "fleet reqtrace attribution cross-check holds"

echo "== reqtrace: per-request trace determinism across thread counts ========"
# Per-request tracing over the same planner run: the tail-sampled trace JSONL
# must be byte-identical across pool sizes too (DESIGN.md §13), and the
# forensics subcommand's attribution cross-check (every sampled request's
# spans sum bit-exactly to its latency) must hold for every grid point.
VLACNN_THREADS=1 ./build/tools/vlacnn-capacity --net vgg16 --load 20rps \
  --slo 4000ms --requests 500 --reqtrace "$CAP_DIR/rt-t1.jsonl" >/dev/null
VLACNN_THREADS=8 ./build/tools/vlacnn-capacity --net vgg16 --load 20rps \
  --slo 4000ms --requests 500 --reqtrace "$CAP_DIR/rt-t8.jsonl" >/dev/null
cmp "$CAP_DIR/rt-t1.jsonl" "$CAP_DIR/rt-t8.jsonl"
./build/tools/vlacnn-report requests "$CAP_DIR/rt-t1.jsonl" --top 3 \
  --waterfall 0 >/dev/null
echo "reqtrace JSONL byte-identical at VLACNN_THREADS=1 and 8"

echo "== kernprof: phase-profile JSONL determinism across thread counts ======"
# Per-kernel phase profiling over the fig01 grid: the sink writes blocks in
# sorted label order, so the JSONL must be byte-identical across pool sizes
# (DESIGN.md §14) — this also covers the warm-cache re-sim path, since the
# report gate above already filled the results DB for this grid. The profile
# explorer then gates every block's attribution cross-check (phase cycles
# fold bit-exactly to the kernel total; exit 1 on any mismatch).
KP_DIR=build/kernprof-gate
rm -rf "$KP_DIR"; mkdir -p "$KP_DIR"
VLACNN_THREADS=1 VLACNN_KERNPROF="$KP_DIR/kp-t1.jsonl" \
  ./build/bench/bench_fig01_vgg_perlayer >/dev/null
VLACNN_THREADS=8 VLACNN_KERNPROF="$KP_DIR/kp-t8.jsonl" \
  ./build/bench/bench_fig01_vgg_perlayer >/dev/null
cmp "$KP_DIR/kp-t1.jsonl" "$KP_DIR/kp-t8.jsonl"
./build/tools/vlacnn-report profile "$KP_DIR/kp-t1.jsonl" --windows 4 \
  >/dev/null
echo "kernprof JSONL byte-identical at VLACNN_THREADS=1 and 8"

echo "== cli: exit-code contract (usage=2, runtime=1) ========================"
scripts/test_cli_exit_codes.sh build

echo "== obs: disabled-path overhead budget (<2% or sub-noise) ==============="
# bench_obs_overhead self-gates both hot loops (conv inner loop + serving
# event loop): exit 1 when the no-obs/disabled median gap exceeds 2% AND the
# baseline's own min-max spread. --quick trims reps and skips the
# informational enabled-path passes; BENCH_obs.json records a full run.
./build/bench/bench_obs_overhead --quick
# bench_dispatch_overhead self-gates: exit 1 if the FlatForest lowering
# disagrees with RandomForest::predict anywhere on the selection dataset, or
# if the measured selector cost escapes the committed default
# (BENCH_dispatch_overhead.json pairs with kDefaultDispatchCyclesPerLayer).
./build/bench/bench_dispatch_overhead

echo "== ci.sh: all green ===================================================="

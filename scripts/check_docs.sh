#!/usr/bin/env bash
# Docs drift gate: fails when README/DESIGN disagree with the code.
#
#   scripts/check_docs.sh [build-dir]     # default build dir: build/
#
# Checks:
#  1. The test count README quotes next to `ctest --test-dir build` matches
#     what `ctest -N` reports in the configured build directory.
#  2. Every VLACNN_*/REPRO_* env knob the code actually reads (getenv in src/)
#     is documented in both README.md and DESIGN.md.
#  3. Every VLACNN_*/REPRO_* token the docs mention is really read in src/ —
#     no documenting knobs that do not exist. VLACNN_SANITIZE is exempt: it is
#     a CMake option, not an env var.
#  4. The fleet layer stays documented: DESIGN.md keeps the §15 fleet section,
#     README.md mentions the `vlacnn-capacity fleet` subcommand, and the
#     subcommand the docs describe still exists in the binary's usage text.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
fail=0

# -- 1: README test count vs ctest -N ----------------------------------------
actual=$(ctest --test-dir "$BUILD_DIR" -N 2>/dev/null | sed -n 's/^Total Tests: //p')
documented=$(sed -n 's/^ctest --test-dir build *# \([0-9]*\) tests$/\1/p' README.md)
if [ -z "$actual" ]; then
  echo "check_docs: cannot read a test count from 'ctest --test-dir $BUILD_DIR -N'" >&2
  fail=1
elif [ -z "$documented" ]; then
  echo "check_docs: README.md no longer carries the '# N tests' annotation" >&2
  fail=1
elif [ "$actual" != "$documented" ]; then
  echo "check_docs: README says $documented tests, ctest -N reports $actual" >&2
  fail=1
else
  echo "check_docs: test count OK ($actual)"
fi

# -- 2: knobs read in src/ must be documented ---------------------------------
# parse_u64_env (obs/reqtrace.cpp) is a getenv wrapper: a knob name passed to
# it is read just as surely as a literal getenv call.
read_knobs=$(grep -rhoE '(getenv|parse_u64_env)\("(VLACNN|REPRO)_[A-Z_]+"' src \
  | sed -E 's/.*\("([A-Z_]+)"/\1/' | sort -u)
for knob in $read_knobs; do
  for doc in README.md DESIGN.md; do
    if ! grep -q "$knob" "$doc"; then
      echo "check_docs: src/ reads \$$knob but $doc does not document it" >&2
      fail=1
    fi
  done
done
echo "check_docs: knobs read in src/: $(echo "$read_knobs" | tr '\n' ' ')"

# -- 3: knobs the docs mention must be read in src/ ---------------------------
doc_knobs=$(grep -hoE '\b(VLACNN|REPRO)_[A-Z_]+' README.md DESIGN.md \
  | sort -u | grep -v '^VLACNN_SANITIZE$' || true)
for knob in $doc_knobs; do
  if ! echo "$read_knobs" | grep -qx "$knob"; then
    echo "check_docs: docs mention \$$knob but nothing in src/ reads it" >&2
    fail=1
  fi
done

# -- 4: fleet docs vs the fleet subcommand ------------------------------------
if ! grep -qE '^## 15\..*[Ff]leet' DESIGN.md; then
  echo "check_docs: DESIGN.md lost the '## 15. Fleet-scale serving' section" >&2
  fail=1
fi
if ! grep -q 'vlacnn-capacity fleet' README.md; then
  echo "check_docs: README.md does not mention 'vlacnn-capacity fleet'" >&2
  fail=1
fi
if [ -x "$BUILD_DIR/tools/vlacnn-capacity" ]; then
  # --help is a usage error by the CLI contract (exit 2), so capture the text
  # first; pipefail would otherwise sink a successful grep.
  fleet_help=$("$BUILD_DIR/tools/vlacnn-capacity" fleet --help 2>&1 || true)
  if ! grep -q '^usage:' <<< "$fleet_help"; then
    echo "check_docs: 'vlacnn-capacity fleet --help' prints no usage text" >&2
    fail=1
  fi
else
  echo "check_docs: $BUILD_DIR/tools/vlacnn-capacity missing; skipping fleet usage check"
fi
echo "check_docs: fleet section/subcommand cross-check done"

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: all green"

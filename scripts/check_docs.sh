#!/usr/bin/env bash
# Docs drift gate: fails when README/DESIGN disagree with the code.
#
#   scripts/check_docs.sh [build-dir]     # default build dir: build/
#
# Checks:
#  1. The test count README quotes next to `ctest --test-dir build` matches
#     what `ctest -N` reports in the configured build directory.
#  2. Every VLACNN_*/REPRO_* env knob the code actually reads (getenv in src/)
#     is documented in both README.md and DESIGN.md.
#  3. Every VLACNN_*/REPRO_* token the docs mention is really read in src/ —
#     no documenting knobs that do not exist. VLACNN_SANITIZE is exempt: it is
#     a CMake option, not an env var.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
fail=0

# -- 1: README test count vs ctest -N ----------------------------------------
actual=$(ctest --test-dir "$BUILD_DIR" -N 2>/dev/null | sed -n 's/^Total Tests: //p')
documented=$(sed -n 's/^ctest --test-dir build *# \([0-9]*\) tests$/\1/p' README.md)
if [ -z "$actual" ]; then
  echo "check_docs: cannot read a test count from 'ctest --test-dir $BUILD_DIR -N'" >&2
  fail=1
elif [ -z "$documented" ]; then
  echo "check_docs: README.md no longer carries the '# N tests' annotation" >&2
  fail=1
elif [ "$actual" != "$documented" ]; then
  echo "check_docs: README says $documented tests, ctest -N reports $actual" >&2
  fail=1
else
  echo "check_docs: test count OK ($actual)"
fi

# -- 2: knobs read in src/ must be documented ---------------------------------
# parse_u64_env (obs/reqtrace.cpp) is a getenv wrapper: a knob name passed to
# it is read just as surely as a literal getenv call.
read_knobs=$(grep -rhoE '(getenv|parse_u64_env)\("(VLACNN|REPRO)_[A-Z_]+"' src \
  | sed -E 's/.*\("([A-Z_]+)"/\1/' | sort -u)
for knob in $read_knobs; do
  for doc in README.md DESIGN.md; do
    if ! grep -q "$knob" "$doc"; then
      echo "check_docs: src/ reads \$$knob but $doc does not document it" >&2
      fail=1
    fi
  done
done
echo "check_docs: knobs read in src/: $(echo "$read_knobs" | tr '\n' ' ')"

# -- 3: knobs the docs mention must be read in src/ ---------------------------
doc_knobs=$(grep -hoE '\b(VLACNN|REPRO)_[A-Z_]+' README.md DESIGN.md \
  | sort -u | grep -v '^VLACNN_SANITIZE$' || true)
for knob in $doc_knobs; do
  if ! echo "$read_knobs" | grep -qx "$knob"; then
    echo "check_docs: docs mention \$$knob but nothing in src/ reads it" >&2
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: all green"

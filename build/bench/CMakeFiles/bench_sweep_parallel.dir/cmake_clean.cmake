file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_parallel.dir/bench_sweep_parallel.cpp.o"
  "CMakeFiles/bench_sweep_parallel.dir/bench_sweep_parallel.cpp.o.d"
  "bench_sweep_parallel"
  "bench_sweep_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_sweep_parallel.
# This may be replaced when dependencies are built.

// Tests for the multi-chip fleet simulator (DESIGN.md §15): traffic mix,
// routing policies, the fleet event loop (hand-computed hop schedules, exact
// four-span attribution, single-chip equivalence), placement, drops, and the
// fleet capacity planner's thread-count determinism.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "area/area_model.h"
#include "common/thread_pool.h"
#include "net/network.h"
#include "serving/fleet.h"
#include "serving/fleet_planner.h"
#include "serving/request_sim.h"

namespace vlacnn::serving {
namespace {

// ---------------------------------------------------- traffic mix ----------

FleetTrafficMix two_model_mix(std::uint64_t seed = 1) {
  FleetTrafficMix mix;
  mix.names = {"vgg16", "yolo20"};
  mix.shares = {0.7, 0.3};
  mix.seed = seed;
  return mix;
}

TEST(FleetMix, PickIsDeterministicAndSeedSensitive) {
  const FleetTrafficMix a = two_model_mix(1);
  const FleetTrafficMix b = two_model_mix(1);
  const FleetTrafficMix c = two_model_mix(99);
  bool any_diff = false;
  for (std::uint64_t seq = 1; seq <= 256; ++seq) {
    EXPECT_EQ(a.pick(seq), b.pick(seq)) << seq;  // same seed: identical
    any_diff |= a.pick(seq) != c.pick(seq);
  }
  EXPECT_TRUE(any_diff);  // different seed: different stream
  // pick(seq) is a pure function of (seed, seq): re-asking cannot drift.
  EXPECT_EQ(a.pick(7), a.pick(7));
}

TEST(FleetMix, FrequenciesMatchShares) {
  const FleetTrafficMix mix = two_model_mix(42);
  int counts[2] = {0, 0};
  const int n = 20000;
  for (std::uint64_t seq = 1; seq <= n; ++seq) ++counts[mix.pick(seq)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.02);
}

TEST(FleetMix, RejectsBadInput) {
  FleetTrafficMix mix;
  EXPECT_THROW(mix.pick(1), std::invalid_argument);  // empty
  mix.names = {"a", "b"};
  mix.shares = {1.0};
  EXPECT_THROW(mix.pick(1), std::invalid_argument);  // size mismatch
  mix.shares = {1.0, 0.0};
  EXPECT_THROW(mix.pick(1), std::invalid_argument);  // non-positive share
  mix.shares = {1.0, -2.0};
  EXPECT_THROW(mix.pick(1), std::invalid_argument);
}

TEST(FleetMix, ToStringNormalizesShares) {
  FleetTrafficMix mix;
  mix.names = {"vgg16", "yolo20"};
  mix.shares = {7.0, 3.0};  // un-normalized weights
  EXPECT_EQ(mix.to_string(), "vgg16=0.70,yolo20=0.30");
}

// ------------------------------------------------------- routers -----------

TEST(FleetRouterTest, RoundRobinRotatesPerModel) {
  RoundRobinRouter r(2);
  const std::vector<int> hosts{0, 1, 2};
  const std::vector<std::uint64_t> load{9, 0, 0};  // ignored by rr
  EXPECT_EQ(r.route(0, hosts, load), 0);
  EXPECT_EQ(r.route(0, hosts, load), 1);
  EXPECT_EQ(r.route(0, hosts, load), 2);
  EXPECT_EQ(r.route(0, hosts, load), 0);
  // Model 1 keeps its own rotation counter.
  EXPECT_EQ(r.route(1, hosts, load), 0);
  EXPECT_EQ(r.route(0, hosts, load), 1);
}

TEST(FleetRouterTest, JsqPicksFewestOutstandingTiesLowestChip) {
  JoinShortestQueueRouter r;
  EXPECT_EQ(r.route(0, {0, 1, 2}, {3, 1, 1}), 1);  // tie at 1: lowest chip
  EXPECT_EQ(r.route(0, {0, 1, 2}, {0, 2, 1}), 0);
  EXPECT_EQ(r.route(0, {1, 2}, {99, 5, 4}), 2);  // only hosts compete
}

TEST(FleetRouterTest, PowerOfTwoSeedDeterminism) {
  PowerOfTwoRouter a(7), b(7), c(8);
  const std::vector<int> hosts{0, 1, 2, 3};
  const std::vector<std::uint64_t> load{4, 3, 2, 1};
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    const int ra = a.route(0, hosts, load);
    EXPECT_EQ(ra, b.route(0, hosts, load));  // same seed: identical draws
    any_diff |= ra != c.route(0, hosts, load);
  }
  EXPECT_TRUE(any_diff);  // different seed: different draw sequence
}

TEST(FleetRouterTest, PowerOfTwoSingleHostDegenerates) {
  PowerOfTwoRouter r(1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r.route(0, {3}, {0, 0, 0, 17}), 3);
  }
}

TEST(FleetRouterTest, PowerOfTwoTieIsNotStructurallyBiased) {
  // Exact outstanding tie: the seeded coin must let both chips of the drawn
  // pair win sometimes — a lowest-index tie-break would pin every decision.
  PowerOfTwoRouter r(5);
  const std::vector<int> hosts{0, 1};
  const std::vector<std::uint64_t> load{4, 4};
  std::set<int> seen;
  for (int i = 0; i < 128; ++i) seen.insert(r.route(0, hosts, load));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(FleetRouterTest, KindFromStringAndFactory) {
  EXPECT_EQ(router_kind_from_string("rr"), RouterSpec::Kind::kRoundRobin);
  EXPECT_EQ(router_kind_from_string("jsq"),
            RouterSpec::Kind::kJoinShortestQueue);
  EXPECT_EQ(router_kind_from_string("p2c"), RouterSpec::Kind::kPowerOfTwo);
  EXPECT_THROW(router_kind_from_string("random"), std::invalid_argument);
  EXPECT_EQ(make_router({RouterSpec::Kind::kRoundRobin, 1}, 2)->name(), "rr");
  EXPECT_EQ(make_router({RouterSpec::Kind::kJoinShortestQueue, 1}, 2)->name(),
            "jsq");
  EXPECT_EQ(make_router({RouterSpec::Kind::kPowerOfTwo, 1}, 2)->name(), "p2c");
}

TEST(FleetRouterTest, DefaultFleetSeedEnvKnob) {
  ::unsetenv("VLACNN_FLEET_SEED");
  EXPECT_EQ(default_fleet_seed(), 1u);
  ::setenv("VLACNN_FLEET_SEED", "12345", 1);
  EXPECT_EQ(default_fleet_seed(), 12345u);
  ::setenv("VLACNN_FLEET_SEED", "not-a-seed", 1);
  EXPECT_THROW(default_fleet_seed(), std::runtime_error);
  ::unsetenv("VLACNN_FLEET_SEED");
}

// ------------------------------------------------------ chip spec ----------

TEST(FleetChipSpec, EmptyHostedModelsMeansFullReplication) {
  ChipSpec spec;
  EXPECT_TRUE(spec.hosts(0));
  EXPECT_TRUE(spec.hosts(7));
  spec.hosted_models = {1};
  EXPECT_FALSE(spec.hosts(0));
  EXPECT_TRUE(spec.hosts(1));
}

TEST(FleetChipSpec, ShortLabelEncodesThePoint) {
  ChipSpec spec;
  spec.point = {4, 2048, 16ull << 20, 4};
  EXPECT_EQ(spec.short_label(), "c4v2048l16i4");
  spec.point = {64, 4096, 256ull << 20, 64};
  EXPECT_EQ(spec.short_label(), "c64v4096l256i64");
}

// ----------------------------------------------------- event loop ----------

/// A fleet of `n` identical chips with one synthetic cost model per mix
/// model. hosted_models left empty = full replication.
FleetConfig fleet_config(int n_chips, int instances,
                         std::vector<BatchCostModel> costs,
                         int num_models = 1) {
  FleetConfig fc;
  for (int c = 0; c < n_chips; ++c) {
    FleetChip chip;
    chip.spec.point = {1, 512, 1ull << 20, instances};
    chip.costs = costs;
    chip.area_mm2 = 10.0;
    fc.chips.push_back(chip);
  }
  fc.mix.seed = 1;
  for (int m = 0; m < num_models; ++m) {
    fc.mix.names.push_back("m" + std::to_string(m));
    fc.mix.shares.push_back(1.0);
  }
  fc.policy = {BatchPolicySpec::Kind::kNoBatch, 8, 0};
  return fc;
}

TEST(FleetSim, SingleChipHopZeroMatchesSimulateRequests) {
  // One chip, one model, zero hop: the fleet loop must reproduce the
  // single-chip simulator bit for bit — same latencies, same attribution,
  // same JSON. The fleet determinism contract's base case.
  const BatchCostModel cost{300.0, 150.0};
  RequestSimConfig sc;
  sc.instances = 2;
  sc.cost = cost;
  sc.slo_cycles = 2000.0;
  PoissonArrivals a1(400.0, 2000, 42);
  AdaptiveBatchPolicy p1(8, 500.0);
  const ServingStats single = simulate_requests(sc, a1, p1);

  FleetConfig fc = fleet_config(1, 2, {cost});
  fc.policy = {BatchPolicySpec::Kind::kAdaptive, 8, 500.0};
  fc.slo_cycles = 2000.0;
  PoissonArrivals a2(400.0, 2000, 42);
  const FleetStats fleet = simulate_fleet(fc, a2);

  EXPECT_EQ(fleet.fleet.to_json(), single.to_json());
  ASSERT_EQ(fleet.per_chip.size(), 1u);
  EXPECT_EQ(fleet.per_chip[0].to_json(), single.to_json());
  EXPECT_EQ(fleet.mean_router_hop, 0.0);
}

TEST(FleetSim, HandComputedHopSchedule) {
  // One request at t=0, hop 10, service 50: it is routed at 0, joins the
  // queue at 10, dispatches at 10, completes at 60. Exact, no tolerance.
  FleetConfig fc = fleet_config(1, 1, {{50.0, 10.0}});
  fc.router_hop_cycles = 10.0;
  std::vector<FleetRequestRecord> log;
  fc.request_log = &log;
  TraceArrivals arrivals({0.0});
  const FleetStats s = simulate_fleet(fc, arrivals);
  EXPECT_EQ(s.fleet.completed, 1u);
  EXPECT_EQ(s.fleet.makespan, 60.0);
  EXPECT_EQ(s.fleet.mean_latency, 60.0);
  EXPECT_EQ(s.mean_router_hop, 10.0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].router_hop, 10.0);
  EXPECT_EQ(log[0].rec.queue_wait, 0.0);
  EXPECT_EQ(log[0].rec.formation_wait, 0.0);
  EXPECT_EQ(log[0].rec.service, 50.0);
  EXPECT_EQ(log[0].rec.dispatch, 10.0);
  EXPECT_EQ(log[0].rec.completion, 60.0);
}

TEST(FleetSim, FourSpanAttributionIsExact) {
  // The extended Sterbenz identity, on an awkward non-representable hop over
  // a loaded two-chip fleet: for every completed request,
  //   (hop + (queue_wait + formation_wait)) + service == completion - arrival
  // left-to-right, bit-exactly.
  FleetConfig fc = fleet_config(2, 2, {{301.7, 149.3}});
  fc.policy = {BatchPolicySpec::Kind::kAdaptive, 8, 333.3};
  fc.router_hop_cycles = 7.3;
  fc.slo_cycles = 5000.0;
  std::vector<FleetRequestRecord> log;
  fc.request_log = &log;
  PoissonArrivals arrivals(200.0, 3000, 7);
  const FleetStats s = simulate_fleet(fc, arrivals);
  EXPECT_EQ(s.fleet.completed, 3000u);
  ASSERT_EQ(log.size(), 3000u);
  for (const FleetRequestRecord& r : log) {
    EXPECT_EQ(
        (r.router_hop + (r.rec.queue_wait + r.rec.formation_wait)) +
            r.rec.service,
        r.rec.completion - r.rec.arrival);
    EXPECT_GE(r.router_hop, 0.0);
    EXPECT_GE(r.rec.queue_wait, 0.0);
    EXPECT_GE(r.rec.formation_wait, 0.0);
    EXPECT_GT(r.rec.service, 0.0);
    EXPECT_TRUE(r.chip == 0 || r.chip == 1);
  }
  EXPECT_GT(s.mean_router_hop, 0.0);
}

TEST(FleetSim, JsqSpreadsSimultaneousLoad) {
  // Two identical chips, two back-to-back requests, long service: JSQ sends
  // the first to chip 0 (all-zero outstanding, lowest index) and the second
  // to chip 1 (chip 0 now has one outstanding).
  FleetConfig fc = fleet_config(2, 1, {{1000.0, 1000.0}});
  std::vector<FleetRequestRecord> log;
  fc.request_log = &log;
  TraceArrivals arrivals({0.0, 1.0});
  simulate_fleet(fc, arrivals);
  ASSERT_EQ(log.size(), 2u);
  std::set<int> chips;
  for (const auto& r : log) chips.insert(r.chip);
  EXPECT_EQ(chips, (std::set<int>{0, 1}));
}

TEST(FleetSim, QueueCapacityDropsAreCounted) {
  // One instance, capacity-1 waiting room, service far longer than the trace:
  // request 0 dispatches, request 1 queues, the rest are rejected.
  FleetConfig fc = fleet_config(1, 1, {{10000.0, 10000.0}});
  fc.queue_capacity = 1;
  TraceArrivals arrivals({0.0, 1.0, 2.0, 3.0, 4.0});
  const FleetStats s = simulate_fleet(fc, arrivals);
  EXPECT_EQ(s.fleet.offered, 5u);
  EXPECT_EQ(s.fleet.completed, 2u);
  EXPECT_EQ(s.fleet.dropped, 3u);
  ASSERT_EQ(s.per_model.size(), 1u);
  EXPECT_EQ(s.per_model[0].offered, 5u);
  EXPECT_EQ(s.per_model[0].completed, 2u);
  EXPECT_EQ(s.per_model[0].dropped, 3u);
}

TEST(FleetSim, PlacementRestrictsRouting) {
  // Chip 0 hosts only model 1; chip 1 hosts both. Every model-0 request must
  // land on chip 1, whatever the router would prefer.
  FleetConfig fc = fleet_config(2, 2, {{100.0, 50.0}, {100.0, 50.0}}, 2);
  fc.chips[0].spec.hosted_models = {1};
  std::vector<FleetRequestRecord> log;
  fc.request_log = &log;
  PoissonArrivals arrivals(50.0, 500, 3);
  const FleetStats s = simulate_fleet(fc, arrivals);
  EXPECT_EQ(s.fleet.completed, 500u);
  int model0 = 0;
  for (const auto& r : log) {
    if (r.model == 0) {
      ++model0;
      EXPECT_EQ(r.chip, 1);
    }
  }
  EXPECT_GT(model0, 0);  // the mix actually produced model-0 traffic
}

TEST(FleetSim, PerModelSlicesCoverEveryRequest) {
  FleetConfig fc = fleet_config(2, 2, {{100.0, 50.0}, {200.0, 80.0}}, 2);
  fc.slo_cycles = 3000.0;
  PoissonArrivals arrivals(100.0, 1000, 11);
  const FleetStats s = simulate_fleet(fc, arrivals);
  ASSERT_EQ(s.per_model.size(), 2u);
  std::uint64_t offered = 0, completed = 0;
  for (const auto& ms : s.per_model) {
    offered += ms.offered;
    completed += ms.completed;
    EXPECT_GT(ms.offered, 0u);
    EXPECT_GT(ms.p99, 0.0);
    EXPECT_GE(ms.p99, ms.p50);
  }
  EXPECT_EQ(offered, s.fleet.offered);
  EXPECT_EQ(completed, s.fleet.completed);
}

TEST(FleetSim, RejectsInvalidConfigs) {
  TraceArrivals a1({0.0});
  FleetConfig empty;
  empty.mix = two_model_mix();
  EXPECT_THROW(simulate_fleet(empty, a1), std::invalid_argument);

  // A model with no hosting chip.
  FleetConfig orphan = fleet_config(1, 1, {{10.0, 5.0}, {10.0, 5.0}}, 2);
  orphan.chips[0].spec.hosted_models = {0};
  TraceArrivals a2({0.0});
  EXPECT_THROW(simulate_fleet(orphan, a2), std::invalid_argument);

  // Negative or non-finite hop.
  FleetConfig hop = fleet_config(1, 1, {{10.0, 5.0}});
  hop.router_hop_cycles = -1.0;
  TraceArrivals a3({0.0});
  EXPECT_THROW(simulate_fleet(hop, a3), std::invalid_argument);

  // Cost models must cover every mix model.
  FleetConfig short_costs = fleet_config(1, 1, {{10.0, 5.0}}, 2);
  TraceArrivals a4({0.0});
  EXPECT_THROW(simulate_fleet(short_costs, a4), std::invalid_argument);

  // A hosted model with a non-positive first-image cost.
  FleetConfig bad_cost = fleet_config(1, 1, {{0.0, 5.0}});
  TraceArrivals a5({0.0});
  EXPECT_THROW(simulate_fleet(bad_cost, a5), std::invalid_argument);
}

TEST(FleetSim, StatsJsonIsStableAndSelfDescribing) {
  FleetConfig fc = fleet_config(2, 1, {{100.0, 50.0}});
  PoissonArrivals a1(150.0, 400, 5);
  const FleetStats s1 = simulate_fleet(fc, a1);
  PoissonArrivals a2(150.0, 400, 5);
  const FleetStats s2 = simulate_fleet(fc, a2);
  EXPECT_EQ(s1.to_json(), s2.to_json());  // same seed: byte-identical
  const std::string j = s1.to_json();
  EXPECT_NE(j.find("\"fleet\": "), std::string::npos);
  EXPECT_NE(j.find("\"mean_router_hop\": "), std::string::npos);
  EXPECT_NE(j.find("\"total_area_mm2\": "), std::string::npos);
  EXPECT_NE(j.find("\"per_chip\": ["), std::string::npos);
  EXPECT_NE(j.find("\"per_model\": ["), std::string::npos);
  EXPECT_NE(j.find("\"label\": \"c1v512l1i1\""), std::string::npos);
  EXPECT_EQ(s1.total_area_mm2, 20.0);  // two 10 mm2 chips
}

// ------------------------------------------------- fleet planner -----------

TEST(FleetPlannerLabel, CompositionLabelSkipsZeroCounts) {
  std::vector<ServingPoint> types;
  types.push_back({4, 2048, 16ull << 20, 4});
  types.push_back({1, 512, 1ull << 20, 1});
  EXPECT_EQ(composition_label(types, {2, 1}), "2xc4v2048l16i4+1xc1v512l1i1");
  EXPECT_EQ(composition_label(types, {0, 3}), "3xc1v512l1i1");
  EXPECT_EQ(composition_label(types, {1, 0}), "1xc4v2048l16i4");
}

class FleetPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vlacnn_fleet_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Network tiny_a() {
    Network net("tiny_a", {3, 32, 32});
    net.conv(8, 3, 1, 1);
    net.conv(16, 3, 2, 1);
    net.conv(8, 1, 1, 0);
    return net;
  }
  static Network tiny_b() {
    Network net("tiny_b", {3, 48, 48});
    net.conv(8, 3, 1, 1);
    net.conv(8, 3, 2, 1);
    return net;
  }
  static FleetTrafficMix mix() {
    FleetTrafficMix m;
    m.names = {"tiny_a", "tiny_b"};
    m.shares = {0.6, 0.4};
    m.seed = 42;
    return m;
  }
  static FleetQuery query() {
    FleetQuery q;
    q.load_rps = 100000;  // tiny nets are fast; drive them hard
    q.slo_ms = 5;
    q.requests = 400;
    q.seed = 42;
    q.policy = {BatchPolicySpec::Kind::kAdaptive, 8, 20000.0};
    q.max_chips = 3;
    q.max_chip_types = 3;
    return q;
  }

  std::filesystem::path dir_;
};

TEST_F(FleetPlannerTest, ChipTypeMenuIsAreaAscendingAndDeterministic) {
  ResultsDb db((dir_ / "menu.csv").string());
  SweepDriver driver(&db);
  FleetPlanner planner(&driver);
  const std::vector<Network> nets{tiny_a(), tiny_b()};
  const auto menu = planner.chip_type_menu(nets, mix(), query());
  ASSERT_FALSE(menu.empty());
  EXPECT_LE(menu.size(), 3u);
  AreaModel area;
  double prev = 0;
  for (const ServingPoint& p : menu) {
    const double a = area.chip_mm2(p.vlen_bits, p.l2_total_bytes, p.cores);
    EXPECT_GE(a, prev);
    prev = a;
  }
  const auto again = planner.chip_type_menu(nets, mix(), query());
  ASSERT_EQ(menu.size(), again.size());
  for (std::size_t i = 0; i < menu.size(); ++i) {
    EXPECT_EQ(menu[i].vlen_bits, again[i].vlen_bits);
    EXPECT_EQ(menu[i].l2_total_bytes, again[i].l2_total_bytes);
  }
}

TEST_F(FleetPlannerTest, PlanIsByteIdenticalAcrossPoolSizes) {
  const std::vector<Network> nets{tiny_a(), tiny_b()};

  ResultsDb db1((dir_ / "p1.csv").string());
  SweepDriver d1(&db1);
  ThreadPool pool1(1);
  const FleetPlan r1 = FleetPlanner(&d1).plan(nets, mix(), query(), &pool1);

  ResultsDb db8((dir_ / "p8.csv").string());
  SweepDriver d8(&db8);
  ThreadPool pool8(8);
  const FleetPlan r8 = FleetPlanner(&d8).plan(nets, mix(), query(), &pool8);

  ASSERT_EQ(r1.candidates.size(), r8.candidates.size());
  ASSERT_FALSE(r1.candidates.empty());
  for (std::size_t i = 0; i < r1.candidates.size(); ++i) {
    EXPECT_EQ(r1.candidates[i].label, r8.candidates[i].label) << i;
    EXPECT_EQ(r1.candidates[i].simulated, r8.candidates[i].simulated) << i;
    EXPECT_EQ(r1.candidates[i].total_area_mm2, r8.candidates[i].total_area_mm2)
        << i;
    if (r1.candidates[i].simulated) {
      EXPECT_EQ(r1.candidates[i].stats.to_json(),
                r8.candidates[i].stats.to_json())
          << i;
    }
  }
  EXPECT_EQ(r1.best.has_value(), r8.best.has_value());
  if (r1.best.has_value()) {
    EXPECT_EQ(r1.best->label, r8.best->label);
  }
}

TEST_F(FleetPlannerTest, PlanFindsAFeasibleFleetAndOrdersHeadlines) {
  ResultsDb db((dir_ / "plan.csv").string());
  SweepDriver driver(&db);
  const std::vector<Network> nets{tiny_a(), tiny_b()};
  ThreadPool pool(4);
  const FleetPlan plan = FleetPlanner(&driver).plan(nets, mix(), query(),
                                                    &pool);
  ASSERT_TRUE(plan.best.has_value());
  EXPECT_TRUE(plan.best->meets_slo);
  EXPECT_TRUE(plan.best->simulated);
  EXPECT_GT(plan.best->total_area_mm2, 0.0);
  // The overall winner can only tie or beat the homogeneous one: the
  // homogeneous set is a subset of the search space.
  if (plan.best_homogeneous.has_value()) {
    EXPECT_LE(plan.best->total_area_mm2,
              plan.best_homogeneous->total_area_mm2);
  }
  // Every feasible candidate simulated, none cheaper than the winner.
  for (const FleetCandidate& c : plan.candidates) {
    if (c.simulated && c.meets_slo) {
      EXPECT_GE(c.total_area_mm2, plan.best->total_area_mm2);
    }
  }
}

TEST_F(FleetPlannerTest, PlanRejectsInconsistentInputs) {
  ResultsDb db((dir_ / "bad.csv").string());
  SweepDriver driver(&db);
  FleetPlanner planner(&driver);
  const std::vector<Network> one{tiny_a()};
  EXPECT_THROW(planner.plan(one, mix(), query()), std::invalid_argument);
  FleetQuery q = query();
  q.load_rps = 0;
  const std::vector<Network> nets{tiny_a(), tiny_b()};
  EXPECT_THROW(planner.plan(nets, mix(), q), std::invalid_argument);
  q = query();
  q.max_chips = 0;
  EXPECT_THROW(planner.plan(nets, mix(), q), std::invalid_argument);
}

}  // namespace
}  // namespace vlacnn::serving

// Report subsystem: attribution math (including the degenerate-input guards),
// roofline classification, JSON emit/parse round-trip, the baseline diff the
// regression gate runs on, collector determinism, and the sweep driver's
// breakdown threading (cold fill + lazy upgrade of v1 rows).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "report/collector.h"
#include "report/json.h"
#include "report/report.h"
#include "sweep/sweep.h"

namespace vlacnn {
namespace {

using report::Attribution;
using report::Bound;
using report::DiffOptions;
using report::DiffResult;
using report::RooflineParams;
using report::RunReport;

SweepRow healthy_row(int layer = 0, Algo algo = Algo::kGemm6) {
  SweepRow r;
  r.key = SweepKey{"tiny", layer, algo, 512, 1u << 20, 8,
                   VpuAttach::kIntegratedL1};
  r.desc = ConvLayerDesc{3, 32, 32, 8, 3, 3, 1, 1};
  r.cycles = 1000.0;
  r.avg_vl = 14.0;
  r.l2_miss_rate = 0.25;
  r.mem_bytes = 4096.0;
  r.flops = 64000.0;
  r.has_breakdown = true;
  r.bd.compute_cycles = 400.0;
  r.bd.mem_issue_cycles = 300.0;
  r.bd.mem_stall_cycles = 200.0;
  r.bd.scalar_cycles = 100.0;
  r.bd.vec_instructions = 500.0;
  r.bd.vec_elems = 7000.0;
  r.bd.l1_accesses = 1000.0;
  r.bd.l1_misses = 50.0;
  r.bd.l2_accesses = 50.0;
  r.bd.l2_misses = 10.0;
  return r;
}

/// Point the collector at a temp dir for one test, restoring "off" after.
class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vlacnn_report_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    report::Collector::global().reset();
  }
  void TearDown() override {
    report::set_report_dir("");
    report::Collector::global().reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

// ------------------------------------------------------- attribution -------

TEST(ReportAttribution, RooflineClassification) {
  const RooflineParams p;  // peak = 16 flops/cycle @ 8 lanes, ridge = 2.5
  SweepRow r = healthy_row();
  // AI = 64000/4096 = 15.625 >= ridge -> compute-bound.
  Attribution a = report::attribute(r, p);
  EXPECT_EQ(a.bound, Bound::kCompute);
  EXPECT_TRUE(a.degenerate.empty());
  EXPECT_DOUBLE_EQ(a.arith_intensity, 15.625);
  EXPECT_DOUBLE_EQ(a.achieved_flops_per_cycle, 64.0);
  EXPECT_DOUBLE_EQ(a.attainable_flops_per_cycle, 16.0);  // capped at peak
  EXPECT_DOUBLE_EQ(a.vec_utilization, 7000.0 / (8.0 * 1000.0));
  EXPECT_DOUBLE_EQ(a.l1_miss_rate, 0.05);
  EXPECT_DOUBLE_EQ(a.l2_miss_rate, 0.2);

  // Low AI -> bandwidth-bound, attainable = AI * bandwidth below the roof.
  r.flops = 1000.0;  // AI = 1000/4096 ~ 0.244 < 2.5
  a = report::attribute(r, p);
  EXPECT_EQ(a.bound, Bound::kBandwidth);
  EXPECT_DOUBLE_EQ(a.attainable_flops_per_cycle,
                   1000.0 / 4096.0 * p.mem_bytes_per_cycle);
}

TEST(ReportAttribution, ZeroCyclesIsClampedAndLabeled) {
  SweepRow r = healthy_row();
  r.cycles = 0;
  const Attribution a = report::attribute(r, RooflineParams{});
  EXPECT_EQ(a.bound, Bound::kDegenerate);
  EXPECT_EQ(a.degenerate, "zero_cycles");
  EXPECT_DOUBLE_EQ(a.vec_utilization, 0.0);          // clamped, not NaN
  EXPECT_DOUBLE_EQ(a.achieved_flops_per_cycle, 0.0);  // clamped, not inf
  EXPECT_DOUBLE_EQ(a.roofline_efficiency, 0.0);
}

TEST(ReportAttribution, ZeroDramBytesGivesInfiniteAiButValidJson) {
  SweepRow r = healthy_row();
  r.mem_bytes = 0;
  const Attribution a = report::attribute(r, RooflineParams{});
  EXPECT_TRUE(std::isinf(a.arith_intensity));
  EXPECT_EQ(a.degenerate, "zero_dram_bytes");
  EXPECT_EQ(a.bound, Bound::kCompute);  // everything served from cache
  EXPECT_DOUBLE_EQ(a.attainable_flops_per_cycle, 16.0);  // the compute roof

  // "ai": inf would be invalid JSON; the emitter must produce null and the
  // whole document must still parse.
  RunReport rep;
  rep.tool = "t";
  rep.entries.push_back({r, a});
  const std::string json = rep.to_json();
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  const report::Json doc = report::parse_json(json);
  const report::Json& attr =
      doc.at("entries").array.at(0).at("attribution");
  EXPECT_TRUE(attr.at("arith_intensity").is_null());
  EXPECT_EQ(attr.at("degenerate").string, "zero_dram_bytes");
}

TEST(ReportAttribution, MissingBreakdownLabeled) {
  SweepRow r = healthy_row();
  r.has_breakdown = false;
  const Attribution a = report::attribute(r, RooflineParams{});
  EXPECT_EQ(a.degenerate, "missing_breakdown");
  EXPECT_TRUE(std::isnan(a.vec_utilization));
  EXPECT_TRUE(std::isnan(a.l1_miss_rate));
  EXPECT_EQ(a.bound, Bound::kCompute);  // headline AI is still classifiable

  RunReport rep;
  rep.tool = "t";
  rep.entries.push_back({r, a});
  const report::Json doc = report::parse_json(rep.to_json());
  const report::Json& e = doc.at("entries").array.at(0);
  EXPECT_TRUE(e.at("breakdown").is_null());
  EXPECT_TRUE(e.at("attribution").at("vec_utilization").is_null());
}

// --------------------------------------------------- JSON round-trip -------

TEST(ReportJson, EmitParseRoundTripIsExact) {
  RunReport rep;
  rep.tool = "roundtrip";
  rep.wall_ms = 12.25;
  SweepRow r1 = healthy_row(0, Algo::kGemm6);
  r1.cycles = 1.0 / 3.0;  // %.17g must survive the trip bit-exactly
  SweepRow r2 = healthy_row(1, Algo::kDirect);
  r2.has_breakdown = false;
  rep.entries.push_back({r1, report::attribute(r1, rep.roofline)});
  rep.entries.push_back({r2, report::attribute(r2, rep.roofline)});
  rep.serving.push_back({4, 1024, 16u << 20, 4, 5e8, 8e-9, 12.5});
  report::DispatchCell dc;
  dc.net = "vgg16";
  dc.cores = 4;
  dc.vlen_bits = 2048;
  dc.l2_total_bytes = 8u << 20;
  dc.instances = 2;
  dc.layers = 13;
  dc.mispredicted_layers = 3;
  dc.batches = 917;
  dc.images = 3668;
  dc.explorations = 41;
  dc.learned_conv_cycles = 1.0 / 7.0;  // %.17g must survive bit-exactly
  dc.oracle_conv_cycles = 2.0 / 7.0;
  dc.selector_cycles = 4000.0 * 13 * 3668;
  dc.oracle_gap = 1.0 / 3.0;
  rep.dispatch.push_back(dc);

  const RunReport back = report::report_from_json(rep.to_json());
  EXPECT_EQ(back.tool, "roundtrip");
  EXPECT_EQ(back.wall_ms, 12.25);
  ASSERT_EQ(back.entries.size(), 2u);
  const SweepRow& b1 = back.entries[0].row;
  EXPECT_TRUE(!(b1.key < r1.key) && !(r1.key < b1.key));
  EXPECT_EQ(b1.cycles, r1.cycles);  // bit-exact, not NEAR
  EXPECT_EQ(b1.desc, r1.desc);
  ASSERT_TRUE(b1.has_breakdown);
  EXPECT_EQ(b1.bd.vec_elems, r1.bd.vec_elems);
  EXPECT_FALSE(back.entries[1].row.has_breakdown);
  ASSERT_EQ(back.serving.size(), 1u);
  EXPECT_EQ(back.serving[0].cycles_per_image, 5e8);
  EXPECT_EQ(back.serving[0].instances, 4);
  ASSERT_EQ(back.dispatch.size(), 1u);
  const report::DispatchCell& bd = back.dispatch[0];
  EXPECT_EQ(bd.net, dc.net);
  EXPECT_EQ(bd.cores, dc.cores);
  EXPECT_EQ(bd.vlen_bits, dc.vlen_bits);
  EXPECT_EQ(bd.l2_total_bytes, dc.l2_total_bytes);
  EXPECT_EQ(bd.instances, dc.instances);
  EXPECT_EQ(bd.layers, dc.layers);
  EXPECT_EQ(bd.mispredicted_layers, dc.mispredicted_layers);
  EXPECT_EQ(bd.batches, dc.batches);
  EXPECT_EQ(bd.images, dc.images);
  EXPECT_EQ(bd.explorations, dc.explorations);
  EXPECT_EQ(bd.learned_conv_cycles, dc.learned_conv_cycles);
  EXPECT_EQ(bd.oracle_conv_cycles, dc.oracle_conv_cycles);
  EXPECT_EQ(bd.selector_cycles, dc.selector_cycles);
  EXPECT_EQ(bd.oracle_gap, dc.oracle_gap);
  EXPECT_EQ(back.total_cycles(), rep.total_cycles());
  EXPECT_NE(rep.to_json().find("\"dispatch_cells\": 1"), std::string::npos);
}

TEST(ReportJson, RequestSimAttributionAndTimelineCellsRoundTrip) {
  RunReport rep;
  rep.tool = "roundtrip_tl";
  report::RequestSimCell rc;
  rc.cores = 4;
  rc.vlen_bits = 1024;
  rc.l2_total_bytes = 8u << 20;
  rc.instances = 2;
  rc.policy = "adaptive8@2e+06";
  rc.arrivals = "poisson";
  rc.offered = 2000;
  rc.completed = 1990;
  rc.dropped = 10;
  rc.mean_latency = 3.0 / 7.0;  // %.17g must survive bit-exactly
  rc.mean_queue_wait = 1.0 / 7.0;
  rc.mean_formation_wait = 1.0 / 13.0;
  rc.mean_service = 2.0 / 11.0;
  rep.request_sim.push_back(rc);
  report::TimelineCell tc;
  tc.cores = 4;
  tc.vlen_bits = 1024;
  tc.l2_total_bytes = 8u << 20;
  tc.instances = 2;
  tc.policy = "adaptive8@2e+06";
  tc.arrivals = "poisson";
  tc.snapshots = 57;
  tc.interval_cycles = 1e6;
  tc.alerts = 3;
  tc.warmup_cycles = 4e6;
  tc.steady_p99 = 1.0 / 3.0;
  tc.max_burn_rate = 2.5;
  tc.time_in_alert_cycles = 7e6;
  rep.timeline.push_back(tc);

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"timeline_cells\": 1"), std::string::npos);
  const RunReport back = report::report_from_json(json);
  ASSERT_EQ(back.request_sim.size(), 1u);
  EXPECT_EQ(back.request_sim[0].mean_queue_wait, rc.mean_queue_wait);
  EXPECT_EQ(back.request_sim[0].mean_formation_wait, rc.mean_formation_wait);
  EXPECT_EQ(back.request_sim[0].mean_service, rc.mean_service);
  ASSERT_EQ(back.timeline.size(), 1u);
  const report::TimelineCell& bt = back.timeline[0];
  EXPECT_EQ(bt.cores, tc.cores);
  EXPECT_EQ(bt.vlen_bits, tc.vlen_bits);
  EXPECT_EQ(bt.l2_total_bytes, tc.l2_total_bytes);
  EXPECT_EQ(bt.instances, tc.instances);
  EXPECT_EQ(bt.policy, tc.policy);
  EXPECT_EQ(bt.arrivals, tc.arrivals);
  EXPECT_EQ(bt.snapshots, tc.snapshots);
  EXPECT_EQ(bt.interval_cycles, tc.interval_cycles);
  EXPECT_EQ(bt.alerts, tc.alerts);
  EXPECT_EQ(bt.warmup_cycles, tc.warmup_cycles);
  EXPECT_EQ(bt.steady_p99, tc.steady_p99);  // bit-exact, not NEAR
  EXPECT_EQ(bt.max_burn_rate, tc.max_burn_rate);
  EXPECT_EQ(bt.time_in_alert_cycles, tc.time_in_alert_cycles);
  // The summary table renders the timeline section.
  const std::string text = report::summarize(back);
  EXPECT_NE(text.find("adaptive8@2e+06"), std::string::npos);

  // Pre-attribution reports (no attribution keys, no timeline section) still
  // parse, with the new fields defaulting to zero.
  RunReport old;
  old.tool = "old";
  report::RequestSimCell oc;
  oc.policy = "nobatch";
  oc.arrivals = "poisson";
  old.request_sim.push_back(oc);
  std::string old_json = old.to_json();
  for (const char* key : {"\"mean_queue_wait\"", "\"mean_formation_wait\"",
                          "\"mean_service\""}) {
    // Rename the keys so the parser sees a file without them (unknown keys
    // are ignored), exactly like a report written before they existed.
    const std::size_t at = old_json.find(key);
    ASSERT_NE(at, std::string::npos);
    old_json.replace(at, 6, "\"gone_");
  }
  const RunReport oldback = report::report_from_json(old_json);
  ASSERT_EQ(oldback.request_sim.size(), 1u);
  EXPECT_EQ(oldback.request_sim[0].mean_queue_wait, 0.0);
  EXPECT_EQ(oldback.request_sim[0].mean_service, 0.0);
}

TEST(ReportJson, PhaseCellsRoundTripWithNaNMissRates) {
  RunReport rep;
  rep.tool = "roundtrip_ph";
  report::PhaseCell pc;
  pc.key = "vgg16/L02/gemm6/vlen512/l2:1048576/lanes8/int";
  pc.phase = "macro-kernel";
  pc.cycles = 1.0 / 3.0;  // %.17g must survive bit-exactly
  pc.compute_cycles = 1.0 / 7.0;
  pc.mem_issue_cycles = 1.0 / 11.0;
  pc.mem_stall_cycles = 1.0 / 13.0;
  pc.scalar_cycles = 1.0 / 17.0;
  pc.avg_vl = 14.5;
  pc.l1_miss_rate = 0.125;
  pc.l2_miss_rate = 2.0 / 3.0;
  pc.mem_bytes = 65536.0;
  rep.phases.push_back(pc);
  report::PhaseCell im2col;  // a phase that issued no cache accesses
  im2col.key = pc.key;
  im2col.phase = "im2col";
  im2col.cycles = 42.0;
  im2col.l1_miss_rate = std::numeric_limits<double>::quiet_NaN();
  im2col.l2_miss_rate = std::numeric_limits<double>::quiet_NaN();
  rep.phases.push_back(im2col);

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"phase_cells\": 2"), std::string::npos);
  const RunReport back = report::report_from_json(json);
  ASSERT_EQ(back.phases.size(), 2u);
  const report::PhaseCell& bp = back.phases[0];
  EXPECT_EQ(bp.key, pc.key);
  EXPECT_EQ(bp.phase, pc.phase);
  EXPECT_EQ(bp.cycles, pc.cycles);  // bit-exact, not NEAR
  EXPECT_EQ(bp.compute_cycles, pc.compute_cycles);
  EXPECT_EQ(bp.mem_issue_cycles, pc.mem_issue_cycles);
  EXPECT_EQ(bp.mem_stall_cycles, pc.mem_stall_cycles);
  EXPECT_EQ(bp.scalar_cycles, pc.scalar_cycles);
  EXPECT_EQ(bp.avg_vl, pc.avg_vl);
  EXPECT_EQ(bp.l1_miss_rate, pc.l1_miss_rate);
  EXPECT_EQ(bp.l2_miss_rate, pc.l2_miss_rate);
  EXPECT_EQ(bp.mem_bytes, pc.mem_bytes);
  // NaN serializes as JSON null and parses back as NaN, not 0.
  EXPECT_TRUE(std::isnan(back.phases[1].l1_miss_rate));
  EXPECT_TRUE(std::isnan(back.phases[1].l2_miss_rate));
  // The summary table renders the phase section (and "-" for the NaN rate).
  const std::string text = report::summarize(back);
  EXPECT_NE(text.find("macro-kernel"), std::string::npos);
  EXPECT_NE(text.find("im2col"), std::string::npos);
  // Pre-kernprof reports (no "phases" key) still parse with no cells.
  RunReport old;
  old.tool = "old";
  const RunReport oldback = report::report_from_json(old.to_json());
  EXPECT_TRUE(oldback.phases.empty());
  // CSV grows a phase block only when cells exist.
  EXPECT_EQ(old.to_csv().find("l1_miss_rate"), std::string::npos);
  EXPECT_NE(rep.to_csv().find("key,phase,cycles"), std::string::npos);
}

TEST(ReportCollector, RecordPhasesKeyedDedupAndKeyOrder) {
  report::Collector c;
  report::PhaseCell pc;
  pc.phase = "im2col";
  pc.cycles = 100.0;
  // Record keys out of order; re-record the second to confirm last-write-wins
  // replaces the whole vector for that key.
  pc.key = "b";
  c.record_phases("b", {pc, pc});
  pc.key = "a";
  c.record_phases("a", {pc});
  pc.key = "b";
  pc.cycles = 50.0;
  c.record_phases("b", {pc});
  const RunReport snap = c.snapshot("t", 0.0);
  ASSERT_EQ(snap.phases.size(), 2u);  // flattened in key order, b deduped
  EXPECT_EQ(snap.phases[0].key, "a");
  EXPECT_EQ(snap.phases[0].cycles, 100.0);
  EXPECT_EQ(snap.phases[1].key, "b");
  EXPECT_EQ(snap.phases[1].cycles, 50.0);
  c.reset();
  EXPECT_TRUE(c.snapshot("t", 0.0).phases.empty());
}

TEST(ReportCollector, RecordTimelineKeyedDedup) {
  report::Collector c;
  report::TimelineCell tc;
  tc.cores = 2;
  tc.vlen_bits = 512;
  tc.l2_total_bytes = 4u << 20;
  tc.instances = 1;
  tc.policy = "nobatch";
  tc.arrivals = "poisson";
  tc.max_burn_rate = 0.5;
  c.record_timeline(tc);
  tc.max_burn_rate = 0.25;  // same key: later record wins
  c.record_timeline(tc);
  tc.arrivals = "closed_loop";  // different key: second cell
  tc.max_burn_rate = 0.125;
  c.record_timeline(tc);
  const RunReport snap = c.snapshot("t", 0.0);
  ASSERT_EQ(snap.timeline.size(), 2u);
  EXPECT_EQ(snap.timeline[0].max_burn_rate, 0.125);  // closed_loop < poisson
  EXPECT_EQ(snap.timeline[1].max_burn_rate, 0.25);
}

TEST(ReportCollector, RecordDispatchKeyedDedup) {
  report::Collector c;
  report::DispatchCell dc;
  dc.net = "vgg16";
  dc.cores = 2;
  dc.vlen_bits = 512;
  dc.l2_total_bytes = 4u << 20;
  dc.instances = 1;
  dc.oracle_gap = 0.5;
  c.record_dispatch(dc);
  dc.oracle_gap = 0.25;  // same key: later record wins
  c.record_dispatch(dc);
  dc.instances = 2;  // different key: second cell
  dc.oracle_gap = 0.125;
  c.record_dispatch(dc);
  const RunReport snap = c.snapshot("t", 0.0);
  ASSERT_EQ(snap.dispatch.size(), 2u);
  EXPECT_EQ(snap.dispatch[0].oracle_gap, 0.25);
  EXPECT_EQ(snap.dispatch[1].oracle_gap, 0.125);
}

TEST(ReportJson, RejectsWrongSchema) {
  EXPECT_THROW(report::report_from_json("{\"schema\": \"other.v9\"}"),
               std::runtime_error);
  EXPECT_THROW(report::report_from_json("{]"), std::runtime_error);
}

// ---------------------------------------------------------------- diff -----

TEST(ReportDiff, IdenticalReportsAreOk) {
  RunReport rep;
  rep.tool = "t";
  for (int i = 0; i < 3; ++i) {
    SweepRow r = healthy_row(i);
    rep.entries.push_back({r, report::attribute(r, rep.roofline)});
  }
  const DiffResult d = report::diff_reports(rep, rep, DiffOptions{});
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.compared, 3u);
  EXPECT_TRUE(d.regressions.empty());
  EXPECT_TRUE(d.improvements.empty());
  EXPECT_EQ(d.total.delta_pct, 0.0);
}

TEST(ReportDiff, TenPercentPerturbationFailsTwoPercentBudget) {
  RunReport base;
  base.tool = "t";
  for (int i = 0; i < 3; ++i) {
    SweepRow r = healthy_row(i);
    base.entries.push_back({r, report::attribute(r, base.roofline)});
  }
  RunReport cur = base;
  cur.entries[1].row.cycles *= 1.10;  // +10% on one grid point

  DiffOptions opt;  // default 2% budget
  const DiffResult d = report::diff_reports(base, cur, opt);
  EXPECT_FALSE(d.ok());
  ASSERT_EQ(d.regressions.size(), 1u);
  EXPECT_NEAR(d.regressions[0].delta_pct, 10.0, 1e-9);
  EXPECT_EQ(d.regressions[0].key,
            report::entry_key(base.entries[1].row.key));

  // A +10% *improvement* stays ok (improvements are reported, not gated).
  RunReport faster = base;
  faster.entries[1].row.cycles *= 0.90;
  const DiffResult d2 = report::diff_reports(base, faster, opt);
  EXPECT_TRUE(d2.ok());
  EXPECT_EQ(d2.improvements.size(), 1u);
}

TEST(ReportDiff, DisjointKeysReportedButNotGated) {
  RunReport base, cur;
  SweepRow a = healthy_row(0), b = healthy_row(1);
  base.entries.push_back({a, report::attribute(a, base.roofline)});
  cur.entries.push_back({b, report::attribute(b, cur.roofline)});
  const DiffResult d = report::diff_reports(base, cur, DiffOptions{});
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.compared, 0u);
  ASSERT_EQ(d.only_base.size(), 1u);
  ASSERT_EQ(d.only_cur.size(), 1u);
}

TEST(ReportDiff, WallGatingIsOptIn) {
  RunReport base, cur;
  base.wall_ms = 100;
  cur.wall_ms = 200;  // +100% wall
  EXPECT_TRUE(report::diff_reports(base, cur, DiffOptions{}).ok());
  DiffOptions opt;
  opt.wall_budget_pct = 50;
  EXPECT_FALSE(report::diff_reports(base, cur, opt).ok());
}

// ----------------------------------------------------------- collector -----

TEST(ReportCollector, SlugifyTitles) {
  EXPECT_EQ(report::slugify("Fig 1: per-layer algorithm comparison, VGG-16"),
            "fig_1_per_layer_algorithm_comparison_vgg_16");
  EXPECT_EQ(report::slugify("  --  "), "report");
  EXPECT_EQ(report::slugify("plain"), "plain");
}

TEST_F(ReportTest, SnapshotIsDeterministicAcrossRecordOrder) {
  auto& c = report::Collector::global();
  const SweepRow r0 = healthy_row(0), r1 = healthy_row(1),
                 r2 = healthy_row(2);
  c.record_row(r1);
  c.record_row(r0);
  c.record_row(r2);
  c.record_serving({4, 512, 4u << 20, 4, 1e6, 4e-6, 3.5});
  c.record_serving({1, 512, 1u << 20, 1, 2e6, 0.5e-6, 1.5});
  const std::string json_a = c.snapshot("t", 0).to_json();

  c.reset();
  c.record_row(r2);
  c.record_serving({1, 512, 1u << 20, 1, 2e6, 0.5e-6, 1.5});
  c.record_row(r0);
  c.record_serving({4, 512, 4u << 20, 4, 1e6, 4e-6, 3.5});
  c.record_row(r1);
  const std::string json_b = c.snapshot("t", 0).to_json();
  EXPECT_EQ(json_a, json_b);  // byte-identical regardless of arrival order
}

TEST_F(ReportTest, WriteReportFilesEmitsJsonAndCsv) {
  report::set_report_dir(dir_.string());
  ASSERT_TRUE(report::enabled());
  report::Collector::global().record_row(healthy_row());
  const std::string json_path =
      report::write_report_files("My Fancy Title!", 42.5);
  EXPECT_EQ(json_path, (dir_ / "my_fancy_title.report.json").string());
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const RunReport back = report::report_from_json(text);
  EXPECT_EQ(back.tool, "my_fancy_title");
  EXPECT_EQ(back.wall_ms, 42.5);
  ASSERT_EQ(back.entries.size(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(dir_ / "my_fancy_title.report.csv"));
  // summarize() must render every report without tripping on content.
  EXPECT_NE(report::summarize(back).find("TOTAL"), std::string::npos);
}

// --------------------------------------- sweep driver integration ----------

TEST_F(ReportTest, SweepFillsBreakdownAndCollectorReconciles) {
  report::set_report_dir(dir_.string());
  ResultsDb db((dir_ / "cache.csv").string());
  SweepDriver driver(&db);
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  for (Algo a : kAllAlgos) {
    driver.get("tiny", 0, d, a, 512, 1u << 20);
  }
  const RunReport rep = report::Collector::global().snapshot("t", 0);
  ASSERT_EQ(rep.entries.size(), kAllAlgos.size());
  for (const report::ReportEntry& e : rep.entries) {
    ASSERT_TRUE(e.row.has_breakdown) << report::entry_key(e.row.key);
    // The recorded cycle split must reconcile with the row's total.
    const SweepBreakdown& bd = e.row.bd;
    const double sum = bd.compute_cycles + bd.mem_issue_cycles +
                       bd.mem_stall_cycles + bd.scalar_cycles;
    EXPECT_NEAR(sum, e.row.cycles, e.row.cycles * 1e-9)
        << report::entry_key(e.row.key);
    EXPECT_TRUE(e.attr.degenerate.empty());
  }
}

TEST_F(ReportTest, V1RowsAreLazilyUpgradedOnlyWhenReportingEnabled) {
  const std::string cache = (dir_ / "cache.csv").string();
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  double v1_cycles = 0;
  {
    // Seed the cache, then strip the breakdown to emulate a v1-loaded row.
    ResultsDb db(cache);
    SweepDriver driver(&db);
    SweepRow r = driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20);
    v1_cycles = r.cycles;
    r.has_breakdown = false;
    r.bd = SweepBreakdown{};
    db.put(r);
  }
  {
    // Reporting disabled: the row stays breakdown-less (no hidden resim).
    ResultsDb db(cache);
    SweepDriver driver(&db);
    const SweepRow r = driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20);
    EXPECT_FALSE(r.has_breakdown);
  }
  {
    // Reporting enabled: get() re-simulates, persists, and the upgraded row
    // reproduces the original headline cycles bit-for-bit (the simulation is
    // deterministic).
    report::set_report_dir(dir_.string());
    ResultsDb db(cache);
    SweepDriver driver(&db);
    const SweepRow r = driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20);
    EXPECT_TRUE(r.has_breakdown);
    EXPECT_EQ(r.cycles, v1_cycles);
    report::set_report_dir("");
  }
  // The upgrade was persisted: a fresh (report-off) load sees the breakdown.
  ResultsDb db(cache);
  const auto hit = db.find(SweepKey{"tiny", 0, Algo::kGemm3, 512, 1u << 20, 8,
                                    VpuAttach::kIntegratedL1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->has_breakdown);
  EXPECT_GT(hit->bd.compute_cycles, 0.0);
}

TEST_F(ReportTest, ParallelSweepReportMatchesSerialReport) {
  // With reporting enabled, the report a parallel fan-out produces must be
  // byte-identical to one built by serial get() calls over the same grid.
  report::set_report_dir(dir_.string());
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  const ConvLayerDesc d2{8, 16, 16, 16, 1, 1, 1, 0};

  ResultsDb serial_db((dir_ / "serial.csv").string());
  SweepDriver serial(&serial_db);
  for (int layer = 0; layer < 2; ++layer) {
    for (Algo a : {Algo::kGemm3, Algo::kGemm6}) {
      serial.get("tiny", layer, layer == 0 ? d : d2, a, 512, 1u << 20);
    }
  }
  const std::string serial_json =
      report::Collector::global().snapshot("t", 0).to_json();

  report::Collector::global().reset();
  ResultsDb par_db((dir_ / "parallel.csv").string());
  SweepDriver parallel(&par_db);
  std::vector<SweepRequest> reqs;
  for (Algo a : {Algo::kGemm3, Algo::kGemm6}) {
    for (int layer = 1; layer >= 0; --layer) {  // different order on purpose
      reqs.push_back({"tiny", layer, layer == 0 ? d : d2, a, 512, 1u << 20, 8,
                      VpuAttach::kIntegratedL1});
    }
  }
  parallel.get_many(reqs);
  const std::string parallel_json =
      report::Collector::global().snapshot("t", 0).to_json();
  EXPECT_EQ(serial_json, parallel_json);
}

}  // namespace
}  // namespace vlacnn

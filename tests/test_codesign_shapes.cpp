// Regression tests pinning the papers' qualitative co-design findings on
// scaled-down (but shape-representative) layers, so a change to the kernels or
// the timing model that breaks a headline conclusion fails CI rather than
// silently distorting the figures.
#include <gtest/gtest.h>

#include "algos/registry.h"

namespace vlacnn {
namespace {

double cycles(Algo a, const ConvLayerDesc& d, std::uint32_t vlen,
              std::uint64_t l2_mb,
              VpuAttach attach = VpuAttach::kIntegratedL1) {
  SimConfig c = make_sim_config(vlen, l2_mb << 20, 8, attach);
  return conv_simulate(a, d, c).cycles;
}

// Layer archetypes (scaled from Table 1 rows to keep tests fast).
const ConvLayerDesc kHighResLowChan{3, 152, 152, 16, 3, 3, 1, 1};   // layer 1
const ConvLayerDesc kMid3x3{64, 56, 56, 64, 3, 3, 1, 1};            // VGG mid
const ConvLayerDesc kSkinnyManyChan{256, 14, 14, 256, 1, 1, 1, 0};  // late 1x1
const ConvLayerDesc kSkinny3x3{256, 14, 14, 256, 3, 3, 1, 1};       // VGG tail

TEST(CodesignShapes, DirectWinsHighResolutionLowChannelLayer) {
  // Paper II Figs 1-2: Direct is best when input/output dimensions are high
  // but channels are few (layer 1).
  const double direct = cycles(Algo::kDirect, kHighResLowChan, 512, 1);
  EXPECT_LT(direct, cycles(Algo::kGemm3, kHighResLowChan, 512, 1));
  EXPECT_LT(direct, cycles(Algo::kGemm6, kHighResLowChan, 512, 1));
  EXPECT_LT(direct, cycles(Algo::kWinograd, kHighResLowChan, 512, 1));
}

TEST(CodesignShapes, WinogradWinsMid3x3Stride1Layer) {
  // Paper II: Winograd is the best choice for 3x3 stride-1 layers with enough
  // channels for inter-tile parallelism.
  const double wino = cycles(Algo::kWinograd, kMid3x3, 512, 1);
  EXPECT_LT(wino, cycles(Algo::kDirect, kMid3x3, 512, 1));
  EXPECT_LT(wino, cycles(Algo::kGemm6, kMid3x3, 512, 1));
}

TEST(CodesignShapes, GemmWinsSkinnyManyChannelLayer) {
  // Paper II: im2col+GEMM prevails for skinny matrices with many channels
  // (late 1x1 layers). Direct loses there.
  const double g3 = cycles(Algo::kGemm3, kSkinnyManyChan, 512, 1);
  const double g6 = cycles(Algo::kGemm6, kSkinnyManyChan, 512, 1);
  EXPECT_LT(std::min(g3, g6), cycles(Algo::kDirect, kSkinnyManyChan, 512, 1));
}

TEST(CodesignShapes, DirectHasBestVlenScaling) {
  // Paper II Figs 3-4: Direct shows the strongest 512 -> 4096-bit scaling.
  auto scaling = [&](Algo a, const ConvLayerDesc& d) {
    return cycles(a, d, 512, 1) / cycles(a, d, 4096, 1);
  };
  const double direct = scaling(Algo::kDirect, kMid3x3);
  EXPECT_GT(direct, 1.5);
  EXPECT_GT(direct, scaling(Algo::kWinograd, kMid3x3));
}

TEST(CodesignShapes, WinogradVlenScalingSaturatesBeyond2048) {
  // Paper I/II: the 2048-bit tuple-multiplication block cap makes Winograd's
  // VLEN scaling flat from 2048 to 4096 bits.
  const double c2048 = cycles(Algo::kWinograd, kMid3x3, 2048, 4);
  const double c4096 = cycles(Algo::kWinograd, kMid3x3, 4096, 4);
  EXPECT_NEAR(c4096 / c2048, 1.0, 0.05);
  // ...while 512 -> 2048 does scale.
  EXPECT_GT(cycles(Algo::kWinograd, kMid3x3, 512, 4) / c2048, 1.15);
}

TEST(CodesignShapes, GemmBenefitsFromLargerCache) {
  // Paper II Fig 6: at 4096-bit vectors the 3-loop GEMM's working slab
  // (K x gvl) overflows a 1 MB L2 on high-channel layers and the 64 MB cache
  // recovers the loss "intensively" (paper: up to 3.6x). At 512-bit the
  // direction holds but the magnitude is small (see EXPERIMENTS.md).
  const ConvLayerDesc d{256, 56, 56, 128, 3, 3, 1, 1};  // K*gvl = 1.2MB @4096
  EXPECT_GT(
      cycles(Algo::kGemm3, d, 4096, 1) / cycles(Algo::kGemm3, d, 4096, 64),
      1.3);
  EXPECT_GE(
      cycles(Algo::kGemm3, d, 512, 1) / cycles(Algo::kGemm3, d, 512, 64),
      1.0);
}

TEST(CodesignShapes, WinogradLeastCacheSensitive) {
  // Paper I: Winograd has lower cache requirements than im2col+GEMM.
  const ConvLayerDesc d{64, 112, 112, 64, 3, 3, 1, 1};
  const double wino_gain =
      cycles(Algo::kWinograd, d, 512, 1) / cycles(Algo::kWinograd, d, 512, 64);
  const double gemm_gain =
      cycles(Algo::kGemm3, d, 512, 1) / cycles(Algo::kGemm3, d, 512, 64);
  EXPECT_LT(wino_gain, gemm_gain);
}

TEST(CodesignShapes, LongVectorsNeedBigCaches) {
  // Paper I Fig 7: large L2 helps long vectors more than short ones.
  const ConvLayerDesc d{32, 76, 76, 64, 3, 3, 1, 1};
  const double short_gain =
      cycles(Algo::kGemm3, d, 512, 1, VpuAttach::kDecoupledL2) /
      cycles(Algo::kGemm3, d, 512, 64, VpuAttach::kDecoupledL2);
  const double long_gain =
      cycles(Algo::kGemm3, d, 8192, 1, VpuAttach::kDecoupledL2) /
      cycles(Algo::kGemm3, d, 8192, 64, VpuAttach::kDecoupledL2);
  EXPECT_GE(long_gain, short_gain * 0.95);
  EXPECT_GT(long_gain, 1.1);
}

TEST(CodesignShapes, VlenScalingSaturatesAt16384WithSmallCache) {
  // Paper I Fig 6: at 1 MB L2 the 8192 -> 16384-bit step adds little.
  const ConvLayerDesc d{32, 76, 76, 64, 3, 3, 1, 1};
  const double c512 = cycles(Algo::kGemm3, d, 512, 1, VpuAttach::kDecoupledL2);
  const double c8192 =
      cycles(Algo::kGemm3, d, 8192, 1, VpuAttach::kDecoupledL2);
  const double c16384 =
      cycles(Algo::kGemm3, d, 16384, 1, VpuAttach::kDecoupledL2);
  EXPECT_GT(c512 / c8192, 1.5);                 // long vectors help...
  EXPECT_LT(c8192 / c16384, c512 / c8192);      // ...but the last step less so
}

TEST(CodesignShapes, MoreLanesHelpLongVectorsMost) {
  // Paper I Section VI.B(c): lanes 2 -> 8 help 8192-bit more than 512-bit.
  const ConvLayerDesc d{32, 76, 76, 64, 3, 3, 1, 1};
  auto lane_gain = [&](std::uint32_t vlen) {
    SimConfig c2 = make_sim_config(vlen, 1u << 20, 2, VpuAttach::kDecoupledL2);
    SimConfig c8 = make_sim_config(vlen, 1u << 20, 8, VpuAttach::kDecoupledL2);
    return conv_simulate(Algo::kGemm3, d, c2).cycles /
           conv_simulate(Algo::kGemm3, d, c8).cycles;
  };
  EXPECT_GT(lane_gain(8192), lane_gain(512));
}

TEST(CodesignShapes, L2MissRateGrowsWithVlenAtSmallCache) {
  // Paper I Table III: at 1 MB L2 the miss rate climbs with vector length.
  const ConvLayerDesc d{32, 76, 76, 64, 3, 3, 1, 1};
  SimConfig c512 = make_sim_config(512, 1u << 20, 8, VpuAttach::kDecoupledL2);
  SimConfig c8k = make_sim_config(8192, 1u << 20, 8, VpuAttach::kDecoupledL2);
  EXPECT_GT(conv_simulate(Algo::kGemm3, d, c8k).l2_miss_rate(),
            conv_simulate(Algo::kGemm3, d, c512).l2_miss_rate());
}

TEST(CodesignShapes, WinogradTransformOverheadGrowsWithChannels) {
  // Paper II: high channel counts erode Winograd's advantage (transform and
  // scatter overheads): the advantage over gemm6 shrinks from the mid layer to
  // the channel-heavy skinny layer.
  const double mid_ratio =
      cycles(Algo::kGemm6, kMid3x3, 512, 1) /
      cycles(Algo::kWinograd, kMid3x3, 512, 1);
  const double skinny_ratio =
      cycles(Algo::kGemm6, kSkinny3x3, 512, 1) /
      cycles(Algo::kWinograd, kSkinny3x3, 512, 1);
  EXPECT_GT(mid_ratio, skinny_ratio);
}

}  // namespace
}  // namespace vlacnn

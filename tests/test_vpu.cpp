// Tests for vsetvl semantics, the timing model's cycle accounting, and the
// functional/trace engine pair (including instruction-stream equivalence).
#include <gtest/gtest.h>

#include "algos/registry.h"
#include "vpu/functional_engine.h"
#include "vpu/timing_model.h"
#include "vpu/trace_engine.h"
#include "vpu/vpu_config.h"

namespace vlacnn {
namespace {

VpuConfig vpu512() { return VpuConfig{512, 8, VpuAttach::kIntegratedL1}; }

// ------------------------------------------------------------ vsetvl -------

TEST(VpuConfig, MvlFromVlen) {
  EXPECT_EQ((VpuConfig{512, 8}).mvl(), 16u);
  EXPECT_EQ((VpuConfig{16384, 8}).mvl(), 512u);
}

TEST(VpuConfig, SetvlGrantsMinOfRequestAndMvl) {
  VpuConfig v{1024, 8};
  EXPECT_EQ(v.setvl(5), 5u);
  EXPECT_EQ(v.setvl(32), 32u);
  EXPECT_EQ(v.setvl(100), 32u);
  EXPECT_EQ(v.setvl(0), 0u);
}

TEST(VpuConfig, ValidateRejectsBadConfigs) {
  EXPECT_THROW(validate(VpuConfig{500, 8}), std::invalid_argument);   // !pow2
  EXPECT_THROW(validate(VpuConfig{64, 8}), std::invalid_argument);    // < 128
  EXPECT_THROW(validate(VpuConfig{32768, 8}), std::invalid_argument); // > max
  EXPECT_THROW(validate(VpuConfig{512, 0}), std::invalid_argument);
  EXPECT_NO_THROW(validate(VpuConfig{512, 8}));
}

// ------------------------------------------------------- TimingModel -------

TEST(TimingModel, VecArithCycleFormula) {
  TimingConfig tc;
  tc.vec_startup_cycles = 10;
  TimingModel t(vpu512(), nullptr, tc);
  t.vec_arith(16);  // chime = ceil(16/8) = 2
  EXPECT_DOUBLE_EQ(t.stats().cycles, 12.0);
  EXPECT_DOUBLE_EQ(t.stats().vec_instructions, 1.0);
  EXPECT_DOUBLE_EQ(t.stats().vec_elems, 16.0);
  EXPECT_DOUBLE_EQ(t.stats().flops, 32.0);  // 2 flops/elem default
}

TEST(TimingModel, MoreLanesFewerCycles) {
  TimingConfig tc;
  double prev = 1e30;
  for (std::uint32_t lanes : {2u, 4u, 8u}) {
    TimingModel t(VpuConfig{8192, lanes}, nullptr, tc);
    t.vec_arith(256);
    EXPECT_LT(t.stats().cycles, prev);
    prev = t.stats().cycles;
  }
}

TEST(TimingModel, LongerVectorsAmortiseStartup) {
  // Cycles per element must drop as VL grows (same total elements).
  TimingConfig tc;
  double prev = 1e30;
  for (std::uint32_t vlen : {512u, 2048u, 8192u}) {
    TimingModel t(VpuConfig{vlen, 8}, nullptr, tc);
    const std::uint64_t vl = vlen / 32;
    const std::uint64_t total = 4096;
    for (std::uint64_t i = 0; i < total; i += vl) t.vec_arith(vl);
    EXPECT_LT(t.stats().cycles, prev);
    prev = t.stats().cycles;
  }
}

TEST(TimingModel, ZeroVlIsFree) {
  TimingModel t(vpu512(), nullptr, {});
  t.vec_arith(0);
  t.vec_mem(0, 0, 4, MemPattern::kUnit, false);
  EXPECT_DOUBLE_EQ(t.stats().cycles, 0.0);
}

TEST(TimingModel, ScaleMultipliesIncrements) {
  TimingModel t(vpu512(), nullptr, {});
  t.vec_arith(16);
  const double one = t.stats().cycles;
  t.push_scale(10.0);
  t.vec_arith(16);
  t.pop_scale();
  EXPECT_DOUBLE_EQ(t.stats().cycles, 11.0 * one);
  EXPECT_DOUBLE_EQ(t.stats().vec_instructions, 11.0);
}

TEST(TimingModel, ScaleStackNests) {
  TimingModel t(vpu512(), nullptr, {});
  t.push_scale(2.0);
  t.push_scale(3.0);
  EXPECT_DOUBLE_EQ(t.current_scale(), 6.0);
  t.pop_scale();
  EXPECT_DOUBLE_EQ(t.current_scale(), 2.0);
  t.pop_scale();
  EXPECT_DOUBLE_EQ(t.current_scale(), 1.0);
  EXPECT_THROW(t.pop_scale(), std::logic_error);
  EXPECT_THROW(t.push_scale(0.0), std::invalid_argument);
}

TEST(TimingModel, ScaledRegionPopsOnExceptionalExit) {
  // The RAII guard must restore the scale even when the region body throws —
  // the manual push/pop pairs it replaced leaked the scale on that path.
  TimingModel t(vpu512(), nullptr, {});
  try {
    const ScaledRegion scaled(&t, 8.0);
    EXPECT_DOUBLE_EQ(t.current_scale(), 8.0);
    throw std::runtime_error("mid-region failure");
  } catch (const std::runtime_error&) {
  }
  EXPECT_DOUBLE_EQ(t.current_scale(), 1.0);
  t.vec_arith(16);
  EXPECT_DOUBLE_EQ(t.stats().vec_instructions, 1.0);  // unscaled again
  // Null-model guard is inert (the FunctionalEngine-without-timing case).
  { const ScaledRegion inert(nullptr, 123.0); }
}

TEST(TimingModel, ConstructorRejectsNonPositiveDivisors) {
  // Every divisor-bearing TimingConfig field must be positive: they all sit
  // on the right of a division in the cycle model, and zero/negative values
  // would silently produce inf/NaN cycles instead of an error.
  auto with = [](auto mutate) {
    TimingConfig tc;
    mutate(tc);
    return tc;
  };
  EXPECT_THROW(TimingModel(vpu512(), nullptr,
                           with([](TimingConfig& c) { c.scalar_ipc = 0; })),
               std::invalid_argument);
  EXPECT_THROW(
      TimingModel(vpu512(), nullptr,
                  with([](TimingConfig& c) { c.strided_lane_divisor = -1; })),
      std::invalid_argument);
  EXPECT_THROW(
      TimingModel(vpu512(), nullptr,
                  with([](TimingConfig& c) { c.indexed_lane_divisor = 0; })),
      std::invalid_argument);
  EXPECT_THROW(TimingModel(vpu512(), nullptr,
                           with([](TimingConfig& c) { c.miss_overlap = 0; })),
               std::invalid_argument);
  EXPECT_THROW(
      TimingModel(vpu512(), nullptr,
                  with([](TimingConfig& c) { c.cache_bytes_per_cycle = 0; })),
      std::invalid_argument);
  EXPECT_NO_THROW(TimingModel(vpu512(), nullptr, TimingConfig{}));
}

TEST(TimingModel, MissStallsIncreaseCycles) {
  MemConfig mc;
  mc.l2.size_bytes = 1u << 20;
  MemorySystem mem_cold(mc);
  TimingModel cold(vpu512(), &mem_cold, {});
  cold.vec_mem(0, 16, 4, MemPattern::kUnit, false);  // cold: misses to DRAM
  MemorySystem mem_warm(mc);
  TimingModel warm(vpu512(), &mem_warm, {});
  mem_warm.vector_access(0, 64, false);              // pre-warm
  warm.vec_mem(0, 16, 4, MemPattern::kUnit, false);
  EXPECT_GT(cold.stats().cycles, warm.stats().cycles);
  EXPECT_GT(cold.stats().mem_stall_cycles, 0.0);
  EXPECT_DOUBLE_EQ(warm.stats().mem_stall_cycles, 0.0);
}

TEST(TimingModel, StridedCostsMoreThanUnit) {
  MemConfig mc;
  MemorySystem m1(mc), m2(mc);
  TimingModel unit(vpu512(), &m1, {});
  TimingModel strided(vpu512(), &m2, {});
  unit.vec_mem(0, 16, 4, MemPattern::kUnit, false);
  strided.vec_mem(0, 16, 256, MemPattern::kStrided, false);
  EXPECT_GT(strided.stats().cycles, unit.stats().cycles);
}

TEST(TimingModel, PrefetchDroppedByDefault) {
  MemConfig mc;
  MemorySystem mem(mc);
  TimingModel t(vpu512(), &mem, {});  // sw_prefetch_effective = false
  t.prefetch(0, 4096);
  EXPECT_DOUBLE_EQ(t.stats().cycles, 0.0);
  EXPECT_EQ(mem.l1().accesses(), 0u);
}

TEST(TimingModel, EffectivePrefetchWarmsCacheCheaply) {
  MemConfig mc;
  MemorySystem mem(mc);
  TimingConfig tc;
  tc.sw_prefetch_effective = true;
  TimingModel t(vpu512(), &mem, tc);
  t.prefetch(0, 64);
  const double prefetch_cycles = t.stats().cycles;
  t.vec_mem(0, 16, 4, MemPattern::kUnit, false);
  EXPECT_DOUBLE_EQ(t.stats().mem_stall_cycles, 0.0);  // demand access hits
  EXPECT_LE(prefetch_cycles, 2.0);
}

TEST(TimingModel, ScalarOpsUseIssueWidth) {
  TimingConfig tc;
  tc.scalar_ipc = 2.0;
  TimingModel t(vpu512(), nullptr, tc);
  t.scalar_ops(10);
  EXPECT_DOUBLE_EQ(t.stats().scalar_cycles, 5.0);
}

TEST(TimingModel, AvgVlAndMissRateDerivedStats) {
  TimingModel t(vpu512(), nullptr, {});
  t.vec_arith(16);
  t.vec_arith(8);
  EXPECT_DOUBLE_EQ(t.stats().avg_vl(), 12.0);
  EXPECT_DOUBLE_EQ(t.stats().l2_miss_rate(), 0.0);  // no accesses: 0 not NaN
}

TEST(TimingModel, BandwidthBoundsStreamingStalls) {
  // A DRAM-streaming access pattern must stall at least bytes/BW cycles.
  MemConfig mc;
  mc.l2.size_bytes = 1u << 20;
  mc.mem_bytes_per_cycle = 6.4;
  MemorySystem mem(mc);
  TimingModel t(vpu512(), &mem, {});
  const std::uint64_t total_bytes = 8u << 20;  // far beyond L2
  for (std::uint64_t a = 0; a < total_bytes; a += 64) {
    t.vec_mem(a, 16, 4, MemPattern::kUnit, false);
  }
  EXPECT_GE(t.stats().mem_stall_cycles, total_bytes / 6.4 * 0.99);
}

// ------------------------------------------- engines: numeric behaviour ----

TEST(FunctionalEngine, LoadStoreRoundTrip) {
  FunctionalEngine eng(vpu512());
  std::vector<float> src{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> dst(8, 0.0f);
  BufView s = eng.bind(src.data(), src.size());
  BufView d = eng.bind(dst.data(), dst.size());
  auto v = eng.vload(s, 0, 8);
  eng.vstore(v, d, 0);
  EXPECT_EQ(dst, src);
}

TEST(FunctionalEngine, StridedLoadGathersEveryOther) {
  FunctionalEngine eng(vpu512());
  std::vector<float> src{0, 1, 2, 3, 4, 5, 6, 7};
  BufView s = eng.bind(src.data(), src.size());
  auto v = eng.vload_strided(s, 1, 2, 3);  // elements 1, 3, 5
  std::vector<float> dst(3);
  eng.vstore(v, eng.bind(dst.data(), 3), 0);
  EXPECT_EQ(dst, (std::vector<float>{1, 3, 5}));
}

TEST(FunctionalEngine, StridedStoreScatters) {
  FunctionalEngine eng(vpu512());
  std::vector<float> dst(8, -1.0f);
  auto v = eng.vbroadcast(9.0f, 3);
  eng.vstore_strided(v, eng.bind(dst.data(), 8), 1, 3);  // slots 1, 4, 7
  EXPECT_EQ(dst, (std::vector<float>{-1, 9, -1, -1, 9, -1, -1, 9}));
}

TEST(FunctionalEngine, FmaAndReduce) {
  FunctionalEngine eng(vpu512());
  auto a = eng.vbroadcast(2.0f, 4);
  auto b = eng.vbroadcast(3.0f, 4);
  auto acc = eng.vbroadcast(1.0f, 4);
  eng.vfma_vv(acc, a, b);       // 1 + 6 = 7 each
  eng.vfma_vs(acc, 10.0f, b);   // 7 + 30 = 37 each
  EXPECT_FLOAT_EQ(eng.vredsum(acc), 4 * 37.0f);
}

TEST(FunctionalEngine, ElementwiseOps) {
  FunctionalEngine eng(vpu512());
  auto a = eng.vbroadcast(4.0f, 2);
  auto b = eng.vbroadcast(3.0f, 2);
  eng.vsub_vv(a, b);   // 1
  eng.vmul_vs(a, 5.0f);  // 5
  eng.vadd_vs(a, -8.0f); // -3
  eng.vmax_vs(a, -1.0f); // -1
  EXPECT_FLOAT_EQ(eng.vredsum(a), -2.0f);
}

TEST(FunctionalEngine, LeakyNegativeSlope) {
  FunctionalEngine eng(vpu512());
  std::vector<float> src{-10.0f, 10.0f};
  auto v = eng.vload(eng.bind(src.data(), 2), 0, 2);
  eng.vleaky(v, 0.1f);
  std::vector<float> dst(2);
  eng.vstore(v, eng.bind(dst.data(), 2), 0);
  EXPECT_FLOAT_EQ(dst[0], -1.0f);
  EXPECT_FLOAT_EQ(dst[1], 10.0f);
}

TEST(FunctionalEngine, GatherByIndex) {
  FunctionalEngine eng(vpu512());
  std::vector<float> src{10, 11, 12, 13};
  std::uint32_t idx[3] = {3, 0, 2};
  auto v = eng.vgather(eng.bind(src.data(), 4), 0, idx, 3);
  std::vector<float> dst(3);
  eng.vstore(v, eng.bind(dst.data(), 3), 0);
  EXPECT_EQ(dst, (std::vector<float>{13, 10, 12}));
}

TEST(FunctionalEngine, ScratchIsZeroInitialised) {
  FunctionalEngine eng(vpu512());
  Scratch s = eng.alloc(16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(eng.scalar_load(s.view, i), 0.0f);
}

// --------------------------- trace/functional stream equivalence -----------

TEST(Engines, IdenticalTimingForIdenticalProgram) {
  // The same short vector program must produce identical cycle counts through
  // both engines when a TimingModel is attached to the functional one.
  auto program = [](auto& eng, BufView a, BufView b) {
    const std::uint64_t n = 40;
    for (std::uint64_t i = 0; i < n;) {
      const std::uint64_t vl = eng.setvl(n - i);
      auto va = eng.vload(a, i, vl);
      auto acc = eng.vbroadcast(0.0f, vl);
      eng.vfma_vs(acc, 2.0f, va);
      eng.vstore(acc, b, i);
      i += vl;
    }
    eng.scalar_ops(7);
  };

  MemConfig mc;
  const VpuConfig vpu = vpu512();

  MemorySystem mem_t(mc);
  TimingModel tm_t(vpu, &mem_t, {});
  TraceEngine trace(vpu, &tm_t);
  BufView ta = trace.bind(nullptr, 64);
  BufView tb = trace.bind(nullptr, 64);
  program(trace, ta, tb);

  MemorySystem mem_f(mc);
  TimingModel tm_f(vpu, &mem_f, {});
  FunctionalEngine func(vpu, &tm_f);
  std::vector<float> fa(64, 1.0f), fb(64, 0.0f);
  program(func, func.bind(fa.data(), 64), func.bind(fb.data(), 64));

  EXPECT_DOUBLE_EQ(tm_t.stats().cycles, tm_f.stats().cycles);
  EXPECT_DOUBLE_EQ(tm_t.stats().vec_instructions,
                   tm_f.stats().vec_instructions);
  EXPECT_DOUBLE_EQ(tm_t.stats().vec_elems, tm_f.stats().vec_elems);
  for (int i = 0; i < 40; ++i) EXPECT_FLOAT_EQ(fb[i], 2.0f);
}

// ------------------------------------------ cycle accounting invariant -----

TEST(TimingModel, BucketsReconcileWithTotalForEveryAlgorithm) {
  // The four attribution buckets must exactly partition `cycles` for every
  // algorithm on a real end-to-end simulation (see the invariant documented
  // on TimingStats). The buckets accumulate in a different order than the
  // total, so the comparison is relative-tolerance, not bitwise.
  const ConvLayerDesc d{16, 16, 16, 16, 3, 3, 1, 1};  // winograd-applicable
  for (Algo a : kAllAlgos) {
    ASSERT_TRUE(algo_applicable(a, d)) << to_string(a);
    for (std::uint32_t vlen : {512u, 2048u}) {
      const SimConfig config = make_sim_config(vlen, 1u << 20);
      const TimingStats s = conv_simulate(a, d, config);
      ASSERT_GT(s.cycles, 0.0) << to_string(a);
      EXPECT_NEAR(s.cycles, s.bucket_sum(), s.cycles * 1e-9)
          << to_string(a) << " @ vlen " << vlen;
    }
  }
}

}  // namespace
}  // namespace vlacnn

// Tests for tensors, layouts, im2col, and the conv-layer descriptor math.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/conv_desc.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace vlacnn {
namespace {

TEST(Tensor, IndexingNCHW) {
  Tensor t(2, 3, 4, Layout::kNCHW);
  t.at(1, 2, 3) = 42.0f;
  EXPECT_EQ(t.index(1, 2, 3), static_cast<std::size_t>(1 * 3 * 4 + 2 * 4 + 3));
  EXPECT_FLOAT_EQ(t.data()[t.index(1, 2, 3)], 42.0f);
}

TEST(Tensor, IndexingNHWC) {
  Tensor t(2, 3, 4, Layout::kNHWC);
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t.index(1, 2, 3), static_cast<std::size_t>((2 * 4 + 3) * 2 + 1));
  EXPECT_FLOAT_EQ(t.data()[t.index(1, 2, 3)], 7.0f);
}

TEST(Tensor, RejectsBadDims) {
  EXPECT_THROW(Tensor(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Tensor(1, -1, 1), std::invalid_argument);
}

TEST(Tensor, LayoutRoundTripPreservesValues) {
  Rng rng(3);
  Tensor a(3, 5, 7, Layout::kNCHW);
  a.fill_random(rng);
  Tensor b = a.to_layout(Layout::kNHWC).to_layout(Layout::kNCHW);
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Tensor, MaxAbsDiffDetectsChange) {
  Tensor a(1, 2, 2), b(1, 2, 2);
  b.at(0, 1, 1) = 0.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  EXPECT_THROW(max_abs_diff(a, Tensor(1, 2, 3)), std::invalid_argument);
}

TEST(Tensor, FillAndMaxAbs) {
  Tensor a(2, 2, 2);
  a.fill(-3.0f);
  EXPECT_FLOAT_EQ(max_abs(a), 3.0f);
}

// ----------------------------------------------------------- ConvDesc ------

TEST(ConvDesc, OutputDims) {
  ConvLayerDesc d{3, 224, 224, 64, 3, 3, 1, 1};
  EXPECT_EQ(d.oh(), 224);
  EXPECT_EQ(d.ow(), 224);
  ConvLayerDesc s2{32, 608, 608, 64, 3, 3, 2, 1};
  EXPECT_EQ(s2.oh(), 304);
  ConvLayerDesc k1{64, 304, 304, 32, 1, 1, 1, 0};
  EXPECT_EQ(k1.oh(), 304);
  ConvLayerDesc nopad{2, 8, 8, 3, 3, 3, 1, 0};
  EXPECT_EQ(nopad.oh(), 6);
}

TEST(ConvDesc, GemmDims) {
  ConvLayerDesc d{3, 224, 224, 64, 3, 3, 1, 1};
  EXPECT_EQ(d.gemm_m(), 64u);
  EXPECT_EQ(d.gemm_k(), 27u);
  EXPECT_EQ(d.gemm_n(), 224u * 224u);
  EXPECT_EQ(d.macs(), 64ull * 27 * 224 * 224);
}

TEST(ConvDesc, ArithmeticIntensityMatchesPaperFormula) {
  // Paper I Table IV layer L44: M=1024, N=361, K=4608 -> AI = 126.
  ConvLayerDesc d{512, 19, 19, 1024, 3, 3, 1, 1};
  EXPECT_EQ(d.gemm_m(), 1024u);
  EXPECT_EQ(d.gemm_n(), 361u);
  EXPECT_EQ(d.gemm_k(), 4608u);
  EXPECT_NEAR(d.arithmetic_intensity(), 126.0, 2.0);
}

TEST(ConvDesc, Equality) {
  ConvLayerDesc a{3, 8, 8, 4, 3, 3, 1, 1};
  ConvLayerDesc b = a;
  EXPECT_EQ(a, b);
  b.stride = 2;
  EXPECT_FALSE(a == b);
}

// ------------------------------------------------------------ im2col -------

TEST(Im2col, IdentityFor1x1) {
  // A 1x1 kernel with stride 1 and no padding: column matrix == input.
  ConvLayerDesc d{2, 3, 3, 1, 1, 1, 1, 0};
  Rng rng(1);
  Tensor in(2, 3, 3);
  in.fill_random(rng);
  auto col = im2col_nchw(d, in);
  ASSERT_EQ(col.size(), in.size());
  for (std::size_t i = 0; i < col.size(); ++i) {
    EXPECT_FLOAT_EQ(col[i], in.data()[i]);
  }
}

TEST(Im2col, ManualSmallCase) {
  // 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad -> K=4, N=4.
  ConvLayerDesc d{1, 3, 3, 1, 2, 2, 1, 0};
  Tensor in(1, 3, 3);
  for (int i = 0; i < 9; ++i) in.data()[i] = static_cast<float>(i);
  auto col = im2col_nchw(d, in);
  // Row (ky=0,kx=0): top-left of each 2x2 window.
  EXPECT_FLOAT_EQ(col[0 * 4 + 0], 0);
  EXPECT_FLOAT_EQ(col[0 * 4 + 3], 4);
  // Row (ky=1,kx=1): bottom-right of each window.
  EXPECT_FLOAT_EQ(col[3 * 4 + 0], 4);
  EXPECT_FLOAT_EQ(col[3 * 4 + 3], 8);
}

TEST(Im2col, PaddingProducesZeros) {
  ConvLayerDesc d{1, 2, 2, 1, 3, 3, 1, 1};
  Tensor in(1, 2, 2);
  in.fill(5.0f);
  auto col = im2col_nchw(d, in);
  // First row (ky=0,kx=0) first column corresponds to input (-1,-1): zero.
  EXPECT_FLOAT_EQ(col[0], 0.0f);
  // Center tap (ky=1,kx=1) has no padding at output (0,0).
  EXPECT_FLOAT_EQ(col[4 * d.gemm_n() + 0], 5.0f);
}

TEST(Im2col, StridedSelectsAlternateColumns) {
  ConvLayerDesc d{1, 5, 5, 1, 1, 1, 2, 0};
  Tensor in(1, 5, 5);
  for (int i = 0; i < 25; ++i) in.data()[i] = static_cast<float>(i);
  auto col = im2col_nchw(d, in);
  ASSERT_EQ(col.size(), 9u);  // 3x3 outputs
  EXPECT_FLOAT_EQ(col[0], 0);
  EXPECT_FLOAT_EQ(col[1], 2);
  EXPECT_FLOAT_EQ(col[4], 12);  // center
  EXPECT_FLOAT_EQ(col[8], 24);
}

TEST(Im2col, ShapeValidation) {
  ConvLayerDesc d{2, 4, 4, 1, 3, 3, 1, 1};
  Tensor wrong_layout(2, 4, 4, Layout::kNHWC);
  EXPECT_THROW(im2col_nchw(d, wrong_layout), std::invalid_argument);
  Tensor wrong_shape(2, 5, 4);
  EXPECT_THROW(im2col_nchw(d, wrong_shape), std::invalid_argument);
}

}  // namespace
}  // namespace vlacnn

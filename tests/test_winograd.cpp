// Tests for the Winograd transform generation, its algebraic identity, and the
// numerical-accuracy motivation for fixing the tile at 8x8 (Paper I, IV.B).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "wino/transforms.h"

namespace vlacnn {
namespace {

TEST(WinoTransforms, SupportedSizesConstruct) {
  for (int m : {2, 4, 6}) {
    const WinogradTransform& t = winograd_transform(m);
    EXPECT_EQ(t.m, m);
    EXPECT_EQ(t.r, 3);
    EXPECT_EQ(t.n(), m + 2);
    EXPECT_EQ(t.at.size(), static_cast<std::size_t>(m) * (m + 2));
    EXPECT_EQ(t.g.size(), static_cast<std::size_t>(m + 2) * 3);
    EXPECT_EQ(t.bt.size(), static_cast<std::size_t>(m + 2) * (m + 2));
  }
}

TEST(WinoTransforms, UnsupportedSizeThrows) {
  EXPECT_THROW(winograd_transform(3), std::invalid_argument);
  EXPECT_THROW(winograd_transform(8), std::invalid_argument);
}

TEST(WinoTransforms, DerivationResidualIsMachinePrecision) {
  for (int m : {2, 4, 6}) {
    EXPECT_LT(winograd_transform(m).derivation_residual, 1e-10) << "m=" << m;
  }
}

TEST(WinoTransforms, OneDimensionalIdentityHolds) {
  for (int m : {2, 4, 6}) {
    const double err = wino_identity_error(winograd_transform(m), 500, 99);
    EXPECT_LT(err, 1e-12) << "m=" << m;
  }
}

TEST(WinoTransforms, CachedInstanceIsStable) {
  const WinogradTransform& a = winograd_transform(6);
  const WinogradTransform& b = winograd_transform(6);
  EXPECT_EQ(&a, &b);
}

TEST(WinoTransforms, KnownG6FirstRow) {
  // The F(6,3) filter transform's first row must be (1, 0, 0): the point-0
  // evaluation of the filter polynomial.
  const WinogradTransform& t = winograd_transform(6);
  EXPECT_NEAR(t.g[0], 1.0, 1e-12);
  EXPECT_NEAR(t.g[1], 0.0, 1e-12);
  EXPECT_NEAR(t.g[2], 0.0, 1e-12);
}

/// Full 2-D tile convolution via the transforms vs. a direct correlation.
double tile_conv_error(int m, std::uint64_t seed) {
  const WinogradTransform& t = winograd_transform(m);
  const int n = t.n();
  Rng rng(seed);
  std::vector<float> d(static_cast<std::size_t>(n) * n);
  float g[9];
  for (auto& v : d) v = rng.uniform(-1, 1);
  for (auto& v : g) v = rng.uniform(-1, 1);

  std::vector<float> v_tile(static_cast<std::size_t>(n) * n);
  std::vector<float> u_tile(static_cast<std::size_t>(n) * n);
  wino_transform_input(t, d.data(), v_tile.data());
  wino_transform_weight(t, g, u_tile.data());
  std::vector<float> m_tile(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) m_tile[i] = u_tile[i] * v_tile[i];
  std::vector<float> y(static_cast<std::size_t>(m) * m);
  wino_transform_output(t, m_tile.data(), y.data());

  double worst = 0.0;
  for (int oy = 0; oy < m; ++oy) {
    for (int ox = 0; ox < m; ++ox) {
      double expect = 0.0;
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) {
          expect += static_cast<double>(g[ky * 3 + kx]) *
                    d[static_cast<std::size_t>(oy + ky) * n + ox + kx];
        }
      }
      worst = std::max(worst,
                       std::fabs(y[static_cast<std::size_t>(oy) * m + ox] -
                                 expect));
    }
  }
  return worst;
}

TEST(WinoTransforms, TwoDimensionalTileConvolutionCorrect) {
  for (int m : {2, 4, 6}) {
    double worst = 0.0;
    for (std::uint64_t s = 0; s < 20; ++s) {
      worst = std::max(worst, tile_conv_error(m, 1000 + s));
    }
    EXPECT_LT(worst, 1e-4) << "m=" << m;
  }
}

TEST(WinoTransforms, ErrorGrowsWithTileSize) {
  // The motivation for capping tiles at 8x8: fp32 error grows with m because
  // the transform coefficients' dynamic range explodes. Average over many
  // trials to make the ordering robust.
  double avg[3] = {0, 0, 0};
  const int trials = 50;
  int mi = 0;
  for (int m : {2, 4, 6}) {
    for (std::uint64_t s = 0; s < trials; ++s) {
      avg[mi] += tile_conv_error(m, 555 + s);
    }
    avg[mi] /= trials;
    ++mi;
  }
  EXPECT_LT(avg[0], avg[1]);
  EXPECT_LT(avg[1], avg[2]);
}

TEST(WinoTransforms, WeightTransformOfDeltaKernel) {
  // A delta kernel (1 at the top-left tap) keeps the convolution a shift;
  // U = G e G^T must reproduce the outer product of G's first column.
  const WinogradTransform& t = winograd_transform(4);
  const int n = t.n();
  float g[9] = {1, 0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<float> u(static_cast<std::size_t>(n) * n);
  wino_transform_weight(t, g, u.data());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double expect = t.g[static_cast<std::size_t>(i) * 3] *
                            t.g[static_cast<std::size_t>(j) * 3];
      EXPECT_NEAR(u[static_cast<std::size_t>(i) * n + j], expect, 1e-6);
    }
  }
}

}  // namespace
}  // namespace vlacnn

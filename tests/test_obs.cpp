// Observability layer: counters/gauges/histograms (including exactness under
// concurrency — these run under TSan via the VLACNN_SANITIZE build), span ->
// Chrome-trace JSON round-trip through a real parser, env-knob gating, and
// the end-to-end counters the sweep engine feeds.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/sketch.h"
#include "obs/trace.h"
#include "sweep/sweep.h"

namespace vlacnn {
namespace {

// -- minimal JSON parser ------------------------------------------------------
// Just enough JSON to validate the trace files we emit: full syntax checking,
// plus counting and key inspection of the traceEvents array. Throws
// std::runtime_error on any malformed input.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type =
      Type::kNull;
  double number = 0;
  bool boolean = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return literal("true", v);
      }
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        return literal("false", v);
      }
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue literal(const std::string& word, JsonValue v) {
    if (s_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    std::size_t used = 0;
    const std::string text = s_.substr(start, pos_ - start);
    v.number = std::stod(text, &used);
    if (used != text.size()) fail("bad number");
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("short \\u escape");
            v.string += static_cast<char>(
                std::stoul(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        v.string += c;
      }
    }
    ++pos_;  // closing quote
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(key.string, value());
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Flips the metrics mode for one test and restores kOff on exit (ctest runs
/// each test in its own process, but restoring keeps in-process runs clean).
struct ScopedMetrics {
  explicit ScopedMetrics(obs::ReportMode mode) { obs::set_metrics_mode(mode); }
  ~ScopedMetrics() { obs::set_metrics_mode(obs::ReportMode::kOff); }
};

// -- metrics ------------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, AddNAccumulates) {
  obs::Counter c;
  c.add(3);
  c.add(39);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAddAndHighWaterMark) {
  obs::Gauge g;
  g.set(5);
  g.add(10);
  g.add(-12);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 15);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(ObsFloatGauge, SetValueAndReset) {
  obs::FloatGauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(0.0073);
  EXPECT_EQ(g.value(), 0.0073);
  g.set(-1.5);  // gaps can be negative (learned beat the static oracle plan)
  EXPECT_EQ(g.value(), -1.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsFloatGauge, RegistryReportsAndParsesBack) {
  obs::Registry reg;
  reg.float_gauge("f.gap").set(0.25);
  EXPECT_EQ(&reg.float_gauge("f.gap"), &reg.float_gauge("f.gap"));
  const std::string text = reg.report_text();
  EXPECT_NE(text.find("f.gap"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
  JsonValue root = JsonParser(reg.report_json()).parse();
  const JsonValue* fg = root.find("float_gauges");
  ASSERT_NE(fg, nullptr);
  const JsonValue* v = fg->find("f.gap");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->number, 0.25);
  reg.reset();
  EXPECT_EQ(reg.float_gauge("f.gap").value(), 0.0);
}

TEST(ObsHistogram, BucketBoundaries) {
  // bucket 0 = {0}; bucket i>=1 = [2^(i-1), 2^i).
  EXPECT_EQ(obs::Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_hi(0), 1u);
  EXPECT_EQ(obs::Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_hi(1), 2u);
  EXPECT_EQ(obs::Histogram::bucket_lo(11), 1024u);
  EXPECT_EQ(obs::Histogram::bucket_hi(11), 2048u);
  EXPECT_EQ(obs::Histogram::bucket_hi(64),
            std::numeric_limits<std::uint64_t>::max());

  obs::Histogram h;
  h.observe(0);     // bucket 0
  h.observe(1);     // bucket 1
  h.observe(2);     // bucket 2
  h.observe(3);     // bucket 2
  h.observe(1023);  // bucket 10: [512, 1024)
  h.observe(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1023 + 1024);
}

TEST(ObsHistogram, ConcurrentObservesCountExactly) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(ObsHistogram, QuantileBoundCoversObservations) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(10);   // bucket [8,16)
  h.observe(100000);                            // far tail
  EXPECT_EQ(h.quantile_bound(0.5), 16u);
  EXPECT_GE(h.quantile_bound(1.0), 100000u);
}

// -- DDSketch merge properties ------------------------------------------------

TEST(DDSketchMerge, MergedQuantilesMatchSingleShotWithinErrorBound) {
  // The merge contract: folding two sketches answers exactly what single-shot
  // insertion of both streams would, and the single-shot answer itself stays
  // within the configured relative error of the true nearest-rank value.
  const double e = 0.01;
  const double gamma = (1.0 + e) / (1.0 - e);
  obs::QuantileSketch single(e), left(e), right(e);
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) {
    // Spread across several decades so many distinct buckets participate.
    const double v = static_cast<double>(i) * (i % 3 == 0 ? 1000.0 : 1.0);
    values.push_back(v);
    single.observe(v);
    (i % 2 == 0 ? left : right).observe(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), single.count());
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), single.quantile(q)) << q;
    // Nearest rank against the exact sorted data: the sketch answers with the
    // closing boundary of the true value's bucket, i.e. within one gamma.
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double truth = values[rank - 1];
    EXPECT_GE(left.quantile(q), truth * (1.0 - 1e-12)) << q;
    EXPECT_LE(left.quantile(q), truth * gamma * (1.0 + 1e-12)) << q;
  }
}

TEST(DDSketchMerge, EmptyAndSingleBucketEdges) {
  obs::QuantileSketch a(0.01), b(0.01);
  a.merge(b);  // empty into empty
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.quantile(0.5), 0.0);

  obs::QuantileSketch full(0.01);
  full.observe(100.0);
  const double before = full.quantile(1.0);
  full.merge(b);  // empty into non-empty: nothing changes
  EXPECT_EQ(full.count(), 1u);
  EXPECT_EQ(full.quantile(1.0), before);
  b.merge(full);  // non-empty into empty adopts the contents
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.quantile(1.0), before);

  // Both sides in one (identical) bucket, including the exact-zero bucket.
  obs::QuantileSketch z1(0.01), z2(0.01);
  z1.observe(0.0);
  z2.observe(-5.0);  // clamped to the zero bucket
  z1.merge(z2);
  EXPECT_EQ(z1.count(), 2u);
  EXPECT_EQ(z1.quantile(1.0), 0.0);
  obs::QuantileSketch s1(0.01), s2(0.01);
  s1.observe(100.0);
  s2.observe(100.0);
  s1.merge(s2);
  EXPECT_EQ(s1.count(), 2u);
  EXPECT_EQ(s1.quantile(0.5), s1.quantile(1.0));  // one bucket answers all q
}

TEST(DDSketchMerge, FoldsExemplarsLargestValueThenLowestId) {
  obs::QuantileSketch a(0.01), b(0.01);
  a.observe(100.0, 7);
  b.observe(100.0, 3);   // same bucket, same value: the lower id must win
  b.observe(5000.0, 9);  // a bucket only the right side observed
  a.merge(b);
  const auto& ex = a.exemplar_buckets();
  ASSERT_EQ(ex.size(), 2u);
  const auto hundred = ex.find(a.bucket_index(100.0));
  ASSERT_NE(hundred, ex.end());
  EXPECT_EQ(hundred->second.value, 100.0);
  EXPECT_EQ(hundred->second.id, 3u);
  const auto big = ex.find(a.bucket_index(5000.0));
  ASSERT_NE(big, ex.end());
  EXPECT_EQ(big->second.id, 9u);
  // tail_exemplars over the merged sketch reaches both buckets at low q.
  EXPECT_EQ(a.tail_exemplars(0.01).size(), 2u);
  EXPECT_EQ(a.tail_exemplars(1.0).size(), 1u);  // only the 5000 bucket
}

TEST(ObsRegistry, SameNameSameInstrumentAndResetKeepsReferences) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  reg.reset();
  EXPECT_EQ(b.value(), 0u);  // zeroed in place, reference still valid
  b.add(1);
  EXPECT_EQ(reg.counter("x").value(), 1u);
}

TEST(ObsRegistry, ReportTextListsInstruments) {
  obs::Registry reg;
  reg.counter("test.hits").add(42);
  reg.gauge("test.depth").set(3);
  reg.histogram("test.lat").observe(100);
  const std::string text = reg.report_text();
  EXPECT_NE(text.find("test.hits"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("test.depth"), std::string::npos);
  EXPECT_NE(text.find("test.lat"), std::string::npos);
}

TEST(ObsRegistry, ReportJsonParsesBack) {
  obs::Registry reg;
  reg.counter("c.one").add(1);
  reg.gauge("g \"quoted\"").set(-5);
  reg.histogram("h.lat").observe(0);
  reg.histogram("h.lat").observe(1000);
  const std::string json = reg.report_json();
  JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c1 = counters->find("c.one");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->number, 1.0);
  const JsonValue* g = root.find("gauges")->find("g \"quoted\"");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->find("value")->number, -5.0);
  const JsonValue* h = root.find("histograms")->find("h.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 2.0);
  EXPECT_EQ(h->find("buckets")->array.size(), 2u);  // bucket 0 and [512,1024)
}

TEST(ObsRegistry, ExitReportJsonParsesBack) {
  // VLACNN_METRICS=json exit output must stay machine-parseable: run the
  // actual exit-hook body against a temp stream and parse it back with the
  // same JSON parser the trace schema test uses, locking the schema down.
  ScopedMetrics on(obs::ReportMode::kJson);
  obs::Registry::global().counter("exit_report.test_marker").add(7);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::write_exit_report(f);
  std::rewind(f);
  std::string json;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, n);
  std::fclose(f);
  ASSERT_FALSE(json.empty());
  const JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* marker = counters->find("exit_report.test_marker");
  ASSERT_NE(marker, nullptr);
  EXPECT_GE(marker->number, 7.0);
  EXPECT_NE(root.find("gauges"), nullptr);
  EXPECT_NE(root.find("histograms"), nullptr);
}

TEST(ObsRegistry, ZeroCountHistogramsAndNeverSetGaugesReportClean) {
  // Degenerate instruments — a histogram that never observed anything and
  // gauges that were registered but never set — must still produce valid,
  // NaN-free JSON (an empty histogram's mean is 0/0 if computed naively) and
  // a finite text report.
  obs::Registry reg;
  reg.histogram("zero.hist");
  reg.gauge("zero.gauge");
  reg.float_gauge("zero.float");
  const std::string json = reg.report_json();
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* h = root.find("histograms")->find("zero.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 0.0);
  EXPECT_EQ(h->find("sum")->number, 0.0);
  EXPECT_TRUE(h->find("buckets")->array.empty());
  const JsonValue* g = root.find("gauges")->find("zero.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->find("value")->number, 0.0);
  EXPECT_EQ(g->find("max")->number, 0.0);
  const JsonValue* fg = root.find("float_gauges")->find("zero.float");
  ASSERT_NE(fg, nullptr);
  EXPECT_EQ(fg->number, 0.0);
  // The text report's empty-histogram mean is 0.0, not NaN.
  const std::string text = reg.report_text();
  EXPECT_NE(text.find("count=0 mean=0.0"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(ObsRegistry, ExitReportJsonCleanWithDegenerateInstruments) {
  // The VLACNN_METRICS=json exit path with never-touched instruments in the
  // global registry: the dump still parses and carries them as zeros.
  ScopedMetrics on(obs::ReportMode::kJson);
  obs::Registry::global().histogram("exit_zero.hist");
  obs::Registry::global().gauge("exit_zero.gauge");
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::write_exit_report(f);
  std::rewind(f);
  std::string json;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, n);
  std::fclose(f);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.find("nan"), std::string::npos);
  const JsonValue root = JsonParser(json).parse();
  const JsonValue* h = root.find("histograms")->find("exit_zero.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 0.0);
  EXPECT_TRUE(h->find("buckets")->array.empty());
  const JsonValue* g = root.find("gauges")->find("exit_zero.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->find("value")->number, 0.0);
}

TEST(ObsRegistry, ExitReportOffWritesNothing) {
  ScopedMetrics off(obs::ReportMode::kOff);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::write_exit_report(f);
  std::fflush(f);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(std::ftell(f), 0L);
  std::fclose(f);
}

TEST(ObsMetrics, DisabledByDefaultWithoutEnv) {
  if (std::getenv("VLACNN_METRICS") != nullptr) {
    GTEST_SKIP() << "VLACNN_METRICS set in the environment";
  }
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_EQ(obs::metrics_mode(), obs::ReportMode::kOff);
}

// -- logger -------------------------------------------------------------------

TEST(ObsLog, LevelGating) {
  obs::set_log_level(obs::LogLevel::kOff);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  obs::set_log_level(obs::LogLevel::kInfo);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kDebug));
  obs::set_log_level(obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kDebug));
  // Emitting at every level must not crash; output goes to stderr.
  obs::log(obs::LogLevel::kInfo, "test", "message with spaces",
           {{"key", "value with spaces"}, {"empty", ""}});
  obs::set_log_level(obs::LogLevel::kOff);
}

// -- tracer / spans -----------------------------------------------------------

TEST(ObsTrace, DisabledTracerCreatesNoFileAndNoEvents) {
  obs::Tracer tracer;  // never opened
  EXPECT_FALSE(tracer.enabled());
  {
    obs::Span span("phase", &tracer);
    EXPECT_FALSE(span.active());
    span.arg("dropped", "yes");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsTrace, GlobalTracerOffWithoutEnvKnob) {
  if (std::getenv("VLACNN_TRACE") != nullptr) {
    GTEST_SKIP() << "VLACNN_TRACE set in the environment";
  }
  EXPECT_FALSE(obs::Tracer::global().enabled());
  obs::Span span("should_not_record");
  EXPECT_FALSE(span.active());
}

TEST(ObsTrace, SpanJsonRoundTripsThroughParser) {
  const auto dir =
      std::filesystem::temp_directory_path() / "vlacnn_test_obs_trace";
  std::filesystem::remove_all(dir);
  const auto file = dir / "trace.json";

  obs::Tracer tracer(file.string());
  ASSERT_TRUE(tracer.enabled());
  // Spans from several threads, with args that need JSON escaping.
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::Span span("worker.phase", &tracer);
        ASSERT_TRUE(span.active());
        span.arg("thread", std::to_string(t));
        span.arg("nasty", "quote\" backslash\\ tab\t");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(), kThreads * kSpansPerThread);
  tracer.close();
  EXPECT_FALSE(tracer.enabled());
  ASSERT_TRUE(std::filesystem::exists(file));

  JsonValue root = JsonParser(read_file(file)).parse();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  ASSERT_EQ(events->array.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  for (const JsonValue& e : events->array) {
    EXPECT_EQ(e.find("name")->string, "worker.phase");
    EXPECT_EQ(e.find("ph")->string, "X");
    EXPECT_GE(e.find("ts")->number, 0.0);
    EXPECT_GE(e.find("dur")->number, 0.0);
    EXPECT_EQ(e.find("pid")->number, 1.0);
    EXPECT_GE(e.find("tid")->number, 1.0);
    EXPECT_LE(e.find("tid")->number, kThreads);
    EXPECT_EQ(e.find("args")->find("nasty")->string,
              "quote\" backslash\\ tab\t");
  }
  std::filesystem::remove_all(dir);
}

TEST(ObsTrace, SpanFeedsMetricsHistogramWhenMetricsOn) {
  ScopedMetrics on(obs::ReportMode::kText);
  obs::Histogram& h =
      obs::Registry::global().histogram("span.unit_test_phase.us");
  const std::uint64_t before = h.count();
  {
    obs::Span span("unit_test_phase");
    EXPECT_TRUE(span.active());
  }
  EXPECT_EQ(h.count(), before + 1);
}

// -- end to end through the sweep engine --------------------------------------

TEST(ObsEndToEnd, SweepCountersTrackHitsMissesAndSimPoints) {
  ScopedMetrics on(obs::ReportMode::kText);
  obs::Registry& reg = obs::Registry::global();
  const std::uint64_t hits0 = reg.counter("results_db.hit").value();
  const std::uint64_t miss0 = reg.counter("results_db.miss").value();
  const std::uint64_t sims0 = reg.counter("sweep.sim_points").value();

  const auto dir =
      std::filesystem::temp_directory_path() / "vlacnn_test_obs_sweep";
  std::filesystem::remove_all(dir);
  {
    ResultsDb db((dir / "cache.csv").string());
    SweepDriver driver(&db);
    const ConvLayerDesc tiny{8, 8, 8, 4, 3, 3, 1, 1};
    driver.get("obs-test", 0, tiny, Algo::kDirect, 512, 1u << 20);   // miss
    driver.get("obs-test", 0, tiny, Algo::kDirect, 512, 1u << 20);   // hit
  }
  EXPECT_EQ(reg.counter("results_db.miss").value(), miss0 + 1);
  EXPECT_EQ(reg.counter("results_db.hit").value(), hits0 + 1);
  EXPECT_EQ(reg.counter("sweep.sim_points").value(), sims0 + 1);
  // The simulation also rolled its cache stats into the memsim counters.
  EXPECT_GT(reg.counter("memsim.l1_accesses").value(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ObsEndToEnd, ThreadPoolExposesSizeAndPending) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 2u);  // caller participates, so 2 helpers
  EXPECT_EQ(pool.pending(), 0u);
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
  // parallel_for may leave already-satisfied drain tasks queued; workers
  // discard them as no-ops, so pending() must come back to zero.
  for (int i = 0; i < 1000 && pool.pending() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.pending(), 0u);
}

// -- JSON escaping + exit-path robustness -------------------------------------

TEST(ObsRegistry, HostileInstrumentNamesStayParseable) {
  // Every writer in the obs layer now shares obs/json_util.h; names with
  // quotes, backslashes and raw control bytes must round-trip through the
  // report regardless of which instrument they label.
  obs::Registry reg;
  const std::string c_name = "evil\"quote\\back\tslash";
  const std::string g_name = std::string("ctrl\x01mix\x1f") + "\n\r";
  const std::string f_name = "float\x02gauge";
  const std::string h_name = "hist\x7f\xc3\xa9";  // DEL passes, UTF-8 passes
  reg.counter(c_name).add(3);
  reg.gauge(g_name).set(-4);
  reg.float_gauge(f_name).set(1.25);
  reg.histogram(h_name).observe(9);
  const JsonValue root = JsonParser(reg.report_json()).parse();
  ASSERT_NE(root.find("counters")->find(c_name), nullptr);
  EXPECT_EQ(root.find("counters")->find(c_name)->number, 3.0);
  ASSERT_NE(root.find("gauges")->find(g_name), nullptr);
  EXPECT_EQ(root.find("gauges")->find(g_name)->find("value")->number, -4.0);
  ASSERT_NE(root.find("float_gauges")->find(f_name), nullptr);
  EXPECT_EQ(root.find("float_gauges")->find(f_name)->number, 1.25);
  ASSERT_NE(root.find("histograms")->find(h_name), nullptr);
  EXPECT_EQ(root.find("histograms")->find(h_name)->find("count")->number, 1.0);
}

TEST(ObsTrace, HostileSpanArgsStayParseable) {
  const auto dir =
      std::filesystem::temp_directory_path() / "vlacnn_test_obs_hostile";
  std::filesystem::remove_all(dir);
  const auto file = dir / "trace.json";
  const std::string nasty = std::string("a\x01b\x1f") + "\"\\\n\r\t";
  {
    obs::Tracer tracer(file.string());
    obs::Span span(nasty, &tracer);  // hostile *name*, not just args
    span.arg(nasty, nasty);
  }
  const JsonValue root = JsonParser(read_file(file)).parse();
  const JsonValue& e = root.find("traceEvents")->array.at(0);
  EXPECT_EQ(e.find("name")->string, nasty);
  EXPECT_EQ(e.find("args")->find(nasty)->string, nasty);
  std::filesystem::remove_all(dir);
}

TEST(ObsTrace, FlushesCompleteFileOnEarlyStdExit) {
  // CLI error paths bail through std::exit. The tracer is a function-local
  // static, so its destructor must still write a complete, parseable file —
  // the regression this guards: a truncated or missing trace after an early
  // exit. Run the exit in a forked child and parse the file back here.
  const auto dir =
      std::filesystem::temp_directory_path() / "vlacnn_test_obs_exit";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto file = dir / "trace.json";

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: mimic a CLI that armed tracing, did a little work, then died on
    // a usage error. std::exit (not _exit) so static destructors run.
    obs::Tracer::global().open(file.string());
    {
      obs::Span span("cli.startup", &obs::Tracer::global());
      span.arg("reason", "usage error");
    }
    std::exit(2);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  ASSERT_TRUE(std::filesystem::exists(file));
  const JsonValue root = JsonParser(read_file(file)).parse();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].find("name")->string, "cli.startup");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vlacnn

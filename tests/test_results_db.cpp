// Tests for the thread-safe results cache: exact round-trip persistence,
// recovery from a crash-truncated trailing row, header validation, and the
// concurrent put / single-flight deduplication paths used by the parallel
// sweep engine.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "sweep/results_db.h"

namespace vlacnn {
namespace {

class ResultsDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vlacnn_resultsdb_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    path_ = (dir_ / "cache.csv").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static SweepRow make_row(int layer, Algo algo, double cycles,
                           double avg_vl = 13.7, double miss = 0.123,
                           double mem = 4096, double flops = 1e9) {
    SweepRow r;
    r.key = SweepKey{"tiny", layer, algo, 512, 1u << 20, 8,
                     VpuAttach::kIntegratedL1};
    r.desc = ConvLayerDesc{3, 32, 32, 8, 3, 3, 1, 1};
    r.cycles = cycles;
    r.avg_vl = avg_vl;
    r.l2_miss_rate = miss;
    r.mem_bytes = mem;
    r.flops = flops;
    return r;
  }

  static bool bit_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  }

  std::string read_file() const {
    std::ifstream in(path_);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(ResultsDbTest, RoundTripIsBitExact) {
  // Doubles chosen to break %.9e: they differ only past the 10th significant
  // digit or live at the extremes of the exponent range.
  const double nasty[] = {1.0 / 3.0,
                          2.0 / 3.0 * 1e18,
                          3.141592653589793,
                          0.1,
                          1e-300,
                          123456789.123456789,
                          1.0000000001,
                          5e300};
  {
    ResultsDb db(path_);
    int layer = 0;
    for (double v : nasty) {
      db.put(make_row(layer++, Algo::kGemm3, v, v / 7.0, v / 1e301, v * 0.5,
                      v == 0 ? 1 : v));
    }
  }
  ResultsDb db2(path_);
  EXPECT_FALSE(db2.healed_on_load());
  int layer = 0;
  for (double v : nasty) {
    const auto hit = db2.find(SweepKey{"tiny", layer++, Algo::kGemm3, 512,
                                       1u << 20, 8,
                                       VpuAttach::kIntegratedL1});
    ASSERT_TRUE(hit.has_value()) << "layer " << (layer - 1);
    EXPECT_TRUE(bit_equal(hit->cycles, v));
    EXPECT_TRUE(bit_equal(hit->avg_vl, v / 7.0));
    EXPECT_TRUE(bit_equal(hit->l2_miss_rate, v / 1e301));
    EXPECT_TRUE(bit_equal(hit->mem_bytes, v * 0.5));
  }
}

TEST_F(ResultsDbTest, BreakdownRoundTripIsBitExact) {
  const double nasty[] = {1.0 / 3.0, 3.141592653589793, 1e-300, 5e300,
                          123456789.123456789};
  {
    ResultsDb db(path_);
    int layer = 0;
    for (double v : nasty) {
      SweepRow r = make_row(layer++, Algo::kGemm6, v);
      r.has_breakdown = true;
      r.bd.compute_cycles = v * 0.4;
      r.bd.mem_issue_cycles = v * 0.3;
      r.bd.mem_stall_cycles = v * 0.2;
      r.bd.scalar_cycles = v * 0.1;
      r.bd.vec_instructions = v / 7.0;
      r.bd.vec_elems = v / 3.0;
      r.bd.l1_accesses = v / 11.0;
      r.bd.l1_misses = v / 13.0;
      r.bd.l2_accesses = v / 17.0;
      r.bd.l2_misses = v / 19.0;
      db.put(r);
    }
  }
  ResultsDb db2(path_);
  EXPECT_FALSE(db2.healed_on_load());
  int layer = 0;
  for (double v : nasty) {
    const auto hit = db2.find(SweepKey{"tiny", layer++, Algo::kGemm6, 512,
                                       1u << 20, 8, VpuAttach::kIntegratedL1});
    ASSERT_TRUE(hit.has_value());
    ASSERT_TRUE(hit->has_breakdown);
    EXPECT_TRUE(bit_equal(hit->bd.compute_cycles, v * 0.4));
    EXPECT_TRUE(bit_equal(hit->bd.mem_issue_cycles, v * 0.3));
    EXPECT_TRUE(bit_equal(hit->bd.mem_stall_cycles, v * 0.2));
    EXPECT_TRUE(bit_equal(hit->bd.scalar_cycles, v * 0.1));
    EXPECT_TRUE(bit_equal(hit->bd.vec_instructions, v / 7.0));
    EXPECT_TRUE(bit_equal(hit->bd.vec_elems, v / 3.0));
    EXPECT_TRUE(bit_equal(hit->bd.l1_accesses, v / 11.0));
    EXPECT_TRUE(bit_equal(hit->bd.l1_misses, v / 13.0));
    EXPECT_TRUE(bit_equal(hit->bd.l2_accesses, v / 17.0));
    EXPECT_TRUE(bit_equal(hit->bd.l2_misses, v / 19.0));
  }
}

TEST_F(ResultsDbTest, RowsWithoutBreakdownPersistAsSuch) {
  {
    ResultsDb db(path_);
    db.put(make_row(0, Algo::kGemm3, 100.5));  // make_row: no breakdown
  }
  ResultsDb db2(path_);
  const auto hit = db2.find(SweepKey{"tiny", 0, Algo::kGemm3, 512, 1u << 20, 8,
                                     VpuAttach::kIntegratedL1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->has_breakdown);
}

TEST_F(ResultsDbTest, OldSchemaV1FileLoadsAndHealsToV2) {
  // A pre-breakdown (v1) cache, exactly as PR 1 wrote it.
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(path_);
    out << "net,layer,algo,vlen,l2_bytes,lanes,attach,ic,ih,iw,oc,kh,kw,"
           "stride,pad,cycles,avg_vl,l2_miss_rate,mem_bytes,flops\n";
    out << "tiny,0,gemm3,512,1048576,8,int,3,32,32,8,3,3,1,1,"
           "100.5,13.699999999999999,0.123,4096,1000000000\n";
    out << "tiny,1,direct,512,1048576,8,int,3,32,32,8,3,3,1,1,"
           "200.25,13.699999999999999,0.123,4096,1000000000\n";
  }
  ResultsDb db(path_);
  EXPECT_TRUE(db.healed_on_load());  // rewritten under the v2 header
  EXPECT_EQ(db.size(), 2u);
  const auto hit = db.find(SweepKey{"tiny", 0, Algo::kGemm3, 512, 1u << 20, 8,
                                    VpuAttach::kIntegratedL1});
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->has_breakdown);  // headline valid, breakdown unknown
  EXPECT_TRUE(bit_equal(hit->cycles, 100.5));

  // The healed file is v2: it reloads cleanly and accepts breakdown appends.
  SweepRow up = make_row(2, Algo::kGemm6, 300.125);
  up.has_breakdown = true;
  up.bd.compute_cycles = 300.125;
  db.put(up);
  ResultsDb db2(path_);
  EXPECT_FALSE(db2.healed_on_load());
  EXPECT_EQ(db2.size(), 3u);
  const std::string text = read_file();
  EXPECT_NE(text.find("compute_cycles"), std::string::npos);
  const auto hit2 = db2.find(up.key);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_TRUE(hit2->has_breakdown);
}

TEST_F(ResultsDbTest, MixedBreakdownColumnsRejected) {
  {
    ResultsDb db(path_);
    SweepRow r = make_row(0, Algo::kGemm3, 100.5);
    r.has_breakdown = true;
    db.put(r);
    db.put(make_row(1, Algo::kDirect, 200.25));
  }
  // Blank out the first row's final breakdown field (l2_misses): breakdown
  // columns must be all set or all empty, and since a good row follows, this
  // is corruption (not a torn tail) and must throw.
  std::string text = read_file();
  const auto line_start = text.find("\ntiny,0,") + 1;
  const auto line_end = text.find('\n', line_start);
  const auto last_comma = text.rfind(',', line_end);
  text.erase(last_comma + 1, line_end - last_comma - 1);
  {
    std::ofstream out(path_, std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(ResultsDb db(path_), std::runtime_error);
}

TEST_F(ResultsDbTest, TruncatedTrailingRowIsDroppedAndHealed) {
  {
    ResultsDb db(path_);
    db.put(make_row(0, Algo::kGemm3, 100.5));
    db.put(make_row(1, Algo::kDirect, 200.25));
  }
  {
    // Simulate a crash mid-append: a ragged final line with no newline.
    std::ofstream out(path_, std::ios::app);
    out << "tiny,2,gemm6,512,104857";
  }
  ResultsDb db(path_);
  EXPECT_TRUE(db.healed_on_load());
  EXPECT_EQ(db.size(), 2u);
  // The heal rewrote the file: reloading again is clean, and appending after
  // the heal must not concatenate with leftover garbage.
  db.put(make_row(2, Algo::kGemm6, 300.125));
  ResultsDb db2(path_);
  EXPECT_FALSE(db2.healed_on_load());
  EXPECT_EQ(db2.size(), 3u);
}

TEST_F(ResultsDbTest, MissingTrailingNewlineDropsSuspectLastRow) {
  {
    ResultsDb db(path_);
    db.put(make_row(0, Algo::kGemm3, 100.5));
    db.put(make_row(1, Algo::kDirect, 123456.789));
  }
  // Cut the file mid-way through the last row's final field: the row still has
  // the right number of commas and parses, but the value is wrong.
  std::string text = read_file();
  std::filesystem::resize_file(path_, text.size() - 4);
  ResultsDb db(path_);
  EXPECT_TRUE(db.healed_on_load());
  EXPECT_EQ(db.size(), 1u);
  EXPECT_TRUE(db.find(SweepKey{"tiny", 0, Algo::kGemm3, 512, 1u << 20, 8,
                               VpuAttach::kIntegratedL1})
                  .has_value());
}

TEST_F(ResultsDbTest, UnparseableFinalRowIsDropped) {
  {
    ResultsDb db(path_);
    db.put(make_row(0, Algo::kGemm3, 100.5));
  }
  {
    // Right arity, garbage numeric field, complete line: e.g. a torn write
    // that happened to land on a comma boundary.
    std::ofstream out(path_, std::ios::app);
    out << "tiny,1,gemm3,512,1048576,8,int,3,32,32,8,3,3,1,1,"
           "12x4,1,1,1,1\n";
  }
  ResultsDb db(path_);
  EXPECT_TRUE(db.healed_on_load());
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(ResultsDbTest, HeaderMismatchThrows) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(path_);
    out << "foo,bar\n1,2\n";
  }
  EXPECT_THROW(ResultsDb db(path_), std::runtime_error);
}

TEST_F(ResultsDbTest, CorruptMiddleRowNamesFileAndLine) {
  {
    ResultsDb db(path_);
    db.put(make_row(0, Algo::kGemm3, 100.5));
    db.put(make_row(1, Algo::kDirect, 200.25));
  }
  // Corrupt the *first* data row (line 2): not a partial tail, must throw
  // with the file path and line number in the message.
  std::string text = read_file();
  const auto first_row = text.find("\ntiny,");
  ASSERT_NE(first_row, std::string::npos);
  text.replace(first_row + 6, 1, "X");  // layer ordinal -> "X"
  {
    std::ofstream out(path_, std::ios::trunc);
    out << text;
  }
  try {
    ResultsDb db(path_);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path_), std::string::npos) << msg;
    EXPECT_NE(msg.find(":2:"), std::string::npos) << msg;
  }
}

TEST_F(ResultsDbTest, ConcurrentPutsAllLand) {
  ResultsDb db(path_);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t] {
      for (int i = 0; i < kPerThread; ++i) {
        db.put(make_row(t * kPerThread + i, Algo::kGemm3,
                        1000.0 + t * kPerThread + i + 1.0 / 3.0));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.size(), static_cast<std::size_t>(kThreads * kPerThread));

  // Every concurrently appended row reloads bit-exactly.
  ResultsDb db2(path_);
  EXPECT_FALSE(db2.healed_on_load());
  ASSERT_EQ(db2.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    const auto hit = db2.find(SweepKey{"tiny", i, Algo::kGemm3, 512, 1u << 20,
                                       8, VpuAttach::kIntegratedL1});
    ASSERT_TRUE(hit.has_value());
    EXPECT_TRUE(bit_equal(hit->cycles, 1000.0 + i + 1.0 / 3.0));
  }
}

TEST_F(ResultsDbTest, SingleFlightComputesEachKeyOnce) {
  ResultsDb db(path_);
  const SweepKey key{"tiny", 0, Algo::kGemm3, 512, 1u << 20, 8,
                     VpuAttach::kIntegratedL1};
  std::atomic<int> calls{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<double> got(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const SweepRow r = db.get_or_compute(key, [&] {
        calls.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return make_row(0, Algo::kGemm3, 42.5);
      });
      got[t] = r.cycles;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(calls.load(), 1);
  for (double v : got) EXPECT_EQ(v, 42.5);
  EXPECT_EQ(db.size(), 1u);
}

TEST_F(ResultsDbTest, SingleFlightPropagatesFailureThenRecovers) {
  ResultsDb db(path_);
  const SweepKey key{"tiny", 0, Algo::kGemm3, 512, 1u << 20, 8,
                     VpuAttach::kIntegratedL1};
  constexpr int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        db.get_or_compute(key, [&]() -> SweepRow {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          throw std::runtime_error("simulated failure");
        });
      } catch (const std::runtime_error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every caller sees a failure (the leader's exception fans out to waiters;
  // threads that arrived after the flight was erased fail on their own).
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_EQ(db.size(), 0u);

  // The key is not poisoned: a working compute succeeds afterwards.
  const SweepRow r =
      db.get_or_compute(key, [] { return make_row(0, Algo::kGemm3, 7.25); });
  EXPECT_EQ(r.cycles, 7.25);
  EXPECT_EQ(db.size(), 1u);
}

}  // namespace
}  // namespace vlacnn

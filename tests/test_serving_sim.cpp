// Tests for the request-level serving simulator: arrival processes, batching
// policies, the discrete-event loop (against M/D/1 queueing theory and
// hand-computed schedules), nearest-rank percentiles, and the capacity
// planner's thread-count determinism.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "net/models.h"
#include "obs/timeline.h"
#include "serving/request_sim.h"

namespace vlacnn::serving {
namespace {

// ------------------------------------------------- nearest-rank ------------

TEST(NearestRank, HandComputedTenSamples) {
  // Ten known samples: rank r = ceil(q * 10), 1-indexed, no interpolation.
  const std::vector<double> s{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(nearest_rank(s, 0.05), 10);   // ceil(0.5)  = rank 1
  EXPECT_EQ(nearest_rank(s, 0.10), 10);   // ceil(1.0)  = rank 1
  EXPECT_EQ(nearest_rank(s, 0.20), 20);   // ceil(2.0)  = rank 2
  EXPECT_EQ(nearest_rank(s, 0.25), 30);   // ceil(2.5)  = rank 3
  EXPECT_EQ(nearest_rank(s, 0.50), 50);   // ceil(5.0)  = rank 5
  EXPECT_EQ(nearest_rank(s, 0.51), 60);   // ceil(5.1)  = rank 6
  EXPECT_EQ(nearest_rank(s, 0.95), 100);  // ceil(9.5)  = rank 10
  EXPECT_EQ(nearest_rank(s, 0.999), 100);
  EXPECT_EQ(nearest_rank(s, 1.0), 100);
}

TEST(NearestRank, ResultIsAlwaysASample) {
  const std::vector<double> s{1.5, 2.5, 97.25};
  for (double q : {0.01, 0.333, 0.5, 0.666, 0.99, 1.0}) {
    const double v = nearest_rank(s, q);
    EXPECT_TRUE(v == 1.5 || v == 2.5 || v == 97.25) << q;
  }
}

TEST(NearestRank, RejectsBadInput) {
  EXPECT_THROW(nearest_rank({}, 0.5), std::invalid_argument);
  EXPECT_THROW(nearest_rank({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(nearest_rank({1.0}, 1.1), std::invalid_argument);
  EXPECT_THROW(nearest_rank({1.0}, -0.5), std::invalid_argument);
  EXPECT_THROW(nearest_rank_index(0, 0.5), std::invalid_argument);
  EXPECT_THROW(nearest_rank_index(10, 0.0), std::invalid_argument);
  EXPECT_THROW(nearest_rank_index(10, 1.5), std::invalid_argument);
}

TEST(NearestRank, IndexMatchesHandComputedRanks) {
  // Same ranks as the ten-sample test above, as 0-based indices.
  EXPECT_EQ(nearest_rank_index(10, 0.05), 0u);
  EXPECT_EQ(nearest_rank_index(10, 0.10), 0u);
  EXPECT_EQ(nearest_rank_index(10, 0.25), 2u);
  EXPECT_EQ(nearest_rank_index(10, 0.50), 4u);
  EXPECT_EQ(nearest_rank_index(10, 0.51), 5u);
  EXPECT_EQ(nearest_rank_index(10, 1.0), 9u);
  EXPECT_EQ(nearest_rank_index(1, 1.0), 0u);
  EXPECT_EQ(nearest_rank_index(1, 0.001), 0u);
}

TEST(NearestRank, LargeSampleBoundariesAreExact) {
  // q * n that is an integer in exact arithmetic can land a hair above it in
  // floating point (0.95 * 1e8 rounds to 95000000.00000001...). The old
  // absolute 1e-9 snap-guard was smaller than that representation error, so
  // the rank came out one too high at large n. The relative guard must not.
  EXPECT_EQ(nearest_rank_index(100000000, 0.95), 94999999u);
  EXPECT_EQ(nearest_rank_index(100000000, 0.05), 4999999u);
  EXPECT_EQ(nearest_rank_index(1000000000, 0.999), 998999999u);
  EXPECT_EQ(nearest_rank_index(std::size_t{1} << 30, 0.5),
            (std::size_t{1} << 29) - 1);
  // ...and must not snap a genuinely-above-the-boundary q downwards.
  EXPECT_EQ(nearest_rank_index(10, 0.5000001), 5u);
  EXPECT_EQ(nearest_rank_index(100000000, 0.95000001), 95000000u);
  // p999 of the planner's typical 2000-request sample.
  EXPECT_EQ(nearest_rank_index(2000, 0.999), 1997u);
}

// ---------------------------------------------------- arrivals -------------

TEST(Arrivals, PoissonSeedDeterminism) {
  PoissonArrivals a(1000.0, 64, 7);
  PoissonArrivals b(1000.0, 64, 7);
  PoissonArrivals c(1000.0, 64, 8);
  bool any_diff = false;
  double prev = 0;
  for (int i = 0; i < 64; ++i) {
    const auto ta = a.next_arrival();
    const auto tb = b.next_arrival();
    const auto tc = c.next_arrival();
    ASSERT_TRUE(ta.has_value());
    EXPECT_EQ(*ta, *tb);  // same seed: bit-identical
    any_diff |= *ta != *tc;
    EXPECT_GE(*ta, prev);  // nondecreasing
    prev = *ta;
  }
  EXPECT_TRUE(any_diff);  // different seed: different workload
  EXPECT_TRUE(a.exhausted());
  EXPECT_FALSE(a.next_arrival().has_value());
}

TEST(Arrivals, PoissonMeanMatches) {
  const double mean = 2000.0;
  const std::uint64_t n = 100000;
  PoissonArrivals a(mean, n, 42);
  double last = 0;
  while (auto t = a.next_arrival()) last = *t;
  // Sum of n exponential(mean) gaps concentrates near n * mean.
  EXPECT_NEAR(last / static_cast<double>(n), mean, 0.02 * mean);
}

TEST(Arrivals, TraceRejectsUnsorted) {
  EXPECT_THROW(TraceArrivals({3.0, 1.0}), std::invalid_argument);
  TraceArrivals ok({0.0, 0.0, 5.0});  // duplicates are fine
  EXPECT_EQ(*ok.next_arrival(), 0.0);
}

TEST(Arrivals, ClosedLoopWaitsForCompletions) {
  ClosedLoopArrivals a(2, 100.0, 4);
  // Both clients issue at t=0, then the process stalls until a completion.
  EXPECT_EQ(*a.next_arrival(), 0.0);
  EXPECT_EQ(*a.next_arrival(), 0.0);
  EXPECT_FALSE(a.next_arrival().has_value());
  EXPECT_FALSE(a.exhausted());
  a.on_completion(500.0);  // think 100 -> next request at 600
  EXPECT_EQ(*a.next_arrival(), 600.0);
  a.on_completion(700.0);
  EXPECT_EQ(*a.next_arrival(), 800.0);
  EXPECT_TRUE(a.exhausted());  // 4 issued
  a.on_completion(900.0);      // ignored: total reached
  EXPECT_FALSE(a.next_arrival().has_value());
}

TEST(Arrivals, ClosedLoopHeapOrdersOutOfOrderAndTiedWakes) {
  // Completions reported out of order, including two at the same instant: the
  // wake heap must hand arrivals back in nondecreasing time, with the tied
  // pair adjacent — the event loop's determinism leans on this ordering.
  ClosedLoopArrivals a(3, 100.0, 9);
  EXPECT_EQ(*a.next_arrival(), 0.0);
  EXPECT_EQ(*a.next_arrival(), 0.0);
  EXPECT_EQ(*a.next_arrival(), 0.0);
  a.on_completion(500.0);  // wakes at 600
  a.on_completion(200.0);  // wakes at 300
  a.on_completion(200.0);  // wakes at 300 (identical)
  EXPECT_EQ(*a.next_arrival(), 300.0);
  EXPECT_EQ(*a.next_arrival(), 300.0);
  EXPECT_EQ(*a.next_arrival(), 600.0);
  a.on_completion(700.0);
  a.on_completion(700.0);
  a.on_completion(650.0);
  EXPECT_EQ(*a.next_arrival(), 750.0);
  EXPECT_EQ(*a.next_arrival(), 800.0);
  EXPECT_EQ(*a.next_arrival(), 800.0);
  EXPECT_TRUE(a.exhausted());  // 9 issued
  EXPECT_FALSE(a.next_arrival().has_value());
}

// ---------------------------------------------------- policies -------------

TEST(Batching, PolicyNamesAndBounds) {
  EXPECT_EQ(NoBatchPolicy().name(), "nobatch");
  EXPECT_EQ(MaxBatchPolicy(8).name(), "maxbatch8");
  EXPECT_EQ(AdaptiveBatchPolicy(4, 2e6).name(), "adaptive4@2e+06");
  EXPECT_THROW(MaxBatchPolicy(0), std::invalid_argument);
  EXPECT_THROW(AdaptiveBatchPolicy(1, -1.0), std::invalid_argument);
}

TEST(Batching, AdaptiveDispatchLogic) {
  AdaptiveBatchPolicy p(4, 100.0);
  EXPECT_EQ(p.dispatch_size(4, 0.0, 0.0), 4);   // full batch: go now
  EXPECT_EQ(p.dispatch_size(9, 0.0, 0.0), 4);   // capped at max
  EXPECT_EQ(p.dispatch_size(2, 0.0, 50.0), 0);  // young queue: wait
  EXPECT_EQ(p.flush_deadline(2, 0.0), 100.0);
  EXPECT_EQ(p.dispatch_size(2, 0.0, 100.0), 2);  // timeout: flush partial
}

// ---------------------------------------------------- event loop -----------

RequestSimConfig config(int instances, double first, double marginal,
                        std::size_t queue_cap = 0, double slo = 0) {
  RequestSimConfig c;
  c.instances = instances;
  c.cost = {first, marginal};
  c.queue_capacity = queue_cap;
  c.slo_cycles = slo;
  return c;
}

TEST(RequestSim, MD1MeanWaitMatchesTheory) {
  // M/D/1 at rho = 0.5: deterministic service D = 1000, Poisson arrivals with
  // mean gap 2000. Pollaczek-Khinchine: Wq = rho * D / (2 (1 - rho)) = 500.
  const double D = 1000.0, gap = 2000.0;
  const std::uint64_t n = 200000;
  PoissonArrivals arrivals(gap, n, 42);
  NoBatchPolicy policy;
  const ServingStats s = simulate_requests(config(1, D, D), arrivals, policy);
  EXPECT_EQ(s.offered, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_NEAR(s.mean_wait, 500.0, 0.05 * 500.0);          // within 5%
  EXPECT_NEAR(s.mean_latency, 1500.0, 0.05 * 1500.0);     // Wq + D
  EXPECT_NEAR(s.utilization, 0.5, 0.01);
  // Little's law on the waiting room: Lq = lambda * Wq.
  EXPECT_NEAR(s.mean_queue, s.mean_wait / gap, 0.05 * s.mean_queue + 1e-9);
}

TEST(RequestSim, AdaptiveFlushHandSchedule) {
  // Arrivals 0/10/20, adaptive(max 8, timeout 100), one instance with
  // service 50 + 10 per extra image: nothing dispatches until the oldest
  // request has waited 100 cycles, then all three go as one batch at t=100,
  // completing at 100 + 50 + 2*10 = 170. Exact, no tolerance.
  TraceArrivals arrivals({0.0, 10.0, 20.0});
  AdaptiveBatchPolicy policy(8, 100.0);
  const ServingStats s =
      simulate_requests(config(1, 50.0, 10.0), arrivals, policy);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.mean_batch, 3.0);
  EXPECT_EQ(s.makespan, 170.0);
  EXPECT_EQ(s.max_latency, 170.0);  // the t=0 arrival
  EXPECT_EQ(s.p50, 160.0);          // latencies {150, 160, 170}
  EXPECT_EQ(s.mean_wait, (100.0 + 90.0 + 80.0) / 3.0);
  EXPECT_EQ(s.max_queue, 3.0);
  EXPECT_EQ(s.utilization, 70.0 / 170.0);
}

TEST(RequestSim, AdaptiveTimeoutZeroIsWorkConserving) {
  // timeout 0 degenerates to greedy batching: the first arrival dispatches
  // alone, the two queued behind it flush together on completion.
  TraceArrivals arrivals({0.0, 0.0, 0.0});
  AdaptiveBatchPolicy policy(8, 0.0);
  const ServingStats s =
      simulate_requests(config(1, 50.0, 10.0), arrivals, policy);
  EXPECT_EQ(s.batches, 2u);          // {1} at t=0, {2} at t=50
  EXPECT_EQ(s.makespan, 110.0);      // 50 + (50 + 10)
  EXPECT_EQ(s.p50, 110.0);           // latencies {50, 110, 110}
  EXPECT_EQ(s.max_latency, 110.0);
}

TEST(RequestSim, BurstLargerThanQueueBoundDrops) {
  // Ten simultaneous arrivals into one instance with a 4-deep waiting room:
  // the first dispatches immediately, four wait, five are rejected.
  TraceArrivals arrivals(std::vector<double>(10, 0.0));
  NoBatchPolicy policy;
  const ServingStats s =
      simulate_requests(config(1, 50.0, 50.0, 4), arrivals, policy);
  EXPECT_EQ(s.offered, 10u);
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.dropped, 5u);
  EXPECT_EQ(s.max_queue, 4.0);
  EXPECT_EQ(s.makespan, 250.0);  // five back-to-back services
}

TEST(RequestSim, ClosedLoopSaturatesOneInstance) {
  // One client, zero think time: requests chain back to back, so the
  // instance never idles and every latency equals the service time.
  ClosedLoopArrivals arrivals(1, 0.0, 5);
  NoBatchPolicy policy;
  const ServingStats s =
      simulate_requests(config(1, 50.0, 50.0), arrivals, policy);
  EXPECT_EQ(s.completed, 5u);
  EXPECT_EQ(s.makespan, 250.0);
  EXPECT_EQ(s.utilization, 1.0);
  EXPECT_EQ(s.p50, 50.0);
  EXPECT_EQ(s.max_latency, 50.0);
  EXPECT_EQ(s.mean_wait, 0.0);
}

TEST(RequestSim, SloAttainmentCountsDropsAgainstOffered) {
  // Same burst as above with a 120-cycle SLO: of 10 offered, completions at
  // 50 and 100 are inside, the other three completions and all five drops
  // miss -> attainment 2/10.
  TraceArrivals arrivals(std::vector<double>(10, 0.0));
  NoBatchPolicy policy;
  const ServingStats s =
      simulate_requests(config(1, 50.0, 50.0, 4, 120.0), arrivals, policy);
  EXPECT_EQ(s.slo, 120.0);
  EXPECT_EQ(s.slo_attainment, 0.2);
}

TEST(RequestSim, RejectsBadConfig) {
  TraceArrivals arrivals({0.0});
  NoBatchPolicy policy;
  EXPECT_THROW(simulate_requests(config(0, 50.0, 50.0), arrivals, policy),
               std::invalid_argument);
  TraceArrivals arrivals2({0.0});
  EXPECT_THROW(simulate_requests(config(1, 0.0, 0.0), arrivals2, policy),
               std::invalid_argument);
}

TEST(RequestSim, StatsJsonIsByteStableAcrossRuns) {
  auto run = [] {
    PoissonArrivals arrivals(500.0, 5000, 11);
    MaxBatchPolicy policy(4);
    return simulate_requests(config(2, 300.0, 150.0), arrivals, policy)
        .to_json();
  };
  const std::string a = run(), b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"p999\""), std::string::npos);
}

TEST(RequestSim, ServiceModelOverrideMatchesFixedCost) {
  // A FixedServiceModel wrapping the same coefficients must reproduce the
  // plain cost-model run byte for byte; with cfg.service set, the fixed-cost
  // fields are ignored (the model owns validation).
  TraceArrivals a1({0.0, 10.0, 20.0});
  AdaptiveBatchPolicy p1(8, 100.0);
  const ServingStats direct =
      simulate_requests(config(1, 50.0, 10.0), a1, p1);

  FixedServiceModel model(BatchCostModel{50.0, 10.0});
  RequestSimConfig c = config(1, 0.0, 0.0);  // would throw without a service
  c.service = &model;
  TraceArrivals a2({0.0, 10.0, 20.0});
  AdaptiveBatchPolicy p2(8, 100.0);
  EXPECT_EQ(simulate_requests(c, a2, p2).to_json(), direct.to_json());
}

TEST(RequestSim, RejectsNonPositiveServiceModelOutput) {
  // The loop refuses to advance on a model that emits a non-positive or
  // non-finite service time — it would stall or corrupt simulated time.
  class BrokenModel final : public ServiceModel {
   public:
    double service_cycles(int) override { return 0.0; }
  } broken;
  RequestSimConfig c = config(1, 50.0, 10.0);
  c.service = &broken;
  TraceArrivals arrivals({0.0});
  NoBatchPolicy policy;
  EXPECT_THROW(simulate_requests(c, arrivals, policy), std::logic_error);
}

// ---------------------------------------------------- attribution ----------

TEST(ExactSplit, HeadPlusTailReconstitutesTotalExactly) {
  // The Sterbenz-based split must reconstitute total bit-for-bit even when
  // naive subtraction would round: exercise awkward magnitude ratios.
  const double totals[] = {1.0, 3.0, 0.1, 1e-9, 1e12, 12345.6789,
                           7.000000000000001};
  const double fracs[] = {0.0, 1e-17, 0.1, 0.3333333333333333, 0.5,
                          0.6666666666666666, 0.9999999999999999, 1.0};
  for (double total : totals) {
    for (double f : fracs) {
      const auto [head, tail] = exact_split(total, f * total);
      EXPECT_EQ(head + tail, total) << total << " " << f;
      EXPECT_GE(head, 0.0);
      EXPECT_GE(tail, 0.0);
      // head stays within a rounding of the request.
      EXPECT_NEAR(head, f * total, 1e-12 * total + 1e-300);
    }
  }
}

TEST(ExactSplit, ClampsAndDegenerateInputs) {
  EXPECT_EQ(exact_split(10.0, -5.0).first, 0.0);
  EXPECT_EQ(exact_split(10.0, -5.0).second, 10.0);
  EXPECT_EQ(exact_split(10.0, 25.0).first, 10.0);
  EXPECT_EQ(exact_split(10.0, 25.0).second, 0.0);
  EXPECT_EQ(exact_split(0.0, 1.0), (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(exact_split(-3.0, 1.0), (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(exact_split(std::nan(""), 1.0),
            (std::pair<double, double>{0.0, 0.0}));
  EXPECT_EQ(exact_split(10.0, std::nan("")).first, 0.0);
  EXPECT_EQ(exact_split(10.0, std::nan("")).second, 10.0);
}

TEST(RequestSim, AttributionSumsExactlyToLatencyForEveryRequest) {
  // The acceptance invariant: per completed request, the three components
  // reconstruct the latency *exactly* in floating point, over a stochastic
  // workload big enough to hit queueing, batching holds, and idle gaps.
  std::vector<RequestRecord> log;
  RequestSimConfig c = config(2, 300.0, 150.0, 16, 2000.0);
  c.request_log = &log;
  PoissonArrivals arrivals(500.0, 20000, 11);
  AdaptiveBatchPolicy policy(4, 400.0);
  const ServingStats s = simulate_requests(c, arrivals, policy);
  ASSERT_EQ(log.size(), s.completed);
  double qw = 0, fw = 0, sv = 0;
  for (const RequestRecord& r : log) {
    const double lat = r.completion - r.arrival;
    EXPECT_EQ((r.queue_wait + r.formation_wait) + r.service, lat);
    EXPECT_GE(r.queue_wait, 0.0);
    EXPECT_GE(r.formation_wait, 0.0);
    EXPECT_GT(r.service, 0.0);
    EXPECT_LE(r.arrival, r.dispatch);
    EXPECT_LT(r.dispatch, r.completion);
    EXPECT_EQ(r.within_slo, lat <= c.slo_cycles);
    qw += r.queue_wait;
    fw += r.formation_wait;
    sv += r.service;
  }
  const double n = static_cast<double>(s.completed);
  EXPECT_DOUBLE_EQ(s.mean_queue_wait, qw / n);
  EXPECT_DOUBLE_EQ(s.mean_formation_wait, fw / n);
  EXPECT_DOUBLE_EQ(s.mean_service, sv / n);
  // The means decompose the aggregate means too (up to accumulation order).
  EXPECT_NEAR(s.mean_queue_wait + s.mean_formation_wait, s.mean_wait,
              1e-9 * s.mean_wait + 1e-12);
  EXPECT_NEAR(s.mean_queue_wait + s.mean_formation_wait + s.mean_service,
              s.mean_latency, 1e-9 * s.mean_latency + 1e-12);
}

TEST(RequestSim, AttributionHandComputedAdaptiveHold) {
  // The AdaptiveFlushHandSchedule scenario: the instance sits idle while the
  // policy holds the queue until t=100, so the entire pre-dispatch wait is
  // formation wait, none of it capacity queueing.
  std::vector<RequestRecord> log;
  RequestSimConfig c = config(1, 50.0, 10.0);
  c.request_log = &log;
  TraceArrivals arrivals({0.0, 10.0, 20.0});
  AdaptiveBatchPolicy policy(8, 100.0);
  const ServingStats s = simulate_requests(c, arrivals, policy);
  ASSERT_EQ(log.size(), 3u);
  const double waits[] = {100.0, 90.0, 80.0};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log[i].arrival, 10.0 * i);
    EXPECT_EQ(log[i].dispatch, 100.0);
    EXPECT_EQ(log[i].completion, 170.0);
    EXPECT_EQ(log[i].queue_wait, 0.0) << i;
    EXPECT_EQ(log[i].formation_wait, waits[i]) << i;
    EXPECT_EQ(log[i].service, 70.0) << i;
  }
  EXPECT_EQ(s.mean_formation_wait, s.mean_wait);
  EXPECT_EQ(s.mean_queue_wait, 0.0);
  EXPECT_EQ(s.mean_service, 70.0);
}

TEST(RequestSim, AttributionHandComputedBusyQueue) {
  // Ten simultaneous arrivals, nobatch, one instance, service 50: the
  // instance never idles after t=0, so every wait is pure capacity queueing.
  std::vector<RequestRecord> log;
  RequestSimConfig c = config(1, 50.0, 50.0);
  c.request_log = &log;
  TraceArrivals arrivals(std::vector<double>(10, 0.0));
  NoBatchPolicy policy;
  const ServingStats s = simulate_requests(c, arrivals, policy);
  ASSERT_EQ(log.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log[i].queue_wait, 50.0 * i) << i;
    EXPECT_EQ(log[i].formation_wait, 0.0) << i;
    EXPECT_EQ(log[i].service, 50.0) << i;
  }
  EXPECT_EQ(s.mean_queue_wait, s.mean_wait);
  EXPECT_EQ(s.mean_formation_wait, 0.0);
}

TEST(RequestSim, NoObsVariantMatchesInstrumentedLoopByteForByte) {
  // simulate_requests_no_obs is the benchmark baseline: same stats, same
  // request log, with every obs hook compiled out.
  auto run = [](bool no_obs) {
    std::vector<RequestRecord> log;
    RequestSimConfig c = config(2, 300.0, 150.0, 16, 2000.0);
    c.request_log = &log;
    PoissonArrivals arrivals(500.0, 5000, 7);
    AdaptiveBatchPolicy policy(4, 400.0);
    const ServingStats s = no_obs ? simulate_requests_no_obs(c, arrivals, policy)
                                  : simulate_requests(c, arrivals, policy);
    return std::make_pair(s.to_json(), log);
  };
  const auto [json_obs, log_obs] = run(false);
  const auto [json_no, log_no] = run(true);
  EXPECT_EQ(json_obs, json_no);
  EXPECT_NE(json_obs.find("\"mean_queue_wait\""), std::string::npos);
  EXPECT_NE(json_obs.find("\"mean_formation_wait\""), std::string::npos);
  EXPECT_NE(json_obs.find("\"mean_service\""), std::string::npos);
  ASSERT_EQ(log_obs.size(), log_no.size());
  for (std::size_t i = 0; i < log_obs.size(); ++i) {
    EXPECT_EQ(log_obs[i].arrival, log_no[i].arrival);
    EXPECT_EQ(log_obs[i].dispatch, log_no[i].dispatch);
    EXPECT_EQ(log_obs[i].completion, log_no[i].completion);
    EXPECT_EQ(log_obs[i].queue_wait, log_no[i].queue_wait);
    EXPECT_EQ(log_obs[i].formation_wait, log_no[i].formation_wait);
    EXPECT_EQ(log_obs[i].service, log_no[i].service);
    EXPECT_EQ(log_obs[i].within_slo, log_no[i].within_slo);
  }
}

TEST(RequestSim, CallerOwnedTimelineRecorderSeesTheWholeRun) {
  // The event loop drives a caller-supplied recorder and finishes it at the
  // makespan; nothing reaches the global sink in that mode.
  obs::TimelineSink::global().reset();
  obs::TimelineConfig tc;
  tc.interval_cycles = 100.0;
  obs::TimelineRecorder rec(tc);
  RequestSimConfig c = config(1, 50.0, 50.0);
  c.timeline = &rec;
  TraceArrivals arrivals(std::vector<double>(10, 0.0));
  NoBatchPolicy policy;
  const ServingStats s = simulate_requests(c, arrivals, policy);
  ASSERT_FALSE(rec.snapshots().empty());
  const auto& last = rec.snapshots().back();
  EXPECT_EQ(last.t_end, s.makespan);
  EXPECT_EQ(last.cum_completed, s.completed);
  EXPECT_EQ(last.cum_offered, s.offered);
  EXPECT_EQ(obs::TimelineSink::global().block_count(), 0u);
}

// ------------------------------------------------ capacity planner ---------

class CapacityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vlacnn_capacity_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Network tiny_net() {
    Network net("tiny", {3, 32, 32});
    net.conv(8, 3, 1, 1);
    net.conv(16, 3, 2, 1);
    net.conv(8, 1, 1, 0);
    return net;
  }

  std::filesystem::path dir_;
};

TEST_F(CapacityTest, CostModelInvariants) {
  ResultsDb db((dir_ / "cache.csv").string());
  SweepDriver driver(&db);
  const Network net = tiny_net();
  EXPECT_GT(conv_weight_bytes(net), 0.0);
  const BatchCostModel m =
      batch_cost_model(driver, net, 512, 1u << 20, std::nullopt);
  EXPECT_GT(m.first_image_cycles, 0.0);
  EXPECT_GT(m.marginal_image_cycles, 0.0);
  EXPECT_LE(m.marginal_image_cycles, m.first_image_cycles);
  // The amortizable share is clamped to half the per-image cost.
  EXPECT_GE(m.marginal_image_cycles, 0.5 * m.first_image_cycles - 1e-9);
  EXPECT_EQ(m.service_cycles(1), m.first_image_cycles);
  EXPECT_EQ(m.service_cycles(3),
            m.first_image_cycles + 2.0 * m.marginal_image_cycles);
}

TEST_F(CapacityTest, CostModelRejectsNonPositiveBandwidth) {
  // mem_bytes_per_cycle <= 0 (or NaN) used to divide through silently and
  // poison every downstream service time with inf/NaN cycles.
  ResultsDb db((dir_ / "cache.csv").string());
  SweepDriver driver(&db);
  const Network net = tiny_net();
  EXPECT_THROW(
      batch_cost_model(driver, net, 512, 1u << 20, std::nullopt, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      batch_cost_model(driver, net, 512, 1u << 20, std::nullopt, -6.4),
      std::invalid_argument);
  EXPECT_THROW(batch_cost_model(driver, net, 512, 1u << 20, std::nullopt,
                                std::nan("")),
               std::invalid_argument);
}

TEST_F(CapacityTest, GridIsByteIdenticalAcrossPoolSizes) {
  // The determinism guarantee, in process: the same query over the same grid
  // yields byte-identical per-point stats on a 1-thread and an 8-thread pool.
  const Network net = tiny_net();
  CapacityQuery q;
  q.load_rps = 100000;  // tiny net is fast; drive it hard enough to queue
  q.slo_ms = 5;
  q.requests = 500;
  q.seed = 42;

  ResultsDb db1((dir_ / "p1.csv").string());
  SweepDriver d1(&db1);
  ThreadPool pool1(1);
  const auto r1 =
      CapacityPlanner(&d1).evaluate_grid(net, q, std::nullopt, &pool1);

  ResultsDb db8((dir_ / "p8.csv").string());
  SweepDriver d8(&db8);
  ThreadPool pool8(8);
  const auto r8 =
      CapacityPlanner(&d8).evaluate_grid(net, q, std::nullopt, &pool8);

  ASSERT_EQ(r1.size(), r8.size());
  ASSERT_FALSE(r1.empty());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].stats.to_json(), r8[i].stats.to_json()) << i;
    EXPECT_EQ(r1[i].eval.cycles_per_image, r8[i].eval.cycles_per_image) << i;
    EXPECT_EQ(r1[i].eval.area_mm2, r8[i].eval.area_mm2) << i;
    EXPECT_EQ(r1[i].meets_slo, r8[i].meets_slo) << i;
  }
}

TEST_F(CapacityTest, TimelineJsonlIsByteIdenticalAcrossPoolSizes) {
  // The tentpole determinism guarantee end to end: a timeline-enabled grid
  // evaluation writes byte-identical JSONL whether the planner ran on one
  // thread or eight. Blocks are keyed by grid-point label and written in
  // sorted order, so scheduling cannot reorder the file.
  const Network net = tiny_net();
  CapacityQuery q;
  q.load_rps = 100000;
  q.slo_ms = 5;
  q.requests = 300;
  q.seed = 42;

  const std::string before_path = obs::timeline_path();
  auto run_with_pool = [&](int threads, const char* tag) {
    const auto file = dir_ / (std::string("tl_") + tag + ".jsonl");
    obs::set_timeline_path(file.string());
    obs::TimelineSink::global().reset();
    ResultsDb db((dir_ / (std::string("tl_") + tag + ".csv")).string());
    SweepDriver driver(&db);
    ThreadPool pool(threads);
    CapacityPlanner(&driver).evaluate_grid(net, q, std::nullopt, &pool);
    EXPECT_GT(obs::TimelineSink::global().block_count(), 0u);
    obs::TimelineSink::global().write_file();
    obs::TimelineSink::global().reset();
    std::ifstream in(file);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string serial = run_with_pool(1, "p1");
  const std::string parallel = run_with_pool(8, "p8");
  obs::set_timeline_path(before_path);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Labels carry the grid point, so blocks are self-describing.
  EXPECT_NE(serial.find("\"type\":\"run\""), std::string::npos);
  EXPECT_NE(serial.find("cores"), std::string::npos);
  EXPECT_NE(serial.find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(serial.find("\"type\":\"snapshot\""), std::string::npos);
}

TEST_F(CapacityTest, CheapestPicksMinimalAreaAmongFeasible) {
  std::vector<CapacityCandidate> cands(3);
  cands[0].eval.area_mm2 = 5.0;
  cands[0].meets_slo = false;
  cands[1].eval.area_mm2 = 9.0;
  cands[1].meets_slo = true;
  cands[2].eval.area_mm2 = 7.0;
  cands[2].meets_slo = true;
  const auto best = CapacityPlanner::cheapest(cands);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->eval.area_mm2, 7.0);
  EXPECT_FALSE(CapacityPlanner::cheapest({}).has_value());
}

TEST_F(CapacityTest, RejectsNonPositiveQuery) {
  ResultsDb db((dir_ / "cache.csv").string());
  SweepDriver driver(&db);
  CapacityPlanner planner(&driver);
  CapacityQuery q;
  q.load_rps = 0;
  EXPECT_THROW(planner.evaluate(tiny_net(), ServingPoint{1, 512, 1u << 20, 1},
                                q, std::nullopt),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlacnn::serving

// Tests for the set-associative cache model and the two-level hierarchy.
#include <gtest/gtest.h>

#include "memsim/cache.h"
#include "memsim/memory_system.h"

namespace vlacnn {
namespace {

CacheConfig small_cache(std::uint64_t size = 1024, std::uint32_t ways = 2) {
  return CacheConfig{size, ways, 64, 4};
}

TEST(Cache, ConfigArithmetic) {
  CacheConfig c{1u << 20, 8, 64, 20};
  EXPECT_EQ(c.num_lines(), (1u << 20) / 64);
  EXPECT_EQ(c.num_sets(), (1u << 20) / 64 / 8);
}

TEST(Cache, RejectsNonPow2Sets) {
  // 3 ways of 64B lines in 1024 bytes -> not divisible cleanly.
  EXPECT_THROW(Cache(CacheConfig{1000, 2, 64, 1}), std::invalid_argument);
}

TEST(Cache, ColdMissesThenHits) {
  Cache c(small_cache());
  EXPECT_FALSE(c.probe(0, false).hit);
  EXPECT_TRUE(c.probe(0, false).hit);
  EXPECT_EQ(c.accesses(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-way cache: lines mapping to the same set evict least-recently-used.
  Cache c(small_cache(1024, 2));  // 8 sets
  const std::uint64_t a = 0, b = 8, d = 16;  // all map to set 0
  c.probe(a, false);
  c.probe(b, false);
  c.probe(a, false);       // a is now MRU
  c.probe(d, false);       // evicts b (LRU)
  EXPECT_TRUE(c.probe(a, false).hit);
  EXPECT_FALSE(c.probe(b, false).hit);
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache c(small_cache(1024, 2));
  c.probe(0, true);   // dirty
  c.probe(8, false);
  ProbeResult r = c.probe(16, false);  // evicts line 0 (dirty)
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache c(small_cache(1024, 2));
  c.probe(0, false);
  c.probe(8, false);
  EXPECT_FALSE(c.probe(16, false).writeback);
}

TEST(Cache, DirtyBitSurvivesMoveToFront) {
  Cache c(small_cache(1024, 2));
  c.probe(0, true);    // dirty
  c.probe(8, false);
  c.probe(0, false);   // hit, move to front, still dirty
  c.probe(16, false);  // evicts 8 (clean)
  ProbeResult r = c.probe(24, false);  // evicts 0 (dirty)
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, StreamLargerThanCacheAllMisses) {
  Cache c(small_cache(1024, 2));  // 16 lines
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_FALSE(c.probe(i, false).hit);
  // Second pass still misses: stream exceeded capacity.
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_FALSE(c.probe(i, false).hit);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 1.0);
}

TEST(Cache, WorkingSetFittingIsAllHitsAfterWarmup) {
  Cache c(small_cache(1024, 2));  // 16 lines
  for (std::uint64_t i = 0; i < 16; ++i) c.probe(i, false);
  const std::uint64_t misses_before = c.misses();
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t i = 0; i < 16; ++i) EXPECT_TRUE(c.probe(i, false).hit);
  }
  EXPECT_EQ(c.misses(), misses_before);
}

TEST(Cache, ResetClearsContentsAndStats) {
  Cache c(small_cache());
  c.probe(1, true);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.probe(1, false).hit);
}

// ------------------------------------------------------ MemorySystem -------

MemConfig tiny_mem() {
  MemConfig m;
  m.l1 = {1024, 2, 64, 4};
  m.l2 = {4096, 4, 64, 20};
  m.vbuf = {256, 2, 64, 1};
  return m;
}

TEST(MemorySystem, IntegratedRoutesThroughL1) {
  MemConfig cfg = tiny_mem();
  cfg.attach = VpuAttach::kIntegratedL1;
  MemorySystem m(cfg);
  AccessResult r = m.vector_access(0, 64, false);
  EXPECT_EQ(r.lines, 1u);
  EXPECT_EQ(r.l1_misses, 1u);
  EXPECT_EQ(r.l2_misses, 1u);
  EXPECT_EQ(m.l1().accesses(), 1u);
  // Hit in L1 next time: no L2 traffic.
  const std::uint64_t l2_before = m.l2().accesses();
  r = m.vector_access(0, 64, false);
  EXPECT_EQ(r.l1_misses, 0u);
  EXPECT_EQ(m.l2().accesses(), l2_before);
}

TEST(MemorySystem, DecoupledBypassesL1) {
  MemConfig cfg = tiny_mem();
  cfg.attach = VpuAttach::kDecoupledL2;
  MemorySystem m(cfg);
  m.vector_access(0, 256, false);
  EXPECT_EQ(m.l1().accesses(), 0u);
  EXPECT_GT(m.vbuf().accesses(), 0u);
  EXPECT_GT(m.l2().accesses(), 0u);
}

TEST(MemorySystem, ScalarAlwaysViaL1) {
  MemConfig cfg = tiny_mem();
  cfg.attach = VpuAttach::kDecoupledL2;
  MemorySystem m(cfg);
  m.scalar_access(0, 4, false);
  EXPECT_EQ(m.l1().accesses(), 1u);
}

TEST(MemorySystem, MultiLineAccessCountsAllLines) {
  MemorySystem m(tiny_mem());
  AccessResult r = m.vector_access(32, 128, false);  // spans 3 lines
  EXPECT_EQ(r.lines, 3u);
}

TEST(MemorySystem, ZeroByteAccessIsNoop) {
  MemorySystem m(tiny_mem());
  AccessResult r = m.vector_access(0, 0, false);
  EXPECT_EQ(r.lines, 0u);
  EXPECT_EQ(m.l1().accesses(), 0u);
}

TEST(MemorySystem, MemBytesTracksFillsAndWritebacks) {
  MemorySystem m(tiny_mem());
  // Write-stream far beyond both cache capacities: every line is filled once
  // and eventually written back.
  for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
    m.vector_access(a, 64, true);
  }
  EXPECT_GT(m.mem_bytes_total(), 64ull * 1024);  // fills + some writebacks
}

TEST(MemorySystem, WriteAllocateFillChargesExactlyOneLine) {
  // A cold write allocates the line: one fill from DRAM, no writeback yet.
  MemorySystem m(tiny_mem());
  const AccessResult r = m.vector_access(0, 64, true);
  EXPECT_EQ(r.lines, 1u);
  EXPECT_EQ(r.l1_misses, 1u);
  EXPECT_EQ(r.l2_misses, 1u);
  EXPECT_EQ(r.mem_bytes, 64u);
  EXPECT_EQ(m.mem_bytes_total(), 64u);
}

TEST(MemorySystem, DirtyL1VictimAbsorbedByL2ThenWrittenBackOnL2Eviction) {
  // tiny_mem: L1 = 16 lines / 8 sets (set = line % 8), L2 = 64 lines /
  // 16 sets 4-way (set = line % 16). Walks a dirty line through both
  // eviction levels and checks mem_bytes == fills + writebacks exactly.
  MemorySystem m(tiny_mem());
  // Dirty line 0 in L1 (and fill it into L2, clean).
  EXPECT_EQ(m.vector_access(0, 64, true).mem_bytes, 64u);
  // Fill L1 set 0 (line 8 maps to L1 set 0 but L2 set 8).
  EXPECT_EQ(m.vector_access(8 * 64, 64, false).mem_bytes, 64u);
  // Line 16 evicts dirty line 0 from L1. The victim lands in L2 at its own
  // address — line 0 is resident there, so the writeback costs no DRAM
  // traffic; only line 16's own fill is charged.
  EXPECT_EQ(m.vector_access(16 * 64, 64, false).mem_bytes, 64u);
  // L2 set 0 now holds {0 (dirty, MRU after the writeback), 16}. Fill the
  // remaining ways...
  EXPECT_EQ(m.vector_access(32 * 64, 64, false).mem_bytes, 64u);
  EXPECT_EQ(m.vector_access(48 * 64, 64, false).mem_bytes, 64u);
  // ...evict the clean LRU (line 16) first: still just the fill...
  EXPECT_EQ(m.vector_access(64 * 64, 64, false).mem_bytes, 64u);
  // ...and finally evict dirty line 0 from L2: fill + DRAM writeback.
  const AccessResult wb = m.vector_access(80 * 64, 64, false);
  EXPECT_EQ(wb.l2_misses, 1u);
  EXPECT_EQ(wb.mem_bytes, 128u);
  // Total is the exact sum of per-access charges (fills + writebacks).
  EXPECT_EQ(m.mem_bytes_total(), 6u * 64u + 128u);
}

TEST(MemorySystem, ConstructorRejectsNonPositiveBandwidth) {
  // The timing model divides by this peak bandwidth; zero/negative would
  // silently make every bandwidth stall inf instead of erroring out.
  MemConfig cfg = tiny_mem();
  cfg.mem_bytes_per_cycle = 0;
  EXPECT_THROW(MemorySystem{cfg}, std::invalid_argument);
  cfg.mem_bytes_per_cycle = -6.4;
  EXPECT_THROW(MemorySystem{cfg}, std::invalid_argument);
  cfg.mem_bytes_per_cycle = 6.4;
  EXPECT_NO_THROW(MemorySystem{cfg});
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  MemConfig cfg = tiny_mem();  // L1 16 lines, L2 64 lines
  MemorySystem m(cfg);
  // Touch 32 lines: all fit in L2, half evicted from L1.
  for (std::uint64_t a = 0; a < 32 * 64; a += 64) m.vector_access(a, 64, false);
  // Line 0 is gone from L1 but should hit in L2 (no new memory traffic).
  const std::uint64_t mem_before = m.mem_bytes_total();
  AccessResult r = m.vector_access(0, 64, false);
  EXPECT_EQ(r.l1_misses, 1u);
  EXPECT_EQ(r.l2_misses, 0u);
  EXPECT_EQ(m.mem_bytes_total(), mem_before);
}

TEST(MemorySystem, PrefetchWarmsCache) {
  MemorySystem m(tiny_mem());
  m.prefetch(0, 64);
  AccessResult r = m.vector_access(0, 64, false);
  EXPECT_EQ(r.l1_misses, 0u);
}

TEST(MemorySystem, ResetRestoresColdState) {
  MemorySystem m(tiny_mem());
  m.vector_access(0, 64, false);
  m.reset();
  EXPECT_EQ(m.l1().accesses(), 0u);
  EXPECT_EQ(m.mem_bytes_total(), 0u);
  EXPECT_EQ(m.vector_access(0, 64, false).l1_misses, 1u);
}

}  // namespace
}  // namespace vlacnn

// Tests for the results cache, the sweep driver, the area model, the serving
// simulator, and the selectors / ConvEngine front door.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <limits>

#include "area/area_model.h"
#include "core/conv_engine.h"
#include "core/selector.h"
#include "net/models.h"
#include "serving/serving.h"
#include "sweep/sweep.h"

namespace vlacnn {
namespace {

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vlacnn_sweep_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    path_ = (dir_ / "cache.csv").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A fast, shape-faithful miniature network for sweep tests.
  static Network tiny_net() {
    Network net("tiny", {3, 32, 32});
    net.conv(8, 3, 1, 1);           // 3x3 s1: all algorithms applicable
    net.conv(16, 3, 2, 1);          // stride 2
    net.conv(8, 1, 1, 0);           // 1x1
    return net;
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(SweepTest, ComputesAndCaches) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  const SweepRow r1 = driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20);
  EXPECT_GT(r1.cycles, 0);
  EXPECT_EQ(db.size(), 1u);
  const SweepRow r2 = driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20);
  EXPECT_DOUBLE_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(db.size(), 1u);  // no duplicate
}

TEST_F(SweepTest, PersistsAcrossDbInstances) {
  double cycles = 0;
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  {
    ResultsDb db(path_);
    SweepDriver driver(&db);
    cycles = driver.get("tiny", 0, d, Algo::kDirect, 1024, 4u << 20).cycles;
  }
  ResultsDb db2(path_);
  EXPECT_EQ(db2.size(), 1u);
  SweepDriver driver2(&db2);
  EXPECT_DOUBLE_EQ(
      driver2.get("tiny", 0, d, Algo::kDirect, 1024, 4u << 20).cycles, cycles);
}

TEST_F(SweepTest, StaleDescriptorDetected) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20);
  ConvLayerDesc changed = d;
  changed.oc = 16;
  EXPECT_THROW(driver.get("tiny", 0, changed, Algo::kGemm3, 512, 1u << 20),
               std::runtime_error);
}

TEST_F(SweepTest, DistinctKeysStored) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20);
  driver.get("tiny", 0, d, Algo::kGemm3, 1024, 1u << 20);
  driver.get("tiny", 0, d, Algo::kGemm6, 512, 1u << 20);
  driver.get("tiny", 0, d, Algo::kGemm3, 512, 1u << 20, 8,
             VpuAttach::kDecoupledL2);
  EXPECT_EQ(db.size(), 4u);
}

TEST_F(SweepTest, NetworkOptimalNeverWorseThanAnySingleAlgorithm) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  const Network net = tiny_net();
  const auto opt = driver.network_optimal(net, 512, 1u << 20);
  EXPECT_EQ(opt.plan.size(), 3u);
  for (Algo a : kAllAlgos) {
    EXPECT_LE(opt.cycles, driver.network_cycles(net, a, 512, 1u << 20) + 1e-9)
        << to_string(a);
  }
  // The optimal plan must reproduce its own cycle count.
  EXPECT_NEAR(driver.network_plan_cycles(net, opt.plan, 512, 1u << 20),
              opt.cycles, 1e-6);
}

TEST_F(SweepTest, NetworkRowsApplyFallback) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  const Network net = tiny_net();
  const auto rows = driver.network_rows(net, Algo::kWinograd, 512, 1u << 20);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key.algo, Algo::kWinograd);
  EXPECT_EQ(rows[1].key.algo, Algo::kGemm6);  // stride 2 fallback
  EXPECT_EQ(rows[2].key.algo, Algo::kGemm6);  // 1x1 fallback
}

TEST_F(SweepTest, ReproExactModeParsesStrictly) {
  ::unsetenv("REPRO_EXACT");
  EXPECT_FALSE(repro_exact_mode());
  for (const char* v : {"1", "true", "TRUE", "yes", "on", "On"}) {
    ::setenv("REPRO_EXACT", v, 1);
    EXPECT_TRUE(repro_exact_mode()) << v;
  }
  for (const char* v : {"0", "false", "no", "off", "OFF", ""}) {
    ::setenv("REPRO_EXACT", v, 1);
    EXPECT_FALSE(repro_exact_mode()) << v;
  }
  for (const char* v : {"10", "2", "maybe", "yess"}) {
    ::setenv("REPRO_EXACT", v, 1);
    EXPECT_THROW(repro_exact_mode(), std::runtime_error) << v;
  }
  ::unsetenv("REPRO_EXACT");
}

TEST_F(SweepTest, ParallelFanOutMatchesSerialBitwise) {
  const Network net = tiny_net();
  const auto descs = net.conv_descs();

  // Serial reference: one get() at a time against its own cache file,
  // replicating the pre-parallel network_optimal loop exactly.
  ResultsDb serial_db((dir_ / "serial.csv").string());
  SweepDriver serial(&serial_db);
  std::vector<Algo> serial_plan;
  double serial_cycles = 0;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    Algo best_algo = Algo::kGemm6;
    for (Algo a : kAllAlgos) {
      if (!algo_applicable(a, descs[i])) continue;
      const SweepRow r = serial.get(net.name(), static_cast<int>(i), descs[i],
                                    a, 1024, 4u << 20);
      if (r.cycles < best) {
        best = r.cycles;
        best_algo = a;
      }
    }
    serial_plan.push_back(best_algo);
    serial_cycles += best;
  }

  // Parallel engine on a fresh cache: plan and cycles must be bit-identical.
  ResultsDb par_db((dir_ / "parallel.csv").string());
  SweepDriver parallel(&par_db);
  const auto opt = parallel.network_optimal(net, 1024, 4u << 20);
  EXPECT_EQ(opt.plan, serial_plan);
  EXPECT_EQ(opt.cycles, serial_cycles);  // exact, not NEAR

  // Per-row outputs are bit-identical too.
  for (Algo a : kAllAlgos) {
    const auto rows = parallel.network_rows(net, a, 1024, 4u << 20);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow ref =
          serial.get(net.name(), static_cast<int>(i), descs[i],
                     rows[i].key.algo, 1024, 4u << 20);
      EXPECT_EQ(rows[i].cycles, ref.cycles);
      EXPECT_EQ(rows[i].avg_vl, ref.avg_vl);
      EXPECT_EQ(rows[i].l2_miss_rate, ref.l2_miss_rate);
    }
  }
}

TEST_F(SweepTest, GetManyDeduplicatesIdenticalRequests) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  const ConvLayerDesc d{3, 32, 32, 8, 3, 3, 1, 1};
  std::vector<SweepRequest> reqs(
      64, SweepRequest{"tiny", 0, d, Algo::kGemm3, 512, 1u << 20, 8,
                       VpuAttach::kIntegratedL1});
  const auto rows = driver.get_many(reqs);
  ASSERT_EQ(rows.size(), reqs.size());
  EXPECT_EQ(db.size(), 1u);  // single-flight: one simulation, one cache row
  for (const SweepRow& r : rows) EXPECT_EQ(r.cycles, rows[0].cycles);
}

TEST_F(SweepTest, GridDefinitionsMatchPapers) {
  EXPECT_EQ(paper2_vlens().size(), 4u);
  EXPECT_EQ(paper2_l2_sizes().size(), 4u);
  EXPECT_EQ(paper2_vlens().front(), 512u);
  EXPECT_EQ(paper2_vlens().back(), 4096u);
  EXPECT_EQ(paper1_vlens().back(), 16384u);
  EXPECT_EQ(paper1_l2_sizes().back(), 256ull << 20);
}

// ----------------------------------------------------------- area ----------

TEST(AreaModel, VpuFractionsMatchPaper) {
  const AreaModel m;
  EXPECT_NEAR(m.vpu_fraction(512), 0.28, 0.01);
  EXPECT_NEAR(m.vpu_fraction(1024), 0.43, 0.01);
  EXPECT_NEAR(m.vpu_fraction(2048), 0.61, 0.01);
  EXPECT_NEAR(m.vpu_fraction(4096), 0.757, 0.01);
}

TEST(AreaModel, ParetoOptimalPointScale) {
  // The paper's Pareto-optimal configuration (2048-bit, 1 MB) is 2.35 mm^2.
  const AreaModel m;
  EXPECT_NEAR(m.chip_mm2(2048, 1u << 20), 2.35, 0.1);
}

TEST(AreaModel, Monotonicity) {
  const AreaModel m;
  EXPECT_LT(m.core_tile_mm2(512), m.core_tile_mm2(4096));
  EXPECT_LT(m.l2_mm2(1u << 20), m.l2_mm2(64u << 20));
  EXPECT_LT(m.chip_mm2(512, 1u << 20, 1), m.chip_mm2(512, 1u << 20, 4));
}

TEST(AreaModel, CacheDominatesAtLargeSizes) {
  // Paper II: "the cache size has a more significant impact on the total area"
  const AreaModel m;
  EXPECT_GT(m.l2_mm2(64u << 20), m.core_tile_mm2(4096));
}

// -------------------------------------------------------- serving ----------

TEST_F(SweepTest, ServingFeasibilityRules) {
  EXPECT_TRUE((ServingPoint{4, 512, 4u << 20, 4}).feasible());
  EXPECT_FALSE((ServingPoint{4, 512, 4u << 20, 8}).feasible());   // > cores
  EXPECT_FALSE((ServingPoint{4, 512, 2u << 20, 4}).feasible());   // slice < 1MB
  EXPECT_TRUE((ServingPoint{64, 4096, 256u << 20, 64}).feasible());
  EXPECT_FALSE((ServingPoint{1, 512, 1u << 20, 0}).feasible());
}

TEST_F(SweepTest, ServingThroughputScalesWithInstances) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  ServingSimulator sim(&driver);
  const Network net = tiny_net();
  const ServingEval one =
      sim.evaluate(net, ServingPoint{4, 512, 16u << 20, 1}, Algo::kGemm3);
  const ServingEval four =
      sim.evaluate(net, ServingPoint{4, 512, 16u << 20, 4}, Algo::kGemm3);
  // Four instances with a quarter of the cache each: throughput rises but
  // sublinearly (per-instance latency can only get worse with less cache).
  EXPECT_GT(four.images_per_cycle, one.images_per_cycle);
  EXPECT_LE(four.images_per_cycle, 4.0 * one.images_per_cycle + 1e-12);
  EXPECT_GE(four.cycles_per_image, one.cycles_per_image - 1e-9);
}

TEST_F(SweepTest, ServingOptimalBeatsFixedAlgo) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  ServingSimulator sim(&driver);
  const Network net = tiny_net();
  const ServingPoint p{1, 512, 1u << 20, 1};
  const double opt = sim.evaluate(net, p, std::nullopt).cycles_per_image;
  for (Algo a : kAllAlgos) {
    EXPECT_LE(opt, sim.evaluate(net, p, a).cycles_per_image + 1e-9);
  }
}

TEST_F(SweepTest, ServingGridMatchesPerPointEvaluation) {
  const Network net = tiny_net();
  ResultsDb db(path_);
  SweepDriver driver(&db);
  ServingSimulator sim(&driver);
  const auto grid = sim.grid(net, Algo::kGemm3);
  ASSERT_FALSE(grid.empty());
  // The parallel grid must equal a serial re-evaluation of each point, in the
  // serial nested-loop order, bit for bit.
  ResultsDb db2((dir_ / "serial_grid.csv").string());
  SweepDriver driver2(&db2);
  ServingSimulator sim2(&driver2);
  std::size_t idx = 0;
  const int core_counts[] = {1, 4, 16, 64};
  const std::uint64_t l2_sizes[] = {1ull << 20, 4ull << 20, 16ull << 20,
                                    64ull << 20, 256ull << 20};
  for (int cores : core_counts) {
    for (std::uint32_t vlen : paper2_vlens()) {
      for (std::uint64_t l2 : l2_sizes) {
        for (int instances : core_counts) {
          ServingPoint p{cores, vlen, l2, instances};
          if (!p.feasible()) continue;
          ASSERT_LT(idx, grid.size());
          const ServingEval ref = sim2.evaluate(net, p, Algo::kGemm3);
          EXPECT_EQ(grid[idx].cycles_per_image, ref.cycles_per_image);
          EXPECT_EQ(grid[idx].images_per_cycle, ref.images_per_cycle);
          EXPECT_EQ(grid[idx].area_mm2, ref.area_mm2);
          EXPECT_EQ(grid[idx].point.instances, p.instances);
          ++idx;
        }
      }
    }
  }
  EXPECT_EQ(idx, grid.size());
}

TEST_F(SweepTest, ServingRejectsInfeasible) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  ServingSimulator sim(&driver);
  EXPECT_THROW(
      sim.evaluate(tiny_net(), ServingPoint{1, 512, 1u << 20, 2}, std::nullopt),
      std::invalid_argument);
}

// ----------------------------------------------- selectors / ConvEngine ----

TEST(HeuristicSelector, AlwaysApplicable) {
  HeuristicSelector sel;
  const ConvLayerDesc shapes[] = {
      {3, 608, 608, 32, 3, 3, 1, 1}, {512, 14, 14, 512, 3, 3, 1, 1},
      {64, 304, 304, 32, 1, 1, 1, 0}, {32, 608, 608, 64, 3, 3, 2, 1},
      {4, 16, 16, 4, 5, 5, 1, 2}};
  for (const auto& d : shapes) {
    for (std::uint32_t vlen : {512u, 4096u}) {
      EXPECT_TRUE(algo_applicable(sel.select(d, vlen, 1u << 20), d))
          << d.to_string();
    }
  }
}

TEST(HeuristicSelector, MatchesHeadlineRules) {
  HeuristicSelector sel;
  // Layer 1 of YOLOv3: high resolution, 3 input channels -> Direct.
  EXPECT_EQ(sel.select(ConvLayerDesc{3, 608, 608, 32, 3, 3, 1, 1}, 512,
                       1u << 20),
            Algo::kDirect);
  // Mid 3x3 stride-1 layer -> Winograd.
  EXPECT_EQ(sel.select(ConvLayerDesc{256, 28, 28, 512, 3, 3, 1, 1}, 512,
                       1u << 20),
            Algo::kWinograd);
  // Skinny 1x1 with many channels -> blocked GEMM.
  EXPECT_EQ(sel.select(ConvLayerDesc{512, 14, 14, 512, 1, 1, 1, 0}, 512,
                       1u << 20),
            Algo::kGemm6);
}

TEST_F(SweepTest, ForestSelectorLearnsTheSweep) {
  ResultsDb db(path_);
  SweepDriver driver(&db);
  const Network net = tiny_net();
  ForestParams p;
  p.n_trees = 30;
  ForestSelector sel = ForestSelector::train(driver, {&net}, {512, 1024},
                                             {1u << 20, 4u << 20}, p);
  // On its own training grid the selector must mostly agree with the argmin.
  const auto descs = net.conv_descs();
  int agree = 0, total = 0;
  for (std::uint32_t vlen : {512u, 1024u}) {
    for (std::uint64_t l2 : {1ull << 20, 4ull << 20}) {
      const auto opt = driver.network_optimal(net, vlen, l2);
      for (std::size_t i = 0; i < descs.size(); ++i) {
        agree += sel.select(descs[i], vlen, l2) == opt.plan[i];
        ++total;
      }
    }
  }
  EXPECT_GE(agree, total * 3 / 4);
}

TEST(ConvEngine, RunAndEstimate) {
  ConvEngine engine(VpuConfig{512, 8}, 1u << 20);
  const ConvLayerDesc d{3, 16, 16, 8, 3, 3, 1, 1};
  Rng rng(1);
  Tensor in(3, 16, 16);
  in.fill_random(rng);
  std::vector<float> w(d.weight_elems());
  fill_uniform(rng, w.data(), w.size(), -1, 1);
  const Tensor auto_out = engine.run(d, in, w);
  const Tensor explicit_out = engine.run(d, in, w, engine.choose(d));
  EXPECT_FLOAT_EQ(max_abs_diff(auto_out, explicit_out), 0.0f);
  const TimingStats t = engine.estimate(d, Algo::kGemm3);
  EXPECT_GT(t.cycles, 0.0);
}

TEST(ConvEngine, SelectorSwap) {
  ConvEngine engine(VpuConfig{512, 8}, 1u << 20);
  EXPECT_THROW(engine.set_selector(nullptr), std::invalid_argument);
  engine.set_selector(std::make_shared<HeuristicSelector>());
  const ConvLayerDesc d{3, 608, 608, 32, 3, 3, 1, 1};
  EXPECT_EQ(engine.choose(d), Algo::kDirect);
}

}  // namespace
}  // namespace vlacnn

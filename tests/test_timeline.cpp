// Time-resolved serving telemetry (obs/sketch.h + obs/timeline.h): the
// quantile sketch's bucket math against hand-computed boundaries, the
// timeline recorder against a fully hand-traced event sequence (every
// snapshot field), burn-rate/alert threshold crossings, JSONL parse-back
// through the product JSON parser, the sorted-label sink, the env-knob
// surface, and the pin that keeps obs/json_util.h and report/json.h emitting
// identical bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json_util.h"
#include "obs/sketch.h"
#include "obs/timeline.h"
#include "report/json.h"

namespace vlacnn {
namespace {

// -- quantile sketch ----------------------------------------------------------

TEST(QuantileSketch, CtorAndMergeValidate) {
  EXPECT_THROW(obs::QuantileSketch(0.0), std::invalid_argument);
  EXPECT_THROW(obs::QuantileSketch(1.0), std::invalid_argument);
  EXPECT_THROW(obs::QuantileSketch(-0.5), std::invalid_argument);
  obs::QuantileSketch a(0.01), b(0.02);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, BucketMathMatchesHandComputation) {
  const double e = 0.01;
  const double gamma = (1.0 + e) / (1.0 - e);
  obs::QuantileSketch s(e);
  for (double v : {0.5, 1.0, 100.0, 12345.6}) {
    const int idx = s.bucket_index(v);
    EXPECT_EQ(idx, static_cast<int>(std::ceil(std::log(v) / std::log(gamma))))
        << v;
    EXPECT_DOUBLE_EQ(s.bucket_upper(idx), std::pow(gamma, idx)) << v;
    // The bucket's closing boundary covers v within the relative error.
    EXPECT_GE(s.bucket_upper(idx), v * (1.0 - 1e-12));
    EXPECT_LE(s.bucket_upper(idx) / gamma, v * (1.0 + 1e-12));
  }
}

TEST(QuantileSketch, QuantileIsNearestRankUpperBound) {
  obs::QuantileSketch s(0.01);
  for (int v = 1; v <= 100; ++v) s.observe(v);
  EXPECT_EQ(s.count(), 100u);
  // Nearest rank: q=0.5 selects the 50th smallest (= 50); the sketch answers
  // with that value's bucket boundary, within 2*rel_err above it.
  EXPECT_GE(s.quantile(0.5), 50.0);
  EXPECT_LE(s.quantile(0.5), 50.0 * 1.03);
  EXPECT_GE(s.quantile(1.0), 100.0);
  EXPECT_LE(s.quantile(1.0), 100.0 * 1.03);
  EXPECT_LE(s.quantile(0.01), 1.0 * 1.03);
  // Monotone in q.
  EXPECT_LE(s.quantile(0.25), s.quantile(0.75));
}

TEST(QuantileSketch, ZeroAndNegativeLandInExactZeroBucket) {
  obs::QuantileSketch s(0.01);
  s.observe(0.0);
  s.observe(-42.0);  // clamped
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.quantile(1.0), 0.0);
  s.observe(8.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);     // 2nd of 3 is still a zero
  EXPECT_GE(s.quantile(1.0), 8.0);     // the max escapes the zero bucket
}

TEST(QuantileSketch, MergeIsOrderIndependent) {
  obs::QuantileSketch all(0.01), left(0.01), right(0.01);
  for (int v = 1; v <= 200; ++v) {
    all.observe(v);
    (v % 2 == 0 ? left : right).observe(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), all.quantile(q)) << q;
  }
}

TEST(SlidingQuantile, WindowEvictsOldIntervals) {
  EXPECT_THROW(obs::SlidingQuantile(0), std::invalid_argument);
  obs::SlidingQuantile s(2, 0.01);
  s.observe(100.0);
  s.roll();
  s.observe(200.0);
  s.roll();
  s.observe(300.0);
  // Open interval + 2 closed: all three samples still visible.
  EXPECT_EQ(s.count(), 3u);
  EXPECT_LE(s.quantile(0.01), 100.0 * 1.03);
  s.roll();
  // The 100-cycle interval fell out of the window.
  EXPECT_EQ(s.count(), 2u);
  EXPECT_GE(s.quantile(0.01), 200.0 * 0.97);
}

// -- recorder: hand-computed snapshots ---------------------------------------

TEST(TimelineRecorder, CtorValidates) {
  obs::TimelineConfig c;
  c.interval_cycles = 0;
  EXPECT_THROW(obs::TimelineRecorder{c}, std::invalid_argument);
  c.interval_cycles = 100;
  c.rolling_window = 0;
  EXPECT_THROW(obs::TimelineRecorder{c}, std::invalid_argument);
  c.rolling_window = 8;
  c.instances = 0;
  EXPECT_THROW(obs::TimelineRecorder{c}, std::invalid_argument);
}

obs::TimelineConfig tiny_config() {
  obs::TimelineConfig c;
  c.interval_cycles = 100;
  c.rolling_window = 2;
  c.instances = 1;
  return c;
}

TEST(TimelineRecorder, HandComputedClosedLoopRun) {
  // One instance, interval 100. Two requests arrive at 0 and 10, dispatch as
  // a batch of 2 at t=10, finish at t=60 (latencies 60 and 50). A third
  // arrives at 220, runs [220, 260) with latency 40. Every snapshot field
  // below is computed by hand from those events.
  obs::TimelineRecorder rec(tiny_config());
  rec.on_arrival(0);
  rec.on_arrival(10);
  rec.on_dispatch(10, 2);
  rec.on_completion(60, 60.0, true);
  rec.on_completion(60, 50.0, true);
  rec.on_batch_done(60);
  rec.on_arrival(220);
  rec.on_dispatch(220, 1);
  rec.on_completion(260, 40.0, true);
  rec.on_batch_done(260);
  rec.finish(260);

  const auto& snaps = rec.snapshots();
  ASSERT_EQ(snaps.size(), 3u);

  // [0, 100): queue depth 1 over [0,10) -> area 10; instance busy [10,60).
  const obs::TimelineSnapshot& s0 = snaps[0];
  EXPECT_EQ(s0.t_start, 0.0);
  EXPECT_EQ(s0.t_end, 100.0);
  EXPECT_EQ(s0.arrivals, 2u);
  EXPECT_EQ(s0.drops, 0u);
  EXPECT_EQ(s0.dispatches, 1u);
  EXPECT_EQ(s0.completions, 2u);
  EXPECT_EQ(s0.queue_depth, 0u);
  EXPECT_EQ(s0.in_flight, 0);
  EXPECT_DOUBLE_EQ(s0.mean_queue, 10.0 / 100.0);
  EXPECT_DOUBLE_EQ(s0.utilization, 50.0 / 100.0);
  EXPECT_DOUBLE_EQ(s0.arrival_rate, 0.02);
  EXPECT_DOUBLE_EQ(s0.completion_rate, 0.02);
  EXPECT_EQ(s0.rolling_count, 2u);
  // Sketch upper bound on max(60, 50) at 1% relative error.
  EXPECT_GE(s0.rolling_p99, 60.0);
  EXPECT_LE(s0.rolling_p99, 60.0 * 1.03);
  EXPECT_EQ(s0.burn_short, 0.0);  // no SLO configured
  EXPECT_EQ(s0.burn_long, 0.0);
  EXPECT_FALSE(s0.alert);
  EXPECT_EQ(s0.cum_offered, 2u);
  EXPECT_EQ(s0.cum_completed, 2u);
  EXPECT_EQ(s0.cum_dropped, 0u);

  // [100, 200): idle.
  const obs::TimelineSnapshot& s1 = snaps[1];
  EXPECT_EQ(s1.t_start, 100.0);
  EXPECT_EQ(s1.t_end, 200.0);
  EXPECT_EQ(s1.arrivals, 0u);
  EXPECT_EQ(s1.completions, 0u);
  EXPECT_DOUBLE_EQ(s1.mean_queue, 0.0);
  EXPECT_DOUBLE_EQ(s1.utilization, 0.0);
  EXPECT_EQ(s1.rolling_count, 2u);  // window 2 still holds the first interval

  // [200, 260): trailing partial interval from finish().
  const obs::TimelineSnapshot& s2 = snaps[2];
  EXPECT_EQ(s2.t_start, 200.0);
  EXPECT_EQ(s2.t_end, 260.0);
  EXPECT_EQ(s2.arrivals, 1u);
  EXPECT_EQ(s2.dispatches, 1u);
  EXPECT_EQ(s2.completions, 1u);
  EXPECT_DOUBLE_EQ(s2.mean_queue, 0.0);  // dispatch at the arrival instant
  EXPECT_DOUBLE_EQ(s2.utilization, 40.0 / 60.0);
  EXPECT_DOUBLE_EQ(s2.arrival_rate, 1.0 / 60.0);
  EXPECT_EQ(s2.rolling_count, 3u);
  EXPECT_EQ(s2.cum_offered, 3u);
  EXPECT_EQ(s2.cum_completed, 3u);

  EXPECT_TRUE(rec.alerts().empty());
  // finish() is idempotent: calling it again adds nothing.
  rec.finish(260);
  EXPECT_EQ(rec.snapshots().size(), 3u);
}

TEST(TimelineRecorder, EventExactlyOnBoundaryLandsInNextInterval) {
  obs::TimelineRecorder rec(tiny_config());
  rec.on_arrival(100);  // closes [0, 100) first, then counts the arrival
  rec.finish(150);
  const auto& snaps = rec.snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].arrivals, 0u);
  EXPECT_EQ(snaps[1].t_start, 100.0);
  EXPECT_EQ(snaps[1].t_end, 150.0);
  EXPECT_EQ(snaps[1].arrivals, 1u);
}

TEST(TimelineRecorder, FinishOnExactBoundarySkipsZeroWidthInterval) {
  obs::TimelineRecorder rec(tiny_config());
  rec.on_completion(40, 10.0, true);
  rec.finish(200);  // boundaries at 100 and 200; no trailing sliver
  ASSERT_EQ(rec.snapshots().size(), 2u);
  EXPECT_EQ(rec.snapshots()[1].t_end, 200.0);
}

TEST(TimelineRecorder, BurnRateAndAlertCrossings) {
  // SLO on, 90% target -> 10% error budget, rolling window 2 intervals,
  // alert threshold 1.0. Interval 2 misses 2 of 10 -> short burn 2.0, long
  // burn over intervals {1,2} = (2/20)/0.1 = 1.0 -> alert raised at t=200.
  // Interval 3 is clean but the window {2,3} still carries the misses ->
  // stays in alert. Interval 4's window {3,4} is clean -> clear at t=400.
  obs::TimelineConfig c = tiny_config();
  c.slo_cycles = 100;
  c.attainment_target = 0.9;
  c.alert_threshold = 1.0;
  obs::TimelineRecorder rec(c);
  for (int iv = 0; iv < 4; ++iv) {
    const double t = iv * 100.0 + 50.0;
    const int misses = iv == 1 ? 2 : 0;
    for (int i = 0; i < 10; ++i) {
      const bool miss = i < misses;
      rec.on_completion(t, miss ? 150.0 : 10.0, !miss);
    }
  }
  rec.finish(400);

  const auto& snaps = rec.snapshots();
  ASSERT_EQ(snaps.size(), 4u);
  EXPECT_DOUBLE_EQ(snaps[0].burn_short, 0.0);
  EXPECT_FALSE(snaps[0].alert);
  EXPECT_DOUBLE_EQ(snaps[1].burn_short, 2.0);
  EXPECT_DOUBLE_EQ(snaps[1].burn_long, 1.0);
  EXPECT_TRUE(snaps[1].alert);
  EXPECT_DOUBLE_EQ(snaps[2].burn_short, 0.0);
  EXPECT_DOUBLE_EQ(snaps[2].burn_long, 1.0);  // window {2,3}
  EXPECT_TRUE(snaps[2].alert);
  EXPECT_DOUBLE_EQ(snaps[3].burn_long, 0.0);
  EXPECT_FALSE(snaps[3].alert);

  const auto& alerts = rec.alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_TRUE(alerts[0].raised);
  EXPECT_EQ(alerts[0].t, 200.0);
  EXPECT_DOUBLE_EQ(alerts[0].burn_rate, 1.0);
  EXPECT_FALSE(alerts[1].raised);
  EXPECT_EQ(alerts[1].t, 400.0);

  const obs::TimelineAnalysis a =
      obs::analyze_timeline(rec.snapshots(), rec.alerts());
  EXPECT_EQ(a.alert_count, 1u);
  EXPECT_DOUBLE_EQ(a.time_in_alert_cycles, 200.0);
  EXPECT_DOUBLE_EQ(a.max_burn_rate, 2.0);
}

TEST(TimelineRecorder, DropsCountAsMissedAndResolve) {
  obs::TimelineConfig c = tiny_config();
  c.slo_cycles = 100;
  c.attainment_target = 0.9;
  obs::TimelineRecorder rec(c);
  for (int i = 0; i < 9; ++i) rec.on_arrival(0);
  rec.on_dispatch(5, 9);
  for (int i = 0; i < 9; ++i) rec.on_completion(10, 10.0, true);
  rec.on_batch_done(10);
  rec.on_drop(20);
  rec.finish(100);
  const auto& snaps = rec.snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].drops, 1u);
  EXPECT_EQ(snaps[0].cum_dropped, 1u);
  EXPECT_EQ(snaps[0].cum_offered, 10u);
  // 1 miss of 10 resolved / 0.1 budget = burn 1.0.
  EXPECT_DOUBLE_EQ(snaps[0].burn_short, (1.0 / 10.0) / (1.0 - 0.9));
}

// -- JSONL round trip ---------------------------------------------------------

TEST(TimelineJsonl, BlockParsesBackThroughProductParser) {
  obs::TimelineConfig c = tiny_config();
  c.slo_cycles = 100;
  c.attainment_target = 0.9;
  obs::TimelineRecorder rec(c);
  for (int i = 0; i < 10; ++i) rec.on_completion(50, 150.0, false);
  rec.finish(100);  // burn 10.0 -> alert line in the block
  ASSERT_EQ(rec.alerts().size(), 1u);

  std::istringstream in(rec.to_jsonl());
  std::string line;
  std::vector<std::string> types;
  while (std::getline(in, line)) {
    const report::Json j = report::parse_json(line);
    types.push_back(j.at("type").string);
    if (types.back() == "header") {
      EXPECT_EQ(j.at("interval_cycles").number, 100.0);
      EXPECT_EQ(j.at("rolling_window").number, 2.0);
      EXPECT_EQ(j.at("slo_cycles").number, 100.0);
      EXPECT_EQ(j.at("attainment_target").number, 0.9);
      EXPECT_EQ(j.at("instances").number, 1.0);
    } else if (types.back() == "snapshot") {
      EXPECT_EQ(j.at("completions").number, 10.0);
      // (10 misses / 10 resolved) / (1 - 0.9): %.17g round-trips it exactly.
      EXPECT_EQ(j.at("burn_short").number, 1.0 / (1.0 - 0.9));
      EXPECT_TRUE(j.at("alert").boolean);
    } else if (types.back() == "alert") {
      EXPECT_EQ(j.at("t").number, 100.0);
      EXPECT_EQ(j.at("burn_rate").number, 1.0 / (1.0 - 0.9));
    }
  }
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], "header");
  EXPECT_EQ(types[1], "snapshot");
  EXPECT_EQ(types[2], "alert");  // directly after the snapshot that tripped it
}

// -- analysis -----------------------------------------------------------------

TEST(TimelineAnalysis, WarmupDetectionAndSteadyStateMeans) {
  // Rolling p99 ramps 10 -> 80 -> 100 -> 100: the first two snapshots are
  // warm-up at the default 10% tolerance.
  std::vector<obs::TimelineSnapshot> snaps(4);
  const double p99[] = {10, 80, 100, 100};
  const double util[] = {0.2, 0.5, 0.8, 0.6};
  for (int i = 0; i < 4; ++i) {
    snaps[i].t_start = i * 100.0;
    snaps[i].t_end = i * 100.0 + 100.0;
    snaps[i].rolling_p99 = p99[i];
    snaps[i].utilization = util[i];
    snaps[i].arrival_rate = 0.01;
  }
  const obs::TimelineAnalysis a = obs::analyze_timeline(snaps, {});
  EXPECT_EQ(a.warmup_snapshots, 2u);
  EXPECT_DOUBLE_EQ(a.warmup_end_cycles, 200.0);
  EXPECT_DOUBLE_EQ(a.final_rolling_p99, 100.0);
  EXPECT_DOUBLE_EQ(a.steady_utilization, 0.7);  // mean of the last two
  EXPECT_DOUBLE_EQ(a.steady_arrival_rate, 0.01);
  EXPECT_EQ(obs::analyze_timeline({}, {}).warmup_snapshots, 0u);
}

TEST(TimelineAnalysis, UnclosedAlertRunsToLastSnapshot) {
  std::vector<obs::TimelineSnapshot> snaps(2);
  snaps[0].t_end = 100;
  snaps[1].t_start = 100;
  snaps[1].t_end = 200;
  std::vector<obs::TimelineAlert> alerts(1);
  alerts[0].t = 100;
  alerts[0].raised = true;
  const obs::TimelineAnalysis a = obs::analyze_timeline(snaps, alerts);
  EXPECT_EQ(a.alert_count, 1u);
  EXPECT_DOUBLE_EQ(a.time_in_alert_cycles, 100.0);
}

// -- sink + knobs -------------------------------------------------------------

TEST(TimelineSink, WritesBlocksInSortedLabelOrder) {
  obs::TimelineSink& sink = obs::TimelineSink::global();
  sink.reset();
  const std::string before_path = obs::timeline_path();
  const auto dir =
      std::filesystem::temp_directory_path() / "vlacnn_test_timeline";
  std::filesystem::remove_all(dir);
  const auto file = dir / "nested" / "tl.jsonl";
  obs::set_timeline_path(file.string());
  EXPECT_TRUE(obs::timeline_enabled());
  EXPECT_EQ(obs::timeline_path(), file.string());

  sink.record("zeta", "{\"type\":\"header\"}\n");
  sink.record("alpha", "{\"type\":\"header\"}\n");
  sink.record("zeta", "{\"type\":\"header\",\"v\":2}\n");  // last write wins
  EXPECT_EQ(sink.block_count(), 2u);
  EXPECT_EQ(sink.write_file(), file.string());

  std::ifstream in(file);
  ASSERT_TRUE(in.good());
  std::string l1, l2, l3, l4;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  std::getline(in, l4);
  EXPECT_EQ(report::parse_json(l1).at("label").string, "alpha");
  EXPECT_EQ(l2, "{\"type\":\"header\"}");
  EXPECT_EQ(report::parse_json(l3).at("label").string, "zeta");
  EXPECT_EQ(l4, "{\"type\":\"header\",\"v\":2}");

  sink.reset();
  EXPECT_EQ(sink.block_count(), 0u);
  // Auto labels restart after reset and are zero-padded sequence numbers.
  EXPECT_EQ(sink.next_auto_label(), "run000001");
  EXPECT_EQ(sink.next_auto_label(), "run000002");
  sink.reset();
  obs::set_timeline_path(before_path);
  std::filesystem::remove_all(dir);
}

TEST(TimelineKnobs, ProgrammaticSettersGateAndValidate) {
  const std::string before_path = obs::timeline_path();
  obs::set_timeline_path("");
  EXPECT_FALSE(obs::timeline_enabled());
  obs::TimelineSink& sink = obs::TimelineSink::global();
  sink.reset();
  sink.record("x", "{}\n");
  EXPECT_THROW(sink.write_file(), std::runtime_error);  // no path
  sink.reset();

  EXPECT_THROW(obs::set_timeline_interval_cycles(0), std::invalid_argument);
  EXPECT_THROW(obs::set_timeline_interval_cycles(-5), std::invalid_argument);
  EXPECT_THROW(obs::set_timeline_interval_cycles(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  const double before = obs::timeline_interval_cycles();
  obs::set_timeline_interval_cycles(5e5);
  obs::TimelineConfig c = obs::default_timeline_config(3, 1234.0);
  EXPECT_EQ(c.interval_cycles, 5e5);
  EXPECT_EQ(c.instances, 3);
  EXPECT_EQ(c.slo_cycles, 1234.0);
  EXPECT_EQ(obs::default_timeline_config(0, 0).instances, 1);  // clamped
  obs::set_timeline_interval_cycles(before);
  obs::set_timeline_path(before_path);
}

// -- obs/json_util <-> report/json contract ----------------------------------

TEST(ObsJsonUtil, MatchesReportJsonByteForByte) {
  // The obs layer cannot link against report/json.h (layering), so it carries
  // its own escaper/number formatter with the same contract. This test is the
  // pin: if either side changes, the two layers' files drift apart.
  const std::vector<std::string> strings = {
      "",
      "plain",
      "quote\" backslash\\ tab\t newline\n return\r",
      std::string("ctrl\x01\x1f mix\x7f high\xc3\xa9"),
      "run000001/cores4/vlen1024",
  };
  for (const std::string& s : strings) {
    EXPECT_EQ(obs::json_escaped(s), report::json_quote(s)) << s;
  }
  const std::vector<double> numbers = {
      0.0, -0.0, 1.0, 0.1, 1e-300, 1.7976931348623157e308,
      123456789.123456789, -2.5,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  for (double v : numbers) {
    std::string obs_out;
    obs::json_append_number(obs_out, v);
    EXPECT_EQ(obs_out, report::json_number(v)) << v;
  }
  // Escaped output always parses back to the original bytes.
  for (const std::string& s : strings) {
    EXPECT_EQ(report::parse_json(obs::json_escaped(s)).string, s) << s;
  }
}

}  // namespace
}  // namespace vlacnn

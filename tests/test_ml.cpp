// Tests for the decision tree, random forest, and cross-validation machinery.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "ml/crossval.h"
#include "ml/random_forest.h"

namespace vlacnn {
namespace {

/// Synthetic, perfectly separable dataset: label = (x0 > 0.5) + 2*(x1 > 0.5).
Dataset separable(std::size_t n, std::uint64_t seed) {
  Dataset ds;
  ds.feature_names = {"x0", "x1", "noise"};
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = rng.next_float();
    const float x1 = rng.next_float();
    ds.x.push_back({x0, x1, rng.next_float()});
    ds.y.push_back((x0 > 0.5f ? 1 : 0) + (x1 > 0.5f ? 2 : 0));
  }
  return ds;
}

/// The same with `flip` fraction of labels corrupted.
Dataset noisy(std::size_t n, double flip, std::uint64_t seed) {
  Dataset ds = separable(n, seed);
  Rng rng(seed ^ 0xf00d);
  for (auto& y : ds.y) {
    if (rng.next_float() < flip) y = static_cast<int>(rng.next_below(4));
  }
  return ds;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

// ------------------------------------------------------ DecisionTree -------

TEST(DecisionTree, FitsSeparableDataPerfectly) {
  const Dataset ds = separable(300, 1);
  DecisionTree tree;
  Rng rng(2);
  tree.fit(ds, all_indices(ds.size()), TreeParams{}, rng);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(tree.predict(ds.x[i]), ds.y[i]) << i;
  }
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Dataset ds = noisy(400, 0.3, 3);
  DecisionTree tree;
  Rng rng(4);
  TreeParams p;
  p.max_depth = 3;
  tree.fit(ds, all_indices(ds.size()), p, rng);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTree, SingleClassGivesLeafOnly) {
  Dataset ds;
  ds.feature_names = {"x"};
  for (int i = 0; i < 10; ++i) {
    ds.x.push_back({static_cast<float>(i)});
    ds.y.push_back(2);
  }
  DecisionTree tree;
  Rng rng(5);
  tree.fit(ds, all_indices(10), TreeParams{}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({123.0f}), 2);
}

TEST(DecisionTree, MinSamplesLeafLimitsSplits) {
  const Dataset ds = separable(50, 6);
  DecisionTree loose, strict;
  Rng r1(7), r2(7);
  TreeParams p;
  loose.fit(ds, all_indices(ds.size()), p, r1);
  p.min_samples_leaf = 20;
  strict.fit(ds, all_indices(ds.size()), p, r2);
  EXPECT_LT(strict.node_count(), loose.node_count());
}

TEST(DecisionTree, ImpurityDecreaseConcentratesOnInformativeFeatures) {
  const Dataset ds = separable(500, 8);
  DecisionTree tree;
  Rng rng(9);
  tree.fit(ds, all_indices(ds.size()), TreeParams{}, rng);
  const auto& dec = tree.impurity_decrease();
  ASSERT_EQ(dec.size(), 3u);
  EXPECT_GT(dec[0], dec[2]);  // noise feature gets least credit
  EXPECT_GT(dec[1], dec[2]);
}

// ------------------------------------------------------ RandomForest -------

TEST(RandomForest, PerfectOnSeparableData) {
  const Dataset ds = separable(400, 10);
  RandomForest forest;
  ForestParams p;
  p.n_trees = 25;
  forest.fit(ds, all_indices(ds.size()), p);
  EXPECT_GE(forest.accuracy(ds, all_indices(ds.size())), 0.99);
}

TEST(RandomForest, GeneralisesOnNoisyData) {
  const Dataset train = noisy(600, 0.15, 11);
  RandomForest forest;
  ForestParams p;
  p.n_trees = 40;
  forest.fit(train, all_indices(train.size()), p);
  // Evaluate against *clean* labels drawn from the same distribution: the
  // forest must have learned the underlying rule despite 15% label noise.
  const Dataset clean = separable(400, 999);
  EXPECT_GE(forest.accuracy(clean, all_indices(clean.size())), 0.9);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const Dataset ds = noisy(200, 0.2, 12);
  ForestParams p;
  p.n_trees = 10;
  p.seed = 777;
  RandomForest a, b;
  a.fit(ds, all_indices(ds.size()), p);
  b.fit(ds, all_indices(ds.size()), p);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(a.predict(ds.x[i]), b.predict(ds.x[i]));
  }
}

TEST(RandomForest, FeatureImportancesNormalised) {
  const Dataset ds = separable(300, 13);
  RandomForest forest;
  forest.fit(ds, all_indices(ds.size()), ForestParams{});
  const auto imp = forest.feature_importances();
  double sum = 0;
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], imp[2]);
}

TEST(RandomForest, ThrowsOnEmptyTrainingOrUnfitted) {
  RandomForest forest;
  Dataset ds = separable(10, 14);
  EXPECT_THROW(forest.fit(ds, {}, ForestParams{}), std::invalid_argument);
  EXPECT_THROW(forest.predict({0.0f, 0.0f, 0.0f}), std::logic_error);
}

TEST(DecisionTree, RejectsOutOfRangeLabels) {
  // build_selection_dataset labels a layer -1 when no algorithm applies; fed
  // to fit() unfiltered, that index used to be an out-of-bounds class-count
  // write. Both ends of the range must fail loudly instead.
  Dataset ds = separable(50, 18);
  ds.y[7] = -1;
  DecisionTree tree;
  Rng rng(19);
  EXPECT_THROW(tree.fit(ds, all_indices(ds.size()), TreeParams{}, rng),
               std::invalid_argument);
  ds.y[7] = ds.num_classes();  // one past the last valid class
  Rng rng2(19);
  EXPECT_THROW(tree.fit(ds, all_indices(ds.size()), TreeParams{}, rng2),
               std::invalid_argument);
  // Out-of-range labels outside the training subset are harmless.
  ds.y[7] = -1;
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (i != 7) rest.push_back(i);
  }
  Rng rng3(19);
  DecisionTree ok;
  ok.fit(ds, rest, TreeParams{}, rng3);
  EXPECT_GT(ok.node_count(), 0u);
}

TEST(RandomForest, RejectsOutOfRangeLabels) {
  Dataset ds = separable(60, 20);
  ds.y[3] = -1;
  RandomForest forest;
  EXPECT_THROW(forest.fit(ds, all_indices(ds.size()), ForestParams{}),
               std::invalid_argument);
}

TEST(RandomForest, VoteTieResolvesToLowestLabel) {
  // A tiny forest on half-random labels disagrees with itself often; whenever
  // the tally has multiple maxima, predict() must return the lowest one —
  // deterministically, across seeds.
  Dataset ds = noisy(150, 0.5, 21);
  int ties_seen = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ForestParams p;
    p.n_trees = 4;  // even vote count invites ties
    p.seed = seed;
    RandomForest forest;
    forest.fit(ds, all_indices(ds.size()), p);
    Rng rng(seed ^ 0xabc);
    for (int i = 0; i < 300; ++i) {
      const std::vector<float> x{rng.next_float(), rng.next_float(),
                                 rng.next_float()};
      const std::vector<int> tally = forest.votes(x);
      int expected = 0, maxima = 0;
      for (std::size_t l = 0; l < tally.size(); ++l) {
        if (tally[l] > tally[expected]) expected = static_cast<int>(l);
      }
      for (int v : tally) maxima += v == tally[expected] ? 1 : 0;
      if (maxima > 1) ++ties_seen;
      EXPECT_EQ(forest.predict(x), expected);
    }
  }
  EXPECT_GT(ties_seen, 0);  // the tie path was actually exercised
}

// -------------------------------------------------------- crossval ---------

TEST(CrossVal, SplitIsDisjointAndComplete) {
  const SplitIndices s = train_test_split(100, 0.2, 42);
  EXPECT_EQ(s.test.size(), 20u);
  EXPECT_EQ(s.train.size(), 80u);
  std::set<std::size_t> all(s.train.begin(), s.train.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(CrossVal, SplitValidation) {
  EXPECT_THROW(train_test_split(10, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(train_test_split(10, 1.0, 1), std::invalid_argument);
}

TEST(CrossVal, FiveFoldOnSeparableIsNearPerfect) {
  const Dataset ds = separable(400, 15);
  ForestParams p;
  p.n_trees = 20;
  const CrossValResult r = cross_validate(ds, p, 5, 21);
  ASSERT_EQ(r.fold_accuracy.size(), 5u);
  EXPECT_GE(r.mean_accuracy, 0.95);
  EXPECT_LE(r.min_accuracy, r.mean_accuracy);
  EXPECT_GE(r.max_accuracy, r.mean_accuracy);
}

TEST(CrossVal, RejectsSingleFold) {
  const Dataset ds = separable(50, 16);
  EXPECT_THROW(cross_validate(ds, ForestParams{}, 1, 1),
               std::invalid_argument);
}

TEST(CrossVal, NoisyDataAccuracyBetweenChanceAndPerfect) {
  const Dataset ds = noisy(500, 0.25, 17);
  ForestParams p;
  p.n_trees = 30;
  const CrossValResult r = cross_validate(ds, p, 5, 22);
  EXPECT_GT(r.mean_accuracy, 0.5);
  EXPECT_LT(r.mean_accuracy, 0.95);  // label noise caps achievable accuracy
}

}  // namespace
}  // namespace vlacnn

// Tests for the dispatch layer: FlatForest lowering fidelity and validation,
// the LearnedDispatcher bandit's accounting/convergence/determinism, the
// VLACNN_DISPATCH_CYCLES knob, and the learned-dispatch capacity-planner path
// (byte-identical across pool sizes, near-oracle once converged).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "dispatch/learned_dispatcher.h"
#include "ml/dataset.h"
#include "serving/request_sim.h"

namespace vlacnn::dispatch {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Synthetic, perfectly separable dataset: label = (x0 > 0.5) + 2*(x1 > 0.5),
/// same shape as the selector's problem (labels index kAllAlgos).
Dataset separable(std::size_t n, std::uint64_t seed) {
  Dataset ds;
  ds.feature_names = {"x0", "x1", "noise"};
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = rng.next_float();
    const float x1 = rng.next_float();
    ds.x.push_back({x0, x1, rng.next_float()});
    ds.y.push_back((x0 > 0.5f ? 1 : 0) + (x1 > 0.5f ? 2 : 0));
  }
  return ds;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

RandomForest fitted(const Dataset& ds, int n_trees, std::uint64_t seed) {
  ForestParams p;
  p.n_trees = n_trees;
  p.seed = seed;
  RandomForest forest;
  forest.fit(ds, all_indices(ds.size()), p);
  return forest;
}

// -------------------------------------------------------- FlatForest -------

TEST(FlatForest, AgreesWithRandomForestEverywhere) {
  const Dataset ds = separable(300, 1);
  const RandomForest forest = fitted(ds, 25, 7);
  const FlatForest flat(forest, ds.num_classes());
  EXPECT_EQ(flat.tree_count(), forest.tree_count());
  EXPECT_EQ(flat.num_features(), forest.num_features());
  std::size_t total = 0;
  for (const auto& t : forest.trees()) total += t.node_count();
  EXPECT_EQ(flat.node_count(), total);

  // Training samples and off-distribution random points alike.
  for (const auto& x : ds.x) EXPECT_EQ(flat.predict(x), forest.predict(x));
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::vector<float> x{rng.uniform(-1.0f, 2.0f),
                               rng.uniform(-1.0f, 2.0f),
                               rng.uniform(-1.0f, 2.0f)};
    EXPECT_EQ(flat.predict(x), forest.predict(x));
  }
}

TEST(FlatForest, PredictIsLowestLabelArgmaxOfVotes) {
  // A tiny forest on half-flipped labels disagrees with itself often, which
  // exercises the tie path: predict must equal the lowest label among the
  // maxima of the raw vote tally, in both evaluators.
  Dataset ds = separable(120, 2);
  Rng flip(0xf11b);
  for (auto& y : ds.y) {
    if (flip.next_float() < 0.5f) y = static_cast<int>(flip.next_below(4));
  }
  const RandomForest forest = fitted(ds, 4, 5);  // even count invites ties
  const FlatForest flat(forest, ds.num_classes());

  Rng rng(3);
  int ties_seen = 0;
  for (int i = 0; i < 400; ++i) {
    const std::vector<float> x{rng.next_float(), rng.next_float(),
                               rng.next_float()};
    const std::vector<int> tally = forest.votes(x);
    int expected = 0, maxima = 0;
    for (std::size_t l = 0; l < tally.size(); ++l) {
      if (tally[l] > tally[expected]) expected = static_cast<int>(l);
    }
    for (int v : tally) maxima += v == tally[expected] ? 1 : 0;
    if (maxima > 1) ++ties_seen;
    EXPECT_EQ(forest.predict(x), expected);
    EXPECT_EQ(flat.predict(x), expected);
  }
  EXPECT_GT(ties_seen, 0);  // the rule was actually exercised, not vacuous
}

TEST(FlatForest, RejectsBadArguments) {
  const Dataset ds = separable(100, 4);
  const RandomForest forest = fitted(ds, 5, 9);
  EXPECT_THROW(FlatForest(RandomForest{}, 4), std::invalid_argument);
  EXPECT_THROW(FlatForest(forest, 0), std::invalid_argument);
  EXPECT_THROW(FlatForest(forest, FlatForest::kMaxLabels + 1),
               std::invalid_argument);
  // Labels 2/3 exist in the training data, so a 2-label space must fail
  // loudly at lowering time (this is the OOB-vote class of bug, caught early).
  EXPECT_THROW(FlatForest(forest, 2), std::invalid_argument);

  const FlatForest flat(forest, 4);
  EXPECT_THROW(flat.predict({1.0f, 2.0f}), std::invalid_argument);
}

// -------------------------------------------------- LearnedDispatcher ------

/// Forest that predicts label plan[l] for feature vector {l}: one feature,
/// perfectly separable, so the dispatcher's *initial* plan is exactly `plan`.
FlatForest plan_forest(const std::vector<int>& plan) {
  Dataset ds;
  ds.feature_names = {"layer"};
  for (std::size_t l = 0; l < plan.size(); ++l) {
    for (int copy = 0; copy < 40; ++copy) {
      ds.x.push_back({static_cast<float>(l)});
      ds.y.push_back(plan[l]);
    }
  }
  return FlatForest(fitted(ds, 15, 11), 4);
}

std::vector<std::vector<float>> layer_features(std::size_t layers) {
  std::vector<std::vector<float>> f;
  for (std::size_t l = 0; l < layers; ++l) {
    f.push_back({static_cast<float>(l)});
  }
  return f;
}

/// Three layers, kAllAlgos-shaped rows (NaN = inapplicable):
///   layer 0: oracle algo 0 (100), forest predicts 0 -> correct
///   layer 1: oracle algo 3 (150), forest predicts 1 (250) -> mispredicted
///   layer 2: oracle algo 2 (450), forest predicts 0 (500) -> mispredicted
LayerCycleTable mixed_table() {
  return {{{100, 200, 300, 400}},
          {{kNaN, 250, 200, 150}},
          {{500, kNaN, 450, 600}}};
}

DispatchConfig test_config(double epsilon) {
  DispatchConfig cfg;
  cfg.dispatch_cycles_per_layer = 10;
  cfg.epsilon = epsilon;
  cfg.mem_bytes_per_cycle = 1.0;  // weight_bytes are then cycles directly
  return cfg;
}

TEST(LearnedDispatcher, InitialPlanAndBatchAccounting) {
  const FlatForest forest = plan_forest({0, 1, 0});
  ASSERT_EQ(forest.predict({0.0f}), 0);
  ASSERT_EQ(forest.predict({1.0f}), 1);
  ASSERT_EQ(forest.predict({2.0f}), 0);

  // epsilon = 0: the bandit never explores, so every batch prices the forest's
  // plan {0, 1, 0} = 100 + 250 + 500 = 850 cycles/image against the oracle's
  // 100 + 150 + 450 = 700.
  LearnedDispatcher d(&forest, mixed_table(), layer_features(3), 40.0,
                      test_config(0.0));
  EXPECT_EQ(d.plan(), (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(d.stats().layers, 3);
  EXPECT_EQ(d.stats().mispredicted_layers, 2);
  EXPECT_FALSE(d.converged());

  // Batch of 1: per-image plus 3 layers x 10 selector cycles.
  EXPECT_DOUBLE_EQ(d.service_cycles(1), 850.0 + 30.0);
  // Batch of 4: weight traffic (40 cycles at 1 B/cycle) amortizes off the
  // three marginal images; selector still charges every image.
  EXPECT_DOUBLE_EQ(d.service_cycles(4),
                   850.0 + 3.0 * (850.0 - 40.0) + 4.0 * 30.0);

  const DispatchStats& s = d.stats();
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.images, 5u);
  EXPECT_EQ(s.explorations, 0u);
  EXPECT_DOUBLE_EQ(s.learned_conv_cycles, 5.0 * 850.0);
  EXPECT_DOUBLE_EQ(s.oracle_conv_cycles, 5.0 * 700.0);
  EXPECT_DOUBLE_EQ(s.selector_cycles, 5.0 * 30.0);
  EXPECT_DOUBLE_EQ(s.oracle_gap(),
                   (5.0 * 850.0 + 5.0 * 30.0) / (5.0 * 700.0) - 1.0);
}

TEST(LearnedDispatcher, EpsilonOneConvergesToOraclePlan) {
  const FlatForest forest = plan_forest({0, 1, 0});
  LearnedDispatcher d(&forest, mixed_table(), layer_features(3), 40.0,
                      test_config(1.0));
  // Each mispredicted layer has two applicable-but-untried algorithms; at
  // epsilon = 1 every batch burns one per unconverged layer, so two batches
  // exhaust them all and land the plan on the oracle's.
  d.service_cycles(1);
  d.service_cycles(1);
  EXPECT_TRUE(d.converged());
  EXPECT_EQ(d.stats().explorations, 4u);
  EXPECT_EQ(d.plan(), (std::vector<int>{0, 3, 2}));
  // A converged dispatcher prices exactly oracle + selector forever after.
  EXPECT_DOUBLE_EQ(d.service_cycles(1), 700.0 + 30.0);
}

TEST(LearnedDispatcher, CorrectPredictionNeverExplores) {
  const FlatForest forest = plan_forest({0, 3, 2});  // the oracle plan
  LearnedDispatcher d(&forest, mixed_table(), layer_features(3), 40.0,
                      test_config(1.0));
  EXPECT_EQ(d.stats().mispredicted_layers, 0);
  EXPECT_TRUE(d.converged());
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(d.service_cycles(1), 700.0 + 30.0);
  }
  EXPECT_EQ(d.stats().explorations, 0u);
}

TEST(LearnedDispatcher, DeterministicGivenSeed) {
  const FlatForest forest = plan_forest({0, 1, 0});
  const DispatchConfig cfg = test_config(0.5);
  LearnedDispatcher a(&forest, mixed_table(), layer_features(3), 40.0, cfg);
  LearnedDispatcher b(&forest, mixed_table(), layer_features(3), 40.0, cfg);
  for (int batch : {1, 3, 2, 1, 4, 1, 1, 2}) {
    EXPECT_DOUBLE_EQ(a.service_cycles(batch), b.service_cycles(batch));
  }
  EXPECT_EQ(a.plan(), b.plan());
  EXPECT_EQ(a.stats().explorations, b.stats().explorations);
}

TEST(LearnedDispatcher, RejectsBadInput) {
  const FlatForest forest = plan_forest({0, 1, 0});
  const auto features = layer_features(3);
  const DispatchConfig ok = test_config(0.2);

  EXPECT_THROW(LearnedDispatcher(nullptr, mixed_table(), features, 40.0, ok),
               std::invalid_argument);
  EXPECT_THROW(LearnedDispatcher(&forest, {}, {}, 40.0, ok),
               std::invalid_argument);
  EXPECT_THROW(
      LearnedDispatcher(&forest, mixed_table(), layer_features(2), 40.0, ok),
      std::invalid_argument);

  DispatchConfig bad = ok;
  bad.dispatch_cycles_per_layer = 0;
  EXPECT_THROW(LearnedDispatcher(&forest, mixed_table(), features, 40.0, bad),
               std::invalid_argument);
  bad = ok;
  bad.epsilon = 1.5;
  EXPECT_THROW(LearnedDispatcher(&forest, mixed_table(), features, 40.0, bad),
               std::invalid_argument);
  bad = ok;
  bad.mem_bytes_per_cycle = 0;
  EXPECT_THROW(LearnedDispatcher(&forest, mixed_table(), features, 40.0, bad),
               std::invalid_argument);

  // A layer with no applicable algorithm, and a non-positive cycle entry.
  LayerCycleTable all_nan = mixed_table();
  all_nan[1] = {kNaN, kNaN, kNaN, kNaN};
  EXPECT_THROW(LearnedDispatcher(&forest, all_nan, features, 40.0, ok),
               std::invalid_argument);
  LayerCycleTable zero = mixed_table();
  zero[0][2] = 0.0;
  EXPECT_THROW(LearnedDispatcher(&forest, zero, features, 40.0, ok),
               std::invalid_argument);

  LearnedDispatcher d(&forest, mixed_table(), features, 40.0, ok);
  EXPECT_THROW(d.service_cycles(0), std::invalid_argument);
}

// ------------------------------------------- VLACNN_DISPATCH_CYCLES --------

TEST(DefaultDispatchCycles, EnvKnobOverridesAndValidates) {
  ::unsetenv("VLACNN_DISPATCH_CYCLES");
  EXPECT_DOUBLE_EQ(default_dispatch_cycles(), kDefaultDispatchCyclesPerLayer);
  ::setenv("VLACNN_DISPATCH_CYCLES", "123.5", 1);
  EXPECT_DOUBLE_EQ(default_dispatch_cycles(), 123.5);
  ::setenv("VLACNN_DISPATCH_CYCLES", "bogus", 1);
  EXPECT_THROW(default_dispatch_cycles(), std::runtime_error);
  ::setenv("VLACNN_DISPATCH_CYCLES", "12x", 1);
  EXPECT_THROW(default_dispatch_cycles(), std::runtime_error);
  ::setenv("VLACNN_DISPATCH_CYCLES", "-5", 1);
  EXPECT_THROW(default_dispatch_cycles(), std::runtime_error);
  ::setenv("VLACNN_DISPATCH_CYCLES", "0", 1);
  EXPECT_THROW(default_dispatch_cycles(), std::runtime_error);
  ::unsetenv("VLACNN_DISPATCH_CYCLES");
}

// ------------------------------------- planner integration (tiny net) ------

class DispatchCapacityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vlacnn_dispatch_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Network tiny_net() {
    Network net("tiny", {3, 32, 32});
    net.conv(8, 3, 1, 1);
    net.conv(16, 3, 2, 1);
    net.conv(8, 1, 1, 0);
    return net;
  }

  /// Selector trained on the tiny net over a small hardware grid, using the
  /// given driver's cache.
  static std::shared_ptr<const FlatForest> tiny_forest(SweepDriver& driver,
                                                       const Network& net) {
    const Dataset ds = build_selection_dataset(
        driver, {&net}, {256, 512}, {1u << 20, 4u << 20});
    ForestParams p;
    p.n_trees = 20;
    RandomForest forest;
    forest.fit(ds, all_indices(ds.size()), p);
    return std::make_shared<const FlatForest>(forest, ds.num_classes());
  }

  std::filesystem::path dir_;
};

TEST_F(DispatchCapacityTest, LayerTableMatchesNetworkOptimal) {
  ResultsDb db((dir_ / "cache.csv").string());
  SweepDriver driver(&db);
  const Network net = tiny_net();
  const auto table = driver.layer_algo_cycles(net, 512, 1u << 20);
  ASSERT_EQ(table.size(), net.conv_descs().size());
  // Summing the per-layer minima must reproduce the network_optimal oracle —
  // layer_algo_cycles is the same ground truth in table form.
  double sum_min = 0;
  for (const auto& row : table) {
    double best = std::numeric_limits<double>::infinity();
    for (double c : row) {
      if (!std::isnan(c)) best = std::min(best, c);
    }
    ASSERT_TRUE(std::isfinite(best));
    sum_min += best;
  }
  const double oracle = driver.network_optimal(net, 512, 1u << 20).cycles;
  EXPECT_NEAR(sum_min, oracle, 1e-9 * oracle);
}

TEST_F(DispatchCapacityTest, ConvergedDispatcherMatchesOraclePlusSelector) {
  ResultsDb db((dir_ / "cache.csv").string());
  SweepDriver driver(&db);
  const Network net = tiny_net();
  const auto forest = tiny_forest(driver, net);
  const auto table = driver.layer_algo_cycles(net, 512, 1u << 20);
  std::vector<std::vector<float>> features;
  for (const ConvLayerDesc& d : net.conv_descs()) {
    features.push_back(selection_features(512, 1u << 20, d));
  }
  double oracle_per_image = 0;
  for (const auto& row : table) {
    double best = std::numeric_limits<double>::infinity();
    for (double c : row) {
      if (!std::isnan(c)) best = std::min(best, c);
    }
    oracle_per_image += best;
  }

  DispatchConfig cfg;
  cfg.dispatch_cycles_per_layer = 100;
  cfg.epsilon = 0.5;
  LearnedDispatcher d(forest.get(), table, features,
                      serving::conv_weight_bytes(net), cfg);
  for (int i = 0; i < 200 && !d.converged(); ++i) d.service_cycles(1);
  EXPECT_TRUE(d.converged());
  const double selector = 3.0 * cfg.dispatch_cycles_per_layer;
  EXPECT_NEAR(d.service_cycles(1), oracle_per_image + selector,
              1e-9 * oracle_per_image);
}

TEST_F(DispatchCapacityTest, LearnedGridIsByteIdenticalAcrossPoolSizes) {
  // The determinism guarantee extended to the learned path: same query, same
  // forest seed, pool sizes 1 vs 8 -> byte-identical per-point stats.
  const Network net = tiny_net();
  serving::CapacityQuery q;
  q.load_rps = 100000;
  q.slo_ms = 5;
  q.requests = 400;
  q.seed = 42;
  DispatchConfig dc;
  dc.dispatch_cycles_per_layer = 100;

  ResultsDb db1((dir_ / "p1.csv").string());
  SweepDriver d1(&db1);
  ThreadPool pool1(1);
  const auto r1 = serving::CapacityPlanner(&d1).evaluate_grid(
      net, q, learned_service_factory(tiny_forest(d1, net), &d1, net, dc),
      &pool1);

  ResultsDb db8((dir_ / "p8.csv").string());
  SweepDriver d8(&db8);
  ThreadPool pool8(8);
  const auto r8 = serving::CapacityPlanner(&d8).evaluate_grid(
      net, q, learned_service_factory(tiny_forest(d8, net), &d8, net, dc),
      &pool8);

  ASSERT_EQ(r1.size(), r8.size());
  ASSERT_FALSE(r1.empty());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].stats.to_json(), r8[i].stats.to_json()) << i;
    EXPECT_EQ(r1[i].meets_slo, r8[i].meets_slo) << i;
  }
}

TEST_F(DispatchCapacityTest, FactoryPathRejectsNullAndEmpty) {
  ResultsDb db((dir_ / "cache.csv").string());
  SweepDriver driver(&db);
  const Network net = tiny_net();
  DispatchConfig dc;
  EXPECT_THROW(learned_service_factory(nullptr, &driver, net, dc),
               std::invalid_argument);
  EXPECT_THROW(
      learned_service_factory(tiny_forest(driver, net), nullptr, net, dc),
      std::invalid_argument);

  serving::CapacityPlanner planner(&driver);
  serving::CapacityQuery q;
  EXPECT_THROW(planner.evaluate(net, ServingPoint{1, 512, 1u << 20, 1}, q,
                                serving::ServiceModelFactory{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vlacnn::dispatch

// Tests for the simulated PMU (vpu/pmu.h, DESIGN.md §14): the exact
// per-phase cycle partition (a right-to-left fold of the published phase
// cycles reconstitutes the kernel total bit for bit, for every algorithm at
// sampled and unsampled scales), event-aligned counter windows with
// auto-coarsening, the error contracts, the VLACNN_KERNPROF knobs, and the
// deterministic KernProfSink.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "algos/conv_args.h"
#include "algos/registry.h"
#include "obs/kernprof.h"
#include "vpu/pmu.h"
#include "vpu/timing_model.h"

namespace vlacnn {
namespace {

// ------------------------------------------------------------- knobs -------

TEST(KernProfKnobs, IntervalEnvParsesStrictlyAndMalformedValuesThrow) {
  // ctest runs every test in its own process (gtest_discover_tests), so the
  // lazy one-shot env parse is fresh here; in a whole-binary run this test is
  // registered first in the file, before anything else touches the knob.
  setenv("VLACNN_KERNPROF_INTERVAL", "bogus", 1);
  EXPECT_THROW(obs::kernprof_interval_cycles(), std::runtime_error);
  setenv("VLACNN_KERNPROF_INTERVAL", "1e6trailing", 1);
  EXPECT_THROW(obs::kernprof_interval_cycles(), std::runtime_error);
  setenv("VLACNN_KERNPROF_INTERVAL", "0", 1);  // must be positive
  EXPECT_THROW(obs::kernprof_interval_cycles(), std::runtime_error);
  setenv("VLACNN_KERNPROF_INTERVAL", "-5e5", 1);
  EXPECT_THROW(obs::kernprof_interval_cycles(), std::runtime_error);
  setenv("VLACNN_KERNPROF_INTERVAL", "inf", 1);
  EXPECT_THROW(obs::kernprof_interval_cycles(), std::runtime_error);
  setenv("VLACNN_KERNPROF_INTERVAL", "2.5e5", 1);
  EXPECT_DOUBLE_EQ(obs::kernprof_interval_cycles(), 2.5e5);
  EXPECT_TRUE(obs::kernprof_interval_overridden());
  unsetenv("VLACNN_KERNPROF_INTERVAL");
  obs::set_kernprof_interval_cycles(1e6);  // restore the default value
}

TEST(KernProfKnobs, PathSetterGatesCollectionAndIntervalSetterValidates) {
  const std::string before = obs::kernprof_path();
  obs::set_kernprof_path("/tmp/kp.jsonl");
  EXPECT_TRUE(obs::kernprof_enabled());
  EXPECT_EQ(obs::kernprof_path(), "/tmp/kp.jsonl");
  obs::set_kernprof_path("");
  EXPECT_FALSE(obs::kernprof_enabled());
  obs::set_kernprof_path(before);

  EXPECT_THROW(obs::set_kernprof_interval_cycles(0), std::invalid_argument);
  EXPECT_THROW(obs::set_kernprof_interval_cycles(-1e5), std::invalid_argument);
}

// ---------------------------------------------------------- partition ------

/// The consumer-side identity: phase cycles folded back-to-front (the order
/// vlacnn-report profile uses) must equal the kernel total bit for bit.
double fold_phases(const std::vector<obs::KernProfPhase>& phases) {
  double total = 0;
  for (std::size_t i = phases.size(); i-- > 0;) {
    total = phases[i].cycles + total;
  }
  return total;
}

TEST(Pmu, PartitionFoldsBitExactlyForEveryAlgorithmAndScale) {
  // Large enough that the kernels' deterministic sampling actually truncates
  // loops in the sampled variant (scales are then non-trivial), yet cheap.
  const ConvLayerDesc d{32, 24, 24, 32, 3, 3, 1, 1};  // winograd-applicable
  const std::string path = "/tmp/vlacnn_test_pmu_partition.jsonl";
  obs::set_kernprof_path(path);
  for (Algo a : kAllAlgos) {
    ASSERT_TRUE(algo_applicable(a, d)) << to_string(a);
    for (const bool exact : {false, true}) {
      SimConfig config = make_sim_config(512, 1u << 20);
      config.sampler.exact = exact;
      obs::KernProfRun prof;
      const TimingStats s = conv_simulate(a, d, config, &prof);
      ASSERT_GT(s.cycles, 0.0) << to_string(a);
      ASSERT_FALSE(prof.phases.empty()) << to_string(a);
      // Bitwise, not approximate: the Sterbenz partition's whole point.
      EXPECT_EQ(fold_phases(prof.phases), s.cycles)
          << to_string(a) << (exact ? " exact" : " sampled");
      // "(other)" is always last; annotated phases precede it.
      EXPECT_EQ(prof.phases.back().name, Pmu::kOtherPhase);
      EXPECT_EQ(prof.cycles, s.cycles);
    }
  }
  obs::set_kernprof_path("");
  obs::KernProfSink::global().reset();
}

TEST(Pmu, ProfileNeverChangesSimulatedCycles) {
  const ConvLayerDesc d{16, 16, 16, 16, 3, 3, 1, 1};
  for (Algo a : kAllAlgos) {
    const SimConfig config = make_sim_config(512, 1u << 20);
    const TimingStats plain = conv_simulate(a, d, config);
    obs::set_kernprof_path("/tmp/vlacnn_test_pmu_noeffect.jsonl");
    obs::KernProfRun prof;
    const TimingStats profiled = conv_simulate(a, d, config, &prof);
    obs::set_kernprof_path("");
    obs::KernProfSink::global().reset();
    EXPECT_EQ(plain.cycles, profiled.cycles) << to_string(a);
    EXPECT_EQ(plain.mem_bytes, profiled.mem_bytes) << to_string(a);
    EXPECT_EQ(plain.flops, profiled.flops) << to_string(a);
  }
}

TEST(Pmu, ExpectedPhaseNamesPerAlgorithm) {
  const ConvLayerDesc d{16, 16, 16, 16, 3, 3, 1, 1};
  obs::set_kernprof_path("/tmp/vlacnn_test_pmu_names.jsonl");
  auto names = [&](Algo a) {
    obs::KernProfRun prof;
    conv_simulate(a, d, make_sim_config(512, 1u << 20), &prof);
    std::vector<std::string> out;
    for (const obs::KernProfPhase& p : prof.phases) out.push_back(p.name);
    return out;
  };
  using V = std::vector<std::string>;
  EXPECT_EQ(names(Algo::kDirect), (V{"direct-wide", "(other)"}));
  EXPECT_EQ(names(Algo::kGemm3), (V{"im2col", "macro-kernel", "(other)"}));
  EXPECT_EQ(names(Algo::kGemm6),
            (V{"im2col", "pack-b", "pack-a", "macro-kernel", "(other)"}));
  EXPECT_EQ(names(Algo::kWinograd),
            (V{"input-transform", "tuple-gemm", "output-transform",
               "(other)"}));
  obs::set_kernprof_path("");
  obs::KernProfSink::global().reset();
}

TEST(Pmu, OtherPhaseAbsorbsUnannotatedCyclesExactly) {
  Pmu pmu(1e9, true);
  TimingStats ts;
  auto advance = [&](double dc) {
    ts.cycles += dc;
    ts.compute_cycles += dc;
    pmu.on_event(ts);
  };
  pmu.begin_phase("a", ts);
  advance(0.1);  // 0.1 accumulates representation error on purpose
  advance(0.2);
  pmu.end_phase(ts);
  advance(5.0);  // un-annotated gap
  pmu.begin_phase("b", ts);
  advance(0.3);
  pmu.end_phase(ts);
  advance(2.0);  // trailing un-annotated work
  pmu.finalize(ts);

  ASSERT_EQ(pmu.phases().size(), 3u);
  EXPECT_EQ(pmu.phases()[0].name, "a");
  EXPECT_EQ(pmu.phases()[1].name, "b");
  EXPECT_EQ(pmu.phases()[2].name, Pmu::kOtherPhase);
  EXPECT_NEAR(pmu.phases()[2].raw_cycles, 7.0, 1e-12);
  double total = 0;
  for (std::size_t i = pmu.phases().size(); i-- > 0;) {
    total = pmu.phases()[i].cycles + total;
  }
  EXPECT_EQ(total, ts.cycles);  // bitwise
}

TEST(Pmu, RepeatVisitsOfOnePhaseAccumulate) {
  Pmu pmu(1e9, true);
  TimingStats ts;
  for (int visit = 0; visit < 3; ++visit) {
    pmu.begin_phase("loop", ts);
    ts.cycles += 10.0;
    ts.vec_instructions += 2.0;
    pmu.on_event(ts);
    pmu.end_phase(ts);
    ts.cycles += 1.0;  // inter-visit gap
    pmu.on_event(ts);
  }
  pmu.finalize(ts);
  ASSERT_EQ(pmu.phases().size(), 2u);  // "loop" + "(other)"
  EXPECT_EQ(pmu.phases()[0].name, "loop");
  EXPECT_DOUBLE_EQ(pmu.phases()[0].raw_cycles, 30.0);
  EXPECT_DOUBLE_EQ(pmu.phases()[0].vec_instructions, 6.0);
  EXPECT_DOUBLE_EQ(pmu.phases()[1].raw_cycles, 3.0);
}

// ------------------------------------------------------------ windows ------

TEST(Pmu, WindowsAreEventAlignedAndPartitionTheRun) {
  Pmu pmu(100.0, true);  // pinned cadence: no coarsening
  TimingStats ts;
  auto advance = [&](double dc, double bytes) {
    ts.cycles += dc;
    ts.compute_cycles += dc;
    ts.mem_bytes += bytes;
    pmu.on_event(ts);
  };
  // Events of 40 cycles each: boundaries at 100, 200, ... are crossed by the
  // events ending at 120, 240, ... — window ends snap to event ends.
  for (int i = 0; i < 7; ++i) advance(40.0, 8.0);  // ends at 280
  pmu.finalize(ts);

  const auto& ws = pmu.windows();
  ASSERT_EQ(ws.size(), 3u);  // [0,120) [120,240) [240,280] (trailing partial)
  EXPECT_DOUBLE_EQ(ws[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(ws[0].t_end, 120.0);
  EXPECT_DOUBLE_EQ(ws[1].t_end, 240.0);
  EXPECT_DOUBLE_EQ(ws[2].t_end, 280.0);
  double bytes = 0;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(ws[i].t_start, ws[i - 1].t_end);  // no gaps
    }
    bytes += ws[i].mem_bytes;
  }
  EXPECT_DOUBLE_EQ(bytes, ts.mem_bytes);  // deltas partition the counters
  EXPECT_DOUBLE_EQ(ws[0].dram_bytes_per_cycle(), 24.0 / 120.0);
}

TEST(Pmu, AutoCoarseningMergesPairsAndDoublesInterval) {
  Pmu pmu(10.0, false, 4);
  TimingStats ts;
  for (int i = 0; i < 100; ++i) {
    ts.cycles += 10.0;
    ts.compute_cycles += 10.0;
    pmu.on_event(ts);
  }
  pmu.finalize(ts);
  EXPECT_GT(pmu.interval_cycles(), 10.0);  // doubled at least once
  EXPECT_LE(pmu.windows().size(), 4u);
  // Merged windows still tile the run contiguously from 0 to the total.
  const auto& ws = pmu.windows();
  ASSERT_FALSE(ws.empty());
  EXPECT_DOUBLE_EQ(ws.front().t_start, 0.0);
  EXPECT_DOUBLE_EQ(ws.back().t_end, ts.cycles);
  for (std::size_t i = 1; i < ws.size(); ++i) {
    EXPECT_EQ(ws[i].t_start, ws[i - 1].t_end);
  }
}

TEST(Pmu, PinnedIntervalNeverCoarsens) {
  Pmu pmu(10.0, true, 4);
  TimingStats ts;
  for (int i = 0; i < 40; ++i) {
    ts.cycles += 10.0;
    pmu.on_event(ts);
  }
  pmu.finalize(ts);
  EXPECT_DOUBLE_EQ(pmu.interval_cycles(), 10.0);
  EXPECT_EQ(pmu.windows().size(), 40u);  // unbounded when pinned
}

// ------------------------------------------------------------- errors ------

TEST(Pmu, ConstructorValidates) {
  EXPECT_THROW(Pmu(0.0), std::invalid_argument);
  EXPECT_THROW(Pmu(-100.0), std::invalid_argument);
  EXPECT_THROW(Pmu(1e6, false, 1), std::invalid_argument);  // cannot merge
  EXPECT_NO_THROW(Pmu(1e6, false, 2));
}

TEST(Pmu, PhaseAndFinalizeContracts) {
  TimingStats ts;
  Pmu pmu(1e6);
  pmu.begin_phase("a", ts);
  EXPECT_THROW(pmu.begin_phase("b", ts), std::logic_error);  // no nesting
  EXPECT_THROW(pmu.finalize(ts), std::logic_error);  // phase still open
  pmu.end_phase(ts);
  EXPECT_THROW(pmu.end_phase(ts), std::logic_error);  // nothing open
  pmu.finalize(ts);
  EXPECT_TRUE(pmu.finalized());
  EXPECT_THROW(pmu.finalize(ts), std::logic_error);           // double seal
  EXPECT_THROW(pmu.begin_phase("c", ts), std::logic_error);   // after seal
}

TEST(PmuPhaseGuard, InertWithoutModelOrPmu) {
  { PmuPhase guard(nullptr, "x"); }  // null model: no-op
  TimingModel tm(VpuConfig{512, 8}, nullptr);
  { PmuPhase guard(&tm, "x"); }  // no PMU attached: no-op
  Pmu pmu(1e6);
  tm.set_pmu(&pmu);
  {
    PmuPhase guard(&tm, "x");
    EXPECT_TRUE(pmu.in_phase());
  }
  EXPECT_FALSE(pmu.in_phase());
}

// --------------------------------------------------------------- sink ------

TEST(KernProfSink, WritesBlocksInSortedLabelOrderWithRunHeaders) {
  namespace fs = std::filesystem;
  const fs::path file =
      fs::temp_directory_path() / "vlacnn_test_kernprof_sink.jsonl";
  const std::string before = obs::kernprof_path();
  obs::set_kernprof_path(file.string());
  obs::KernProfSink::global().reset();
  // Recorded out of order; rewritten labels take the last write.
  obs::KernProfSink::global().record("zzz", "{\"type\":\"kernel\"}\n");
  obs::KernProfSink::global().record("aaa", "{\"type\":\"kernel\"}\n");
  obs::KernProfSink::global().record("zzz", "{\"type\":\"kernel\",\"v\":2}\n");
  EXPECT_EQ(obs::KernProfSink::global().block_count(), 2u);
  const std::string path = obs::KernProfSink::global().write_file();
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(),
            "{\"type\":\"run\",\"label\":\"aaa\"}\n"
            "{\"type\":\"kernel\"}\n"
            "{\"type\":\"run\",\"label\":\"zzz\"}\n"
            "{\"type\":\"kernel\",\"v\":2}\n");
  obs::KernProfSink::global().reset();
  obs::set_kernprof_path(before);
  fs::remove(file);
}

TEST(KernProfSink, WriteWithoutPathThrows) {
  const std::string before = obs::kernprof_path();
  obs::set_kernprof_path("");
  EXPECT_THROW(obs::KernProfSink::global().write_file(), std::runtime_error);
  obs::set_kernprof_path(before);
}

TEST(KernProfRun, JsonlShapeAndLabelFallback) {
  // Outside a network sweep (empty net) the label falls back to the layer
  // shape string; the driver is exercised end-to-end via conv_simulate.
  const ConvLayerDesc d{4, 8, 8, 4, 3, 3, 1, 1};
  obs::set_kernprof_path("/tmp/vlacnn_test_pmu_label.jsonl");
  obs::KernProfSink::global().reset();
  obs::KernProfRun prof;
  conv_simulate(Algo::kGemm3, d, make_sim_config(512, 1u << 20), &prof);
  EXPECT_EQ(prof.net, "");
  EXPECT_EQ(prof.label.find(d.to_string()), 0u);  // shape-string head
  EXPECT_NE(prof.label.find("/gemm3/vlen512/"), std::string::npos);
  EXPECT_NE(prof.label.find("/lanes8/int"), std::string::npos);
  const std::string jsonl = prof.to_jsonl();
  EXPECT_EQ(jsonl.find("{\"type\":\"kernel\""), 0u);
  EXPECT_NE(jsonl.find("{\"type\":\"phase\",\"name\":\"im2col\""),
            std::string::npos);
  EXPECT_EQ(obs::KernProfSink::global().block_count(), 1u);
  obs::set_kernprof_path("");
  obs::KernProfSink::global().reset();
}

}  // namespace
}  // namespace vlacnn
